module vliwq

go 1.22
