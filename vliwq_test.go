package vliwq_test

import (
	"strings"
	"testing"

	"vliwq"
	"vliwq/internal/corpus"
)

const testLoop = `
loop fir2
trip 100
op c0 load
op x0 load
op c1 load
op x1 load
op m0 mul c0 x0
op m1 mul c1 x1
op s  add m0 m1
op st store s
`

func TestCompileQuickstart(t *testing.T) {
	loop, err := vliwq.ParseLoop(testLoop)
	if err != nil {
		t.Fatal(err)
	}
	res, err := vliwq.Compile(loop, vliwq.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.II < res.Sched.ResMII {
		t.Fatalf("II=%d below ResMII=%d", res.II, res.Sched.ResMII)
	}
	if res.IPCStatic <= 0 || res.IPCDynamic <= 0 {
		t.Fatal("nonpositive IPC")
	}
	if res.Queues < 1 {
		t.Fatal("no queues allocated")
	}
	rep := res.Report()
	for _, frag := range []string{"fir2", "II=", "IPC"} {
		if !strings.Contains(rep, frag) {
			t.Fatalf("report missing %q:\n%s", frag, rep)
		}
	}
	if res.KernelSchedule() == "" {
		t.Fatal("empty kernel schedule")
	}
}

func TestCompileClusteredVerified(t *testing.T) {
	// Compile runs the cycle-accurate verification by default; a passing
	// compile is a machine-checked end-to-end run.
	for _, k := range []string{"hydro", "complexmul", "wave2"} {
		loop := corpus.KernelByName(k)
		res, err := vliwq.Compile(loop, vliwq.Options{Machine: vliwq.Clustered(4), Unroll: true})
		if err != nil {
			t.Fatalf("%s: %v", k, err)
		}
		if res.RingQueues < 0 {
			t.Fatalf("%s: bad ring usage", k)
		}
	}
}

func TestCompileOptionsValidation(t *testing.T) {
	if _, err := vliwq.Compile(nil, vliwq.Options{}); err == nil {
		t.Fatal("nil loop accepted")
	}
	bad, err := vliwq.ParseLoop("loop x\nop a add\nop st store a")
	if err != nil {
		t.Fatal(err)
	}
	// Forced factor 1 is invalid (must be >= 2 or use Unroll).
	if _, err := vliwq.Compile(bad, vliwq.Options{UnrollFactor: 1}); err != nil {
		t.Fatalf("factor 1 should be treated as no unrolling: %v", err)
	}
}

func TestCompileUnrollFactorApplied(t *testing.T) {
	loop := corpus.KernelByName("stencil3")
	res, err := vliwq.Compile(loop, vliwq.Options{Machine: vliwq.SingleCluster(6), UnrollFactor: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Unrolled != 2 {
		t.Fatalf("unroll factor %d, want 2", res.Unrolled)
	}
	if len(res.Sched.Loop.Ops) < 2*len(loop.Ops) {
		t.Fatal("unrolled body too small")
	}
}

func TestCompileSkipVerify(t *testing.T) {
	loop := corpus.KernelByName("daxpy")
	res, err := vliwq.Compile(loop, vliwq.Options{SkipVerify: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.II < 1 {
		t.Fatal("bad II")
	}
}

func TestReadLoop(t *testing.T) {
	l, err := vliwq.ReadLoop(strings.NewReader(testLoop))
	if err != nil {
		t.Fatal(err)
	}
	if l.Name != "fir2" || len(l.Ops) != 8 {
		t.Fatalf("parsed %s with %d ops", l.Name, len(l.Ops))
	}
}
