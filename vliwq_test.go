package vliwq_test

import (
	"context"
	"errors"
	"strings"
	"testing"

	"vliwq"
	"vliwq/internal/corpus"
)

const testLoop = `
loop fir2
trip 100
op c0 load
op x0 load
op c1 load
op x1 load
op m0 mul c0 x0
op m1 mul c1 x1
op s  add m0 m1
op st store s
`

func TestCompileQuickstart(t *testing.T) {
	loop, err := vliwq.ParseLoop(testLoop)
	if err != nil {
		t.Fatal(err)
	}
	res, err := vliwq.Compile(loop, vliwq.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.II < res.Sched.ResMII {
		t.Fatalf("II=%d below ResMII=%d", res.II, res.Sched.ResMII)
	}
	if res.IPCStatic <= 0 || res.IPCDynamic <= 0 {
		t.Fatal("nonpositive IPC")
	}
	if res.Queues < 1 {
		t.Fatal("no queues allocated")
	}
	rep := res.Report()
	for _, frag := range []string{"fir2", "II=", "IPC"} {
		if !strings.Contains(rep, frag) {
			t.Fatalf("report missing %q:\n%s", frag, rep)
		}
	}
	if res.KernelSchedule() == "" {
		t.Fatal("empty kernel schedule")
	}
}

func TestCompileClusteredVerified(t *testing.T) {
	// Compile runs the cycle-accurate verification by default; a passing
	// compile is a machine-checked end-to-end run.
	for _, k := range []string{"hydro", "complexmul", "wave2"} {
		loop := corpus.KernelByName(k)
		res, err := vliwq.Compile(loop, vliwq.Options{Machine: vliwq.Clustered(4), Unroll: true})
		if err != nil {
			t.Fatalf("%s: %v", k, err)
		}
		if res.RingQueues < 0 {
			t.Fatalf("%s: bad ring usage", k)
		}
	}
}

func TestCompileOptionsValidation(t *testing.T) {
	if _, err := vliwq.Compile(nil, vliwq.Options{}); err == nil {
		t.Fatal("nil loop accepted")
	}
	bad, err := vliwq.ParseLoop("loop x\nop a add\nop st store a")
	if err != nil {
		t.Fatal(err)
	}
	// Forced factor 1 is invalid (must be >= 2 or use Unroll).
	if _, err := vliwq.Compile(bad, vliwq.Options{UnrollFactor: 1}); err != nil {
		t.Fatalf("factor 1 should be treated as no unrolling: %v", err)
	}
}

func TestCompileUnrollFactorApplied(t *testing.T) {
	loop := corpus.KernelByName("stencil3")
	res, err := vliwq.Compile(loop, vliwq.Options{Machine: vliwq.SingleCluster(6), UnrollFactor: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Unrolled != 2 {
		t.Fatalf("unroll factor %d, want 2", res.Unrolled)
	}
	if len(res.Sched.Loop.Ops) < 2*len(loop.Ops) {
		t.Fatal("unrolled body too small")
	}
}

func TestCompileSkipVerify(t *testing.T) {
	loop := corpus.KernelByName("daxpy")
	res, err := vliwq.Compile(loop, vliwq.Options{SkipVerify: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.II < 1 {
		t.Fatal("bad II")
	}
}

func TestReadLoop(t *testing.T) {
	l, err := vliwq.ReadLoop(strings.NewReader(testLoop))
	if err != nil {
		t.Fatal(err)
	}
	if l.Name != "fir2" || len(l.Ops) != 8 {
		t.Fatalf("parsed %s with %d ops", l.Name, len(l.Ops))
	}
}

func TestParseMachine(t *testing.T) {
	tests := []struct {
		spec     string
		clusters int
		wantErr  bool
	}{
		{"single:6", 1, false},
		{"clustered:4", 4, false},
		{"single:0", 0, true},
		{"single:x", 0, true},
		{"torus:4", 0, true},
		{"single", 0, true},
		// Sizes are bounded so a hostile spec cannot size allocations.
		{"clustered:500000000", 0, true},
		{"single:513", 0, true},
		{"clustered:512", 512, false},
	}
	for _, tt := range tests {
		m, err := vliwq.ParseMachine(tt.spec)
		if (err != nil) != tt.wantErr {
			t.Errorf("ParseMachine(%q) err = %v, wantErr %t", tt.spec, err, tt.wantErr)
			continue
		}
		if err == nil && m.NumClusters() != tt.clusters {
			t.Errorf("ParseMachine(%q) = %d clusters, want %d", tt.spec, m.NumClusters(), tt.clusters)
		}
	}
}

func TestFormatLoopRoundTrips(t *testing.T) {
	loop := corpus.KernelByName("daxpy")
	back, err := vliwq.ParseLoop(vliwq.FormatLoop(loop))
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != loop.Name || len(back.Ops) != len(loop.Ops) {
		t.Fatalf("round trip changed the loop: %s/%d ops vs %s/%d ops",
			back.Name, len(back.Ops), loop.Name, len(loop.Ops))
	}
}

// TestCompileBatchMatchesCompile is the batch API's ordering and fidelity
// contract: results arrive at the index of their request and are identical
// to one-at-a-time Compile calls.
func TestCompileBatchMatchesCompile(t *testing.T) {
	loops := corpus.Generate(corpus.Params{Seed: 5, N: 12})
	items := make([]vliwq.BatchItem, len(loops))
	opts := vliwq.Options{Machine: vliwq.Clustered(4), Unroll: true, SkipVerify: true}
	for i, l := range loops {
		items[i] = vliwq.BatchItem{Loop: l, Opts: opts}
	}
	got := vliwq.CompileBatch(context.Background(), items, 4)
	if len(got) != len(items) {
		t.Fatalf("batch returned %d results for %d items", len(got), len(items))
	}
	for i, l := range loops {
		want, wantErr := vliwq.Compile(l, opts)
		if (got[i].Err != nil) != (wantErr != nil) {
			t.Fatalf("item %d: batch err %v, direct err %v", i, got[i].Err, wantErr)
		}
		if wantErr != nil {
			continue
		}
		if got[i].Result.Input != l {
			t.Fatalf("item %d: result is for the wrong loop", i)
		}
		if got[i].Result.Report() != want.Report() {
			t.Fatalf("item %d: batch report differs from direct compile:\n%s\nvs\n%s",
				i, got[i].Result.Report(), want.Report())
		}
	}
}

func TestCompileBatchEmptyAndWorkerClamp(t *testing.T) {
	if out := vliwq.CompileBatch(context.Background(), nil, 4); len(out) != 0 {
		t.Fatalf("empty batch returned %d results", len(out))
	}
	// More workers than items must not deadlock or drop results.
	items := []vliwq.BatchItem{{Loop: corpus.KernelByName("daxpy"), Opts: vliwq.Options{SkipVerify: true}}}
	out := vliwq.CompileBatch(context.Background(), items, 64)
	if len(out) != 1 || out[0].Err != nil {
		t.Fatalf("single-item batch: %+v", out)
	}
}

func TestCompileBatchCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before any work starts
	loops := corpus.Generate(corpus.Params{Seed: 3, N: 8})
	items := make([]vliwq.BatchItem, len(loops))
	for i, l := range loops {
		items[i] = vliwq.BatchItem{Loop: l, Opts: vliwq.Options{SkipVerify: true}}
	}
	out := vliwq.CompileBatch(ctx, items, 2)
	if len(out) != len(items) {
		t.Fatalf("cancelled batch returned %d results for %d items", len(out), len(items))
	}
	for i, r := range out {
		if !errors.Is(r.Err, context.Canceled) {
			t.Fatalf("item %d: err = %v, want context.Canceled", i, r.Err)
		}
	}
}

func TestCompileContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := vliwq.CompileContext(ctx, corpus.KernelByName("daxpy"), vliwq.Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestOptimalEffortCancellation: at Effort optimal the deadline bounds the
// proof, never the compilation. An already-expired context still produces a
// complete result — simulator-verified, since the verify stage runs — with
// the certificate flagged unproved and deadline-cut. This is the end-to-end
// half of internal/sched's TestOptimalCancellation.
func TestOptimalEffortCancellation(t *testing.T) {
	// Copy insertion raises ResMII enough that zero-latency rings leave no
	// II gap on this corpus; inter-cluster latency restores the population
	// the optimal tier exists for.
	cfg := vliwq.Clustered(6)
	cfg.CommLatency = 2
	p := corpus.StressedParams()
	p.N = 48
	exOpts := vliwq.Options{Machine: cfg, SkipVerify: true}
	exOpts.Sched.Effort = vliwq.EffortExhaustive
	var loop *vliwq.Loop
	for _, l := range corpus.Generate(p) {
		res, err := vliwq.Compile(l, exOpts)
		if err != nil {
			continue
		}
		if res.II > res.MII {
			loop = l
			break
		}
	}
	if loop == nil {
		t.Fatal("no exhaustive-gapped loop in the stressed slice")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opts := vliwq.Options{Machine: cfg}
	opts.Sched.Effort = vliwq.EffortOptimal
	res, err := vliwq.CompileContext(ctx, loop, opts)
	if err != nil {
		t.Fatalf("cancelled optimal compile failed: %v", err)
	}
	if res.Bound.Optimal {
		t.Fatalf("cancelled proof claims optimality: %+v", res.Bound)
	}
	if !res.Bound.DeadlineCut {
		t.Fatalf("cancelled proof not flagged deadline-cut: %+v", res.Bound)
	}
	if res.Bound.Lower != res.MII {
		t.Fatalf("cancelled proof raised the bound: Lower=%d, MII=%d", res.Bound.Lower, res.MII)
	}
	verified := false
	for _, st := range res.Stages {
		if st.Stage == vliwq.StageVerify {
			verified = true
		}
	}
	if !verified {
		t.Fatal("verify stage did not run on the cancelled-proof incumbent")
	}
	if !strings.Contains(res.Report(), "optimal: lower-bound=") {
		t.Fatalf("report missing the certificate line:\n%s", res.Report())
	}
}
