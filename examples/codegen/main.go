// Emitting the complete software-pipelined program.
//
// A modulo schedule describes one kernel iteration; the machine executes a
// prologue that fills the pipeline stage by stage, the kernel repeated
// once per remaining iteration, and an epilogue that drains it (the
// "less efficient stages surrounding the kernel execution" of the paper's
// §2 — the reason dynamic IPC trails static IPC in Figs. 8/9). This
// example prints the whole instruction stream for a recurrence kernel on
// a 2-cluster machine and reports slot utilization per cluster.
//
// Run with: go run ./examples/codegen
package main

import (
	"fmt"
	"log"
	"os"

	"vliwq"
	"vliwq/internal/corpus"
	"vliwq/internal/metrics"
	"vliwq/internal/sched"
)

func main() {
	loop := corpus.KernelByName("tridiag")
	res, err := vliwq.Compile(loop, vliwq.Options{Machine: vliwq.Clustered(2)})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Report())
	fmt.Println()
	if err := sched.EmitPipelined(os.Stdout, res.Sched); err != nil {
		log.Fatal(err)
	}

	used, total, util := sched.CountSlots(res.Sched)
	fmt.Printf("\nkernel slot utilization: %d/%d (%.0f%%)\n", used, total, 100*util)
	for c, u := range sched.ClusterUtilization(res.Sched) {
		fmt.Printf("  cluster %d: %.0f%%\n", c, 100*u)
	}
	n := loop.TripCount()
	fmt.Printf("modeled execution: %d iterations in %d cycles (dynamic IPC %.2f vs static %.2f)\n",
		n, sched.PipelinedLength(res.Sched, n),
		metrics.IPCDynamic(res.Sched, n), metrics.IPCStatic(res.Sched))
}
