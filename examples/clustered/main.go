// Partitioned scheduling across the cluster ring, and the move-op
// extension.
//
// The Livermore hydro fragment is scheduled on the paper's clustered
// machines (4, 5, 6 clusters) and compared with the equal-sized
// single-cluster machine — the experiment behind Fig. 6. The example then
// enables the move-operation extension (the paper's §5 future work) to
// show values hopping between non-adjacent clusters.
//
// Run with: go run ./examples/clustered
package main

import (
	"fmt"
	"log"

	"vliwq"
	"vliwq/internal/corpus"
	"vliwq/internal/ir"
	"vliwq/internal/queue"
)

func main() {
	loop := corpus.Hydro()
	fmt.Printf("kernel %s: %d ops\n\n", loop.Name, len(loop.Ops))

	for _, nc := range []int{4, 5, 6} {
		single, err := vliwq.Compile(loop, vliwq.Options{
			Machine: vliwq.SingleCluster(3 * nc),
			Unroll:  true,
		})
		if err != nil {
			log.Fatal(err)
		}
		clustered, err := vliwq.Compile(loop, vliwq.Options{
			Machine: vliwq.Clustered(nc),
			Unroll:  true,
		})
		if err != nil {
			log.Fatal(err)
		}
		verdict := "matches the single-cluster II"
		if clustered.II > single.II {
			verdict = fmt.Sprintf("+%d cycles over single-cluster", clustered.II-single.II)
		}
		fmt.Printf("%d clusters (%2d FUs): II=%d vs single II=%d — %s\n",
			nc, 3*nc, clustered.II, single.II, verdict)

		// Where did the values flow? Count intra-cluster vs ring traffic.
		intra, ring := 0, 0
		for _, as := range clustered.Alloc.Assignments {
			if as.Loc.Kind == queue.Private {
				intra++
			} else {
				ring++
			}
		}
		fmt.Printf("    traffic: %d values through private QRFs, %d through the ring\n", intra, ring)
	}

	// Move extension: allow non-adjacent communication through chains of
	// move operations on the COPY units.
	cfg := vliwq.Clustered(6)
	cfg.AllowMoves = true
	res, err := vliwq.Compile(loop, vliwq.Options{Machine: cfg, Unroll: true})
	if err != nil {
		log.Fatal(err)
	}
	moves := 0
	for _, op := range res.Sched.Loop.Ops {
		if op.Kind == ir.KMove {
			moves++
		}
	}
	fmt.Printf("\nwith the move-op extension on 6 clusters: II=%d, %d move ops inserted\n",
		res.II, moves)
	fmt.Println("(verified: every configuration above ran on the cycle-accurate QRF simulator)")
}
