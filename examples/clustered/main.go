// Partitioned scheduling across the cluster ring, and the move-op
// extension.
//
// The Livermore hydro fragment is scheduled on the paper's clustered
// machines (4, 5, 6 clusters) and compared with the equal-sized
// single-cluster machine — the experiment behind Fig. 6. The example then
// enables the move-operation extension (the paper's §5 future work) to
// show values hopping between non-adjacent clusters.
//
// Everything runs through one vliwq.Compiler session: machine targets are
// the "single:<n>"/"clustered:<n>" specs requests carry on the wire, and
// the session cache means a repeated request would not recompile.
//
// Run with: go run ./examples/clustered
package main

import (
	"context"
	"fmt"
	"log"

	"vliwq"
	"vliwq/internal/corpus"
	"vliwq/internal/ir"
	"vliwq/internal/queue"
)

func main() {
	loop := corpus.Hydro()
	src := vliwq.FormatLoop(loop)
	fmt.Printf("kernel %s: %d ops\n\n", loop.Name, len(loop.Ops))

	compiler := vliwq.NewCompiler(vliwq.CompilerConfig{})
	ctx := context.Background()
	for _, nc := range []int{4, 5, 6} {
		single, err := compiler.Run(ctx, vliwq.Request{
			Loop:    src,
			Machine: fmt.Sprintf("single:%d", 3*nc),
			Unroll:  true,
		})
		if err != nil {
			log.Fatal(err)
		}
		clustered, err := compiler.Run(ctx, vliwq.Request{
			Loop:    src,
			Machine: fmt.Sprintf("clustered:%d", nc),
			Unroll:  true,
		})
		if err != nil {
			log.Fatal(err)
		}
		verdict := "matches the single-cluster II"
		if clustered.II > single.II {
			verdict = fmt.Sprintf("+%d cycles over single-cluster", clustered.II-single.II)
		}
		fmt.Printf("%d clusters (%2d FUs): II=%d vs single II=%d — %s\n",
			nc, 3*nc, clustered.II, single.II, verdict)

		// Where did the values flow? Count intra-cluster vs ring traffic.
		intra, ring := 0, 0
		for _, as := range clustered.Alloc.Assignments {
			if as.Loc.Kind == queue.Private {
				intra++
			} else {
				ring++
			}
		}
		fmt.Printf("    traffic: %d values through private QRFs, %d through the ring\n", intra, ring)
	}

	// Move extension: allow non-adjacent communication through chains of
	// move operations on the COPY units — one request field away.
	res, err := compiler.Run(ctx, vliwq.Request{
		Loop:       src,
		Machine:    "clustered:6",
		Unroll:     true,
		AllowMoves: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	moves := 0
	for _, op := range res.Sched.Loop.Ops {
		if op.Kind == ir.KMove {
			moves++
		}
	}
	fmt.Printf("\nwith the move-op extension on 6 clusters: II=%d, %d move ops inserted\n",
		res.II, moves)
	fmt.Println("(verified: every configuration above ran on the cycle-accurate QRF simulator)")
}
