// Quickstart: compile a small loop for a queue-register-file VLIW machine
// and inspect the result.
//
// The loop is daxpy (y[i] = a*x[i] + y[i]) written in the text format; the
// pipeline parses it, modulo-schedules it, allocates its values to FIFO
// queues with the Q-Compatibility test, and verifies the schedule by
// cycle-accurate simulation against sequential execution.
//
// The example drives the request-centric API: a vliwq.Compiler session
// running vliwq.Requests — the same canonical request type the vliwd
// service accepts on the wire, so everything below could be POSTed to
// /compile verbatim.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"vliwq"
)

const daxpy = `
loop daxpy
trip 256
op a  load            # loop-invariant scalar, reloaded each iteration
op x  load
op y  load
op ax mul a x
op s  add ax y
op st store s
`

func main() {
	compiler := vliwq.NewCompiler(vliwq.CompilerConfig{})
	ctx := context.Background()

	// Single-cluster machine with 6 FUs (2 L/S, 2 ADD, 2 MUL + copy
	// units) — "single:6", which is also the default an empty machine
	// spec normalizes to.
	res, err := compiler.Run(ctx, vliwq.Request{Loop: daxpy, Machine: "single:6"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Report())
	fmt.Println("\nkernel:")
	fmt.Print(res.KernelSchedule())

	// The same loop on the paper's 4-cluster machine (12 FUs): the
	// partitioner distributes the operations across the ring.
	res4, err := compiler.Run(ctx, vliwq.Request{Loop: daxpy, Machine: "clustered:4"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(res4.Report())
	fmt.Println("\nkernel (one column per cluster):")
	fmt.Print(res4.KernelSchedule())

	// Every stage of the pipeline ran and was timed; the vliwd service
	// aggregates exactly these timings fleet-wide in /stats.
	fmt.Println("\npipeline stages executed:")
	for _, st := range res4.Stages {
		fmt.Printf("  %s\n", st.Stage)
	}
}
