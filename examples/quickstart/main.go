// Quickstart: compile a small loop for a queue-register-file VLIW machine
// and inspect the result.
//
// The loop is daxpy (y[i] = a*x[i] + y[i]) written in the text format; the
// pipeline parses it, modulo-schedules it, allocates its values to FIFO
// queues with the Q-Compatibility test, and verifies the schedule by
// cycle-accurate simulation against sequential execution.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"vliwq"
)

const daxpy = `
loop daxpy
trip 256
op a  load            # loop-invariant scalar, reloaded each iteration
op x  load
op y  load
op ax mul a x
op s  add ax y
op st store s
`

func main() {
	loop, err := vliwq.ParseLoop(daxpy)
	if err != nil {
		log.Fatal(err)
	}

	// Single-cluster machine with 6 FUs (2 L/S, 2 ADD, 2 MUL + copy units).
	res, err := vliwq.Compile(loop, vliwq.Options{Machine: vliwq.SingleCluster(6)})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Report())
	fmt.Println("\nkernel:")
	fmt.Print(res.KernelSchedule())

	// The same loop on the paper's 4-cluster machine (12 FUs): the
	// partitioner distributes the operations across the ring.
	res4, err := vliwq.Compile(loop, vliwq.Options{Machine: vliwq.Clustered(4)})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(res4.Report())
	fmt.Println("\nkernel (one column per cluster):")
	fmt.Print(res4.KernelSchedule())
}
