// Loop unrolling and the II-speedup metric (paper §3, Fig. 4).
//
// A resource-bound stencil is compiled at unroll factors 1..6 on a 6-FU
// machine. Its 5 memory operations leave one of the two L/S units idle
// every other cycle at factor 1 (ceil(5/2) = 3 cycles); unrolling packs
// the fractional slack (x2: ceil(10/2)/2 = 2.5 cycles per original
// iteration), exactly the effect Fig. 4 measures with Equation (1). A
// recurrence-bound loop (horner) is shown for contrast: unrolling cannot
// help it, because a circuit's latency-to-distance ratio is invariant.
//
// Run with: go run ./examples/unrolling
package main

import (
	"fmt"
	"log"

	"vliwq"
	"vliwq/internal/corpus"
	"vliwq/internal/metrics"
	"vliwq/internal/unroll"
)

func main() {
	machine := vliwq.SingleCluster(6)

	sweep := func(name string) {
		loop := corpus.KernelByName(name)
		if loop == nil {
			log.Fatalf("kernel %s missing", name)
		}
		base, err := vliwq.Compile(loop, vliwq.Options{Machine: machine})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s on %s: base II=%d (ResMII=%d RecMII=%d)\n",
			name, machine.Name, base.II, base.Sched.ResMII, base.Sched.RecMII)
		for factor := 2; factor <= 6; factor++ {
			res, err := vliwq.Compile(loop, vliwq.Options{Machine: machine, UnrollFactor: factor})
			if err != nil {
				log.Fatal(err)
			}
			speedup := metrics.IISpeedup(base.II, factor, res.II)
			fmt.Printf("  x%d: II=%2d  II/iter=%.2f  speedup=%.2f  queues=%d\n",
				factor, res.II, float64(res.II)/float64(factor), speedup, res.Queues)
		}
		auto := unroll.AutoFactor(loop, machine)
		fmt.Printf("  auto-selected factor: %d\n\n", auto)
	}

	sweep("stencil3") // resource-bound, fractional L/S slack: unrolling pays
	sweep("horner")   // recurrence-bound: unrolling cannot beat RecMII
}
