// Loop unrolling and the II-speedup metric (paper §3, Fig. 4).
//
// A resource-bound stencil is compiled at unroll factors 1..6 on a 6-FU
// machine. Its 5 memory operations leave one of the two L/S units idle
// every other cycle at factor 1 (ceil(5/2) = 3 cycles); unrolling packs
// the fractional slack (x2: ceil(10/2)/2 = 2.5 cycles per original
// iteration), exactly the effect Fig. 4 measures with Equation (1). A
// recurrence-bound loop (horner) is shown for contrast: unrolling cannot
// help it, because a circuit's latency-to-distance ratio is invariant.
//
// The sweep runs through a vliwq.Compiler session, and the staged API
// (RunUntil) is used to inspect the unrolled body without scheduling it.
//
// Run with: go run ./examples/unrolling
package main

import (
	"context"
	"fmt"
	"log"

	"vliwq"
	"vliwq/internal/corpus"
	"vliwq/internal/metrics"
	"vliwq/internal/unroll"
)

func main() {
	machine := vliwq.SingleCluster(6)
	compiler := vliwq.NewCompiler(vliwq.CompilerConfig{Machine: machine.Spec()})
	ctx := context.Background()

	sweep := func(name string) {
		loop := corpus.KernelByName(name)
		if loop == nil {
			log.Fatalf("kernel %s missing", name)
		}
		src := vliwq.FormatLoop(loop)
		base, err := compiler.Run(ctx, vliwq.Request{Loop: src})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s on %s: base II=%d (ResMII=%d RecMII=%d)\n",
			name, machine.Name, base.II, base.Sched.ResMII, base.Sched.RecMII)
		for factor := 2; factor <= 6; factor++ {
			res, err := compiler.Run(ctx, vliwq.Request{Loop: src, UnrollFactor: factor})
			if err != nil {
				log.Fatal(err)
			}
			speedup := metrics.IISpeedup(base.II, factor, res.II)
			fmt.Printf("  x%d: II=%2d  II/iter=%.2f  speedup=%.2f  queues=%d\n",
				factor, res.II, float64(res.II)/float64(factor), speedup, res.Queues)
		}
		auto := unroll.AutoFactor(loop, machine)
		fmt.Printf("  auto-selected factor: %d\n", auto)

		// The staged API stops the pipeline after unrolling: the partial
		// Result carries the replicated body but no schedule yet.
		partial, err := compiler.RunUntil(ctx,
			vliwq.Request{Loop: src, Unroll: true}, vliwq.StageUnroll)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  after the %s stage at the auto factor: x%d, %d ops (not yet scheduled: %v)\n\n",
			vliwq.StageUnroll, partial.Unrolled, len(partial.AfterUnroll.Ops), partial.Sched == nil)
	}

	sweep("stencil3") // resource-bound, fractional L/S slack: unrolling pays
	sweep("horner")   // recurrence-bound: unrolling cannot beat RecMII
}
