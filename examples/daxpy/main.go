// Copy-operation walk-through on a multi-consumer kernel.
//
// The complex vector product consumes each loaded value twice
// (ar*br - ai*bi and ar*bi + ai*br). Under a queue register file a read
// destroys the value, so each of those values would need two simultaneous
// queue writes — the problem the paper's §2 solves with copy operations
// executed on a dedicated copy FU (Fig. 2). This example shows the
// dependence graph before and after copy insertion, and compares the cost
// of the balanced-tree and chain fanout shapes.
//
// Run with: go run ./examples/daxpy
package main

import (
	"fmt"
	"log"

	"vliwq"
	"vliwq/internal/copyins"
	"vliwq/internal/corpus"
	"vliwq/internal/ir"
)

func main() {
	loop := corpus.ComplexMul()
	fmt.Printf("kernel %s: %d ops, max fanout %d\n\n", loop.Name, len(loop.Ops), loop.MaxFanout())

	// What copy insertion does to the graph.
	ins, err := copyins.Insert(loop, copyins.Tree)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("copy insertion: %d values fanned out through %d copies\n",
		ins.ValuesFanned, ins.CopiesAdded)
	for _, op := range ins.Loop.Ops {
		if op.Kind == ir.KCopy {
			outs := ins.Loop.FlowOutputs(op)
			fmt.Printf("  %v feeds %d consumers\n", op, len(outs))
		}
	}

	// Compile with both fanout shapes and compare.
	fmt.Println()
	for _, shape := range []copyins.Shape{copyins.Tree, copyins.Chain} {
		res, err := vliwq.Compile(loop, vliwq.Options{
			Machine:   vliwq.SingleCluster(6),
			CopyShape: shape,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("shape=%-5v II=%d stages=%d queues=%d IPC=%.2f\n",
			shape, res.II, res.StageCount, res.Queues, res.IPCStatic)
	}

	fmt.Println("\nwithout copies this loop cannot run on a QRF machine:")
	fmt.Println("  each doubly-consumed value would need two simultaneous queue writes")
	fmt.Println("  (the simulator rejects it; see sim.PipeOptions.AllowMultiWrite)")

	// Fanout 2 barely distinguishes the shapes; a value consumed eight
	// times does: the chain puts seven copies in series on the critical
	// path, the balanced tree only 1 + ceil(log2 4) = 3.
	wide := ir.New("broadcast8")
	v := wide.AddOp(ir.KLoad, "v")
	for i := 0; i < 8; i++ {
		st := wide.AddOp(ir.KStore, fmt.Sprintf("st%d", i))
		wide.AddFlow(v, st)
	}
	fmt.Printf("\nbroadcast kernel (%s, fanout %d):\n", wide.Name, wide.MaxFanout())
	for _, shape := range []copyins.Shape{copyins.Tree, copyins.Chain} {
		res, err := vliwq.Compile(wide, vliwq.Options{
			Machine:   vliwq.SingleCluster(12),
			CopyShape: shape,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("shape=%-5v II=%d schedule length=%d stages=%d\n",
			shape, res.II, res.Sched.Length(), res.StageCount)
	}
}
