package vliwq

import (
	"fmt"
	"strconv"
	"strings"

	"vliwq/internal/ir"
)

// Structural (isomorphism-class) caching support: StructuralKey groups
// requests whose loops differ only in naming or statement numbering, and
// RemapResult rewrites a cached Result onto a differently-named spelling
// of the same loop. DESIGN.md §12 documents the layer end to end.

// StructuralKey returns the structural cache/routing key of the request:
// every pipeline knob spelled canonically plus the ir.Fingerprint of the
// parsed loop in place of the loop text. Two requests share a structural
// key exactly when their loops are isomorphic (same dependence structure up
// to operand renaming and statement renumbering) and every knob matches —
// the condition under which one compile can serve both, modulo the remap
// step. The grammar mirrors Canonical():
//
//	"sq1;" "m=" machine ";u=" bool ";f=" int ";s=" shape
//	";mv=" bool ";cl=" int ";sv=" bool ";e=" effort ";fp=" hex-digest
//
// A request that fails Normalize or whose loop fails to parse cannot be
// fingerprinted; it falls back to Canonical(), so invalid requests keep
// exact-key semantics everywhere a structural key is used (gateway routing,
// the service's structural cache lookup).
func (r Request) StructuralKey() string {
	n := r
	if err := n.Normalize(); err != nil {
		return r.Canonical()
	}
	l, err := ir.ParseString(n.Loop)
	if err != nil {
		return r.Canonical()
	}
	var b strings.Builder
	b.Grow(160)
	fmt.Fprintf(&b, "sq1;m=%s;u=%t;f=%d;s=%s;mv=%t;cl=%d;sv=%t;e=%s;fp=%s",
		n.Machine, n.Unroll, n.UnrollFactor, n.CopyShape,
		n.AllowMoves, n.CommLatency, n.SkipVerify, n.Effort, ir.Fingerprint(l))
	return b.String()
}

// RemapResult rewrites a compiled Result onto `to`, a loop that must be
// skeleton-equal to res.Input: identical in every field the pipeline reads
// (kinds, dependences, trip, lineage, statement order) and free to differ
// only in the loop name and operation names. The returned Result is
// byte-identical to what compiling `to` under the same Options would
// produce — Report, KernelSchedule and every artifact render with the
// caller's names — without running any pipeline stage. The structural
// cache layer in internal/service is the intended caller.
//
// Only naming is rewritten: loop bodies are cloned and renamed by lineage
// (an unroll replica of original op i takes its new name from to.Ops[i]),
// the Schedule is shallow-copied with its Loop swapped, and everything
// name-free — Time/Cluster vectors, the Allocation, stage timings, the
// headline metrics — is shared with res. Callers already treat those as
// read-only (Result documents its artifacts as shared pointers).
//
// The skeleton precondition is checked, not assumed: loops that are merely
// isomorphic (equal ir.Fingerprint, permuted statements) are rejected,
// because the scheduler's ID-based tie-breaking may legitimately schedule
// a renumbered body differently, and "byte-identical to a fresh compile"
// is the invariant this function exists to preserve. Callers that want to
// serve a permuted spelling first renumber it into the cached spelling's
// statement order with ir.AlignLike, which restores skeleton equality and
// leaves only names for this function to rewrite.
func RemapResult(res *Result, to *Loop) (*Result, error) {
	if res == nil || res.Input == nil {
		return nil, fmt.Errorf("vliwq: remap of nil result")
	}
	if to == nil {
		return nil, fmt.Errorf("vliwq: remap onto nil loop")
	}
	from := res.Input
	if ir.Skeleton(from) != ir.Skeleton(to) {
		return nil, fmt.Errorf("vliwq: remap skeleton mismatch: loops %q and %q are not name-only isomorphic", from.Name, to.Name)
	}
	if sameNames(from, to) {
		return res, nil
	}

	// The result can reference up to four loop pointers (Input, AfterUnroll,
	// AfterCopies, Sched.Loop), some aliased (AfterUnroll == Input when no
	// unrolling applied). Remap each distinct pointer once and preserve the
	// aliasing structure.
	clones := map[*Loop]*Loop{nil: nil}
	remap := func(l *Loop) *Loop {
		if c, ok := clones[l]; ok {
			return c
		}
		c := remapLoop(l, from, to, res.Unrolled)
		clones[l] = c
		return c
	}

	out := *res
	out.Input = remap(res.Input)
	out.AfterUnroll = remap(res.AfterUnroll)
	out.AfterCopies = remap(res.AfterCopies)
	if res.Sched != nil {
		s := *res.Sched
		s.Loop = remap(res.Sched.Loop)
		out.Sched = &s
	}
	return &out, nil
}

// sameNames reports whether the two loops already agree on every name, in
// which case a remap is the identity.
func sameNames(a, b *Loop) bool {
	if a.Name != b.Name || len(a.Ops) != len(b.Ops) {
		return false
	}
	for i, op := range a.Ops {
		if op.Name != b.Ops[i].Name {
			return false
		}
	}
	return true
}

// remapLoop clones l and renames it from `from`'s naming onto `to`'s,
// following the naming rules of the pipeline stages:
//
//   - synthetic ops (copies, moves) are unnamed and stay unnamed — names
//     are inert to every stage, so a clone's synthetic ops are positioned
//     identically regardless of the input spelling;
//   - an unroll replica (named, Orig >= 0) is named "<base>.<phase>" after
//     its original, so it takes to.Ops[Orig].Name as its new base;
//   - any other named op is an original and takes to.Ops[ID].Name;
//   - the loop name follows the unroll pass's "<name>.x<factor>" scheme.
func remapLoop(l, from, to *Loop, factor int) *Loop {
	c := l.Clone()
	for _, op := range c.Ops {
		if op.Name == "" {
			continue
		}
		if op.Orig >= 0 {
			base := to.Ops[op.Orig].Name
			if base == "" {
				op.Name = ""
			} else {
				op.Name = base + "." + strconv.Itoa(op.Phase)
			}
			continue
		}
		op.Name = to.Ops[op.ID].Name
	}
	switch c.Name {
	case from.Name:
		c.Name = to.Name
	case from.Name + ".x" + strconv.Itoa(factor):
		c.Name = to.Name + ".x" + strconv.Itoa(factor)
	}
	return c
}
