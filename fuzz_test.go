package vliwq_test

import (
	"testing"

	"vliwq"
)

// FuzzParseMachine fuzzes the machine-spec parser, the service's trust
// boundary for attacker-controlled sizing input: whatever it accepts must
// be a valid machine within the documented size cap (a hostile spec must
// never size an allocation).
func FuzzParseMachine(f *testing.F) {
	for _, seed := range []string{
		"single:6", "clustered:4", "clustered:512", "single:1",
		"mesh:4", "single:0", "single:-3", "clustered:500000000",
		"single:6:extra", "clustered:", ":", "single", "clustered:٤",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		cfg, err := vliwq.ParseMachine(spec)
		if err != nil {
			return
		}
		if err := cfg.Validate(); err != nil {
			t.Fatalf("ParseMachine(%q) accepted an invalid machine: %v", spec, err)
		}
		if n := cfg.NumClusters(); n < 1 || n > vliwq.MaxMachineSize {
			t.Fatalf("ParseMachine(%q) sized %d clusters outside [1, %d]", spec, n, vliwq.MaxMachineSize)
		}
	})
}
