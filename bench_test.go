// Benchmarks regenerating every table and figure of the paper's evaluation
// (DESIGN.md §5). Each benchmark runs its experiment on a deterministic
// corpus slice and reports the experiment's headline statistic as a custom
// metric alongside the usual time/op, so `go test -bench=.` doubles as the
// reproduction harness at small scale; cmd/vliwexp runs the full
// 1258-loop corpus.
package vliwq_test

import (
	"context"
	"io"
	"strconv"
	"strings"
	"testing"

	"vliwq/internal/corpus"
	"vliwq/internal/exp"
	"vliwq/internal/ir"
	"vliwq/internal/program"
)

// benchCorpus is the per-iteration workload: big enough for stable
// percentages, small enough to iterate.
func benchCorpus(b *testing.B) []*ir.Loop {
	b.Helper()
	return corpus.Generate(corpus.Params{Seed: corpus.DefaultSeed, N: 64})
}

// BenchmarkRunAll regenerates every figure, table and ablation end to end —
// the whole experiment pipeline over one corpus. This is the headline
// benchmark for the shared compile cache: most (loop, machine, options)
// compilations recur across figures, so the cached pipeline should complete
// the suite several times faster than independent per-figure compilation.
func BenchmarkRunAll(b *testing.B) {
	loops := benchCorpus(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		exp.RunAll(io.Discard, exp.Options{Loops: loops})
	}
}

// cell parses a table cell like "93.8%" or "4.25" into a float.
func cell(b *testing.B, t *exp.Table, row int, col int) float64 {
	b.Helper()
	if row >= len(t.Rows) || col >= len(t.Rows[row]) {
		b.Fatalf("%s: no cell (%d,%d)", t.ID, row, col)
	}
	s := strings.TrimSuffix(strings.TrimSuffix(t.Rows[row][col], "%"), "x")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		b.Fatalf("%s: cell (%d,%d) = %q: %v", t.ID, row, col, t.Rows[row][col], err)
	}
	return v
}

// BenchmarkFig3_QueuesRequired regenerates Fig. 3: % of loops schedulable
// with <= 32 queues per machine, with copy operations.
func BenchmarkFig3_QueuesRequired(b *testing.B) {
	loops := benchCorpus(b)
	var last *exp.Table
	for i := 0; i < b.N; i++ {
		last = exp.Fig3(exp.Options{Loops: loops})
	}
	// Rows alternate without/with copies for 4, 6, 12 FUs; col 5 is <=32.
	b.ReportMetric(cell(b, last, 1, 5), "%loops<=32q/4FU")
	b.ReportMetric(cell(b, last, 3, 5), "%loops<=32q/6FU")
	b.ReportMetric(cell(b, last, 5, 5), "%loops<=32q/12FU")
}

// BenchmarkCopyCost regenerates the §2 text table: % of loops keeping the
// same II after copy insertion (paper: ~95%).
func BenchmarkCopyCost(b *testing.B) {
	loops := benchCorpus(b)
	var last *exp.Table
	for i := 0; i < b.N; i++ {
		last = exp.CopyCost(exp.Options{Loops: loops})
	}
	b.ReportMetric(cell(b, last, 0, 1), "%sameII/4FU")
	b.ReportMetric(cell(b, last, 2, 1), "%sameII/12FU")
}

// BenchmarkFig4_IISpeedup regenerates Fig. 4: % of loops with
// II_speedup > 1 from unrolling.
func BenchmarkFig4_IISpeedup(b *testing.B) {
	loops := benchCorpus(b)
	var last *exp.Table
	for i := 0; i < b.N; i++ {
		last = exp.Fig4(exp.Options{Loops: loops})
	}
	b.ReportMetric(cell(b, last, 0, 1), "%speedup>1/4FU")
	b.ReportMetric(cell(b, last, 1, 1), "%speedup>1/6FU")
	b.ReportMetric(cell(b, last, 2, 1), "%speedup>1/12FU")
}

// BenchmarkUnrollQueues regenerates the §3 queue-demand table (paper: >90%
// of unrolled loops fit 32 queues).
func BenchmarkUnrollQueues(b *testing.B) {
	loops := benchCorpus(b)
	var last *exp.Table
	for i := 0; i < b.N; i++ {
		last = exp.UnrollQueues(exp.Options{Loops: loops})
	}
	b.ReportMetric(cell(b, last, 2, 4), "%loops<=32q/12FU")
}

// BenchmarkFig6_IIVariation regenerates Fig. 6: % of loops whose
// partitioned schedule keeps the single-cluster II, per cluster count.
func BenchmarkFig6_IIVariation(b *testing.B) {
	loops := benchCorpus(b)
	var last *exp.Table
	for i := 0; i < b.N; i++ {
		last = exp.Fig6(exp.Options{Loops: loops})
	}
	b.ReportMetric(cell(b, last, 0, 2), "%sameII/4clusters")
	b.ReportMetric(cell(b, last, 1, 2), "%sameII/5clusters")
	b.ReportMetric(cell(b, last, 2, 2), "%sameII/6clusters")
}

// BenchmarkClusterResources regenerates the §4 sizing result: % of loops
// fitting the Fig. 7 cluster (8 private + 8/dir ring queues).
func BenchmarkClusterResources(b *testing.B) {
	loops := benchCorpus(b)
	var last *exp.Table
	for i := 0; i < b.N; i++ {
		last = exp.ClusterResources(exp.Options{Loops: loops})
	}
	b.ReportMetric(cell(b, last, 0, 3), "%fitsFig7/4clusters")
	b.ReportMetric(cell(b, last, 2, 3), "%fitsFig7/6clusters")
}

// BenchmarkFig8_IPCAllLoops regenerates Fig. 8's end points: static and
// dynamic IPC at 4 and 18 FUs (single cluster), and clustered at 18.
func BenchmarkFig8_IPCAllLoops(b *testing.B) {
	loops := benchCorpus(b)
	var last *exp.Table
	for i := 0; i < b.N; i++ {
		last = exp.Fig8(exp.Options{Loops: loops})
	}
	b.ReportMetric(cell(b, last, 0, 1), "staticIPC/4FU")
	b.ReportMetric(cell(b, last, 14, 1), "staticIPC/18FU-single")
	b.ReportMetric(cell(b, last, 14, 2), "staticIPC/18FU-clustered")
	b.ReportMetric(cell(b, last, 14, 3), "dynIPC/18FU-single")
}

// BenchmarkFig9_IPCResourceConstrained regenerates Fig. 9's end points on
// the resource-constrained subset.
func BenchmarkFig9_IPCResourceConstrained(b *testing.B) {
	loops := benchCorpus(b)
	var last *exp.Table
	for i := 0; i < b.N; i++ {
		last = exp.Fig9(exp.Options{Loops: loops})
	}
	b.ReportMetric(cell(b, last, 0, 1), "staticIPC/4FU")
	b.ReportMetric(cell(b, last, 14, 1), "staticIPC/18FU-single")
	b.ReportMetric(cell(b, last, 14, 2), "staticIPC/18FU-clustered")
}

// BenchmarkAblationCopyShape regenerates ablation A1: balanced tree vs
// chain copy fanout.
func BenchmarkAblationCopyShape(b *testing.B) {
	loops := benchCorpus(b)
	var last *exp.Table
	for i := 0; i < b.N; i++ {
		last = exp.AblationCopyShape(exp.Options{Loops: loops})
	}
	b.ReportMetric(cell(b, last, 0, 1), "meanII/tree")
	b.ReportMetric(cell(b, last, 1, 1), "meanII/chain")
}

// BenchmarkAblationMoveOps regenerates ablation A2 (the paper's §5 future
// work): same-II fraction with and without move operations at 6 clusters.
func BenchmarkAblationMoveOps(b *testing.B) {
	loops := benchCorpus(b)
	var last *exp.Table
	for i := 0; i < b.N; i++ {
		last = exp.AblationMoveOps(exp.Options{Loops: loops})
	}
	b.ReportMetric(cell(b, last, 2, 1), "%sameII/6c-movesoff")
	b.ReportMetric(cell(b, last, 2, 2), "%sameII/6c-moveson")
}

// BenchmarkAblationCommLatency regenerates ablation A3: sensitivity of the
// II to inter-cluster communication latency.
func BenchmarkAblationCommLatency(b *testing.B) {
	loops := benchCorpus(b)
	var last *exp.Table
	for i := 0; i < b.N; i++ {
		last = exp.AblationCommLatency(exp.Options{Loops: loops})
	}
	b.ReportMetric(cell(b, last, 1, 1), "%sameII/lat1")
	b.ReportMetric(cell(b, last, 2, 1), "%sameII/lat2")
}

// BenchmarkProgramSchedule schedules the kernelmix traced program end to
// end — frontend-lifted regions, trivial/hard classification, fast and
// certified tiers, merge + verify — with a fresh compiler session per
// iteration so no cross-iteration caching hides the per-region work.
func BenchmarkProgramSchedule(b *testing.B) {
	p := corpus.TracedPrograms()[0]
	b.ReportAllocs()
	var last *program.Schedule
	for i := 0; i < b.N; i++ {
		s, err := program.ScheduleProgram(context.Background(), p, program.Options{})
		if err != nil {
			b.Fatal(err)
		}
		last = s
	}
	if err := last.Verify(); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(last.SumII()), "sumII")
	b.ReportMetric(float64(last.HardCount()), "hardRegions")
}
