#!/bin/sh
# bench_json.sh <go-test-bench-output-file> [label]
#
# Renders raw `go test -bench -benchmem -count N` output as a JSON
# benchmark record: per benchmark, the median ns/op across the N runs plus
# the last observed B/op and allocs/op. This is the BENCH_*.json format CI
# uploads per PR so the performance trajectory of the repo is a queryable
# artifact rather than a claim.
set -eu
in="$1"
label="${2:-local}"

awk -v label="$label" '
  /^Benchmark/ {
    name = $1
    for (i = 2; i < NF; i++) {
      if ($(i + 1) == "ns/op")     { ns[name] = ns[name] " " $i; n[name]++ }
      if ($(i + 1) == "B/op")      { bp[name] = $i }
      if ($(i + 1) == "allocs/op") { ap[name] = $i }
    }
    if (!(name in seen)) { order[++cnt] = name; seen[name] = 1 }
  }
  function median(list,   a, m, i, j, t) {
    m = split(list, a, " ")
    for (i = 2; i <= m; i++) {
      t = a[i]; j = i - 1
      while (j >= 1 && a[j] + 0 > t + 0) { a[j + 1] = a[j]; j-- }
      a[j + 1] = t
    }
    if (m % 2) return a[(m + 1) / 2]
    return (a[m / 2] + a[m / 2 + 1]) / 2
  }
  BEGIN { printf "{\n  \"label\": \"%s\",\n  \"benchmarks\": [\n", label }
  END {
    for (i = 1; i <= cnt; i++) {
      name = order[i]
      printf "    {\"name\": \"%s\", \"samples\": %d, \"ns_per_op_median\": %.1f, \"b_per_op\": %s, \"allocs_per_op\": %s}%s\n",
        name, n[name], median(ns[name]),
        (bp[name] == "" ? 0 : bp[name]), (ap[name] == "" ? 0 : ap[name]),
        (i < cnt ? "," : "")
    }
    printf "  ]\n}\n"
  }
' "$in"
