#!/bin/sh
# bench_gate.sh <benchstat-comparison-file> [threshold-percent] [baseline-file] [new-file]
#
# Gates a benchstat old-vs-new comparison: exits non-zero when any
# benchmark's sec/op regressed by more than the threshold (default 15%).
# Only the sec/op (legacy: time/op) section gates by percentage — B/op is
# recorded for the trajectory but does not fail the build — and the geomean
# summary line is skipped so one real regression is reported once, by name.
# Works on both benchstat output formats: the table style with a
# "│ sec/op │ ... vs base" header and the legacy
# "name  old time/op  new time/op  delta" style.
#
# When the raw baseline and new benchmark files are also given, two more
# gates arm:
#   - allocs/op cap: every ScheduleLoop* benchmark in the new run must stay
#     at or under ALLOC_CAP allocs/op (528, the pre-bitset scheduler's
#     count — the packed core sits well under it, so crossing the cap means
#     an allocation regression on the hot path, not noise).
#   - missing benchmarks: every benchmark named in the baseline must appear
#     in the new run. A benchmark that silently disappears (renamed,
#     deleted, build-tagged out) would otherwise drop out of the percentage
#     gate without anyone noticing.
set -eu
cmp_file="$1"
threshold="${2:-15}"
baseline_file="${3:-}"
new_file="${4:-}"

ALLOC_CAP=528

awk -v max="$threshold" '
  /sec\/op/ || (/time\/op/ && /delta/) { insec = 1; next }
  /B\/op/ || /alloc\/op/ || /allocs\/op/ { insec = 0 }
  insec && $1 == "geomean"             { next }
  insec {
    # A row was actually *compared* when it carries a delta verdict: a
    # signed percentage or the not-significant tilde. Rows present in only
    # one input (e.g. baseline/new benchmark names that do not match) have
    # neither, and must not count as coverage.
    seencmp = 0
    for (i = 1; i <= NF; i++) {
      if ($i == "~") { seencmp = 1 }
      if ($i ~ /^[+-][0-9]+(\.[0-9]+)?%$/) {
        seencmp = 1
        if ($i ~ /^\+/) {
          v = substr($i, 2, length($i) - 2) + 0
          if (v > max) {
            bad = 1
            printf "sec/op regression beyond %s%%: %s\n", max, $0
          }
        }
      }
    }
    if (seencmp) { compared++ }
  }
  END {
    # A gate that compared nothing is a broken gate, not a green one: a
    # benchstat format change, or baseline/new benchmark names that do not
    # line up (different -cpu, renamed benchmarks), must fail loudly
    # instead of silently waving regressions through.
    if (compared == 0) {
      print "bench gate: BROKEN — no old-vs-new sec/op comparisons found (format change, or baseline and new benchmark names do not match)"
      exit 2
    }
    if (bad) {
      print "bench gate: FAIL (refresh bench/baseline.txt from a CI artifact only for a deliberate, reviewed cost change)"
      exit 1
    }
    print "bench gate: OK (" compared " sec/op comparisons checked, none beyond " max "%)"
  }
' "$cmp_file"

if [ -z "$baseline_file" ] || [ -z "$new_file" ]; then
  echo "bench gate: allocs/op and missing-benchmark gates skipped (raw files not given)"
  exit 0
fi

# Allocs/op cap on the scheduler hot path. Raw `go test -bench` lines look
# like:  BenchmarkScheduleLoopClustered6   870   1234567 ns/op   27674 B/op   240 allocs/op
awk -v cap="$ALLOC_CAP" '
  $1 ~ /^BenchmarkScheduleLoop/ {
    for (i = 2; i < NF; i++) {
      if ($(i + 1) == "allocs/op") {
        checked++
        if ($i + 0 > cap) {
          bad = 1
          printf "allocs/op over the %d cap: %s = %s allocs/op\n", cap, $1, $i
        }
      }
    }
  }
  END {
    if (checked == 0) {
      print "bench gate: BROKEN — no ScheduleLoop allocs/op rows found in the new run (was -benchmem dropped, or the benchmarks renamed?)"
      exit 2
    }
    if (bad) {
      print "bench gate: FAIL — scheduler-path allocation count regressed past the historical " cap " allocs/op"
      exit 1
    }
    print "bench gate: OK (" checked " ScheduleLoop allocs/op rows at or under " cap ")"
  }
' "$new_file"

# Every baseline benchmark must still exist in the new run.
base_names="$(awk '$1 ~ /^Benchmark/ { print $1 }' "$baseline_file" | sort -u)"
new_names="$(awk '$1 ~ /^Benchmark/ { print $1 }' "$new_file" | sort -u)"
missing="$(printf '%s\n' "$base_names" | while read -r n; do
  [ -n "$n" ] || continue
  printf '%s\n' "$new_names" | grep -qx "$n" || printf '%s\n' "$n"
done)"
if [ -n "$missing" ]; then
  echo "bench gate: FAIL — baseline benchmarks missing from the new run (renamed or deleted without refreshing bench/baseline.txt):"
  printf '%s\n' "$missing"
  exit 1
fi
echo "bench gate: OK (every baseline benchmark is present in the new run)"
