#!/bin/sh
# bench_gate.sh <benchstat-comparison-file> [threshold-percent]
#
# Gates a benchstat old-vs-new comparison: exits non-zero when any
# benchmark's sec/op regressed by more than the threshold (default 15%).
# Only the sec/op (legacy: time/op) section gates — B/op and allocs/op are
# recorded for the trajectory but do not fail the build — and the geomean
# summary line is skipped so one real regression is reported once, by name.
# Works on both benchstat output formats: the table style with a
# "│ sec/op │ ... vs base" header and the legacy
# "name  old time/op  new time/op  delta" style.
set -eu
cmp_file="$1"
threshold="${2:-15}"

awk -v max="$threshold" '
  /sec\/op/ || (/time\/op/ && /delta/) { insec = 1; next }
  /B\/op/ || /alloc\/op/ || /allocs\/op/ { insec = 0 }
  insec && $1 == "geomean"             { next }
  insec {
    # A row was actually *compared* when it carries a delta verdict: a
    # signed percentage or the not-significant tilde. Rows present in only
    # one input (e.g. baseline/new benchmark names that do not match) have
    # neither, and must not count as coverage.
    seencmp = 0
    for (i = 1; i <= NF; i++) {
      if ($i == "~") { seencmp = 1 }
      if ($i ~ /^[+-][0-9]+(\.[0-9]+)?%$/) {
        seencmp = 1
        if ($i ~ /^\+/) {
          v = substr($i, 2, length($i) - 2) + 0
          if (v > max) {
            bad = 1
            printf "sec/op regression beyond %s%%: %s\n", max, $0
          }
        }
      }
    }
    if (seencmp) { compared++ }
  }
  END {
    # A gate that compared nothing is a broken gate, not a green one: a
    # benchstat format change, or baseline/new benchmark names that do not
    # line up (different -cpu, renamed benchmarks), must fail loudly
    # instead of silently waving regressions through.
    if (compared == 0) {
      print "bench gate: BROKEN — no old-vs-new sec/op comparisons found (format change, or baseline and new benchmark names do not match)"
      exit 2
    }
    if (bad) {
      print "bench gate: FAIL (refresh bench/baseline.txt from a CI artifact only for a deliberate, reviewed cost change)"
      exit 1
    }
    print "bench gate: OK (" compared " sec/op comparisons checked, none beyond " max "%)"
  }
' "$cmp_file"
