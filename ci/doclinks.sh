#!/bin/sh
# ci/doclinks.sh — fail on broken intra-repo references in the top-level
# docs (README.md, DESIGN.md, CONTRIBUTING.md). Three reference shapes are
# checked:
#
#   1. Markdown links whose target is a relative path: the file must exist
#      (an optional #anchor suffix is stripped, external http(s)/mailto
#      targets are skipped).
#   2. Textual section references of the form "DESIGN.md §N": DESIGN.md
#      must contain a "## §N " heading — a renumbered or deleted section
#      breaks every doc that cites it.
#   3. Backticked repo paths (`cmd/...`, `internal/...`, `ci/...`,
#      `bench/...`, `examples/...`, or a root-level *.md): the path must
#      exist. Paths with globs or placeholders are skipped.
#
# Run from the repo root: sh ci/doclinks.sh
set -u

fail=0
docs="README.md DESIGN.md CONTRIBUTING.md"

err() {
  echo "doclinks: $1" >&2
  fail=1
}

for doc in $docs; do
  [ -f "$doc" ] || { err "$doc is missing"; continue; }

  # 1. Markdown link targets.
  grep -on '](\([^)]*\))' "$doc" | sed 's/:](/ /; s/)$//' |
  while read -r line target; do
    case "$target" in
      http://*|https://*|mailto:*|'#'*) continue ;;
    esac
    path="${target%%#*}"
    [ -e "$path" ] || echo "$doc:$line: broken link target '$target'"
  done | {
    found=0
    while read -r msg; do err "$msg"; found=1; done
    [ "$found" = 0 ]
  } || fail=1

  # 2. "DESIGN.md §N" section references.
  grep -on 'DESIGN\.md §[0-9][0-9]*' "$doc" | sort -u |
  while read -r ref; do
    line="${ref%%:*}"
    sec="${ref##*§}"
    grep -q "^## §$sec " DESIGN.md || echo "$doc:$line: reference to DESIGN.md §$sec, but DESIGN.md has no '## §$sec ' heading"
  done | {
    found=0
    while read -r msg; do err "$msg"; found=1; done
    [ "$found" = 0 ]
  } || fail=1

  # 3. Backticked repo paths.
  grep -on '`[^`]*`' "$doc" | sed 's/:`/ /; s/`$//' |
  while read -r line path; do
    case "$path" in
      *'*'*|*'<'*|*' '*|*'$'*) continue ;;
      # CI artifacts the docs describe but the repo never commits.
      bench/new.txt|bench/compare.txt) continue ;;
      cmd/*|internal/*|ci/*|bench/*|examples/*) ;;
      *.md) case "$path" in */*) continue ;; esac ;;
      *) continue ;;
    esac
    [ -e "$path" ] && continue
    # A Go symbol spelled with its package path (`internal/ir.OpKind`):
    # strip the symbol and require the package directory instead.
    pkg=$(printf '%s' "$path" | sed 's#\.[A-Za-z_][A-Za-z0-9_.]*$##')
    [ "$pkg" != "$path" ] && [ -d "$pkg" ] && continue
    echo "$doc:$line: backticked path '$path' does not exist"
  done | {
    found=0
    while read -r msg; do err "$msg"; found=1; done
    [ "$found" = 0 ]
  } || fail=1
done

if [ "$fail" != 0 ]; then
  echo "doclinks: FAILED" >&2
  exit 1
fi
echo "doclinks: all intra-repo references resolve"
