package vliwq

import (
	"context"
	"fmt"
	"runtime"

	"vliwq/internal/cache"
	"vliwq/internal/pool"
)

// CompilerConfig tunes a Compiler session. The zero value is a sensible
// session: library defaults ("single:6", fast effort), an unbounded result
// cache, GOMAXPROCS batch workers. Long-running sessions fed by untrusted
// request streams should bound the cache (the vliwd service layers its own
// bounded whole-response cache instead and runs its Compiler uncached).
type CompilerConfig struct {
	// Machine is the session's default machine spec ("single:<n>" /
	// "clustered:<n>"), applied to requests that omit one; "" falls
	// through to the library default "single:6". An unparseable default
	// surfaces as a per-Run error.
	Machine string
	// Effort is the session's default scheduler effort, applied to
	// requests that omit one; "" falls through to "fast".
	Effort string
	// CacheEntries bounds the session's result cache: 0 means unbounded,
	// a negative value disables caching (every Run compiles). The cache is
	// keyed by Request.Canonical() plus the RunUntil cutoff, so identical
	// requests share one compilation per session.
	CacheEntries int
	// Workers bounds RunBatch parallelism; 0 uses GOMAXPROCS.
	Workers int
}

// runOutcome is the cached unit of a Compiler session: one request's
// Result or its error (compilation is deterministic, so errors cache as
// well as successes).
type runOutcome struct {
	res *Result
	err error
}

// Compiler is a configured compilation session: session defaults plus an
// optional shared result cache over the staged pipeline engine. It is safe
// for concurrent use; cached Results are shared pointers and must be
// treated as read-only. Create one with NewCompiler.
type Compiler struct {
	cfg   CompilerConfig
	cache *cache.Cache[string, runOutcome] // nil when caching is disabled
}

// NewCompiler builds a session from cfg. It never fails: an invalid
// session default (a bad Machine or Effort spec) surfaces as an error from
// the first Run that relies on it, exactly as if the request had carried
// the bad value itself.
func NewCompiler(cfg CompilerConfig) *Compiler {
	c := &Compiler{cfg: cfg}
	if cfg.CacheEntries >= 0 {
		c.cache = cache.New[string, runOutcome](
			cache.Options{MaxEntries: cfg.CacheEntries}, cache.StringHash)
	}
	return c
}

// prepare applies the session defaults to a request and normalizes it.
func (c *Compiler) prepare(req Request) (Request, error) {
	if req.Machine == "" {
		req.Machine = c.cfg.Machine
	}
	if req.Effort == "" {
		req.Effort = c.cfg.Effort
	}
	err := req.Normalize()
	return req, err
}

// Run compiles one request through the full pipeline: parse, unroll, copy
// insertion, partitioned modulo scheduling, queue allocation and — unless
// the request skips it — simulator verification. Fast-effort output is
// byte-identical to the historical Compile path (both run the same staged
// engine). Results may be served from the session cache; a cached compile
// runs detached from the requesting context so one cancelled caller
// cannot poison the shared entry.
func (c *Compiler) Run(ctx context.Context, req Request) (*Result, error) {
	return c.RunUntil(ctx, req, StageVerify)
}

// RunUntil compiles a request but stops the pipeline after the named
// stage, returning a partial Result whose artifact fields (AfterUnroll,
// AfterCopies, Sched, Alloc) and Stages timings cover exactly the stages
// that ran — the staged mode behind vliwsched -dump-after. StageVerify
// runs the full pipeline (still honouring Request.SkipVerify).
func (c *Compiler) RunUntil(ctx context.Context, req Request, until Stage) (*Result, error) {
	if until >= NumStages {
		return nil, fmt.Errorf("vliwq: unknown stage %d", uint8(until))
	}
	req, err := c.prepare(req)
	if err != nil {
		return nil, err
	}
	if c.cache == nil {
		return c.compute(ctx, req, until)
	}
	// The cutoff participates in the key: a partial artifact must never be
	// replayed as a full compilation or vice versa.
	key := req.Canonical() + ";until=" + until.String()
	oc := c.cache.Do(key, func() runOutcome {
		res, err := c.compute(context.Background(), req, until)
		return runOutcome{res: res, err: err}
	})
	return oc.res, oc.err
}

// compute parses and compiles one prepared request.
func (c *Compiler) compute(ctx context.Context, req Request, until Stage) (*Result, error) {
	loop, err := ParseLoop(req.Loop)
	if err != nil {
		return nil, err
	}
	opts, err := req.Options()
	if err != nil {
		return nil, err
	}
	return compileStaged(ctx, loop, opts, until)
}

// RunBatch compiles every request on a fixed pool of workers and returns
// the results in input order: out[i] always corresponds to reqs[i]. When
// ctx is cancelled, unstarted requests report ctx.Err() and the returned
// slice still has len(reqs) entries — the same contract as CompileBatch,
// which this supersedes for request-shaped inputs.
func (c *Compiler) RunBatch(ctx context.Context, reqs []Request) []BatchResult {
	out := make([]BatchResult, len(reqs))
	workers := c.cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	pool.Run(ctx, len(reqs), workers, func(i int) {
		r, err := c.RunUntil(ctx, reqs[i], StageVerify)
		out[i] = BatchResult{Result: r, Err: err}
	}, func(i int) {
		out[i] = BatchResult{Err: ctx.Err()}
	})
	return out
}

// CompilerStats snapshots a session's result-cache counters. It mirrors
// the internal cache counters so the facade's exported surface stays
// self-contained.
type CompilerStats struct {
	Hits      int64 // Run found an existing entry
	Misses    int64 // Run compiled (and cached) the entry
	Evictions int64 // entries dropped by the size bound
	Entries   int64 // current entry count
}

// Stats snapshots the session cache counters; a zero CompilerStats is
// returned when caching is disabled.
func (c *Compiler) Stats() CompilerStats {
	if c.cache == nil {
		return CompilerStats{}
	}
	st := c.cache.Stats()
	return CompilerStats{Hits: st.Hits, Misses: st.Misses, Evictions: st.Evictions, Entries: st.Entries}
}
