// Package machine models the clustered VLIW target of the paper: clusters of
// functional units attached to private queue register files, interconnected
// by a bidirectional ring of communication queues (paper Figs. 5 and 7).
//
// A Config with a single cluster models the "ideal" single-cluster VLIW the
// paper uses as the performance baseline; multi-cluster configs add the ring
// topology and its adjacency constraint on inter-cluster communication.
package machine

import (
	"fmt"
	"strings"

	"vliwq/internal/ir"
)

// FUClass identifies a functional-unit class. Every operation kind executes
// on exactly one class.
type FUClass uint8

const (
	// LS executes loads and stores.
	LS FUClass = iota
	// ALU executes single-cycle integer/float ALU operations.
	ALU
	// MUL executes multiplies and divides.
	MUL
	// COPY executes queue copy operations (and inter-cluster moves in the
	// move-op extension). The paper adds these units on top of the quoted
	// FU counts ("plus the required FUs to support copy operations").
	COPY
	// NumClasses is the number of FU classes.
	NumClasses
)

var classNames = [...]string{LS: "L/S", ALU: "ADD", MUL: "MUL", COPY: "COPY"}

func (c FUClass) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return fmt.Sprintf("FUClass(%d)", uint8(c))
}

// ClassOf returns the FU class executing the given operation kind.
func ClassOf(k ir.OpKind) FUClass {
	switch k {
	case ir.KLoad, ir.KStore:
		return LS
	case ir.KAdd:
		return ALU
	case ir.KMul, ir.KDiv:
		return MUL
	case ir.KCopy, ir.KMove:
		return COPY
	}
	return NumClasses // invalid
}

// Cluster describes one cluster: FU counts per class plus its private queue
// register file.
type Cluster struct {
	FUs           [NumClasses]int
	PrivateQueues int // number of queues in the private QRF (paper: 8)
	QueueDepth    int // positions per queue; 0 = unbounded (analysis mode)
}

// Config is a complete machine description.
type Config struct {
	Name     string
	Clusters []Cluster
	// RingQueues is the number of communication queues per direction on
	// each ring link between adjacent clusters (paper: 8).
	RingQueues int
	// CommLatency is the extra latency, in cycles, of delivering a value to
	// an adjacent cluster through a ring queue. The paper's model writes
	// directly into the neighbour's communication queue (latency 0).
	CommLatency int
	// AllowMoves enables the move-operation extension (paper §5, future
	// work): values may hop between non-adjacent clusters through chains of
	// move operations executed on COPY units.
	AllowMoves bool
}

// NumClusters returns the number of clusters.
func (c *Config) NumClusters() int { return len(c.Clusters) }

// FUCount returns the number of FUs of class cl in cluster idx.
func (c *Config) FUCount(idx int, cl FUClass) int { return c.Clusters[idx].FUs[cl] }

// TotalFUs returns the machine-wide FU count per class.
func (c *Config) TotalFUs() [NumClasses]int {
	var t [NumClasses]int
	for _, cl := range c.Clusters {
		for i := range cl.FUs {
			t[i] += cl.FUs[i]
		}
	}
	return t
}

// ComputeFUs returns the number of "computation" FUs (excluding COPY units),
// the number the paper quotes when naming a machine (e.g. "12 FUs").
func (c *Config) ComputeFUs() int {
	n := 0
	for _, cl := range c.Clusters {
		n += cl.FUs[LS] + cl.FUs[ALU] + cl.FUs[MUL]
	}
	return n
}

// Spec returns the machine in the "single:<fus>" / "clustered:<clusters>"
// notation the tools and the vliwd service share, derived structurally: one
// cluster reports its computation-FU count, several report the cluster
// count. For configurations built by SingleCluster, Clustered or the
// facade's ParseMachine the spec round-trips — ParseMachine(c.Spec())
// rebuilds an identical Config — which is what lets stats reports and
// request builders print a spec instead of dumping the struct. AllowMoves
// and CommLatency are not part of the notation (requests carry them as
// separate fields), and hand-assembled Configs with custom cluster mixes
// only round-trip their shape, not their exact FU layout.
func (c *Config) Spec() string {
	// A communication ring marks a clustered machine even at one cluster
	// (Clustered(1) has ring queues; SingleCluster never does).
	if len(c.Clusters) > 1 || c.RingQueues > 0 {
		return fmt.Sprintf("clustered:%d", len(c.Clusters))
	}
	return fmt.Sprintf("single:%d", c.ComputeFUs())
}

// RingDistance returns the minimal hop distance between clusters a and b on
// the bidirectional ring.
func (c *Config) RingDistance(a, b int) int {
	n := len(c.Clusters)
	if n == 0 {
		return 0
	}
	d := a - b
	if d < 0 {
		d = -d
	}
	if w := n - d; w < d {
		d = w
	}
	return d
}

// Adjacent reports whether clusters a and b are the same or ring-adjacent
// (distance <= 1); only such pairs may communicate without move operations.
func (c *Config) Adjacent(a, b int) bool { return c.RingDistance(a, b) <= 1 }

// Validate checks the configuration invariants.
func (c *Config) Validate() error {
	if len(c.Clusters) == 0 {
		return fmt.Errorf("machine %q: no clusters", c.Name)
	}
	for i, cl := range c.Clusters {
		total := 0
		for _, n := range cl.FUs {
			if n < 0 {
				return fmt.Errorf("machine %q: cluster %d has a negative FU count", c.Name, i)
			}
			total += n
		}
		if total == 0 {
			return fmt.Errorf("machine %q: cluster %d has no FUs", c.Name, i)
		}
		if cl.PrivateQueues < 0 || cl.QueueDepth < 0 {
			return fmt.Errorf("machine %q: cluster %d has negative queue parameters", c.Name, i)
		}
	}
	if c.RingQueues < 0 || c.CommLatency < 0 {
		return fmt.Errorf("machine %q: negative ring parameters", c.Name)
	}
	return nil
}

func (c *Config) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %d cluster(s)", c.Name, len(c.Clusters))
	if len(c.Clusters) > 0 {
		cl := c.Clusters[0]
		fmt.Fprintf(&b, " [%d L/S, %d ADD, %d MUL, %d COPY; %d queues]",
			cl.FUs[LS], cl.FUs[ALU], cl.FUs[MUL], cl.FUs[COPY], cl.PrivateQueues)
	}
	if len(c.Clusters) > 1 {
		fmt.Fprintf(&b, " ring %d queues/dir", c.RingQueues)
	}
	return b.String()
}
