package machine

import (
	"testing"

	"vliwq/internal/ir"
)

func TestClassOf(t *testing.T) {
	want := map[ir.OpKind]FUClass{
		ir.KLoad: LS, ir.KStore: LS,
		ir.KAdd: ALU,
		ir.KMul: MUL, ir.KDiv: MUL,
		ir.KCopy: COPY, ir.KMove: COPY,
	}
	for k, c := range want {
		if got := ClassOf(k); got != c {
			t.Errorf("ClassOf(%v) = %v, want %v", k, got, c)
		}
	}
	if ClassOf(ir.KInvalid) != NumClasses {
		t.Error("invalid kind must map outside the class range")
	}
}

func TestSingleClusterMixes(t *testing.T) {
	cases := []struct {
		n                  int
		ls, alu, mul, copy int
	}{
		{4, 1, 2, 1, 2},
		{6, 2, 2, 2, 2},
		{12, 4, 4, 4, 4},
		{5, 2, 2, 1, 2},
		{18, 6, 6, 6, 6},
	}
	for _, c := range cases {
		cfg := SingleCluster(c.n)
		if err := cfg.Validate(); err != nil {
			t.Fatalf("n=%d: %v", c.n, err)
		}
		fus := cfg.Clusters[0].FUs
		if fus[LS] != c.ls || fus[ALU] != c.alu || fus[MUL] != c.mul || fus[COPY] != c.copy {
			t.Errorf("n=%d: got %v, want LS=%d ALU=%d MUL=%d COPY=%d", c.n, fus, c.ls, c.alu, c.mul, c.copy)
		}
		if cfg.ComputeFUs() != c.n {
			t.Errorf("n=%d: ComputeFUs = %d", c.n, cfg.ComputeFUs())
		}
		if cfg.NumClusters() != 1 {
			t.Errorf("n=%d: single cluster expected", c.n)
		}
	}
}

func TestClusteredShape(t *testing.T) {
	for _, nc := range []int{2, 4, 5, 6} {
		cfg := Clustered(nc)
		if err := cfg.Validate(); err != nil {
			t.Fatalf("nc=%d: %v", nc, err)
		}
		if cfg.NumClusters() != nc {
			t.Fatalf("nc=%d: got %d clusters", nc, cfg.NumClusters())
		}
		if cfg.ComputeFUs() != 3*nc {
			t.Fatalf("nc=%d: ComputeFUs = %d, want %d", nc, cfg.ComputeFUs(), 3*nc)
		}
		for i, cl := range cfg.Clusters {
			if cl.FUs[LS] != 1 || cl.FUs[ALU] != 1 || cl.FUs[MUL] != 1 || cl.FUs[COPY] != 1 {
				t.Fatalf("nc=%d cluster %d: FU mix %v", nc, i, cl.FUs)
			}
			if cl.PrivateQueues != DefaultPrivateQueues {
				t.Fatalf("nc=%d cluster %d: %d private queues", nc, i, cl.PrivateQueues)
			}
		}
		if cfg.RingQueues != DefaultRingQueues {
			t.Fatalf("nc=%d: ring queues %d", nc, cfg.RingQueues)
		}
	}
}

func TestRingDistanceAndAdjacency(t *testing.T) {
	cfg := Clustered(6)
	cases := []struct{ a, b, d int }{
		{0, 0, 0}, {0, 1, 1}, {0, 5, 1}, {0, 2, 2}, {0, 3, 3}, {1, 4, 3}, {2, 5, 3}, {4, 1, 3},
	}
	for _, c := range cases {
		if got := cfg.RingDistance(c.a, c.b); got != c.d {
			t.Errorf("RingDistance(%d,%d) = %d, want %d", c.a, c.b, got, c.d)
		}
		if got := cfg.RingDistance(c.b, c.a); got != c.d {
			t.Errorf("RingDistance(%d,%d) not symmetric", c.b, c.a)
		}
		if cfg.Adjacent(c.a, c.b) != (c.d <= 1) {
			t.Errorf("Adjacent(%d,%d) inconsistent with distance %d", c.a, c.b, c.d)
		}
	}
}

func TestRingDistanceSmallRings(t *testing.T) {
	cfg2 := Clustered(2)
	if cfg2.RingDistance(0, 1) != 1 || !cfg2.Adjacent(0, 1) {
		t.Fatal("2-cluster ring adjacency wrong")
	}
	cfg1 := Clustered(1)
	if cfg1.RingDistance(0, 0) != 0 {
		t.Fatal("1-cluster ring distance wrong")
	}
	cfg3 := Clustered(3)
	// Every pair in a 3-ring is adjacent.
	for a := 0; a < 3; a++ {
		for b := 0; b < 3; b++ {
			if !cfg3.Adjacent(a, b) {
				t.Fatalf("3-ring pair (%d,%d) not adjacent", a, b)
			}
		}
	}
}

func TestTotalFUs(t *testing.T) {
	cfg := Clustered(4)
	total := cfg.TotalFUs()
	if total[LS] != 4 || total[ALU] != 4 || total[MUL] != 4 || total[COPY] != 4 {
		t.Fatalf("TotalFUs = %v", total)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	bad := []Config{
		{Name: "empty"},
		{Name: "nofu", Clusters: []Cluster{{}}},
		{Name: "neg", Clusters: []Cluster{{FUs: [NumClasses]int{LS: -1, ALU: 2}}}},
		{Name: "negq", Clusters: []Cluster{{FUs: [NumClasses]int{ALU: 1}, PrivateQueues: -1}}},
		{Name: "negring", Clusters: []Cluster{{FUs: [NumClasses]int{ALU: 1}}}, RingQueues: -2},
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: accepted", cfg.Name)
		}
	}
}

func TestSingleClusterPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SingleCluster(0)
}

func TestConfigString(t *testing.T) {
	cfg := Clustered(4)
	if cfg.String() == "" {
		t.Fatal("empty String()")
	}
}
