package machine

import "fmt"

// Standard configurations used by the paper's experiments.

// DefaultPrivateQueues is the per-cluster private QRF size the paper
// converges on (Fig. 7).
const DefaultPrivateQueues = 8

// DefaultRingQueues is the number of ring queues per direction per link
// (Fig. 7: "another 16 queues to implement the communication ring (8 to be
// used in each direction)").
const DefaultRingQueues = 8

// SingleCluster builds a one-cluster machine with n computation FUs plus
// enough COPY units (one per started triple of FUs, matching the paper's
// one-copy-unit-per-cluster provisioning). The class mix follows the
// cluster building block {1 L/S, 1 ADD, 1 MUL}: n/3 of each, with the
// remainder given to ADD first, then L/S.
//
// For analysis flexibility the single-cluster QRF is sized generously
// (queues = 64, unbounded depth); experiments measure how many queues were
// actually needed.
func SingleCluster(n int) Config {
	if n < 1 {
		panic(fmt.Sprintf("machine.SingleCluster: need at least 1 FU, got %d", n))
	}
	var fus [NumClasses]int
	base := n / 3
	fus[LS], fus[ALU], fus[MUL] = base, base, base
	switch n % 3 {
	case 1:
		fus[ALU]++
	case 2:
		fus[ALU]++
		fus[LS]++
	}
	fus[COPY] = (n + 2) / 3
	return Config{
		Name: fmt.Sprintf("single-%dfu", n),
		Clusters: []Cluster{{
			FUs:           fus,
			PrivateQueues: 64,
		}},
	}
}

// Clustered builds the paper's clustered machine: nClusters clusters of
// {1 L/S, 1 ADD, 1 MUL, 1 COPY}, each with an 8-queue private QRF,
// interconnected by a bidirectional ring with 8 communication queues per
// direction (Figs. 5 and 7). The quoted machine size is 3*nClusters
// computation FUs (4 clusters = "12 FUs").
func Clustered(nClusters int) Config {
	if nClusters < 1 {
		panic(fmt.Sprintf("machine.Clustered: need at least 1 cluster, got %d", nClusters))
	}
	clusters := make([]Cluster, nClusters)
	for i := range clusters {
		clusters[i] = Cluster{
			FUs:           [NumClasses]int{LS: 1, ALU: 1, MUL: 1, COPY: 1},
			PrivateQueues: DefaultPrivateQueues,
		}
	}
	return Config{
		Name:       fmt.Sprintf("clustered-%dx3fu", nClusters),
		Clusters:   clusters,
		RingQueues: DefaultRingQueues,
	}
}

// PaperSingleClusterFUs lists the single-cluster machine sizes of the
// copy-op and unrolling experiments (Figs. 3 and 4).
var PaperSingleClusterFUs = []int{4, 6, 12}

// PaperClusterCounts lists the cluster counts of the partitioning
// experiments (Fig. 6): 4, 5 and 6 clusters = 12, 15, 18 FUs.
var PaperClusterCounts = []int{4, 5, 6}
