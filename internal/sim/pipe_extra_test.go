package sim_test

import (
	"testing"

	"vliwq/internal/copyins"
	"vliwq/internal/corpus"
	"vliwq/internal/ir"
	"vliwq/internal/machine"
	"vliwq/internal/queue"
	"vliwq/internal/sched"
	"vliwq/internal/sim"
	"vliwq/internal/unroll"
)

// TestUnrolledPipelineEndToEnd verifies the full pipeline including
// unrolling: the pipelined execution of the unrolled body must store
// exactly what the sequential original stores, keyed in the original
// iteration space.
func TestUnrolledPipelineEndToEnd(t *testing.T) {
	cfg := machine.Clustered(4)
	for _, name := range []string{"stencil3", "hydro", "fir5"} {
		l := corpus.KernelByName(name)
		u, err := unroll.Unroll(l, 3)
		if err != nil {
			t.Fatal(err)
		}
		ins, err := copyins.Insert(u, copyins.Tree)
		if err != nil {
			t.Fatal(err)
		}
		s, err := sched.ScheduleLoop(ins.Loop, cfg, sched.Options{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		a := queue.Allocate(s)
		const bodyIters = 12
		pipe, err := sim.Pipelined(s, a, sim.PipeOptions{N: bodyIters})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		refOrig, err := sim.Reference(l, bodyIters*3)
		if err != nil {
			t.Fatal(err)
		}
		if err := sim.CompareStores(pipe.Stores, refOrig.Stores, false); err != nil {
			t.Fatalf("%s unrolled pipeline diverges from original: %v", name, err)
		}
	}
}

// TestPipelineWithCommLatency: non-zero inter-cluster latency shifts write
// times; the tag checks must still pass end to end.
func TestPipelineWithCommLatency(t *testing.T) {
	cfg := machine.Clustered(4)
	cfg.CommLatency = 2
	for _, l := range corpus.Generate(corpus.Params{Seed: 61, N: 20}) {
		ins, err := copyins.Insert(l, copyins.Tree)
		if err != nil {
			t.Fatal(err)
		}
		s, err := sched.ScheduleLoop(ins.Loop, cfg, sched.Options{})
		if err != nil {
			t.Fatalf("%s: %v", l.Name, err)
		}
		a := queue.Allocate(s)
		if err := sim.VerifyPipeline(s, a, 16); err != nil {
			t.Fatalf("%s: %v", l.Name, err)
		}
	}
}

// TestPipelineWithMoves: the move-op extension's inserted chains must
// deliver the right values through intermediate clusters.
func TestPipelineWithMoves(t *testing.T) {
	cfg := machine.Clustered(6)
	cfg.AllowMoves = true
	verified, withMoves := 0, 0
	for _, l := range corpus.Generate(corpus.Params{Seed: 62, N: 40}) {
		ins, err := copyins.Insert(l, copyins.Tree)
		if err != nil {
			t.Fatal(err)
		}
		s, err := sched.ScheduleLoop(ins.Loop, cfg, sched.Options{})
		if err != nil {
			t.Fatalf("%s: %v", l.Name, err)
		}
		for _, op := range s.Loop.Ops {
			if op.Kind == ir.KMove {
				withMoves++
				break
			}
		}
		a := queue.Allocate(s)
		if err := sim.VerifyPipeline(s, a, 12); err != nil {
			t.Fatalf("%s: %v", l.Name, err)
		}
		verified++
	}
	if verified == 0 {
		t.Fatal("nothing verified")
	}
	t.Logf("verified %d loops, %d containing move chains", verified, withMoves)
}

func TestCompareStoresDetectsDifferences(t *testing.T) {
	a := map[sim.StoreKey]int64{{Op: 1, Iter: 0}: 10, {Op: 1, Iter: 1}: 20}
	b := map[sim.StoreKey]int64{{Op: 1, Iter: 0}: 10, {Op: 1, Iter: 1}: 21}
	if err := sim.CompareStores(a, b, false); err == nil {
		t.Fatal("value mismatch not detected")
	}
	c := map[sim.StoreKey]int64{{Op: 1, Iter: 0}: 10}
	if err := sim.CompareStores(a, c, false); err == nil {
		t.Fatal("missing key not detected")
	}
	if err := sim.CompareStores(c, a, false); err == nil {
		t.Fatal("extra key not detected")
	}
	// onlyCommon tolerates missing keys in the second map only.
	if err := sim.CompareStores(a, c, true); err != nil {
		t.Fatalf("onlyCommon rejected truncated execution: %v", err)
	}
}

// TestReferenceMemOrderIndependent: memory and ordering dependences
// constrain schedules, not sequential semantics; adding them must not
// change reference results.
func TestReferenceMemOrderIndependent(t *testing.T) {
	l := corpus.Daxpy()
	r1, err := sim.Reference(l, 16)
	if err != nil {
		t.Fatal(err)
	}
	l2 := l.Clone()
	l2.AddDep(ir.Dep{From: 5, To: 0, Dist: 1, Kind: ir.Mem})
	r2, err := sim.Reference(l2, 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.CompareStores(r1.Stores, r2.Stores, false); err != nil {
		t.Fatal(err)
	}
}

// TestPipelinedQueueDepthEnforced: a machine declaring a tiny queue depth
// must reject executions that need deeper queues.
func TestPipelinedQueueDepthEnforced(t *testing.T) {
	l := corpus.Wave2()
	cfg := machine.SingleCluster(6)
	cfg.Clusters[0].QueueDepth = 1
	ins, err := copyins.Insert(l, copyins.Tree)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.ScheduleLoop(ins.Loop, cfg, sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	a := queue.Allocate(s)
	_, errPipe := sim.Pipelined(s, a, sim.PipeOptions{N: 20})
	// Depth 1 may or may not suffice depending on the schedule; if the
	// allocator says deeper queues are needed, the simulator must agree.
	if a.MaxDepth() > 1 && errPipe == nil {
		t.Fatalf("allocator needs depth %d but simulator accepted depth 1", a.MaxDepth())
	}
	if a.MaxDepth() <= 1 && errPipe != nil {
		t.Fatalf("depth 1 suffices per allocator, simulator disagreed: %v", errPipe)
	}
}

// TestPipelinedReportsCycles: the simulated span must match the modeled
// pipelined length within one stage (drain details).
func TestPipelinedReportsCycles(t *testing.T) {
	l := corpus.KernelByName("daxpy")
	ins, err := copyins.Insert(l, copyins.Tree)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.ScheduleLoop(ins.Loop, machine.SingleCluster(6), sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	a := queue.Allocate(s)
	n := 30
	res, err := sim.Pipelined(s, a, sim.PipeOptions{N: n})
	if err != nil {
		t.Fatal(err)
	}
	modeled := sched.PipelinedLength(s, n)
	if res.Cycles > modeled+s.II || res.Cycles < modeled-s.Length() {
		t.Fatalf("simulated %d cycles, modeled %d", res.Cycles, modeled)
	}
	if res.Issues != n*len(s.Loop.Ops) {
		t.Fatalf("issued %d instances, want %d", res.Issues, n*len(s.Loop.Ops))
	}
}
