package sim_test

import (
	"strings"
	"testing"

	"vliwq/internal/copyins"
	"vliwq/internal/corpus"
	"vliwq/internal/ir"
	"vliwq/internal/machine"
	"vliwq/internal/queue"
	"vliwq/internal/sched"
	"vliwq/internal/sim"
)

// compile runs the full pipeline: copy insertion, scheduling, allocation.
func compile(t *testing.T, l *ir.Loop, cfg machine.Config) (*sched.Schedule, *queue.Allocation) {
	t.Helper()
	ins, err := copyins.Insert(l, copyins.Tree)
	if err != nil {
		t.Fatalf("copyins(%s): %v", l.Name, err)
	}
	s, err := sched.ScheduleLoop(ins.Loop, cfg, sched.Options{})
	if err != nil {
		t.Fatalf("schedule(%s on %s): %v", l.Name, cfg.Name, err)
	}
	if err := s.Verify(); err != nil {
		t.Fatalf("schedule verify(%s): %v", l.Name, err)
	}
	a := queue.Allocate(s)
	if err := a.Verify(); err != nil {
		t.Fatalf("alloc verify(%s): %v", l.Name, err)
	}
	return s, a
}

func TestReferenceDeterministic(t *testing.T) {
	l := corpus.Daxpy()
	r1, err := sim.Reference(l, 20)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := sim.Reference(l, 20)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.CompareStores(r1.Stores, r2.Stores, false); err != nil {
		t.Fatal(err)
	}
	if len(r1.Stores) != 20 {
		t.Fatalf("daxpy stores one value per iteration, got %d for 20 iters", len(r1.Stores))
	}
}

func TestKernelsEndToEndSingleCluster(t *testing.T) {
	cfg := machine.SingleCluster(6)
	for _, l := range corpus.Kernels() {
		l := l
		t.Run(l.Name, func(t *testing.T) {
			s, a := compile(t, l, cfg)
			if err := sim.VerifyPipeline(s, a, 40); err != nil {
				t.Fatalf("pipeline(%s): %v", l.Name, err)
			}
		})
	}
}

func TestKernelsEndToEndClustered(t *testing.T) {
	cfg := machine.Clustered(4)
	for _, l := range corpus.Kernels() {
		l := l
		t.Run(l.Name, func(t *testing.T) {
			s, a := compile(t, l, cfg)
			if err := sim.VerifyPipeline(s, a, 40); err != nil {
				t.Fatalf("pipeline(%s): %v", l.Name, err)
			}
		})
	}
}

func TestCorpusSampleEndToEnd(t *testing.T) {
	loops := corpus.Generate(corpus.Params{Seed: 7, N: 60})
	configs := []machine.Config{machine.SingleCluster(4), machine.SingleCluster(12), machine.Clustered(4)}
	for _, cfg := range configs {
		for _, l := range loops {
			s, a := compile(t, l, cfg)
			if err := sim.VerifyPipeline(s, a, 24); err != nil {
				t.Fatalf("pipeline(%s on %s): %v", l.Name, cfg.Name, err)
			}
		}
	}
}

func TestPipelinedRejectsFanoutWithoutCopies(t *testing.T) {
	l := corpus.ComplexMul() // every input value consumed twice
	cfg := machine.SingleCluster(6)
	s, err := sched.ScheduleLoop(l, cfg, sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	a := queue.Allocate(s)
	_, err = sim.Pipelined(s, a, sim.PipeOptions{N: 10})
	if err == nil || !strings.Contains(err.Error(), "simultaneous writes") {
		t.Fatalf("expected simultaneous-write rejection, got %v", err)
	}
	// With AllowMultiWrite the same schedule must execute correctly.
	res, err := sim.Pipelined(s, a, sim.PipeOptions{N: 10, AllowMultiWrite: true})
	if err != nil {
		t.Fatalf("multi-write execution failed: %v", err)
	}
	ref, err := sim.Reference(l, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.CompareStores(ref.Stores, res.Stores, false); err != nil {
		t.Fatal(err)
	}
}

func TestPipelinedCatchesBadAllocation(t *testing.T) {
	// Force two incompatible lifetimes into one queue by corrupting a
	// valid allocation; the simulator must flag the FIFO violation.
	l := corpus.FIR5()
	cfg := machine.SingleCluster(6)
	ins, err := copyins.Insert(l, copyins.Tree)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.ScheduleLoop(ins.Loop, cfg, sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	a := queue.Allocate(s)
	// Move every lifetime into queue 0 of its location.
	bad := *a
	bad.Assignments = append([]queue.Assignment(nil), a.Assignments...)
	changed := false
	for i := range bad.Assignments {
		if bad.Assignments[i].Queue != 0 {
			bad.Assignments[i].Queue = 0
			changed = true
		}
	}
	if !changed {
		t.Skip("allocation already single-queue; nothing to corrupt")
	}
	if err := bad.Verify(); err == nil {
		t.Fatal("corrupted allocation passed Verify")
	}
	if _, err := sim.Pipelined(s, &bad, sim.PipeOptions{N: 12}); err == nil {
		t.Fatal("simulator accepted an allocation that violates Q-compatibility")
	}
}
