package sim

import (
	"fmt"
	"sort"

	"vliwq/internal/ir"
	"vliwq/internal/machine"
	"vliwq/internal/queue"
	"vliwq/internal/sched"
)

// PipeOptions configure the pipelined execution.
type PipeOptions struct {
	// N is the number of body iterations to execute; 0 uses the loop's
	// trip count.
	N int
	// AllowMultiWrite permits an ordinary operation to write more than one
	// queue in the same cycle. This models the paper's Fig. 1(c) baseline
	// (multi-consumer values without copy operations, needing simultaneous
	// writes); with copy insertion in the pipeline it should stay false so
	// the simulator enforces the single-write property.
	AllowMultiWrite bool
}

// PipeResult is the outcome of a pipelined execution.
type PipeResult struct {
	Cycles   int // cycles from first event to pipeline drain
	Issues   int // operation instances issued
	Stores   map[StoreKey]int64
	MaxDepth int // deepest queue occupancy observed
}

type tagged struct {
	prod int // producer op ID
	iter int // producer body-iteration (negative = live-in)
	val  int64
}

type qid struct {
	loc queue.Location
	q   int
}

type event struct {
	write bool
	// writes
	q     qid
	dep   ir.Dep
	depIx int
	prodK int
	// issues
	op int
	k  int
}

// Pipelined executes n iterations of the modulo schedule on a cycle-level
// model of the queue-register-file machine. Every queue pop checks that
// FIFO order delivers the exact (producer, iteration) instance the
// dependence requires.
func Pipelined(s *sched.Schedule, alloc *queue.Allocation, opt PipeOptions) (*PipeResult, error) {
	l := s.Loop
	if err := s.Verify(); err != nil {
		return nil, err
	}
	if err := alloc.Verify(); err != nil {
		return nil, err
	}
	n := opt.N
	if n <= 0 {
		n = l.TripCount()
	}

	// Map dependence index -> queue assignment.
	byDep := make(map[int]queue.Assignment, len(alloc.Assignments))
	for _, as := range alloc.Assignments {
		byDep[as.Lifetime.DepIndex] = as
	}

	// Static check: without multi-write support, only copy operations may
	// feed two queues; everything else must have fanout <= 1.
	if !opt.AllowMultiWrite {
		for id, op := range l.Ops {
			fan := l.Fanout(op)
			limit := 1
			if op.Kind == ir.KCopy {
				limit = 2
			}
			if fan > limit {
				return nil, fmt.Errorf("sim: %v has fanout %d: value needs %d simultaneous writes (run copy insertion or set AllowMultiWrite)",
					l.Ops[id], fan, fan)
			}
		}
	}

	// Build the event timeline.
	events := map[int][]event{}
	addEvent := func(t int, e event) { events[t] = append(events[t], e) }
	for id, op := range l.Ops {
		for k := 0; k < n; k++ {
			addEvent(s.Time[id]+k*s.II, event{op: id, k: k})
		}
		_ = op
	}
	for di, d := range l.Deps {
		if d.Kind != ir.Flow {
			continue
		}
		as, ok := byDep[di]
		if !ok {
			return nil, fmt.Errorf("sim: dependence %v (index %d) has no queue assignment", d, di)
		}
		lat := l.Ops[d.From].Kind.Latency()
		comm := 0
		if s.Cluster[d.From] != s.Cluster[d.To] {
			comm = s.Machine.CommLatency
		}
		for k := -d.Dist; k < n-d.Dist; k++ {
			t := s.Time[d.From] + lat + comm + k*s.II
			addEvent(t, event{write: true, q: qid{as.Loc, as.Queue}, dep: d, depIx: di, prodK: k})
		}
	}
	cycles := make([]int, 0, len(events))
	for t := range events {
		cycles = append(cycles, t)
	}
	sort.Ints(cycles)

	// Execute.
	type instKey struct{ op, k int }
	values := map[instKey]int64{}
	queues := map[qid][]tagged{}
	res := &PipeResult{Stores: map[StoreKey]int64{}}
	inputs := make([][]int, len(l.Ops)) // flow-input dep indices per op
	for di, d := range l.Deps {
		if d.Kind == ir.Flow {
			inputs[d.To] = append(inputs[d.To], di)
		}
	}

	var args []int64
	for _, t := range cycles {
		evs := events[t]
		// Writes first: a value may be written and read in the same cycle
		// (zero-length lifetime, hardware bypass), but FIFO order still
		// applies because pops always take the head.
		wrote := map[qid]int{}
		for _, e := range evs {
			if !e.write {
				continue
			}
			wrote[e.q]++
			if wrote[e.q] > 1 {
				return nil, fmt.Errorf("sim: cycle %d: two writes to %v queue %d (write-port conflict)", t, e.q.loc, e.q.q)
			}
			var v int64
			if e.prodK < 0 {
				op := l.Ops[e.dep.From]
				v = ir.LeafValue(op.EffID(), l.OrigIter(op, e.prodK))
			} else {
				var ok bool
				v, ok = values[instKey{e.dep.From, e.prodK}]
				if !ok {
					return nil, fmt.Errorf("sim: cycle %d: write of %v iteration %d before it was computed",
						t, l.Ops[e.dep.From], e.prodK)
				}
			}
			queues[e.q] = append(queues[e.q], tagged{prod: e.dep.From, iter: e.prodK, val: v})
		}
		// Issues: pop operands, check tags, evaluate.
		read := map[qid]int{}
		var busy [machine.NumClasses]map[int]int // per class: cluster -> issues
		for _, e := range evs {
			if e.write {
				continue
			}
			op := l.Ops[e.op]
			cl := s.Cluster[e.op]
			class := machine.ClassOf(op.Kind)
			if busy[class] == nil {
				busy[class] = map[int]int{}
			}
			busy[class][cl]++
			if busy[class][cl] > s.Machine.FUCount(cl, class) {
				return nil, fmt.Errorf("sim: cycle %d: cluster %d issues more %v ops than units", t, cl, class)
			}
			args = args[:0]
			for _, di := range inputs[e.op] {
				d := l.Deps[di]
				as := byDep[di]
				q := qid{as.Loc, as.Queue}
				read[q]++
				if read[q] > 1 {
					return nil, fmt.Errorf("sim: cycle %d: two reads from %v queue %d (read-port conflict)", t, q.loc, q.q)
				}
				fifo := queues[q]
				if len(fifo) == 0 {
					return nil, fmt.Errorf("sim: cycle %d: %v pops empty %v queue %d", t, op, q.loc, q.q)
				}
				head := fifo[0]
				queues[q] = fifo[1:]
				wantIter := e.k - d.Dist
				if head.prod != d.From || head.iter != wantIter {
					return nil, fmt.Errorf("sim: cycle %d: %v iteration %d expected value (%v,%d), FIFO delivered (%v,%d): Q-compatibility violated",
						t, op, e.k, l.Ops[d.From], wantIter, l.Ops[head.prod], head.iter)
				}
				args = append(args, head.val)
			}
			v := ir.Eval(op, l.OrigIter(op, e.k), args)
			values[instKey{e.op, e.k}] = v
			res.Issues++
			if op.Kind == ir.KStore {
				res.Stores[StoreKey{op.EffID(), l.OrigIter(op, e.k)}] = v
			}
		}
		// Occupancy accounting and depth limits, after the cycle settles.
		for q, fifo := range queues {
			if len(fifo) > res.MaxDepth {
				res.MaxDepth = len(fifo)
			}
			depth := 0
			switch q.loc.Kind {
			case queue.Private:
				depth = s.Machine.Clusters[q.loc.From].QueueDepth
			case queue.Ring:
				depth = s.Machine.Clusters[q.loc.To].QueueDepth
			}
			if depth > 0 && len(fifo) > depth {
				return nil, fmt.Errorf("sim: cycle %d: %v queue %d exceeds depth %d", t, q.loc, q.q, depth)
			}
		}
	}
	if len(cycles) > 0 {
		res.Cycles = cycles[len(cycles)-1] - cycles[0] + 1
	}
	// Every queue must drain: a non-empty queue means a value was produced
	// and never consumed (allocation/schedule mismatch).
	for q, fifo := range queues {
		if len(fifo) != 0 {
			return nil, fmt.Errorf("sim: %v queue %d still holds %d values after drain", q.loc, q.q, len(fifo))
		}
	}
	return res, nil
}

// VerifyPipeline runs both executions and compares their stores. It is the
// end-to-end check used by tests and cmd/vliwsched.
func VerifyPipeline(s *sched.Schedule, alloc *queue.Allocation, n int) error {
	if n <= 0 {
		n = s.Loop.TripCount()
	}
	ref, err := Reference(s.Loop, n)
	if err != nil {
		return err
	}
	pipe, err := Pipelined(s, alloc, PipeOptions{N: n})
	if err != nil {
		return err
	}
	if err := CompareStores(ref.Stores, pipe.Stores, false); err != nil {
		return err
	}
	return nil
}
