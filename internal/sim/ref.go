// Package sim executes loops two ways and compares the outcomes:
//
//   - Reference: a plain sequential interpreter of the dependence graph,
//     iteration by iteration — the ground truth.
//   - Pipelined: a cycle-accurate model of the clustered VLIW machine with
//     queue register files executing a modulo schedule plus queue
//     allocation. Every value carries a (producer, iteration) tag; each
//     queue pop asserts that FIFO order delivered exactly the value the
//     consumer expects, so any violation of the Q-Compatibility theorem,
//     the partitioner's adjacency rule or a dependence constraint
//     surfaces as a precise error.
//
// Both interpreters share ir.Eval, so a surviving value mismatch always
// indicates a scheduling/allocation bug, never divergent semantics.
package sim

import (
	"fmt"

	"vliwq/internal/ir"
)

// StoreKey identifies one store instance in the original iteration space.
type StoreKey struct {
	Op   int // effective (pre-unrolling) op ID of the store
	Iter int // original iteration
}

// Ref is the outcome of a sequential reference execution.
type Ref struct {
	Loop *ir.Loop
	N    int // iterations executed (of the possibly-unrolled body)
	// Values[op][k] is the value op produced in body-iteration k.
	Values [][]int64
	// Stores records every store instance, keyed in the original
	// iteration space so unrolled and natural bodies are comparable.
	Stores map[StoreKey]int64
}

// Reference executes n iterations of the loop body sequentially.
func Reference(l *ir.Loop, n int) (*Ref, error) {
	if err := l.Validate(); err != nil {
		return nil, err
	}
	order, err := l.TopoOrder()
	if err != nil {
		return nil, err
	}
	inputs := make([][]ir.Dep, len(l.Ops))
	for id := range l.Ops {
		inputs[id] = l.FlowInputs(l.Ops[id])
	}
	r := &Ref{
		Loop:   l,
		N:      n,
		Values: make([][]int64, len(l.Ops)),
		Stores: make(map[StoreKey]int64),
	}
	for id := range l.Ops {
		r.Values[id] = make([]int64, n)
	}
	var args []int64
	for k := 0; k < n; k++ {
		for _, id := range order {
			op := l.Ops[id]
			args = args[:0]
			for _, d := range inputs[id] {
				args = append(args, r.value(d.From, k-d.Dist))
			}
			v := ir.Eval(op, l.OrigIter(op, k), args)
			r.Values[id][k] = v
			if op.Kind == ir.KStore {
				r.Stores[StoreKey{op.EffID(), l.OrigIter(op, k)}] = v
			}
		}
	}
	return r, nil
}

// value returns op's value in body-iteration k; negative iterations yield
// the synthetic live-in values that exist before the loop starts.
func (r *Ref) value(opID, k int) int64 {
	if k < 0 {
		op := r.Loop.Ops[opID]
		return ir.LeafValue(op.EffID(), r.Loop.OrigIter(op, k))
	}
	return r.Values[opID][k]
}

// CompareStores checks that two executions stored exactly the same values
// for every (store, original-iteration) key present in both. Keys present
// in only one execution are ignored when onlyCommon is true (an unrolled
// body covers a truncated iteration range).
func CompareStores(a, b map[StoreKey]int64, onlyCommon bool) error {
	for k, va := range a {
		vb, ok := b[k]
		if !ok {
			if onlyCommon {
				continue
			}
			return fmt.Errorf("sim: store %+v missing from second execution", k)
		}
		if va != vb {
			return fmt.Errorf("sim: store %+v differs: %d vs %d", k, va, vb)
		}
	}
	if !onlyCommon {
		for k := range b {
			if _, ok := a[k]; !ok {
				return fmt.Errorf("sim: store %+v missing from first execution", k)
			}
		}
	}
	return nil
}
