package frontend

import (
	"fmt"
	"sort"

	"vliwq/internal/ir"
)

// Dependence inference and region lifting. Distances come from the
// back-edge: a dependence satisfied inside one iteration has distance 0,
// one that wraps through the backward branch has distance 1. The full
// register dependence graph — true, anti and output — is recorded in
// Region.Deps, but only true and memory dependences are lifted into the
// ir loop: the queue register files rename every written value, so anti
// and output register hazards never constrain the schedule (they are
// counted in Region.Discharged instead).

// kindOf maps a trace instruction onto the IR op repertoire. Control
// transfers never reach it (the closing branch is not lifted), and the
// single-cycle logical/compare/move ops all share the ALU slot.
func kindOf(in Inst) ir.OpKind {
	switch in.Mnemonic {
	case "ld":
		return ir.KLoad
	case "st":
		return ir.KStore
	case "mul":
		return ir.KMul
	case "div":
		return ir.KDiv
	default:
		return ir.KAdd
	}
}

// liftRegion infers the region's dependence graph and lifts its body to
// an ir loop, in one deterministic pass over the body in program order.
func liftRegion(p *Program, r *Region) error {
	body := r.Body(p)
	m := len(body)

	defs := make(map[string][]int) // register -> body indexes that write it
	for k, in := range body {
		if in.Dest != "" {
			defs[in.Dest] = append(defs[in.Dest], k)
		}
	}
	priorDef := func(reg string, k int) int {
		ds := defs[reg]
		i := sort.SearchInts(ds, k) - 1
		if i < 0 {
			return -1
		}
		return ds[i]
	}
	nextDef := func(reg string, k int) int {
		ds := defs[reg]
		i := sort.SearchInts(ds, k+1)
		if i >= len(ds) {
			return -1
		}
		return ds[i]
	}
	lastDef := func(reg string) int {
		ds := defs[reg]
		if len(ds) == 0 {
			return -1
		}
		return ds[len(ds)-1]
	}

	l := ir.New(r.Label)
	l.Trip = r.Trip
	ops := make([]*ir.Op, m)
	for k, in := range body {
		ops[k] = l.AddOp(kindOf(in), fmt.Sprintf("%s%d", in.Mnemonic, k))
	}

	addDep := func(d RegDep) {
		r.Deps = append(r.Deps, d)
	}

	// True dependences, reads in operand order so the lifted FlowInputs
	// sequence matches the instruction's operand sequence.
	for k, in := range body {
		for _, reg := range in.readRegs() {
			if pd := priorDef(reg, k); pd >= 0 {
				addDep(RegDep{From: pd, To: k, Dist: 0, Class: DepTrue, Reg: reg})
				l.AddDep(ir.Dep{From: ops[pd].ID, To: ops[k].ID, Dist: 0, Kind: ir.Flow})
			} else if ld := lastDef(reg); ld >= 0 {
				// No write yet this iteration: the value flows from the
				// last write of the previous iteration through the
				// back-edge.
				addDep(RegDep{From: ld, To: k, Dist: 1, Class: DepTrue, Reg: reg})
				l.AddDep(ir.Dep{From: ops[ld].ID, To: ops[k].ID, Dist: 1, Kind: ir.Flow})
			}
			// else: loop-invariant input, written only by glue code.
		}
	}

	// Anti (write-after-read) and output (write-after-write) register
	// dependences: real on the register machine the trace ran on,
	// discharged by queue renaming on the target. Recorded, not lifted.
	for k, in := range body {
		for _, reg := range in.readRegs() {
			if nd := nextDef(reg, k); nd >= 0 {
				addDep(RegDep{From: k, To: nd, Dist: 0, Class: DepAnti, Reg: reg})
				r.Discharged++
			} else if fd := firstDef(defs, reg); fd >= 0 {
				addDep(RegDep{From: k, To: fd, Dist: 1, Class: DepAnti, Reg: reg})
				r.Discharged++
			}
		}
	}
	for _, ds := range sortedDefs(defs) {
		for i := 0; i+1 < len(ds.idxs); i++ {
			addDep(RegDep{From: ds.idxs[i], To: ds.idxs[i+1], Dist: 0, Class: DepOutput, Reg: ds.reg})
			r.Discharged++
		}
		addDep(RegDep{From: ds.idxs[len(ds.idxs)-1], To: ds.idxs[0], Dist: 1, Class: DepOutput, Reg: ds.reg})
		r.Discharged++
	}

	// Memory ordering. Two accesses may alias only when they use the same
	// base register holding the same value: same reaching definition of
	// the base (or both loop-invariant), with in-iteration register copies
	// (mov rB, rX) folded away so an access through a copied base lands in
	// the original register's group. Accesses through bases not related by
	// an in-region copy are assumed disjoint — the input contract, see the
	// package doc and DESIGN.md §15. Within an iteration a store orders
	// after every access since the previous store and every load orders
	// after the last store. Across iterations a group is discharged only
	// when its base provably never revisits an address — every in-region
	// write to it is a self-update by a nonzero immediate stride, all
	// stepping the same direction; any other base (invariant, copied, or
	// irregularly redefined) conservatively carries the full ordering
	// through the back-edge.
	type group struct {
		base    string
		reach   int  // reaching def body index; -1 = invariant
		carried bool // reaching def wraps the back-edge
	}
	// resolve follows within-iteration copy chains: if the reaching def of
	// the base is a register-to-register mov, the access addresses whatever
	// value the source register held at the mov, so it joins that group.
	resolve := func(base string, k int) group {
		for {
			if pd := priorDef(base, k); pd >= 0 {
				if in := body[pd]; in.Mnemonic == "mov" && in.Srcs[0].IsReg() {
					base, k = in.Srcs[0].Reg, pd
					continue
				}
				return group{base: base, reach: pd}
			}
			if ld := lastDef(base); ld >= 0 {
				return group{base: base, reach: ld, carried: true}
			}
			return group{base: base, reach: -1}
		}
	}
	// strided reports whether reg provably never revisits an address it
	// has already presented: every in-region write is add/sub reg, reg,
	// imm with a nonzero stride and all strides share one direction. A
	// copy, a zero stride, or mixed directions can re-present an old
	// address, so anything else keeps its carried ordering.
	strided := func(reg string) bool {
		ds := defs[reg]
		if len(ds) == 0 {
			return false
		}
		sign := 0
		for _, d := range ds {
			in := body[d]
			var delta int64
			switch {
			case in.Mnemonic == "add" && len(in.Srcs) == 2 && in.Srcs[0].Reg == reg && !in.Srcs[1].IsReg():
				delta = in.Srcs[1].Imm
			case in.Mnemonic == "add" && len(in.Srcs) == 2 && in.Srcs[1].Reg == reg && !in.Srcs[0].IsReg():
				delta = in.Srcs[0].Imm
			case in.Mnemonic == "sub" && len(in.Srcs) == 2 && in.Srcs[0].Reg == reg && !in.Srcs[1].IsReg():
				delta = -in.Srcs[1].Imm
			default:
				return false
			}
			switch {
			case delta == 0:
				return false
			case delta > 0 && sign >= 0:
				sign = 1
			case delta < 0 && sign <= 0:
				sign = -1
			default:
				return false
			}
		}
		return true
	}
	groups := make(map[group][]int)
	var groupOrder []group
	for k, in := range body {
		if in.Base == "" {
			continue
		}
		g := resolve(in.Base, k)
		if _, seen := groups[g]; !seen {
			groupOrder = append(groupOrder, g)
		}
		groups[g] = append(groups[g], k)
	}
	memDep := func(from, to, dist int, base string) {
		addDep(RegDep{From: from, To: to, Dist: dist, Class: DepMem, Reg: base})
		l.AddDep(ir.Dep{From: ops[from].ID, To: ops[to].ID, Dist: dist, Kind: ir.Mem})
	}
	for _, g := range groupOrder {
		accs := groups[g]
		firstStore, lastStore := -1, -1
		var pendingLoads []int // loads since the previous store
		for _, a := range accs {
			if body[a].Mnemonic == "st" {
				// The store conflicts with every access since the previous
				// store — the loads must read the old value — and with the
				// previous store itself.
				for _, ld := range pendingLoads {
					memDep(ld, a, 0, g.base)
				}
				if lastStore >= 0 {
					memDep(lastStore, a, 0, g.base)
				}
				if firstStore < 0 {
					firstStore = a
				}
				lastStore = a
				pendingLoads = pendingLoads[:0]
			} else {
				if lastStore >= 0 {
					memDep(lastStore, a, 0, g.base)
				}
				pendingLoads = append(pendingLoads, a)
			}
		}
		if lastStore >= 0 && !strided(g.base) {
			// Revisiting base: the same address can recur next iteration.
			// The last store must complete before everything up to and
			// including the next iteration's first store (later accesses
			// are ordered behind that store transitively), and the loads
			// left open after the last store must complete before the next
			// iteration's first store overwrites their value.
			for _, a := range accs {
				memDep(lastStore, a, 1, g.base)
				if a == firstStore {
					break
				}
			}
			for _, ld := range pendingLoads {
				memDep(ld, firstStore, 1, g.base)
			}
		}
	}

	// Values produced but never consumed in-region (a carried or same-
	// iteration read counts as consumption) get an explicit store sink,
	// mirroring the corpus generator: the scheduler treats every produced
	// value as observable.
	consumed := make([]bool, m)
	for _, d := range l.Deps {
		if d.Kind == ir.Flow {
			consumed[d.From] = true
		}
	}
	for k := 0; k < m; k++ {
		if ops[k].Kind.HasResult() && !consumed[k] {
			sink := l.AddOp(ir.KStore, fmt.Sprintf("sink%d", k))
			l.AddFlow(ops[k], sink)
		}
	}

	if err := l.Validate(); err != nil {
		return fmt.Errorf("frontend: region %q lifts to an invalid loop: %v", r.Label, err)
	}
	// Canonicalize through the ir text round trip so the lifted loop's
	// dependence order is exactly what a compiler sees after the loop
	// travels as Request.Loop text: dist-0 flow deps in op-line order,
	// then explicit carried/mem directives. Skeleton comparisons between
	// the lifted region and Result.Input then hold byte-for-byte.
	canon, err := ir.ParseString(ir.FormatString(l))
	if err != nil {
		return fmt.Errorf("frontend: region %q does not round-trip the ir text format: %v", r.Label, err)
	}
	r.Loop = canon
	return nil
}

func firstDef(defs map[string][]int, reg string) int {
	ds := defs[reg]
	if len(ds) == 0 {
		return -1
	}
	return ds[0]
}

// sortedDefs returns the def lists in deterministic (register-sorted)
// order for the output-dependence walk.
type regDefs struct {
	reg  string
	idxs []int
}

func sortedDefs(defs map[string][]int) []regDefs {
	out := make([]regDefs, 0, len(defs))
	for reg, ds := range defs {
		out = append(out, regDefs{reg: reg, idxs: ds})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].reg < out[j].reg })
	return out
}
