package frontend

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// Format writes the program back out in the canonical trace spelling:
// prog line first, one instruction per line, labels on their own lines,
// each region's trip directive right after its label. Format and Parse
// round-trip: parsing Format's output reproduces the program (and
// re-formatting it is byte-identical), the property FuzzParseTrace pins.
func Format(w io.Writer, p *Program) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "prog %s\n", p.Name)
	tripAt := make(map[int]*Region, len(p.Regions))
	for _, r := range p.Regions {
		if r.Trip > 0 {
			tripAt[r.Start] = r
		}
	}
	for i, in := range p.Insts {
		if in.Label != "" {
			fmt.Fprintf(bw, "%s:\n", in.Label)
		}
		if r := tripAt[i]; r != nil {
			fmt.Fprintf(bw, "\ttrip %d\n", r.Trip)
		}
		fmt.Fprintf(bw, "\t%s\n", in.String())
	}
	return bw.Flush()
}

// FormatString is Format into a string.
func FormatString(p *Program) string {
	var b strings.Builder
	_ = Format(&b, p)
	return b.String()
}
