package frontend

import (
	"os"
	"testing"

	"vliwq/internal/ir"
)

// FuzzParseTrace pins the lift→render→lift round trip: any trace the
// parser accepts must re-render to a canonical spelling that (a) parses,
// (b) re-renders byte-identically (the canonical form is a fixed point),
// and (c) recovers the same regions lifting to skeleton-identical loops.
func FuzzParseTrace(f *testing.F) {
	if data, err := os.ReadFile("testdata/kernel.trace"); err == nil {
		f.Add(string(data))
	}
	f.Add("prog t\n\tmov r0, 0\n\tmov r5, 4\nL0:\n\ttrip 8\n\tadd r5, r5, -1\n\tbne r5, r0, L0\n")
	f.Add("\tmov r0, 0\n\tmov r2, 64\n\tmov r5, 9\nL0:\n\tld r9, [r2+8]\n\tst r9, [r2-8]\n\tadd r2, r2, 16\n\tsub r5, r5, 1\n\tbne r5, r0, L0\n")
	f.Add("# comment only\n")
	f.Add("\tmov r1, 42\n\tdiv r1, r1, r1\n")
	f.Fuzz(func(t *testing.T, src string) {
		p1, err := ParseString(src)
		if err != nil {
			return // rejected inputs only need a deterministic error
		}
		txt := FormatString(p1)
		p2, err := ParseString(txt)
		if err != nil {
			t.Fatalf("canonical form does not reparse: %v\ninput:\n%s\ncanonical:\n%s", err, src, txt)
		}
		if got := FormatString(p2); got != txt {
			t.Fatalf("canonical form not a fixed point:\n%s\nvs\n%s", txt, got)
		}
		if len(p2.Regions) != len(p1.Regions) {
			t.Fatalf("region count changed: %d vs %d", len(p1.Regions), len(p2.Regions))
		}
		for i := range p1.Regions {
			a, b := p1.Regions[i], p2.Regions[i]
			if ir.Skeleton(a.Loop) != ir.Skeleton(b.Loop) {
				t.Fatalf("region %d skeleton changed across round trip", i)
			}
			if len(a.Deps) != len(b.Deps) || a.Discharged != b.Discharged {
				t.Fatalf("region %d dependence graph changed across round trip", i)
			}
		}
	})
}
