package frontend

import (
	"fmt"
	"os"
	"strings"
	"testing"

	"vliwq/internal/ir"
)

func parseFile(t *testing.T, path string) *Program {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	p, err := Parse(f)
	if err != nil {
		t.Fatalf("Parse(%s): %v", path, err)
	}
	return p
}

func TestKernelTraceRegions(t *testing.T) {
	p := parseFile(t, "testdata/kernel.trace")
	if p.Name != "kernelmix" {
		t.Fatalf("program name = %q, want kernelmix", p.Name)
	}
	if len(p.Regions) < 3 {
		t.Fatalf("recovered %d regions, want >= 3", len(p.Regions))
	}
	wantLabels := []string{"L0", "L1", "L2", "L3"}
	wantTrips := []int{64, 96, 80, 32}
	wantOps := []int{6, 7, 13, 5}
	if len(p.Regions) != len(wantLabels) {
		t.Fatalf("recovered %d regions, want %d", len(p.Regions), len(wantLabels))
	}
	for i, r := range p.Regions {
		if r.Label != wantLabels[i] || r.Trip != wantTrips[i] {
			t.Errorf("region %d = %q trip %d, want %q trip %d", i, r.Label, r.Trip, wantLabels[i], wantTrips[i])
		}
		if got := r.End - r.Start; got != wantOps[i] {
			t.Errorf("region %q body = %d insts, want %d", r.Label, got, wantOps[i])
		}
		if r.Loop == nil || r.Loop.Name != r.Label {
			t.Fatalf("region %q: missing or misnamed lifted loop", r.Label)
		}
		if err := r.Loop.Validate(); err != nil {
			t.Errorf("region %q: lifted loop invalid: %v", r.Label, err)
		}
		if r.Loop.TripCount() != r.Trip {
			t.Errorf("region %q: lifted trip %d, want %d", r.Label, r.Loop.TripCount(), r.Trip)
		}
		if r.Discharged == 0 {
			t.Errorf("region %q: expected discharged anti/output deps, got none", r.Label)
		}
	}
	if g := p.Glue(); len(g) != 18 {
		t.Errorf("glue = %d instructions, want 18", len(g))
	}
	if p.Region("L2") == nil || p.Region("nope") != nil {
		t.Error("Region lookup misbehaves")
	}
}

// TestDepInference pins the inferred dependence graph of a small region:
// true deps with distance 0 (in-iteration) and 1 (through the back-edge),
// anti/output deps recorded but discharged, and memory ordering for an
// invariant base (read-modify-write of one address).
func TestDepInference(t *testing.T) {
	p, err := ParseString(`
	mov r0, 0
	mov r1, 5
	mov r4, 100
	mov r5, 8
L0:
	ld r9, [r4]
	add r9, r9, r1
	st r9, [r4]
	sub r5, r5, 1
	bne r5, r0, L0
`)
	if err != nil {
		t.Fatal(err)
	}
	r := p.Regions[0]
	want := map[string]bool{
		// ld0 -> add1 (r9), add1 -> st2 (r9): in-iteration true deps.
		"true r9 0->1 d0": true,
		"true r9 1->2 d0": true,
		// sub3 reads its own previous write through the back-edge.
		"true r5 3->3 d1": true,
		// st2 -> ld0 anti on memory? No: r9 anti deps are register WAR.
		"anti r9 1->1 d1":   false, // add1's read is satisfied by ld0's write in-iteration... see below
		"output r9 0->1 d0": true,
		"output r9 1->0 d1": true,
		"output r5 3->3 d1": true,
		// Invariant base r4: ld..st ordered in-iteration, st wraps to ld.
		"mem r4 0->2 d0": true,
		"mem r4 2->0 d1": true,
	}
	got := make(map[string]bool)
	for _, d := range r.Deps {
		got[depString(d)] = true
	}
	for k, must := range want {
		if must && !got[k] {
			t.Errorf("missing dep %q in %v", k, keys(got))
		}
	}
	// ld0's write-after-read of r4? r4 is never written in-region: no anti.
	for k := range got {
		if strings.Contains(k, "anti r4") || strings.Contains(k, "output r4") {
			t.Errorf("spurious invariant-base register hazard %q", k)
		}
	}
	// The lift discharges every anti/output dep and keeps true + mem.
	lifted := 0
	for _, d := range r.Deps {
		if d.Class == DepAnti || d.Class == DepOutput {
			continue
		}
		lifted++
	}
	if len(r.Loop.Deps) < lifted {
		t.Errorf("lifted %d deps, want >= %d (true+mem)", len(r.Loop.Deps), lifted)
	}
	if r.Discharged == 0 {
		t.Error("no discharged deps recorded")
	}
	// sub3's value is read only by the branch: it must still be consumed
	// (carried self-read), so no sink; every op's value is consumed.
	for _, op := range r.Loop.Ops {
		if strings.HasPrefix(op.Name, "sink") {
			t.Errorf("unexpected sink %s: every value in this region is consumed", op.Name)
		}
	}
}

func depString(d RegDep) string {
	return fmt.Sprintf("%s %s %d->%d d%d", d.Class, d.Reg, d.From, d.To, d.Dist)
}

func keys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestSinkInsertion: a produced value consumed neither in-iteration nor
// through the back-edge gets an explicit store sink.
func TestSinkInsertion(t *testing.T) {
	p, err := ParseString(`
	mov r0, 0
	mov r2, 100
	mov r5, 8
L0:
	ld r9, [r2]
	mul r10, r9, r9
	add r2, r2, 8
	sub r5, r5, 1
	bne r5, r0, L0
`)
	if err != nil {
		t.Fatal(err)
	}
	l := p.Regions[0].Loop
	sinks := 0
	for _, op := range l.Ops {
		if strings.HasPrefix(op.Name, "sink") {
			sinks++
		}
	}
	if sinks != 1 {
		t.Fatalf("sinks = %d, want 1 (mul's value is dead in-region)", sinks)
	}
}

// TestBumpedBaseNoCarriedMem: accesses through a base the region advances
// never alias across iterations — a strided store must not serialise the
// loop.
func TestBumpedBaseNoCarriedMem(t *testing.T) {
	p, err := ParseString(`
	mov r0, 0
	mov r2, 100
	mov r5, 8
	mov r6, 1
L0:
	st r6, [r2]
	add r2, r2, 8
	sub r5, r5, 1
	bne r5, r0, L0
`)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range p.Regions[0].Deps {
		if d.Class == DepMem && d.Dist > 0 {
			t.Fatalf("spurious carried mem dep %v on a bumped base", d)
		}
	}
}

// TestStoreOrdersAfterAllPriorLoads: a store conflicts with every load
// since the previous store, not just the nearest access — and on a
// revisiting base the carried ordering covers every access up to the
// next iteration's first store, plus a store→store self-recurrence.
func TestStoreOrdersAfterAllPriorLoads(t *testing.T) {
	p, err := ParseString(`
	mov r0, 0
	mov r1, 100
	mov r5, 8
	mov r11, 7
L0:
	ld r9, [r1]
	ld r10, [r1]
	st r11, [r1]
	sub r5, r5, 1
	bne r5, r0, L0
`)
	if err != nil {
		t.Fatal(err)
	}
	got := make(map[string]bool)
	for _, d := range p.Regions[0].Deps {
		if d.Class == DepMem {
			got[depString(d)] = true
		}
	}
	for _, want := range []string{
		// Both loads must read the old value before the store clobbers it.
		"mem r1 0->2 d0",
		"mem r1 1->2 d0",
		// Invariant base: the store reaches every access of the next
		// iteration up to and including itself.
		"mem r1 2->0 d1",
		"mem r1 2->1 d1",
		"mem r1 2->2 d1",
	} {
		if !got[want] {
			t.Errorf("missing mem dep %q in %v", want, keys(got))
		}
	}
}

// TestTrailingLoadOrdersBeforeNextStore: a load left open after the last
// store must complete before the next iteration's first store overwrites
// the address (carried WAR on memory).
func TestTrailingLoadOrdersBeforeNextStore(t *testing.T) {
	p, err := ParseString(`
	mov r0, 0
	mov r4, 100
	mov r5, 8
	mov r6, 3
L0:
	st r6, [r4]
	ld r9, [r4]
	sub r5, r5, 1
	bne r5, r0, L0
`)
	if err != nil {
		t.Fatal(err)
	}
	got := make(map[string]bool)
	for _, d := range p.Regions[0].Deps {
		if d.Class == DepMem {
			got[depString(d)] = true
		}
	}
	for _, want := range []string{"mem r4 0->1 d0", "mem r4 0->0 d1", "mem r4 1->0 d1"} {
		if !got[want] {
			t.Errorf("missing mem dep %q in %v", want, keys(got))
		}
	}
}

// TestNonStridedRedefKeepsCarriedMem: redefining a base in-region only
// discharges carried ordering when every write is a same-direction
// nonzero-stride self-update. A copy from an invariant register or a
// zero-net bump revisits the same address and must keep its carried dep.
func TestNonStridedRedefKeepsCarriedMem(t *testing.T) {
	cases := []struct{ name, src string }{
		{"invariant copy", `
	mov r0, 0
	mov r5, 8
	mov r6, 1
	mov r7, 100
L0:
	mov r2, r7
	st r6, [r2]
	sub r5, r5, 1
	bne r5, r0, L0
`},
		{"zero net stride", `
	mov r0, 0
	mov r2, 100
	mov r5, 8
	mov r6, 1
L0:
	add r2, r2, 4
	st r6, [r2]
	sub r2, r2, 4
	sub r5, r5, 1
	bne r5, r0, L0
`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p, err := ParseString(tc.src)
			if err != nil {
				t.Fatal(err)
			}
			carried := false
			for _, d := range p.Regions[0].Deps {
				if d.Class == DepMem && d.Dist > 0 {
					carried = true
				}
			}
			if !carried {
				t.Fatal("revisiting base lost its carried mem dep")
			}
		})
	}
}

// TestCopiedBaseSharesAliasGroup: an access through a mov-copied base
// register aliases accesses through the original, so the pair is ordered.
func TestCopiedBaseSharesAliasGroup(t *testing.T) {
	p, err := ParseString(`
	mov r0, 0
	mov r1, 100
	mov r5, 8
	mov r6, 2
L0:
	st r6, [r1]
	mov r2, r1
	ld r9, [r2]
	sub r5, r5, 1
	bne r5, r0, L0
`)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, d := range p.Regions[0].Deps {
		if d.Class == DepMem && d.From == 0 && d.To == 2 && d.Dist == 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("store [r1] and load [r2] (r2 = copy of r1) are unordered")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"unknown mnemonic", "\tfoo r1, r2\n", `frontend: line 1: unknown mnemonic "foo"`},
		{"commas only", "\t, ,\n", `frontend: line 1: malformed line ", ,"`},
		{"malformed operands", "\tmov r1\n", "frontend: line 1: mov wants a destination and one source"},
		{"bad register", "\tmov rq, 4\n", `frontend: line 1: bad register "rq"`},
		{"bad memory operand", "\tmov r1, 0\n\tld r2, r1\n", `frontend: line 2: bad memory operand "r1"`},
		{"bad immediate", "\tmov r1, 12x\n", `frontend: line 1: bad operand "12x"`},
		{"undefined register", "\tmov r1, r9\n", "frontend: line 1: register r9 read before any write"},
		{"self init", "\tadd r1, r1, 1\n", "frontend: line 1: register r1 read before any write"},
		{"undefined branch target", "\tmov r0, 0\n\tbne r0, r0, L9\n", `frontend: line 2: branch to undefined label "L9" (forward branches are not supported)`},
		{"duplicate label", "L0:\n\tmov r0, 0\nL0:\n\tmov r1, 0\n", `frontend: line 3: duplicate label "L0"`},
		{"stacked labels", "L0:\nL1:\n\tmov r0, 0\n", `frontend: line 2: label "L1" collides with label "L0" on the same instruction`},
		{"dangling label", "\tmov r0, 0\nL0:\n", `frontend: line 2: label "L0" is not followed by an instruction`},
		{"empty region", "\tmov r0, 0\nL0:\n\tbeq r0, r0, L0\n", `frontend: line 3: empty loop region "L0"`},
		{"irreducible overlap", `	mov r0, 0
	mov r5, 8
L0:
	add r5, r5, 1
L1:
	sub r5, r5, 1
	bne r5, r0, L0
	bne r5, r0, L1
`, `frontend: line 8: irreducible back-edge to "L1": loop region overlaps region "L0"`},
		{"trip outside region", "\ttrip 8\n\tmov r0, 0\n", "frontend: line 1: trip directive outside any loop region"},
		{"bad trip", "\ttrip zero\n", `frontend: line 1: trip wants a positive count, got "zero"`},
		{"duplicate prog", "prog a\nprog b\n", "frontend: line 2: duplicate prog directive"},
		{"bad label chars", "9L:\n\tmov r0, 0\n", `frontend: line 1: bad label "9L"`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseString(tc.src)
			if err == nil {
				t.Fatalf("expected error %q, got none", tc.want)
			}
			if err.Error() != tc.want {
				t.Fatalf("error = %q, want %q", err.Error(), tc.want)
			}
		})
	}
}

// TestFormatRoundTrip: Format's output reparses to an equivalent program
// and re-formats byte-identically, with every region lifting to the same
// skeleton.
func TestFormatRoundTrip(t *testing.T) {
	p1 := parseFile(t, "testdata/kernel.trace")
	txt := FormatString(p1)
	p2, err := ParseString(txt)
	if err != nil {
		t.Fatalf("reparse of canonical form: %v\n%s", err, txt)
	}
	if got := FormatString(p2); got != txt {
		t.Fatalf("canonical form not idempotent:\n%s\nvs\n%s", txt, got)
	}
	if len(p2.Regions) != len(p1.Regions) {
		t.Fatalf("round trip changed region count: %d vs %d", len(p2.Regions), len(p1.Regions))
	}
	for i := range p1.Regions {
		if ir.Skeleton(p1.Regions[i].Loop) != ir.Skeleton(p2.Regions[i].Loop) {
			t.Fatalf("region %d changed skeleton across the round trip", i)
		}
	}
}
