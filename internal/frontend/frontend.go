// Package frontend lifts textual RISC-style instruction traces into the
// loop IR. A trace is a flat instruction stream — loads, stores, ALU and
// multiply ops over named registers, plus conditional branches — in which
// loops appear as backward branches to labels. The parser recovers those
// loop regions, infers each region's dependence graph (true, anti and
// output register dependences with loop-carried distances derived from
// the back-edge, plus memory ordering), and lifts every region to an
// internal/ir loop ready for the modulo-scheduling pipeline. Everything
// outside the regions is inter-region glue code, carried alongside so a
// whole program can be rescheduled region by region and re-merged (see
// internal/program and DESIGN.md §15).
//
// The grammar, one item per line ('#' starts a comment):
//
//	prog <name>                   optional program name (default "trace")
//	<label>:                      labels the next instruction
//	trip <n>                      trip count for the enclosing region
//	ld   rD, [rB]                 load  (also [rB+off] / [rB-off])
//	st   rS, [rB]                 store
//	add|sub|and|or|xor|cmp rD, src, src
//	mov  rD, src                  src is a register or an integer literal
//	mul|div rD, src, src
//	bne|beq|blt|bge rA, rB, <label>   backward conditional branch
//
// Every register must be written before it is first read (loop-invariant
// inputs are initialised by glue code ahead of the region), and branch
// targets must be labels already seen — forward branches and overlapping
// (irreducible) back-edges are errors. Parsing is deterministic: the same
// trace always yields the same Program, regions and lifted loops.
//
// Memory disambiguation contract: two accesses are assumed to conflict
// only when they address through the same base value — the same base
// register under the same reaching definition, with in-region register
// copies (mov rB, rX) folded into the copied register's group. Accesses
// through bases not related by an in-region copy are assumed DISJOINT;
// traces in which two unrelated bases hold overlapping addresses are
// outside the input contract and their cross-base orderings are not
// preserved. Within a group the ordering is conservative: stores order
// after every access since the previous store, and a base is exempt from
// cross-iteration (carried) ordering only when it provably never
// revisits an address — every in-region write to it is a self-update by
// a nonzero immediate stride, all stepping the same direction. See
// DESIGN.md §15.
package frontend

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"vliwq/internal/ir"
)

// Class is an instruction's functional class, mirroring the trace's
// ALU/MUL/MEM/BRANCH op repertoire.
type Class uint8

const (
	ClassALU Class = iota
	ClassMul
	ClassMem
	ClassBranch
)

// Operand is a source operand: a register name or an integer immediate.
type Operand struct {
	Reg string // canonical register name ("r3"); "" for an immediate
	Imm int64
}

// IsReg reports whether the operand is a register.
func (o Operand) IsReg() bool { return o.Reg != "" }

func (o Operand) String() string {
	if o.IsReg() {
		return o.Reg
	}
	return strconv.FormatInt(o.Imm, 10)
}

// Inst is one parsed trace instruction.
type Inst struct {
	Line     int    // 1-based source line
	Label    string // label defined immediately before this instruction, if any
	Mnemonic string
	Class    Class
	Dest     string    // destination register; "" for stores and branches
	Srcs     []Operand // value operands in operand order
	Base     string    // address base register for ld/st; "" otherwise
	Off      int64     // address offset for ld/st
	Target   string    // branch target label; "" otherwise
}

// String renders the instruction in the canonical trace spelling.
func (in Inst) String() string {
	switch {
	case in.Class == ClassBranch:
		return fmt.Sprintf("%s %s, %s, %s", in.Mnemonic, in.Srcs[0], in.Srcs[1], in.Target)
	case in.Mnemonic == "ld":
		return fmt.Sprintf("ld %s, %s", in.Dest, in.mem())
	case in.Mnemonic == "st":
		return fmt.Sprintf("st %s, %s", in.Srcs[0], in.mem())
	default:
		parts := make([]string, 0, 1+len(in.Srcs))
		parts = append(parts, in.Dest)
		for _, s := range in.Srcs {
			parts = append(parts, s.String())
		}
		return in.Mnemonic + " " + strings.Join(parts, ", ")
	}
}

func (in Inst) mem() string {
	switch {
	case in.Off > 0:
		return fmt.Sprintf("[%s+%d]", in.Base, in.Off)
	case in.Off < 0:
		return fmt.Sprintf("[%s%d]", in.Base, in.Off)
	default:
		return fmt.Sprintf("[%s]", in.Base)
	}
}

// DepClass classifies an inferred register or memory dependence.
type DepClass uint8

const (
	DepTrue DepClass = iota
	DepAnti
	DepOutput
	DepMem
)

func (c DepClass) String() string {
	switch c {
	case DepTrue:
		return "true"
	case DepAnti:
		return "anti"
	case DepOutput:
		return "output"
	default:
		return "mem"
	}
}

// RegDep is one inferred dependence between two body instructions of a
// region, in region-relative instruction indexes. Dist is the iteration
// distance: 0 within an iteration, 1 when the dependence wraps through
// the back-edge.
type RegDep struct {
	From, To int
	Dist     int
	Class    DepClass
	Reg      string // register (true/anti/output) or base register (mem)
}

// Region is one recovered loop: the instructions from its label through
// its backward branch, the dependence graph inferred over the body, and
// the body lifted to an ir loop. The closing branch is part of the region
// (it is the loop control the modulo schedule makes implicit) but is not
// lifted.
type Region struct {
	Label      string
	Start, End int // Insts[Start:End] is the body; Insts[End] the back branch
	Trip       int // trip directive value; 0 when unspecified
	Deps       []RegDep
	// Discharged counts the anti and output register dependences in Deps
	// that the lift drops: the queue register files rename every value at
	// write time, so WAR/WAW register hazards impose no schedule order —
	// exactly the renaming argument the paper builds the QRF on. True and
	// memory dependences are the only ones lifted.
	Discharged int
	Loop       *ir.Loop
}

// Program is a parsed trace: the full instruction stream, the recovered
// loop regions in program order, and (implicitly) the glue instructions
// between them.
type Program struct {
	Name    string
	Insts   []Inst
	Regions []*Region
}

// Glue returns the instructions outside every region, in program order:
// the inter-region setup and teardown code a whole-program schedule keeps
// sequential.
func (p *Program) Glue() []Inst {
	in := make([]bool, len(p.Insts))
	for _, r := range p.Regions {
		for i := r.Start; i <= r.End; i++ {
			in[i] = true
		}
	}
	var g []Inst
	for i, inst := range p.Insts {
		if !in[i] {
			g = append(g, inst)
		}
	}
	return g
}

// Region returns the region labelled name, or nil.
func (p *Program) Region(label string) *Region {
	for _, r := range p.Regions {
		if r.Label == label {
			return r
		}
	}
	return nil
}

// Body returns the region's body instructions (back branch excluded).
func (r *Region) Body(p *Program) []Inst {
	return p.Insts[r.Start:r.End]
}

// ParseString is Parse over an in-memory trace.
func ParseString(src string) (*Program, error) {
	return Parse(strings.NewReader(src))
}

// Parse reads a trace, recovers its loop regions and lifts each one to an
// ir loop. The returned Program is fully analyzed: every region carries
// its inferred dependence graph and lifted Loop.
func Parse(r io.Reader) (*Program, error) {
	p := &Program{Name: "trace"}
	labels := make(map[string]int)   // label -> index of the instruction it precedes
	written := make(map[string]bool) // registers defined so far, in program order
	var pendingLabel string
	var pendingLine int
	sawProg := false
	type tripRec struct{ idx, n, line int }
	var trips []tripRec

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		fail := func(format string, args ...any) error {
			return fmt.Errorf("frontend: line %d: %s", lineNo, fmt.Sprintf(format, args...))
		}

		// Label line.
		if strings.HasSuffix(line, ":") && len(strings.Fields(line)) == 1 {
			name := strings.TrimSuffix(line, ":")
			if !validIdent(name) {
				return nil, fail("bad label %q", name)
			}
			if _, dup := labels[name]; dup {
				return nil, fail("duplicate label %q", name)
			}
			if pendingLabel != "" {
				return nil, fail("label %q collides with label %q on the same instruction", name, pendingLabel)
			}
			labels[name] = len(p.Insts)
			pendingLabel, pendingLine = name, lineNo
			continue
		}

		fields := strings.Fields(strings.ReplaceAll(line, ",", " "))
		if len(fields) == 0 {
			return nil, fail("malformed line %q", line)
		}
		switch fields[0] {
		case "prog":
			if len(fields) != 2 || !validIdent(fields[1]) {
				return nil, fail("prog wants one name operand")
			}
			if sawProg {
				return nil, fail("duplicate prog directive")
			}
			sawProg = true
			p.Name = fields[1]
			continue
		case "trip":
			if len(fields) != 2 {
				return nil, fail("trip wants one count operand")
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n <= 0 {
				return nil, fail("trip wants a positive count, got %q", fields[1])
			}
			trips = append(trips, tripRec{idx: len(p.Insts), n: n, line: lineNo})
			continue
		}

		inst, err := parseInst(fields)
		if err != nil {
			return nil, fail("%v", err)
		}
		inst.Line = lineNo
		inst.Label, pendingLabel = pendingLabel, ""

		// Defined-before-use: reads are checked before this instruction's
		// own write lands, so self-initialisation is rejected too.
		for _, reg := range inst.readRegs() {
			if !written[reg] {
				return nil, fail("register %s read before any write", reg)
			}
		}
		if inst.Dest != "" {
			written[inst.Dest] = true
		}

		if inst.Class == ClassBranch {
			start, ok := labels[inst.Target]
			if !ok {
				return nil, fail("branch to undefined label %q (forward branches are not supported)", inst.Target)
			}
			end := len(p.Insts) // index this branch will occupy
			if start == end {
				return nil, fail("empty loop region %q", inst.Target)
			}
			if last := lastRegion(p); last != nil && start <= last.End {
				return nil, fail("irreducible back-edge to %q: loop region overlaps region %q", inst.Target, last.Label)
			}
			p.Regions = append(p.Regions, &Region{Label: inst.Target, Start: start, End: end})
		}
		p.Insts = append(p.Insts, inst)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("frontend: %v", err)
	}
	if pendingLabel != "" {
		return nil, fmt.Errorf("frontend: line %d: label %q is not followed by an instruction", pendingLine, pendingLabel)
	}
	for _, tr := range trips {
		reg := regionAt(p, tr.idx)
		if reg == nil {
			return nil, fmt.Errorf("frontend: line %d: trip directive outside any loop region", tr.line)
		}
		reg.Trip = tr.n // last directive wins
	}
	for _, reg := range p.Regions {
		if err := liftRegion(p, reg); err != nil {
			return nil, err
		}
	}
	return p, nil
}

func lastRegion(p *Program) *Region {
	if len(p.Regions) == 0 {
		return nil
	}
	return p.Regions[len(p.Regions)-1]
}

func regionAt(p *Program, idx int) *Region {
	for _, r := range p.Regions {
		if r.Start <= idx && idx <= r.End {
			return r
		}
	}
	return nil
}

// readRegs returns the instruction's register reads in operand order,
// value operands first, then the address base — the order the lift uses
// for ir operand slots.
func (in Inst) readRegs() []string {
	var rs []string
	for _, s := range in.Srcs {
		if s.IsReg() {
			rs = append(rs, s.Reg)
		}
	}
	if in.Base != "" {
		rs = append(rs, in.Base)
	}
	return rs
}

func parseInst(fields []string) (Inst, error) {
	mnem := fields[0]
	ops := fields[1:]
	in := Inst{Mnemonic: mnem}
	need := func(n int, shape string) error {
		if len(ops) != n {
			return fmt.Errorf("%s wants %s", mnem, shape)
		}
		return nil
	}
	switch mnem {
	case "ld", "st":
		in.Class = ClassMem
		if err := need(2, "a register and a memory operand"); err != nil {
			return in, err
		}
		reg, err := parseReg(ops[0])
		if err != nil {
			return in, err
		}
		if in.Base, in.Off, err = parseMem(ops[1]); err != nil {
			return in, err
		}
		if mnem == "ld" {
			in.Dest = reg
		} else {
			in.Srcs = []Operand{{Reg: reg}}
		}
	case "mov":
		in.Class = ClassALU
		if err := need(2, "a destination and one source"); err != nil {
			return in, err
		}
		dst, err := parseReg(ops[0])
		if err != nil {
			return in, err
		}
		src, err := parseOperand(ops[1])
		if err != nil {
			return in, err
		}
		in.Dest, in.Srcs = dst, []Operand{src}
	case "add", "sub", "and", "or", "xor", "cmp", "mul", "div":
		in.Class = ClassALU
		if mnem == "mul" || mnem == "div" {
			in.Class = ClassMul
		}
		if err := need(3, "a destination and two sources"); err != nil {
			return in, err
		}
		dst, err := parseReg(ops[0])
		if err != nil {
			return in, err
		}
		a, err := parseOperand(ops[1])
		if err != nil {
			return in, err
		}
		b, err := parseOperand(ops[2])
		if err != nil {
			return in, err
		}
		in.Dest, in.Srcs = dst, []Operand{a, b}
	case "bne", "beq", "blt", "bge":
		in.Class = ClassBranch
		if err := need(3, "two registers and a label"); err != nil {
			return in, err
		}
		a, err := parseReg(ops[0])
		if err != nil {
			return in, err
		}
		b, err := parseReg(ops[1])
		if err != nil {
			return in, err
		}
		if !validIdent(ops[2]) {
			return in, fmt.Errorf("bad label %q", ops[2])
		}
		in.Srcs = []Operand{{Reg: a}, {Reg: b}}
		in.Target = ops[2]
	default:
		return in, fmt.Errorf("unknown mnemonic %q", mnem)
	}
	return in, nil
}

// parseReg accepts r0..r255 and returns the canonical spelling.
func parseReg(tok string) (string, error) {
	if len(tok) >= 2 && tok[0] == 'r' {
		if n, err := strconv.Atoi(tok[1:]); err == nil && n >= 0 && n <= 255 {
			return "r" + strconv.Itoa(n), nil
		}
	}
	return "", fmt.Errorf("bad register %q", tok)
}

func parseOperand(tok string) (Operand, error) {
	if reg, err := parseReg(tok); err == nil {
		return Operand{Reg: reg}, nil
	}
	if imm, err := strconv.ParseInt(tok, 10, 64); err == nil {
		return Operand{Imm: imm}, nil
	}
	return Operand{}, fmt.Errorf("bad operand %q", tok)
}

// parseMem accepts [rB], [rB+off] and [rB-off].
func parseMem(tok string) (base string, off int64, err error) {
	bad := fmt.Errorf("bad memory operand %q", tok)
	if len(tok) < 2 || tok[0] != '[' || tok[len(tok)-1] != ']' {
		return "", 0, bad
	}
	inner := tok[1 : len(tok)-1]
	regPart, offPart := inner, ""
	if i := strings.IndexAny(inner, "+-"); i > 0 {
		regPart, offPart = inner[:i], inner[i:]
	}
	if base, err = parseReg(regPart); err != nil {
		return "", 0, bad
	}
	if offPart != "" {
		if off, err = strconv.ParseInt(strings.TrimPrefix(offPart, "+"), 10, 64); err != nil {
			return "", 0, bad
		}
	}
	return base, off, nil
}

func validIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == '.':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
