package regalloc

import (
	"testing"

	"vliwq/internal/corpus"
	"vliwq/internal/ir"
	"vliwq/internal/machine"
	"vliwq/internal/queue"
	"vliwq/internal/sched"
)

func schedule(t *testing.T, l *ir.Loop, cfg machine.Config) *sched.Schedule {
	t.Helper()
	s, err := sched.ScheduleLoop(l, cfg, sched.Options{})
	if err != nil {
		t.Fatalf("%s: %v", l.Name, err)
	}
	return s
}

func TestLiveRangesCoverConsumers(t *testing.T) {
	s := schedule(t, corpus.Daxpy(), machine.SingleCluster(6))
	ranges := LiveRanges(s)
	// daxpy produces 5 values (3 loads, mul, add), all consumed.
	if len(ranges) != 5 {
		t.Fatalf("got %d live ranges, want 5", len(ranges))
	}
	for _, v := range ranges {
		if v.End < v.Start {
			t.Fatalf("negative live range %+v", v)
		}
	}
}

func TestMaxLivePositive(t *testing.T) {
	for _, l := range corpus.Kernels() {
		s := schedule(t, l, machine.SingleCluster(6))
		if ml := MaxLive(s); ml < 1 {
			t.Errorf("%s: MaxLive = %d", l.Name, ml)
		}
	}
}

// TestMaxLiveLowerBoundsLifetimeSum: MaxLive >= ceil(sum of live lengths /
// II), the classic area lower bound.
func TestMaxLiveLowerBoundsLifetimeSum(t *testing.T) {
	loops := corpus.Generate(corpus.Params{Seed: 41, N: 50})
	cfg := machine.SingleCluster(6)
	for _, l := range loops {
		s := schedule(t, l, cfg)
		area := 0
		for _, v := range LiveRanges(s) {
			area += v.Len()
		}
		bound := area / s.II // floor is a valid lower bound
		if ml := MaxLive(s); ml < bound {
			t.Errorf("%s: MaxLive=%d below area bound %d", l.Name, ml, bound)
		}
	}
}

// TestConventionalVsQueueTradeOff documents the paper's Fig. 1 point: a
// conventional RF writes a multi-consumer value once, while a QRF needs
// one queue per remaining consumer — but the conventional RF pays with
// multiported MaxLive-sized storage. Both measures must be internally
// consistent on the same schedule.
func TestConventionalVsQueueTradeOff(t *testing.T) {
	l := corpus.ComplexMul() // fanout-2 values
	s := schedule(t, l, machine.SingleCluster(6))
	ml := MaxLive(s)
	alloc := queue.Allocate(s)
	queues := alloc.MaxPrivateQueues()
	if ml < 1 || queues < 1 {
		t.Fatalf("degenerate measures: MaxLive=%d queues=%d", ml, queues)
	}
	// Each of the 4 loaded values has 2 consumers: the queue allocation
	// must hold at least one queue per simultaneous consumer pair beyond
	// what MaxLive-style sharing would suggest.
	if queues < 2 {
		t.Fatalf("complexmul cannot fit %d queue(s)", queues)
	}
}

func TestMaxLiveZeroLengthValues(t *testing.T) {
	// A value read in its production cycle still needs a register for
	// that cycle.
	l := ir.New("tight")
	a := l.AddOp(ir.KAdd, "a")
	st := l.AddOp(ir.KStore, "st")
	l.AddFlow(a, st)
	s := schedule(t, l, machine.SingleCluster(6))
	if ml := MaxLive(s); ml < 1 {
		t.Fatalf("MaxLive = %d for a live value", ml)
	}
}
