// Package regalloc computes the register requirements of a modulo schedule
// under a conventional (random-access, multi-ported) register file. It is
// the baseline the paper's queue register files are compared against: a
// conventional RF needs one register per simultaneously live value
// (MaxLive), but each value needs only a single write regardless of how
// many operations consume it (paper Fig. 1b).
package regalloc

import (
	"vliwq/internal/ir"
	"vliwq/internal/sched"
)

// ValueLive is the live range of one produced value under a conventional
// register file: written once at production, dead after its last read.
type ValueLive struct {
	Producer int // op ID
	Start    int // write cycle (issue + latency)
	End      int // last read cycle across all consumers
}

// Len returns the live-range length in cycles.
func (v ValueLive) Len() int { return v.End - v.Start }

// LiveRanges builds one live range per value produced and consumed in the
// schedule. Unconsumed values yield no range.
func LiveRanges(s *sched.Schedule) []ValueLive {
	var out []ValueLive
	for id, op := range s.Loop.Ops {
		if !op.Kind.HasResult() {
			continue
		}
		start := s.Time[id] + op.Kind.Latency()
		end := -1
		for _, d := range s.Loop.Deps {
			if d.Kind != ir.Flow || d.From != id {
				continue
			}
			if r := s.Time[d.To] + s.II*d.Dist; r > end {
				r0 := r
				if s.Cluster[d.From] != s.Cluster[d.To] {
					r0 += 0 // conventional RF baseline has no clusters; kept for symmetry
				}
				end = r0
			}
		}
		if end < 0 {
			continue
		}
		out = append(out, ValueLive{Producer: id, Start: start, End: end})
	}
	return out
}

// MaxLive returns the maximum number of simultaneously live values in
// pipeline steady state — the register count a conventional RF must
// provide (Llosa et al.'s register requirement lower bound, exact for
// non-blocking allocation).
func MaxLive(s *sched.Schedule) int {
	ranges := LiveRanges(s)
	ii := s.II
	max := 0
	for phase := 0; phase < ii; phase++ {
		n := 0
		for _, v := range ranges {
			r := ((phase-v.Start)%ii + ii) % ii
			if l := v.Len() - r; l > 0 {
				n += (l + ii - 1) / ii
			} else if v.Len() == 0 && r == 0 {
				// Zero-length values still need a register for their
				// write cycle.
				n++
			}
		}
		if n > max {
			max = n
		}
	}
	return max
}
