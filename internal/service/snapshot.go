package service

import (
	"encoding/json"
	"errors"
	"io"

	"vliwq/internal/cache"
)

// Cache snapshot persistence for the service: SaveCache/LoadCache wrap the
// generic cache snapshot (internal/cache.Save/Load) with the service's
// codec — keys are the canonical request strings, values are the cached
// outcome rendered as JSON. vliwd's -cache-snapshot flag uses these to
// persist the compile cache on shutdown and warm-start it on boot, so a
// restarted backend serves its first repeated request as a hit.

// ErrCacheDisabled is returned by SaveCache/LoadCache when the server was
// built with caching disabled (Config.CacheEntries < 0): there is nothing
// to persist or warm.
var ErrCacheDisabled = errors.New("service: cache disabled")

// wireOutcome is the snapshot encoding of a cached outcome. Exactly one of
// Resp and Err is set, mirroring the in-memory invariant.
type wireOutcome struct {
	Resp *CompileResponse `json:"resp,omitempty"`
	Err  string           `json:"err,omitempty"`
}

func outcomeCodec() cache.Codec[string, outcome] {
	return cache.StringKeyCodec(
		func(oc outcome) ([]byte, error) {
			return json.Marshal(wireOutcome{Resp: oc.resp, Err: oc.err})
		},
		func(b []byte) (outcome, error) {
			var w wireOutcome
			if err := json.Unmarshal(b, &w); err != nil {
				return outcome{}, err
			}
			return outcome{resp: w.Resp, err: w.Err}, nil
		},
	)
}

// SaveCache writes every completed cache entry to w in the versioned
// snapshot format and returns how many entries it wrote.
func (s *Server) SaveCache(w io.Writer) (int, error) {
	if s.cache == nil {
		return 0, ErrCacheDisabled
	}
	return s.cache.Save(w, outcomeCodec())
}

// LoadCache warm-starts the compile cache from a snapshot written by
// SaveCache, returning how many entries it inserted. Corrupt or truncated
// snapshots fail with an error wrapping cache.ErrCorruptSnapshot and leave
// the cache as it was.
func (s *Server) LoadCache(r io.Reader) (int, error) {
	if s.cache == nil {
		return 0, ErrCacheDisabled
	}
	return s.cache.Load(r, outcomeCodec())
}
