package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"vliwq"
	"vliwq/internal/corpus"
	"vliwq/internal/ir"
)

// testCorpus returns the deterministic loop set the service tests replay.
func testCorpus(t testing.TB, n int) []*ir.Loop {
	t.Helper()
	return corpus.Generate(corpus.Params{Seed: corpus.DefaultSeed, N: n})
}

func postJSON(t testing.TB, client *http.Client, url string, body any) (*http.Response, []byte) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, out.Bytes()
}

// TestServerMatchesDirectCompile is the service's fidelity contract: for 56
// corpus loops, the /compile response must be byte-identical — report,
// kernel table and every metric — to an in-process vliwq.Compile of the
// same request, and /batch must agree entry-for-entry with the facade's
// CompileBatch. Loops the pipeline rejects must fail identically on both
// paths.
func TestServerMatchesDirectCompile(t *testing.T) {
	const n = 56 // acceptance floor is 50
	loops := testCorpus(t, n)

	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	reqs := make([]CompileRequest, n)
	for i, l := range loops {
		reqs[i] = CompileRequest{Loop: vliwq.FormatLoop(l), Machine: "clustered:4", Unroll: true}
	}
	direct := vliwq.CompileBatch(context.Background(), toItems(t, reqs), 0)

	for i := range reqs {
		resp, body := postJSON(t, ts.Client(), ts.URL+"/compile", reqs[i])
		if direct[i].Err != nil {
			if resp.StatusCode != http.StatusUnprocessableEntity {
				t.Fatalf("loop %d: status %d for a loop direct compile rejects (%v)", i, resp.StatusCode, direct[i].Err)
			}
			var e map[string]string
			if err := json.Unmarshal(body, &e); err != nil || !strings.Contains(e["error"], direct[i].Err.Error()) {
				t.Fatalf("loop %d: server error %q does not match direct error %q", i, e["error"], direct[i].Err)
			}
			continue
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("loop %d: status %d, body %s", i, resp.StatusCode, body)
		}
		var got CompileResponse
		if err := json.Unmarshal(body, &got); err != nil {
			t.Fatalf("loop %d: %v", i, err)
		}
		assertMatchesResult(t, i, &got, direct[i].Result)
	}

	// The same set through /batch: results in input order, same bytes.
	resp, body := postJSON(t, ts.Client(), ts.URL+"/batch", BatchRequest{Requests: reqs})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/batch status %d: %s", resp.StatusCode, body)
	}
	var batch BatchResponse
	if err := json.Unmarshal(body, &batch); err != nil {
		t.Fatal(err)
	}
	if len(batch.Results) != n {
		t.Fatalf("/batch returned %d results for %d requests", len(batch.Results), n)
	}
	for i, e := range batch.Results {
		if direct[i].Err != nil {
			if e.Error == "" || !strings.Contains(e.Error, direct[i].Err.Error()) {
				t.Fatalf("batch entry %d: error %q, want %q", i, e.Error, direct[i].Err)
			}
			continue
		}
		if e.Response == nil {
			t.Fatalf("batch entry %d: missing response (error %q)", i, e.Error)
		}
		assertMatchesResult(t, i, e.Response, direct[i].Result)
	}
}

func toItems(t testing.TB, reqs []CompileRequest) []vliwq.BatchItem {
	t.Helper()
	items := make([]vliwq.BatchItem, len(reqs))
	for i, r := range reqs {
		loop, err := vliwq.ParseLoop(r.Loop)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		opts, err := reqs[i].Options()
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		items[i] = vliwq.BatchItem{Loop: loop, Opts: opts}
	}
	return items
}

func assertMatchesResult(t *testing.T, i int, got *CompileResponse, want *vliwq.Result) {
	t.Helper()
	if got.Report != want.Report() {
		t.Fatalf("loop %d: server report differs from direct compile:\n--- server ---\n%s--- direct ---\n%s", i, got.Report, want.Report())
	}
	if got.Kernel != want.KernelSchedule() {
		t.Fatalf("loop %d: server kernel table differs from direct compile", i)
	}
	if got.II != want.II || got.MII != want.MII || got.Stages != want.StageCount ||
		got.Unrolled != want.Unrolled || got.Queues != want.Queues || got.RingQueues != want.RingQueues ||
		got.IPCStatic != want.IPCStatic || got.IPCDynamic != want.IPCDynamic {
		t.Fatalf("loop %d: metrics differ: server %+v, direct %+v", i, got, want)
	}
}

// TestCachedMatchesUncached compiles the same set against a caching and a
// cache-disabled server; every response body must be identical, and repeat
// requests must be identical to their first serving.
func TestCachedMatchesUncached(t *testing.T) {
	loops := testCorpus(t, 16)
	cached := httptest.NewServer(New(Config{}).Handler())
	defer cached.Close()
	uncached := httptest.NewServer(New(Config{CacheEntries: -1}).Handler())
	defer uncached.Close()
	for i, l := range loops {
		req := CompileRequest{Loop: vliwq.FormatLoop(l), Machine: "clustered:4", SkipVerify: true}
		_, a := postJSON(t, cached.Client(), cached.URL+"/compile", req)
		_, b := postJSON(t, uncached.Client(), uncached.URL+"/compile", req)
		_, c := postJSON(t, cached.Client(), cached.URL+"/compile", req) // cache hit
		if !bytes.Equal(a, b) {
			t.Fatalf("loop %d: cached and uncached servers disagree:\n%s\nvs\n%s", i, a, b)
		}
		if !bytes.Equal(a, c) {
			t.Fatalf("loop %d: cache hit changed the response", i)
		}
	}
}

// TestConcurrentRequests hammers one server from many goroutines with
// overlapping requests; under -race this is the service's main concurrency
// check. Every response must match the sequential baseline.
func TestConcurrentRequests(t *testing.T) {
	loops := testCorpus(t, 24)
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	want := make([][]byte, len(loops))
	reqs := make([]CompileRequest, len(loops))
	for i, l := range loops {
		reqs[i] = CompileRequest{Loop: vliwq.FormatLoop(l), Machine: "clustered:4", SkipVerify: true}
		_, want[i] = postJSON(t, ts.Client(), ts.URL+"/compile", reqs[i])
	}

	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := range reqs {
				j := (i + w) % len(reqs)
				_, got := postJSON(t, ts.Client(), ts.URL+"/compile", reqs[j])
				if !bytes.Equal(got, want[j]) {
					errs <- fmt.Errorf("worker %d loop %d: response changed under concurrency", w, j)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	st := srv.Stats()
	if st.Cache.Hits == 0 {
		t.Fatal("no cache hits after replaying the corpus")
	}
	if st.Sched.Compiles != int64(len(loops)) {
		t.Fatalf("pipeline ran %d times for %d distinct requests", st.Sched.Compiles, len(loops))
	}
}

func TestBatchWorkerPoolOrdering(t *testing.T) {
	loops := testCorpus(t, 20)
	// Workers: 3 forces interleaving; cache disabled so every item compiles.
	ts := httptest.NewServer(New(Config{CacheEntries: -1, Workers: 3}).Handler())
	defer ts.Close()
	reqs := make([]CompileRequest, len(loops))
	for i, l := range loops {
		reqs[i] = CompileRequest{Loop: vliwq.FormatLoop(l), SkipVerify: true}
	}
	_, body := postJSON(t, ts.Client(), ts.URL+"/batch", BatchRequest{Requests: reqs})
	var batch BatchResponse
	if err := json.Unmarshal(body, &batch); err != nil {
		t.Fatal(err)
	}
	for i, e := range batch.Results {
		if e.Response == nil {
			t.Fatalf("entry %d: %s", i, e.Error)
		}
		if e.Response.Loop != loops[i].Name {
			t.Fatalf("entry %d is loop %q, want %q — batch order not deterministic", i, e.Response.Loop, loops[i].Name)
		}
	}
}

func TestHealthz(t *testing.T) {
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	var body map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil || body["status"] != "ok" {
		t.Fatalf("healthz body %v (%v)", body, err)
	}
}

func TestStatsCounters(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	req := CompileRequest{Loop: vliwq.FormatLoop(corpus.KernelByName("daxpy")), SkipVerify: true}
	postJSON(t, ts.Client(), ts.URL+"/compile", req)
	postJSON(t, ts.Client(), ts.URL+"/compile", req)
	postJSON(t, ts.Client(), ts.URL+"/batch", BatchRequest{Requests: []CompileRequest{req, req}})

	resp, err := ts.Client().Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.CompileRequests != 2 || st.BatchRequests != 1 || st.BatchItems != 2 {
		t.Fatalf("request counters: %+v", st)
	}
	if !st.CacheEnabled || st.Cache.Misses != 1 || st.Cache.Hits != 3 {
		t.Fatalf("cache counters: %+v", st.Cache)
	}
	if st.Sched.Compiles != 1 || st.Sched.IISum < 1 || st.Sched.OpsScheduled < 1 {
		t.Fatalf("sched counters: %+v", st.Sched)
	}
	// The staged engine's observability: per-stage wall clock (the compile
	// ran schedule and alloc; it skipped verify) and per-machine-spec
	// compile counts in normalized spec notation.
	if st.Sched.StageNanos["schedule"] <= 0 || st.Sched.StageNanos["alloc"] <= 0 {
		t.Fatalf("stage nanos missing compile stages: %v", st.Sched.StageNanos)
	}
	if _, ok := st.Sched.StageNanos["verify"]; ok {
		t.Fatalf("verify stage timed on a skip_verify compile: %v", st.Sched.StageNanos)
	}
	if st.Sched.Machines["single:6"] != 1 || len(st.Sched.Machines) != 1 {
		t.Fatalf("machine counters: %v", st.Sched.Machines)
	}
}

func TestBoundedCacheMode(t *testing.T) {
	loops := testCorpus(t, 24)
	srv := New(Config{CacheEntries: 8})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	for _, l := range loops {
		postJSON(t, ts.Client(), ts.URL+"/compile", CompileRequest{Loop: vliwq.FormatLoop(l), SkipVerify: true})
	}
	st := srv.Stats()
	if st.Cache.Entries > 8 {
		t.Fatalf("bounded cache holds %d entries", st.Cache.Entries)
	}
	if st.Cache.Evictions == 0 {
		t.Fatal("no evictions recorded after overflowing the bound")
	}
}

func TestRequestErrors(t *testing.T) {
	ts := httptest.NewServer(New(Config{MaxBatch: 2}).Handler())
	defer ts.Close()
	client := ts.Client()
	valid := vliwq.FormatLoop(corpus.KernelByName("daxpy"))

	tests := []struct {
		name   string
		method string
		path   string
		body   string
		status int
		errHas string
	}{
		{"compile GET", http.MethodGet, "/compile", "", http.StatusMethodNotAllowed, "POST"},
		{"batch GET", http.MethodGet, "/batch", "", http.StatusMethodNotAllowed, "POST"},
		{"bad json", http.MethodPost, "/compile", "{", http.StatusBadRequest, "bad request body"},
		{"unknown field", http.MethodPost, "/compile", `{"loops":"x"}`, http.StatusBadRequest, "unknown field"},
		{"empty loop", http.MethodPost, "/compile", `{"loop":""}`, http.StatusBadRequest, "empty loop"},
		{"bad machine", http.MethodPost, "/compile", `{"loop":"loop x\ntrip 4\nop a load","machine":"mesh:4"}`, http.StatusBadRequest, "unknown machine kind"},
		{"bad shape", http.MethodPost, "/compile", `{"loop":"loop x\ntrip 4\nop a load","copy_shape":"star"}`, http.StatusBadRequest, "unknown copy_shape"},
		{"negative commlat", http.MethodPost, "/compile", `{"loop":"loop x\ntrip 4\nop a load","comm_latency":-1}`, http.StatusBadRequest, "comm_latency"},
		{"huge machine", http.MethodPost, "/compile", `{"loop":"loop x\ntrip 4\nop a load","machine":"clustered:500000000"}`, http.StatusBadRequest, "exceeds"},
		{"huge unroll factor", http.MethodPost, "/compile", `{"loop":"loop x\ntrip 4\nop a load","unroll_factor":100000000}`, http.StatusBadRequest, "unroll_factor"},
		{"unknown effort", http.MethodPost, "/compile", `{"loop":"loop x\ntrip 4\nop a load","effort":"sluggish"}`, http.StatusBadRequest, `unknown effort "sluggish" (valid: balanced, exhaustive, fast, optimal)`},
		{"unparsable loop", http.MethodPost, "/compile", `{"loop":"op without header"}`, http.StatusUnprocessableEntity, "ir:"},
		{"batch too large", http.MethodPost, "/batch",
			fmt.Sprintf(`{"requests":[{"loop":%q},{"loop":%q},{"loop":%q}]}`, valid, valid, valid),
			http.StatusRequestEntityTooLarge, "limit"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			req, err := http.NewRequest(tt.method, ts.URL+tt.path, strings.NewReader(tt.body))
			if err != nil {
				t.Fatal(err)
			}
			resp, err := client.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tt.status {
				t.Fatalf("status %d, want %d", resp.StatusCode, tt.status)
			}
			var e map[string]string
			if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(e["error"], tt.errHas) {
				t.Fatalf("error %q does not mention %q", e["error"], tt.errHas)
			}
		})
	}
}

// TestOversizeBodyIs413 distinguishes "shrink your request" from
// "malformed JSON": blowing the body cap must answer 413, not 400.
func TestOversizeBodyIs413(t *testing.T) {
	ts := httptest.NewServer(New(Config{MaxBodyBytes: 128}).Handler())
	defer ts.Close()
	big := CompileRequest{Loop: strings.Repeat("# pad\n", 100) + "loop x\ntrip 4\nop a load"}
	resp, body := postJSON(t, ts.Client(), ts.URL+"/compile", big)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413 (body %s)", resp.StatusCode, body)
	}
}
