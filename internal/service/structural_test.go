package service

import (
	"bytes"
	"fmt"
	"net/http/httptest"
	"sort"
	"sync"
	"testing"

	"vliwq"
	"vliwq/internal/corpus"
)

const structTestLoop = `loop daxpy
trip 200
op a load
op x load
op y load
op m mul a
op s add m y
op st store s
carried s m 1
mem st a 1
`

// renameSpelling parses a loop text and rewrites every name (ops and the
// loop itself) to a fresh namespace, preserving structure, statement order
// and operand order exactly — the name-only-isomorphic spelling the
// structural cache serves by remap.
func renameSpelling(t testing.TB, src, prefix string) string {
	t.Helper()
	l, err := vliwq.ParseLoop(src)
	if err != nil {
		t.Fatalf("renameSpelling: %v", err)
	}
	l.Name = prefix + l.Name
	for i, op := range l.Ops {
		if op.Name != "" {
			op.Name = fmt.Sprintf("%s%d", prefix, i)
		}
	}
	return vliwq.FormatLoop(l)
}

// TestStructuralHitServesRenamedSpelling: a renamed spelling of a compiled
// loop is served from the structural cache — one pipeline run, a counted
// hit, and a response byte-identical to a fresh server compiling the
// renamed spelling from scratch.
func TestStructuralHitServesRenamedSpelling(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	fresh := httptest.NewServer(New(Config{}).Handler())
	defer fresh.Close()

	renamed := renameSpelling(t, structTestLoop, "z")
	if r, _ := postJSON(t, ts.Client(), ts.URL+"/compile", CompileRequest{Loop: structTestLoop}); r.StatusCode != 200 {
		t.Fatalf("original compile: status %d", r.StatusCode)
	}
	r1, got := postJSON(t, ts.Client(), ts.URL+"/compile", CompileRequest{Loop: renamed})
	r2, want := postJSON(t, fresh.Client(), fresh.URL+"/compile", CompileRequest{Loop: renamed})
	if r1.StatusCode != 200 || r2.StatusCode != 200 {
		t.Fatalf("renamed compiles: status %d / %d", r1.StatusCode, r2.StatusCode)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("structural hit not byte-identical to fresh compile:\nhit:   %s\nfresh: %s", got, want)
	}

	st := srv.Stats()
	if st.Sched.Compiles != 1 {
		t.Fatalf("compiles = %d, want 1 (renamed spelling must reuse the class compile)", st.Sched.Compiles)
	}
	if st.Structural.Hits != 1 || st.Structural.Renumbered != 0 || !st.Structural.Enabled {
		t.Fatalf("structural stats = %+v, want enabled with hits=1", st.Structural)
	}
	if st.Cache.Misses != 2 {
		t.Fatalf("exact misses = %d, want 2 (distinct spellings keep distinct exact keys)", st.Cache.Misses)
	}
}

// TestStructuralReorderedHit: a statement-permuted spelling shares the
// fingerprint but fails the skeleton gate as-is; AlignLike renumbers it
// into the class leader's canonical statement order and the remap serves
// it without a second pipeline run. The response is class-deterministic:
// a second server warmed with the same two spellings answers byte-identical.
func TestStructuralReorderedHit(t *testing.T) {
	permuted := `loop daxpy
trip 200
op x load
op a load
op y load
op m mul a
op s add m y
op st store s
carried s m 1
mem st a 1
`
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	twinSrv := New(Config{})
	twin := httptest.NewServer(twinSrv.Handler())
	defer twin.Close()

	for _, u := range []string{ts.URL, twin.URL} {
		if r, _ := postJSON(t, ts.Client(), u+"/compile", CompileRequest{Loop: structTestLoop}); r.StatusCode != 200 {
			t.Fatalf("leader compile: status %d", r.StatusCode)
		}
	}
	r1, got := postJSON(t, ts.Client(), ts.URL+"/compile", CompileRequest{Loop: permuted})
	r2, want := postJSON(t, twin.Client(), twin.URL+"/compile", CompileRequest{Loop: permuted})
	if r1.StatusCode != 200 || r2.StatusCode != 200 {
		t.Fatalf("permuted compiles: status %d / %d", r1.StatusCode, r2.StatusCode)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("reordered hit not deterministic across identically-warmed servers:\n%s\nvs\n%s", got, want)
	}
	st := srv.Stats()
	if st.Sched.Compiles != 1 {
		t.Fatalf("compiles = %d, want 1 (permuted spelling must reuse the class compile)", st.Sched.Compiles)
	}
	if st.Structural.Hits != 1 || st.Structural.Reordered != 1 || st.Structural.Renumbered != 0 {
		t.Fatalf("structural stats = %+v, want hits=1 reordered=1 renumbered=0", st.Structural)
	}
}

// TestStructuralDisabled: with DisableStructural set, renamed spellings
// compile independently, as before the structural layer existed.
func TestStructuralDisabled(t *testing.T) {
	srv := New(Config{DisableStructural: true})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	postJSON(t, ts.Client(), ts.URL+"/compile", CompileRequest{Loop: structTestLoop})
	postJSON(t, ts.Client(), ts.URL+"/compile", CompileRequest{Loop: renameSpelling(t, structTestLoop, "z")})
	st := srv.Stats()
	if st.Sched.Compiles != 2 || st.Structural.Enabled || st.Structural.Hits != 0 {
		t.Fatalf("stats = compiles=%d structural=%+v, want 2 compiles with the layer disabled",
			st.Sched.Compiles, st.Structural)
	}
}

// TestStructuralCoalescing: concurrent isomorphic-but-renamed requests
// collapse onto one pipeline run; the joiners count as coalesced hits.
func TestStructuralCoalescing(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const spellings = 8
	var wg sync.WaitGroup
	for i := 0; i < spellings; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			loop := renameSpelling(t, structTestLoop, fmt.Sprintf("p%dq", i))
			r, _ := postJSON(t, ts.Client(), ts.URL+"/compile", CompileRequest{Loop: loop})
			if r.StatusCode != 200 {
				t.Errorf("spelling %d: status %d", i, r.StatusCode)
			}
		}(i)
	}
	wg.Wait()
	st := srv.Stats()
	if st.Sched.Compiles != 1 {
		t.Fatalf("compiles = %d, want 1 (all spellings share one class compile)", st.Sched.Compiles)
	}
	if st.Structural.Hits != spellings-1 {
		t.Fatalf("structural hits = %d, want %d", st.Structural.Hits, spellings-1)
	}
	if st.Structural.Coalesced > st.Structural.Hits {
		t.Fatalf("coalesced = %d exceeds hits = %d", st.Structural.Coalesced, st.Structural.Hits)
	}
}

// TestStructuralRemapPropertyStressed is the property test: across a slice
// of the stressed corpus (wide fanout, dense recurrences — the shapes most
// likely to expose a remap defect), every structural-hit response must be
// byte-identical to compiling the renamed spelling from scratch on an
// independent server. Error responses must agree too: a pipeline rejection
// is rendered under the caller's names on both paths.
func TestStructuralRemapPropertyStressed(t *testing.T) {
	const n = 48
	loops := corpus.Stressed()[:n]

	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	fresh := httptest.NewServer(New(Config{}).Handler())
	defer fresh.Close()

	okCount := 0
	for i, l := range loops {
		orig := vliwq.FormatLoop(l)
		renamed := renameSpelling(t, orig, "q")
		req := CompileRequest{Loop: orig, Machine: "clustered:4", SkipVerify: true}
		rreq := req
		rreq.Loop = renamed

		r0, _ := postJSON(t, ts.Client(), ts.URL+"/compile", req)
		r1, got := postJSON(t, ts.Client(), ts.URL+"/compile", rreq)
		r2, want := postJSON(t, fresh.Client(), fresh.URL+"/compile", rreq)
		if r1.StatusCode != r2.StatusCode {
			t.Fatalf("loop %d: status %d vs fresh %d", i, r1.StatusCode, r2.StatusCode)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("loop %d: structural-path response diverged from fresh compile:\n%s\nvs\n%s", i, got, want)
		}
		if r0.StatusCode == 200 && r1.StatusCode == 200 {
			okCount++
		}
	}

	st := srv.Stats()
	if okCount == 0 {
		t.Fatal("no stressed loop compiled successfully; property vacuous")
	}
	if st.Structural.Hits < int64(okCount) {
		t.Fatalf("structural hits = %d, want >= %d (every successful renamed spelling must hit)",
			st.Structural.Hits, okCount)
	}
	t.Logf("stressed property: %d/%d classes compiled, %d structural hits, %d renumbered",
		okCount, n, st.Structural.Hits, st.Structural.Renumbered)
}

// permuteSpelling re-spells a loop with a different (still valid)
// statement order: a max-ID-first topological order over the dist-0
// dependences, with the dep list kept in its original sequence so every
// consumer's operand order is preserved.
func permuteSpelling(t testing.TB, src string) string {
	t.Helper()
	l, err := vliwq.ParseLoop(src)
	if err != nil {
		t.Fatalf("permuteSpelling: %v", err)
	}
	n := len(l.Ops)
	indeg := make([]int, n)
	succ := make([][]int, n)
	for _, d := range l.Deps {
		if d.Dist == 0 {
			succ[d.From] = append(succ[d.From], d.To)
			indeg[d.To]++
		}
	}
	var ready []int
	for i, deg := range indeg {
		if deg == 0 {
			ready = append(ready, i)
		}
	}
	order := make([]int, 0, n)
	for len(ready) > 0 {
		sort.Ints(ready)
		v := ready[len(ready)-1]
		ready = ready[:len(ready)-1]
		order = append(order, v)
		for _, w := range succ[v] {
			if indeg[w]--; indeg[w] == 0 {
				ready = append(ready, w)
			}
		}
	}
	if len(order) != n {
		t.Fatalf("permuteSpelling: dist-0 cycle in %q", l.Name)
	}
	perm := make([]int, n)
	for newIdx, old := range order {
		perm[old] = newIdx
	}
	cl := l.Clone()
	for i, op := range l.Ops {
		cp := *op
		cp.ID = perm[i]
		cl.Ops[perm[i]] = &cp
	}
	for j := range cl.Deps {
		cl.Deps[j].From = perm[l.Deps[j].From]
		cl.Deps[j].To = perm[l.Deps[j].To]
	}
	return vliwq.FormatLoop(cl)
}

// TestStructuralReorderedPropertyStressed extends the remap property to
// statement-permuted spellings: across a slice of the stressed corpus,
// serving a permuted spelling after its class leader must (a) agree
// byte-for-byte with an identically-warmed independent server — the
// class-determinism guarantee reordered hits carry — and (b) never run a
// second pipeline compile when the permuted spelling stays in the leader's
// fingerprint class.
func TestStructuralReorderedPropertyStressed(t *testing.T) {
	const n = 24
	loops := corpus.Stressed()[:n]

	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	twin := httptest.NewServer(New(Config{}).Handler())
	defer twin.Close()

	exercised := 0
	for i, l := range loops {
		orig := vliwq.FormatLoop(l)
		permuted := permuteSpelling(t, orig)
		if permuted == orig {
			continue // chain-shaped body: only one valid statement order
		}
		req := CompileRequest{Loop: orig, Machine: "clustered:4", SkipVerify: true}
		preq := req
		preq.Loop = permuted

		for _, c := range []struct {
			client *httptest.Server
		}{{ts}, {twin}} {
			if r, _ := postJSON(t, c.client.Client(), c.client.URL+"/compile", req); r.StatusCode != 200 && r.StatusCode != 422 {
				t.Fatalf("loop %d: leader status %d", i, r.StatusCode)
			}
		}
		r1, got := postJSON(t, ts.Client(), ts.URL+"/compile", preq)
		r2, want := postJSON(t, twin.Client(), twin.URL+"/compile", preq)
		if r1.StatusCode != r2.StatusCode {
			t.Fatalf("loop %d: permuted status %d vs twin %d", i, r1.StatusCode, r2.StatusCode)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("loop %d: permuted spelling not deterministic across servers:\n%s\nvs\n%s", i, got, want)
		}
		exercised++
	}

	st := srv.Stats()
	if exercised == 0 {
		t.Fatal("no stressed loop admitted a non-trivial permutation; property vacuous")
	}
	if st.Structural.Reordered == 0 {
		t.Fatal("no permuted spelling was served as a reordered structural hit")
	}
	t.Logf("reordered property: %d/%d permuted spellings exercised, %d reordered hits, %d renumbered",
		exercised, n, st.Structural.Reordered, st.Structural.Renumbered)
}
