package service

import (
	"bytes"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"

	"vliwq"
	"vliwq/internal/corpus"
)

const structTestLoop = `loop daxpy
trip 200
op a load
op x load
op y load
op m mul a
op s add m y
op st store s
carried s m 1
mem st a 1
`

// renameSpelling parses a loop text and rewrites every name (ops and the
// loop itself) to a fresh namespace, preserving structure, statement order
// and operand order exactly — the name-only-isomorphic spelling the
// structural cache serves by remap.
func renameSpelling(t testing.TB, src, prefix string) string {
	t.Helper()
	l, err := vliwq.ParseLoop(src)
	if err != nil {
		t.Fatalf("renameSpelling: %v", err)
	}
	l.Name = prefix + l.Name
	for i, op := range l.Ops {
		if op.Name != "" {
			op.Name = fmt.Sprintf("%s%d", prefix, i)
		}
	}
	return vliwq.FormatLoop(l)
}

// TestStructuralHitServesRenamedSpelling: a renamed spelling of a compiled
// loop is served from the structural cache — one pipeline run, a counted
// hit, and a response byte-identical to a fresh server compiling the
// renamed spelling from scratch.
func TestStructuralHitServesRenamedSpelling(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	fresh := httptest.NewServer(New(Config{}).Handler())
	defer fresh.Close()

	renamed := renameSpelling(t, structTestLoop, "z")
	if r, _ := postJSON(t, ts.Client(), ts.URL+"/compile", CompileRequest{Loop: structTestLoop}); r.StatusCode != 200 {
		t.Fatalf("original compile: status %d", r.StatusCode)
	}
	r1, got := postJSON(t, ts.Client(), ts.URL+"/compile", CompileRequest{Loop: renamed})
	r2, want := postJSON(t, fresh.Client(), fresh.URL+"/compile", CompileRequest{Loop: renamed})
	if r1.StatusCode != 200 || r2.StatusCode != 200 {
		t.Fatalf("renamed compiles: status %d / %d", r1.StatusCode, r2.StatusCode)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("structural hit not byte-identical to fresh compile:\nhit:   %s\nfresh: %s", got, want)
	}

	st := srv.Stats()
	if st.Sched.Compiles != 1 {
		t.Fatalf("compiles = %d, want 1 (renamed spelling must reuse the class compile)", st.Sched.Compiles)
	}
	if st.Structural.Hits != 1 || st.Structural.Renumbered != 0 || !st.Structural.Enabled {
		t.Fatalf("structural stats = %+v, want enabled with hits=1", st.Structural)
	}
	if st.Cache.Misses != 2 {
		t.Fatalf("exact misses = %d, want 2 (distinct spellings keep distinct exact keys)", st.Cache.Misses)
	}
}

// TestStructuralRenumberedCompilesFresh: a statement-permuted spelling
// shares the fingerprint but fails the skeleton gate, so it compiles fresh
// (and is counted) — serving a remap could diverge from what the scheduler
// would do with the permuted IDs.
func TestStructuralRenumberedCompilesFresh(t *testing.T) {
	permuted := `loop daxpy
trip 200
op x load
op a load
op y load
op m mul a
op s add m y
op st store s
carried s m 1
mem st a 1
`
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	fresh := httptest.NewServer(New(Config{}).Handler())
	defer fresh.Close()

	postJSON(t, ts.Client(), ts.URL+"/compile", CompileRequest{Loop: structTestLoop})
	_, got := postJSON(t, ts.Client(), ts.URL+"/compile", CompileRequest{Loop: permuted})
	_, want := postJSON(t, fresh.Client(), fresh.URL+"/compile", CompileRequest{Loop: permuted})
	if !bytes.Equal(got, want) {
		t.Fatalf("renumbered spelling diverged from fresh compile:\n%s\nvs\n%s", got, want)
	}
	st := srv.Stats()
	if st.Sched.Compiles != 2 || st.Structural.Hits != 0 || st.Structural.Renumbered != 1 {
		t.Fatalf("stats = compiles=%d structural=%+v, want 2 compiles and renumbered=1",
			st.Sched.Compiles, st.Structural)
	}
}

// TestStructuralDisabled: with DisableStructural set, renamed spellings
// compile independently, as before the structural layer existed.
func TestStructuralDisabled(t *testing.T) {
	srv := New(Config{DisableStructural: true})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	postJSON(t, ts.Client(), ts.URL+"/compile", CompileRequest{Loop: structTestLoop})
	postJSON(t, ts.Client(), ts.URL+"/compile", CompileRequest{Loop: renameSpelling(t, structTestLoop, "z")})
	st := srv.Stats()
	if st.Sched.Compiles != 2 || st.Structural.Enabled || st.Structural.Hits != 0 {
		t.Fatalf("stats = compiles=%d structural=%+v, want 2 compiles with the layer disabled",
			st.Sched.Compiles, st.Structural)
	}
}

// TestStructuralCoalescing: concurrent isomorphic-but-renamed requests
// collapse onto one pipeline run; the joiners count as coalesced hits.
func TestStructuralCoalescing(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const spellings = 8
	var wg sync.WaitGroup
	for i := 0; i < spellings; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			loop := renameSpelling(t, structTestLoop, fmt.Sprintf("p%dq", i))
			r, _ := postJSON(t, ts.Client(), ts.URL+"/compile", CompileRequest{Loop: loop})
			if r.StatusCode != 200 {
				t.Errorf("spelling %d: status %d", i, r.StatusCode)
			}
		}(i)
	}
	wg.Wait()
	st := srv.Stats()
	if st.Sched.Compiles != 1 {
		t.Fatalf("compiles = %d, want 1 (all spellings share one class compile)", st.Sched.Compiles)
	}
	if st.Structural.Hits != spellings-1 {
		t.Fatalf("structural hits = %d, want %d", st.Structural.Hits, spellings-1)
	}
	if st.Structural.Coalesced > st.Structural.Hits {
		t.Fatalf("coalesced = %d exceeds hits = %d", st.Structural.Coalesced, st.Structural.Hits)
	}
}

// TestStructuralRemapPropertyStressed is the property test: across a slice
// of the stressed corpus (wide fanout, dense recurrences — the shapes most
// likely to expose a remap defect), every structural-hit response must be
// byte-identical to compiling the renamed spelling from scratch on an
// independent server. Error responses must agree too: a pipeline rejection
// is rendered under the caller's names on both paths.
func TestStructuralRemapPropertyStressed(t *testing.T) {
	const n = 48
	loops := corpus.Stressed()[:n]

	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	fresh := httptest.NewServer(New(Config{}).Handler())
	defer fresh.Close()

	okCount := 0
	for i, l := range loops {
		orig := vliwq.FormatLoop(l)
		renamed := renameSpelling(t, orig, "q")
		req := CompileRequest{Loop: orig, Machine: "clustered:4", SkipVerify: true}
		rreq := req
		rreq.Loop = renamed

		r0, _ := postJSON(t, ts.Client(), ts.URL+"/compile", req)
		r1, got := postJSON(t, ts.Client(), ts.URL+"/compile", rreq)
		r2, want := postJSON(t, fresh.Client(), fresh.URL+"/compile", rreq)
		if r1.StatusCode != r2.StatusCode {
			t.Fatalf("loop %d: status %d vs fresh %d", i, r1.StatusCode, r2.StatusCode)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("loop %d: structural-path response diverged from fresh compile:\n%s\nvs\n%s", i, got, want)
		}
		if r0.StatusCode == 200 && r1.StatusCode == 200 {
			okCount++
		}
	}

	st := srv.Stats()
	if okCount == 0 {
		t.Fatal("no stressed loop compiled successfully; property vacuous")
	}
	if st.Structural.Hits < int64(okCount) {
		t.Fatalf("structural hits = %d, want >= %d (every successful renamed spelling must hit)",
			st.Structural.Hits, okCount)
	}
	t.Logf("stressed property: %d/%d classes compiled, %d structural hits, %d renumbered",
		okCount, n, st.Structural.Hits, st.Structural.Renumbered)
}
