package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"vliwq"
	"vliwq/internal/corpus"
)

// heavyRequest builds a request whose compile reliably outlasts a
// millisecond budget before the scheduling stage boundary: a long
// dependence-chained loop unrolled to 4096 ops, racing the full strategy
// portfolio on a clustered machine, verify on. The factor is deliberately
// large — the bitset scheduler is fast enough that smaller unrolls reach
// the last cancellation checkpoint inside the budget.
func heavyRequest(t testing.TB) CompileRequest {
	t.Helper()
	var b strings.Builder
	b.WriteString("loop heavy\ntrip 1024\n")
	fmt.Fprintf(&b, "op v0 load\n")
	for i := 1; i < 64; i++ {
		fmt.Fprintf(&b, "op v%d add v%d\n", i, i-1)
	}
	return CompileRequest{
		Loop:         b.String(),
		Machine:      "clustered:4",
		Unroll:       true,
		UnrollFactor: 64,
		Effort:       "exhaustive",
	}
}

// TestDegradedResponseCachesUnderDegradedKey is the golden regression for
// SLO degradation vs the canonical cache key: a request degraded from
// exhaustive to fast must cache under the FAST canonical key (the effort
// that ran), never under the exhaustive key — otherwise once pressure
// subsides, exhaustive requesters would be served the degraded schedule
// forever. It also pins the annotation split: the degraded requester sees
// degraded:true + requested_effort, while a genuine fast requester sharing
// the same cache entry sees a plain fast response.
func TestDegradedResponseCachesUnderDegradedKey(t *testing.T) {
	srv := New(Config{})
	srv.level.Store(3) // force the ladder floor: every effort degrades to fast
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	loop := vliwq.FormatLoop(corpus.KernelByName("daxpy"))
	req := CompileRequest{Loop: loop, Machine: "clustered:4", Effort: "exhaustive", SkipVerify: true}

	resp, body := postJSON(t, ts.Client(), ts.URL+"/compile", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var got CompileResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if !got.Degraded || got.RequestedEffort != "exhaustive" || got.Effort != "fast" {
		t.Fatalf("degraded annotation wrong: degraded=%v requested=%q effort=%q",
			got.Degraded, got.RequestedEffort, got.Effort)
	}

	// The canonical keys the two efforts would use.
	fastKey := func(effort string) string {
		r := CompileRequest{Loop: loop, Machine: "clustered:4", Effort: effort, SkipVerify: true}
		if err := r.Normalize(); err != nil {
			t.Fatal(err)
		}
		return r.Canonical()
	}
	if _, ok := srv.cache.Get(fastKey("fast")); !ok {
		t.Fatal("degraded compile did not cache under the fast (ran-effort) key")
	}
	if _, ok := srv.cache.Get(fastKey("exhaustive")); ok {
		t.Fatal("degraded compile cached under the exhaustive (requested-effort) key")
	}

	// A genuine fast requester hits the same entry but must NOT be told its
	// response was degraded — it got exactly what it asked for.
	req.Effort = "fast"
	resp, body = postJSON(t, ts.Client(), ts.URL+"/compile", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fast request status %d: %s", resp.StatusCode, body)
	}
	var fast CompileResponse
	if err := json.Unmarshal(body, &fast); err != nil {
		t.Fatal(err)
	}
	if fast.Degraded || fast.RequestedEffort != "" {
		t.Fatalf("shared cache entry leaked the degraded annotation: %+v", fast)
	}
	if st := srv.Stats(); st.Cache.Misses != 1 || st.Cache.Hits != 1 {
		t.Fatalf("misses=%d hits=%d, want 1/1 — the two requests must share one entry",
			st.Cache.Misses, st.Cache.Hits)
	}

	// Once the ladder recovers, the exhaustive key compiles fresh at full
	// effort — the degraded entry does not satisfy it.
	srv.level.Store(0)
	req.Effort = "exhaustive"
	resp, body = postJSON(t, ts.Client(), ts.URL+"/compile", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("recovered request status %d: %s", resp.StatusCode, body)
	}
	var full CompileResponse
	if err := json.Unmarshal(body, &full); err != nil {
		t.Fatal(err)
	}
	if full.Degraded || full.Effort != "exhaustive" {
		t.Fatalf("post-recovery exhaustive request answered %+v", full)
	}
	if _, ok := srv.cache.Get(fastKey("exhaustive")); !ok {
		t.Fatal("post-recovery exhaustive compile did not cache under its own key")
	}
}

// TestDegradationLadderHysteresis drives observeLatency directly: over the
// target the level climbs one step per observation up to the floor, and it
// only recovers once the EWMA falls below HALF the target.
func TestDegradationLadderHysteresis(t *testing.T) {
	const target = 10 * time.Millisecond
	srv := New(Config{SLOTarget: target})

	for i, want := range []int32{1, 2, 3, 3} {
		srv.observeLatency(2 * target)
		if lvl := srv.level.Load(); lvl != want {
			t.Fatalf("after slow observation %d: level %d, want %d", i+1, lvl, want)
		}
	}
	// Decay toward zero: recovery must not begin while the EWMA sits in the
	// hysteresis band (target/2, target].
	sawBand := false
	for i := 0; i < 50 && srv.level.Load() > 0; i++ {
		srv.observeLatency(0)
		avg := time.Duration(srv.latEWMA.Value())
		if avg > target/2 {
			sawBand = true
			if srv.level.Load() != 3 {
				t.Fatalf("level dropped to %d while ewma %v still above %v", srv.level.Load(), avg, target/2)
			}
		}
	}
	if !sawBand {
		t.Fatal("decay never passed through the hysteresis band — test has no teeth")
	}
	if lvl := srv.level.Load(); lvl != 0 {
		t.Fatalf("ladder never recovered: level %d", lvl)
	}
}

// TestAdmissionShedding pins the gate contract: a call beyond MaxInflight
// answers 429 with Retry-After immediately (no queueing), sheds are counted
// under admission.shed rather than request_errors, and the slot's release
// restores service.
func TestAdmissionShedding(t *testing.T) {
	srv := New(Config{MaxInflight: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	srv.inflight <- struct{}{} // occupy the only slot
	req := CompileRequest{Loop: vliwq.FormatLoop(corpus.KernelByName("daxpy")), SkipVerify: true}
	resp, body := postJSON(t, ts.Client(), ts.URL+"/compile", req)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated server answered %d: %s", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Fatalf("Retry-After %q, want \"1\"", ra)
	}
	// /batch goes through the same gate.
	resp, _ = postJSON(t, ts.Client(), ts.URL+"/batch", BatchRequest{Requests: []CompileRequest{req}})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated /batch answered %d", resp.StatusCode)
	}
	<-srv.inflight // release
	resp, body = postJSON(t, ts.Client(), ts.URL+"/compile", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("after release: %d %s", resp.StatusCode, body)
	}

	st := srv.Stats()
	if st.Admission.Shed != 2 || st.Admission.MaxInflight != 1 {
		t.Fatalf("admission stats %+v, want 2 shed under a bound of 1", st.Admission)
	}
	if st.RequestErrors != 0 {
		t.Fatalf("sheds counted as request errors (%d) — they are backpressure, not faults", st.RequestErrors)
	}
	if st.Admission.Inflight != 0 {
		t.Fatalf("inflight gauge %d after all calls returned", st.Admission.Inflight)
	}
}

// TestDeadlinePropagationCancelsCompile is the end-to-end deadline
// contract: a client budget far shorter than the compile cancels the
// backend's pipeline at a stage boundary (504 carrying the context error),
// the cancellation is counted, and — critically — the cache is NOT
// poisoned: the next request for the same key, sent without a budget,
// compiles fresh and succeeds.
func TestDeadlinePropagationCancelsCompile(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	req := heavyRequest(t)
	buf, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hr, err := http.NewRequest(http.MethodPost, ts.URL+"/compile", strings.NewReader(string(buf)))
	if err != nil {
		t.Fatal(err)
	}
	hr.Header.Set("Content-Type", "application/json")
	hr.Header.Set(DeadlineHeader, "1ms")
	resp, err := ts.Client().Do(hr)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var e map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d (%v), want 504 — compile outran a 1ms budget?", resp.StatusCode, e)
	}
	if !strings.Contains(e["error"], context.DeadlineExceeded.Error()) {
		t.Fatalf("504 error %q does not carry the context error", e["error"])
	}
	st := srv.Stats()
	if st.DeadlineExceeded != 1 {
		t.Fatalf("deadline_exceeded %d, want 1", st.DeadlineExceeded)
	}

	// The poisoning check: without a budget the same request must succeed —
	// compileOne must have forgotten the cancelled entry.
	resp2, body := postJSON(t, ts.Client(), ts.URL+"/compile", req)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("post-timeout request answered %d: %s — cancelled outcome stayed cached", resp2.StatusCode, body)
	}
}

// TestCompileOneForgetsCancelledOutcome is the white-box companion: an
// already-expired context yields a timeoutError, and the cache entry for
// the key is gone afterwards so a retry recomputes rather than replaying
// the first caller's deadline.
func TestCompileOneForgetsCancelledOutcome(t *testing.T) {
	srv := New(Config{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	req := CompileRequest{Loop: vliwq.FormatLoop(corpus.KernelByName("daxpy")), SkipVerify: true}
	_, err := srv.compileOne(ctx, &req)
	var te timeoutError
	if err == nil || !errors.As(err, &te) {
		t.Fatalf("cancelled compileOne returned %v, want timeoutError", err)
	}
	norm := req
	if err := norm.Normalize(); err != nil {
		t.Fatal(err)
	}
	if _, ok := srv.cache.Get(norm.Canonical()); ok {
		t.Fatal("cancelled outcome still cached after Forget")
	}
	if resp, err := srv.compileOne(context.Background(), &req); err != nil || resp == nil {
		t.Fatalf("retry after cancellation failed: %v", err)
	}
}

// TestBadDeadlineHeaderIs400 — a malformed or non-positive budget is the
// client's bug and must be rejected before any compile work runs.
func TestBadDeadlineHeaderIs400(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	for _, v := range []string{"soon", "-5s", "0s"} {
		hr, err := http.NewRequest(http.MethodPost, ts.URL+"/compile", strings.NewReader(`{"loop":"x"}`))
		if err != nil {
			t.Fatal(err)
		}
		hr.Header.Set(DeadlineHeader, v)
		resp, err := ts.Client().Do(hr)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("deadline %q: status %d, want 400", v, resp.StatusCode)
		}
	}
	if n := srv.Stats().Sched.Compiles; n != 0 {
		t.Fatalf("bad deadline headers still ran %d compiles", n)
	}
}

// TestHealthzReportsDegradation — healthz keeps its map[string]string body
// but flips status to "degraded" with a reason while the ladder is active.
func TestHealthzReportsDegradation(t *testing.T) {
	srv := New(Config{SLOTarget: 10 * time.Millisecond})
	srv.level.Store(1)
	srv.latEWMA.Observe(float64(25 * time.Millisecond))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded healthz status %d — degraded is alive, not down", resp.StatusCode)
	}
	var body map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body["status"] != "degraded" || !strings.Contains(body["reason"], "level 1") {
		t.Fatalf("healthz body %v", body)
	}
}

// TestConcurrentAdmission hammers a gated server; under -race this checks
// the gate's slot accounting. Every response is either a success or a
// clean 429, and the gauge returns to zero.
func TestConcurrentAdmission(t *testing.T) {
	srv := New(Config{MaxInflight: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	req := CompileRequest{Loop: vliwq.FormatLoop(corpus.KernelByName("daxpy")), SkipVerify: true}

	var wg sync.WaitGroup
	var mu sync.Mutex
	codes := map[int]int{}
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				resp, _ := postJSON(t, ts.Client(), ts.URL+"/compile", req)
				mu.Lock()
				codes[resp.StatusCode]++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	for code := range codes {
		if code != http.StatusOK && code != http.StatusTooManyRequests {
			t.Fatalf("unexpected status %d under load (%v)", code, codes)
		}
	}
	if codes[http.StatusOK] == 0 {
		t.Fatalf("no successes under load: %v", codes)
	}
	if g := srv.Stats().Admission.Inflight; g != 0 {
		t.Fatalf("inflight gauge %d after quiescence", g)
	}
}
