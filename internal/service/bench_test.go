package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync/atomic"
	"testing"

	"vliwq"
)

// BenchmarkServiceThroughput measures aggregate end-to-end throughput of
// the HTTP service — JSON decode, loop parse, full compile pipeline, JSON
// encode — while sweeping GOMAXPROCS. The cache is disabled so every
// request pays for a real compilation: the point is that on a multi-core
// host the service scales with cores (GOMAXPROCS=4 beats GOMAXPROCS=1 in
// requests/sec, i.e. lower wall ns/op; on fewer cores the extra procs can
// only tie). Requests cycle over the 64-loop bench corpus, unrolled to make
// the compile dominate the HTTP overhead, mirroring cmd/vliwload.
func BenchmarkServiceThroughput(b *testing.B) {
	loops := testCorpus(b, 64)
	bodies := make([][]byte, len(loops))
	for i, l := range loops {
		buf, err := json.Marshal(CompileRequest{
			Loop:       vliwq.FormatLoop(l),
			Machine:    "clustered:4",
			Unroll:     true,
			SkipVerify: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		bodies[i] = buf
	}

	for _, procs := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("procs=%d", procs), func(b *testing.B) {
			defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))
			srv := New(Config{CacheEntries: -1})
			ts := httptest.NewServer(srv.Handler())
			defer ts.Close()
			// The default transport keeps only 2 idle conns per host;
			// RunParallel's goroutines would churn through fresh TCP
			// connections and measure the handshakes instead of the service.
			client := ts.Client()
			if tr, ok := client.Transport.(*http.Transport); ok {
				tr = tr.Clone()
				tr.MaxIdleConns = 64
				tr.MaxIdleConnsPerHost = 64
				client = &http.Client{Transport: tr}
			}
			var next atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					body := bodies[int(next.Add(1))%len(bodies)]
					resp, err := client.Post(ts.URL+"/compile", "application/json", bytes.NewReader(body))
					if err != nil {
						b.Error(err)
						return
					}
					if resp.StatusCode != http.StatusOK {
						b.Errorf("status %d", resp.StatusCode)
					}
					// Drain before Close or the keep-alive connection is
					// discarded and the loop measures TCP churn.
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			})
			b.StopTimer()
			if st := srv.Stats(); st.Sched.Compiles < int64(b.N) {
				b.Fatalf("served %d requests but compiled only %d — cache not disabled?", b.N, st.Sched.Compiles)
			}
		})
	}
}

// BenchmarkCompileBatch measures the facade's in-process batch API on the
// same corpus, the ceiling the HTTP layer is compared against.
func BenchmarkCompileBatch(b *testing.B) {
	loops := testCorpus(b, 64)
	items := make([]vliwq.BatchItem, len(loops))
	opts := vliwq.Options{Machine: vliwq.Clustered(4), SkipVerify: true}
	for i, l := range loops {
		items[i] = vliwq.BatchItem{Loop: l, Opts: opts}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := vliwq.CompileBatch(context.Background(), items, 0)
		if len(out) != len(items) {
			b.Fatal("short batch")
		}
	}
}
