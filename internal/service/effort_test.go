package service

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"vliwq"
	"vliwq/internal/corpus"
)

// TestEffortInCanonicalKey: effort is part of the request's behaviour, so
// it must be part of the cache key — and therefore of the gateway's
// routing hash, which is what keeps cache affinity intact per effort
// level. Behaviourally identical requests must collide: an omitted effort
// IS "fast", so the two share one key (one cache entry, one shard)
// while distinct levels key apart.
func TestEffortInCanonicalKey(t *testing.T) {
	base := CompileRequest{Loop: "loop x\ntrip 4\nop a load", Machine: "clustered:4"}
	fast := base
	fast.Effort = "fast"
	exhaustive := base
	exhaustive.Effort = "exhaustive"
	if CanonicalKey(&base) != CanonicalKey(&fast) {
		t.Fatal(`omitted effort and "fast" are the same behaviour but keyed apart`)
	}
	if CanonicalKey(&base) == CanonicalKey(&exhaustive) {
		t.Fatal("distinct effort levels collapsed to one key")
	}
	dup := base
	if CanonicalKey(&dup) != CanonicalKey(&base) {
		t.Fatal("identical requests produced distinct keys")
	}
}

// TestEffortCompile drives an exhaustive request end to end: the response
// must echo the normalized effort, name the winning strategy, and /stats
// must expose the per-strategy win counters the fleet aggregates.
func TestEffortCompile(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := ts.Client()

	loops := corpus.Generate(corpus.StressedParams())[:8]
	for _, l := range loops {
		req := CompileRequest{
			Loop:       vliwq.FormatLoop(l),
			Machine:    "clustered:4",
			Effort:     "exhaustive",
			SkipVerify: true,
		}
		resp, body := postJSON(t, client, ts.URL+"/compile", req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d: %s", l.Name, resp.StatusCode, body)
		}
		var cr CompileResponse
		if err := json.Unmarshal(body, &cr); err != nil {
			t.Fatal(err)
		}
		if cr.Effort != "exhaustive" {
			t.Fatalf("%s: effort %q", l.Name, cr.Effort)
		}
		if cr.Strategy == "" {
			t.Fatalf("%s: response carries no winning strategy", l.Name)
		}
		if cr.II < cr.MII {
			t.Fatalf("%s: II %d below MII %d", l.Name, cr.II, cr.MII)
		}
	}

	st := srv.Stats()
	if st.Sched.Compiles != int64(len(loops)) {
		t.Fatalf("compiles = %d, want %d", st.Sched.Compiles, len(loops))
	}
	var wins int64
	for _, n := range st.Sched.StrategyWins {
		wins += n
	}
	if wins != int64(len(loops)) {
		t.Fatalf("strategy wins %v sum to %d, want %d", st.Sched.StrategyWins, wins, len(loops))
	}
}

// TestEffortDefaultIsFast: an omitted effort must behave exactly like
// "fast" — same pipeline, baseline strategy in the response — so existing
// clients see no behaviour change.
func TestEffortDefaultIsFast(t *testing.T) {
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()

	req := CompileRequest{Loop: vliwq.FormatLoop(corpus.KernelByName("daxpy")), Machine: "clustered:4"}
	resp, body := postJSON(t, ts.Client(), ts.URL+"/compile", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var cr CompileResponse
	if err := json.Unmarshal(body, &cr); err != nil {
		t.Fatal(err)
	}
	if cr.Effort != "fast" || cr.Strategy != "baseline" {
		t.Fatalf("default compile reported effort=%q strategy=%q", cr.Effort, cr.Strategy)
	}
}
