package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"vliwq"
	"vliwq/internal/corpus"
)

// TestEffortInCanonicalKey: effort is part of the request's behaviour, so
// it must be part of the cache key — and therefore of the gateway's
// routing hash, which is what keeps cache affinity intact per effort
// level. Behaviourally identical requests must collide: an omitted effort
// IS "fast", so the two share one key (one cache entry, one shard)
// while distinct levels key apart.
func TestEffortInCanonicalKey(t *testing.T) {
	base := CompileRequest{Loop: "loop x\ntrip 4\nop a load", Machine: "clustered:4"}
	fast := base
	fast.Effort = "fast"
	exhaustive := base
	exhaustive.Effort = "exhaustive"
	if base.Canonical() != fast.Canonical() {
		t.Fatal(`omitted effort and "fast" are the same behaviour but keyed apart`)
	}
	if base.Canonical() == exhaustive.Canonical() {
		t.Fatal("distinct effort levels collapsed to one key")
	}
	dup := base
	if dup.Canonical() != base.Canonical() {
		t.Fatal("identical requests produced distinct keys")
	}
}

// TestDefaultSpellingsShareOneCacheEntry is the key-fragmentation
// regression test: {"loop": L} and {"loop": L, "machine": "single:6",
// "copy_shape": "tree"} are the same behaviour, and under the historical
// raw-field CanonicalKey they landed in two cache entries (and on two
// gateway shards). Under Request.Canonical they must compile once and hit
// once.
func TestDefaultSpellingsShareOneCacheEntry(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	loop := vliwq.FormatLoop(corpus.KernelByName("daxpy"))
	bare := CompileRequest{Loop: loop}
	spelled := CompileRequest{Loop: loop, Machine: "single:6", CopyShape: "tree", Effort: "fast"}
	if bare.Canonical() != spelled.Canonical() {
		t.Fatalf("default spellings key apart:\n%q\nvs\n%q", bare.Canonical(), spelled.Canonical())
	}

	_, a := postJSON(t, ts.Client(), ts.URL+"/compile", bare)
	_, b := postJSON(t, ts.Client(), ts.URL+"/compile", spelled)
	if !bytes.Equal(a, b) {
		t.Fatalf("spellings of one request answered differently:\n%s\nvs\n%s", a, b)
	}
	st := srv.Stats()
	if st.Sched.Compiles != 1 {
		t.Fatalf("pipeline ran %d times for one canonical request", st.Sched.Compiles)
	}
	if st.Cache.Misses != 1 || st.Cache.Hits != 1 {
		t.Fatalf("cache saw misses=%d hits=%d, want exactly 1/1", st.Cache.Misses, st.Cache.Hits)
	}
}

// TestEffortCompile drives an exhaustive request end to end: the response
// must echo the normalized effort, name the winning strategy, and /stats
// must expose the per-strategy win counters the fleet aggregates.
func TestEffortCompile(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := ts.Client()

	loops := corpus.Generate(corpus.StressedParams())[:8]
	for _, l := range loops {
		req := CompileRequest{
			Loop:       vliwq.FormatLoop(l),
			Machine:    "clustered:4",
			Effort:     "exhaustive",
			SkipVerify: true,
		}
		resp, body := postJSON(t, client, ts.URL+"/compile", req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d: %s", l.Name, resp.StatusCode, body)
		}
		var cr CompileResponse
		if err := json.Unmarshal(body, &cr); err != nil {
			t.Fatal(err)
		}
		if cr.Effort != "exhaustive" {
			t.Fatalf("%s: effort %q", l.Name, cr.Effort)
		}
		if cr.Strategy == "" {
			t.Fatalf("%s: response carries no winning strategy", l.Name)
		}
		if cr.II < cr.MII {
			t.Fatalf("%s: II %d below MII %d", l.Name, cr.II, cr.MII)
		}
	}

	st := srv.Stats()
	if st.Sched.Compiles != int64(len(loops)) {
		t.Fatalf("compiles = %d, want %d", st.Sched.Compiles, len(loops))
	}
	var wins int64
	for _, n := range st.Sched.StrategyWins {
		wins += n
	}
	if wins != int64(len(loops)) {
		t.Fatalf("strategy wins %v sum to %d, want %d", st.Sched.StrategyWins, wins, len(loops))
	}
}

// TestOptimalCompile drives the certified tier end to end: every optimal
// response must carry a self-consistent bound object, and /stats must
// split the outcomes into optimal.proved / optimal.incumbent with the
// pruned-node tally the fleet aggregates.
func TestOptimalCompile(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := ts.Client()

	p := corpus.StressedParams()
	p.N = 8
	loops := corpus.Generate(p)
	for _, l := range loops {
		req := CompileRequest{
			Loop:       vliwq.FormatLoop(l),
			Machine:    "clustered:4",
			Effort:     "optimal",
			SkipVerify: true,
		}
		resp, body := postJSON(t, client, ts.URL+"/compile", req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d: %s", l.Name, resp.StatusCode, body)
		}
		var cr CompileResponse
		if err := json.Unmarshal(body, &cr); err != nil {
			t.Fatal(err)
		}
		if cr.Effort != "optimal" {
			t.Fatalf("%s: effort %q", l.Name, cr.Effort)
		}
		if cr.Bound == nil {
			t.Fatalf("%s: optimal response carries no bound", l.Name)
		}
		if cr.Bound.Lower < 1 || cr.Bound.Lower > cr.II {
			t.Fatalf("%s: bound.lower %d outside [1, II=%d]", l.Name, cr.Bound.Lower, cr.II)
		}
		if cr.Bound.Optimal && cr.II != cr.Bound.Lower {
			t.Fatalf("%s: proved optimal but II %d != lower %d", l.Name, cr.II, cr.Bound.Lower)
		}
		if cr.Bound.DeadlineCut {
			t.Fatalf("%s: deadline cut without a deadline", l.Name)
		}
	}
	st := srv.Stats()
	if st.Optimal.Proved+st.Optimal.Incumbent != int64(len(loops)) {
		t.Fatalf("optimal stats proved=%d incumbent=%d, want sum %d",
			st.Optimal.Proved, st.Optimal.Incumbent, len(loops))
	}
	if st.Optimal.Proved == 0 {
		t.Fatal("no loop proved optimal on the stressed slice")
	}
}

// TestOptimalDeadlineCutServedNotCached is the anytime contract at the
// service layer: an expired deadline on an optimal request cuts the proof,
// never the compile — the response is a success (no 504) carrying the
// unproved, deadline-cut certificate — and because that certificate depends
// on the caller's wall clock, the outcome is served but forgotten, so the
// next requester re-proves at full depth and caches normally.
func TestOptimalDeadlineCutServedNotCached(t *testing.T) {
	srv := New(Config{})

	// Find a loop whose exhaustive schedule leaves an II gap (clustered:6
	// with inter-cluster latency): the population where a cut proof is
	// observably unproved.
	p := corpus.StressedParams()
	p.N = 48
	var req CompileRequest
	found := false
	for _, l := range corpus.Generate(p) {
		r := CompileRequest{
			Loop: vliwq.FormatLoop(l), Machine: "clustered:6",
			CommLatency: 2, Effort: "exhaustive", SkipVerify: true,
		}
		resp, err := srv.compileOne(context.Background(), &r)
		if err != nil {
			continue
		}
		if resp.II > resp.MII {
			req = r
			req.Effort = "optimal"
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no exhaustive-gapped loop in the stressed slice")
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	resp, err := srv.compileOne(ctx, &req)
	if err != nil {
		t.Fatalf("expired deadline failed the compile instead of cutting the proof: %v", err)
	}
	if resp.Bound == nil || resp.Bound.Optimal || !resp.Bound.DeadlineCut {
		t.Fatalf("cut response bound = %+v, want unproved deadline-cut", resp.Bound)
	}

	n := req
	if err := n.Normalize(); err != nil {
		t.Fatal(err)
	}
	if _, ok := srv.cache.Get(n.Canonical()); ok {
		t.Fatal("deadline-cut outcome stayed in the exact cache")
	}

	// Undeadlined retry: proves (or budget-cuts) deterministically and
	// caches.
	resp2, err := srv.compileOne(context.Background(), &req)
	if err != nil {
		t.Fatal(err)
	}
	if resp2.Bound == nil || resp2.Bound.DeadlineCut {
		t.Fatalf("retry bound = %+v, want a deterministic certificate", resp2.Bound)
	}
	if _, ok := srv.cache.Get(n.Canonical()); !ok {
		t.Fatal("deterministic optimal outcome did not cache")
	}
}

// TestEffortDefaultIsFast: an omitted effort must behave exactly like
// "fast" — same pipeline, baseline strategy in the response — so existing
// clients see no behaviour change.
func TestEffortDefaultIsFast(t *testing.T) {
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()

	req := CompileRequest{Loop: vliwq.FormatLoop(corpus.KernelByName("daxpy")), Machine: "clustered:4"}
	resp, body := postJSON(t, ts.Client(), ts.URL+"/compile", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var cr CompileResponse
	if err := json.Unmarshal(body, &cr); err != nil {
		t.Fatal(err)
	}
	if cr.Effort != "fast" || cr.Strategy != "baseline" {
		t.Fatalf("default compile reported effort=%q strategy=%q", cr.Effort, cr.Strategy)
	}
}
