package service

import (
	"bytes"
	"errors"
	"net/http/httptest"
	"testing"

	"vliwq"
	"vliwq/internal/cache"
	"vliwq/internal/corpus"
)

// TestServerSnapshotWarmStart compiles through one server, snapshots its
// cache, loads the snapshot into a fresh server, and checks the fresh
// server answers the same requests byte-identically as pure cache hits —
// zero pipeline executions.
func TestServerSnapshotWarmStart(t *testing.T) {
	const n = 8
	loops := testCorpus(t, n)
	reqs := make([]CompileRequest, n)
	for i, l := range loops {
		reqs[i] = CompileRequest{Loop: vliwq.FormatLoop(l), Machine: "clustered:4", Unroll: true}
	}

	warm := New(Config{})
	ts := httptest.NewServer(warm.Handler())
	cold := make([][]byte, n)
	for i := range reqs {
		resp, body := postJSON(t, ts.Client(), ts.URL+"/compile", reqs[i])
		resp.Body.Close()
		cold[i] = body
	}
	ts.Close()

	var snap bytes.Buffer
	wrote, err := warm.SaveCache(&snap)
	if err != nil {
		t.Fatalf("SaveCache: %v", err)
	}
	if wrote != n {
		t.Fatalf("SaveCache wrote %d entries, want %d", wrote, n)
	}

	restarted := New(Config{})
	loaded, err := restarted.LoadCache(bytes.NewReader(snap.Bytes()))
	if err != nil {
		t.Fatalf("LoadCache: %v", err)
	}
	if loaded != n {
		t.Fatalf("LoadCache inserted %d entries, want %d", loaded, n)
	}

	ts2 := httptest.NewServer(restarted.Handler())
	defer ts2.Close()
	for i := range reqs {
		resp, body := postJSON(t, ts2.Client(), ts2.URL+"/compile", reqs[i])
		resp.Body.Close()
		if !bytes.Equal(body, cold[i]) {
			t.Fatalf("loop %d: warm-start response differs from the original:\n%s\nvs\n%s", i, body, cold[i])
		}
	}
	st := restarted.Stats()
	if st.Sched.Compiles != 0 {
		t.Fatalf("warm-started server ran %d compiles, want 0 (all hits)", st.Sched.Compiles)
	}
	if st.Cache.Hits != int64(n) {
		t.Fatalf("warm-started server counted %d hits, want %d", st.Cache.Hits, n)
	}
}

// TestServerSnapshotCorrupt: a truncated snapshot is rejected with the
// cache's corrupt-snapshot error and leaves the server cold but serving.
func TestServerSnapshotCorrupt(t *testing.T) {
	warm := New(Config{})
	ts := httptest.NewServer(warm.Handler())
	req := CompileRequest{Loop: vliwq.FormatLoop(corpus.KernelByName("daxpy")), Machine: "clustered:4"}
	resp, _ := postJSON(t, ts.Client(), ts.URL+"/compile", req)
	resp.Body.Close()
	ts.Close()

	var snap bytes.Buffer
	if _, err := warm.SaveCache(&snap); err != nil {
		t.Fatal(err)
	}
	restarted := New(Config{})
	_, err := restarted.LoadCache(bytes.NewReader(snap.Bytes()[:snap.Len()/2]))
	if !errors.Is(err, cache.ErrCorruptSnapshot) {
		t.Fatalf("LoadCache on a truncated file: %v, want ErrCorruptSnapshot", err)
	}
	if restarted.Stats().Cache.Entries != 0 {
		t.Fatalf("corrupt load left %d entries", restarted.Stats().Cache.Entries)
	}
}

// TestSnapshotCacheDisabled: snapshot hooks on an uncached server say so.
func TestSnapshotCacheDisabled(t *testing.T) {
	s := New(Config{CacheEntries: -1})
	if _, err := s.SaveCache(&bytes.Buffer{}); !errors.Is(err, ErrCacheDisabled) {
		t.Fatalf("SaveCache: %v, want ErrCacheDisabled", err)
	}
	if _, err := s.LoadCache(&bytes.Buffer{}); !errors.Is(err, ErrCacheDisabled) {
		t.Fatalf("LoadCache: %v, want ErrCacheDisabled", err)
	}
}
