// Package service implements the vliwd compilation service: a long-running
// HTTP/JSON front end over the vliwq pipeline, backed by the shared
// internal/cache compile cache.
//
// Endpoints:
//
//	POST /compile  one loop (text format in the JSON body) -> schedule + metrics
//	POST /batch    a request set, compiled on a worker pool, results in input order
//	GET  /healthz  liveness probe
//	GET  /stats    request, scheduler and cache counters
//
// Compilation is deterministic, so responses are cacheable: the cache key
// is vliwq.Request.Canonical() — the one canonical request encoding the
// library, this service and the gateway share — and each distinct request
// compiles exactly once per cache lifetime; concurrent identical requests
// share one compute via the cache's per-entry sync.Once.
//
// Beneath the exact cache sits a structural cache keyed by
// vliwq.Request.StructuralKey() — the knobs plus the loop's dependence-graph
// fingerprint — so a request whose loop is a renamed spelling of one already
// compiled reuses that compile via a name remap instead of running the
// pipeline (DESIGN.md §12). Both levels coalesce concurrent misses into a
// single compute; /stats surfaces the structural layer's hit, coalesced and
// renumbered counters.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"vliwq"
	"vliwq/internal/cache"
	"vliwq/internal/ir"
	"vliwq/internal/metrics"
	"vliwq/internal/pool"
	"vliwq/internal/sched"
)

// DeadlineHeader carries a request's remaining time budget end to end: a Go
// duration string ("750ms", "2s") set by the client, tightened by the
// gateway at every hop to the time actually left, and applied here as the
// request context's deadline — so a client deadline cancels backend work at
// the next pipeline stage boundary instead of letting an abandoned compile
// run to completion. An absent header means the caller accepts the server's
// own bounds.
const DeadlineHeader = "X-Vliw-Deadline"

// minDeadline floors the budget DeadlineHeader may impose: a microsecond
// budget would cancel every request before the handler even decodes it,
// turning a misconfigured client into a self-inflicted outage.
const minDeadline = time.Millisecond

// ParseDeadline extracts the DeadlineHeader budget: the duration, whether
// the header was present, and a parse error a handler should answer 400.
func ParseDeadline(h http.Header) (time.Duration, bool, error) {
	v := h.Get(DeadlineHeader)
	if v == "" {
		return 0, false, nil
	}
	d, err := time.ParseDuration(v)
	if err != nil {
		return 0, false, fmt.Errorf("bad %s header %q: %w", DeadlineHeader, v, err)
	}
	if d <= 0 {
		return 0, false, fmt.Errorf("bad %s header %q: budget must be positive", DeadlineHeader, v)
	}
	return d, true, nil
}

// Config tunes a Server. The zero value serves correctly — unbounded
// cache, GOMAXPROCS batch workers, 4 MiB body cap — but a long-running
// deployment should bound the cache: entries are keyed by client request
// bodies, so unbounded mode grows with every distinct request (cmd/vliwd
// defaults to a 65536-entry bound for exactly that reason).
type Config struct {
	// CacheEntries bounds the compile cache: 0 means unbounded, a negative
	// value disables caching entirely (every request compiles).
	CacheEntries int
	// Workers bounds per-batch compile parallelism; 0 uses GOMAXPROCS.
	Workers int
	// MaxBatch caps the request count of one /batch call; 0 means
	// DefaultMaxBatch.
	MaxBatch int
	// MaxBodyBytes caps the request body; 0 means 4 MiB.
	MaxBodyBytes int64
	// MaxInflight bounds concurrently admitted /compile and /batch calls;
	// calls beyond the bound are shed immediately with 429 and a
	// Retry-After header instead of queueing behind a saturated worker
	// pool. 0 disables the gate. A /batch call holds one slot regardless
	// of its size — per-batch compile parallelism is already bounded by
	// Workers, so the gate controls call concurrency, not compile
	// concurrency.
	MaxInflight int
	// SLOTarget is the compile-latency budget driving the degradation
	// ladder: when the EWMA of recent compile latencies exceeds it, the
	// server downgrades requested effort one step at a time
	// (optimal → exhaustive → balanced → fast), and recovers a step once
	// the EWMA falls below half the target. 0 disables degradation.
	SLOTarget time.Duration
	// DisableStructural turns off the structural (isomorphism-class) cache
	// layer: every exact-cache miss runs the pipeline, as before PR 7. The
	// layer is also off whenever caching as a whole is disabled
	// (CacheEntries < 0) — with no exact cache there is no miss path to
	// intercept.
	DisableStructural bool
}

// CompileRequest is the JSON body of POST /compile and each element of a
// /batch request set. It IS the library's canonical vliwq.Request — one
// request encoding across library, cache, service and gateway — so the
// wire format, the cache key (Request.Canonical) and the gateway's routing
// key can never drift apart. Field semantics, defaults and validation live
// on vliwq.Request; the service surfaces Normalize errors as HTTP 400 with
// the sorted valid-value lists the library errors carry.
type CompileRequest = vliwq.Request

// CompileResponse carries the schedule and the headline metrics of one
// compiled loop — the same numbers vliwq.Result reports, plus the rendered
// report and kernel table.
type CompileResponse struct {
	Loop       string  `json:"loop"`
	Machine    string  `json:"machine"`
	Unrolled   int     `json:"unrolled"`
	II         int     `json:"ii"`
	MII        int     `json:"mii"`
	Stages     int     `json:"stages"`
	IPCStatic  float64 `json:"ipc_static"`
	IPCDynamic float64 `json:"ipc_dynamic"`
	Queues     int     `json:"queues"`
	RingQueues int     `json:"ring_queues"`
	Effort     string  `json:"effort"`
	Strategy   string  `json:"strategy"`
	Report     string  `json:"report"`
	Kernel     string  `json:"kernel"`

	// Bound is the optimality certificate, present only on effort:optimal
	// responses (other tiers omit the field entirely, keeping their JSON
	// byte-identical to pre-optimal responses).
	Bound *BoundInfo `json:"bound,omitempty"`

	// Degraded marks a response compiled at less effort than the request
	// asked for because the SLO ladder was active; Effort reports the
	// effort actually spent and RequestedEffort what the client asked for.
	// Degraded results are cached under the canonical key of the effort
	// that ran, never under the requested effort's key — a degraded fast
	// schedule must not masquerade as an exhaustive one once pressure
	// subsides.
	Degraded        bool   `json:"degraded,omitempty"`
	RequestedEffort string `json:"requested_effort,omitempty"`
}

// BoundInfo is the wire form of vliwq.Bound: the proved lower bound on II
// and whether the achieved II was proved equal to it. deadline_cut marks a
// certificate cut by the request's deadline rather than the deterministic
// node budget; such responses are served but never cached (see compileOne).
type BoundInfo struct {
	Lower       int  `json:"lower"`
	Optimal     bool `json:"optimal"`
	DeadlineCut bool `json:"deadline_cut,omitempty"`
}

// BatchRequest is the JSON body of POST /batch.
type BatchRequest struct {
	Requests []CompileRequest `json:"requests"`
}

// BatchEntry is the outcome for the request at the same index: exactly one
// of Response and Error is set.
type BatchEntry struct {
	Response *CompileResponse `json:"response,omitempty"`
	Error    string           `json:"error,omitempty"`
}

// BatchResponse is the JSON body answering POST /batch; Results[i] always
// corresponds to Requests[i].
type BatchResponse struct {
	Results []BatchEntry `json:"results"`
}

// SchedStats aggregates scheduler outcomes across every compile the server
// has executed (cache hits replay a previous outcome and are not recounted).
type SchedStats struct {
	Compiles     int64 `json:"compiles"`      // pipeline executions
	Errors       int64 `json:"errors"`        // pipeline executions that failed
	OpsScheduled int64 `json:"ops_scheduled"` // total ops placed (post-unroll/copies)
	IISum        int64 `json:"ii_sum"`        // sum of achieved IIs

	// StrategyWins counts, per strategy name, how many compiles that
	// strategy's schedule won — the fleet-wide observability hook for the
	// portfolio scheduler (the gateway sums these maps across backends).
	// Only strategies with at least one win appear.
	StrategyWins map[string]int64 `json:"strategy_wins,omitempty"`

	// StageNanos sums, per pipeline stage name (vliwq.Stage), the
	// wall-clock nanoseconds compiles spent in that stage — the staged
	// engine's Result.Stages rolled up across every pipeline execution.
	// Cache hits replay outcomes without re-running stages and are not
	// recounted. The gateway sums these maps fleet-wide.
	StageNanos map[string]int64 `json:"stage_nanos,omitempty"`

	// Machines counts compiles per normalized machine spec
	// (machine.Config.Spec notation, e.g. "clustered:4") so operators see
	// which targets a backend actually compiles for, in the same spec
	// notation requests use. The gateway sums these maps fleet-wide.
	Machines map[string]int64 `json:"machines,omitempty"`
}

// AdmissionStats reports the inflight gate: how many calls are currently
// admitted, the bound, and how many were shed with 429.
type AdmissionStats struct {
	MaxInflight int   `json:"max_inflight"` // 0 = gate disabled
	Inflight    int   `json:"inflight"`     // calls currently admitted
	Shed        int64 `json:"shed"`         // calls answered 429
}

// SLOStats reports the degradation ladder: the latency budget, the current
// compile-latency EWMA, the active degradation level (0 = full effort,
// 3 = everything runs fast), and how many requests were answered degraded.
type SLOStats struct {
	TargetMillis float64 `json:"target_ms"` // 0 = ladder disabled
	EWMAMillis   float64 `json:"ewma_ms"`
	Level        int     `json:"level"`
	Degraded     int64   `json:"degraded"`
}

// StructuralStats reports the structural (isomorphism-class) cache layer:
// how many exact-cache misses were served by remapping a structurally
// cached compile instead of running the pipeline.
type StructuralStats struct {
	Enabled bool `json:"enabled"`
	// Hits counts exact-misses served by remap: the loop was a renamed
	// spelling of an already-compiled class, skeleton-verified.
	Hits int64 `json:"hits"`
	// Coalesced is the subset of Hits that joined a compile still in
	// flight — concurrent isomorphic requests collapsed onto one pipeline
	// run. (The exact cache separately coalesces byte-identical requests;
	// its counter lives under cache.coalesced.)
	Coalesced int64 `json:"coalesced"`
	// Reordered is the subset of Hits whose spelling was
	// statement-permuted relative to the cached class: the skeleton gate
	// rejected it as-is, but ir.AlignLike renumbered it into the class
	// leader's canonical statement order, after which the ordinary
	// rename-only remap applied. Reordered responses are deterministic
	// (every identically-warmed server serves the same bytes) but carry
	// the class leader's schedule rather than a fresh compile of the
	// permuted spelling, whose ID-based tie-breaking could differ.
	Reordered int64 `json:"reordered"`
	// Renumbered counts fingerprint matches rejected by the skeleton gate
	// that AlignLike could not map onto the cached class (no alignment
	// exists, or the spelling carries unroll lineage), so they compiled
	// fresh.
	Renumbered int64 `json:"renumbered"`
	// Entries is the structural cache's current size (one per compiled
	// isomorphism class).
	Entries int64 `json:"entries"`
}

// OptimalStats aggregates the certified tier's outcomes across every
// compile that carried a certificate: how many were proved optimal, how
// many came back as unproved incumbents (budget or deadline cut), and the
// total branch-and-bound nodes pruned. The gateway sums these fleet-wide.
type OptimalStats struct {
	Proved      int64 `json:"proved"`
	Incumbent   int64 `json:"incumbent"`
	PrunedNodes int64 `json:"pruned_nodes"`
}

// StatsResponse is the JSON body of GET /stats.
type StatsResponse struct {
	UptimeSeconds   float64 `json:"uptime_seconds"`
	GoMaxProcs      int     `json:"gomaxprocs"`
	CompileRequests int64   `json:"compile_requests"`
	BatchRequests   int64   `json:"batch_requests"`
	BatchItems      int64   `json:"batch_items"`
	RequestErrors   int64   `json:"request_errors"`
	// DeadlineExceeded counts requests whose propagated deadline cancelled
	// the compile (answered 504).
	DeadlineExceeded int64           `json:"deadline_exceeded"`
	Admission        AdmissionStats  `json:"admission"`
	SLO              SLOStats        `json:"slo"`
	CacheEnabled     bool            `json:"cache_enabled"`
	Cache            cache.Stats     `json:"cache"`
	Structural       StructuralStats `json:"structural"`
	Optimal          OptimalStats    `json:"optimal"`
	Sched            SchedStats      `json:"sched"`
}

// outcome is the cached unit: one request's response or its error rendered
// as a string (compilation is deterministic, so errors cache as well as
// successes). ctxErr marks context cancellation — the one error class that
// is NOT deterministic (it belongs to the requester's deadline, not the
// request), so compileOne forgets such entries instead of serving them to
// future callers. deadlineCut is the success-path analogue: an optimal-tier
// response whose certificate was cut by the caller's deadline is served but
// forgotten, because the proof depth it records is wall-clock dependent
// (budget cuts, by contrast, are deterministic and cache normally).
type outcome struct {
	resp        *CompileResponse
	err         string
	ctxErr      bool
	deadlineCut bool
}

// structEntry is the structural cache's unit: one isomorphism class's
// compiled Result plus the skeleton of the spelling that compiled it — the
// gate a later spelling must pass (skeleton equality = name-only
// isomorphism) before the Result may be remapped onto its names. Errors
// cache per class exactly as they do per exact key, with the same
// context-error carve-out.
type structEntry struct {
	res    *vliwq.Result
	skel   string
	err    string
	ctxErr bool
}

// Server is the vliwd HTTP service. Create one with New; it is safe for
// concurrent use by any number of requests.
type Server struct {
	cfg      Config
	compiler *vliwq.Compiler               // uncached session; the response cache below dedups
	cache    *cache.Cache[string, outcome] // nil when caching is disabled
	// structs is the structural (isomorphism-class) cache beneath the exact
	// cache: StructuralKey -> compiled Result. In-memory only — it holds
	// live Result graphs, which the snapshot codec deliberately does not
	// serialize (a warm restart repopulates it from recompiles; the exact
	// cache is what persists). Nil when disabled.
	structs *cache.Cache[string, structEntry]
	mux     *http.ServeMux
	start   time.Time

	compileRequests atomic.Int64
	batchRequests   atomic.Int64
	batchItems      atomic.Int64
	requestErrors   atomic.Int64

	// Admission gate: a slot per admitted call when MaxInflight > 0.
	inflight chan struct{}
	shed     atomic.Int64

	// Degradation ladder: latEWMA tracks compile latency, level is how many
	// effort steps the server currently shaves off requests (0..3).
	latEWMA  *metrics.EWMA
	level    atomic.Int32
	degraded atomic.Int64

	// timeouts counts compiles cancelled by a propagated deadline (504s).
	timeouts atomic.Int64

	// Structural-layer counters (see StructuralStats).
	structHits       atomic.Int64
	structCoalesced  atomic.Int64
	structReordered  atomic.Int64
	structRenumbered atomic.Int64

	// Certified-tier counters (see OptimalStats).
	optimalProved    atomic.Int64
	optimalIncumbent atomic.Int64
	optimalPruned    atomic.Int64

	compiles      atomic.Int64
	compileErrors atomic.Int64
	opsScheduled  atomic.Int64
	iiSum         atomic.Int64
	strategyWins  [sched.NumStrategies]atomic.Int64
	stageNanos    [vliwq.NumStages]atomic.Int64

	machinesMu sync.Mutex
	machines   map[string]int64 // compiles per normalized machine spec
}

// New builds a Server from cfg. The server runs an uncached
// vliwq.Compiler session — the service caches whole rendered responses
// (report and kernel strings included) under the same canonical key the
// compiler would use, so a second cache underneath would only duplicate
// every entry.
func New(cfg Config) *Server {
	s := &Server{
		cfg:      cfg,
		compiler: vliwq.NewCompiler(vliwq.CompilerConfig{CacheEntries: -1}),
		machines: make(map[string]int64),
		latEWMA:  metrics.NewEWMA(0.2),
		start:    time.Now(),
	}
	if cfg.MaxInflight > 0 {
		s.inflight = make(chan struct{}, cfg.MaxInflight)
	}
	if cfg.CacheEntries >= 0 {
		s.cache = cache.New[string, outcome](
			cache.Options{MaxEntries: cfg.CacheEntries}, cache.StringHash)
		if !cfg.DisableStructural {
			// One entry per compiled isomorphism class; the same bound as
			// the exact cache is generous (classes <= exact keys).
			s.structs = cache.New[string, structEntry](
				cache.Options{MaxEntries: cfg.CacheEntries}, cache.StringHash)
		}
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/compile", s.handleCompile)
	s.mux.HandleFunc("/batch", s.handleBatch)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/stats", s.handleStats)
	return s
}

// Handler returns the root handler for an http.Server.
func (s *Server) Handler() http.Handler { return s.mux }

func (s *Server) workers() int {
	if s.cfg.Workers > 0 {
		return s.cfg.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// DefaultMaxBatch is the /batch request-count cap when Config.MaxBatch is
// zero; the gateway mirrors it so a batch the gateway accepts is one every
// backend accepts after splitting.
const DefaultMaxBatch = 1024

func (s *Server) maxBatch() int {
	if s.cfg.MaxBatch > 0 {
		return s.cfg.MaxBatch
	}
	return DefaultMaxBatch
}

func (s *Server) maxBody() int64 {
	if s.cfg.MaxBodyBytes > 0 {
		return s.cfg.MaxBodyBytes
	}
	return 4 << 20
}

// runPipeline executes one compile for a normalized request and feeds
// every scheduler counter — including the per-stage wall-clock and
// per-machine-spec tallies the staged engine exposes; cached paths (exact
// and structural) replay outcomes without recounting. On error it returns
// the rendered error string plus the context-cancellation flag.
func (s *Server) runPipeline(ctx context.Context, req CompileRequest) (*vliwq.Result, string, bool) {
	s.compiles.Add(1)
	t0 := time.Now()
	res, err := s.compiler.Run(ctx, req)
	if err != nil {
		s.compileErrors.Add(1)
		return nil, err.Error(), errors.Is(err, context.Canceled) ||
			errors.Is(err, context.DeadlineExceeded)
	}
	s.observeLatency(time.Since(t0))
	s.opsScheduled.Add(int64(len(res.Sched.Loop.Ops)))
	s.iiSum.Add(int64(res.II))
	if res.Bound.Lower > 0 {
		if res.Bound.Optimal {
			s.optimalProved.Add(1)
		} else {
			s.optimalIncumbent.Add(1)
		}
		s.optimalPruned.Add(res.Sched.Stats.PrunedNodes)
	}
	s.strategyWins[res.Sched.Strategy].Add(1)
	for _, st := range res.Stages {
		s.stageNanos[st.Stage].Add(st.Duration.Nanoseconds())
	}
	s.machinesMu.Lock()
	s.machines[req.Machine]++
	s.machinesMu.Unlock()
	return res, "", false
}

// render materializes the response for one compiled Result. The remap step
// guarantees a structurally served Result renders byte-identically to a
// fresh compile of the same spelling, so render never needs to know which
// path produced its input.
func (s *Server) render(res *vliwq.Result, effort string) *CompileResponse {
	resp := &CompileResponse{
		Loop:       res.Input.Name,
		Machine:    res.Sched.Machine.Name,
		Unrolled:   res.Unrolled,
		II:         res.II,
		MII:        res.MII,
		Stages:     res.StageCount,
		IPCStatic:  res.IPCStatic,
		IPCDynamic: res.IPCDynamic,
		Queues:     res.Queues,
		RingQueues: res.RingQueues,
		Effort:     effort,
		Strategy:   res.Strategy,
		Report:     res.Report(),
		Kernel:     res.KernelSchedule(),
	}
	if res.Bound.Lower > 0 {
		resp.Bound = &BoundInfo{
			Lower:       res.Bound.Lower,
			Optimal:     res.Bound.Optimal,
			DeadlineCut: res.Bound.DeadlineCut,
		}
	}
	return resp
}

// compute runs the pipeline for one normalized request and renders the
// outcome — the structural-cache-free path (structural layer disabled,
// unparseable loops, renumbered spellings).
func (s *Server) compute(ctx context.Context, req CompileRequest) outcome {
	res, errStr, ctxErr := s.runPipeline(ctx, req)
	if errStr != "" {
		return outcome{err: errStr, ctxErr: ctxErr}
	}
	return outcome{resp: s.render(res, req.Effort), deadlineCut: res.Bound.DeadlineCut}
}

// compileClass runs the pipeline for the first spelling of an isomorphism
// class and records, alongside the Result, the skeleton of the loop that
// compiled — the remap precondition every later spelling is checked
// against.
func (s *Server) compileClass(ctx context.Context, req CompileRequest, loop *vliwq.Loop) structEntry {
	res, errStr, ctxErr := s.runPipeline(ctx, req)
	if errStr != "" {
		return structEntry{err: errStr, ctxErr: ctxErr}
	}
	return structEntry{res: res, skel: ir.Skeleton(loop)}
}

// computeRouted is the exact-cache miss path: before running the pipeline
// it consults the structural cache, so a loop that is a renamed spelling of
// an already-compiled class is served by remapping that class's Result onto
// the caller's names — verified byte-identical to a fresh compile by the
// skeleton gate. Concurrent misses on one class (including a renamed
// spelling racing the original) coalesce onto a single pipeline run via the
// cache's singleflight semantics; structural.coalesced counts the joiners.
//
// A fingerprint match whose skeleton differs is a statement-permuted
// spelling of the cached class. Those are canonically pre-ordered before
// reuse: ir.AlignLike renumbers the caller's spelling into the class
// leader's statement order (the first spelling to compile fixes the
// class's canonical order), re-checks the skeleton gate, and serves the
// rename-only remap — counted structural.reordered. Renamed-only
// spellings keep the strict fresh-compile byte-identity guarantee;
// reordered ones trade it for class-determinism: the served schedule is
// the leader's, valid for the caller's loop (same skeleton after
// alignment) and identical across identically-warmed servers, but a fresh
// compile of the permuted spelling could break ID-based ties differently.
//
// Fallbacks preserve pre-structural behaviour exactly: a disabled layer,
// an unparseable loop (the pipeline owns the error text), or a permuted
// spelling AlignLike cannot map (no alignment exists, or unroll lineage is
// present) all run the plain compute path; those renumbered sightings are
// counted so the missed reuse is observable.
func (s *Server) computeRouted(ctx context.Context, req CompileRequest) outcome {
	if s.structs == nil {
		return s.compute(ctx, req)
	}
	loop, err := vliwq.ParseLoop(req.Loop)
	if err != nil {
		return s.compute(ctx, req)
	}
	skey := req.StructuralKey()
	ent, info := s.structs.DoWithInfo(skey, func() structEntry {
		return s.compileClass(ctx, req, loop)
	})
	if ent.ctxErr {
		// Context errors belong to the first caller's deadline, not the
		// class; forget the entry so the next spelling recompiles.
		s.structs.Forget(skey)
		return outcome{err: ent.err, ctxErr: true}
	}
	if ent.err != "" {
		if info.Created {
			return outcome{err: ent.err}
		}
		// A cached pipeline error was rendered against the class leader's
		// spelling, and error text can embed operand names. Recompute under
		// the caller's own names so an error response is byte-identical to
		// a fresh compile, exactly like a success response.
		return s.compute(ctx, req)
	}
	cut := ent.res.Bound.DeadlineCut
	if cut {
		// A deadline-cut certificate records how far the caller's wall
		// clock let the proof run — not a property of the class. Forget
		// the entry so the next spelling proves from scratch (idempotent
		// when creator and joiners race here).
		s.structs.Forget(skey)
	}
	if info.Created {
		// This call ran the compile; its Result already carries the
		// caller's names.
		return outcome{resp: s.render(ent.res, req.Effort), deadlineCut: cut}
	}
	reordered := false
	if ir.Skeleton(loop) != ent.skel {
		aligned, ok := ir.AlignLike(loop, ent.res.Input)
		if !ok || ir.Skeleton(aligned) != ent.skel {
			s.structRenumbered.Add(1)
			return s.compute(ctx, req)
		}
		loop, reordered = aligned, true
	}
	remapped, rerr := vliwq.RemapResult(ent.res, loop)
	if rerr != nil {
		// Unreachable given the skeleton gate above; compile fresh rather
		// than fail the request on a cache-layer defect.
		return s.compute(ctx, req)
	}
	s.structHits.Add(1)
	if reordered {
		s.structReordered.Add(1)
	}
	if info.Joined {
		s.structCoalesced.Add(1)
	}
	return outcome{resp: s.render(remapped, req.Effort), deadlineCut: cut}
}

// maxDegradeLevel is the ladder's floor: three steps take optimal all the
// way to fast, and no request can degrade below fast. The certified tier
// sits at the top of the ladder — under pressure the first thing the server
// sheds is the optimality proof, which costs the most and changes the
// schedule the least.
const maxDegradeLevel = int32(3)

// observeLatency feeds one successful compile's wall clock into the EWMA
// and moves the degradation ladder: over the target, degrade one step;
// under half the target, recover one step. The half-target recovery bound
// is deliberate hysteresis — recovering the moment the EWMA dips under the
// target would re-admit the expensive efforts that pushed it over, and the
// ladder would oscillate every few requests.
func (s *Server) observeLatency(d time.Duration) {
	if s.cfg.SLOTarget <= 0 {
		s.latEWMA.Observe(float64(d.Nanoseconds()))
		return
	}
	avg := time.Duration(s.latEWMA.Observe(float64(d.Nanoseconds())))
	for {
		lvl := s.level.Load()
		switch {
		case avg > s.cfg.SLOTarget && lvl < maxDegradeLevel:
			if s.level.CompareAndSwap(lvl, lvl+1) {
				return
			}
		case avg <= s.cfg.SLOTarget/2 && lvl > 0:
			if s.level.CompareAndSwap(lvl, lvl-1) {
				return
			}
		default:
			return
		}
	}
}

// degrade lowers a normalized request's effort by the current ladder level,
// reporting what the client originally asked for and whether anything
// changed. It runs BEFORE Canonical() is taken, so a degraded compile
// caches under the key of the effort that actually ran — never under the
// requested effort's key (see CompileResponse.Degraded).
func (s *Server) degrade(r *CompileRequest) (requested string, did bool) {
	lvl := s.level.Load()
	if lvl == 0 {
		return "", false
	}
	eff, err := vliwq.ParseEffort(r.Effort)
	if err != nil {
		return "", false // Normalize already vetted it; be safe anyway
	}
	ne := int(eff) - int(lvl)
	if ne < 0 {
		ne = 0
	}
	if vliwq.Effort(ne) == eff {
		return "", false
	}
	requested = r.Effort
	r.Effort = vliwq.Effort(ne).String()
	s.degraded.Add(1)
	return requested, true
}

// clientError marks a request-shape problem (HTTP 400) as opposed to a
// loop the pipeline rejects (HTTP 422).
type clientError struct{ error }

// timeoutError marks a compile cancelled by the request's deadline
// (HTTP 504) as opposed to a loop the pipeline rejects (HTTP 422).
type timeoutError struct{ error }

// compileOne serves one request through the cache layers — exact first
// (keyed by Canonical(), holding rendered responses), then structural on an
// exact miss (keyed by StructuralKey(), holding compiled Results remapped
// onto each spelling's names; see computeRouted), then the pipeline. The
// request is normalized first, so every spelling of the same behaviour
// ("" vs "single:6") lands on one entry; Normalize errors are client
// errors (HTTP 400).
//
// Degradation happens between Normalize and Canonical: when the SLO ladder
// is active, the request's effort is lowered in place first, so the compile
// caches under the key of the effort that actually ran. The cached outcome
// itself is NOT marked degraded — a degraded-to-fast result IS a fast
// result, and a client genuinely asking for fast must not see degraded:true
// on a shared entry — the annotation goes on a per-request copy.
//
// Computes run under the caller's context so a propagated deadline cancels
// backend work at the next stage boundary. That makes context errors
// cacheable by accident; compileOne forgets such entries immediately
// (cache.Forget), so the next request for the key recompiles. Concurrent
// waiters on the same in-flight entry share the first caller's fate — a
// deliberate trade: shared-compute semantics cannot distinguish which
// waiter's deadline fired.
func (s *Server) compileOne(ctx context.Context, req *CompileRequest) (*CompileResponse, error) {
	r := *req
	if err := r.Normalize(); err != nil {
		return nil, clientError{err}
	}
	requested, didDegrade := s.degrade(&r)
	var oc outcome
	if s.cache != nil {
		key := r.Canonical()
		oc = s.cache.Do(key, func() outcome {
			return s.computeRouted(ctx, r)
		})
		if oc.ctxErr || oc.deadlineCut {
			// Context errors and deadline-cut certificates are both
			// artifacts of this caller's wall clock, not of the request.
			s.cache.Forget(key)
		}
	} else {
		oc = s.compute(ctx, r)
	}
	if oc.ctxErr {
		s.timeouts.Add(1)
		return nil, timeoutError{errors.New(oc.err)}
	}
	if oc.err != "" {
		return nil, errors.New(oc.err)
	}
	if didDegrade {
		resp := *oc.resp
		resp.Degraded = true
		resp.RequestedEffort = requested
		return &resp, nil
	}
	return oc.resp, nil
}

// compileBatch fans the request set over a fixed worker pool (pool.Run,
// the same primitive vliwq.CompileBatch uses — the service goes through
// compileOne instead of CompileBatch itself so batch items share the
// response cache). Results come back in input order regardless of worker
// interleaving; on cancellation, unstarted items report the context error.
func (s *Server) compileBatch(ctx context.Context, reqs []CompileRequest) []BatchEntry {
	out := make([]BatchEntry, len(reqs))
	pool.Run(ctx, len(reqs), s.workers(), func(i int) {
		resp, err := s.compileOne(ctx, &reqs[i])
		if err != nil {
			out[i] = BatchEntry{Error: err.Error()}
		} else {
			out[i] = BatchEntry{Response: resp}
		}
	}, func(i int) {
		out[i] = BatchEntry{Error: ctx.Err().Error()}
	})
	return out
}

// admit takes an inflight slot, shedding with 429 + Retry-After when the
// gate is full. Shed calls are NOT request errors (s.fail) — the request
// was well-formed, the server was busy — so they count under admission.shed
// only. Returns a release func (nil when the call was shed).
func (s *Server) admit(w http.ResponseWriter) (release func(), ok bool) {
	if s.inflight == nil {
		return func() {}, true
	}
	select {
	case s.inflight <- struct{}{}:
		return func() { <-s.inflight }, true
	default:
		s.shed.Add(1)
		w.Header().Set("Retry-After", "1")
		WriteJSON(w, http.StatusTooManyRequests,
			map[string]string{"error": "server at max inflight; retry shortly"})
		return nil, false
	}
}

// requestContext applies the propagated DeadlineHeader budget, if any, to
// the request context. A malformed header is answered 400 before any work
// runs; the budget is floored at minDeadline so a broken client cannot
// configure itself into a 100% self-cancel rate.
func (s *Server) requestContext(w http.ResponseWriter, r *http.Request) (context.Context, context.CancelFunc, bool) {
	d, ok, err := ParseDeadline(r.Header)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err.Error())
		return nil, nil, false
	}
	if !ok {
		return r.Context(), func() {}, true
	}
	if d < minDeadline {
		d = minDeadline
	}
	ctx, cancel := context.WithTimeout(r.Context(), d)
	return ctx, cancel, true
}

// compileStatus maps a compileOne error onto its HTTP status: 400 for
// request-shape problems, 504 for deadline-cancelled compiles, 422 for
// loops the pipeline rejects.
func compileStatus(err error) int {
	var ce clientError
	if errors.As(err, &ce) {
		return http.StatusBadRequest
	}
	var te timeoutError
	if errors.As(err, &te) {
		return http.StatusGatewayTimeout
	}
	return http.StatusUnprocessableEntity
}

func (s *Server) handleCompile(w http.ResponseWriter, r *http.Request) {
	s.compileRequests.Add(1)
	if r.Method != http.MethodPost {
		s.fail(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	release, ok := s.admit(w)
	if !ok {
		return
	}
	defer release()
	ctx, cancel, ok := s.requestContext(w, r)
	if !ok {
		return
	}
	defer cancel()
	var req CompileRequest
	if err := s.decode(w, r, &req); err != nil {
		s.failDecode(w, err)
		return
	}
	resp, err := s.compileOne(ctx, &req)
	if err != nil {
		s.fail(w, compileStatus(err), err.Error())
		return
	}
	WriteJSON(w, http.StatusOK, resp)
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	s.batchRequests.Add(1)
	if r.Method != http.MethodPost {
		s.fail(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	release, ok := s.admit(w)
	if !ok {
		return
	}
	defer release()
	ctx, cancel, ok := s.requestContext(w, r)
	if !ok {
		return
	}
	defer cancel()
	var req BatchRequest
	if err := s.decode(w, r, &req); err != nil {
		s.failDecode(w, err)
		return
	}
	if len(req.Requests) > s.maxBatch() {
		s.fail(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("batch of %d exceeds the %d-request limit", len(req.Requests), s.maxBatch()))
		return
	}
	s.batchItems.Add(int64(len(req.Requests)))
	WriteJSON(w, http.StatusOK, BatchResponse{Results: s.compileBatch(ctx, req.Requests)})
}

// handleHealthz keeps its historical map[string]string body shape (probes
// and tests decode exactly that), gaining a "degraded" status plus a reason
// while the SLO ladder is active: a degraded backend is alive — the gateway
// must keep routing to it — but operators should see the pressure.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	body := map[string]string{"status": "ok"}
	if lvl := s.level.Load(); lvl > 0 {
		body["status"] = "degraded"
		body["reason"] = fmt.Sprintf(
			"slo ladder at level %d: compile latency ewma %.1fms over %v target",
			lvl, s.latEWMA.Value()/1e6, s.cfg.SLOTarget)
	}
	WriteJSON(w, http.StatusOK, body)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	WriteJSON(w, http.StatusOK, s.Stats())
}

// Stats snapshots every counter the server maintains.
func (s *Server) Stats() StatsResponse {
	st := StatsResponse{
		UptimeSeconds:    time.Since(s.start).Seconds(),
		GoMaxProcs:       runtime.GOMAXPROCS(0),
		CompileRequests:  s.compileRequests.Load(),
		BatchRequests:    s.batchRequests.Load(),
		BatchItems:       s.batchItems.Load(),
		RequestErrors:    s.requestErrors.Load(),
		DeadlineExceeded: s.timeouts.Load(),
		Admission: AdmissionStats{
			MaxInflight: s.cfg.MaxInflight,
			Inflight:    len(s.inflight),
			Shed:        s.shed.Load(),
		},
		SLO: SLOStats{
			TargetMillis: float64(s.cfg.SLOTarget.Nanoseconds()) / 1e6,
			EWMAMillis:   s.latEWMA.Value() / 1e6,
			Level:        int(s.level.Load()),
			Degraded:     s.degraded.Load(),
		},
		CacheEnabled: s.cache != nil,
		Sched: SchedStats{
			Compiles:     s.compiles.Load(),
			Errors:       s.compileErrors.Load(),
			OpsScheduled: s.opsScheduled.Load(),
			IISum:        s.iiSum.Load(),
		},
	}
	for i := range s.strategyWins {
		if n := s.strategyWins[i].Load(); n > 0 {
			if st.Sched.StrategyWins == nil {
				st.Sched.StrategyWins = make(map[string]int64, len(s.strategyWins))
			}
			st.Sched.StrategyWins[sched.Strategy(i).String()] = n
		}
	}
	for i := range s.stageNanos {
		if n := s.stageNanos[i].Load(); n > 0 {
			if st.Sched.StageNanos == nil {
				st.Sched.StageNanos = make(map[string]int64, len(s.stageNanos))
			}
			st.Sched.StageNanos[vliwq.Stage(i).String()] = n
		}
	}
	s.machinesMu.Lock()
	if len(s.machines) > 0 {
		st.Sched.Machines = make(map[string]int64, len(s.machines))
		for spec, n := range s.machines {
			st.Sched.Machines[spec] = n
		}
	}
	s.machinesMu.Unlock()
	if s.cache != nil {
		st.Cache = s.cache.Stats()
	}
	st.Structural = StructuralStats{
		Enabled:    s.structs != nil,
		Hits:       s.structHits.Load(),
		Coalesced:  s.structCoalesced.Load(),
		Reordered:  s.structReordered.Load(),
		Renumbered: s.structRenumbered.Load(),
	}
	st.Optimal = OptimalStats{
		Proved:      s.optimalProved.Load(),
		Incumbent:   s.optimalIncumbent.Load(),
		PrunedNodes: s.optimalPruned.Load(),
	}
	if s.structs != nil {
		st.Structural.Entries = s.structs.Stats().Entries
	}
	return st
}

func (s *Server) decode(w http.ResponseWriter, r *http.Request, dst any) error {
	body := http.MaxBytesReader(w, r.Body, s.maxBody())
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return fmt.Errorf("bad request body: %w", err)
	}
	return nil
}

// failDecode maps a decode error onto its status: 413 when the body blew
// the MaxBytesReader cap (the client must shrink the request, not fix its
// JSON), 400 otherwise.
func (s *Server) failDecode(w http.ResponseWriter, err error) {
	code := http.StatusBadRequest
	if mbe := (*http.MaxBytesError)(nil); errors.As(err, &mbe) {
		code = http.StatusRequestEntityTooLarge
	}
	s.fail(w, code, err.Error())
}

func (s *Server) fail(w http.ResponseWriter, code int, msg string) {
	s.requestErrors.Add(1)
	WriteJSON(w, code, map[string]string{"error": msg})
}

// WriteJSON renders one JSON response body the way every endpoint in this
// system does — unescaped HTML, trailing newline. The gateway shares it so
// its error and stats bodies are framed indistinguishably from a backend's
// (the byte-identity contract the gateway tests pin down).
func WriteJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}
