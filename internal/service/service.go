// Package service implements the vliwd compilation service: a long-running
// HTTP/JSON front end over the vliwq pipeline, backed by the shared
// internal/cache compile cache.
//
// Endpoints:
//
//	POST /compile  one loop (text format in the JSON body) -> schedule + metrics
//	POST /batch    a request set, compiled on a worker pool, results in input order
//	GET  /healthz  liveness probe
//	GET  /stats    request, scheduler and cache counters
//
// Compilation is deterministic, so responses are cacheable: the cache key is
// the canonical request (machine spec, pipeline flags, loop text) and each
// distinct request compiles exactly once per cache lifetime — concurrent
// identical requests share one compute via the cache's per-entry sync.Once.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strings"
	"sync/atomic"
	"time"

	"vliwq"
	"vliwq/internal/cache"
	"vliwq/internal/copyins"
	"vliwq/internal/pool"
	"vliwq/internal/sched"
)

// Config tunes a Server. The zero value serves correctly — unbounded
// cache, GOMAXPROCS batch workers, 4 MiB body cap — but a long-running
// deployment should bound the cache: entries are keyed by client request
// bodies, so unbounded mode grows with every distinct request (cmd/vliwd
// defaults to a 65536-entry bound for exactly that reason).
type Config struct {
	// CacheEntries bounds the compile cache: 0 means unbounded, a negative
	// value disables caching entirely (every request compiles).
	CacheEntries int
	// Workers bounds per-batch compile parallelism; 0 uses GOMAXPROCS.
	Workers int
	// MaxBatch caps the request count of one /batch call; 0 means
	// DefaultMaxBatch.
	MaxBatch int
	// MaxBodyBytes caps the request body; 0 means 4 MiB.
	MaxBodyBytes int64
}

// CompileRequest is the JSON body of POST /compile and each element of a
// /batch request set. Loop is the text format internal/ir documents
// (op/carried/mem/order directives); Machine is the "single:<n>" /
// "clustered:<n>" spec, defaulting to single:6 like the library facade.
type CompileRequest struct {
	Loop         string `json:"loop"`
	Machine      string `json:"machine,omitempty"`
	Unroll       bool   `json:"unroll,omitempty"`
	UnrollFactor int    `json:"unroll_factor,omitempty"`
	CopyShape    string `json:"copy_shape,omitempty"` // "tree" (default) or "chain"
	AllowMoves   bool   `json:"allow_moves,omitempty"`
	CommLatency  int    `json:"comm_latency,omitempty"`
	SkipVerify   bool   `json:"skip_verify,omitempty"`
	// Effort selects the scheduler's portfolio breadth: "fast" (default),
	// "balanced" or "exhaustive". Unknown values are rejected with HTTP
	// 400 and the sorted list of valid names.
	Effort string `json:"effort,omitempty"`
}

// CompileResponse carries the schedule and the headline metrics of one
// compiled loop — the same numbers vliwq.Result reports, plus the rendered
// report and kernel table.
type CompileResponse struct {
	Loop       string  `json:"loop"`
	Machine    string  `json:"machine"`
	Unrolled   int     `json:"unrolled"`
	II         int     `json:"ii"`
	MII        int     `json:"mii"`
	Stages     int     `json:"stages"`
	IPCStatic  float64 `json:"ipc_static"`
	IPCDynamic float64 `json:"ipc_dynamic"`
	Queues     int     `json:"queues"`
	RingQueues int     `json:"ring_queues"`
	Effort     string  `json:"effort"`
	Strategy   string  `json:"strategy"`
	Report     string  `json:"report"`
	Kernel     string  `json:"kernel"`
}

// BatchRequest is the JSON body of POST /batch.
type BatchRequest struct {
	Requests []CompileRequest `json:"requests"`
}

// BatchEntry is the outcome for the request at the same index: exactly one
// of Response and Error is set.
type BatchEntry struct {
	Response *CompileResponse `json:"response,omitempty"`
	Error    string           `json:"error,omitempty"`
}

// BatchResponse is the JSON body answering POST /batch; Results[i] always
// corresponds to Requests[i].
type BatchResponse struct {
	Results []BatchEntry `json:"results"`
}

// SchedStats aggregates scheduler outcomes across every compile the server
// has executed (cache hits replay a previous outcome and are not recounted).
type SchedStats struct {
	Compiles     int64 `json:"compiles"`      // pipeline executions
	Errors       int64 `json:"errors"`        // pipeline executions that failed
	OpsScheduled int64 `json:"ops_scheduled"` // total ops placed (post-unroll/copies)
	IISum        int64 `json:"ii_sum"`        // sum of achieved IIs

	// StrategyWins counts, per strategy name, how many compiles that
	// strategy's schedule won — the fleet-wide observability hook for the
	// portfolio scheduler (the gateway sums these maps across backends).
	// Only strategies with at least one win appear.
	StrategyWins map[string]int64 `json:"strategy_wins,omitempty"`
}

// StatsResponse is the JSON body of GET /stats.
type StatsResponse struct {
	UptimeSeconds   float64     `json:"uptime_seconds"`
	GoMaxProcs      int         `json:"gomaxprocs"`
	CompileRequests int64       `json:"compile_requests"`
	BatchRequests   int64       `json:"batch_requests"`
	BatchItems      int64       `json:"batch_items"`
	RequestErrors   int64       `json:"request_errors"`
	CacheEnabled    bool        `json:"cache_enabled"`
	Cache           cache.Stats `json:"cache"`
	Sched           SchedStats  `json:"sched"`
}

// outcome is the cached unit: one request's response or its error rendered
// as a string (compilation is deterministic, so errors cache as well as
// successes).
type outcome struct {
	resp *CompileResponse
	err  string
}

// Server is the vliwd HTTP service. Create one with New; it is safe for
// concurrent use by any number of requests.
type Server struct {
	cfg   Config
	cache *cache.Cache[string, outcome] // nil when caching is disabled
	mux   *http.ServeMux
	start time.Time

	compileRequests atomic.Int64
	batchRequests   atomic.Int64
	batchItems      atomic.Int64
	requestErrors   atomic.Int64

	compiles      atomic.Int64
	compileErrors atomic.Int64
	opsScheduled  atomic.Int64
	iiSum         atomic.Int64
	strategyWins  [sched.NumStrategies]atomic.Int64
}

// New builds a Server from cfg.
func New(cfg Config) *Server {
	s := &Server{cfg: cfg, start: time.Now()}
	if cfg.CacheEntries >= 0 {
		s.cache = cache.New[string, outcome](
			cache.Options{MaxEntries: cfg.CacheEntries}, cache.StringHash)
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/compile", s.handleCompile)
	s.mux.HandleFunc("/batch", s.handleBatch)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/stats", s.handleStats)
	return s
}

// Handler returns the root handler for an http.Server.
func (s *Server) Handler() http.Handler { return s.mux }

func (s *Server) workers() int {
	if s.cfg.Workers > 0 {
		return s.cfg.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// DefaultMaxBatch is the /batch request-count cap when Config.MaxBatch is
// zero; the gateway mirrors it so a batch the gateway accepts is one every
// backend accepts after splitting.
const DefaultMaxBatch = 1024

func (s *Server) maxBatch() int {
	if s.cfg.MaxBatch > 0 {
		return s.cfg.MaxBatch
	}
	return DefaultMaxBatch
}

func (s *Server) maxBody() int64 {
	if s.cfg.MaxBodyBytes > 0 {
		return s.cfg.MaxBodyBytes
	}
	return 4 << 20
}

// buildOptions validates the request knobs and maps them onto the facade's
// Options. The error, if any, is a client error (HTTP 400).
func buildOptions(req *CompileRequest) (vliwq.Options, error) {
	spec := req.Machine
	if spec == "" {
		spec = "single:6"
	}
	m, err := vliwq.ParseMachine(spec)
	if err != nil {
		return vliwq.Options{}, err
	}
	m.AllowMoves = req.AllowMoves
	if req.CommLatency < 0 {
		return vliwq.Options{}, fmt.Errorf("negative comm_latency %d", req.CommLatency)
	}
	m.CommLatency = req.CommLatency
	// The unroll factor multiplies the loop body; unchecked it lets a
	// four-op request allocate hundreds of millions of ops. The library's
	// automatic choice caps at 8, so 64 is generous for a forced factor.
	if req.UnrollFactor < 0 || req.UnrollFactor > 64 {
		return vliwq.Options{}, fmt.Errorf("unroll_factor %d out of range [0, 64]", req.UnrollFactor)
	}
	opts := vliwq.Options{
		Machine:      m,
		Unroll:       req.Unroll,
		UnrollFactor: req.UnrollFactor,
		SkipVerify:   req.SkipVerify,
	}
	switch req.CopyShape {
	case "", "tree":
		opts.CopyShape = copyins.Tree
	case "chain":
		opts.CopyShape = copyins.Chain
	default:
		return vliwq.Options{}, fmt.Errorf("unknown copy_shape %q (want tree or chain)", req.CopyShape)
	}
	// ParseEffort's error already carries the sorted list of valid values,
	// mirroring the copy_shape/-fig UX; it reaches the client as HTTP 400.
	eff, err := vliwq.ParseEffort(req.Effort)
	if err != nil {
		return vliwq.Options{}, err
	}
	opts.Sched.Effort = eff
	if req.Loop == "" {
		return vliwq.Options{}, errors.New("empty loop")
	}
	return opts, nil
}

// CanonicalKey canonicalizes a request into the cache key. Fields that
// default (machine, shape) are normalized first by buildOptions validation,
// but the key uses the raw strings plus every knob, so two requests collide
// only when they are behaviourally identical. Effort is the exception: it
// is normalized through ParseEffort (an omitted effort IS "fast", and the
// two must share one cache entry and one gateway shard; an unparseable
// effort keys on its raw string and is rejected with 400 downstream). The
// gateway (internal/gateway) shards requests by a stable hash of this same
// key, which is what makes its routing cache-affine: every replay of a
// request lands on the backend that already holds the entry.
func CanonicalKey(req *CompileRequest) string {
	effort := req.Effort
	if e, err := vliwq.ParseEffort(effort); err == nil {
		effort = e.String()
	}
	var b strings.Builder
	fmt.Fprintf(&b, "m=%s;u=%t;f=%d;s=%s;mv=%t;cl=%d;sv=%t;e=%s;",
		req.Machine, req.Unroll, req.UnrollFactor, req.CopyShape,
		req.AllowMoves, req.CommLatency, req.SkipVerify, effort)
	b.WriteString(req.Loop)
	return b.String()
}

// compute runs the pipeline for one validated request and renders the
// outcome. It feeds the scheduler counters; the cached path replays the
// outcome without recounting.
func (s *Server) compute(ctx context.Context, req *CompileRequest, opts vliwq.Options) outcome {
	s.compiles.Add(1)
	loop, err := vliwq.ParseLoop(req.Loop)
	if err != nil {
		s.compileErrors.Add(1)
		return outcome{err: err.Error()}
	}
	res, err := vliwq.CompileContext(ctx, loop, opts)
	if err != nil {
		s.compileErrors.Add(1)
		return outcome{err: err.Error()}
	}
	s.opsScheduled.Add(int64(len(res.Sched.Loop.Ops)))
	s.iiSum.Add(int64(res.II))
	s.strategyWins[res.Sched.Strategy].Add(1)
	return outcome{resp: &CompileResponse{
		Loop:       loop.Name,
		Machine:    res.Sched.Machine.Name,
		Unrolled:   res.Unrolled,
		II:         res.II,
		MII:        res.MII,
		Stages:     res.StageCount,
		IPCStatic:  res.IPCStatic,
		IPCDynamic: res.IPCDynamic,
		Queues:     res.Queues,
		RingQueues: res.RingQueues,
		Effort:     opts.Sched.Effort.String(),
		Strategy:   res.Strategy,
		Report:     res.Report(),
		Kernel:     res.KernelSchedule(),
	}}
}

// clientError marks a request-shape problem (HTTP 400) as opposed to a
// loop the pipeline rejects (HTTP 422).
type clientError struct{ error }

// compileOne serves one request through the cache. Cached computes run
// under context.Background(): the result outlives the requesting client,
// and a cancelled first requester must not poison the shared entry with a
// context error. Uncached computes honour the caller's context.
func (s *Server) compileOne(ctx context.Context, req *CompileRequest) (*CompileResponse, error) {
	opts, err := buildOptions(req)
	if err != nil {
		return nil, clientError{err}
	}
	var oc outcome
	if s.cache != nil {
		oc = s.cache.Do(CanonicalKey(req), func() outcome {
			return s.compute(context.Background(), req, opts)
		})
	} else {
		oc = s.compute(ctx, req, opts)
	}
	if oc.err != "" {
		return nil, errors.New(oc.err)
	}
	return oc.resp, nil
}

// compileBatch fans the request set over a fixed worker pool (pool.Run,
// the same primitive vliwq.CompileBatch uses — the service goes through
// compileOne instead of CompileBatch itself so batch items share the
// response cache). Results come back in input order regardless of worker
// interleaving; on cancellation, unstarted items report the context error.
func (s *Server) compileBatch(ctx context.Context, reqs []CompileRequest) []BatchEntry {
	out := make([]BatchEntry, len(reqs))
	pool.Run(ctx, len(reqs), s.workers(), func(i int) {
		resp, err := s.compileOne(ctx, &reqs[i])
		if err != nil {
			out[i] = BatchEntry{Error: err.Error()}
		} else {
			out[i] = BatchEntry{Response: resp}
		}
	}, func(i int) {
		out[i] = BatchEntry{Error: ctx.Err().Error()}
	})
	return out
}

func (s *Server) handleCompile(w http.ResponseWriter, r *http.Request) {
	s.compileRequests.Add(1)
	if r.Method != http.MethodPost {
		s.fail(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req CompileRequest
	if err := s.decode(w, r, &req); err != nil {
		s.failDecode(w, err)
		return
	}
	resp, err := s.compileOne(r.Context(), &req)
	if err != nil {
		code := http.StatusUnprocessableEntity
		var ce clientError
		if errors.As(err, &ce) {
			code = http.StatusBadRequest
		}
		s.fail(w, code, err.Error())
		return
	}
	WriteJSON(w, http.StatusOK, resp)
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	s.batchRequests.Add(1)
	if r.Method != http.MethodPost {
		s.fail(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req BatchRequest
	if err := s.decode(w, r, &req); err != nil {
		s.failDecode(w, err)
		return
	}
	if len(req.Requests) > s.maxBatch() {
		s.fail(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("batch of %d exceeds the %d-request limit", len(req.Requests), s.maxBatch()))
		return
	}
	s.batchItems.Add(int64(len(req.Requests)))
	WriteJSON(w, http.StatusOK, BatchResponse{Results: s.compileBatch(r.Context(), req.Requests)})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	WriteJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	WriteJSON(w, http.StatusOK, s.Stats())
}

// Stats snapshots every counter the server maintains.
func (s *Server) Stats() StatsResponse {
	st := StatsResponse{
		UptimeSeconds:   time.Since(s.start).Seconds(),
		GoMaxProcs:      runtime.GOMAXPROCS(0),
		CompileRequests: s.compileRequests.Load(),
		BatchRequests:   s.batchRequests.Load(),
		BatchItems:      s.batchItems.Load(),
		RequestErrors:   s.requestErrors.Load(),
		CacheEnabled:    s.cache != nil,
		Sched: SchedStats{
			Compiles:     s.compiles.Load(),
			Errors:       s.compileErrors.Load(),
			OpsScheduled: s.opsScheduled.Load(),
			IISum:        s.iiSum.Load(),
		},
	}
	for i := range s.strategyWins {
		if n := s.strategyWins[i].Load(); n > 0 {
			if st.Sched.StrategyWins == nil {
				st.Sched.StrategyWins = make(map[string]int64, len(s.strategyWins))
			}
			st.Sched.StrategyWins[sched.Strategy(i).String()] = n
		}
	}
	if s.cache != nil {
		st.Cache = s.cache.Stats()
	}
	return st
}

func (s *Server) decode(w http.ResponseWriter, r *http.Request, dst any) error {
	body := http.MaxBytesReader(w, r.Body, s.maxBody())
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return fmt.Errorf("bad request body: %w", err)
	}
	return nil
}

// failDecode maps a decode error onto its status: 413 when the body blew
// the MaxBytesReader cap (the client must shrink the request, not fix its
// JSON), 400 otherwise.
func (s *Server) failDecode(w http.ResponseWriter, err error) {
	code := http.StatusBadRequest
	if mbe := (*http.MaxBytesError)(nil); errors.As(err, &mbe) {
		code = http.StatusRequestEntityTooLarge
	}
	s.fail(w, code, err.Error())
}

func (s *Server) fail(w http.ResponseWriter, code int, msg string) {
	s.requestErrors.Add(1)
	WriteJSON(w, code, map[string]string{"error": msg})
}

// WriteJSON renders one JSON response body the way every endpoint in this
// system does — unescaped HTML, trailing newline. The gateway shares it so
// its error and stats bodies are framed indistinguishably from a backend's
// (the byte-identity contract the gateway tests pin down).
func WriteJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}
