package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"vliwq/internal/corpus"
	"vliwq/internal/program"
)

// TestTracedBatchStats is the service half of the whole-program surface
// (DESIGN.md §15): a traced program's per-region requests post to /batch
// exactly as program.Requests emits them, hard regions answer with Bound
// certificates, a cache-hit round trip is byte-stable, and /stats exposes
// the per-region compile stage timings (each region is one request, so
// stage_nanos aggregates exactly the regions' pipeline clocks).
func TestTracedBatchStats(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	p := corpus.TracedPrograms()[0] // kernelmix: 4 regions, 1 hard
	reqs, err := program.Requests(p, program.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) < 3 {
		t.Fatalf("traced program maps to %d requests, want >= 3", len(reqs))
	}

	resp, first := postJSON(t, ts.Client(), ts.URL+"/batch", BatchRequest{Requests: reqs})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d: %s", resp.StatusCode, first)
	}
	var out BatchResponse
	if err := json.Unmarshal(first, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != len(reqs) {
		t.Fatalf("batch answered %d of %d requests", len(out.Results), len(reqs))
	}
	certified := 0
	for i, e := range out.Results {
		if e.Error != "" || e.Response == nil {
			t.Fatalf("region %d failed: %s", i, e.Error)
		}
		if reqs[i].Effort == "optimal" {
			if e.Response.Bound == nil || e.Response.Bound.Lower <= 0 {
				t.Fatalf("hard region %d missing its Bound certificate: %+v", i, e.Response.Bound)
			}
			certified++
		}
	}
	if certified == 0 {
		t.Fatal("no hard region exercised the certified tier")
	}

	// Cache-hit round trip: the identical batch must answer byte-identically.
	resp2, second := postJSON(t, ts.Client(), ts.URL+"/batch", BatchRequest{Requests: reqs})
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second batch status %d", resp2.StatusCode)
	}
	if !bytes.Equal(first, second) {
		t.Fatalf("cache-hit round trip not byte-stable:\n%s\nvs\n%s", first, second)
	}

	st := srv.Stats()
	if st.Sched.Compiles != int64(len(reqs)) {
		t.Fatalf("stats compiles = %d, want %d (second batch must replay the cache)",
			st.Sched.Compiles, len(reqs))
	}
	if len(st.Sched.StageNanos) == 0 {
		t.Fatal("stats carry no per-region stage timings")
	}
	for _, stage := range []string{"schedule", "alloc"} {
		if st.Sched.StageNanos[stage] <= 0 {
			t.Fatalf("stage %q has no aggregated wall-clock: %v", stage, st.Sched.StageNanos)
		}
	}
}
