//go:build race

package ir

// raceEnabled reports whether the race detector is active; its
// instrumentation inflates allocation counts, so AllocsPerRun regression
// tests skip under it.
const raceEnabled = true
