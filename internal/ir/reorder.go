package ir

// Statement reordering: AlignLike maps one spelling of a loop onto the
// statement order of another, isomorphic spelling. The serving stack uses
// it as the canonical pre-ordering in front of the structural cache — the
// first spelling of an isomorphism class to be compiled fixes the class's
// canonical statement order, and every later permutation of it is aligned
// onto that order so the cached schedule can be served through the same
// rename-only remap that renamed spellings use (see DESIGN.md §12).

// AlignLike returns a copy of l whose statements are renumbered into
// target's statement order, or ok=false when no alignment can be
// established. On success the returned loop satisfies
// Skeleton(aligned) == Skeleton(target) by construction while keeping l's
// loop and operation names: position π(i) holds l's op i, and the
// dependence list is target's verbatim. The alignment is found by running
// the same WL color refinement that Fingerprint uses on both loops and
// pairing equal-colored ops in statement order; every dependence of the
// mapped l must then reproduce target's dependence list exactly (same
// endpoints, distance, kind and operand slot), which makes the pairing a
// genuine isomorphism — operand order, the one place where statement
// order is semantic, is preserved edge by edge.
//
// Raw spellings only: loops carrying unroll lineage (any op with
// Orig >= 0) are refused, as are pairs that differ in op or dep counts,
// trip count or unroll factor. Failure is always safe — callers fall back
// to a fresh compile.
func AlignLike(l, target *Loop) (aligned *Loop, ok bool) {
	n := len(l.Ops)
	if n != len(target.Ops) || len(l.Deps) != len(target.Deps) {
		return nil, false
	}
	if l.TripCount() != target.TripCount() || l.Unroll != target.Unroll {
		return nil, false
	}
	for _, op := range l.Ops {
		if op.Orig >= 0 {
			return nil, false
		}
	}
	for _, op := range target.Ops {
		if op.Orig >= 0 {
			return nil, false
		}
	}

	colorsL, slotL := wlRefine(l)
	colorsT, slotT := wlRefine(target)

	// Pair equal-colored ops in statement order: l's k-th op of color c
	// maps to target's k-th op of color c. Residually tied ops (same final
	// color) are structurally interchangeable whenever the dependence check
	// below passes, so statement order is a valid tie-break.
	groupT := make(map[uint64][]int, n)
	for i, c := range colorsT {
		groupT[c] = append(groupT[c], i)
	}
	pi := make([]int, n) // pi[i] = target position of l's op i
	taken := make(map[uint64]int, len(groupT))
	for i, c := range colorsL {
		g := groupT[c]
		k := taken[c]
		if k >= len(g) {
			return nil, false
		}
		taken[c] = k + 1
		j := g[k]
		if l.Ops[i].Kind != target.Ops[j].Kind || l.Ops[i].Phase != target.Ops[j].Phase {
			return nil, false
		}
		pi[i] = j
	}
	for c, g := range groupT {
		if taken[c] != len(g) {
			return nil, false
		}
	}

	// The mapped dependence set must reproduce target's exactly. Keys are
	// unique within a loop — (to, kind, slot) already identifies one dep —
	// so a set comparison suffices.
	type dkey struct {
		from, to int
		dist     int
		kind     DepKind
		slot     int
	}
	mapped := make(map[dkey]struct{}, len(l.Deps))
	for i, d := range l.Deps {
		k := dkey{pi[d.From], pi[d.To], d.Dist, d.Kind, slotL[i]}
		if _, dup := mapped[k]; dup {
			return nil, false
		}
		mapped[k] = struct{}{}
	}
	for j, d := range target.Deps {
		if _, hit := mapped[dkey{d.From, d.To, d.Dist, d.Kind, slotT[j]}]; !hit {
			return nil, false
		}
	}

	aligned = &Loop{
		Name:   l.Name,
		Trip:   l.Trip,
		Unroll: l.Unroll,
		Ops:    make([]*Op, n),
		Deps:   append([]Dep(nil), target.Deps...),
	}
	for i, op := range l.Ops {
		cp := *op
		cp.ID = pi[i]
		aligned.Ops[pi[i]] = &cp
	}
	return aligned, true
}
