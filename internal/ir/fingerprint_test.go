package ir

import (
	"fmt"
	"strings"
	"testing"
)

func mustParse(t *testing.T, src string) *Loop {
	t.Helper()
	l, err := ParseString(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return l
}

const fpBase = `
loop base
trip 64
op a load
op x load
op m mul a
op s add m x
op st store s
carried s m 1
mem st a 1
`

// fpRenamed is fpBase with every op (and the loop) renamed; the structure
// is untouched.
const fpRenamed = `
loop other
trip 64
op p load
op q load
op r mul p
op t add r q
op u store t
carried t r 1
mem u p 1
`

// fpReordered is fpBase with the two leaf loads swapped in statement
// order; operand order (m reads a; s reads m then x) is preserved, so the
// loops are isomorphic but not skeleton-equal.
const fpReordered = `
loop base
trip 64
op x load
op a load
op m mul a
op s add m x
op st store s
carried s m 1
mem st a 1
`

func TestFingerprintDeterministic(t *testing.T) {
	l := mustParse(t, fpBase)
	fp := Fingerprint(l)
	for i := 0; i < 5; i++ {
		if got := Fingerprint(l); got != fp {
			t.Fatalf("fingerprint changed across calls: %s vs %s", got, fp)
		}
	}
	if got := Fingerprint(l.Clone()); got != fp {
		t.Fatalf("fingerprint changed across Clone: %s vs %s", got, fp)
	}
	if len(fp) != 64 {
		t.Fatalf("fingerprint %q is not a sha256 hex digest", fp)
	}
}

func TestFingerprintRenameInvariant(t *testing.T) {
	a, b := mustParse(t, fpBase), mustParse(t, fpRenamed)
	if Fingerprint(a) != Fingerprint(b) {
		t.Fatal("renaming ops changed the fingerprint")
	}
	if Skeleton(a) != Skeleton(b) {
		t.Fatal("renaming ops changed the skeleton")
	}
}

func TestFingerprintRenumberInvariant(t *testing.T) {
	a, b := mustParse(t, fpBase), mustParse(t, fpReordered)
	if Fingerprint(a) != Fingerprint(b) {
		t.Fatal("permuting statement order changed the fingerprint")
	}
	if Skeleton(a) == Skeleton(b) {
		t.Fatal("permuting statement order must change the skeleton (remap guard)")
	}
}

// TestFingerprintSensitivity: every semantic mutation of the base loop
// must move the fingerprint — the structural key must never collide across
// behaviourally different loops that a test can tell apart.
func TestFingerprintSensitivity(t *testing.T) {
	base := Fingerprint(mustParse(t, fpBase))
	mutations := map[string]string{
		"kind":         strings.Replace(fpBase, "op m mul a", "op m add a", 1),
		"distance":     strings.Replace(fpBase, "carried s m 1", "carried s m 2", 1),
		"trip":         strings.Replace(fpBase, "trip 64", "trip 65", 1),
		"drop mem dep": strings.Replace(fpBase, "mem st a 1\n", "", 1),
		"operand swap": strings.Replace(fpBase, "op s add m x", "op s add x m", 1),
		"extra op":     fpBase + "op extra load\n",
	}
	for name, src := range mutations {
		if got := Fingerprint(mustParse(t, src)); got == base {
			t.Errorf("%s: mutated loop shares the base fingerprint", name)
		}
	}
}

// TestFingerprintPairwiseDistinct: a family of small, structurally
// distinct loops must produce pairwise distinct fingerprints.
func TestFingerprintPairwiseDistinct(t *testing.T) {
	srcs := []string{
		fpBase,
		"loop a\nop x load\n",
		"loop b\nop x load\nop y load\n",
		"loop c\nop x load\nop s store x\n",
		"loop d\nop x load\nop y add x\ncarried y y 1\n",
		"loop e\nop x load\nop y add x\ncarried y y 2\n",
		"loop f\nop x load\nop y mul x\ncarried y y 1\n",
		"loop g\nop x load\nop y add x x\n",
		"loop h\nop x load\nop y div x\n",
		"loop i\ntrip 7\nop x load\n",
	}
	seen := map[string]int{}
	for i, src := range srcs {
		fp := Fingerprint(mustParse(t, src))
		if j, dup := seen[fp]; dup {
			t.Errorf("loops %d and %d share fingerprint %s", i, j, fp)
		}
		seen[fp] = i
	}
}

// TestFingerprintSymmetricBody: automorphic ops (interchangeable leaves)
// must still fingerprint identically across spellings that permute them.
func TestFingerprintSymmetricBody(t *testing.T) {
	// Two identical independent chains: load->add->store, twice.
	chain := func(names [3]string) string {
		return fmt.Sprintf("op %s load\nop %s add %s\nop %s store %s\n",
			names[0], names[1], names[0], names[2], names[1])
	}
	a := "loop s\n" + chain([3]string{"a1", "a2", "a3"}) + chain([3]string{"b1", "b2", "b3"})
	b := "loop s\n" + chain([3]string{"b1", "b2", "b3"}) + chain([3]string{"a1", "a2", "a3"})
	if Fingerprint(mustParse(t, a)) != Fingerprint(mustParse(t, b)) {
		t.Fatal("swapping two automorphic chains changed the fingerprint")
	}
}

func TestSkeletonNameFree(t *testing.T) {
	l := mustParse(t, fpBase)
	sk := Skeleton(l)
	if strings.Contains(sk, "base") || strings.Contains(sk, "st") {
		t.Fatalf("skeleton leaks names: %q", sk)
	}
	r := l.Clone()
	for _, op := range r.Ops {
		op.Name = "z" + op.Name
	}
	r.Name = "zzz"
	if Skeleton(r) != sk {
		t.Fatal("renaming changed the skeleton")
	}
}
