package ir

import (
	"errors"
	"fmt"
	"sync"
)

// Validation errors returned by Loop.Validate. They are wrapped with
// positional context; use errors.Is to test for them.
var (
	ErrEmptyLoop      = errors.New("ir: loop has no operations")
	ErrBadOpID        = errors.New("ir: dependence references an unknown op")
	ErrBadKind        = errors.New("ir: operation has an invalid kind")
	ErrNegativeDist   = errors.New("ir: dependence has a negative distance")
	ErrZeroDistCycle  = errors.New("ir: zero-distance dependence cycle")
	ErrSelfDep        = errors.New("ir: zero-distance self dependence")
	ErrStoreProduces  = errors.New("ir: store operation used as a value producer")
	ErrTooManyInputs  = errors.New("ir: operation has more flow inputs than its kind allows")
	ErrMisnumberedOps = errors.New("ir: op IDs are not dense indices")
)

// Validate checks the structural invariants of the loop:
//
//   - at least one operation, dense op IDs, valid kinds;
//   - all dependence endpoints exist, distances are non-negative;
//   - no zero-distance self dependences, no zero-distance cycles;
//   - stores never act as value producers;
//   - no operation has more flow inputs than its kind can read.
func (l *Loop) Validate() error {
	if len(l.Ops) == 0 {
		return ErrEmptyLoop
	}
	for i, op := range l.Ops {
		if op == nil || op.ID != i {
			return fmt.Errorf("%w: index %d", ErrMisnumberedOps, i)
		}
		if !op.Kind.Valid() {
			return fmt.Errorf("%w: %v", ErrBadKind, op)
		}
	}
	nIn := make([]int, len(l.Ops))
	for _, d := range l.Deps {
		if d.From < 0 || d.From >= len(l.Ops) || d.To < 0 || d.To >= len(l.Ops) {
			return fmt.Errorf("%w: %v", ErrBadOpID, d)
		}
		if d.Dist < 0 {
			return fmt.Errorf("%w: %v", ErrNegativeDist, d)
		}
		if d.From == d.To && d.Dist == 0 {
			return fmt.Errorf("%w: %v", ErrSelfDep, d)
		}
		if d.Kind == Flow {
			if !l.Ops[d.From].Kind.HasResult() {
				return fmt.Errorf("%w: %v", ErrStoreProduces, d)
			}
			nIn[d.To]++
		}
	}
	for i, op := range l.Ops {
		if nIn[i] > op.Kind.MaxInputs() {
			return fmt.Errorf("%w: %v has %d", ErrTooManyInputs, op, nIn[i])
		}
	}
	if l.hasZeroDistCycle() {
		return fmt.Errorf("%w: loop %q", ErrZeroDistCycle, l.Name)
	}
	return nil
}

// zdcFrame is one explicit DFS stack entry of hasZeroDistCycle: a node and
// its next-edge cursor.
type zdcFrame struct{ v, i int32 }

// zdcScratch recycles hasZeroDistCycle's working arrays; the scheduler
// validates every input loop, so the check runs on every compile and its
// allocations would otherwise dominate the fixed per-call cost.
type zdcScratch struct {
	off   []int32
	flat  []int32
	color []int8
	stack []zdcFrame
}

var zdcPool = sync.Pool{New: func() any { return new(zdcScratch) }}

// hasZeroDistCycle reports whether the Dist==0 subgraph contains a cycle
// (three-colour iterative DFS). Validate used to detect this through a full
// TopoOrder, whose deterministic smallest-ID-first ready list costs a
// sorted insertion per node; the scheduler validates every input loop, so
// the cycle check alone is worth an order-free implementation.
func (l *Loop) hasZeroDistCycle() bool {
	scr := zdcPool.Get().(*zdcScratch)
	defer zdcPool.Put(scr)
	n := len(l.Ops)
	off := resize(scr.off, n+1)
	scr.off = off
	for i := range off {
		off[i] = 0
	}
	for _, d := range l.Deps {
		if d.Dist == 0 {
			off[d.From+1]++
		}
	}
	for i := 1; i <= n; i++ {
		off[i] += off[i-1]
	}
	flat := resize(scr.flat, int(off[n]))
	scr.flat = flat
	for _, d := range l.Deps {
		if d.Dist == 0 {
			flat[off[d.From]] = int32(d.To)
			off[d.From]++
		}
	}
	for i := n; i > 0; i-- {
		off[i] = off[i-1]
	}
	off[0] = 0
	// color: 0 unvisited, 1 on the current DFS path, 2 done.
	color := resize(scr.color, n)
	scr.color = color
	for i := range color {
		color[i] = 0
	}
	stack := scr.stack[:0]
	defer func() { scr.stack = stack }()
	for s := 0; s < n; s++ {
		if color[s] != 0 {
			continue
		}
		color[s] = 1
		stack = append(stack, zdcFrame{v: int32(s), i: off[s]})
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.i == off[f.v+1] {
				color[f.v] = 2
				stack = stack[:len(stack)-1]
				continue
			}
			w := flat[f.i]
			f.i++
			switch color[w] {
			case 0:
				color[w] = 1
				stack = append(stack, zdcFrame{v: w, i: off[w]})
			case 1:
				return true
			}
		}
	}
	return false
}

// resize returns s with length n, reusing its backing array when large
// enough; the contents are unspecified (callers overwrite them).
func resize[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}
