package ir

import (
	"errors"
	"fmt"
)

// Validation errors returned by Loop.Validate. They are wrapped with
// positional context; use errors.Is to test for them.
var (
	ErrEmptyLoop      = errors.New("ir: loop has no operations")
	ErrBadOpID        = errors.New("ir: dependence references an unknown op")
	ErrBadKind        = errors.New("ir: operation has an invalid kind")
	ErrNegativeDist   = errors.New("ir: dependence has a negative distance")
	ErrZeroDistCycle  = errors.New("ir: zero-distance dependence cycle")
	ErrSelfDep        = errors.New("ir: zero-distance self dependence")
	ErrStoreProduces  = errors.New("ir: store operation used as a value producer")
	ErrTooManyInputs  = errors.New("ir: operation has more flow inputs than its kind allows")
	ErrMisnumberedOps = errors.New("ir: op IDs are not dense indices")
)

// Validate checks the structural invariants of the loop:
//
//   - at least one operation, dense op IDs, valid kinds;
//   - all dependence endpoints exist, distances are non-negative;
//   - no zero-distance self dependences, no zero-distance cycles;
//   - stores never act as value producers;
//   - no operation has more flow inputs than its kind can read.
func (l *Loop) Validate() error {
	if len(l.Ops) == 0 {
		return ErrEmptyLoop
	}
	for i, op := range l.Ops {
		if op == nil || op.ID != i {
			return fmt.Errorf("%w: index %d", ErrMisnumberedOps, i)
		}
		if !op.Kind.Valid() {
			return fmt.Errorf("%w: %v", ErrBadKind, op)
		}
	}
	nIn := make([]int, len(l.Ops))
	for _, d := range l.Deps {
		if d.From < 0 || d.From >= len(l.Ops) || d.To < 0 || d.To >= len(l.Ops) {
			return fmt.Errorf("%w: %v", ErrBadOpID, d)
		}
		if d.Dist < 0 {
			return fmt.Errorf("%w: %v", ErrNegativeDist, d)
		}
		if d.From == d.To && d.Dist == 0 {
			return fmt.Errorf("%w: %v", ErrSelfDep, d)
		}
		if d.Kind == Flow {
			if !l.Ops[d.From].Kind.HasResult() {
				return fmt.Errorf("%w: %v", ErrStoreProduces, d)
			}
			nIn[d.To]++
		}
	}
	for i, op := range l.Ops {
		if nIn[i] > op.Kind.MaxInputs() {
			return fmt.Errorf("%w: %v has %d", ErrTooManyInputs, op, nIn[i])
		}
	}
	if _, err := l.TopoOrder(); err != nil {
		return fmt.Errorf("%w: %v", ErrZeroDistCycle, err)
	}
	return nil
}
