package ir

// Operation semantics for simulation. The reference executor and the
// pipelined QRF simulator both evaluate operations through Eval, so a value
// mismatch between the two always indicates a scheduling, allocation or
// machine-model bug rather than divergent semantics.

// mix64 is a strong 64-bit finalizer (splitmix64); it spreads op IDs and
// iteration numbers so that distinct instances produce distinct values with
// overwhelming probability, making tag/value confusion detectable.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// LeafValue returns the value produced by an operation with no flow inputs
// in the given iteration (negative iterations yield the live-in values that
// exist before the loop starts).
func LeafValue(opID int, iter int) int64 {
	return int64(mix64(uint64(opID)*0x100000001b3 ^ uint64(int64(iter))))
}

// Eval computes the result of one operation instance. iter must be the
// iteration in the original (pre-unrolling) iteration space — see
// Loop.OrigIter. args holds the values of the flow inputs in FlowInputs
// order. Operations with no inputs produce LeafValue; stores produce the
// value they observe (recorded, not written to a queue); everything else
// combines its operands with a kind-specific, deterministic function salted
// by the op's effective ID, so unrolled replicas compute exactly the
// function of their original.
func Eval(op *Op, iter int, args []int64) int64 {
	if len(args) == 0 {
		return LeafValue(op.EffID(), iter)
	}
	salt := int64(mix64(uint64(op.EffID()) | uint64(op.Kind)<<32))
	a := args[0]
	b := salt
	if len(args) > 1 {
		b = args[1]
	}
	switch op.Kind {
	case KLoad:
		// Loads with an address operand return a function of the address.
		return int64(mix64(uint64(a))) ^ salt
	case KStore:
		return a
	case KAdd:
		return a + b + salt
	case KMul:
		return a*3 + b*5 + salt
	case KDiv:
		return a - b>>1 + salt
	case KCopy, KMove:
		return a
	}
	return a ^ b ^ salt
}
