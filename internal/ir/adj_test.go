package ir

import (
	"math/rand"
	"reflect"
	"testing"
)

// TestAdjMatchesDeps cross-checks the CSR adjacency views against a direct
// scan of the dependence list, including edge order, on random graphs.
func TestAdjMatchesDeps(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		l := New("adj")
		n := 1 + rng.Intn(12)
		for i := 0; i < n; i++ {
			l.AddOp(KAdd, "")
		}
		for e := rng.Intn(30); e > 0; e-- {
			l.AddDep(Dep{From: rng.Intn(n), To: rng.Intn(n), Dist: rng.Intn(3), Kind: DepKind(rng.Intn(3))})
		}
		preds, succs := l.Preds(), l.Succs()
		if preds.Len() != n || succs.Len() != n {
			t.Fatalf("view length %d/%d, want %d", preds.Len(), succs.Len(), n)
		}
		for id := 0; id < n; id++ {
			var wantP, wantS []Dep
			for _, d := range l.Deps {
				if d.To == id {
					wantP = append(wantP, d)
				}
				if d.From == id {
					wantS = append(wantS, d)
				}
			}
			if gotP := preds.At(id); !sameDeps(gotP, wantP) {
				t.Fatalf("preds(%d) = %v, want %v", id, gotP, wantP)
			}
			if gotS := succs.At(id); !sameDeps(gotS, wantS) {
				t.Fatalf("succs(%d) = %v, want %v", id, gotS, wantS)
			}
		}
	}
}

func sameDeps(a, b []Dep) bool {
	if len(a) != len(b) {
		return false
	}
	if len(a) == 0 {
		return true
	}
	return reflect.DeepEqual(a, b)
}

// TestAdjIntoReuse verifies the Into variants rebuild in place without
// allocating once the buffers have reached the graph's size.
func TestAdjIntoReuse(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation inflates allocation counts")
	}
	l := New("reuse")
	for i := 0; i < 8; i++ {
		l.AddOp(KAdd, "")
	}
	for i := 1; i < 8; i++ {
		l.AddDep(Dep{From: i - 1, To: i, Kind: Flow})
	}
	var preds, succs Adj
	l.PredsInto(&preds)
	l.SuccsInto(&succs)
	allocs := testing.AllocsPerRun(100, func() {
		l.PredsInto(&preds)
		l.SuccsInto(&succs)
	})
	if allocs != 0 {
		t.Errorf("adjacency rebuild allocates %.1f times, want 0", allocs)
	}
	if got := len(succs.At(3)); got != 1 {
		t.Fatalf("succs(3) has %d edges, want 1", got)
	}
}
