// Package ir defines the loop intermediate representation used throughout
// vliwq: operations, data-dependence graphs with loop-carried distances, and
// helpers to build, validate and inspect innermost loops.
//
// A Loop models the body of an innermost loop as a set of operations and a
// set of dependences. Each dependence carries an iteration distance: a
// distance of 0 is an intra-iteration dependence, a distance of d > 0 means
// the consumer in iteration k uses the value produced in iteration k-d
// (a loop-carried dependence). Cycles in the dependence graph must have a
// total distance of at least one; they are the recurrence circuits that
// bound the initiation interval of any modulo schedule.
package ir

import (
	"fmt"
	"sort"
)

// OpKind identifies the operation class. The class determines both the
// functional unit that executes the operation and its latency.
type OpKind uint8

// Operation kinds. KAdd stands in for the whole single-cycle ALU class
// (add, subtract, logical, compare); KDiv executes on the multiplier unit
// with a long latency, as in classic VLIW models.
const (
	KInvalid OpKind = iota
	KLoad           // memory load, executes on the L/S unit
	KStore          // memory store, executes on the L/S unit
	KAdd            // single-cycle ALU operation
	KMul            // multiply
	KDiv            // divide (multiplier unit, long latency)
	KCopy           // queue copy: read one queue, write up to two
	KMove           // inter-cluster move (extension, §5 of the paper)
	numKinds
)

var kindNames = [...]string{
	KInvalid: "invalid",
	KLoad:    "load",
	KStore:   "store",
	KAdd:     "add",
	KMul:     "mul",
	KDiv:     "div",
	KCopy:    "copy",
	KMove:    "move",
}

func (k OpKind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("OpKind(%d)", uint8(k))
}

// Valid reports whether k is a concrete operation kind.
func (k OpKind) Valid() bool { return k > KInvalid && k < numKinds }

// Latency returns the number of cycles between issuing an operation of this
// kind and its result becoming available. The values follow the classic
// latencies used in the iterative-modulo-scheduling literature; the paper
// does not publish its own table (see DESIGN.md §4).
func (k OpKind) Latency() int {
	switch k {
	case KLoad:
		return 2
	case KStore:
		return 1
	case KAdd:
		return 1
	case KMul:
		return 2
	case KDiv:
		return 8
	case KCopy:
		return 1
	case KMove:
		return 1
	}
	return 0
}

// HasResult reports whether operations of this kind produce a value that
// must be stored in a register or queue.
func (k OpKind) HasResult() bool { return k != KStore && k.Valid() }

// MaxInputs returns the maximum number of value operands an operation of
// this kind may read.
func (k OpKind) MaxInputs() int {
	switch k {
	case KLoad:
		return 1 // optional address operand
	case KStore:
		return 2 // value and optional address operand
	case KCopy, KMove:
		return 1
	default:
		return 2
	}
}

// Op is a single operation inside a loop body.
type Op struct {
	ID   int    // dense index into Loop.Ops
	Kind OpKind // operation class
	Name string // optional human-readable name (unique when set)

	// Orig and Phase track lineage through the unrolling pass so that a
	// replica computes exactly the same function of the iteration space as
	// the operation it was cloned from: Orig is the op ID in the
	// pre-unrolling loop (-1 for ops that were never replicated) and Phase
	// is the replica index within the unrolled body. Simulation maps the
	// instance (op, k) of an unrolled loop to original iteration
	// k*UnrollFactor + Phase.
	Orig  int
	Phase int
}

// EffID returns the identity used for operation semantics: the original op
// ID for unrolled replicas, the op's own ID otherwise.
func (o *Op) EffID() int {
	if o.Orig >= 0 {
		return o.Orig
	}
	return o.ID
}

func (o *Op) String() string {
	if o.Name != "" {
		return fmt.Sprintf("%s#%d(%s)", o.Kind, o.ID, o.Name)
	}
	return fmt.Sprintf("%s#%d", o.Kind, o.ID)
}

// DepKind classifies a dependence edge.
type DepKind uint8

const (
	// Flow is a true (read-after-write) dependence: the consumer reads the
	// value produced by the producer. Only flow dependences occupy queues
	// or registers.
	Flow DepKind = iota
	// Mem is a memory-ordering dependence (store/load aliasing); it
	// constrains the schedule but carries no value.
	Mem
	// Order is a generic ordering edge (anti/output); like Mem it carries
	// no value.
	Order
)

func (k DepKind) String() string {
	switch k {
	case Flow:
		return "flow"
	case Mem:
		return "mem"
	case Order:
		return "order"
	}
	return fmt.Sprintf("DepKind(%d)", uint8(k))
}

// Dep is a dependence edge between two operations. For a flow dependence,
// the consumer's instance in iteration k reads the value produced by the
// producer's instance in iteration k-Dist.
type Dep struct {
	From int     // producer op ID
	To   int     // consumer op ID
	Dist int     // iteration distance (omega); 0 = same iteration
	Kind DepKind // flow, mem or order
}

func (d Dep) String() string {
	return fmt.Sprintf("%d->%d dist=%d %s", d.From, d.To, d.Dist, d.Kind)
}

// Loop is the body of an innermost loop: operations plus dependences.
type Loop struct {
	Name string
	Ops  []*Op
	Deps []Dep
	// Trip is the iteration count assumed for dynamic metrics and for the
	// simulator. Zero means DefaultTrip.
	Trip int
	// Unroll is the unroll factor this body was produced with (0 or 1 for
	// a natural body). One iteration of an unrolled body covers Unroll
	// iterations of the original loop.
	Unroll int
}

// UnrollFactor returns the effective unroll factor (at least 1).
func (l *Loop) UnrollFactor() int {
	if l.Unroll > 1 {
		return l.Unroll
	}
	return 1
}

// OrigIter maps iteration k of this (possibly unrolled) body and an op to
// the iteration of the original loop that the op instance computes.
func (l *Loop) OrigIter(op *Op, k int) int {
	return k*l.UnrollFactor() + op.Phase
}

// DefaultTrip is the iteration count assumed when Loop.Trip is zero.
const DefaultTrip = 100

// TripCount returns the effective iteration count.
func (l *Loop) TripCount() int {
	if l.Trip > 0 {
		return l.Trip
	}
	return DefaultTrip
}

// New returns an empty loop with the given name.
func New(name string) *Loop { return &Loop{Name: name} }

// AddOp appends a new operation of the given kind and returns it.
func (l *Loop) AddOp(kind OpKind, name string) *Op {
	op := &Op{ID: len(l.Ops), Kind: kind, Name: name, Orig: -1}
	l.Ops = append(l.Ops, op)
	return op
}

// AddDep appends a dependence edge.
func (l *Loop) AddDep(d Dep) { l.Deps = append(l.Deps, d) }

// AddFlow appends an intra-iteration flow dependence from producer to
// consumer.
func (l *Loop) AddFlow(from, to *Op) { l.AddDep(Dep{From: from.ID, To: to.ID, Kind: Flow}) }

// AddCarried appends a loop-carried flow dependence with distance dist.
func (l *Loop) AddCarried(from, to *Op, dist int) {
	l.AddDep(Dep{From: from.ID, To: to.ID, Dist: dist, Kind: Flow})
}

// Op returns the operation with the given ID, or nil if out of range.
func (l *Loop) OpByID(id int) *Op {
	if id < 0 || id >= len(l.Ops) {
		return nil
	}
	return l.Ops[id]
}

// OpByName returns the first operation with the given name, or nil.
func (l *Loop) OpByName(name string) *Op {
	for _, op := range l.Ops {
		if op.Name == name {
			return op
		}
	}
	return nil
}

// NumOps returns the number of operations in the loop body.
func (l *Loop) NumOps() int { return len(l.Ops) }

// CountKind returns the number of operations of the given kind.
func (l *Loop) CountKind(k OpKind) int {
	n := 0
	for _, op := range l.Ops {
		if op.Kind == k {
			n++
		}
	}
	return n
}

// Clone returns a deep copy of the loop.
func (l *Loop) Clone() *Loop {
	c := &Loop{Name: l.Name, Trip: l.Trip, Unroll: l.Unroll}
	c.Ops = make([]*Op, len(l.Ops))
	for i, op := range l.Ops {
		cp := *op
		c.Ops[i] = &cp
	}
	c.Deps = make([]Dep, len(l.Deps))
	copy(c.Deps, l.Deps)
	return c
}

// FlowInputs returns the flow dependences feeding op, in the order they
// appear in l.Deps. This order defines the operand order everywhere
// (scheduling, allocation and simulation agree on it).
func (l *Loop) FlowInputs(op *Op) []Dep {
	var in []Dep
	for _, d := range l.Deps {
		if d.To == op.ID && d.Kind == Flow {
			in = append(in, d)
		}
	}
	return in
}

// FlowOutputs returns the flow dependences produced by op, in Deps order.
func (l *Loop) FlowOutputs(op *Op) []Dep {
	var out []Dep
	for _, d := range l.Deps {
		if d.From == op.ID && d.Kind == Flow {
			out = append(out, d)
		}
	}
	return out
}

// Fanout returns the number of flow dependences leaving op (the number of
// times its value is consumed per iteration).
func (l *Loop) Fanout(op *Op) int {
	n := 0
	for _, d := range l.Deps {
		if d.From == op.ID && d.Kind == Flow {
			n++
		}
	}
	return n
}

// MaxFanout returns the largest fanout of any value in the loop.
func (l *Loop) MaxFanout() int {
	max := 0
	for _, op := range l.Ops {
		if f := l.Fanout(op); f > max {
			max = f
		}
	}
	return max
}

// Adj is a compressed sparse row (CSR) adjacency view of a loop's
// dependence edges: one flat offset array plus one backing edge array,
// instead of a slice-of-slices. Per-op edge lists preserve Deps order.
// The view is a snapshot — it does not track later loop mutations.
type Adj struct {
	off  []int32
	deps []Dep
}

// At returns the edges of op id. The returned slice aliases the CSR backing
// array and must not be appended to or retained across a rebuild.
func (a *Adj) At(id int) []Dep {
	return a.deps[a.off[id]:a.off[id+1]]
}

// Len returns the number of ops the view covers.
func (a *Adj) Len() int { return len(a.off) - 1 }

// Preds returns a CSR view of the dependences entering each op.
func (l *Loop) Preds() Adj {
	var a Adj
	l.PredsInto(&a)
	return a
}

// Succs returns a CSR view of the dependences leaving each op.
func (l *Loop) Succs() Adj {
	var a Adj
	l.SuccsInto(&a)
	return a
}

// PredsInto rebuilds a as the predecessor view, reusing its storage.
func (l *Loop) PredsInto(a *Adj) { l.adjInto(a, false) }

// SuccsInto rebuilds a as the successor view, reusing its storage.
func (l *Loop) SuccsInto(a *Adj) { l.adjInto(a, true) }

func (l *Loop) adjInto(a *Adj, bySource bool) {
	n := len(l.Ops)
	if cap(a.off) < n+1 {
		a.off = make([]int32, n+1)
	} else {
		a.off = a.off[:n+1]
		for i := range a.off {
			a.off[i] = 0
		}
	}
	if cap(a.deps) < len(l.Deps) {
		a.deps = make([]Dep, len(l.Deps))
	} else {
		a.deps = a.deps[:len(l.Deps)]
	}
	key := func(d Dep) int {
		if bySource {
			return d.From
		}
		return d.To
	}
	// Counting sort: bucket counts, prefix-sum to starts, stable fill (the
	// cursor pass turns starts into ends), then shift ends back to offsets.
	for _, d := range l.Deps {
		a.off[key(d)+1]++
	}
	for i := 1; i <= n; i++ {
		a.off[i] += a.off[i-1]
	}
	for _, d := range l.Deps {
		k := key(d)
		a.deps[a.off[k]] = d
		a.off[k]++
	}
	for i := n; i > 0; i-- {
		a.off[i] = a.off[i-1]
	}
	a.off[0] = 0
}

// SumLatency returns the sum of all operation latencies; it is a safe upper
// bound for any achievable II.
func (l *Loop) SumLatency() int {
	sum := 0
	for _, op := range l.Ops {
		sum += op.Kind.Latency()
	}
	return sum
}

// TopoOrder returns the op IDs in a topological order of the
// zero-distance subgraph. It returns an error if the zero-distance subgraph
// contains a cycle (which would make the loop unexecutable). The successor
// lists live in one flat CSR array rather than a slice per op, keeping the
// check cheap on the scheduling hot path.
func (l *Loop) TopoOrder() ([]int, error) {
	n := len(l.Ops)
	indeg := make([]int, n)
	off := make([]int32, n+1)
	for _, d := range l.Deps {
		if d.Dist == 0 {
			off[d.From+1]++
			indeg[d.To]++
		}
	}
	for i := 1; i <= n; i++ {
		off[i] += off[i-1]
	}
	flat := make([]int32, off[n])
	for _, d := range l.Deps {
		if d.Dist == 0 {
			flat[off[d.From]] = int32(d.To)
			off[d.From]++
		}
	}
	for i := n; i > 0; i-- {
		off[i] = off[i-1]
	}
	off[0] = 0
	// Deterministic order: smallest ready ID first.
	ready := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			ready = append(ready, i)
		}
	}
	sort.Ints(ready)
	order := make([]int, 0, n)
	for len(ready) > 0 {
		id := ready[0]
		ready = ready[1:]
		order = append(order, id)
		inserted := false
		for _, s := range flat[off[id]:off[id+1]] {
			indeg[s]--
			if indeg[s] == 0 {
				ready = append(ready, int(s))
				inserted = true
			}
		}
		if inserted {
			sort.Ints(ready)
		}
	}
	if len(order) != n {
		return nil, fmt.Errorf("ir: loop %q has a zero-distance dependence cycle", l.Name)
	}
	return order, nil
}
