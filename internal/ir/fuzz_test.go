package ir

import (
	"strings"
	"testing"
)

// FuzzParseLoop fuzzes the loop text parser — the service's other trust
// boundary besides ParseMachine. The invariant is crash-freedom plus a
// canonical round-trip: anything Parse accepts, Format must render into
// text that reparses and reformats to the identical bytes. (Loops parsed
// without a `loop` header have no name and format as "loop \n", which the
// parser rightly rejects; the round-trip check applies to named loops.)
func FuzzParseLoop(f *testing.F) {
	f.Add("loop daxpy\ntrip 200\nop a load\nop x load\nop m mul a\nop s add m x\nop st store s\n")
	f.Add("loop rec\ntrip 64\nop a load\nop s add a\nop st store s\ncarried s s 1\n")
	f.Add("loop memdep\ntrip 8\nop a load\nop st store a\nmem st a 1\norder st a 0\n")
	f.Add("# only a comment\n")
	f.Add("loop x\ntrip 0\n")
	f.Add("op dup load\nop dup load\n")
	f.Add("loop x\nop a add b\n")
	f.Add(strings.Repeat("op a load\n", 2))
	f.Fuzz(func(t *testing.T, src string) {
		l, err := ParseString(src)
		if err != nil {
			return
		}
		out := FormatString(l)
		if l.Name == "" {
			return
		}
		l2, err := ParseString(out)
		if err != nil {
			t.Fatalf("formatted loop does not reparse: %v\ninput: %q\nformatted: %q", err, src, out)
		}
		if again := FormatString(l2); again != out {
			t.Fatalf("format not canonical:\nfirst:  %q\nsecond: %q", out, again)
		}
	})
}
