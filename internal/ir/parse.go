package ir

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Text loop format, used by cmd/vliwsched and the examples:
//
//	# comment
//	loop daxpy
//	trip 200
//	op a  load            # leaf load
//	op x  load
//	op m  mul a           # operands are names of earlier ops (flow, dist 0)
//	op s  add m x
//	op st store s
//	carried s m 1         # loop-carried flow dep, distance 1
//	mem st a 1            # memory ordering dep
//	order st st2 0        # generic ordering dep
//
// One loop per stream. Operand references create intra-iteration flow
// dependences in the listed order.

// Parse reads a loop in the text format from r.
func Parse(r io.Reader) (*Loop, error) {
	l := New("")
	sc := bufio.NewScanner(r)
	lineNo := 0
	byName := map[string]*Op{}
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		fail := func(format string, args ...any) error {
			return fmt.Errorf("ir: line %d: %s", lineNo, fmt.Sprintf(format, args...))
		}
		switch fields[0] {
		case "loop":
			if len(fields) != 2 {
				return nil, fail("loop needs exactly one name")
			}
			l.Name = fields[1]
		case "trip":
			if len(fields) != 2 {
				return nil, fail("trip needs exactly one count")
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n <= 0 {
				return nil, fail("bad trip count %q", fields[1])
			}
			l.Trip = n
		case "op":
			if len(fields) < 3 {
				return nil, fail("op needs a name and a kind")
			}
			name := fields[1]
			if _, dup := byName[name]; dup {
				return nil, fail("duplicate op name %q", name)
			}
			kind, ok := parseKind(fields[2])
			if !ok {
				return nil, fail("unknown op kind %q", fields[2])
			}
			op := l.AddOp(kind, name)
			byName[name] = op
			for _, operand := range fields[3:] {
				src, ok := byName[operand]
				if !ok {
					return nil, fail("unknown operand %q", operand)
				}
				l.AddFlow(src, op)
			}
		case "carried", "mem", "order":
			if len(fields) != 4 {
				return nil, fail("%s needs <from> <to> <dist>", fields[0])
			}
			from, ok := byName[fields[1]]
			if !ok {
				return nil, fail("unknown op %q", fields[1])
			}
			to, ok := byName[fields[2]]
			if !ok {
				return nil, fail("unknown op %q", fields[2])
			}
			dist, err := strconv.Atoi(fields[3])
			if err != nil || dist < 0 {
				return nil, fail("bad distance %q", fields[3])
			}
			kind := Flow
			switch fields[0] {
			case "mem":
				kind = Mem
			case "order":
				kind = Order
			}
			if kind == Flow && dist == 0 {
				return nil, fail("carried distance must be >= 1 (use op operands for dist 0)")
			}
			l.AddDep(Dep{From: from.ID, To: to.ID, Dist: dist, Kind: kind})
		default:
			return nil, fail("unknown directive %q", fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("ir: reading loop: %w", err)
	}
	if err := l.Validate(); err != nil {
		return nil, err
	}
	return l, nil
}

// ParseString parses a loop from a string.
func ParseString(s string) (*Loop, error) { return Parse(strings.NewReader(s)) }

func parseKind(s string) (OpKind, bool) {
	switch s {
	case "load":
		return KLoad, true
	case "store":
		return KStore, true
	case "add", "sub", "alu", "cmp":
		return KAdd, true
	case "mul":
		return KMul, true
	case "div":
		return KDiv, true
	case "copy":
		return KCopy, true
	case "move":
		return KMove, true
	}
	return KInvalid, false
}

// Format writes the loop back in the text format. Flow dependences with
// distance zero become operand lists; everything else becomes explicit
// directives. Ops without names are given op<ID> names.
func Format(w io.Writer, l *Loop) error {
	bw := bufio.NewWriter(w)
	name := func(op *Op) string {
		if op.Name != "" {
			return op.Name
		}
		return fmt.Sprintf("op%d", op.ID)
	}
	fmt.Fprintf(bw, "loop %s\n", l.Name)
	if l.Trip > 0 {
		fmt.Fprintf(bw, "trip %d\n", l.Trip)
	}
	for _, op := range l.Ops {
		fmt.Fprintf(bw, "op %s %s", name(op), op.Kind)
		for _, d := range l.FlowInputs(op) {
			if d.Dist == 0 {
				fmt.Fprintf(bw, " %s", name(l.Ops[d.From]))
			}
		}
		fmt.Fprintln(bw)
	}
	for _, d := range l.Deps {
		switch {
		case d.Kind == Flow && d.Dist > 0:
			fmt.Fprintf(bw, "carried %s %s %d\n", name(l.Ops[d.From]), name(l.Ops[d.To]), d.Dist)
		case d.Kind == Mem:
			fmt.Fprintf(bw, "mem %s %s %d\n", name(l.Ops[d.From]), name(l.Ops[d.To]), d.Dist)
		case d.Kind == Order:
			fmt.Fprintf(bw, "order %s %s %d\n", name(l.Ops[d.From]), name(l.Ops[d.To]), d.Dist)
		}
	}
	return bw.Flush()
}

// FormatString returns the loop in the text format.
func FormatString(l *Loop) string {
	var b strings.Builder
	if err := Format(&b, l); err != nil {
		return ""
	}
	return b.String()
}
