package ir

import (
	"errors"
	"strings"
	"testing"
)

func chain(t *testing.T) *Loop {
	t.Helper()
	l := New("chain")
	a := l.AddOp(KLoad, "a")
	b := l.AddOp(KMul, "b")
	l.AddFlow(a, b)
	c := l.AddOp(KStore, "c")
	l.AddFlow(b, c)
	return l
}

func TestValidateAcceptsChain(t *testing.T) {
	if err := chain(t).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Loop)
		want error
	}{
		{"empty", func(l *Loop) { l.Ops = nil }, ErrEmptyLoop},
		{"bad-dep-target", func(l *Loop) { l.Deps[0].To = 99 }, ErrBadOpID},
		{"negative-dist", func(l *Loop) { l.Deps[0].Dist = -1 }, ErrNegativeDist},
		{"self-dep", func(l *Loop) { l.AddDep(Dep{From: 1, To: 1, Kind: Flow}) }, ErrSelfDep},
		{"store-produces", func(l *Loop) { l.AddDep(Dep{From: 2, To: 1, Kind: Flow}) }, ErrStoreProduces},
		{"bad-kind", func(l *Loop) { l.Ops[0].Kind = KInvalid }, ErrBadKind},
		{"too-many-inputs", func(l *Loop) {
			d := l.AddOp(KLoad, "d")
			l.AddFlow(d, l.Ops[1])
			e := l.AddOp(KLoad, "e")
			l.AddFlow(e, l.Ops[1])
		}, ErrTooManyInputs},
		{"zero-cycle", func(l *Loop) {
			l.AddDep(Dep{From: 1, To: 0, Kind: Flow}) // b -> a closes a 0-dist cycle
		}, ErrZeroDistCycle},
	}
	for _, c := range cases {
		l := chain(t)
		c.mut(l)
		if err := l.Validate(); !errors.Is(err, c.want) {
			t.Errorf("%s: got %v, want %v", c.name, err, c.want)
		}
	}
}

func TestValidateAllowsCarriedCycle(t *testing.T) {
	l := chain(t)
	l.AddDep(Dep{From: 1, To: 1, Dist: 1, Kind: Flow}) // carried self-recurrence
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTopoOrderRespectsDeps(t *testing.T) {
	l := chain(t)
	order, err := l.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := make([]int, len(l.Ops))
	for i, id := range order {
		pos[id] = i
	}
	for _, d := range l.Deps {
		if d.Dist == 0 && pos[d.From] >= pos[d.To] {
			t.Fatalf("topo order violates %v", d)
		}
	}
}

func TestLatencies(t *testing.T) {
	want := map[OpKind]int{KLoad: 2, KStore: 1, KAdd: 1, KMul: 2, KDiv: 8, KCopy: 1, KMove: 1}
	for k, lat := range want {
		if got := k.Latency(); got != lat {
			t.Errorf("%v latency = %d, want %d", k, got, lat)
		}
	}
	if KInvalid.Latency() != 0 {
		t.Error("invalid kind must have zero latency")
	}
}

func TestFanoutAndFlowIO(t *testing.T) {
	l := New("fan")
	a := l.AddOp(KLoad, "a")
	b := l.AddOp(KAdd, "b")
	c := l.AddOp(KAdd, "c")
	l.AddFlow(a, b)
	l.AddFlow(a, c)
	s1 := l.AddOp(KStore, "s1")
	l.AddFlow(b, s1)
	s2 := l.AddOp(KStore, "s2")
	l.AddFlow(c, s2)
	if got := l.Fanout(a); got != 2 {
		t.Fatalf("fanout(a) = %d, want 2", got)
	}
	if got := l.MaxFanout(); got != 2 {
		t.Fatalf("MaxFanout = %d, want 2", got)
	}
	if got := len(l.FlowInputs(b)); got != 1 {
		t.Fatalf("FlowInputs(b) = %d, want 1", got)
	}
	if got := len(l.FlowOutputs(a)); got != 2 {
		t.Fatalf("FlowOutputs(a) = %d, want 2", got)
	}
}

func TestCloneIsDeep(t *testing.T) {
	l := chain(t)
	l.Trip = 7
	c := l.Clone()
	c.Ops[0].Kind = KDiv
	c.Deps[0].Dist = 3
	c.AddOp(KAdd, "new")
	if l.Ops[0].Kind != KLoad || l.Deps[0].Dist != 0 || len(l.Ops) != 3 {
		t.Fatal("clone shares state with the original")
	}
	if c.Trip != 7 {
		t.Fatal("clone lost trip count")
	}
}

func TestParseRoundTrip(t *testing.T) {
	src := `# horner-like kernel
loop daxpy
trip 200
op a load
op x load
op y load
op m mul a
op s add m y
op st store s
carried s m 1
mem st a 1
`
	l, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	if l.Name != "daxpy" || l.Trip != 200 || len(l.Ops) != 6 {
		t.Fatalf("parsed loop wrong: %s trip=%d ops=%d", l.Name, l.Trip, len(l.Ops))
	}
	// Round-trip: format and re-parse must be structurally identical.
	text := FormatString(l)
	l2, err := ParseString(text)
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, text)
	}
	if len(l2.Ops) != len(l.Ops) || len(l2.Deps) != len(l.Deps) || l2.Trip != l.Trip {
		t.Fatalf("round trip changed shape:\n%s", text)
	}
	for i := range l.Ops {
		if l.Ops[i].Kind != l2.Ops[i].Kind {
			t.Fatalf("op %d kind changed", i)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, frag string
	}{
		{"unknown-kind", "op a frobnicate", "unknown op kind"},
		{"unknown-operand", "op a add zzz", "unknown operand"},
		{"dup-name", "op a load\nop a load", "duplicate"},
		{"bad-trip", "trip x", "bad trip"},
		{"bad-directive", "frob a b", "unknown directive"},
		{"carried-zero", "op a add\nop b add a\ncarried a b 0", "distance must be >= 1"},
		{"carried-unknown", "op a add\ncarried a zz 1", "unknown op"},
	}
	for _, c := range cases {
		if _, err := ParseString(c.src); err == nil || !strings.Contains(err.Error(), c.frag) {
			t.Errorf("%s: got %v, want error containing %q", c.name, err, c.frag)
		}
	}
}

func TestWriteDot(t *testing.T) {
	var b strings.Builder
	l := chain(t)
	l.AddDep(Dep{From: 1, To: 1, Dist: 2, Kind: Flow})
	if err := WriteDot(&b, l); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, frag := range []string{"digraph", "n0 -> n1", `label="2"`} {
		if !strings.Contains(out, frag) {
			t.Errorf("DOT output missing %q:\n%s", frag, out)
		}
	}
}

func TestEvalDeterminismAndSensitivity(t *testing.T) {
	l := chain(t)
	mul := l.Ops[1]
	a := Eval(mul, 3, []int64{10, 20})
	b := Eval(mul, 3, []int64{10, 20})
	if a != b {
		t.Fatal("Eval not deterministic")
	}
	if Eval(mul, 3, []int64{20, 10}) == a {
		t.Fatal("Eval(mul) should be operand-order sensitive")
	}
	if LeafValue(1, 0) == LeafValue(1, 1) || LeafValue(1, 0) == LeafValue(2, 0) {
		t.Fatal("LeafValue collisions across id/iter")
	}
	if LeafValue(1, -1) == LeafValue(1, 1) {
		t.Fatal("LeafValue must distinguish negative iterations")
	}
}

func TestOrigIterMapping(t *testing.T) {
	l := New("u")
	op := l.AddOp(KAdd, "a")
	op.Phase = 2
	l.Unroll = 4
	if got := l.OrigIter(op, 3); got != 14 {
		t.Fatalf("OrigIter = %d, want 14", got)
	}
	if got := l.OrigIter(op, -1); got != -2 {
		t.Fatalf("OrigIter(-1) = %d, want -2", got)
	}
}

func TestEffID(t *testing.T) {
	l := New("e")
	a := l.AddOp(KAdd, "a")
	if a.EffID() != a.ID {
		t.Fatal("unlineaged op must use its own ID")
	}
	a.Orig = 7
	if a.EffID() != 7 {
		t.Fatal("lineaged op must use Orig")
	}
}

func TestKindStringAndValid(t *testing.T) {
	if KLoad.String() != "load" || KCopy.String() != "copy" {
		t.Fatal("kind names wrong")
	}
	if KInvalid.Valid() || !KMove.Valid() {
		t.Fatal("Valid() wrong")
	}
	if OpKind(250).String() == "" {
		t.Fatal("out-of-range kind must still print")
	}
}
