package ir_test

import (
	"fmt"
	"testing"

	"vliwq/internal/corpus"
	"vliwq/internal/ir"
)

// permute returns a spelling of l with its statements reordered by a
// deterministic shuffle: op i moves to position perm[i], and the dep list
// keeps its original sequence with remapped endpoints (so every consumer's
// operand order is preserved).
func permute(l *ir.Loop, seed uint64) (*ir.Loop, []int) {
	n := len(l.Ops)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	state := seed
	for i := n - 1; i > 0; i-- {
		state = state*6364136223846793005 + 1442695040888963407
		j := int((state >> 33) % uint64(i+1))
		perm[i], perm[j] = perm[j], perm[i]
	}
	p := &ir.Loop{Name: l.Name, Trip: l.Trip, Unroll: l.Unroll, Ops: make([]*ir.Op, n)}
	for i, op := range l.Ops {
		cp := *op
		cp.ID = perm[i]
		p.Ops[perm[i]] = &cp
	}
	for _, d := range l.Deps {
		p.Deps = append(p.Deps, ir.Dep{From: perm[d.From], To: perm[d.To], Dist: d.Dist, Kind: d.Kind})
	}
	return p, perm
}

// depKeys flattens a loop's dependences into name-based strings (producer,
// consumer, distance, kind, operand slot), the statement-order-free
// semantic content AlignLike must preserve. Every op must be named.
func depKeys(l *ir.Loop) map[string]int {
	type ck struct {
		to   int
		kind ir.DepKind
	}
	slotSeen := make(map[ck]int)
	keys := make(map[string]int)
	for _, d := range l.Deps {
		k := ck{d.To, d.Kind}
		s := slotSeen[k]
		slotSeen[k]++
		keys[fmt.Sprintf("%s>%s:%d:%d:%d", l.Ops[d.From].Name, l.Ops[d.To].Name, d.Dist, d.Kind, s)]++
	}
	return keys
}

func nameAll(l *ir.Loop) *ir.Loop {
	c := l.Clone()
	for i, op := range c.Ops {
		op.Name = fmt.Sprintf("n%d", i)
	}
	return c
}

func TestAlignLikeRecoversPermutations(t *testing.T) {
	loops := corpus.Generate(corpus.Params{Seed: 7, N: 40})
	aligned := 0
	for li, raw := range loops {
		orig := nameAll(raw)
		perm, _ := permute(orig, uint64(li)*2654435761+1)
		if len(orig.Ops) > 1 && ir.Skeleton(perm) == ir.Skeleton(orig) {
			continue // shuffle was the identity; nothing to align
		}
		if ir.Fingerprint(perm) != ir.Fingerprint(orig) {
			// WL could not fully split a symmetric body, so the permuted
			// spelling lands in a different fingerprint class and the
			// serving stack never attempts an alignment. Skip: AlignLike's
			// contract only covers fingerprint-equal spellings.
			continue
		}
		got, ok := ir.AlignLike(perm, orig)
		if !ok {
			t.Fatalf("loop %d: AlignLike failed on a fingerprint-equal permutation", li)
		}
		aligned++
		if ir.Skeleton(got) != ir.Skeleton(orig) {
			t.Fatalf("loop %d: aligned skeleton differs from target", li)
		}
		if got.Name != perm.Name {
			t.Fatalf("loop %d: aligned loop lost its name", li)
		}
		want := depKeys(perm)
		have := depKeys(got)
		if len(want) != len(have) {
			t.Fatalf("loop %d: aligned dep set changed size", li)
		}
		for k, c := range want {
			if have[k] != c {
				t.Fatalf("loop %d: aligned loop lost dependence %s", li, k)
			}
		}
	}
	if aligned == 0 {
		t.Fatal("no permutation exercised AlignLike")
	}
}

func TestAlignLikeRefusals(t *testing.T) {
	a := ir.New("a")
	x := a.AddOp(ir.KAdd, "x")
	y := a.AddOp(ir.KAdd, "y")
	a.AddFlow(x, y)

	// Different dependence structure, same op multiset.
	b := ir.New("b")
	u := b.AddOp(ir.KAdd, "u")
	v := b.AddOp(ir.KAdd, "v")
	b.AddCarried(u, v, 1)
	if _, ok := ir.AlignLike(a, b); ok {
		t.Fatal("aligned structurally different loops")
	}

	// Different op counts.
	c := ir.New("c")
	c.AddOp(ir.KAdd, "w")
	if _, ok := ir.AlignLike(a, c); ok {
		t.Fatal("aligned loops of different size")
	}

	// Different trip counts.
	d := ir.New("d")
	dx := d.AddOp(ir.KAdd, "x")
	dy := d.AddOp(ir.KAdd, "y")
	d.AddFlow(dx, dy)
	d.Trip = a.TripCount() + 1
	if _, ok := ir.AlignLike(a, d); ok {
		t.Fatal("aligned loops with different trip counts")
	}

	// Unroll lineage refused: alignment is for raw spellings only.
	e := a.Clone()
	e.Ops[0].Orig = 0
	if _, ok := ir.AlignLike(e, e); ok {
		t.Fatal("aligned a loop carrying unroll lineage")
	}

	// Same fingerprint class, identical order: alignment is the identity.
	got, ok := ir.AlignLike(a, a)
	if !ok {
		t.Fatal("failed to align a loop with itself")
	}
	if ir.Skeleton(got) != ir.Skeleton(a) {
		t.Fatal("self-alignment changed the skeleton")
	}
}
