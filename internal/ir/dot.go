package ir

import (
	"fmt"
	"io"
	"strings"
)

// WriteDot renders the dependence graph in Graphviz DOT format. Flow
// dependences are solid, memory dependences dashed, ordering dependences
// dotted; loop-carried edges are labeled with their distance.
func WriteDot(w io.Writer, l *Loop) error {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", l.Name)
	b.WriteString("  rankdir=TB;\n  node [shape=box, fontname=\"monospace\"];\n")
	for _, op := range l.Ops {
		label := fmt.Sprintf("%d: %s", op.ID, op.Kind)
		if op.Name != "" {
			label = fmt.Sprintf("%s\\n%s", op.Name, op.Kind)
		}
		fmt.Fprintf(&b, "  n%d [label=\"%s\"];\n", op.ID, label)
	}
	for _, d := range l.Deps {
		style := "solid"
		switch d.Kind {
		case Mem:
			style = "dashed"
		case Order:
			style = "dotted"
		}
		if d.Dist > 0 {
			fmt.Fprintf(&b, "  n%d -> n%d [style=%s, label=\"%d\", constraint=false];\n",
				d.From, d.To, style, d.Dist)
		} else {
			fmt.Fprintf(&b, "  n%d -> n%d [style=%s];\n", d.From, d.To, style)
		}
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}
