package ir

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
)

// Structural fingerprinting: a deterministic canonical-labeling pass over
// the dependence graph, so that two loops that differ only in operand
// naming — or, more aggressively, in statement numbering — hash to the
// same isomorphism-class key. The serving stack keys its second-level
// (structural) compile cache on Fingerprint and uses Skeleton equality as
// the remap precondition: equal skeletons mean the pipeline treats the two
// loops identically in every way except the names it prints, which is
// exactly the property that makes a cached schedule safely renameable
// (see DESIGN.md §12).

// Skeleton returns the name-free structural encoding of the loop in given
// statement order: operation kinds (with unroll lineage), the exact
// dependence sequence, and the effective trip count and unroll factor.
// Everything the compilation pipeline reads is in the skeleton; the only
// loop content outside it is the loop name and the operation names. Two
// loops with equal skeletons therefore compile to schedules that are
// byte-identical after renaming — the invariant the structural cache's
// remap step relies on.
//
// Skeleton is order-sensitive: permuting statements changes it even when
// the loops stay isomorphic. That is deliberate — the scheduler's
// tie-breaking is ID-based, so a permuted body may legitimately schedule
// differently, and serving it a remapped schedule would break the
// fresh-compile byte-identity guarantee. Fingerprint, by contrast, is
// permutation-invariant; the serving stack bridges the gap by aligning a
// permuted spelling onto the cached class leader's statement order with
// AlignLike (counted structural.reordered) and falls back to a fresh
// compile only when no alignment exists (structural.renumbered).
func Skeleton(l *Loop) string {
	var b strings.Builder
	b.Grow(16 * (len(l.Ops) + len(l.Deps)))
	fmt.Fprintf(&b, "sk1;t=%d;u=%d;n=%d;", l.TripCount(), l.Unroll, len(l.Ops))
	for _, op := range l.Ops {
		fmt.Fprintf(&b, "%d:%d:%d,", op.Kind, op.Orig, op.Phase)
	}
	b.WriteByte(';')
	for _, d := range l.Deps {
		fmt.Fprintf(&b, "%d>%d:%d:%d,", d.From, d.To, d.Dist, d.Kind)
	}
	return b.String()
}

// Fingerprint returns a deterministic hex digest of the loop's dependence
// structure up to operand renaming and node renumbering: the
// isomorphism-class key of the structural compile cache. Names never enter
// the hash; statement order enters only through each dependence's operand
// slot (operand order is semantic — `sub a b` and `sub b a` are different
// loops — so it is preserved, while the numbering of the statements
// themselves is canonicalized away).
//
// The labeling is Weisfeiler-Lehman-style color refinement: every op
// starts from a color derived from its kind and unroll lineage, and each
// round folds in the multiset of (direction, dep kind, distance, operand
// slot, neighbor color) edge signatures until the color partition stops
// refining. Residual ties are broken by statement order, which keeps the
// pass linear-ish and deterministic; for the rare graphs WL cannot fully
// split (highly symmetric bodies) two isomorphic spellings may then hash
// differently. That costs a missed structural hit, never a wrong one —
// hits are verified against the exact Skeleton before any schedule is
// reused.
func Fingerprint(l *Loop) string {
	n := len(l.Ops)
	colors, slot := wlRefine(l)

	// Canonical order: by final color, residual ties by statement order.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return colors[order[a]] < colors[order[b]] })
	canon := make([]int, n) // canon[id] = canonical index
	for ci, id := range order {
		canon[id] = ci
	}

	// Serialize the canonically relabeled skeleton and hash it.
	var b strings.Builder
	b.Grow(16 * (n + len(l.Deps)))
	fmt.Fprintf(&b, "fp1;t=%d;u=%d;n=%d;", l.TripCount(), l.Unroll, n)
	for _, id := range order {
		op := l.Ops[id]
		fmt.Fprintf(&b, "%d:%d:%d,", op.Kind, op.Orig, op.Phase)
	}
	b.WriteByte(';')
	edges := make([]string, len(l.Deps))
	for i, d := range l.Deps {
		edges[i] = fmt.Sprintf("%d>%d:%d:%d:%d", canon[d.From], canon[d.To], d.Dist, d.Kind, slot[i])
	}
	sort.Strings(edges)
	for _, e := range edges {
		b.WriteString(e)
		b.WriteByte(',')
	}
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:])
}

// wlRefine runs the Weisfeiler-Lehman color refinement shared by
// Fingerprint and AlignLike. It returns the stable per-op colors and each
// dependence's operand slot: its index among the deps of the same kind
// entering the same consumer, the order FlowInputs exposes.
func wlRefine(l *Loop) (colors []uint64, slot []int) {
	n := len(l.Ops)
	slot = make([]int, len(l.Deps))
	{
		type ck struct {
			to   int
			kind DepKind
		}
		seen := make(map[ck]int, len(l.Deps))
		for i, d := range l.Deps {
			k := ck{d.To, d.Kind}
			slot[i] = seen[k]
			seen[k]++
		}
	}

	colors = make([]uint64, n)
	for i, op := range l.Ops {
		colors[i] = fpMix(0x9e3779b97f4a7c15 ^ uint64(op.Kind)<<32 ^
			uint64(uint32(op.Orig))<<8 ^ uint64(uint32(op.Phase)))
	}

	next := make([]uint64, n)
	sigs := make([][]uint64, n)
	distinct := countDistinct(colors)
	for round := 0; round < n; round++ {
		for i := range sigs {
			sigs[i] = sigs[i][:0]
		}
		for i, d := range l.Deps {
			edge := fpMix(uint64(d.Kind)<<48 ^ uint64(uint32(d.Dist))<<16 ^ uint64(uint32(slot[i])))
			// The consumer sees the producer's color and vice versa, tagged
			// with the direction so in- and out-edges cannot cancel out.
			sigs[d.To] = append(sigs[d.To], fpMix(edge^0xa5a5a5a5^colors[d.From]))
			sigs[d.From] = append(sigs[d.From], fpMix(edge^0x5a5a5a5a5a^colors[d.To]))
		}
		for i := range next {
			s := sigs[i]
			sort.Slice(s, func(a, b int) bool { return s[a] < s[b] })
			h := colors[i]
			for _, v := range s {
				h = fpMix(h ^ v)
			}
			next[i] = h
		}
		copy(colors, next)
		nd := countDistinct(colors)
		if nd == distinct {
			break // partition stable: further rounds cannot refine it
		}
		distinct = nd
	}
	return colors, slot
}

// fpMix is the splitmix64 finalizer: a cheap bijective avalanche used to
// combine color-refinement signatures.
func fpMix(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

func countDistinct(colors []uint64) int {
	seen := make(map[uint64]struct{}, len(colors))
	for _, c := range colors {
		seen[c] = struct{}{}
	}
	return len(seen)
}
