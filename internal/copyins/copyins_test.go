package copyins

import (
	"testing"

	"vliwq/internal/corpus"
	"vliwq/internal/ir"
	"vliwq/internal/sim"
)

func TestInsertSingleConsumerUntouched(t *testing.T) {
	l := corpus.Daxpy() // straight chain, fanout 1 everywhere
	res, err := Insert(l, Tree)
	if err != nil {
		t.Fatal(err)
	}
	if res.CopiesAdded != 0 || res.ValuesFanned != 0 {
		t.Fatalf("chain loop got %d copies", res.CopiesAdded)
	}
	if len(res.Loop.Ops) != len(l.Ops) {
		t.Fatal("op count changed")
	}
}

// TestInsertFanoutProperty: after insertion every value has at most one
// consumer, except copies which have at most two.
func TestInsertFanoutProperty(t *testing.T) {
	loops := append(corpus.Kernels(), corpus.Generate(corpus.Params{Seed: 31, N: 80})...)
	for _, shape := range []Shape{Tree, Chain} {
		for _, l := range loops {
			res, err := Insert(l, shape)
			if err != nil {
				t.Fatalf("%s: %v", l.Name, err)
			}
			for _, op := range res.Loop.Ops {
				fan := res.Loop.Fanout(op)
				limit := 1
				if op.Kind == ir.KCopy {
					limit = 2
				}
				if fan > limit {
					t.Fatalf("%s (%v): %v has fanout %d after insertion", l.Name, shape, op, fan)
				}
			}
		}
	}
}

// TestInsertCopyCount: a value with n consumers needs exactly n-1 copies
// (every copy has two outputs; the producer keeps one write).
func TestInsertCopyCount(t *testing.T) {
	for n := 2; n <= 9; n++ {
		l := ir.New("fan")
		src := l.AddOp(ir.KLoad, "src")
		for i := 0; i < n; i++ {
			st := l.AddOp(ir.KStore, "")
			l.AddFlow(src, st)
		}
		for _, shape := range []Shape{Tree, Chain} {
			res, err := Insert(l, shape)
			if err != nil {
				t.Fatalf("n=%d %v: %v", n, shape, err)
			}
			if res.CopiesAdded != n-1 {
				t.Errorf("n=%d %v: %d copies, want %d", n, shape, res.CopiesAdded, n-1)
			}
		}
	}
}

// TestTreeDepthBeatsChain: the balanced tree adds O(log n) latency to the
// farthest consumer while the chain adds O(n).
func TestTreeDepthBeatsChain(t *testing.T) {
	const n = 8
	l := ir.New("fan8")
	src := l.AddOp(ir.KLoad, "src")
	for i := 0; i < n; i++ {
		st := l.AddOp(ir.KStore, "")
		l.AddFlow(src, st)
	}
	depth := func(shape Shape) int {
		res, err := Insert(l, shape)
		if err != nil {
			t.Fatal(err)
		}
		// Longest zero-distance path from src to any store, in copy hops.
		lp := make([]int, len(res.Loop.Ops))
		order, err := res.Loop.TopoOrder()
		if err != nil {
			t.Fatal(err)
		}
		maxd := 0
		for _, id := range order {
			for _, d := range res.Loop.FlowInputs(res.Loop.Ops[id]) {
				if lp[d.From]+1 > lp[id] {
					lp[id] = lp[d.From] + 1
				}
			}
			if lp[id] > maxd {
				maxd = lp[id]
			}
		}
		return maxd
	}
	dt, dc := depth(Tree), depth(Chain)
	if dt >= dc {
		t.Fatalf("tree depth %d not better than chain depth %d", dt, dc)
	}
	if dt > 4 { // 1 (root copy) + ceil(log2 8) = 4
		t.Fatalf("tree depth %d exceeds log bound", dt)
	}
}

// TestInsertPreservesSemantics: copies are identity operations, so the
// sequential semantics must be bit-identical.
func TestInsertPreservesSemantics(t *testing.T) {
	loops := append(corpus.Kernels(), corpus.Generate(corpus.Params{Seed: 32, N: 60})...)
	for _, shape := range []Shape{Tree, Chain} {
		for _, l := range loops {
			res, err := Insert(l, shape)
			if err != nil {
				t.Fatalf("%s: %v", l.Name, err)
			}
			refA, err := sim.Reference(l, 30)
			if err != nil {
				t.Fatalf("%s: %v", l.Name, err)
			}
			refB, err := sim.Reference(res.Loop, 30)
			if err != nil {
				t.Fatalf("%s+copies: %v", l.Name, err)
			}
			if err := sim.CompareStores(refA.Stores, refB.Stores, false); err != nil {
				t.Fatalf("%s (%v): %v", l.Name, shape, err)
			}
		}
	}
}

// TestInsertDistancesMoveToLeaves: the producer->copy edge is always
// distance 0; original distances ride on the final hop to each consumer.
func TestInsertDistancesMoveToLeaves(t *testing.T) {
	l := ir.New("carriedfan")
	a := l.AddOp(ir.KAdd, "a")
	b := l.AddOp(ir.KAdd, "b")
	l.AddCarried(a, b, 2)
	st1 := l.AddOp(ir.KStore, "s1")
	l.AddFlow(a, st1)
	st2 := l.AddOp(ir.KStore, "s2")
	l.AddFlow(b, st2)
	res, err := Insert(l, Tree)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range res.Loop.Deps {
		if res.Loop.Ops[d.To].Kind == ir.KCopy && d.Dist != 0 {
			t.Fatalf("copy input edge carries distance %d", d.Dist)
		}
	}
	// The b consumer must still see distance 2 somewhere on its final hop.
	found := false
	for _, d := range res.Loop.Deps {
		if d.To == b.ID && d.Dist == 2 && d.Kind == ir.Flow {
			found = true
		}
	}
	if !found {
		t.Fatal("carried distance lost in fanout rewrite")
	}
}

func TestInsertIdempotent(t *testing.T) {
	l := corpus.ComplexMul()
	res1, err := Insert(l, Tree)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := Insert(res1.Loop, Tree)
	if err != nil {
		t.Fatal(err)
	}
	if res2.CopiesAdded != 0 {
		t.Fatalf("second insertion added %d copies", res2.CopiesAdded)
	}
}
