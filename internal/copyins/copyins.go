// Package copyins implements the paper's copy-operation insertion (§2).
//
// In a queue register file a value is destroyed by the read that consumes
// it, so a value consumed n > 1 times would need n simultaneous writes to n
// distinct queues (paper Fig. 1c). Instead, a dedicated copy functional
// unit reads a value from one queue and writes it to two queues (Fig. 2).
// This pass rewrites every multi-consumer value into a fanout tree of copy
// operations so that, afterwards, every value has exactly one consumer.
package copyins

import (
	"fmt"

	"vliwq/internal/ir"
)

// Shape selects the fanout tree topology.
type Shape uint8

const (
	// Tree builds a balanced binary tree: minimal added depth
	// (ceil(log2 n) copy latencies on the critical path).
	Tree Shape = iota
	// Chain builds a linear chain: each copy feeds one consumer and the
	// next copy. Used by the ablation benchmark; adds O(n) depth.
	Chain
)

func (s Shape) String() string {
	if s == Chain {
		return "chain"
	}
	return "tree"
}

// Result reports what Insert did.
type Result struct {
	Loop          *ir.Loop
	CopiesAdded   int
	ValuesFanned  int // number of multi-consumer values rewritten
	MaxFanoutSeen int
}

// Insert returns a copy of the loop in which every value with more than one
// flow consumer is routed through a fanout tree of copy operations. The
// input loop is not modified. Loops already satisfying the single-consumer
// property are returned as an unmodified clone with CopiesAdded == 0.
func Insert(l *ir.Loop, shape Shape) (*Result, error) {
	if err := l.Validate(); err != nil {
		return nil, err
	}
	out := l.Clone()
	res := &Result{Loop: out}

	// Iterate over the original producer IDs; newly added copies always
	// have exactly two consumers by construction... except the tree
	// interior, which we build directly with fanout 2, so one pass
	// suffices.
	numOrig := len(out.Ops)
	for id := 0; id < numOrig; id++ {
		op := out.Ops[id]
		if !op.Kind.HasResult() {
			continue
		}
		// Collect this value's flow consumers (dep list indices).
		var consumers []int
		for di, d := range out.Deps {
			if d.Kind == ir.Flow && d.From == id {
				consumers = append(consumers, di)
			}
		}
		n := len(consumers)
		if n > res.MaxFanoutSeen {
			res.MaxFanoutSeen = n
		}
		// Copy units write two queues, so an existing copy with two
		// consumers is already in hardware-legal form.
		limit := 1
		if op.Kind == ir.KCopy {
			limit = 2
		}
		if n <= limit {
			continue
		}
		res.ValuesFanned++
		buildFanout(out, id, consumers, shape, res)
	}
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("copyins: internal error: %w", err)
	}
	return res, nil
}

// buildFanout rewires the consumers of value `src` through copy operations.
// Each consumer dependence keeps its original iteration distance and — by
// patching the dependence slot in place — its position in the consumer's
// operand list, so operand-order-sensitive semantics are preserved. The
// internal tree edges have distance zero, and the producer feeds the root
// copy with distance zero.
func buildFanout(l *ir.Loop, src int, consumerDeps []int, shape Shape, res *Result) {
	// Copies forward the source value unchanged, so they inherit the
	// source's lineage: a copy's synthetic pre-loop live-in (read by
	// loop-carried consumers in the first iterations) must equal the
	// original producer's, or the rewrite would change program semantics.
	srcOp := l.Ops[src]
	newCopy := func(from int) int {
		c := l.AddOp(ir.KCopy, "")
		c.Orig = srcOp.EffID()
		c.Phase = srcOp.Phase
		l.AddDep(ir.Dep{From: from, To: c.ID, Kind: ir.Flow})
		res.CopiesAdded++
		return c.ID
	}
	// connect re-points the original dependence at its feeding copy; the
	// slot, consumer and distance stay put.
	connect := func(from int, depIdx int) {
		l.Deps[depIdx].From = from
	}

	switch shape {
	case Chain:
		// src -> c1 -> c2 ... each copy feeds one consumer and the next
		// copy; the last copy feeds the final two consumers.
		cur := newCopy(src)
		i := 0
		for ; i < len(consumerDeps)-2; i++ {
			connect(cur, consumerDeps[i])
			cur = newCopy(cur)
		}
		connect(cur, consumerDeps[i])
		connect(cur, consumerDeps[i+1])
	default: // Tree
		// A work queue of (feeding op, consumer dependences to serve).
		// Each copy serves two subtrees of near-equal size.
		type job struct {
			from int
			ds   []int
		}
		jobs := []job{{newCopy(src), consumerDeps}}
		for len(jobs) > 0 {
			j := jobs[len(jobs)-1]
			jobs = jobs[:len(jobs)-1]
			switch len(j.ds) {
			case 1:
				connect(j.from, j.ds[0])
			case 2:
				connect(j.from, j.ds[0])
				connect(j.from, j.ds[1])
			default:
				half := (len(j.ds) + 1) / 2
				left, right := j.ds[:half], j.ds[half:]
				// Each side larger than one target needs its own copy.
				if len(left) == 1 {
					connect(j.from, left[0])
				} else {
					jobs = append(jobs, job{newCopy(j.from), left})
				}
				if len(right) == 1 {
					connect(j.from, right[0])
				} else {
					jobs = append(jobs, job{newCopy(j.from), right})
				}
			}
		}
	}
}
