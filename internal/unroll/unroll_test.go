package unroll

import (
	"testing"

	"vliwq/internal/corpus"
	"vliwq/internal/ir"
	"vliwq/internal/machine"
	"vliwq/internal/sim"
)

func TestUnrollStructure(t *testing.T) {
	l := corpus.Daxpy()
	u, err := Unroll(l, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(u.Ops), 3*len(l.Ops); got != want {
		t.Fatalf("ops: got %d, want %d", got, want)
	}
	if got, want := len(u.Deps), 3*len(l.Deps); got != want {
		t.Fatalf("deps: got %d, want %d", got, want)
	}
	if u.UnrollFactor() != 3 {
		t.Fatalf("unroll factor %d, want 3", u.UnrollFactor())
	}
	for _, op := range u.Ops {
		if op.Orig < 0 || op.Orig >= len(l.Ops) {
			t.Fatalf("replica %v lost lineage", op)
		}
		if op.Kind != l.Ops[op.Orig].Kind {
			t.Fatalf("replica %v changed kind", op)
		}
	}
	if err := u.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestUnrollFactorOneIsClone(t *testing.T) {
	l := corpus.Ddot()
	u, err := Unroll(l, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(u.Ops) != len(l.Ops) || u.UnrollFactor() != 1 {
		t.Fatal("factor-1 unroll must be a plain clone")
	}
}

func TestUnrollRejectsDoubleUnroll(t *testing.T) {
	l := corpus.Ddot()
	u, err := Unroll(l, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Unroll(u, 2); err == nil {
		t.Fatal("double unroll accepted")
	}
}

// TestUnrollDependenceRewiring checks the replica/distance arithmetic on a
// distance-2 recurrence: with factor 3, consumer replica u reads producer
// replica (u-2) mod 3 at distance (u<2 ? 1 : 0).
func TestUnrollDependenceRewiring(t *testing.T) {
	l := ir.New("rec2")
	a := l.AddOp(ir.KAdd, "a")
	l.AddCarried(a, a, 2)
	st := l.AddOp(ir.KStore, "st")
	l.AddFlow(a, st)
	u, err := Unroll(l, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Collect the carried deps between the replicas of a (op IDs 0, 2, 4:
	// replica u of op i has ID u*2+i).
	type edge struct{ from, to, dist int }
	var got []edge
	for _, d := range u.Deps {
		if u.Ops[d.From].Orig == 0 && u.Ops[d.To].Orig == 0 {
			got = append(got, edge{u.Ops[d.From].Phase, u.Ops[d.To].Phase, d.Dist})
		}
	}
	want := map[edge]bool{
		{1, 0, 1}: true, // u=0 reads phase 1 of previous unrolled iter
		{2, 1, 1}: true, // u=1 reads phase 2 of previous unrolled iter
		{0, 2, 0}: true, // u=2 reads phase 0 of the same unrolled iter
	}
	if len(got) != len(want) {
		t.Fatalf("got %d replica edges %v, want %d", len(got), got, len(want))
	}
	for _, e := range got {
		if !want[e] {
			t.Fatalf("unexpected edge %+v", e)
		}
	}
}

// TestUnrollPreservesSemantics is the key property: the unrolled body must
// compute exactly the original iteration space (stores compared in the
// original keying).
func TestUnrollPreservesSemantics(t *testing.T) {
	loops := append(corpus.Kernels(), corpus.Generate(corpus.Params{Seed: 21, N: 40})...)
	for _, l := range loops {
		for _, factor := range []int{2, 3, 4} {
			u, err := Unroll(l, factor)
			if err != nil {
				t.Fatalf("%s x%d: %v", l.Name, factor, err)
			}
			n := 24
			refOrig, err := sim.Reference(l, n*factor)
			if err != nil {
				t.Fatalf("%s: %v", l.Name, err)
			}
			refUnrolled, err := sim.Reference(u, n)
			if err != nil {
				t.Fatalf("%s x%d: %v", l.Name, factor, err)
			}
			// The unrolled run covers iterations [0, n*factor) exactly.
			if err := sim.CompareStores(refUnrolled.Stores, refOrig.Stores, false); err != nil {
				t.Fatalf("%s x%d: %v", l.Name, factor, err)
			}
		}
	}
}

func TestAutoFactorRecurrenceBound(t *testing.T) {
	// Recurrence-bound loops must not be unrolled: the resource bound is
	// already below the recurrence bound.
	cfg := machine.SingleCluster(12)
	for _, l := range []*ir.Loop{corpus.DivNorm(), corpus.Horner(), corpus.PrefixSum()} {
		if f := AutoFactor(l, cfg); f != 1 {
			t.Errorf("%s: AutoFactor = %d, want 1 (recurrence-bound)", l.Name, f)
		}
	}
}

func TestAutoFactorResourceBound(t *testing.T) {
	// daxpy on 12 FUs (4 L/S units): per-iteration resource bound is
	// 4 L/S ops / 4 units = 1 at factor 1 — already optimal, so factor 1.
	if f := AutoFactor(corpus.Daxpy(), machine.SingleCluster(12)); f != 1 {
		t.Errorf("daxpy/12: AutoFactor = %d, want 1", f)
	}
	// ddot on 4 FUs: 3 L/S ops over 1 unit = 3/iter at any factor; ALU
	// 1/2... factor 1 is optimal. But on 6 FUs (2 L/S), 3 L/S ops give
	// ceil(3u/2)/u: u=1 -> 2, u=2 -> 3/2, u=4 -> 3/2... improvement at 2.
	if f := AutoFactor(corpus.Ddot(), machine.SingleCluster(6)); f < 2 {
		t.Errorf("ddot/6: AutoFactor = %d, want >= 2 (fractional resource gain)", f)
	}
}

func TestAutoFactorWithinBounds(t *testing.T) {
	loops := corpus.Generate(corpus.Params{Seed: 22, N: 60})
	cfg := machine.SingleCluster(12)
	for _, l := range loops {
		f := AutoFactor(l, cfg)
		if f < 1 || f > MaxAutoFactor {
			t.Fatalf("%s: factor %d out of bounds", l.Name, f)
		}
		if f > 1 && f*len(l.Ops) > MaxUnrolledOps {
			t.Fatalf("%s: factor %d exceeds the op budget", l.Name, f)
		}
	}
}

func TestUnrollTripCount(t *testing.T) {
	l := corpus.Daxpy()
	l.Trip = 100
	u, err := Unroll(l, 4)
	if err != nil {
		t.Fatal(err)
	}
	if u.TripCount() != 25 {
		t.Fatalf("trip: got %d, want 25", u.TripCount())
	}
}
