// Package unroll implements loop unrolling for modulo scheduling (§3 of the
// paper, following Lavery/Hwu-style unrolling-based optimization): the loop
// body is replicated U times and every dependence is re-wired so that the
// unrolled body has exactly the semantics of U consecutive iterations of
// the original loop.
package unroll

import (
	"fmt"

	"vliwq/internal/ir"
	"vliwq/internal/machine"
	"vliwq/internal/sched"
)

// Unroll returns a new loop whose body is `factor` replicas of l's body. A
// dependence (a -> b, distance d) becomes, for each consumer replica u, a
// dependence from replica (u-d) mod U of a to replica u of b with distance
// floor-div((d-u+U-1)... precisely ((u-d) mod U - (u-d)) / U — zero for
// intra-body references, positive when the producer instance belongs to an
// earlier unrolled iteration.
//
// The replicas carry Orig/Phase lineage so simulation and semantic tests
// can map unrolled instances back to the original iteration space.
func Unroll(l *ir.Loop, factor int) (*ir.Loop, error) {
	if err := l.Validate(); err != nil {
		return nil, err
	}
	if factor < 1 {
		return nil, fmt.Errorf("unroll: factor must be >= 1, got %d", factor)
	}
	if l.UnrollFactor() != 1 {
		return nil, fmt.Errorf("unroll: loop %q is already unrolled", l.Name)
	}
	if factor == 1 {
		return l.Clone(), nil
	}
	out := &ir.Loop{
		Name:   fmt.Sprintf("%s.x%d", l.Name, factor),
		Trip:   maxInt(1, l.TripCount()/factor),
		Unroll: factor,
	}
	n := len(l.Ops)
	// Replica u of original op i gets ID u*n + i.
	for u := 0; u < factor; u++ {
		for _, op := range l.Ops {
			name := ""
			if op.Name != "" {
				name = fmt.Sprintf("%s.%d", op.Name, u)
			}
			c := out.AddOp(op.Kind, name)
			c.Orig = op.EffID()
			c.Phase = u
		}
	}
	for _, d := range l.Deps {
		for u := 0; u < factor; u++ {
			q := u - d.Dist
			up := ((q % factor) + factor) % factor // producer replica
			dist := (up - q) / factor              // unrolled distance
			out.AddDep(ir.Dep{
				From: up*n + d.From,
				To:   u*n + d.To,
				Dist: dist,
				Kind: d.Kind,
			})
		}
	}
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("unroll: internal error: %w", err)
	}
	return out, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// MaxAutoFactor bounds the unroll factors AutoFactor considers.
const MaxAutoFactor = 8

// MaxUnrolledOps bounds the unrolled body size AutoFactor will produce;
// larger bodies make scheduling disproportionately expensive for little
// gain.
const MaxUnrolledOps = 256

// AutoFactor picks the unroll factor in [1, MaxAutoFactor] that minimizes
// the per-original-iteration II lower bound on the given machine:
//
//	bound(U) = max(RecMII, max_class ceil(U*ops_class/fus_class) / U)
//
// Unrolling cannot beat the recurrence bound (a recurrence circuit's
// latency-to-distance ratio is invariant under unrolling), so recurrence-
// bound loops stay at factor 1; resource-bound loops are unrolled until
// the fractional resource bound stops improving. Ties pick the smaller
// factor (smaller code, cheaper scheduling).
func AutoFactor(l *ir.Loop, cfg machine.Config) int {
	var ops [machine.NumClasses]int
	for _, op := range l.Ops {
		ops[machine.ClassOf(op.Kind)]++
	}
	fus := cfg.TotalFUs()
	recMII := sched.RecMII(l)

	best, bestNum, bestDen := 1, 0, 1 // bound as a fraction num/den
	for u := 1; u <= MaxAutoFactor; u++ {
		if u*len(l.Ops) > MaxUnrolledOps && u > 1 {
			break
		}
		num := recMII * u // max(recMII, res/u) scaled by u
		for c := range ops {
			if ops[c] == 0 || fus[c] == 0 {
				continue
			}
			res := (u*ops[c] + fus[c] - 1) / fus[c]
			if res > num {
				num = res
			}
		}
		// Compare num/u < bestNum/bestDen.
		if u == 1 || num*bestDen < bestNum*u {
			best, bestNum, bestDen = u, num, u
		}
	}
	return best
}
