// Package queue models the paper's queue register files (QRF): lifetimes of
// modulo-scheduled values, the Q-Compatibility test (Theorem 1.1) deciding
// when two lifetimes may share one FIFO queue, and a greedy first-fit
// allocator that maps every flow dependence of a schedule to a queue in the
// producing/consuming cluster's private QRF or in a ring communication
// queue.
package queue

import (
	"fmt"

	"vliwq/internal/ir"
	"vliwq/internal/sched"
)

// Lifetime is the interval a value occupies a queue: from the cycle its
// producer writes it (issue + latency, plus communication latency when it
// crosses clusters) to the cycle its consumer reads it (consumer issue time,
// plus II*distance for loop-carried dependences). Each flow dependence is
// one lifetime, because reading a queue destroys the value.
type Lifetime struct {
	Dep      ir.Dep // the flow dependence this lifetime carries
	DepIndex int    // index of Dep in Loop.Deps (distinguishes duplicates)
	Start    int    // write cycle
	End      int    // read cycle (End >= Start)
}

// Len returns the lifetime length in cycles.
func (lt Lifetime) Len() int { return lt.End - lt.Start }

func (lt Lifetime) String() string {
	return fmt.Sprintf("[%d,%d) %v", lt.Start, lt.End, lt.Dep)
}

// Compatible implements Theorem 1.1: two lifetimes may share a FIFO queue
// if and only if, taking La >= Lb,
//
//	La - Lb  <  (Sb - Sa) mod II.
//
// The condition guarantees that across all iteration instances the
// production order equals the consumption order, with no two writes or two
// reads of the queue in the same cycle (see DESIGN.md §3 for the
// derivation; TestCompatibleMatchesFIFOSimulation validates it by brute
// force).
func Compatible(a, b Lifetime, ii int) bool {
	la, lb := a.Len(), b.Len()
	sa, sb := a.Start, b.Start
	if la < lb {
		la, lb = lb, la
		sa, sb = sb, sa
	}
	g := ((sb-sa)%ii + ii) % ii
	return la-lb < g
}

// CompatibleSet reports whether every pair in the set is compatible;
// pairwise compatibility implies whole-set FIFO correctness.
func CompatibleSet(lts []Lifetime, ii int) bool {
	for i := range lts {
		for j := i + 1; j < len(lts); j++ {
			if !Compatible(lts[i], lts[j], ii) {
				return false
			}
		}
	}
	return true
}

// BuildLifetimes derives one lifetime per flow dependence of the schedule.
// Values that are never consumed produce no lifetime.
func BuildLifetimes(s *sched.Schedule) []Lifetime {
	var lts []Lifetime
	for di, d := range s.Loop.Deps {
		if d.Kind != ir.Flow {
			continue
		}
		start := s.Time[d.From] + s.Loop.Ops[d.From].Kind.Latency()
		if s.Cluster[d.From] != s.Cluster[d.To] {
			start += s.Machine.CommLatency
		}
		end := s.Time[d.To] + s.II*d.Dist
		lts = append(lts, Lifetime{Dep: d, DepIndex: di, Start: start, End: end})
	}
	return lts
}

// MaxOccupancy returns the largest number of values simultaneously resident
// in a queue holding the given lifetimes, in pipeline steady state. A
// lifetime of length L contributes ceil((L-r)/II) instances at phase
// offset r from its start.
func MaxOccupancy(lts []Lifetime, ii int) int {
	max := 0
	for phase := 0; phase < ii; phase++ {
		n := 0
		for _, lt := range lts {
			r := ((phase-lt.Start)%ii + ii) % ii
			if l := lt.Len() - r; l > 0 {
				n += (l + ii - 1) / ii
			}
		}
		if n > max {
			max = n
		}
	}
	return max
}
