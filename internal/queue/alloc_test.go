package queue_test

import (
	"testing"

	"vliwq/internal/copyins"
	"vliwq/internal/corpus"
	"vliwq/internal/ir"
	"vliwq/internal/machine"
	"vliwq/internal/queue"
	"vliwq/internal/sched"
)

func compile(t *testing.T, l *ir.Loop, cfg machine.Config) *sched.Schedule {
	t.Helper()
	ins, err := copyins.Insert(l, copyins.Tree)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.ScheduleLoop(ins.Loop, cfg, sched.Options{})
	if err != nil {
		t.Fatalf("%s: %v", l.Name, err)
	}
	return s
}

func TestAllocateVerifiesOnCorpus(t *testing.T) {
	loops := corpus.Generate(corpus.Params{Seed: 51, N: 80})
	for _, cfg := range []machine.Config{machine.SingleCluster(6), machine.Clustered(4)} {
		for _, l := range loops {
			s := compile(t, l, cfg)
			a := queue.Allocate(s)
			if err := a.Verify(); err != nil {
				t.Fatalf("%s on %s: %v", l.Name, cfg.Name, err)
			}
			if len(a.Assignments) != countFlow(s.Loop) {
				t.Fatalf("%s: %d assignments for %d flow deps",
					l.Name, len(a.Assignments), countFlow(s.Loop))
			}
		}
	}
}

func countFlow(l *ir.Loop) int {
	n := 0
	for _, d := range l.Deps {
		if d.Kind == ir.Flow {
			n++
		}
	}
	return n
}

// TestAllocationLocations: same-cluster lifetimes go to the consumer's
// private QRF; cross-cluster lifetimes to the directed ring link, which
// must connect adjacent clusters.
func TestAllocationLocations(t *testing.T) {
	loops := corpus.Generate(corpus.Params{Seed: 52, N: 40})
	cfg := machine.Clustered(4)
	for _, l := range loops {
		s := compile(t, l, cfg)
		a := queue.Allocate(s)
		for _, as := range a.Assignments {
			cp := s.Cluster[as.Lifetime.Dep.From]
			cc := s.Cluster[as.Lifetime.Dep.To]
			if cp == cc {
				if as.Loc.Kind != queue.Private || as.Loc.From != cp {
					t.Fatalf("%s: same-cluster lifetime mapped to %v", l.Name, as.Loc)
				}
			} else {
				if as.Loc.Kind != queue.Ring || as.Loc.From != cp || as.Loc.To != cc {
					t.Fatalf("%s: cross-cluster lifetime mapped to %v", l.Name, as.Loc)
				}
				if !cfg.Adjacent(cp, cc) {
					t.Fatalf("%s: ring link between non-adjacent clusters", l.Name)
				}
			}
		}
	}
}

// TestAllocationDeterministic: same schedule, same allocation.
func TestAllocationDeterministic(t *testing.T) {
	s := compile(t, corpus.Hydro(), machine.Clustered(4))
	a := queue.Allocate(s)
	b := queue.Allocate(s)
	if len(a.Assignments) != len(b.Assignments) {
		t.Fatal("assignment counts differ")
	}
	for i := range a.Assignments {
		if a.Assignments[i] != b.Assignments[i] {
			t.Fatalf("assignment %d differs", i)
		}
	}
}

// TestFirstFitNotWasteful: the allocator must share queues when lifetimes
// are compatible — a chain of single-consumer values with staggered
// lifetimes must not use one queue per value.
func TestFirstFitNotWasteful(t *testing.T) {
	s := compile(t, corpus.FIR5(), machine.SingleCluster(12))
	a := queue.Allocate(s)
	flow := countFlow(s.Loop)
	if a.MaxPrivateQueues() >= flow {
		t.Fatalf("first-fit used %d queues for %d lifetimes (no sharing at all)",
			a.MaxPrivateQueues(), flow)
	}
}

func TestFitsMachine(t *testing.T) {
	s := compile(t, corpus.Daxpy(), machine.Clustered(4))
	a := queue.Allocate(s)
	if err := a.FitsMachine(s); err != nil {
		t.Fatalf("daxpy exceeds the paper's cluster resources: %v", err)
	}
	// Shrink the declared resources below usage and expect a failure.
	tiny := s
	cfgCopy := s.Machine
	cfgCopy.Clusters = append([]machine.Cluster(nil), s.Machine.Clusters...)
	for i := range cfgCopy.Clusters {
		cfgCopy.Clusters[i].PrivateQueues = 0 // unconstrained
		cfgCopy.Clusters[i].QueueDepth = 0
	}
	tiny.Machine = cfgCopy
	if err := a.FitsMachine(tiny); err != nil {
		t.Fatalf("unconstrained machine rejected: %v", err)
	}
}

func TestMaxDepthMatchesOccupancy(t *testing.T) {
	s := compile(t, corpus.Wave2(), machine.SingleCluster(6))
	a := queue.Allocate(s)
	if a.MaxDepth() < 1 {
		t.Fatal("wave2 must keep at least one value resident")
	}
}
