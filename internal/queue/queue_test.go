package queue

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"vliwq/internal/ir"
)

// fifoCompatible brute-forces the Q-compatibility question: it merges the
// periodic write/read event streams of two lifetimes over enough iterations
// to cover every phase relation and simulates a FIFO queue. Two writes or
// two reads in the same cycle, or any pop delivering the wrong instance,
// means the pair cannot share a queue.
func fifoCompatible(a, b Lifetime, ii int) bool {
	maxLen := a.Len()
	if b.Len() > maxLen {
		maxLen = b.Len()
	}
	iters := maxLen/ii + 6
	type ev struct {
		t     int
		write bool
		who   int // 0 = a, 1 = b
		k     int
	}
	var evs []ev
	for k := 0; k < iters; k++ {
		evs = append(evs,
			ev{a.Start + k*ii, true, 0, k},
			ev{b.Start + k*ii, true, 1, k},
			ev{a.End + k*ii, false, 0, k},
			ev{b.End + k*ii, false, 1, k},
		)
	}
	sort.SliceStable(evs, func(i, j int) bool {
		if evs[i].t != evs[j].t {
			return evs[i].t < evs[j].t
		}
		// Writes before reads in the same cycle (hardware bypass).
		return evs[i].write && !evs[j].write
	})
	type tag struct{ who, k int }
	var fifo []tag
	lastWrite, lastRead := -1, -1
	for _, e := range evs {
		if e.write {
			if e.t == lastWrite {
				return false // write-port conflict
			}
			lastWrite = e.t
			fifo = append(fifo, tag{e.who, e.k})
		} else {
			if e.t == lastRead {
				return false // read-port conflict
			}
			lastRead = e.t
			if len(fifo) == 0 {
				// The read's value was written before the simulated window;
				// only possible in the warm-up region. Skip it — order
				// violations repeat every II cycles, so the steady-state
				// window catches them.
				continue
			}
			head := fifo[0]
			fifo = fifo[1:]
			if head.who != e.who || head.k != e.k {
				return false
			}
		}
	}
	return true
}

// TestCompatibleMatchesFIFOSimulation is the central property test: the
// closed-form Theorem 1.1 must agree with brute-force FIFO simulation on
// random lifetime pairs.
func TestCompatibleMatchesFIFOSimulation(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	check := func() bool {
		ii := 1 + rng.Intn(12)
		a := Lifetime{Start: rng.Intn(3 * ii)}
		b := Lifetime{Start: rng.Intn(3 * ii)}
		a.End = a.Start + rng.Intn(4*ii)
		b.End = b.Start + rng.Intn(4*ii)
		got := Compatible(a, b, ii)
		want := fifoCompatible(a, b, ii)
		if got != want {
			t.Logf("II=%d a=[%d,%d) b=[%d,%d): Compatible=%v fifo=%v",
				ii, a.Start, a.End, b.Start, b.End, got, want)
		}
		return got == want
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestCompatibleKnownCases(t *testing.T) {
	lt := func(s, e int) Lifetime { return Lifetime{Start: s, End: e} }
	cases := []struct {
		name string
		a, b Lifetime
		ii   int
		want bool
	}{
		// Same write slot: write-port conflict regardless of lengths.
		{"same-start", lt(0, 3), lt(0, 2), 4, false},
		{"same-start-mod", lt(0, 3), lt(4, 6), 4, false},
		// Staggered starts, equal lengths: always compatible if slots
		// differ.
		{"stagger-equal", lt(0, 2), lt(1, 3), 4, true},
		// Length difference equal to the stagger: reads collide.
		{"read-collision", lt(0, 5), lt(1, 5), 4, false},
		// Length difference one below the stagger: compatible.
		{"just-fits", lt(0, 4), lt(2, 5), 4, true},
		// Length difference >= II can never fit.
		{"too-long", lt(0, 9), lt(1, 2), 4, false},
		// Zero-length lifetimes at distinct slots are compatible.
		{"zero-length", lt(0, 0), lt(1, 1), 4, true},
		{"zero-length-same", lt(2, 2), lt(2, 2), 4, false},
		// Order of arguments must not matter.
		{"symmetric", lt(2, 5), lt(0, 4), 4, true},
	}
	for _, c := range cases {
		if got := Compatible(c.a, c.b, c.ii); got != c.want {
			t.Errorf("%s: Compatible(%v,%v,II=%d) = %v, want %v", c.name, c.a, c.b, c.ii, got, c.want)
		}
		if got := Compatible(c.b, c.a, c.ii); got != c.want {
			t.Errorf("%s (swapped): got %v, want %v", c.name, got, c.want)
		}
	}
}

func TestCompatibleIsSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 2000; i++ {
		ii := 1 + rng.Intn(10)
		a := Lifetime{Start: rng.Intn(20)}
		a.End = a.Start + rng.Intn(30)
		b := Lifetime{Start: rng.Intn(20)}
		b.End = b.Start + rng.Intn(30)
		if Compatible(a, b, ii) != Compatible(b, a, ii) {
			t.Fatalf("asymmetric: a=%v b=%v ii=%d", a, b, ii)
		}
	}
}

func TestCompatibleNeverWithSelf(t *testing.T) {
	// A lifetime is never compatible with a copy of itself (same write
	// slot), for any II.
	for ii := 1; ii <= 8; ii++ {
		for s := 0; s < 6; s++ {
			for l := 0; l < 10; l++ {
				a := Lifetime{Start: s, End: s + l}
				if Compatible(a, a, ii) {
					t.Fatalf("lifetime %v compatible with itself at II=%d", a, ii)
				}
			}
		}
	}
}

func TestCompatibleLongLifetimes(t *testing.T) {
	// A lifetime longer than the other by at least II is never compatible.
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 1000; i++ {
		ii := 1 + rng.Intn(8)
		b := Lifetime{Start: rng.Intn(10)}
		b.End = b.Start + rng.Intn(10)
		a := Lifetime{Start: rng.Intn(10)}
		a.End = a.Start + b.Len() + ii + rng.Intn(10)
		if Compatible(a, b, ii) {
			t.Fatalf("II=%d: %v and %v compatible despite length gap >= II", ii, a, b)
		}
	}
}

func TestMaxOccupancy(t *testing.T) {
	cases := []struct {
		name string
		lts  []Lifetime
		ii   int
		want int
	}{
		{"empty", nil, 4, 0},
		// One lifetime of length 1: a single position.
		{"short", []Lifetime{{Start: 0, End: 1}}, 4, 1},
		// Length 2*II: at any instant, two instances are resident... plus
		// the phase where a third is being written: ceil provides it.
		{"two-ii", []Lifetime{{Start: 0, End: 8}}, 4, 2},
		// Zero-length lifetimes never occupy a slot in steady state.
		{"zero", []Lifetime{{Start: 3, End: 3}}, 4, 0},
		// Two disjoint short lifetimes in one II can share their peak.
		{"pair", []Lifetime{{Start: 0, End: 1}, {Start: 1, End: 3}}, 4, 1},
		{"overlap", []Lifetime{{Start: 0, End: 2}, {Start: 1, End: 3}}, 4, 2},
	}
	for _, c := range cases {
		if got := MaxOccupancy(c.lts, c.ii); got != c.want {
			t.Errorf("%s: MaxOccupancy = %d, want %d", c.name, got, c.want)
		}
	}
}

func TestCompatibleSetPairwise(t *testing.T) {
	// Three lifetimes, each pair compatible -> set compatible; breaking
	// one pair breaks the set.
	ii := 6
	a := Lifetime{Start: 0, End: 2}
	b := Lifetime{Start: 3, End: 4}
	c := Lifetime{Start: 5, End: 6}
	if !CompatibleSet([]Lifetime{a, b, c}, ii) {
		t.Fatal("pairwise-compatible set rejected")
	}
	d := Lifetime{Start: 3, End: 9} // collides with b's write slot
	if CompatibleSet([]Lifetime{a, b, d}, ii) {
		t.Fatal("set with incompatible pair accepted")
	}
}

// TestDepIndexDistinguishesDuplicates covers the a*a pattern: the same
// producer feeding the same consumer twice yields two lifetimes that are
// never compatible and must land in different queues.
func TestDepIndexDistinguishesDuplicates(t *testing.T) {
	l := ir.New("square")
	x := l.AddOp(ir.KLoad, "x")
	m := l.AddOp(ir.KMul, "xx")
	l.AddFlow(x, m)
	l.AddFlow(x, m)
	st := l.AddOp(ir.KStore, "st")
	l.AddFlow(m, st)
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	// Both x->m lifetimes have identical times; they must be incompatible.
	a := Lifetime{Dep: l.Deps[0], DepIndex: 0, Start: 2, End: 4}
	b := Lifetime{Dep: l.Deps[1], DepIndex: 1, Start: 2, End: 4}
	if Compatible(a, b, 3) {
		t.Fatal("duplicate lifetimes reported compatible")
	}
}
