package queue

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// simOccupancy brute-forces the steady-state occupancy of a queue: run
// enough iterations and take the maximum resident count over a late,
// periodic window.
func simOccupancy(lts []Lifetime, ii int) int {
	maxLen := 0
	for _, lt := range lts {
		if lt.Len() > maxLen {
			maxLen = lt.Len()
		}
	}
	warm := (maxLen/ii + 3) * ii
	end := warm + 2*ii
	max := 0
	for t := warm; t < end; t++ {
		n := 0
		for _, lt := range lts {
			// Count instances k with Start+k*ii <= t < End+k*ii.
			for k := 0; ; k++ {
				s := lt.Start + k*ii
				if s > t {
					break
				}
				if t < lt.End+k*ii {
					n++
				}
			}
		}
		if n > max {
			max = n
		}
	}
	return max
}

// TestMaxOccupancyMatchesSimulation: the closed-form residency formula
// must agree with brute-force counting on random lifetime sets.
func TestMaxOccupancyMatchesSimulation(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	check := func() bool {
		ii := 1 + rng.Intn(8)
		n := 1 + rng.Intn(5)
		lts := make([]Lifetime, n)
		for i := range lts {
			s := rng.Intn(3 * ii)
			lts[i] = Lifetime{Start: s, End: s + rng.Intn(3*ii)}
		}
		got := MaxOccupancy(lts, ii)
		want := simOccupancy(lts, ii)
		if got != want {
			t.Logf("ii=%d lts=%v: formula=%d sim=%d", ii, lts, got, want)
		}
		return got == want
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestOccupancyPhaseShiftInvariance: shifting every lifetime by a
// constant leaves the steady-state occupancy unchanged.
func TestOccupancyPhaseShiftInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 500; trial++ {
		ii := 1 + rng.Intn(8)
		n := 1 + rng.Intn(4)
		lts := make([]Lifetime, n)
		for i := range lts {
			s := rng.Intn(2 * ii)
			lts[i] = Lifetime{Start: s, End: s + rng.Intn(3*ii)}
		}
		shift := rng.Intn(4 * ii)
		shifted := make([]Lifetime, n)
		for i, lt := range lts {
			shifted[i] = Lifetime{Start: lt.Start + shift, End: lt.End + shift}
		}
		if MaxOccupancy(lts, ii) != MaxOccupancy(shifted, ii) {
			t.Fatalf("occupancy not shift-invariant: %v shift %d", lts, shift)
		}
	}
}

// TestCompatibleShiftInvariance: compatibility depends only on relative
// position, so shifting both lifetimes preserves it.
func TestCompatibleShiftInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 2000; trial++ {
		ii := 1 + rng.Intn(10)
		a := Lifetime{Start: rng.Intn(3 * ii)}
		a.End = a.Start + rng.Intn(3*ii)
		b := Lifetime{Start: rng.Intn(3 * ii)}
		b.End = b.Start + rng.Intn(3*ii)
		shift := rng.Intn(5 * ii)
		a2 := Lifetime{Start: a.Start + shift, End: a.End + shift}
		b2 := Lifetime{Start: b.Start + shift, End: b.End + shift}
		if Compatible(a, b, ii) != Compatible(a2, b2, ii) {
			t.Fatalf("compatibility not shift-invariant: %v %v shift %d ii %d", a, b, shift, ii)
		}
	}
}
