package queue

import (
	"fmt"
	"sort"

	"vliwq/internal/sched"
)

// LocKind distinguishes private QRFs from ring communication queues.
type LocKind uint8

const (
	// Private is a cluster's own queue register file.
	Private LocKind = iota
	// Ring is a directed communication link between ring-adjacent
	// clusters.
	Ring
)

// Location identifies a physical queue file: either the private QRF of a
// cluster (From == To) or the directed ring link From -> To between
// adjacent clusters.
type Location struct {
	Kind LocKind
	From int
	To   int
}

func (loc Location) String() string {
	if loc.Kind == Private {
		return fmt.Sprintf("qrf%d", loc.From)
	}
	return fmt.Sprintf("ring%d->%d", loc.From, loc.To)
}

// Assignment maps one lifetime to a queue.
type Assignment struct {
	Lifetime Lifetime
	Loc      Location
	Queue    int // queue index within the location, 0-based
}

// FileUsage summarizes one queue file after allocation.
type FileUsage struct {
	Loc          Location
	Queues       int   // number of queues used
	MaxOccupancy []int // per queue, the steady-state positions needed
}

// Allocation is the result of mapping every lifetime of a schedule to a
// queue.
type Allocation struct {
	II          int
	Assignments []Assignment
	Files       []FileUsage
}

// Allocate maps each lifetime of the schedule to a queue using greedy
// first-fit over lifetimes sorted by (start, end): a lifetime goes to the
// first queue of its location whose current residents are all compatible
// with it, opening a new queue when none fits. Minimum-queue allocation is
// a clique-cover problem; first-fit is the paper's practical stand-in.
func Allocate(s *sched.Schedule) *Allocation {
	lts := BuildLifetimes(s)
	order := make([]int, len(lts))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		x, y := lts[order[a]], lts[order[b]]
		if x.Start != y.Start {
			return x.Start < y.Start
		}
		if x.End != y.End {
			return x.End < y.End
		}
		return x.DepIndex < y.DepIndex
	})

	type file struct {
		queues [][]Lifetime
	}
	files := map[Location]*file{}
	alloc := &Allocation{II: s.II}
	for _, idx := range order {
		lt := lts[idx]
		loc := locate(s, lt)
		f := files[loc]
		if f == nil {
			f = &file{}
			files[loc] = f
		}
		q := -1
		for i, resident := range f.queues {
			ok := true
			for _, r := range resident {
				if !Compatible(lt, r, s.II) {
					ok = false
					break
				}
			}
			if ok {
				q = i
				break
			}
		}
		if q < 0 {
			q = len(f.queues)
			f.queues = append(f.queues, nil)
		}
		f.queues[q] = append(f.queues[q], lt)
		alloc.Assignments = append(alloc.Assignments, Assignment{Lifetime: lt, Loc: loc, Queue: q})
	}

	locs := make([]Location, 0, len(files))
	for loc := range files {
		locs = append(locs, loc)
	}
	sort.Slice(locs, func(i, j int) bool {
		if locs[i].Kind != locs[j].Kind {
			return locs[i].Kind < locs[j].Kind
		}
		if locs[i].From != locs[j].From {
			return locs[i].From < locs[j].From
		}
		return locs[i].To < locs[j].To
	})
	for _, loc := range locs {
		f := files[loc]
		u := FileUsage{Loc: loc, Queues: len(f.queues)}
		for _, resident := range f.queues {
			u.MaxOccupancy = append(u.MaxOccupancy, MaxOccupancy(resident, s.II))
		}
		alloc.Files = append(alloc.Files, u)
	}
	return alloc
}

// locate returns the queue file that must hold the lifetime: the consumer
// cluster's private QRF when producer and consumer share a cluster, the
// directed ring link otherwise.
func locate(s *sched.Schedule, lt Lifetime) Location {
	cp := s.Cluster[lt.Dep.From]
	cc := s.Cluster[lt.Dep.To]
	if cp == cc {
		return Location{Kind: Private, From: cp, To: cp}
	}
	return Location{Kind: Ring, From: cp, To: cc}
}

// MaxPrivateQueues returns the largest number of queues used in any
// cluster's private QRF (the "queues required" metric of Figs. 3 and the
// unrolling experiment, where machines are single-cluster).
func (a *Allocation) MaxPrivateQueues() int {
	max := 0
	for _, f := range a.Files {
		if f.Loc.Kind == Private && f.Queues > max {
			max = f.Queues
		}
	}
	return max
}

// MaxRingQueues returns the largest number of queues used on any directed
// ring link.
func (a *Allocation) MaxRingQueues() int {
	max := 0
	for _, f := range a.Files {
		if f.Loc.Kind == Ring && f.Queues > max {
			max = f.Queues
		}
	}
	return max
}

// MaxDepth returns the deepest steady-state queue occupancy anywhere.
func (a *Allocation) MaxDepth() int {
	max := 0
	for _, f := range a.Files {
		for _, d := range f.MaxOccupancy {
			if d > max {
				max = d
			}
		}
	}
	return max
}

// FitsMachine reports whether the allocation respects the schedule
// machine's declared queue resources: private QRF sizes, ring queues per
// directed link, and queue depths (a zero limit means unconstrained).
func (a *Allocation) FitsMachine(s *sched.Schedule) error {
	byLoc := map[Location]FileUsage{}
	for _, f := range a.Files {
		byLoc[f.Loc] = f
	}
	for loc, f := range byLoc {
		switch loc.Kind {
		case Private:
			cl := s.Machine.Clusters[loc.From]
			if cl.PrivateQueues > 0 && f.Queues > cl.PrivateQueues {
				return fmt.Errorf("queue: cluster %d needs %d private queues, has %d",
					loc.From, f.Queues, cl.PrivateQueues)
			}
			if cl.QueueDepth > 0 {
				for q, d := range f.MaxOccupancy {
					if d > cl.QueueDepth {
						return fmt.Errorf("queue: cluster %d queue %d needs depth %d, has %d",
							loc.From, q, d, cl.QueueDepth)
					}
				}
			}
		case Ring:
			if s.Machine.RingQueues > 0 && f.Queues > s.Machine.RingQueues {
				return fmt.Errorf("queue: link %v needs %d queues, has %d",
					loc, f.Queues, s.Machine.RingQueues)
			}
		}
	}
	return nil
}

// Verify checks the allocation invariants: every queue's residents are
// pairwise compatible and every lifetime was assigned exactly once.
func (a *Allocation) Verify() error {
	type qkey struct {
		loc Location
		q   int
	}
	groups := map[qkey][]Lifetime{}
	for _, as := range a.Assignments {
		k := qkey{as.Loc, as.Queue}
		groups[k] = append(groups[k], as.Lifetime)
	}
	for k, lts := range groups {
		if !CompatibleSet(lts, a.II) {
			return fmt.Errorf("queue: %v queue %d holds incompatible lifetimes", k.loc, k.q)
		}
	}
	return nil
}
