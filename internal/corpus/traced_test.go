package corpus

import (
	"strings"
	"testing"
)

func TestTracedPrograms(t *testing.T) {
	ps := TracedPrograms()
	if len(ps) != 2 {
		t.Fatalf("traced programs = %d, want 2", len(ps))
	}
	wantRegions := map[string]int{"kernelmix": 4, "stencilsum": 2}
	total := 0
	for _, p := range ps {
		want, ok := wantRegions[p.Name]
		if !ok {
			t.Fatalf("unexpected program %q", p.Name)
		}
		if len(p.Regions) != want {
			t.Fatalf("program %q has %d regions, want %d", p.Name, len(p.Regions), want)
		}
		total += len(p.Regions)
		for _, r := range p.Regions {
			if r.Loop == nil {
				t.Fatalf("program %q region %q has no lifted loop", p.Name, r.Label)
			}
			if err := r.Loop.Validate(); err != nil {
				t.Fatalf("program %q region %q lifts invalid: %v", p.Name, r.Label, err)
			}
		}
	}
	loops := Traced()
	if len(loops) != total {
		t.Fatalf("Traced() = %d loops, want %d (one per region)", len(loops), total)
	}
	// Shared identity, like Standard/Stressed: the preset returns the same
	// loop objects the programs hold, so the experiment pipeline's cache
	// keys them consistently.
	if loops[0] != ps[0].Regions[0].Loop {
		t.Fatal("Traced() does not share loop identity with TracedPrograms()")
	}
}

func TestPresetRegistry(t *testing.T) {
	names := PresetNames()
	if got := strings.Join(names, ","); got != "standard,stressed,traced" {
		t.Fatalf("PresetNames() = %q, want sorted standard,stressed,traced", got)
	}
	traced, err := Preset("traced")
	if err != nil || len(traced) == 0 {
		t.Fatalf("Preset(traced) = %d loops, err %v", len(traced), err)
	}
	std, err := Preset("standard")
	if err != nil {
		t.Fatal(err)
	}
	if len(std) == 0 || std[0] != Standard()[0] {
		t.Fatal("Preset(standard) does not return the memoized Standard corpus")
	}
	_, err = Preset("nope")
	if err == nil {
		t.Fatal("unknown preset accepted")
	}
	if got, want := err.Error(), `unknown preset "nope" (valid: standard, stressed, traced)`; got != want {
		t.Fatalf("error = %q, want %q", got, want)
	}
}
