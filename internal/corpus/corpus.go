// Package corpus provides the loop workloads for the experiments.
//
// The paper evaluates on 1258 innermost loops extracted from the Perfect
// Club benchmark with the authors' Fortran front-end — an artifact we do
// not have. As a substitution (DESIGN.md §4) this package generates a
// deterministic, seeded synthetic corpus whose distributions follow the
// published characterizations of scientific loop suites: body sizes
// clustered between 4 and 20 operations with a tail to ~80, an operation
// mix of roughly 45% ALU / 38% memory / 17% multiply-divide, recurrence
// circuits in a bit under half of the loops, and small loop-carried
// distances. Hand-written scientific kernels (daxpy, dot product, FIR,
// stencils, Livermore-style recurrences) live in kernels.go.
package corpus

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"

	"vliwq/internal/ir"
)

// Params controls the synthetic generator. The zero value of every knob
// selects the default documented next to it.
type Params struct {
	Seed int64 // stream seed; same seed, same corpus
	N    int   // number of loops; default PaperCorpusSize

	// MeanLogOps/SigmaLogOps parameterize the log-normal body-size
	// distribution; defaults 2.3/0.75 give a median of ~10 ops.
	MeanLogOps  float64
	SigmaLogOps float64
	MinOps      int // default 3
	MaxOps      int // default 80

	// RecurrenceProb is the probability a loop receives at least one
	// recurrence circuit; default 0.45.
	RecurrenceProb float64
	// CarriedProb is the probability of an extra non-circuit loop-carried
	// flow dependence; default 0.3.
	CarriedProb float64
	// MemDepProb is the probability of a store->load memory ordering
	// dependence; default 0.25.
	MemDepProb float64
	// ReuseProb is the probability an operand deliberately reuses an
	// already-consumed value instead of a fresh one; default 0.12. Raising
	// it widens fanout (more multi-consumer values, so more copy trees and
	// more cross-cluster pressure once partitioned).
	ReuseProb float64
}

// PaperCorpusSize is the loop count of the paper's benchmark set.
const PaperCorpusSize = 1258

// DefaultSeed seeds the standard corpus. Fixed so every experiment run and
// every test sees the same 1258 loops.
const DefaultSeed = 19980330 // IPPS/SPDP 1998, Orlando

func (p Params) withDefaults() Params {
	if p.N == 0 {
		p.N = PaperCorpusSize
	}
	if p.MeanLogOps == 0 {
		p.MeanLogOps = 2.3
	}
	if p.SigmaLogOps == 0 {
		p.SigmaLogOps = 0.75
	}
	if p.MinOps == 0 {
		p.MinOps = 3
	}
	if p.MaxOps == 0 {
		p.MaxOps = 80
	}
	if p.RecurrenceProb == 0 {
		p.RecurrenceProb = 0.45
	}
	if p.CarriedProb == 0 {
		p.CarriedProb = 0.3
	}
	if p.MemDepProb == 0 {
		p.MemDepProb = 0.25
	}
	if p.ReuseProb == 0 {
		p.ReuseProb = 0.12
	}
	return p
}

var (
	standardOnce sync.Once
	standard     []*ir.Loop
	stressedOnce sync.Once
	stressed     []*ir.Loop
)

// Standard returns the 1258-loop corpus used by all experiments. The corpus
// is generated once and shared: generation is deterministic, every consumer
// treats loops as read-only, and the shared identity is what lets the
// experiment pipeline cache compilations across figures. Callers that need
// a private mutable corpus must use Generate.
func Standard() []*ir.Loop {
	standardOnce.Do(func() { standard = Generate(Params{Seed: DefaultSeed}) })
	return standard
}

// StressedSize is the loop count of the stressed corpus preset: big enough
// for stable fractions, small enough that a portfolio sweep over it stays
// interactive.
const StressedSize = 256

// StressedSeed seeds the stressed corpus; fixed so every run sees the same
// loops, and distinct from DefaultSeed so the presets never alias.
const StressedSeed = 19980331

// StressedParams parameterizes the stressed corpus preset: bigger bodies,
// heavy deliberate value reuse (wide fanout, so copy trees and
// multi-consumer values everywhere) and dense cross-iteration flow. These
// are the loops whose partition quality decides whether the modulo
// schedule reaches MII — exactly the regime where racing several
// partition heuristics pays (see internal/sched's portfolio and the exp
// portfolio sweep).
func StressedParams() Params {
	return Params{
		Seed:           StressedSeed,
		N:              StressedSize,
		MeanLogOps:     3.0,
		SigmaLogOps:    0.5,
		MinOps:         12,
		MaxOps:         80,
		RecurrenceProb: 0.65,
		CarriedProb:    0.55,
		MemDepProb:     0.3,
		ReuseProb:      0.35,
	}
}

// Stressed returns the memoized stressed corpus (StressedParams applied to
// Generate). Like Standard, the slice is shared and read-only; callers
// needing a private copy must use Generate.
func Stressed() []*ir.Loop {
	stressedOnce.Do(func() { stressed = Generate(StressedParams()) })
	return stressed
}

// Generate produces a deterministic synthetic corpus.
func Generate(p Params) []*ir.Loop {
	p = p.withDefaults()
	rng := rand.New(rand.NewSource(p.Seed))
	loops := make([]*ir.Loop, 0, p.N)
	for i := 0; i < p.N; i++ {
		l := genLoop(rng, p, i)
		if err := l.Validate(); err != nil {
			// The generator is constructed to always emit valid loops; a
			// failure here is a bug worth crashing on.
			panic(fmt.Sprintf("corpus: generated invalid loop %d: %v", i, err))
		}
		loops = append(loops, l)
	}
	return loops
}

// genLoop builds one synthetic innermost loop.
func genLoop(rng *rand.Rand, p Params, idx int) *ir.Loop {
	l := ir.New(fmt.Sprintf("synth%04d", idx))
	l.Trip = 16 + rng.Intn(497) // 16..512

	n := int(math.Exp(p.MeanLogOps + p.SigmaLogOps*rng.NormFloat64()))
	if n < p.MinOps {
		n = p.MinOps
	}
	if n > p.MaxOps {
		n = p.MaxOps
	}

	// Emit ops front to back; each op draws operands from earlier ops with
	// a recency bias, mimicking expression trees over loaded array values.
	// Most values are consumed exactly once (array expression code);
	// occasional reuse (common subexpressions, shared index arithmetic)
	// creates the multi-consumer values that need copy operations.
	reuseProb := p.ReuseProb
	var producers []*ir.Op // ops with results, candidates as operands
	uses := map[int]int{}
	anyFresh := func() bool {
		for _, p := range producers {
			if uses[p.ID] == 0 {
				return true
			}
		}
		return false
	}
	pick := func() *ir.Op {
		if len(producers) == 0 {
			return nil
		}
		if rng.Float64() < reuseProb {
			// Deliberate reuse: any earlier value, recency-biased.
			k := len(producers) - 1 - min(geometric(rng, 0.45), len(producers)-1)
			uses[producers[k].ID]++
			return producers[k]
		}
		// Prefer the most recent value not yet consumed.
		for k := len(producers) - 1; k >= 0; k-- {
			if uses[producers[k].ID] == 0 {
				uses[producers[k].ID]++
				return producers[k]
			}
		}
		// Everything is consumed: reuse one of the least-used values so
		// fanout spreads instead of piling onto one op.
		minUses := uses[producers[0].ID]
		var least []*ir.Op
		for _, p := range producers {
			switch {
			case uses[p.ID] < minUses:
				minUses = uses[p.ID]
				least = least[:0]
				least = append(least, p)
			case uses[p.ID] == minUses:
				least = append(least, p)
			}
		}
		p := least[rng.Intn(len(least))]
		uses[p.ID]++
		return p
	}
	for len(l.Ops) < n {
		r := rng.Float64()
		switch {
		case r < 0.25: // load
			ld := l.AddOp(ir.KLoad, "")
			if len(producers) > 0 && rng.Float64() < 0.3 {
				l.AddFlow(pick(), ld) // indexed through a computed address
			}
			producers = append(producers, ld)
		case r < 0.38: // store
			if len(producers) == 0 {
				producers = append(producers, l.AddOp(ir.KLoad, ""))
				continue
			}
			st := l.AddOp(ir.KStore, "")
			l.AddFlow(pick(), st)
			if rng.Float64() < 0.3 && len(producers) > 1 {
				l.AddFlow(pick(), st) // computed address
			}
		case r < 0.83: // ALU
			op := l.AddOp(ir.KAdd, "")
			attachOperands(l, rng, op, producers, pick, anyFresh)
			producers = append(producers, op)
		case r < 0.97: // multiply
			op := l.AddOp(ir.KMul, "")
			attachOperands(l, rng, op, producers, pick, anyFresh)
			producers = append(producers, op)
		default: // divide
			op := l.AddOp(ir.KDiv, "")
			attachOperands(l, rng, op, producers, pick, anyFresh)
			producers = append(producers, op)
		}
	}

	if rng.Float64() < p.RecurrenceProb {
		addRecurrence(l, rng)
		if rng.Float64() < 0.3 {
			addRecurrence(l, rng)
		}
	}
	if rng.Float64() < p.CarriedProb {
		addCarried(l, rng)
	}
	if rng.Float64() < p.MemDepProb {
		addMemDep(l, rng)
	}
	sinkDeadValues(l)
	return l
}

// attachOperands gives a compute op one or two operands when values are
// available. The second operand is taken only when an unconsumed value
// exists (or through deliberate reuse), keeping value production and
// consumption balanced: like real array expression code, most values are
// consumed exactly once, and multi-consumer values come from explicit
// common-subexpression reuse rather than from operand starvation.
func attachOperands(l *ir.Loop, rng *rand.Rand, op *ir.Op, producers []*ir.Op, pick func() *ir.Op, anyFresh func() bool) {
	if len(producers) == 0 {
		return // leaf compute (loop-invariant or induction-derived)
	}
	l.AddFlow(pick(), op)
	if rng.Float64() < 0.7 && (anyFresh() || rng.Float64() < 0.15) {
		l.AddFlow(pick(), op)
	}
}

// addRecurrence closes a circuit: it finds an op v with a zero-distance
// ancestor u that still has a free input slot and adds a carried flow
// dependence v -> u, creating the circuit u -> ... -> v -> u. Distances are
// biased toward 1, the dominant case in real loops. Values not yet
// consumed are preferred as the circuit closer — the accumulator pattern —
// so recurrences do not force fanout (and hence copy operations) onto
// their own critical circuit, matching how reductions look in real code.
func addRecurrence(l *ir.Loop, rng *rand.Rand) {
	flowIn := make([]int, len(l.Ops))
	fanout := make([]int, len(l.Ops))
	preds := make([][]int, len(l.Ops))
	for _, d := range l.Deps {
		if d.Kind == ir.Flow {
			flowIn[d.To]++
			fanout[d.From]++
			if d.Dist == 0 {
				preds[d.To] = append(preds[d.To], d.From)
			}
		}
	}
	var fresh []*ir.Op
	for _, op := range l.Ops {
		if op.Kind.HasResult() && fanout[op.ID] == 0 {
			fresh = append(fresh, op)
		}
	}
	// First choice: a tight copy-free accumulator circuit — an unconsumed
	// v whose direct predecessor u feeds nothing but v and has a free
	// input slot. This is the dominant recurrence shape in real loops.
	rng.Shuffle(len(fresh), func(i, j int) { fresh[i], fresh[j] = fresh[j], fresh[i] })
	for _, v := range fresh {
		for _, a := range preds[v.ID] {
			u := l.Ops[a]
			if fanout[a] == 1 && flowIn[a] < u.Kind.MaxInputs() {
				dist := 1 + geometric(rng, 0.7)
				if dist > 4 {
					dist = 4
				}
				l.AddCarried(v, u, dist)
				return
			}
		}
	}
	// Otherwise: general circuits, occasionally producing the
	// stored-and-carried pattern that genuinely costs a copy.
	for attempt := 0; attempt < 8; attempt++ {
		var v *ir.Op
		if len(fresh) > 0 {
			v = fresh[rng.Intn(len(fresh))]
		} else {
			v = l.Ops[rng.Intn(len(l.Ops))]
		}
		if !v.Kind.HasResult() {
			continue
		}
		// Collect ancestors of v in the zero-distance flow graph.
		seen := make([]bool, len(l.Ops))
		stack := []int{v.ID}
		var ancestors []int
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, a := range preds[x] {
				if !seen[a] {
					seen[a] = true
					ancestors = append(ancestors, a)
					stack = append(stack, a)
				}
			}
		}
		// Real reductions are tight: the dominant pattern is a 2-op
		// circuit whose nodes feed nothing else, so the circuit stays
		// copy-free under a QRF. Prefer a direct predecessor of v whose
		// value is consumed only by v; fall back to arbitrary ancestors
		// (those occasionally produce the stored-and-carried pattern the
		// paper pays a copy for — its ~5% residue).
		rng.Shuffle(len(ancestors), func(i, j int) { ancestors[i], ancestors[j] = ancestors[j], ancestors[i] })
		isDirect := map[int]bool{}
		for _, a := range preds[v.ID] {
			isDirect[a] = true
		}
		rank := func(a int) int {
			switch {
			case isDirect[a] && fanout[a] == 1:
				return 0
			case isDirect[a]:
				return 1
			default:
				return 2
			}
		}
		sort.SliceStable(ancestors, func(i, j int) bool { return rank(ancestors[i]) < rank(ancestors[j]) })
		for _, a := range ancestors {
			u := l.Ops[a]
			if flowIn[a] >= u.Kind.MaxInputs() {
				continue
			}
			dist := 1 + geometric(rng, 0.7)
			if dist > 4 {
				dist = 4
			}
			l.AddCarried(v, u, dist)
			return
		}
	}
	// Fall back to a self-recurrence on any op with a free input.
	for _, op := range l.Ops {
		if op.Kind.HasResult() && flowIn[op.ID] < op.Kind.MaxInputs() {
			l.AddCarried(op, op, 1)
			return
		}
	}
}

// addCarried adds a loop-carried flow dependence between two ops where the
// consumer has a free input slot. It models cross-iteration value flow
// without recurrence intent (b[i] uses a[i-1] patterns), so edges that
// would close a circuit are rejected — circuits are addRecurrence's job,
// where their copy-freedom is controlled deliberately.
func addCarried(l *ir.Loop, rng *rand.Rand) {
	flowIn := make([]int, len(l.Ops))
	succs := make([][]int, len(l.Ops))
	for _, d := range l.Deps {
		if d.Kind == ir.Flow {
			flowIn[d.To]++
			succs[d.From] = append(succs[d.From], d.To)
		}
	}
	reaches := func(from, to int) bool {
		seen := make([]bool, len(l.Ops))
		stack := []int{from}
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if x == to {
				return true
			}
			for _, s := range succs[x] {
				if !seen[s] {
					seen[s] = true
					stack = append(stack, s)
				}
			}
		}
		return false
	}
	for attempt := 0; attempt < 8; attempt++ {
		from := l.Ops[rng.Intn(len(l.Ops))]
		to := l.Ops[rng.Intn(len(l.Ops))]
		if !from.Kind.HasResult() || flowIn[to.ID] >= to.Kind.MaxInputs() {
			continue
		}
		if from.ID == to.ID || reaches(to.ID, from.ID) {
			continue // would close a circuit
		}
		dist := 1 + geometric(rng, 0.6)
		if dist > 4 {
			dist = 4
		}
		l.AddCarried(from, to, dist)
		return
	}
}

// addMemDep adds a store->load ordering dependence with a small distance,
// modeling cross-iteration aliasing the compiler could not disprove.
func addMemDep(l *ir.Loop, rng *rand.Rand) {
	var stores, loads []*ir.Op
	for _, op := range l.Ops {
		switch op.Kind {
		case ir.KStore:
			stores = append(stores, op)
		case ir.KLoad:
			loads = append(loads, op)
		}
	}
	if len(stores) == 0 || len(loads) == 0 {
		return
	}
	st := stores[rng.Intn(len(stores))]
	ld := loads[rng.Intn(len(loads))]
	dist := 1 + rng.Intn(2)
	if st.ID == ld.ID && dist == 0 {
		return
	}
	l.AddDep(ir.Dep{From: st.ID, To: ld.ID, Dist: dist, Kind: ir.Mem})
}

// sinkDeadValues appends a store for every produced value that has no
// consumer, so that queues never accumulate unread values (real codes write
// their results to memory; the paper's model has no notion of discarding a
// queued value).
func sinkDeadValues(l *ir.Loop) {
	consumed := make([]bool, len(l.Ops))
	for _, d := range l.Deps {
		if d.Kind == ir.Flow {
			consumed[d.From] = true
		}
	}
	n := len(l.Ops)
	for id := 0; id < n; id++ {
		op := l.Ops[id]
		if op.Kind.HasResult() && !consumed[id] {
			st := l.AddOp(ir.KStore, "")
			l.AddFlow(op, st)
		}
	}
}

// geometric samples a geometric distribution with success probability p
// (support 0, 1, 2, ...).
func geometric(rng *rand.Rand, p float64) int {
	n := 0
	for rng.Float64() > p && n < 32 {
		n++
	}
	return n
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
