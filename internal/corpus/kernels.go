package corpus

import "vliwq/internal/ir"

// Hand-written scientific kernels: the loop shapes the paper's introduction
// motivates (vector updates, reductions, filters, stencils, recurrences).
// Loop-invariant scalars (the a in daxpy, filter taps, etc.) are modeled as
// per-iteration leaf loads — the paper's baseline treatment; its §5 names
// invariant handling as work in progress, which exp.AblationInvariants
// quantifies by comparing against hypothetically hoisted variants.

// Kernels returns fresh copies of all hand-written kernels.
func Kernels() []*ir.Loop {
	return []*ir.Loop{
		Daxpy(), Ddot(), FIR5(), Stencil3(), Horner(), Hydro(),
		Tridiag(), PrefixSum(), ComplexMul(), DivNorm(), Wave2(), SpMVRow(),
	}
}

// KernelByName returns the named kernel, or nil.
func KernelByName(name string) *ir.Loop {
	for _, k := range Kernels() {
		if k.Name == name {
			return k
		}
	}
	return nil
}

// Daxpy is y[i] = a*x[i] + y[i] — the BLAS level-1 update.
func Daxpy() *ir.Loop {
	l := ir.New("daxpy")
	l.Trip = 256
	a := l.AddOp(ir.KLoad, "a")
	x := l.AddOp(ir.KLoad, "x")
	y := l.AddOp(ir.KLoad, "y")
	m := l.AddOp(ir.KMul, "ax")
	l.AddFlow(a, m)
	l.AddFlow(x, m)
	s := l.AddOp(ir.KAdd, "sum")
	l.AddFlow(m, s)
	l.AddFlow(y, s)
	st := l.AddOp(ir.KStore, "sty")
	l.AddFlow(s, st)
	return l
}

// Ddot is s += x[i]*y[i] — a reduction with a 1-cycle recurrence on the
// accumulator; the partial sum is also stored each iteration so the value
// always has a consumer.
func Ddot() *ir.Loop {
	l := ir.New("ddot")
	l.Trip = 256
	x := l.AddOp(ir.KLoad, "x")
	y := l.AddOp(ir.KLoad, "y")
	m := l.AddOp(ir.KMul, "xy")
	l.AddFlow(x, m)
	l.AddFlow(y, m)
	acc := l.AddOp(ir.KAdd, "acc")
	l.AddFlow(m, acc)
	l.AddCarried(acc, acc, 1)
	st := l.AddOp(ir.KStore, "sts")
	l.AddFlow(acc, st)
	return l
}

// FIR5 is a 5-tap finite impulse response filter:
// y[i] = sum_j c[j]*x[i+j].
func FIR5() *ir.Loop {
	l := ir.New("fir5")
	l.Trip = 200
	var sum *ir.Op
	for j := 0; j < 5; j++ {
		c := l.AddOp(ir.KLoad, "")
		x := l.AddOp(ir.KLoad, "")
		m := l.AddOp(ir.KMul, "")
		l.AddFlow(c, m)
		l.AddFlow(x, m)
		if sum == nil {
			sum = m
			continue
		}
		s := l.AddOp(ir.KAdd, "")
		l.AddFlow(sum, s)
		l.AddFlow(m, s)
		sum = s
	}
	st := l.AddOp(ir.KStore, "sty")
	l.AddFlow(sum, st)
	return l
}

// Stencil3 is a[i] = (b[i-1] + b[i] + b[i+1]) * c.
func Stencil3() *ir.Loop {
	l := ir.New("stencil3")
	l.Trip = 300
	b0 := l.AddOp(ir.KLoad, "bm1")
	b1 := l.AddOp(ir.KLoad, "b0")
	b2 := l.AddOp(ir.KLoad, "bp1")
	c := l.AddOp(ir.KLoad, "c")
	s1 := l.AddOp(ir.KAdd, "s1")
	l.AddFlow(b0, s1)
	l.AddFlow(b1, s1)
	s2 := l.AddOp(ir.KAdd, "s2")
	l.AddFlow(s1, s2)
	l.AddFlow(b2, s2)
	m := l.AddOp(ir.KMul, "m")
	l.AddFlow(s2, m)
	l.AddFlow(c, m)
	st := l.AddOp(ir.KStore, "sta")
	l.AddFlow(m, st)
	return l
}

// Horner evaluates a polynomial: p = p*x + c[i], a multiply-add recurrence.
func Horner() *ir.Loop {
	l := ir.New("horner")
	l.Trip = 64
	x := l.AddOp(ir.KLoad, "x")
	c := l.AddOp(ir.KLoad, "c")
	m := l.AddOp(ir.KMul, "px")
	l.AddFlow(x, m)
	a := l.AddOp(ir.KAdd, "p")
	l.AddFlow(m, a)
	l.AddFlow(c, a)
	l.AddCarried(a, m, 1) // p from the previous iteration feeds the multiply
	st := l.AddOp(ir.KStore, "stp")
	l.AddFlow(a, st)
	return l
}

// Hydro is Livermore kernel 1 (hydro fragment):
// x[k] = q + y[k]*(r*z[k+10] + t*z[k+11]).
func Hydro() *ir.Loop {
	l := ir.New("hydro")
	l.Trip = 400
	y := l.AddOp(ir.KLoad, "y")
	z10 := l.AddOp(ir.KLoad, "z10")
	z11 := l.AddOp(ir.KLoad, "z11")
	r := l.AddOp(ir.KLoad, "r")
	t := l.AddOp(ir.KLoad, "t")
	q := l.AddOp(ir.KLoad, "q")
	m1 := l.AddOp(ir.KMul, "rz")
	l.AddFlow(r, m1)
	l.AddFlow(z10, m1)
	m2 := l.AddOp(ir.KMul, "tz")
	l.AddFlow(t, m2)
	l.AddFlow(z11, m2)
	a1 := l.AddOp(ir.KAdd, "inner")
	l.AddFlow(m1, a1)
	l.AddFlow(m2, a1)
	m3 := l.AddOp(ir.KMul, "ym")
	l.AddFlow(y, m3)
	l.AddFlow(a1, m3)
	a2 := l.AddOp(ir.KAdd, "outer")
	l.AddFlow(q, a2)
	l.AddFlow(m3, a2)
	st := l.AddOp(ir.KStore, "stx")
	l.AddFlow(a2, st)
	return l
}

// Tridiag is a first-order linear recurrence:
// x[i] = z[i]*(y[i] - x[i-1]) (Livermore kernel 5 shape).
func Tridiag() *ir.Loop {
	l := ir.New("tridiag")
	l.Trip = 128
	z := l.AddOp(ir.KLoad, "z")
	y := l.AddOp(ir.KLoad, "y")
	sub := l.AddOp(ir.KAdd, "diff")
	l.AddFlow(y, sub)
	m := l.AddOp(ir.KMul, "x")
	l.AddFlow(z, m)
	l.AddFlow(sub, m)
	l.AddCarried(m, sub, 1) // x[i-1] feeds the subtract
	st := l.AddOp(ir.KStore, "stx")
	l.AddFlow(m, st)
	return l
}

// PrefixSum is s[i] = s[i-1] + a[i].
func PrefixSum() *ir.Loop {
	l := ir.New("prefixsum")
	l.Trip = 256
	a := l.AddOp(ir.KLoad, "a")
	s := l.AddOp(ir.KAdd, "s")
	l.AddFlow(a, s)
	l.AddCarried(s, s, 1)
	st := l.AddOp(ir.KStore, "sts")
	l.AddFlow(s, st)
	return l
}

// ComplexMul multiplies two complex vectors:
// (cr,ci) = (ar*br - ai*bi, ar*bi + ai*br); each input value is consumed
// twice, exercising copy insertion.
func ComplexMul() *ir.Loop {
	l := ir.New("complexmul")
	l.Trip = 200
	ar := l.AddOp(ir.KLoad, "ar")
	ai := l.AddOp(ir.KLoad, "ai")
	br := l.AddOp(ir.KLoad, "br")
	bi := l.AddOp(ir.KLoad, "bi")
	m1 := l.AddOp(ir.KMul, "arbr")
	l.AddFlow(ar, m1)
	l.AddFlow(br, m1)
	m2 := l.AddOp(ir.KMul, "aibi")
	l.AddFlow(ai, m2)
	l.AddFlow(bi, m2)
	m3 := l.AddOp(ir.KMul, "arbi")
	l.AddFlow(ar, m3)
	l.AddFlow(bi, m3)
	m4 := l.AddOp(ir.KMul, "aibr")
	l.AddFlow(ai, m4)
	l.AddFlow(br, m4)
	cr := l.AddOp(ir.KAdd, "cr")
	l.AddFlow(m1, cr)
	l.AddFlow(m2, cr)
	ci := l.AddOp(ir.KAdd, "ci")
	l.AddFlow(m3, ci)
	l.AddFlow(m4, ci)
	st1 := l.AddOp(ir.KStore, "stcr")
	l.AddFlow(cr, st1)
	st2 := l.AddOp(ir.KStore, "stci")
	l.AddFlow(ci, st2)
	return l
}

// DivNorm normalizes through a division inside a recurrence:
// x = (x + a[i]) / b[i]; the long divide latency stresses RecMII.
func DivNorm() *ir.Loop {
	l := ir.New("divnorm")
	l.Trip = 100
	a := l.AddOp(ir.KLoad, "a")
	b := l.AddOp(ir.KLoad, "b")
	s := l.AddOp(ir.KAdd, "s")
	l.AddFlow(a, s)
	d := l.AddOp(ir.KDiv, "x")
	l.AddFlow(s, d)
	l.AddFlow(b, d)
	l.AddCarried(d, s, 1)
	st := l.AddOp(ir.KStore, "stx")
	l.AddFlow(d, st)
	return l
}

// Wave2 is a second-order recurrence: u[i] = 2*u[i-1] - u[i-2] + f[i],
// carrying distances 1 and 2.
func Wave2() *ir.Loop {
	l := ir.New("wave2")
	l.Trip = 150
	f := l.AddOp(ir.KLoad, "f")
	twice := l.AddOp(ir.KMul, "2u") // 2*u[i-1]
	diff := l.AddOp(ir.KAdd, "du")  // 2*u[i-1] - u[i-2]
	l.AddFlow(twice, diff)
	u := l.AddOp(ir.KAdd, "u")
	l.AddFlow(diff, u)
	l.AddFlow(f, u)
	l.AddCarried(u, twice, 1)
	l.AddCarried(u, diff, 2)
	st := l.AddOp(ir.KStore, "stu")
	l.AddFlow(u, st)
	return l
}

// SpMVRow is one row of a sparse matrix-vector product:
// y += val[j] * x[col[j]] — an indirect load feeding a reduction.
func SpMVRow() *ir.Loop {
	l := ir.New("spmvrow")
	l.Trip = 80
	col := l.AddOp(ir.KLoad, "col")
	x := l.AddOp(ir.KLoad, "x")
	l.AddFlow(col, x) // indirect address
	val := l.AddOp(ir.KLoad, "val")
	m := l.AddOp(ir.KMul, "vx")
	l.AddFlow(val, m)
	l.AddFlow(x, m)
	acc := l.AddOp(ir.KAdd, "acc")
	l.AddFlow(m, acc)
	l.AddCarried(acc, acc, 1)
	st := l.AddOp(ir.KStore, "sty")
	l.AddFlow(acc, st)
	return l
}
