package corpus

import (
	"fmt"
	"sort"
	"sync"

	"vliwq/internal/frontend"
	"vliwq/internal/ir"
)

// The traced preset: checked-in RISC instruction traces lifted through
// internal/frontend. Unlike the synthetic presets these loops carry the
// fingerprints of real scalar code — bumped induction pointers, invariant
// bias streams, accumulator recurrences and glue-separated regions — so
// they exercise the frontend's dependence inference and the whole-program
// scheduler (internal/program) end to end.

// tracedKernelmix mirrors internal/frontend/testdata/kernel.trace: a small
// signal-processing pipeline (scale, correlate, smooth, write back) whose
// L2 region classifies hard on clustered machines.
const tracedKernelmix = `# A small signal-processing pipeline: scale, correlate, smooth, write back.
prog kernelmix

	mov r0, 0
	mov r1, 0
	mov r2, 1000
	mov r3, 2000
	mov r4, 3000
	mov r5, 64
	mov r6, 3
	mov r7, 4000
	mov r8, 0

# Region L0: scale x[] by r6 into y[].
L0:
	trip 64
	ld r9, [r2]
	mul r10, r9, r6
	st r10, [r3]
	add r2, r2, 8
	add r3, r3, 8
	sub r5, r5, 1
	bne r5, r0, L0

	mov r2, 1000
	mov r5, 96

# Region L1: dot product of x[] and y[] into r1.
L1:
	trip 96
	ld r9, [r2]
	ld r10, [r3]
	mul r11, r9, r10
	add r1, r1, r11
	add r2, r2, 8
	add r3, r3, 8
	sub r5, r5, 1
	bne r5, r0, L1

	mov r2, 1000
	mov r3, 2000
	mov r5, 80
	mov r12, 5
	mov r13, 7

# Region L2: two-tap weighted smooth with a bias stream — the hard region.
L2:
	trip 80
	ld r9, [r2]
	ld r10, [r3]
	ld r11, [r4]
	mul r14, r9, r12
	mul r15, r10, r13
	add r16, r14, r15
	add r16, r16, r11
	st r16, [r7]
	add r2, r2, 8
	add r3, r3, 8
	add r4, r4, 8
	add r7, r7, 8
	sub r5, r5, 1
	bne r5, r0, L2

	mov r5, 32

# Region L3: block copy w[] -> x[].
L3:
	trip 32
	ld r9, [r7]
	st r9, [r2]
	add r7, r7, 8
	add r2, r2, 8
	sub r5, r5, 1
	bne r5, r0, L3

	st r1, [r4]
`

// tracedStencilsum: a two-region trace — a neighbour sum over a stream
// followed by a sum-of-squares reduction.
const tracedStencilsum = `prog stencilsum

	mov r0, 0
	mov r1, 0
	mov r2, 1000
	mov r3, 2000
	mov r5, 48

# Region L0: y[i] = x[i] + x[i+1].
L0:
	trip 48
	ld r9, [r2]
	ld r10, [r2+8]
	add r11, r9, r10
	st r11, [r3]
	add r2, r2, 8
	add r3, r3, 8
	sub r5, r5, 1
	bne r5, r0, L0

	mov r3, 2000
	mov r5, 40

# Region L1: r1 += y[i]^2.
L1:
	trip 40
	ld r9, [r3]
	mul r10, r9, r9
	add r1, r1, r10
	add r3, r3, 8
	sub r5, r5, 1
	bne r5, r0, L1

	st r1, [r3]
`

var (
	tracedOnce  sync.Once
	tracedProgs []*frontend.Program
	tracedLoops []*ir.Loop
)

// TracedPrograms returns the checked-in RISC traces parsed and lifted
// through internal/frontend. Like Standard and Stressed, the slice is
// shared and read-only.
func TracedPrograms() []*frontend.Program {
	tracedOnce.Do(func() {
		for _, src := range []string{tracedKernelmix, tracedStencilsum} {
			p, err := frontend.ParseString(src)
			if err != nil {
				panic(fmt.Sprintf("corpus: embedded trace does not parse: %v", err))
			}
			tracedProgs = append(tracedProgs, p)
			for _, r := range p.Regions {
				tracedLoops = append(tracedLoops, r.Loop)
			}
		}
	})
	return tracedProgs
}

// Traced returns every loop region lifted from the traced programs, in
// program order — the trace-derived counterpart of Standard/Stressed for
// experiments and tools that consume plain loop corpora.
func Traced() []*ir.Loop {
	TracedPrograms()
	return tracedLoops
}

// presets is the named-corpus registry shared by the cmd tools.
var presets = map[string]func() []*ir.Loop{
	"standard": Standard,
	"stressed": Stressed,
	"traced":   Traced,
}

// PresetNames lists the valid preset names in sorted order.
func PresetNames() []string {
	names := make([]string, 0, len(presets))
	for name := range presets {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Preset resolves a named corpus. Unknown names fail with the sorted list
// of valid presets, so tool errors are self-describing.
func Preset(name string) ([]*ir.Loop, error) {
	fn, ok := presets[name]
	if !ok {
		return nil, fmt.Errorf("unknown preset %q (valid: %s)", name, joinNames())
	}
	return fn(), nil
}

func joinNames() string {
	out := ""
	for i, n := range PresetNames() {
		if i > 0 {
			out += ", "
		}
		out += n
	}
	return out
}
