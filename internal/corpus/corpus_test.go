package corpus

import (
	"testing"

	"vliwq/internal/ir"
	"vliwq/internal/sched"
)

func TestStandardCorpusShape(t *testing.T) {
	loops := Standard()
	if len(loops) != PaperCorpusSize {
		t.Fatalf("corpus size %d, want %d", len(loops), PaperCorpusSize)
	}
	for _, l := range loops {
		if err := l.Validate(); err != nil {
			t.Fatalf("%s: %v", l.Name, err)
		}
	}
}

func TestCorpusDeterministic(t *testing.T) {
	a := Generate(Params{Seed: 99, N: 30})
	b := Generate(Params{Seed: 99, N: 30})
	for i := range a {
		if ir.FormatString(a[i]) != ir.FormatString(b[i]) {
			t.Fatalf("loop %d differs between identically seeded runs", i)
		}
	}
	c := Generate(Params{Seed: 100, N: 30})
	same := 0
	for i := range a {
		if ir.FormatString(a[i]) == ir.FormatString(c[i]) {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical corpora")
	}
}

// TestCorpusDistributions sanity-checks the generator against its declared
// targets: op mix, recurrence frequency, body sizes.
func TestCorpusDistributions(t *testing.T) {
	loops := Standard()
	var ops, ls, alu, muldiv int
	var withRec, small, big int
	sizes := 0
	for _, l := range loops {
		sizes += len(l.Ops)
		if len(l.Ops) <= 20 {
			small++
		}
		if len(l.Ops) > 60 {
			big++
		}
		if sched.RecMII(l) > 1 {
			withRec++
		}
		for _, op := range l.Ops {
			ops++
			switch op.Kind {
			case ir.KLoad, ir.KStore:
				ls++
			case ir.KAdd:
				alu++
			case ir.KMul, ir.KDiv:
				muldiv++
			}
		}
	}
	frac := func(n int) float64 { return float64(n) / float64(ops) }
	if f := frac(ls); f < 0.25 || f > 0.55 {
		t.Errorf("memory-op fraction %.2f outside [0.25,0.55]", f)
	}
	if f := frac(alu); f < 0.3 || f > 0.6 {
		t.Errorf("ALU fraction %.2f outside [0.3,0.6]", f)
	}
	if f := frac(muldiv); f < 0.08 || f > 0.3 {
		t.Errorf("mul/div fraction %.2f outside [0.08,0.3]", f)
	}
	recFrac := float64(withRec) / float64(len(loops))
	if recFrac < 0.25 || recFrac > 0.65 {
		t.Errorf("recurrence fraction %.2f outside [0.25,0.65]", recFrac)
	}
	mean := float64(sizes) / float64(len(loops))
	if mean < 6 || mean > 25 {
		t.Errorf("mean body size %.1f outside [6,25]", mean)
	}
	if small < len(loops)/2 {
		t.Errorf("only %d/%d loops are small (<=20 ops)", small, len(loops))
	}
	if big == 0 {
		t.Error("no large loops in the corpus tail")
	}
}

// TestCorpusNoDeadValues: every produced value has at least one consumer,
// so queues always drain.
func TestCorpusNoDeadValues(t *testing.T) {
	for _, l := range Generate(Params{Seed: 4, N: 100}) {
		consumed := make([]bool, len(l.Ops))
		for _, d := range l.Deps {
			if d.Kind == ir.Flow {
				consumed[d.From] = true
			}
		}
		for id, op := range l.Ops {
			if op.Kind.HasResult() && !consumed[id] {
				t.Fatalf("%s: %v produces a dead value", l.Name, op)
			}
		}
	}
}

func TestKernelsValidate(t *testing.T) {
	ks := Kernels()
	if len(ks) < 12 {
		t.Fatalf("only %d kernels", len(ks))
	}
	seen := map[string]bool{}
	for _, k := range ks {
		if err := k.Validate(); err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
		if seen[k.Name] {
			t.Fatalf("duplicate kernel name %s", k.Name)
		}
		seen[k.Name] = true
	}
}

func TestKernelByName(t *testing.T) {
	if KernelByName("daxpy") == nil {
		t.Fatal("daxpy missing")
	}
	if KernelByName("nope") != nil {
		t.Fatal("unknown kernel found")
	}
}

func TestKernelsAreFreshCopies(t *testing.T) {
	a := KernelByName("daxpy")
	a.Ops[0].Kind = ir.KDiv
	b := KernelByName("daxpy")
	if b.Ops[0].Kind == ir.KDiv {
		t.Fatal("kernels share state across calls")
	}
}

// TestKernelRecurrenceStructure pins the recurrence-bound kernels: those
// whose RecMII exceeds 1 (ddot/prefixsum/spmvrow carry recurrences too,
// but a 1-cycle ALU self-loop does not raise RecMII above 1).
func TestKernelRecurrenceStructure(t *testing.T) {
	rec := map[string]bool{
		"horner": true, "tridiag": true, "divnorm": true, "wave2": true,
		"ddot": false, "prefixsum": false, "spmvrow": false,
		"daxpy": false, "fir5": false, "stencil3": false, "hydro": false,
		"complexmul": false,
	}
	for name, wantRec := range rec {
		l := KernelByName(name)
		if l == nil {
			t.Fatalf("kernel %s missing", name)
		}
		got := sched.RecMII(l) > 1
		if got != wantRec {
			t.Errorf("%s: recurrence-bound=%v, want %v (RecMII=%d)", name, got, wantRec, sched.RecMII(l))
		}
	}
}
