package corpus

import (
	"testing"

	"vliwq/internal/ir"
)

func TestStressedCorpusShape(t *testing.T) {
	loops := Stressed()
	if len(loops) != StressedSize {
		t.Fatalf("stressed corpus has %d loops, want %d", len(loops), StressedSize)
	}
	// Memoized: every call shares the identical slice (the pipeline cache
	// keys loops by pointer).
	again := Stressed()
	for i := range loops {
		if loops[i] != again[i] {
			t.Fatalf("Stressed() returned a fresh loop at %d; must memoize", i)
		}
	}
	for _, l := range loops {
		if err := l.Validate(); err != nil {
			t.Fatalf("%s: %v", l.Name, err)
		}
		if len(l.Ops) < 12 {
			t.Fatalf("%s has %d ops, below the stressed floor", l.Name, len(l.Ops))
		}
	}
}

// TestStressedIsStressed verifies the preset earns its name: markedly more
// multi-consumer values (fanout pressure, hence copy trees and cross-
// cluster traffic) than the standard corpus.
func TestStressedIsStressed(t *testing.T) {
	multi := func(loops []*ir.Loop) float64 {
		ops, fan := 0, 0
		for _, l := range loops {
			for _, op := range l.Ops {
				if !op.Kind.HasResult() {
					continue
				}
				ops++
				if l.Fanout(op) > 1 {
					fan++
				}
			}
		}
		return float64(fan) / float64(ops)
	}
	std := multi(Standard())
	str := multi(Stressed())
	if str <= std {
		t.Fatalf("stressed multi-consumer fraction %.3f not above standard %.3f", str, std)
	}
}

func TestReuseProbDefault(t *testing.T) {
	// ReuseProb zero must keep the historical default, so the standard
	// corpus (and every golden derived from it) is unchanged by the knob.
	p := Params{}.withDefaults()
	if p.ReuseProb != 0.12 {
		t.Fatalf("default ReuseProb = %v", p.ReuseProb)
	}
	a := Generate(Params{Seed: 7, N: 8})
	b := Generate(Params{Seed: 7, N: 8, ReuseProb: 0.12})
	for i := range a {
		if ir.FormatString(a[i]) != ir.FormatString(b[i]) {
			t.Fatalf("explicit default ReuseProb changed loop %d", i)
		}
	}
}
