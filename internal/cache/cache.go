// Package cache provides a concurrency-safe memoization cache shared by the
// experiment pipeline (internal/exp) and the compilation service
// (internal/service).
//
// The cache is sharded by key hash so that concurrent workers contend on a
// per-shard mutex rather than one cache-wide lock, and each entry computes
// its value exactly once behind a sync.Once: when several goroutines ask for
// the same key simultaneously, one runs the compute function and the rest
// block on it instead of duplicating the (comparatively expensive) work.
// Hit, miss and eviction counters are maintained for observability; a
// bounded-size mode caps the entry count with random replacement.
//
// Completed entries can be persisted and restored across process restarts
// via Save/Load (snapshot.go): a versioned, checksummed, deterministic
// binary format with caller-supplied key/value codecs, which is what lets
// vliwd warm-start its compile cache from disk.
package cache

import (
	"sync"
	"sync/atomic"
)

// Options configure a Cache. The zero value selects the defaults documented
// on each field.
type Options struct {
	// Shards is the number of independently locked shards; 0 selects 16.
	// Rounded up to a power of two so shard selection is a mask.
	Shards int
	// MaxEntries bounds the total entry count across all shards; 0 means
	// unbounded. Per-shard caps sum exactly to MaxEntries, and the shard
	// count shrinks for small bounds (at least 8 entries per shard) so a
	// hot shard does not evict while the cache is far below the bound.
	// When a shard is at its cap, an insertion evicts a random completed
	// entry from that shard (entries whose compute is still in flight are
	// never evicted, so the bound can be exceeded transiently by the
	// number of concurrent computes).
	MaxEntries int
}

// Stats is a point-in-time snapshot of the cache counters.
type Stats struct {
	Hits      int64 `json:"hits"`      // Do found an existing entry
	Misses    int64 `json:"misses"`    // Do created the entry (and ran compute)
	Evictions int64 `json:"evictions"` // entries dropped by the size bound
	Entries   int64 `json:"entries"`   // current entry count
	// Coalesced counts the subset of Hits that joined an entry whose
	// compute was still in flight: concurrent demand for one key that a
	// singleflight collapsed into a single compute. (A coalesced call is
	// still a hit — the counter refines Hits rather than splitting it, so
	// hits+misses keeps equaling the call count.)
	Coalesced int64 `json:"coalesced"`
}

// Cache memoizes values of type V under comparable keys of type K. The
// caller supplies the hash function used for sharding; it only affects
// shard balance, never correctness — equality is the language's == on K.
type Cache[K comparable, V any] struct {
	hash   func(K) uint64
	shards []shard[K, V]
	mask   uint64

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
	entries   atomic.Int64
	coalesced atomic.Int64
}

type shard[K comparable, V any] struct {
	mu  sync.Mutex
	m   map[K]*entry[V]
	max int // entry cap; 0 = unbounded
}

type entry[V any] struct {
	once sync.Once
	val  V
	done atomic.Bool // set after compute; eviction skips in-flight entries
}

// New returns an empty cache. hash maps a key to its shard and must be
// safe for concurrent use (pure functions are).
func New[K comparable, V any](opts Options, hash func(K) uint64) *Cache[K, V] {
	n := opts.Shards
	if n <= 0 {
		n = 16
	}
	// Round up to a power of two for mask-based shard selection.
	p := 1
	for p < n {
		p <<= 1
	}
	// A bounded cache splits the bound across shards, so fold shards until
	// each holds a useful slice (>= 8 entries where the bound allows it):
	// many tiny shards would evict hot entries while the cache as a whole
	// sits far below MaxEntries.
	if opts.MaxEntries > 0 {
		for p > 1 && opts.MaxEntries/p < 8 {
			p >>= 1
		}
	}
	c := &Cache[K, V]{
		hash:   hash,
		shards: make([]shard[K, V], p),
		mask:   uint64(p - 1),
	}
	for i := range c.shards {
		c.shards[i].m = make(map[K]*entry[V])
	}
	if opts.MaxEntries > 0 {
		// Per-shard caps sum exactly to MaxEntries: the first rem shards
		// take the remainder.
		base, rem := opts.MaxEntries/p, opts.MaxEntries%p
		for i := range c.shards {
			c.shards[i].max = base
			if i < rem {
				c.shards[i].max++
			}
		}
	}
	return c
}

// Do returns the memoized value for key k, running compute exactly once per
// key on first use. Concurrent callers of the same key share one compute:
// the first runs it, the rest block until it finishes. compute must not
// call back into the same cache key (the sync.Once would self-deadlock).
func (c *Cache[K, V]) Do(k K, compute func() V) V {
	v, _ := c.DoWithInfo(k, compute)
	return v
}

// Info reports how a DoWithInfo call was served.
type Info struct {
	// Created is true when this call created the entry and ran compute —
	// the cache-miss case.
	Created bool
	// Joined is true when this call found the entry with its compute still
	// in flight and blocked on it: the singleflight-coalescing case.
	// Created and Joined are mutually exclusive; a plain hit on a completed
	// entry reports neither.
	Joined bool
}

// DoWithInfo is Do plus provenance: it additionally reports whether this
// call created the entry (a miss that ran compute) or joined an in-flight
// compute started by a concurrent caller (a coalesced hit). The serving
// layers use the distinction to count fleet-wide coalescing without
// changing what Do callers observe.
func (c *Cache[K, V]) DoWithInfo(k K, compute func() V) (V, Info) {
	sh := &c.shards[c.hash(k)&c.mask]
	sh.mu.Lock()
	e := sh.m[k]
	var info Info
	if e == nil {
		e = &entry[V]{}
		if sh.max > 0 && len(sh.m) >= sh.max {
			c.evictLocked(sh)
		}
		sh.m[k] = e
		c.entries.Add(1)
		c.misses.Add(1)
		info.Created = true
	} else {
		c.hits.Add(1)
		if !e.done.Load() {
			// The entry exists but its compute had not finished when this
			// call arrived: it shares the in-flight compute (blocking on the
			// sync.Once below). The compute may complete between this check
			// and the once.Do — the call still counts as coalesced, since it
			// arrived while the work was in flight.
			info.Joined = true
			c.coalesced.Add(1)
		}
	}
	sh.mu.Unlock()
	e.once.Do(func() {
		e.val = compute()
		e.done.Store(true)
	})
	return e.val, info
}

// Get reports the memoized value for k, if a completed one exists. It never
// blocks on an in-flight compute and does not touch the hit/miss counters.
func (c *Cache[K, V]) Get(k K) (V, bool) {
	sh := &c.shards[c.hash(k)&c.mask]
	sh.mu.Lock()
	e := sh.m[k]
	sh.mu.Unlock()
	if e == nil || !e.done.Load() {
		var zero V
		return zero, false
	}
	return e.val, true
}

// Forget drops the entry for k, if a completed one exists, and reports
// whether it did. The serving layer uses it to un-memoize outcomes that
// must not persist — a compile cancelled by one client's deadline would
// otherwise answer every future request for that key with the first
// caller's context error. An entry whose compute is still in flight is left
// alone (removing it would strand the goroutines blocked on its sync.Once
// with a value no future caller shares); callers retrying after a Forget
// that returned false simply find the in-flight entry and share its fate.
// Forgotten entries do not count as evictions — eviction measures capacity
// pressure, not deliberate invalidation.
func (c *Cache[K, V]) Forget(k K) bool {
	sh := &c.shards[c.hash(k)&c.mask]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e := sh.m[k]
	if e == nil || !e.done.Load() {
		return false
	}
	delete(sh.m, k)
	c.entries.Add(-1)
	return true
}

// evictLocked drops one completed entry from sh (random replacement via map
// iteration order). Entries still computing are skipped: evicting one would
// strand the goroutines blocked on its sync.Once with a value no future
// caller shares.
func (c *Cache[K, V]) evictLocked(sh *shard[K, V]) {
	for k, e := range sh.m {
		if e.done.Load() {
			delete(sh.m, k)
			c.entries.Add(-1)
			c.evictions.Add(1)
			return
		}
	}
}

// Len returns the current entry count.
func (c *Cache[K, V]) Len() int { return int(c.entries.Load()) }

// Stats snapshots the counters.
func (c *Cache[K, V]) Stats() Stats {
	return Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Entries:   c.entries.Load(),
		Coalesced: c.coalesced.Load(),
	}
}

// StringHash is FNV-1a over the key bytes — the default hash for
// string-keyed caches.
func StringHash(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}
