package cache

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestDoMemoizes(t *testing.T) {
	c := New[string, int](Options{}, StringHash)
	var computes atomic.Int64
	get := func(k string, v int) int {
		return c.Do(k, func() int { computes.Add(1); return v })
	}
	if got := get("a", 1); got != 1 {
		t.Fatalf("Do(a) = %d, want 1", got)
	}
	if got := get("a", 99); got != 1 {
		t.Fatalf("second Do(a) = %d, want memoized 1", got)
	}
	if got := get("b", 2); got != 2 {
		t.Fatalf("Do(b) = %d, want 2", got)
	}
	if n := computes.Load(); n != 2 {
		t.Fatalf("compute ran %d times, want 2", n)
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 2 || s.Entries != 2 || s.Evictions != 0 {
		t.Fatalf("stats = %+v, want hits=1 misses=2 entries=2 evictions=0", s)
	}
}

func TestGet(t *testing.T) {
	c := New[string, int](Options{}, StringHash)
	if _, ok := c.Get("missing"); ok {
		t.Fatal("Get on empty cache reported a value")
	}
	c.Do("k", func() int { return 7 })
	v, ok := c.Get("k")
	if !ok || v != 7 {
		t.Fatalf("Get(k) = %d, %t; want 7, true", v, ok)
	}
	if s := c.Stats(); s.Hits != 0 || s.Misses != 1 {
		t.Fatalf("Get changed hit/miss counters: %+v", s)
	}
}

// TestConcurrentSameKey verifies the per-entry sync.Once contract: many
// goroutines racing on one key observe a single compute and one value.
func TestConcurrentSameKey(t *testing.T) {
	c := New[string, int](Options{Shards: 4}, StringHash)
	var computes atomic.Int64
	var wg sync.WaitGroup
	const workers = 32
	out := make([]int, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			out[w] = c.Do("hot", func() int {
				computes.Add(1)
				return 42
			})
		}(w)
	}
	wg.Wait()
	if n := computes.Load(); n != 1 {
		t.Fatalf("compute ran %d times under contention, want 1", n)
	}
	for w, v := range out {
		if v != 42 {
			t.Fatalf("worker %d saw %d, want 42", w, v)
		}
	}
	s := c.Stats()
	if s.Misses != 1 || s.Hits != workers-1 {
		t.Fatalf("stats = %+v, want misses=1 hits=%d", s, workers-1)
	}
}

// TestConcurrentManyKeys exercises shard contention across distinct keys;
// run under -race this is the cache's main data-race check.
func TestConcurrentManyKeys(t *testing.T) {
	c := New[string, int](Options{Shards: 8}, StringHash)
	const keys, workers = 64, 16
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < keys; i++ {
				k := fmt.Sprintf("k%d", (i+w)%keys)
				want := (i + w) % keys
				if got := c.Do(k, func() int { return want }); got != want {
					t.Errorf("Do(%s) = %d, want %d", k, got, want)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if c.Len() != keys {
		t.Fatalf("Len = %d, want %d", c.Len(), keys)
	}
}

func TestBoundedEviction(t *testing.T) {
	const bound = 8
	c := New[int, int](Options{Shards: 1, MaxEntries: bound}, func(k int) uint64 { return uint64(k) })
	for i := 0; i < 4*bound; i++ {
		c.Do(i, func() int { return i })
	}
	if n := c.Len(); n > bound {
		t.Fatalf("bounded cache holds %d entries, want <= %d", n, bound)
	}
	s := c.Stats()
	if s.Evictions != 4*bound-bound {
		t.Fatalf("evictions = %d, want %d", s.Evictions, 4*bound-bound)
	}
	// Every lookup still computes the right value after eviction churn.
	for i := 0; i < 4*bound; i++ {
		if got := c.Do(i, func() int { return i }); got != i {
			t.Fatalf("post-eviction Do(%d) = %d", i, got)
		}
	}
}

func TestShardRounding(t *testing.T) {
	// A non-power-of-two shard request must still place and find keys.
	c := New[string, int](Options{Shards: 5}, StringHash)
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("key-%d", i)
		c.Do(k, func() int { return i })
	}
	for i := 0; i < 100; i++ {
		v, ok := c.Get(fmt.Sprintf("key-%d", i))
		if !ok || v != i {
			t.Fatalf("Get(key-%d) = %d, %t", i, v, ok)
		}
	}
}

func TestStringHashSpreads(t *testing.T) {
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		seen[StringHash(fmt.Sprintf("loop%04d", i))] = true
	}
	if len(seen) < 1000 {
		t.Fatalf("StringHash collided on sequential names: %d distinct of 1000", len(seen))
	}
}

// TestBoundedExactCap checks MaxEntries is honored exactly: per-shard caps
// sum to the bound, and the shard count folds so small bounds still fill.
func TestBoundedExactCap(t *testing.T) {
	const bound = 20
	c := New[string, int](Options{MaxEntries: bound}, StringHash)
	for i := 0; i < 60; i++ {
		c.Do(fmt.Sprintf("key-%d", i), func() int { return i })
	}
	if n := c.Len(); n != bound {
		t.Fatalf("bounded cache settled at %d entries, want exactly %d", n, bound)
	}
}

// TestForget: a forgotten key recomputes on next use, an unknown or
// in-flight key is left alone, and counters reflect the removal without
// charging an eviction.
func TestForget(t *testing.T) {
	c := New[string, int](Options{}, StringHash)
	runs := 0
	compute := func() int { runs++; return runs }

	if c.Forget("k") {
		t.Fatal("Forget reported success for a key never cached")
	}
	if v := c.Do("k", compute); v != 1 {
		t.Fatalf("first Do = %d, want 1", v)
	}
	if !c.Forget("k") {
		t.Fatal("Forget failed on a completed entry")
	}
	if n := c.Len(); n != 0 {
		t.Fatalf("entries after Forget = %d, want 0", n)
	}
	if v := c.Do("k", compute); v != 2 {
		t.Fatalf("Do after Forget = %d, want a fresh compute (2)", v)
	}
	st := c.Stats()
	if st.Evictions != 0 {
		t.Fatalf("Forget charged %d evictions, want 0 (eviction measures capacity pressure)", st.Evictions)
	}
	if st.Misses != 2 || st.Entries != 1 {
		t.Fatalf("misses=%d entries=%d after forget+recompute, want 2/1", st.Misses, st.Entries)
	}
}

// TestForgetSkipsInFlight: an entry still computing cannot be forgotten —
// the waiters blocked on it must all see the one computed value.
func TestForgetSkipsInFlight(t *testing.T) {
	c := New[string, int](Options{}, StringHash)
	started := make(chan struct{})
	release := make(chan struct{})
	done := make(chan int)
	go func() {
		done <- c.Do("k", func() int {
			close(started)
			<-release
			return 7
		})
	}()
	<-started
	if c.Forget("k") {
		t.Fatal("Forget removed an entry whose compute is in flight")
	}
	close(release)
	if v := <-done; v != 7 {
		t.Fatalf("in-flight compute returned %d, want 7", v)
	}
	if !c.Forget("k") {
		t.Fatal("Forget failed after the compute completed")
	}
}

// TestDoWithInfoClassification pins the three outcomes: Created on first
// use, Joined while the compute is in flight, neither on a completed-entry
// hit — and the Coalesced counter tracking exactly the Joined calls.
func TestDoWithInfoClassification(t *testing.T) {
	c := New[string, int](Options{Shards: 1}, StringHash)

	started := make(chan struct{})
	release := make(chan struct{})
	joined := make(chan Info, 1)
	go func() {
		_, info := c.DoWithInfo("k", func() int {
			close(started)
			<-release
			return 7
		})
		if !info.Created || info.Joined {
			t.Errorf("leader info = %+v, want Created", info)
		}
		joined <- info
	}()
	<-started

	done := make(chan Info, 1)
	go func() {
		_, info := c.DoWithInfo("k", func() int { return 0 })
		done <- info
	}()
	// The joiner classifies before blocking on the once; give it a moment,
	// then let the leader finish.
	for c.Stats().Coalesced == 0 {
		time.Sleep(time.Millisecond)
	}
	close(release)
	if info := <-done; !info.Joined || info.Created {
		t.Fatalf("joiner info = %+v, want Joined", info)
	}
	<-joined

	if v, info := c.DoWithInfo("k", func() int { return 0 }); v != 7 || info.Created || info.Joined {
		t.Fatalf("completed-entry hit: v=%d info=%+v, want v=7 and neither flag", v, info)
	}
	s := c.Stats()
	if s.Misses != 1 || s.Hits != 2 || s.Coalesced != 1 {
		t.Fatalf("stats = %+v, want misses=1 hits=2 coalesced=1", s)
	}
}

// TestCoalescedSubsetOfHits: under heavy same-key contention every call is
// either the one miss, a coalesced hit, or a plain hit; coalesced never
// exceeds hits and the sum of classifications covers every call.
func TestCoalescedSubsetOfHits(t *testing.T) {
	c := New[string, int](Options{Shards: 4}, StringHash)
	var wg sync.WaitGroup
	const workers = 64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.DoWithInfo("hot", func() int {
				time.Sleep(2 * time.Millisecond)
				return 1
			})
		}()
	}
	wg.Wait()
	s := c.Stats()
	if s.Misses != 1 || s.Hits != workers-1 {
		t.Fatalf("stats = %+v, want misses=1 hits=%d", s, workers-1)
	}
	if s.Coalesced < 1 || s.Coalesced > s.Hits {
		t.Fatalf("coalesced = %d, want within [1, %d]", s.Coalesced, s.Hits)
	}
}
