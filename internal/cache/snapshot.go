package cache

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sort"
)

// Snapshot persistence: Save writes every completed entry to an io.Writer in
// a versioned binary format, Load inserts them back into a cache so a
// restarted process serves its first repeated request as a hit instead of
// recompiling. The format is
//
//	magic "VQCS" | uint32 version | uint64 count
//	count × ( uint32 keyLen | key | uint32 valLen | val )
//	uint32 CRC-32 (IEEE) of everything after the magic
//
// all fixed-width fields little-endian. Entries are written sorted by
// encoded key, so saving the same logical contents always produces the same
// bytes. Load verifies the magic, the version and the checksum before
// trusting anything, and rejects truncated or corrupt files with an error
// naming what failed.

// snapshotMagic brands a snapshot file; it never changes across versions.
const snapshotMagic = "VQCS"

// snapshotVersion is bumped when the payload layout changes — or when the
// meaning of the stored keys changes: v2 marked the canonical key's effort
// segment ("e=..."); v3 marks the switch to vliwq.Request.Canonical(),
// whose normalized "rq1;..." encoding replaced the raw-field
// service.CanonicalKey. Either way a stale snapshot is rejected at load (a
// logged cold start) instead of warm-starting a cache full of entries no
// new request can ever hit. Load rejects versions it does not know.
const snapshotVersion = 3

// maxSnapshotRecord caps one encoded key or value at 64 MiB. The cap exists
// so a corrupt length prefix fails with a clear error instead of a huge
// allocation.
const maxSnapshotRecord = 64 << 20

// ErrCorruptSnapshot tags every error Load returns for a malformed file
// (bad magic, unknown version, truncation, checksum mismatch, oversized
// record). Callers that warm-start treat it as "start cold", not fatal.
var ErrCorruptSnapshot = errors.New("corrupt cache snapshot")

// Codec encodes keys and values for snapshot persistence. Encode and Decode
// must round-trip: Decode(Encode(x)) yields a value equal to x. Encoders
// run outside the shard locks (the values they see are completed, immutable
// entries) but may run concurrently with cache use, and must not call back
// into the same cache.
type Codec[K comparable, V any] struct {
	EncodeKey   func(K) ([]byte, error)
	DecodeKey   func([]byte) (K, error)
	EncodeValue func(V) ([]byte, error)
	DecodeValue func([]byte) (V, error)
}

// StringKeyCodec builds a Codec for string-keyed caches from just the value
// half: keys persist as their raw bytes.
func StringKeyCodec[V any](enc func(V) ([]byte, error), dec func([]byte) (V, error)) Codec[string, V] {
	return Codec[string, V]{
		EncodeKey:   func(k string) ([]byte, error) { return []byte(k), nil },
		DecodeKey:   func(b []byte) (string, error) { return string(b), nil },
		EncodeValue: enc,
		DecodeValue: dec,
	}
}

// Save writes every completed entry to w and returns how many it wrote.
// In-flight entries (compute still running) are skipped — their value does
// not exist yet. Concurrent Do calls stay safe: each shard is locked only
// while its entries are copied out.
func (c *Cache[K, V]) Save(w io.Writer, codec Codec[K, V]) (int, error) {
	type rec struct{ key, val []byte }
	var recs []rec
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		type kv struct {
			k K
			e *entry[V]
		}
		pending := make([]kv, 0, len(sh.m))
		for k, e := range sh.m {
			if e.done.Load() {
				pending = append(pending, kv{k, e})
			}
		}
		sh.mu.Unlock()
		// Encode outside the lock: the entry is done, so val is immutable.
		for _, p := range pending {
			kb, err := codec.EncodeKey(p.k)
			if err != nil {
				return 0, fmt.Errorf("snapshot: encode key: %w", err)
			}
			vb, err := codec.EncodeValue(p.e.val)
			if err != nil {
				return 0, fmt.Errorf("snapshot: encode value: %w", err)
			}
			if len(kb) > maxSnapshotRecord || len(vb) > maxSnapshotRecord {
				return 0, fmt.Errorf("snapshot: entry exceeds %d-byte record cap", maxSnapshotRecord)
			}
			recs = append(recs, rec{kb, vb})
		}
	}
	sort.Slice(recs, func(i, j int) bool { return bytes.Compare(recs[i].key, recs[j].key) < 0 })

	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(snapshotMagic); err != nil {
		return 0, err
	}
	// Everything after the magic feeds the checksum.
	crc := crc32.NewIEEE()
	cw := io.MultiWriter(bw, crc)
	if err := binary.Write(cw, binary.LittleEndian, uint32(snapshotVersion)); err != nil {
		return 0, err
	}
	if err := binary.Write(cw, binary.LittleEndian, uint64(len(recs))); err != nil {
		return 0, err
	}
	for _, r := range recs {
		for _, b := range [][]byte{r.key, r.val} {
			if err := binary.Write(cw, binary.LittleEndian, uint32(len(b))); err != nil {
				return 0, err
			}
			if _, err := cw.Write(b); err != nil {
				return 0, err
			}
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, crc.Sum32()); err != nil {
		return 0, err
	}
	return len(recs), bw.Flush()
}

// Load reads a snapshot written by Save and inserts its entries as
// completed values, returning how many it inserted. Keys already present
// are left untouched (the live entry wins), and bounded caches stop
// inserting into a shard at its cap rather than evicting live entries. Any
// structural problem — bad magic, unknown version, truncation, trailing
// garbage, checksum mismatch — returns an error wrapping
// ErrCorruptSnapshot and inserts nothing.
func (c *Cache[K, V]) Load(r io.Reader, codec Codec[K, V]) (int, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(snapshotMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return 0, fmt.Errorf("%w: reading magic: %v", ErrCorruptSnapshot, err)
	}
	if string(magic) != snapshotMagic {
		return 0, fmt.Errorf("%w: bad magic %q (want %q)", ErrCorruptSnapshot, magic, snapshotMagic)
	}
	crc := crc32.NewIEEE()
	cr := io.TeeReader(br, crc)
	var version uint32
	if err := binary.Read(cr, binary.LittleEndian, &version); err != nil {
		return 0, fmt.Errorf("%w: reading version: %v", ErrCorruptSnapshot, err)
	}
	if version != snapshotVersion {
		return 0, fmt.Errorf("%w: unknown version %d (want %d)", ErrCorruptSnapshot, version, snapshotVersion)
	}
	var count uint64
	if err := binary.Read(cr, binary.LittleEndian, &count); err != nil {
		return 0, fmt.Errorf("%w: reading entry count: %v", ErrCorruptSnapshot, err)
	}
	type rec struct {
		k K
		v V
	}
	recs := make([]rec, 0, min64(count, 4096))
	readBlob := func(what string, i uint64) ([]byte, error) {
		var n uint32
		if err := binary.Read(cr, binary.LittleEndian, &n); err != nil {
			return nil, fmt.Errorf("%w: entry %d: reading %s length: %v", ErrCorruptSnapshot, i, what, err)
		}
		if n > maxSnapshotRecord {
			return nil, fmt.Errorf("%w: entry %d: %s length %d exceeds %d-byte cap", ErrCorruptSnapshot, i, what, n, maxSnapshotRecord)
		}
		b := make([]byte, n)
		if _, err := io.ReadFull(cr, b); err != nil {
			return nil, fmt.Errorf("%w: entry %d: reading %s: %v", ErrCorruptSnapshot, i, what, err)
		}
		return b, nil
	}
	for i := uint64(0); i < count; i++ {
		kb, err := readBlob("key", i)
		if err != nil {
			return 0, err
		}
		vb, err := readBlob("value", i)
		if err != nil {
			return 0, err
		}
		k, err := codec.DecodeKey(kb)
		if err != nil {
			return 0, fmt.Errorf("%w: entry %d: decode key: %v", ErrCorruptSnapshot, i, err)
		}
		v, err := codec.DecodeValue(vb)
		if err != nil {
			return 0, fmt.Errorf("%w: entry %d: decode value: %v", ErrCorruptSnapshot, i, err)
		}
		recs = append(recs, rec{k, v})
	}
	sum := crc.Sum32()
	var want uint32
	if err := binary.Read(br, binary.LittleEndian, &want); err != nil {
		return 0, fmt.Errorf("%w: reading checksum: %v", ErrCorruptSnapshot, err)
	}
	if sum != want {
		return 0, fmt.Errorf("%w: checksum mismatch (file %08x, computed %08x)", ErrCorruptSnapshot, want, sum)
	}
	if _, err := br.ReadByte(); err != io.EOF {
		return 0, fmt.Errorf("%w: trailing data after checksum", ErrCorruptSnapshot)
	}

	loaded := 0
	for _, r := range recs {
		if c.insertCompleted(r.k, r.v) {
			loaded++
		}
	}
	return loaded, nil
}

// insertCompleted adds a pre-computed entry, reporting whether it went in.
// Existing keys and full shards decline the insert; counters treat a loaded
// entry like any other live entry (entry count only — no hit or miss).
func (c *Cache[K, V]) insertCompleted(k K, v V) bool {
	sh := &c.shards[c.hash(k)&c.mask]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, exists := sh.m[k]; exists {
		return false
	}
	if sh.max > 0 && len(sh.m) >= sh.max {
		return false
	}
	e := &entry[V]{val: v}
	e.once.Do(func() {}) // burn the Once so Do never recomputes this entry
	e.done.Store(true)
	sh.m[k] = e
	c.entries.Add(1)
	return true
}

func min64(a uint64, b int) int {
	if a < uint64(b) {
		return int(a)
	}
	return b
}
