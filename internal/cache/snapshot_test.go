package cache

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"
)

// stringCodec round-trips string values byte-for-byte.
func stringCodec() Codec[string, string] {
	return StringKeyCodec(
		func(v string) ([]byte, error) { return []byte(v), nil },
		func(b []byte) (string, error) { return string(b), nil },
	)
}

func fillCache(c *Cache[string, string], n int) {
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("key-%03d", i)
		c.Do(k, func() string { return "val:" + k })
	}
}

// TestSnapshotRoundTrip saves a populated cache, loads it into a fresh one,
// and checks every entry survives byte-identically — and that re-saving the
// loaded cache reproduces the exact same file (the format is deterministic).
func TestSnapshotRoundTrip(t *testing.T) {
	src := New[string, string](Options{Shards: 4}, StringHash)
	fillCache(src, 37)

	var buf bytes.Buffer
	wrote, err := src.Save(&buf, stringCodec())
	if err != nil {
		t.Fatalf("Save: %v", err)
	}
	if wrote != 37 {
		t.Fatalf("Save wrote %d entries, want 37", wrote)
	}

	dst := New[string, string](Options{Shards: 4}, StringHash)
	loaded, err := dst.Load(bytes.NewReader(buf.Bytes()), stringCodec())
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if loaded != 37 || dst.Len() != 37 {
		t.Fatalf("Load inserted %d entries (Len %d), want 37", loaded, dst.Len())
	}
	for i := 0; i < 37; i++ {
		k := fmt.Sprintf("key-%03d", i)
		v, ok := dst.Get(k)
		if !ok || v != "val:"+k {
			t.Fatalf("entry %q: got (%q, %t), want (%q, true)", k, v, ok, "val:"+k)
		}
	}

	// A loaded entry must serve as a hit, not recompute.
	hitsBefore := dst.Stats().Hits
	v := dst.Do("key-000", func() string {
		t.Fatal("Do recomputed a snapshot-loaded entry")
		return ""
	})
	if v != "val:key-000" {
		t.Fatalf("Do after Load returned %q", v)
	}
	if dst.Stats().Hits != hitsBefore+1 {
		t.Fatalf("Do after Load did not count a hit")
	}

	// Deterministic bytes: re-saving the loaded cache reproduces the file.
	var buf2 bytes.Buffer
	if _, err := dst.Save(&buf2, stringCodec()); err != nil {
		t.Fatalf("re-Save: %v", err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatalf("snapshot bytes differ after a round trip (%d vs %d bytes)", buf.Len(), buf2.Len())
	}
}

// TestSnapshotLoadSkipsExisting ensures a live entry wins over the snapshot
// copy of the same key.
func TestSnapshotLoadSkipsExisting(t *testing.T) {
	src := New[string, string](Options{}, StringHash)
	src.Do("k", func() string { return "from-snapshot" })
	var buf bytes.Buffer
	if _, err := src.Save(&buf, stringCodec()); err != nil {
		t.Fatal(err)
	}

	dst := New[string, string](Options{}, StringHash)
	dst.Do("k", func() string { return "live" })
	loaded, err := dst.Load(&buf, stringCodec())
	if err != nil {
		t.Fatal(err)
	}
	if loaded != 0 {
		t.Fatalf("Load inserted %d entries over live keys, want 0", loaded)
	}
	if v, _ := dst.Get("k"); v != "live" {
		t.Fatalf("live entry overwritten: got %q", v)
	}
}

// TestSnapshotLoadRespectsBound checks that warm-starting a bounded cache
// never exceeds the bound (extra snapshot entries are dropped, not evicting
// anything).
func TestSnapshotLoadRespectsBound(t *testing.T) {
	src := New[string, string](Options{}, StringHash)
	fillCache(src, 64)
	var buf bytes.Buffer
	if _, err := src.Save(&buf, stringCodec()); err != nil {
		t.Fatal(err)
	}

	dst := New[string, string](Options{MaxEntries: 16}, StringHash)
	loaded, err := dst.Load(&buf, stringCodec())
	if err != nil {
		t.Fatal(err)
	}
	if loaded > 16 || dst.Len() > 16 {
		t.Fatalf("bounded cache loaded %d entries (Len %d), bound 16", loaded, dst.Len())
	}
	if st := dst.Stats(); st.Evictions != 0 {
		t.Fatalf("Load evicted %d entries; it must drop, not evict", st.Evictions)
	}
}

// TestSnapshotRejectsCorrupt runs Load over a catalogue of malformed files;
// each must fail with ErrCorruptSnapshot, a message naming the problem, and
// zero entries inserted.
func TestSnapshotRejectsCorrupt(t *testing.T) {
	src := New[string, string](Options{}, StringHash)
	fillCache(src, 8)
	var buf bytes.Buffer
	if _, err := src.Save(&buf, stringCodec()); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	flip := func(b []byte, i int) []byte {
		c := append([]byte(nil), b...)
		c[i] ^= 0xff
		return c
	}
	cases := []struct {
		name string
		data []byte
		want string // substring of the error message
	}{
		{"empty", nil, "magic"},
		{"bad magic", flip(good, 0), "bad magic"},
		{"unknown version", flip(good, 4), "unknown version"},
		{"truncated header", good[:6], "version"},
		{"truncated mid-entry", good[:len(good)/2], ""},
		{"missing checksum", good[:len(good)-4], ""},
		{"flipped payload byte", flip(good, 20), "checksum mismatch"},
		{"flipped checksum", flip(good, len(good)-1), "checksum mismatch"},
		{"trailing garbage", append(append([]byte(nil), good...), 0xAB), "trailing data"},
		{"huge length prefix", func() []byte {
			c := append([]byte(nil), good...)
			// First entry's key-length field sits right after the 4-byte
			// magic + 4-byte version + 8-byte count.
			c[16], c[17], c[18], c[19] = 0xff, 0xff, 0xff, 0x7f
			return c
		}(), "cap"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dst := New[string, string](Options{}, StringHash)
			n, err := dst.Load(bytes.NewReader(tc.data), stringCodec())
			if err == nil {
				t.Fatalf("Load accepted a %s file", tc.name)
			}
			if !errors.Is(err, ErrCorruptSnapshot) {
				t.Fatalf("error %v does not wrap ErrCorruptSnapshot", err)
			}
			if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
			if n != 0 || dst.Len() != 0 {
				t.Fatalf("corrupt load inserted %d entries (Len %d)", n, dst.Len())
			}
		})
	}
}

// TestSnapshotSkipsInFlight: an entry whose compute is still running is not
// written (its value does not exist yet).
func TestSnapshotSkipsInFlight(t *testing.T) {
	c := New[string, string](Options{}, StringHash)
	c.Do("done", func() string { return "v" })

	started := make(chan struct{})
	release := make(chan struct{})
	go c.Do("inflight", func() string {
		close(started)
		<-release
		return "late"
	})
	<-started
	var buf bytes.Buffer
	n, err := c.Save(&buf, stringCodec())
	close(release)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("Save wrote %d entries with one in flight, want 1", n)
	}
}
