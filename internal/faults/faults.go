// Package faults is a deterministic fault-injection layer for exercising
// the serving stack's failure handling without flaky sleeps or real
// network partitions. An Injector wraps any http.Handler (typically a
// service.Server inside an httptest.Server) and perturbs requests on the
// way through: latency spikes, 5xx error bursts, dropped connections, and
// periodic flapping, all decided by the request ordinal and a seeded RNG so
// a serial request stream sees exactly the same fault schedule on every
// run.
//
// Two control styles compose:
//
//   - Modal: SetDown(true) makes every request fail until SetDown(false) —
//     the knob breaker and failover tests flip to simulate an outage with
//     cycle-exact boundaries.
//   - Scheduled: Config's *Every fields fail/slow/drop every Nth request,
//     and FailRate draws from the seeded RNG — the knobs chaos-style tests
//     use for sustained, reproducible misbehaviour.
//
// The injector counts what it did (Counts), so tests can assert the fault
// schedule actually fired instead of passing vacuously.
package faults

import (
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// Config schedules the faults an Injector injects. The zero value injects
// nothing — every request passes through untouched.
type Config struct {
	// Seed seeds the RNG behind FailRate; the same seed over the same
	// serial request sequence yields the same decisions.
	Seed int64
	// FailRate is the probability in [0, 1] that a request answers
	// FailStatus instead of reaching the wrapped handler.
	FailRate float64
	// FailEvery fails every Nth request (1-based ordinal divisible by N);
	// 0 disables. Deterministic regardless of concurrency.
	FailEvery int
	// FailStatus is the status injected failures answer; 0 means 503.
	FailStatus int
	// SlowEvery delays every Nth request by SlowBy before serving it
	// normally; 0 disables.
	SlowEvery int
	// SlowBy is the injected delay for SlowEvery; 0 with SlowEvery set
	// means 10ms.
	SlowBy time.Duration
	// DropEvery aborts every Nth request's connection mid-response (the
	// client sees a transport error, not an HTTP status); 0 disables.
	DropEvery int
	// FlapEvery alternates the injector between up and down in runs of N
	// requests: ordinals [N, 2N) fail, [2N, 3N) pass, and so on; 0
	// disables.
	FlapEvery int
}

// Counts reports what an Injector has injected so far.
type Counts struct {
	Requests int64 // total requests seen
	Failed   int64 // answered with an injected error status
	Dropped  int64 // connections aborted
	Slowed   int64 // requests delayed
}

// Injector wraps an http.Handler with scheduled faults. Create one with
// New; it is safe for concurrent use, though the *Every and FailRate
// schedules are only exactly reproducible under a serial request stream.
type Injector struct {
	next http.Handler
	cfg  Config

	mu  sync.Mutex // guards rng
	rng *rand.Rand

	seq     atomic.Int64
	down    atomic.Bool
	failed  atomic.Int64
	dropped atomic.Int64
	slowed  atomic.Int64
}

// New wraps next with the fault schedule in cfg.
func New(next http.Handler, cfg Config) *Injector {
	if cfg.FailStatus == 0 {
		cfg.FailStatus = http.StatusServiceUnavailable
	}
	if cfg.SlowEvery > 0 && cfg.SlowBy <= 0 {
		cfg.SlowBy = 10 * time.Millisecond
	}
	return &Injector{next: next, cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// SetDown switches the modal outage on or off: while down, every request
// answers the configured failure status immediately.
func (in *Injector) SetDown(down bool) { in.down.Store(down) }

// Down reports whether the modal outage is on.
func (in *Injector) Down() bool { return in.down.Load() }

// Counts snapshots the injection counters.
func (in *Injector) Counts() Counts {
	return Counts{
		Requests: in.seq.Load(),
		Failed:   in.failed.Load(),
		Dropped:  in.dropped.Load(),
		Slowed:   in.slowed.Load(),
	}
}

// ServeHTTP applies the schedule to one request: modal outage first, then
// flapping, then the every-N and probabilistic rules, then (possibly
// delayed) the wrapped handler.
func (in *Injector) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	n := in.seq.Add(1)
	switch {
	case in.down.Load():
		in.fail(w)
		return
	case in.cfg.FlapEvery > 0 && (n/int64(in.cfg.FlapEvery))%2 == 1:
		in.fail(w)
		return
	case in.cfg.FailEvery > 0 && n%int64(in.cfg.FailEvery) == 0:
		in.fail(w)
		return
	case in.cfg.FailRate > 0 && in.draw() < in.cfg.FailRate:
		in.fail(w)
		return
	case in.cfg.DropEvery > 0 && n%int64(in.cfg.DropEvery) == 0:
		in.dropped.Add(1)
		// Abort mid-response: promise a body, send a truncated prefix, then
		// kill the connection. The truncation matters — a connection aborted
		// before any response bytes is transparently replayed by net/http's
		// idempotent-retry logic and the fault never reaches the caller,
		// while a truncated body is a guaranteed read error (the failure
		// shape of a backend crashing mid-reply).
		w.Header().Set("Content-Length", "2")
		w.WriteHeader(http.StatusOK)
		w.Write([]byte("x"))
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
		panic(http.ErrAbortHandler)
	}
	if in.cfg.SlowEvery > 0 && n%int64(in.cfg.SlowEvery) == 0 {
		in.slowed.Add(1)
		time.Sleep(in.cfg.SlowBy)
	}
	in.next.ServeHTTP(w, r)
}

func (in *Injector) fail(w http.ResponseWriter) {
	in.failed.Add(1)
	http.Error(w, "injected fault", in.cfg.FailStatus)
}

func (in *Injector) draw() float64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.rng.Float64()
}
