package faults

import (
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// okHandler answers 200 "ok" — the healthy backend every schedule perturbs.
var okHandler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
	io.WriteString(w, "ok")
})

func get(t *testing.T, ts *httptest.Server) (int, error) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL)
	if err != nil {
		return 0, err
	}
	_, rerr := io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if rerr != nil {
		// A truncated body (injected drop) is a transport failure, not an
		// HTTP answer.
		return 0, rerr
	}
	return resp.StatusCode, nil
}

func TestZeroConfigPassesThrough(t *testing.T) {
	in := New(okHandler, Config{})
	ts := httptest.NewServer(in)
	defer ts.Close()
	for i := 0; i < 20; i++ {
		status, err := get(t, ts)
		if err != nil || status != http.StatusOK {
			t.Fatalf("request %d: status %d err %v, want clean 200", i, status, err)
		}
	}
	c := in.Counts()
	if c.Requests != 20 || c.Failed != 0 || c.Dropped != 0 || c.Slowed != 0 {
		t.Fatalf("zero config injected something: %+v", c)
	}
}

func TestSetDownIsModal(t *testing.T) {
	in := New(okHandler, Config{})
	ts := httptest.NewServer(in)
	defer ts.Close()

	in.SetDown(true)
	if !in.Down() {
		t.Fatal("Down() false after SetDown(true)")
	}
	for i := 0; i < 3; i++ {
		if status, err := get(t, ts); err != nil || status != http.StatusServiceUnavailable {
			t.Fatalf("down request %d: status %d err %v, want 503", i, status, err)
		}
	}
	in.SetDown(false)
	if status, err := get(t, ts); err != nil || status != http.StatusOK {
		t.Fatalf("recovered request: status %d err %v, want 200", status, err)
	}
	if c := in.Counts(); c.Failed != 3 {
		t.Fatalf("failed count %d, want 3", c.Failed)
	}
}

func TestFailEveryIsDeterministic(t *testing.T) {
	in := New(okHandler, Config{FailEvery: 3, FailStatus: http.StatusBadGateway})
	ts := httptest.NewServer(in)
	defer ts.Close()
	var got []int
	for i := 0; i < 9; i++ {
		status, err := get(t, ts)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, status)
	}
	for i, status := range got {
		want := http.StatusOK
		if (i+1)%3 == 0 {
			want = http.StatusBadGateway
		}
		if status != want {
			t.Fatalf("request %d: status %d, want %d (schedule %v)", i+1, status, want, got)
		}
	}
}

func TestFlapEveryAlternates(t *testing.T) {
	in := New(okHandler, Config{FlapEvery: 2})
	ts := httptest.NewServer(in)
	defer ts.Close()
	// Ordinals 1..8: runs of 2 — up (1), down (2,3), up (4,5), down (6,7), up (8).
	want := []int{200, 503, 503, 200, 200, 503, 503, 200}
	for i, w := range want {
		status, err := get(t, ts)
		if err != nil {
			t.Fatal(err)
		}
		if status != w {
			t.Fatalf("request %d: status %d, want %d", i+1, status, w)
		}
	}
}

func TestDropEveryAbortsConnection(t *testing.T) {
	in := New(okHandler, Config{DropEvery: 2})
	ts := httptest.NewServer(in)
	defer ts.Close()
	ok, dropped := 0, 0
	for i := 0; i < 10; i++ {
		status, err := get(t, ts)
		if err != nil {
			dropped++
			continue
		}
		if status != http.StatusOK {
			t.Fatalf("request %d: unexpected status %d", i+1, status)
		}
		ok++
	}
	if ok != 5 || dropped != 5 {
		t.Fatalf("got %d ok / %d dropped, want 5/5", ok, dropped)
	}
	if c := in.Counts(); c.Dropped != 5 {
		t.Fatalf("dropped counter %d, want 5", c.Dropped)
	}
}

func TestSlowEveryDelays(t *testing.T) {
	const delay = 30 * time.Millisecond
	in := New(okHandler, Config{SlowEvery: 2, SlowBy: delay})
	ts := httptest.NewServer(in)
	defer ts.Close()
	var fast, slow time.Duration
	for i := 0; i < 2; i++ {
		t0 := time.Now()
		if status, err := get(t, ts); err != nil || status != http.StatusOK {
			t.Fatalf("request %d: status %d err %v", i+1, status, err)
		}
		d := time.Since(t0)
		if (i+1)%2 == 0 {
			slow = d
		} else {
			fast = d
		}
	}
	if slow < delay {
		t.Fatalf("scheduled-slow request took %v, want >= %v", slow, delay)
	}
	if fast >= delay {
		t.Fatalf("unscheduled request took %v — the delay leaked", fast)
	}
	if c := in.Counts(); c.Slowed != 1 {
		t.Fatalf("slowed counter %d, want 1", c.Slowed)
	}
}

func TestFailRateIsSeeded(t *testing.T) {
	run := func(seed int64) []int {
		in := New(okHandler, Config{Seed: seed, FailRate: 0.5})
		ts := httptest.NewServer(in)
		defer ts.Close()
		var statuses []int
		for i := 0; i < 32; i++ {
			status, err := get(t, ts)
			if err != nil {
				t.Fatal(err)
			}
			statuses = append(statuses, status)
		}
		return statuses
	}
	a, b := run(7), run(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at request %d: %v vs %v", i+1, a, b)
		}
	}
	failed := 0
	for _, s := range a {
		if s != http.StatusOK {
			failed++
		}
	}
	if failed == 0 || failed == len(a) {
		t.Fatalf("rate 0.5 over 32 requests failed %d — schedule degenerate", failed)
	}
	c := run(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical schedules")
	}
}
