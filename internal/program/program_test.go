package program

import (
	"context"
	"os"
	"testing"

	"vliwq"
	"vliwq/internal/frontend"
)

func loadKernelTrace(t testing.TB) *frontend.Program {
	t.Helper()
	f, err := os.Open("../frontend/testdata/kernel.trace")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	p, err := frontend.Parse(f)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestScheduleProgramKernelTrace is the acceptance path: the checked-in
// multi-loop trace lifts to >= 3 regions, the merged schedule verifies,
// and every hard region carries an optimality certificate.
func TestScheduleProgramKernelTrace(t *testing.T) {
	p := loadKernelTrace(t)
	if len(p.Regions) < 3 {
		t.Fatalf("kernel trace lifts to %d regions, want >= 3", len(p.Regions))
	}
	s, err := ScheduleProgram(context.Background(), p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Verify(); err != nil {
		t.Fatalf("merged schedule fails verification: %v", err)
	}
	if s.Machine != "clustered:4" {
		t.Fatalf("machine = %q, want clustered:4", s.Machine)
	}
	if s.HardCount() == 0 {
		t.Fatal("no region classified hard; the trace must exercise the certified tier")
	}
	if !s.Certified() {
		t.Fatal("a hard region is missing its Bound certificate")
	}
	for _, rs := range s.Regions {
		wantEffort := "fast"
		if rs.Hard {
			wantEffort = "optimal"
		}
		if rs.Request.Effort != wantEffort {
			t.Errorf("region %q: effort %q, want %q", rs.Region.Label, rs.Request.Effort, wantEffort)
		}
	}
	if s.SumII() <= 0 || s.MaxQueues() <= 0 {
		t.Fatalf("degenerate metrics: sum II=%d queues=%d", s.SumII(), s.MaxQueues())
	}
	if len(s.StageNanos()) == 0 {
		t.Fatal("no per-region stage timings aggregated")
	}
}

// TestRegionCompilesMatchStandalone pins the partition invariant: each
// region's compile inside the program schedule is byte-identical (report
// and kernel table) to compiling the region's lifted loop standalone
// through its own session with the same request.
func TestRegionCompilesMatchStandalone(t *testing.T) {
	p := loadKernelTrace(t)
	s, err := ScheduleProgram(context.Background(), p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, rs := range s.Regions {
		standalone := vliwq.NewCompiler(vliwq.CompilerConfig{})
		res, err := standalone.Run(context.Background(), rs.Request)
		if err != nil {
			t.Fatalf("region %q standalone: %v", rs.Region.Label, err)
		}
		if got, want := rs.Result.Report(), res.Report(); got != want {
			t.Errorf("region %q report diverges:\n%s\nvs standalone\n%s", rs.Region.Label, got, want)
		}
		if got, want := rs.Result.KernelSchedule(), res.KernelSchedule(); got != want {
			t.Errorf("region %q kernel diverges:\n%s\nvs standalone\n%s", rs.Region.Label, got, want)
		}
		if rs.Result.Bound != res.Bound {
			t.Errorf("region %q bound diverges: %+v vs %+v", rs.Region.Label, rs.Result.Bound, res.Bound)
		}
	}
}

// TestRenderDeterministic: two independent sessions produce byte-identical
// merged renderings.
func TestRenderDeterministic(t *testing.T) {
	p := loadKernelTrace(t)
	a, err := ScheduleProgram(context.Background(), p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := ScheduleProgram(context.Background(), p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ra, rb := a.Render(), b.Render()
	if ra != rb {
		t.Fatalf("renderings differ:\n%s\nvs\n%s", ra, rb)
	}
	if ra == "" {
		t.Fatal("empty rendering")
	}
}

// TestRequestsErrors: bad machine specs and empty programs fail cleanly.
func TestRequestsErrors(t *testing.T) {
	p := loadKernelTrace(t)
	if _, err := Requests(p, Options{Machine: "hex:9"}); err == nil {
		t.Fatal("bad machine spec accepted")
	}
	empty, err := frontend.ParseString("\tmov r0, 0\n")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ScheduleProgram(context.Background(), empty, Options{}); err == nil {
		t.Fatal("region-free trace accepted")
	}
}

// TestSharedCompilerSession: a caller-provided session is reused, so a
// second program schedule hits the session cache instead of recompiling.
func TestSharedCompilerSession(t *testing.T) {
	p := loadKernelTrace(t)
	c := vliwq.NewCompiler(vliwq.CompilerConfig{})
	if _, err := ScheduleProgram(context.Background(), p, Options{Compiler: c}); err != nil {
		t.Fatal(err)
	}
	first := c.Stats()
	if _, err := ScheduleProgram(context.Background(), p, Options{Compiler: c}); err != nil {
		t.Fatal(err)
	}
	second := c.Stats()
	if second.Misses != first.Misses {
		t.Fatalf("second schedule recompiled: misses %d -> %d", first.Misses, second.Misses)
	}
	if second.Hits <= first.Hits {
		t.Fatalf("second schedule did not hit the session cache: hits %d -> %d", first.Hits, second.Hits)
	}
}
