// Package program schedules whole multi-loop programs lifted from RISC
// traces (internal/frontend). It is the partitioning layer above the
// single-loop engine: every recovered region is classified as trivial or
// hard, trivial regions take the fast tier, hard regions go through the
// portfolio/certified tiers, and the per-region schedules are merged back
// into one program schedule whose total order is verified. All per-region
// compiles run as canonical vliwq.Requests through one vliwq.Compiler
// session, so the structural cache and Result.Bound certificates apply to
// each region exactly as they would to a standalone request — a region's
// compile is byte-identical to compiling its lifted loop alone, and the
// same Requests can be posted verbatim to a vliwd /batch endpoint (see
// DESIGN.md §15).
package program

import (
	"context"
	"fmt"
	"strings"

	"vliwq"
	"vliwq/internal/frontend"
	"vliwq/internal/ir"
	"vliwq/internal/sched"
)

// DefaultMachine is the target when Options.Machine is empty: the paper's
// smallest clustered configuration.
const DefaultMachine = "clustered:4"

// DefaultHardOps is the region-size floor for the hard class.
const DefaultHardOps = 10

// Options configures a whole-program schedule.
type Options struct {
	// Machine is the target machine spec ("" = DefaultMachine).
	Machine string
	// HardEffort is the tier hard regions compile with ("" = optimal, so
	// hard regions carry Bound certificates by default).
	HardEffort string
	// TrivialEffort is the tier trivial regions compile with ("" = fast).
	TrivialEffort string
	// HardOps is the op-count floor for the hard class (0 = DefaultHardOps).
	HardOps int
	// Workers bounds the per-region compile parallelism when this call
	// creates its own Compiler (0 = GOMAXPROCS).
	Workers int
	// SkipVerify skips the per-region simulator verification.
	SkipVerify bool
	// Compiler, when non-nil, is the session to compile through — callers
	// share one session so the structural cache spans programs. When nil a
	// private session is created.
	Compiler *vliwq.Compiler
}

func (o Options) withDefaults() Options {
	if o.Machine == "" {
		o.Machine = DefaultMachine
	}
	if o.HardEffort == "" {
		o.HardEffort = "optimal"
	}
	if o.TrivialEffort == "" {
		o.TrivialEffort = "fast"
	}
	if o.HardOps <= 0 {
		o.HardOps = DefaultHardOps
	}
	return o
}

// Hard classifies a lifted region: hard regions are big enough to be
// worth the expensive tiers AND resource-bound (RecMII <= ResMII — no
// recurrence already dictates the II, so cluster assignment quality and
// the certified search have room to matter). Singleton or recurrence-
// bound regions gain nothing from the expensive tiers: the fast tier
// already meets their RecMII-dominated lower bound.
func Hard(l *ir.Loop, m vliwq.Machine, hardOps int) bool {
	if hardOps <= 0 {
		hardOps = DefaultHardOps
	}
	if len(l.Ops) < hardOps {
		return false
	}
	res, err := sched.ResMII(l, m)
	if err != nil {
		return false
	}
	return sched.RecMII(l) <= res
}

// Requests maps every region of p onto its canonical compile request:
// the region's lifted loop in the text format, the target machine, and
// the effort tier its class selects. The slice is exactly what
// ScheduleProgram compiles, and — wrapped in a BatchRequest — what a
// vliwd /batch endpoint serves, making traces first-class service
// workloads.
func Requests(p *frontend.Program, opts Options) ([]vliwq.Request, error) {
	reqs, _, err := classify(p, opts.withDefaults())
	return reqs, err
}

func classify(p *frontend.Program, o Options) ([]vliwq.Request, []bool, error) {
	m, err := vliwq.ParseMachine(o.Machine)
	if err != nil {
		return nil, nil, fmt.Errorf("program: %v", err)
	}
	reqs := make([]vliwq.Request, len(p.Regions))
	hard := make([]bool, len(p.Regions))
	for i, r := range p.Regions {
		hard[i] = Hard(r.Loop, m, o.HardOps)
		eff := o.TrivialEffort
		if hard[i] {
			eff = o.HardEffort
		}
		reqs[i] = vliwq.Request{
			Loop:       vliwq.FormatLoop(r.Loop),
			Machine:    o.Machine,
			Effort:     eff,
			SkipVerify: o.SkipVerify,
		}
	}
	return reqs, hard, nil
}

// RegionSchedule is one region's slice of the program schedule.
type RegionSchedule struct {
	Region  *frontend.Region
	Hard    bool
	Request vliwq.Request
	Result  *vliwq.Result
}

// Schedule is a whole-program schedule: every region compiled for one
// machine, in program order, with the glue instructions left sequential
// between them.
type Schedule struct {
	Program *frontend.Program
	Machine string // canonical spec
	Regions []RegionSchedule
}

// ScheduleProgram compiles every region of p and merges the results. Any
// region error fails the whole program — a partial program schedule is
// not a schedule.
func ScheduleProgram(ctx context.Context, p *frontend.Program, opts Options) (*Schedule, error) {
	o := opts.withDefaults()
	if len(p.Regions) == 0 {
		return nil, fmt.Errorf("program: trace %q has no loop regions", p.Name)
	}
	reqs, hard, err := classify(p, o)
	if err != nil {
		return nil, err
	}
	m, _ := vliwq.ParseMachine(o.Machine)
	c := o.Compiler
	if c == nil {
		c = vliwq.NewCompiler(vliwq.CompilerConfig{Workers: o.Workers})
	}
	results := c.RunBatch(ctx, reqs)
	s := &Schedule{Program: p, Machine: m.Spec(), Regions: make([]RegionSchedule, len(reqs))}
	for i, br := range results {
		if br.Err != nil {
			return nil, fmt.Errorf("program: region %q: %v", p.Regions[i].Label, br.Err)
		}
		s.Regions[i] = RegionSchedule{Region: p.Regions[i], Hard: hard[i], Request: reqs[i], Result: br.Result}
	}
	return s, nil
}

// Verify checks the merged schedule's total order: regions must appear in
// program order without overlap, every region must carry a schedule whose
// loop is skeleton-identical to the lifted region (the compile answered
// the region actually asked), and each region's kernel must satisfy its
// dependence graph (sched.Schedule.Verify, the dependence-order check).
func (s *Schedule) Verify() error {
	if len(s.Regions) != len(s.Program.Regions) {
		return fmt.Errorf("program: schedule covers %d of %d regions", len(s.Regions), len(s.Program.Regions))
	}
	last := -1
	for _, rs := range s.Regions {
		r := rs.Region
		if r.Start <= last {
			return fmt.Errorf("program: region %q out of program order", r.Label)
		}
		last = r.End
		if rs.Result == nil || rs.Result.Sched == nil {
			return fmt.Errorf("program: region %q has no schedule", r.Label)
		}
		if ir.Skeleton(rs.Result.Input) != ir.Skeleton(r.Loop) {
			return fmt.Errorf("program: region %q: compiled loop does not match the lifted region", r.Label)
		}
		if err := rs.Result.Sched.Verify(); err != nil {
			return fmt.Errorf("program: region %q: %v", r.Label, err)
		}
	}
	return nil
}

// SumII is the merged schedule's steady-state cost: one kernel iteration
// of every region.
func (s *Schedule) SumII() int {
	t := 0
	for _, rs := range s.Regions {
		t += rs.Result.II
	}
	return t
}

// CopyOps counts the inter-cluster copy traffic (copy and move ops) the
// partitioner inserted across all regions.
func (s *Schedule) CopyOps() int {
	t := 0
	for _, rs := range s.Regions {
		for _, op := range rs.Result.Sched.Loop.Ops {
			if op.Kind == ir.KCopy || op.Kind == ir.KMove {
				t++
			}
		}
	}
	return t
}

// MaxQueues is the register-pressure proxy: the largest private queue
// count any region needs in any cluster.
func (s *Schedule) MaxQueues() int {
	q := 0
	for _, rs := range s.Regions {
		if rs.Result.Queues > q {
			q = rs.Result.Queues
		}
	}
	return q
}

// MaxRingQueues is the largest ring (inter-cluster) queue count any
// region needs on any link.
func (s *Schedule) MaxRingQueues() int {
	q := 0
	for _, rs := range s.Regions {
		if rs.Result.RingQueues > q {
			q = rs.Result.RingQueues
		}
	}
	return q
}

// HardCount reports how many regions classified hard.
func (s *Schedule) HardCount() int {
	n := 0
	for _, rs := range s.Regions {
		if rs.Hard {
			n++
		}
	}
	return n
}

// Certified reports whether every hard region carries an optimality
// certificate (Bound.Lower > 0 — the certified tier ran and bounded it).
func (s *Schedule) Certified() bool {
	for _, rs := range s.Regions {
		if rs.Hard && rs.Result.Bound.Lower == 0 {
			return false
		}
	}
	return true
}

// StageNanos aggregates per-stage wall-clock across every region compile,
// keyed by stage name — the program-level view of the service's
// stage_nanos observability.
func (s *Schedule) StageNanos() map[string]int64 {
	out := make(map[string]int64)
	for _, rs := range s.Regions {
		for _, st := range rs.Result.Stages {
			out[st.Stage.String()] += int64(st.Duration)
		}
	}
	return out
}

// Render prints the merged program schedule deterministically: program
// header, sequential glue, and every region's class, request effort,
// headline metrics and kernel table, with a steady-state summary line.
func (s *Schedule) Render() string {
	var b strings.Builder
	glue := s.Program.Glue()
	fmt.Fprintf(&b, "program %s on %s: %d regions (%d hard), %d glue instructions\n",
		s.Program.Name, s.Machine, len(s.Regions), s.HardCount(), len(glue))
	if len(glue) > 0 {
		b.WriteString("\nglue (sequential):\n")
		for _, in := range glue {
			fmt.Fprintf(&b, "  %s\n", in.String())
		}
	}
	for _, rs := range s.Regions {
		class := "trivial"
		if rs.Hard {
			class = "hard"
		}
		fmt.Fprintf(&b, "\nregion %s [%s, effort=%s]: %d ops, %d deps (%d discharged)\n",
			rs.Region.Label, class, rs.Request.Effort, len(rs.Region.Loop.Ops),
			len(rs.Region.Deps), rs.Region.Discharged)
		b.WriteString(indent(rs.Result.Report(), "  "))
		b.WriteString(indent(rs.Result.KernelSchedule(), "  "))
	}
	fmt.Fprintf(&b, "\ntotal: sum II=%d, copy ops=%d, queues<=%d, ring<=%d\n",
		s.SumII(), s.CopyOps(), s.MaxQueues(), s.MaxRingQueues())
	return b.String()
}

func indent(s, pad string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i, l := range lines {
		if l != "" {
			lines[i] = pad + l
		}
	}
	return strings.Join(lines, "\n") + "\n"
}
