package gateway

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"vliwq"
	"vliwq/internal/cache"
	"vliwq/internal/corpus"
	"vliwq/internal/service"
)

// testRequests renders n deterministic corpus loops as compile requests —
// the same seed and knobs the service fidelity test uses.
func testRequests(t testing.TB, n int) []service.CompileRequest {
	t.Helper()
	loops := corpus.Generate(corpus.Params{Seed: corpus.DefaultSeed, N: n})
	reqs := make([]service.CompileRequest, n)
	for i, l := range loops {
		reqs[i] = service.CompileRequest{Loop: vliwq.FormatLoop(l), Machine: "clustered:4", Unroll: true}
	}
	return reqs
}

// fleet boots n independent service backends and a gateway in front of
// them, returning the gateway plus its test server and the backend servers.
func fleet(t testing.TB, n int, cfg Config) (*Gateway, *httptest.Server, []*httptest.Server) {
	t.Helper()
	backends := make([]*httptest.Server, n)
	cfg.Backends = make([]string, n)
	for i := range backends {
		backends[i] = httptest.NewServer(service.New(service.Config{}).Handler())
		cfg.Backends[i] = backends[i].URL
	}
	gw, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(gw.Handler())
	t.Cleanup(func() {
		ts.Close()
		for _, b := range backends {
			b.Close()
		}
	})
	return gw, ts, backends
}

func postJSON(t testing.TB, client *http.Client, url string, body any) (*http.Response, []byte) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, out.Bytes()
}

// TestRouteDeterministic: the routing rule is a pure function of the
// request — two independently built gateways over the same ring agree on
// every assignment, repeated calls agree with themselves, and the corpus
// spreads across both slots (the hash actually shards).
func TestRouteDeterministic(t *testing.T) {
	reqs := testRequests(t, 56)
	a, err := New(Config{Backends: []string{"http://a", "http://b"}})
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(Config{Backends: []string{"http://a", "http://b"}})
	if err != nil {
		t.Fatal(err)
	}
	var perSlot [2]int
	// rawParity[slot] tracks the raw FNV-1a low bit of keys landing on each
	// slot: both parities must appear on a slot, or routing is just the raw
	// hash and each backend's cache would only ever touch half its shards.
	var rawParity [2][2]int
	for i := range reqs {
		r1, r2, r3 := a.Route(&reqs[i]), b.Route(&reqs[i]), a.Route(&reqs[i])
		if r1 != r2 || r1 != r3 {
			t.Fatalf("request %d routed inconsistently: %d, %d, %d", i, r1, r2, r3)
		}
		perSlot[r1]++
		rawParity[r1][cache.StringHash(reqs[i].Canonical())&1]++
	}
	if perSlot[0] == 0 || perSlot[1] == 0 {
		t.Fatalf("routing degenerated: distribution %v over 56 requests", perSlot)
	}
	for slot := range rawParity {
		if rawParity[slot][0] == 0 || rawParity[slot][1] == 0 {
			t.Fatalf("slot %d only received one raw-hash parity %v — routing is correlated with the backend cache's shard hash", slot, rawParity[slot])
		}
	}
	t.Logf("distribution over 56 corpus requests: %v (raw-hash parities %v)", perSlot, rawParity)
}

// TestRouteCollapsesDefaultSpellings is the shard half of the
// key-fragmentation regression: {"loop": L} and the fully spelled-out
// default request must land on one gateway shard (and therefore one
// backend cache), for every ring size. The historical raw-field
// CanonicalKey violated this — the two spellings hashed apart.
func TestRouteCollapsesDefaultSpellings(t *testing.T) {
	loop := vliwq.FormatLoop(corpus.KernelByName("daxpy"))
	bare := service.CompileRequest{Loop: loop}
	spelled := service.CompileRequest{Loop: loop, Machine: "single:6", CopyShape: "tree", Effort: "fast"}
	for _, n := range []int{2, 3, 5, 8} {
		urls := make([]string, n)
		for i := range urls {
			urls[i] = "http://backend"
		}
		g, err := New(Config{Backends: urls})
		if err != nil {
			t.Fatal(err)
		}
		if a, b := g.Route(&bare), g.Route(&spelled); a != b {
			t.Fatalf("%d backends: default spellings of one request routed apart (%d vs %d)", n, a, b)
		}
	}
}

// TestGatewayMatchesDirectService is the fidelity contract: for 56 corpus
// loops, the body a client reads through the gateway — success or
// pipeline-rejection — is byte-identical to what a standalone vliwd answers
// for the same request (which TestServerMatchesDirectCompile in turn pins
// to in-process vliwq.Compile output). /batch must agree entry-for-entry.
func TestGatewayMatchesDirectService(t *testing.T) {
	const n = 56
	reqs := testRequests(t, n)
	_, ts, _ := fleet(t, 2, Config{})

	ref := httptest.NewServer(service.New(service.Config{}).Handler())
	defer ref.Close()

	for i := range reqs {
		gresp, gbody := postJSON(t, ts.Client(), ts.URL+"/compile", reqs[i])
		rresp, rbody := postJSON(t, ref.Client(), ref.URL+"/compile", reqs[i])
		if gresp.StatusCode != rresp.StatusCode {
			t.Fatalf("loop %d: gateway status %d, direct status %d", i, gresp.StatusCode, rresp.StatusCode)
		}
		if !bytes.Equal(gbody, rbody) {
			t.Fatalf("loop %d: gateway body differs from direct service:\n%s\nvs\n%s", i, gbody, rbody)
		}
	}

	// The same set as one batch: split across backends, reassembled in
	// input order, each entry byte-identical to the standalone server's.
	gresp, gbody := postJSON(t, ts.Client(), ts.URL+"/batch", service.BatchRequest{Requests: reqs})
	if gresp.StatusCode != http.StatusOK {
		t.Fatalf("/batch status %d: %s", gresp.StatusCode, gbody)
	}
	rresp, rbody := postJSON(t, ref.Client(), ref.URL+"/batch", service.BatchRequest{Requests: reqs})
	if rresp.StatusCode != http.StatusOK {
		t.Fatalf("direct /batch status %d", rresp.StatusCode)
	}
	var got, want rawBatchResponse
	if err := json.Unmarshal(gbody, &got); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(rbody, &want); err != nil {
		t.Fatal(err)
	}
	if len(got.Results) != n || len(want.Results) != n {
		t.Fatalf("batch sizes: gateway %d, direct %d, want %d", len(got.Results), len(want.Results), n)
	}
	for i := range got.Results {
		if !bytes.Equal(got.Results[i], want.Results[i]) {
			t.Fatalf("batch entry %d differs:\n%s\nvs\n%s", i, got.Results[i], want.Results[i])
		}
	}
}

// TestGatewayCacheAffinity: replaying the same requests twice through the
// gateway turns every second-pass request into a backend cache hit, and the
// aggregated /stats sees them.
func TestGatewayCacheAffinity(t *testing.T) {
	const n = 16
	reqs := testRequests(t, n)
	gw, ts, _ := fleet(t, 2, Config{})

	for pass := 0; pass < 2; pass++ {
		for i := range reqs {
			resp, body := postJSON(t, ts.Client(), ts.URL+"/compile", reqs[i])
			if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusUnprocessableEntity {
				t.Fatalf("pass %d loop %d: status %d: %s", pass, i, resp.StatusCode, body)
			}
		}
	}
	st := gw.Stats(context.Background())
	if st.TotalCache.Hits < int64(n) {
		t.Fatalf("aggregated hits %d after a full replay, want >= %d", st.TotalCache.Hits, n)
	}
	// Affinity means no backend compiled a request it does not own: total
	// distinct computes equals total entries equals n.
	if st.TotalCache.Entries != int64(n) || st.TotalCache.Misses != int64(n) {
		t.Fatalf("fleet holds %d entries / %d misses, want exactly %d of each (no duplicated compiles)",
			st.TotalCache.Entries, st.TotalCache.Misses, n)
	}
	for _, bs := range st.Backends {
		if bs.Owned != bs.Served {
			t.Fatalf("backend %s owned %d but served %d with no failures in play", bs.URL, bs.Owned, bs.Served)
		}
	}
}

// TestGatewayFailover stops one backend and checks the ring heals: requests
// owned by the dead slot are answered by its neighbour, counted as
// failovers, and the fleet keeps returning correct bodies.
func TestGatewayFailover(t *testing.T) {
	const n = 24
	reqs := testRequests(t, n)
	gw, ts, backends := fleet(t, 2, Config{})

	ref := httptest.NewServer(service.New(service.Config{}).Handler())
	defer ref.Close()

	backends[0].Close() // slot 0 is now down

	deadOwned := 0
	for i := range reqs {
		if gw.Route(&reqs[i]) == 0 {
			deadOwned++
		}
		gresp, gbody := postJSON(t, ts.Client(), ts.URL+"/compile", reqs[i])
		rresp, rbody := postJSON(t, ref.Client(), ref.URL+"/compile", reqs[i])
		if gresp.StatusCode != rresp.StatusCode || !bytes.Equal(gbody, rbody) {
			t.Fatalf("loop %d: failover answer differs (status %d vs %d)", i, gresp.StatusCode, rresp.StatusCode)
		}
	}
	if deadOwned == 0 {
		t.Fatal("test corpus never routed to the dead slot; grow n")
	}
	st := gw.Stats(context.Background())
	if st.Backends[1].Failovers != int64(deadOwned) {
		t.Fatalf("neighbour served %d failovers, want %d", st.Backends[1].Failovers, deadOwned)
	}
	// Every dead-owned request either burned a real attempt (errors) or was
	// short-circuited by the open breaker (skipped); after enough failures
	// the breaker must have opened and stopped hammering the corpse.
	if total := st.Backends[0].Errors + st.Backends[0].Skipped; total < int64(deadOwned) {
		t.Fatalf("dead slot recorded %d errors + %d skips, want >= %d",
			st.Backends[0].Errors, st.Backends[0].Skipped, deadOwned)
	}
	if st.Backends[0].Breaker != "open" || st.Backends[0].BreakerOpens < 1 {
		t.Fatalf("dead slot breaker %q (opens=%d), want open after sustained failures",
			st.Backends[0].Breaker, st.Backends[0].BreakerOpens)
	}
	if st.Backends[0].Skipped == 0 {
		t.Fatal("open breaker never skipped an attempt — the dead backend was hammered throughout")
	}
	if st.Backends[0].Healthy || !st.Backends[1].Healthy {
		t.Fatalf("health flags wrong: %+v", st.Backends)
	}
}

// TestGatewayFailoverDisabled: with Retries < 0 a dead owner is surfaced as
// 502, not silently rerouted.
func TestGatewayFailoverDisabled(t *testing.T) {
	reqs := testRequests(t, 24)
	gw, ts, backends := fleet(t, 2, Config{Retries: -1})
	backends[0].Close()

	saw502 := false
	for i := range reqs {
		resp, body := postJSON(t, ts.Client(), ts.URL+"/compile", reqs[i])
		if gw.Route(&reqs[i]) == 0 {
			if resp.StatusCode != http.StatusBadGateway {
				t.Fatalf("dead-owned loop %d: status %d, want 502: %s", i, resp.StatusCode, body)
			}
			saw502 = true
		} else if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusUnprocessableEntity {
			t.Fatalf("live-owned loop %d: status %d", i, resp.StatusCode)
		}
	}
	if !saw502 {
		t.Fatal("no request was owned by the dead slot")
	}
}

// TestGatewayBatchDeadSlot: with failover disabled, a batch spanning a
// dead backend still answers 200 — the dead slot's entries carry the
// transport error, the live slot's entries are real results, and input
// order is preserved.
func TestGatewayBatchDeadSlot(t *testing.T) {
	const n = 24
	reqs := testRequests(t, n)
	gw, ts, backends := fleet(t, 2, Config{Retries: -1})
	backends[0].Close()

	resp, body := postJSON(t, ts.Client(), ts.URL+"/batch", service.BatchRequest{Requests: reqs})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/batch status %d: %s", resp.StatusCode, body)
	}
	var br service.BatchResponse
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatal(err)
	}
	if len(br.Results) != n {
		t.Fatalf("batch answered %d entries, want %d", len(br.Results), n)
	}
	for i := range reqs {
		e := br.Results[i]
		if gw.Route(&reqs[i]) == 0 {
			if e.Error == "" || e.Response != nil {
				t.Fatalf("dead-owned entry %d should carry the transport error: %+v", i, e)
			}
		} else if e.Error == "" && e.Response == nil {
			t.Fatalf("live-owned entry %d is empty", i)
		}
	}
}

// TestGatewayBatchLimit: the gateway answers an oversized batch with the
// same 413 a single vliwd would, before splitting anything.
func TestGatewayBatchLimit(t *testing.T) {
	gw, ts, _ := fleet(t, 2, Config{MaxBatch: 4})
	reqs := testRequests(t, 5)
	resp, body := postJSON(t, ts.Client(), ts.URL+"/batch", service.BatchRequest{Requests: reqs})
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized batch: status %d, want 413: %s", resp.StatusCode, body)
	}
	st := gw.Stats(context.Background())
	for _, bs := range st.Backends {
		if bs.Owned != 0 {
			t.Fatalf("an oversized batch reached backend routing: %+v", bs)
		}
	}
}

// TestDispatchCancelledContext: a client that goes away is not a backend
// failure — dispatch stops immediately and no backend error or failover is
// counted against the ring.
func TestDispatchCancelledContext(t *testing.T) {
	gw, _, _ := fleet(t, 2, Config{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, _, err := gw.dispatch(ctx, 0, "/compile", []byte(`{}`), 1); err == nil {
		t.Fatal("dispatch succeeded with a cancelled context")
	}
	st := gw.Stats(context.Background())
	for _, bs := range st.Backends {
		if bs.Errors != 0 || bs.Failovers != 0 {
			t.Fatalf("cancelled client polluted backend counters: %+v", bs)
		}
	}
}

// TestGatewayHealthz walks the three health states: all up, one down
// (degraded, still 200), all down (503).
func TestGatewayHealthz(t *testing.T) {
	_, ts, backends := fleet(t, 2, Config{})
	get := func() (int, HealthResponse) {
		resp, err := ts.Client().Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var hr HealthResponse
		if err := json.NewDecoder(resp.Body).Decode(&hr); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, hr
	}
	if code, hr := get(); code != http.StatusOK || hr.Status != "ok" {
		t.Fatalf("all-up health: %d %q", code, hr.Status)
	}
	backends[0].Close()
	if code, hr := get(); code != http.StatusOK || hr.Status != "degraded" {
		t.Fatalf("one-down health: %d %q", code, hr.Status)
	}
	backends[1].Close()
	if code, hr := get(); code != http.StatusServiceUnavailable || hr.Status != "down" {
		t.Fatalf("all-down health: %d %q", code, hr.Status)
	}
}

// TestGatewayRejectsBadBodies: malformed JSON and unknown fields bounce at
// the gateway with 400, before any backend sees them.
func TestGatewayRejectsBadBodies(t *testing.T) {
	gw, ts, _ := fleet(t, 2, Config{})
	for _, body := range []string{"{not json", `{"loop": "x", "bogus": 1}`} {
		resp, err := ts.Client().Post(ts.URL+"/compile", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("body %q: status %d, want 400", body, resp.StatusCode)
		}
	}
	st := gw.Stats(context.Background())
	for _, bs := range st.Backends {
		if bs.Owned != 0 || bs.Served != 0 {
			t.Fatalf("a malformed body reached backend routing: %+v", bs)
		}
	}
	if st.RequestErrors != 2 {
		t.Fatalf("request errors %d, want 2", st.RequestErrors)
	}
}

// TestNewValidation: a gateway without backends is a configuration error.
func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New accepted an empty backend list")
	}
	if _, err := New(Config{Backends: []string{"http://a", ""}}); err == nil {
		t.Fatal("New accepted an empty backend URL")
	}
}
