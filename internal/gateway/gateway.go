// Package gateway implements the vliwgate sharding proxy: a cache-aware
// router in front of N vliwd backends.
//
// Compilation is deterministic and every backend caches whole responses
// under the canonical request key (vliwq.Request.Canonical), so the win is
// not load spreading alone — it is cache affinity. The gateway hashes the
// canonical key (FNV-1a, then a splitmix64 finalizer so the routing
// decision is decorrelated from the backend cache's own shard selection)
// and routes each request to backends[hash % N]; identical requests
// therefore always land on the backend that already holds the entry, and
// the fleet's aggregate cache behaves like one cache N times the size with
// no invalidation protocol at all. The layout deliberately mirrors the paper's clustered
// machine: backends are clusters, the hash is the partitioning rule, and
// failover moves work to the ring-adjacent neighbour only — the same
// locality discipline the scheduler applies to values crossing clusters.
//
// Endpoints mirror the backend surface: POST /compile and POST /batch are
// routed (a batch is split per owning backend and reassembled in input
// order), GET /healthz probes every backend, GET /stats aggregates backend
// cache and scheduler counters with per-backend routing totals.
package gateway

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"vliwq/internal/cache"
	"vliwq/internal/service"
)

// Config tunes a Gateway. Backends is required; everything else defaults.
type Config struct {
	// Backends are the vliwd base URLs, e.g. "http://10.0.0.1:8391". Order
	// matters: it fixes the hash ring, so every gateway replica must list
	// the same backends in the same order to route identically.
	Backends []string
	// Retries is how many ring-adjacent neighbours to try after the owning
	// backend fails (transport error or 5xx). 0 means 1; negative disables
	// failover. Capped at len(Backends)-1 — there is no one left after a
	// full lap.
	Retries int
	// Client issues backend requests; nil uses a client with pooled
	// per-host connections and Timeout as its overall timeout. Supplying
	// a Client is for tests — production callers should prefer Timeout so
	// they keep the tuned transport.
	Client *http.Client
	// Timeout bounds one backend request when Client is nil; 0 means 60 s.
	Timeout time.Duration
	// MaxBodyBytes caps an incoming request body; 0 means 8 MiB (the
	// gateway fronts /batch, so it allows more than one backend request).
	MaxBodyBytes int64
	// MaxBatch caps the request count of one /batch call before it is
	// split, mirroring the backend limit so the gateway answers 413 the
	// same way a single vliwd would; 0 means 1024.
	MaxBatch int
}

// backend is one ring slot: the base URL plus the routing counters /stats
// reports.
type backend struct {
	url       string
	owned     atomic.Int64 // requests this backend owns by hash
	served    atomic.Int64 // requests it actually answered (batch entries count singly)
	failovers atomic.Int64 // answers it gave for a neighbour's key
	errors    atomic.Int64 // attempts that failed (transport or 5xx)
}

// Gateway is the sharding proxy. Create one with New; it is safe for
// concurrent use.
type Gateway struct {
	cfg      Config
	backends []*backend
	client   *http.Client
	mux      *http.ServeMux
	start    time.Time

	compileRequests atomic.Int64
	batchRequests   atomic.Int64
	batchItems      atomic.Int64
	requestErrors   atomic.Int64
}

// New builds a Gateway over cfg.Backends.
func New(cfg Config) (*Gateway, error) {
	if len(cfg.Backends) == 0 {
		return nil, errors.New("gateway: no backends configured")
	}
	g := &Gateway{cfg: cfg, client: cfg.Client, start: time.Now()}
	for _, u := range cfg.Backends {
		if u == "" {
			return nil, errors.New("gateway: empty backend URL")
		}
		g.backends = append(g.backends, &backend{url: u})
	}
	if g.client == nil {
		timeout := cfg.Timeout
		if timeout <= 0 {
			timeout = 60 * time.Second
		}
		g.client = &http.Client{
			Timeout: timeout,
			Transport: &http.Transport{
				MaxIdleConns:        64,
				MaxIdleConnsPerHost: 16,
			},
		}
	}
	g.mux = http.NewServeMux()
	g.mux.HandleFunc("/compile", g.handleCompile)
	g.mux.HandleFunc("/batch", g.handleBatch)
	g.mux.HandleFunc("/healthz", g.handleHealthz)
	g.mux.HandleFunc("/stats", g.handleStats)
	return g, nil
}

// Handler returns the root handler for an http.Server.
func (g *Gateway) Handler() http.Handler { return g.mux }

// retries resolves Config.Retries against the ring size.
func (g *Gateway) retries() int {
	r := g.cfg.Retries
	if r == 0 {
		r = 1
	}
	if r < 0 {
		r = 0
	}
	if max := len(g.backends) - 1; r > max {
		r = max
	}
	return r
}

func (g *Gateway) maxBody() int64 {
	if g.cfg.MaxBodyBytes > 0 {
		return g.cfg.MaxBodyBytes
	}
	return 8 << 20
}

func (g *Gateway) maxBatch() int {
	if g.cfg.MaxBatch > 0 {
		return g.cfg.MaxBatch
	}
	return service.DefaultMaxBatch
}

// Route reports the ring slot owning one compile request: a stable mix of
// the canonical key's (vliwq.Request.Canonical) FNV-1a hash, modulo the
// ring size. This is the whole routing rule — no state, no coordination;
// determinism is what makes the sharded caches effective. Canonical
// normalizes before encoding, so every spelling of the same behaviour —
// an omitted machine vs "single:6", an omitted copy shape vs "tree" —
// routes to the one backend whose cache already holds the entry.
//
// The mix step matters: the backend cache selects its internal shard from
// the low bits of the same FNV-1a hash, so routing on the raw hash would
// hand each backend a residue class of keys that exercises only a fraction
// of its shards (with N backends = the shard count, exactly one). The
// splitmix64 finalizer decorrelates the two decisions.
func (g *Gateway) Route(req *service.CompileRequest) int {
	return int(mix64(cache.StringHash(req.Canonical())) % uint64(len(g.backends)))
}

// mix64 is the splitmix64 finalizer: a cheap bijective avalanche so every
// output bit depends on every input bit.
func mix64(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// retryable reports whether an attempt outcome should move to the
// ring-adjacent backend: transport errors and 5xx mean "this backend is
// unhealthy", while 2xx–4xx (including 422 compile rejections) are
// authoritative answers — compilation is deterministic, so a neighbour
// would only repeat them.
func retryable(status int, err error) bool {
	return err != nil || status >= 500
}

// forward POSTs body to one backend path and returns the raw response.
func (g *Gateway) forward(ctx context.Context, b *backend, path string, body []byte) (int, http.Header, []byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, b.url+path, bytes.NewReader(body))
	if err != nil {
		return 0, nil, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := g.client.Do(req)
	if err != nil {
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, nil, err
	}
	return resp.StatusCode, resp.Header, data, nil
}

// dispatch sends body to the owner's slot, walking the ring on retryable
// failures, and returns the first authoritative answer; when every attempt
// fails it returns the last error. weight is how many compile requests the
// body represents (1 for /compile, the sub-batch size for /batch) so the
// owned/served/failover counters measure work, not call counts.
func (g *Gateway) dispatch(ctx context.Context, owner int, path string, body []byte, weight int) (int, http.Header, []byte, error) {
	g.backends[owner].owned.Add(int64(weight))
	var lastErr error
	for hop := 0; hop <= g.retries(); hop++ {
		slot := (owner + hop) % len(g.backends)
		b := g.backends[slot]
		status, hdr, data, err := g.forward(ctx, b, path, body)
		if retryable(status, err) {
			// A cancelled client is not a sick backend: stop without
			// polluting the error counters or burning a doomed hop.
			if ctx.Err() != nil {
				return 0, nil, nil, ctx.Err()
			}
			b.errors.Add(1)
			if err == nil {
				err = fmt.Errorf("backend %s: status %d", b.url, status)
			}
			lastErr = err
			continue
		}
		b.served.Add(int64(weight))
		if hop > 0 {
			b.failovers.Add(int64(weight))
		}
		return status, hdr, data, nil
	}
	return 0, nil, nil, fmt.Errorf("all %d backend attempts failed, last: %w", g.retries()+1, lastErr)
}

// handleCompile routes one request by its canonical key and relays the
// owning backend's answer verbatim — status, content type and body bytes —
// so a response through the gateway is indistinguishable from one straight
// off the backend.
func (g *Gateway) handleCompile(w http.ResponseWriter, r *http.Request) {
	g.compileRequests.Add(1)
	if r.Method != http.MethodPost {
		g.fail(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, g.maxBody()))
	if err != nil {
		g.failRead(w, err)
		return
	}
	var req service.CompileRequest
	if err := strictUnmarshal(body, &req); err != nil {
		g.fail(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	status, hdr, data, err := g.dispatch(r.Context(), g.Route(&req), "/compile", body, 1)
	if err != nil {
		g.fail(w, http.StatusBadGateway, err.Error())
		return
	}
	relay(w, status, hdr, data)
}

// handleBatch splits a batch by owning backend, forwards the per-backend
// sub-batches concurrently, and reassembles the entries in input order.
// Entries whose sub-batch exhausted its ring walk carry the transport
// error; everything else is the backend's JSON verbatim.
func (g *Gateway) handleBatch(w http.ResponseWriter, r *http.Request) {
	g.batchRequests.Add(1)
	if r.Method != http.MethodPost {
		g.fail(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, g.maxBody()))
	if err != nil {
		g.failRead(w, err)
		return
	}
	var req service.BatchRequest
	if err := strictUnmarshal(body, &req); err != nil {
		g.fail(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	if len(req.Requests) > g.maxBatch() {
		g.fail(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("batch of %d exceeds the %d-request limit", len(req.Requests), g.maxBatch()))
		return
	}
	g.batchItems.Add(int64(len(req.Requests)))

	// Group item indices by owning slot, preserving input order per group.
	groups := make(map[int][]int)
	for i := range req.Requests {
		owner := g.Route(&req.Requests[i])
		groups[owner] = append(groups[owner], i)
	}
	results := make([]json.RawMessage, len(req.Requests))
	var wg sync.WaitGroup
	for owner, idxs := range groups {
		wg.Add(1)
		go func(owner int, idxs []int) {
			defer wg.Done()
			sub := service.BatchRequest{Requests: make([]service.CompileRequest, len(idxs))}
			for j, i := range idxs {
				sub.Requests[j] = req.Requests[i]
			}
			subBody, err := json.Marshal(sub)
			if err != nil {
				g.fillErrors(results, idxs, err.Error())
				return
			}
			status, _, data, err := g.dispatch(r.Context(), owner, "/batch", subBody, len(idxs))
			if err != nil {
				g.fillErrors(results, idxs, err.Error())
				return
			}
			var br rawBatchResponse
			if status != http.StatusOK || json.Unmarshal(data, &br) != nil || len(br.Results) != len(idxs) {
				g.fillErrors(results, idxs, fmt.Sprintf("backend /batch answered status %d with an unusable body", status))
				return
			}
			for j, i := range idxs {
				results[i] = br.Results[j]
			}
		}(owner, idxs)
	}
	wg.Wait()
	writeRawBatch(w, results)
}

// rawBatchResponse decodes a backend batch answer without re-interpreting
// the entries, so the gateway relays each entry's bytes untouched.
type rawBatchResponse struct {
	Results []json.RawMessage `json:"results"`
}

// fillErrors stamps a batch error entry onto every index of a failed group.
func (g *Gateway) fillErrors(results []json.RawMessage, idxs []int, msg string) {
	entry, _ := json.Marshal(service.BatchEntry{Error: msg})
	for _, i := range idxs {
		results[i] = entry
	}
}

// BackendHealth is one backend's probe result inside a /healthz answer.
type BackendHealth struct {
	URL     string `json:"url"`
	Healthy bool   `json:"healthy"`
	Error   string `json:"error,omitempty"`
}

// HealthResponse is the JSON body of GET /healthz: "ok" while at least one
// backend answers its own /healthz, "degraded" when some do not (the ring
// still serves via failover), and HTTP 503 when none do.
type HealthResponse struct {
	Status   string          `json:"status"`
	Backends []BackendHealth `json:"backends"`
}

func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	hr := HealthResponse{Backends: make([]BackendHealth, len(g.backends))}
	ctx, cancel := context.WithTimeout(r.Context(), 5*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	for i, b := range g.backends {
		wg.Add(1)
		go func(i int, b *backend) {
			defer wg.Done()
			hr.Backends[i] = g.probe(ctx, b)
		}(i, b)
	}
	wg.Wait()
	healthy := 0
	for _, h := range hr.Backends {
		if h.Healthy {
			healthy++
		}
	}
	status := http.StatusOK
	switch {
	case healthy == len(hr.Backends):
		hr.Status = "ok"
	case healthy > 0:
		hr.Status = "degraded"
	default:
		hr.Status = "down"
		status = http.StatusServiceUnavailable
	}
	service.WriteJSON(w, status, hr)
}

func (g *Gateway) probe(ctx context.Context, b *backend) BackendHealth {
	h := BackendHealth{URL: b.url}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.url+"/healthz", nil)
	if err != nil {
		h.Error = err.Error()
		return h
	}
	resp, err := g.client.Do(req)
	if err != nil {
		h.Error = err.Error()
		return h
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		h.Error = fmt.Sprintf("status %d", resp.StatusCode)
		return h
	}
	h.Healthy = true
	return h
}

// BackendStats is one ring slot inside a /stats answer: the gateway's own
// routing counters plus the backend's /stats body when reachable.
type BackendStats struct {
	URL       string `json:"url"`
	Healthy   bool   `json:"healthy"`
	Owned     int64  `json:"owned"`     // requests hashed to this slot
	Served    int64  `json:"served"`    // requests it answered
	Failovers int64  `json:"failovers"` // requests answered for a neighbour
	Errors    int64  `json:"errors"`    // failed attempts against it

	Cache cache.Stats        `json:"cache"` // from the backend, zero when unreachable
	Sched service.SchedStats `json:"sched"`
}

// StatsResponse is the JSON body of GET /stats: per-backend detail plus
// fleet totals (cache counters summed across backends).
type StatsResponse struct {
	UptimeSeconds   float64            `json:"uptime_seconds"`
	BackendCount    int                `json:"backend_count"`
	CompileRequests int64              `json:"compile_requests"`
	BatchRequests   int64              `json:"batch_requests"`
	BatchItems      int64              `json:"batch_items"`
	RequestErrors   int64              `json:"request_errors"`
	Backends        []BackendStats     `json:"backends"`
	TotalCache      cache.Stats        `json:"total_cache"`
	TotalSched      service.SchedStats `json:"total_sched"`
}

func (g *Gateway) handleStats(w http.ResponseWriter, r *http.Request) {
	service.WriteJSON(w, http.StatusOK, g.Stats(r.Context()))
}

// Stats aggregates the fleet: each backend's /stats is fetched concurrently
// and summed into the totals; unreachable backends report their routing
// counters with Healthy=false and zero cache numbers.
func (g *Gateway) Stats(ctx context.Context) StatsResponse {
	st := StatsResponse{
		UptimeSeconds:   time.Since(g.start).Seconds(),
		BackendCount:    len(g.backends),
		CompileRequests: g.compileRequests.Load(),
		BatchRequests:   g.batchRequests.Load(),
		BatchItems:      g.batchItems.Load(),
		RequestErrors:   g.requestErrors.Load(),
		Backends:        make([]BackendStats, len(g.backends)),
	}
	ctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	for i, b := range g.backends {
		wg.Add(1)
		go func(i int, b *backend) {
			defer wg.Done()
			bs := BackendStats{
				URL:       b.url,
				Owned:     b.owned.Load(),
				Served:    b.served.Load(),
				Failovers: b.failovers.Load(),
				Errors:    b.errors.Load(),
			}
			if remote, err := g.fetchBackendStats(ctx, b); err == nil {
				bs.Healthy = true
				bs.Cache = remote.Cache
				bs.Sched = remote.Sched
			}
			st.Backends[i] = bs
		}(i, b)
	}
	wg.Wait()
	for _, bs := range st.Backends {
		st.TotalCache.Hits += bs.Cache.Hits
		st.TotalCache.Misses += bs.Cache.Misses
		st.TotalCache.Evictions += bs.Cache.Evictions
		st.TotalCache.Entries += bs.Cache.Entries
		st.TotalSched.Compiles += bs.Sched.Compiles
		st.TotalSched.Errors += bs.Sched.Errors
		st.TotalSched.OpsScheduled += bs.Sched.OpsScheduled
		st.TotalSched.IISum += bs.Sched.IISum
		for name, n := range bs.Sched.StrategyWins {
			if st.TotalSched.StrategyWins == nil {
				st.TotalSched.StrategyWins = make(map[string]int64)
			}
			st.TotalSched.StrategyWins[name] += n
		}
		for name, n := range bs.Sched.StageNanos {
			if st.TotalSched.StageNanos == nil {
				st.TotalSched.StageNanos = make(map[string]int64)
			}
			st.TotalSched.StageNanos[name] += n
		}
		for spec, n := range bs.Sched.Machines {
			if st.TotalSched.Machines == nil {
				st.TotalSched.Machines = make(map[string]int64)
			}
			st.TotalSched.Machines[spec] += n
		}
	}
	return st
}

func (g *Gateway) fetchBackendStats(ctx context.Context, b *backend) (*service.StatsResponse, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.url+"/stats", nil)
	if err != nil {
		return nil, err
	}
	resp, err := g.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, fmt.Errorf("status %d", resp.StatusCode)
	}
	var st service.StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}

// strictUnmarshal decodes JSON rejecting unknown fields, matching the
// backend's own decoder so the gateway never accepts a body a backend
// would bounce.
func strictUnmarshal(data []byte, dst any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	return dec.Decode(dst)
}

// relay copies a backend answer to the client byte-for-byte.
func relay(w http.ResponseWriter, status int, hdr http.Header, body []byte) {
	if ct := hdr.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	w.WriteHeader(status)
	w.Write(body)
}

// writeRawBatch emits {"results":[...]} with each entry's bytes untouched,
// terminated by the same trailing newline json.Encoder gives the backend
// paths.
func writeRawBatch(w http.ResponseWriter, results []json.RawMessage) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	var buf bytes.Buffer
	buf.WriteString(`{"results":[`)
	for i, r := range results {
		if i > 0 {
			buf.WriteByte(',')
		}
		buf.Write(r)
	}
	buf.WriteString("]}\n")
	w.Write(buf.Bytes())
}

func (g *Gateway) failRead(w http.ResponseWriter, err error) {
	code := http.StatusBadRequest
	if mbe := (*http.MaxBytesError)(nil); errors.As(err, &mbe) {
		code = http.StatusRequestEntityTooLarge
	}
	g.fail(w, code, err.Error())
}

func (g *Gateway) fail(w http.ResponseWriter, code int, msg string) {
	g.requestErrors.Add(1)
	service.WriteJSON(w, code, map[string]string{"error": msg})
}
