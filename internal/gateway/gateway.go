// Package gateway implements the vliwgate sharding proxy: a cache-aware
// router in front of N vliwd backends.
//
// Compilation is deterministic and every backend caches whole responses
// under the canonical request key (vliwq.Request.Canonical), so the win is
// not load spreading alone — it is cache affinity. The gateway hashes the
// structural key (vliwq.Request.StructuralKey — the knobs plus the loop's
// dependence-graph fingerprint; FNV-1a, then a splitmix64 finalizer so the
// routing decision is decorrelated from the backend cache's own shard
// selection) and routes each request to backends[hash % N]; identical AND
// isomorphic requests therefore always land on the backend that already
// holds the entry or its isomorphism class, and the fleet's aggregate cache
// behaves like one cache N times the size with no invalidation protocol at
// all. Concurrent /compile calls for one exact key additionally coalesce
// into a single dispatch (coalesce.go), so a failover retry joins the
// in-flight ring walk instead of stampeding a peer. The layout deliberately mirrors the paper's clustered
// machine: backends are clusters, the hash is the partitioning rule, and
// failover moves work to the ring-adjacent neighbour only — the same
// locality discipline the scheduler applies to values crossing clusters.
//
// Endpoints mirror the backend surface: POST /compile and POST /batch are
// routed (a batch is split per owning backend and reassembled in input
// order), GET /healthz probes every backend, GET /stats aggregates backend
// cache and scheduler counters with per-backend routing totals.
package gateway

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"vliwq/internal/cache"
	"vliwq/internal/metrics"
	"vliwq/internal/service"
)

// Config tunes a Gateway. Backends is required; everything else defaults.
type Config struct {
	// Backends are the vliwd base URLs, e.g. "http://10.0.0.1:8391". Order
	// matters: it fixes the hash ring, so every gateway replica must list
	// the same backends in the same order to route identically.
	Backends []string
	// Retries is how many ring-adjacent neighbours to try after the owning
	// backend fails (transport error or 5xx). 0 means 1; negative disables
	// failover. Capped at len(Backends)-1 — there is no one left after a
	// full lap.
	Retries int
	// Client issues backend requests; nil uses a client with pooled
	// per-host connections and Timeout as its overall timeout. Supplying
	// a Client is for tests — production callers should prefer Timeout so
	// they keep the tuned transport.
	Client *http.Client
	// Timeout bounds one backend request when Client is nil; 0 means 60 s.
	Timeout time.Duration
	// MaxBodyBytes caps an incoming request body; 0 means 8 MiB (the
	// gateway fronts /batch, so it allows more than one backend request).
	MaxBodyBytes int64
	// MaxBatch caps the request count of one /batch call before it is
	// split, mirroring the backend limit so the gateway answers 413 the
	// same way a single vliwd would; 0 means 1024.
	MaxBatch int

	// BreakerThreshold is how many consecutive tripping failures (transport
	// errors and 5xx other than 504) open a backend's circuit breaker; while
	// open, the ring walk skips the backend until BreakerCooldown elapses
	// and a half-open trial re-closes it. 0 means 5; negative disables the
	// breakers entirely.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker waits before admitting a
	// half-open trial; 0 means 2 s.
	BreakerCooldown time.Duration
	// ProbeTimeout bounds the /healthz and /stats backend fan-outs and the
	// background prober's probes when the incoming request carries no
	// deadline of its own; 0 means 5 s.
	ProbeTimeout time.Duration
	// BackoffBase is the first inter-hop delay of the failover ring walk;
	// each further hop doubles it with ±50% jitter, capped at BackoffMax.
	// 0 means 10 ms; negative disables backoff (hops retry immediately).
	BackoffBase time.Duration
	// BackoffMax caps the jittered inter-hop delay; 0 means 250 ms.
	BackoffMax time.Duration
	// Hedge enables hedged /compile requests: when the owner has not
	// answered within the observed p99 compile latency, a second attempt
	// starts on the ring-adjacent backend and the first authoritative
	// answer wins. Compilation is deterministic and /compile idempotent, so
	// the duplicate work is safe; /batch is never hedged (sub-batches are
	// already fanned out). Off by default — hedging trades duplicate
	// backend work for tail latency.
	Hedge bool
	// HedgeMinDelay floors the hedge delay so a cold latency window (p99 of
	// nothing = 0) cannot hedge every request instantly; 0 means 10 ms.
	HedgeMinDelay time.Duration
}

// backend is one ring slot: the base URL plus the routing counters /stats
// reports.
type backend struct {
	url       string
	breaker   *breaker
	owned     atomic.Int64 // requests this backend owns by hash
	served    atomic.Int64 // requests it actually answered (batch entries count singly)
	failovers atomic.Int64 // answers it gave for a neighbour's key
	errors    atomic.Int64 // attempts that failed (transport or 5xx)
	skipped   atomic.Int64 // attempts the open breaker short-circuited
}

// Gateway is the sharding proxy. Create one with New; it is safe for
// concurrent use.
type Gateway struct {
	cfg      Config
	backends []*backend
	client   *http.Client
	mux      *http.ServeMux
	start    time.Time

	compileRequests atomic.Int64
	batchRequests   atomic.Int64
	batchItems      atomic.Int64
	requestErrors   atomic.Int64

	deadlineExceeded atomic.Int64 // requests 504'd by their propagated deadline

	// Hedging: observed /compile latencies feed the p99 the hedge delay
	// derives from.
	latWindow *metrics.Window
	hedges    atomic.Int64 // hedged attempts launched
	hedgeWins atomic.Int64 // hedges that answered before the primary

	// Coalescing (coalesce.go): one in-flight dispatch per exact canonical
	// key; coalesced counts the callers served by another's dispatch.
	flightMu  sync.Mutex
	flights   map[string]*flight
	coalesced atomic.Int64
}

// New builds a Gateway over cfg.Backends.
func New(cfg Config) (*Gateway, error) {
	if len(cfg.Backends) == 0 {
		return nil, errors.New("gateway: no backends configured")
	}
	g := &Gateway{cfg: cfg, client: cfg.Client, start: time.Now(),
		latWindow: metrics.NewWindow(512),
		flights:   make(map[string]*flight)}
	threshold := cfg.BreakerThreshold
	if threshold == 0 {
		threshold = 5
	}
	if threshold < 0 {
		threshold = 0 // permanently-closed breakers
	}
	cooldown := cfg.BreakerCooldown
	if cooldown <= 0 {
		cooldown = 2 * time.Second
	}
	for _, u := range cfg.Backends {
		if u == "" {
			return nil, errors.New("gateway: empty backend URL")
		}
		g.backends = append(g.backends, &backend{
			url:     u,
			breaker: newBreaker(threshold, cooldown, nil),
		})
	}
	if g.client == nil {
		timeout := cfg.Timeout
		if timeout <= 0 {
			timeout = 60 * time.Second
		}
		g.client = &http.Client{
			Timeout: timeout,
			Transport: &http.Transport{
				MaxIdleConns:        64,
				MaxIdleConnsPerHost: 16,
			},
		}
	}
	g.mux = http.NewServeMux()
	g.mux.HandleFunc("/compile", g.handleCompile)
	g.mux.HandleFunc("/batch", g.handleBatch)
	g.mux.HandleFunc("/healthz", g.handleHealthz)
	g.mux.HandleFunc("/stats", g.handleStats)
	return g, nil
}

// Handler returns the root handler for an http.Server.
func (g *Gateway) Handler() http.Handler { return g.mux }

// retries resolves Config.Retries against the ring size.
func (g *Gateway) retries() int {
	r := g.cfg.Retries
	if r == 0 {
		r = 1
	}
	if r < 0 {
		r = 0
	}
	if max := len(g.backends) - 1; r > max {
		r = max
	}
	return r
}

func (g *Gateway) maxBody() int64 {
	if g.cfg.MaxBodyBytes > 0 {
		return g.cfg.MaxBodyBytes
	}
	return 8 << 20
}

func (g *Gateway) maxBatch() int {
	if g.cfg.MaxBatch > 0 {
		return g.cfg.MaxBatch
	}
	return service.DefaultMaxBatch
}

// Route reports the ring slot owning one compile request: a stable mix of
// the structural key's (vliwq.Request.StructuralKey) FNV-1a hash, modulo
// the ring size. This is the whole routing rule — no state, no
// coordination; determinism is what makes the sharded caches effective.
// The structural key normalizes the knobs AND fingerprints the loop's
// dependence graph, so every spelling of the same behaviour — an omitted
// machine vs "single:6", and since PR 7 a renamed or renumbered spelling of
// the same loop — routes to the one backend whose caches already hold the
// class (exact entries for seen spellings, the structural entry for new
// ones). Requests whose loop cannot be fingerprinted fall back to the exact
// canonical key inside StructuralKey itself, so routing stays total.
//
// The mix step matters: the backend cache selects its internal shard from
// the low bits of the same FNV-1a hash, so routing on the raw hash would
// hand each backend a residue class of keys that exercises only a fraction
// of its shards (with N backends = the shard count, exactly one). The
// splitmix64 finalizer decorrelates the two decisions.
func (g *Gateway) Route(req *service.CompileRequest) int {
	return int(mix64(cache.StringHash(req.StructuralKey())) % uint64(len(g.backends)))
}

// mix64 is the splitmix64 finalizer: a cheap bijective avalanche so every
// output bit depends on every input bit.
func mix64(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// retryable reports whether an attempt outcome should move to the
// ring-adjacent backend: transport errors and 5xx mean "this backend is
// unhealthy", and 429 means "this backend is shedding load" — in all three
// cases a neighbour may do better. 2xx and the remaining 4xx (including 422
// compile rejections) are authoritative answers — compilation is
// deterministic, so a neighbour would only repeat them.
func retryable(status int, err error) bool {
	return err != nil || status >= 500 || status == http.StatusTooManyRequests
}

// trips reports whether an attempt outcome should count against the
// backend's circuit breaker. Narrower than retryable: 429 is a backend
// alive enough to shed politely, and 504 is the request's own propagated
// deadline expiring — neither is evidence the backend is down, and opening
// the breaker on them would amplify overload into outage.
func trips(status int, err error) bool {
	return err != nil || (status >= 500 && status != http.StatusGatewayTimeout)
}

// backoff returns the jittered exponential delay before retry attempt n
// (n=1 is the first retry): base<<(n-1), jittered uniformly in [0.5d,
// 1.5d), capped at max. Jitter keeps a fleet of gateways that lost the same
// backend from re-converging on the survivors in lockstep.
func (g *Gateway) backoff(n int) time.Duration {
	base := g.cfg.BackoffBase
	if base < 0 {
		return 0
	}
	if base == 0 {
		base = 10 * time.Millisecond
	}
	max := g.cfg.BackoffMax
	if max <= 0 {
		max = 250 * time.Millisecond
	}
	d := base << (n - 1)
	if d > max || d <= 0 { // d <= 0 guards shift overflow
		d = max
	}
	d = d/2 + time.Duration(rand.Int63n(int64(d)))
	if d > max {
		d = max
	}
	return d
}

// sleep waits d or until ctx is done, reporting whether the wait completed.
func sleep(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// forward POSTs body to one backend path and returns the raw response.
// When ctx carries a deadline, the time actually left is propagated as the
// DeadlineHeader budget — tightened at every hop, so a backend never works
// past the moment the client stops listening.
func (g *Gateway) forward(ctx context.Context, b *backend, path string, body []byte) (int, http.Header, []byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, b.url+path, bytes.NewReader(body))
	if err != nil {
		return 0, nil, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if dl, ok := ctx.Deadline(); ok {
		if remaining := time.Until(dl); remaining > 0 {
			req.Header.Set(service.DeadlineHeader, remaining.String())
		}
	}
	resp, err := g.client.Do(req)
	if err != nil {
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, nil, err
	}
	return resp.StatusCode, resp.Header, data, nil
}

// dispatch sends body to the owner's slot, walking the ring on retryable
// failures, and returns the first authoritative answer; when every attempt
// fails it returns the last error. weight is how many compile requests the
// body represents (1 for /compile, the sub-batch size for /batch) so the
// owned/served/failover counters measure work, not call counts.
func (g *Gateway) dispatch(ctx context.Context, owner int, path string, body []byte, weight int) (int, http.Header, []byte, error) {
	g.backends[owner].owned.Add(int64(weight))
	return g.ringWalk(ctx, owner, 0, path, body, weight)
}

// ringWalk tries the slots owner+startHop .. owner+retries in order,
// skipping backends whose circuit breaker is open, with jittered
// exponential backoff between attempts. Every attempt outcome feeds the
// attempted backend's breaker (trips classification); retryable outcomes
// move on, authoritative ones return. When every eligible slot was
// breaker-skipped, the walk forces one attempt at the owner anyway — with
// the whole ring presumed down, the forced attempt is the only signal
// source left, and its outcome is what eventually re-closes a breaker.
func (g *Gateway) ringWalk(ctx context.Context, owner, startHop int, path string, body []byte, weight int) (int, http.Header, []byte, error) {
	var lastErr error
	attempts := 0
	for hop := startHop; hop <= g.retries(); hop++ {
		slot := (owner + hop) % len(g.backends)
		b := g.backends[slot]
		if !b.breaker.allow() {
			b.skipped.Add(1)
			lastErr = fmt.Errorf("backend %s: circuit breaker open", b.url)
			continue
		}
		if attempts > 0 && !sleep(ctx, g.backoff(attempts)) {
			return 0, nil, nil, ctx.Err()
		}
		attempts++
		status, hdr, data, err := g.forward(ctx, b, path, body)
		// A cancelled client is not a sick backend: stop without feeding
		// the breaker, polluting the error counters or burning a doomed
		// hop.
		if ctx.Err() != nil {
			return 0, nil, nil, ctx.Err()
		}
		b.breaker.report(!trips(status, err))
		if retryable(status, err) {
			b.errors.Add(1)
			if err == nil {
				err = fmt.Errorf("backend %s: status %d", b.url, status)
			}
			lastErr = err
			continue
		}
		b.served.Add(int64(weight))
		if hop > 0 {
			b.failovers.Add(int64(weight))
		}
		return status, hdr, data, nil
	}
	if attempts == 0 {
		b := g.backends[owner]
		status, hdr, data, err := g.forward(ctx, b, path, body)
		if ctx.Err() != nil {
			return 0, nil, nil, ctx.Err()
		}
		b.breaker.report(!trips(status, err))
		if !retryable(status, err) {
			b.served.Add(int64(weight))
			return status, hdr, data, nil
		}
		b.errors.Add(1)
		if err == nil {
			err = fmt.Errorf("backend %s: status %d", b.url, status)
		}
		lastErr = err
	}
	return 0, nil, nil, fmt.Errorf("all %d backend attempts failed, last: %w", g.retries()+1, lastErr)
}

// dispatchHedged is dispatch for idempotent /compile under Config.Hedge:
// the primary walk starts at the owner, and if it has not answered within
// the hedge delay (observed p99 compile latency, floored), a second walk
// starts one slot further along the ring. First authoritative answer wins;
// if one walk fails, the other's answer is awaited.
func (g *Gateway) dispatchHedged(ctx context.Context, owner int, body []byte, delay time.Duration) (int, http.Header, []byte, error) {
	g.backends[owner].owned.Add(1)

	type answer struct {
		status int
		hdr    http.Header
		data   []byte
		err    error
		hedged bool
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	ch := make(chan answer, 2)
	walk := func(startHop int, hedged bool) {
		status, hdr, data, err := g.ringWalk(ctx, owner, startHop, "/compile", body, 1)
		ch <- answer{status, hdr, data, err, hedged}
	}
	go walk(0, false)

	launched := 1
	timer := time.NewTimer(delay)
	defer timer.Stop()
	timerC := timer.C
	var firstErr error
	for {
		select {
		case <-timerC:
			g.hedges.Add(1)
			launched++
			go walk(1, true)
			timerC = nil // a nil chan never fires: at most one hedge
		case a := <-ch:
			if a.err == nil {
				if a.hedged {
					g.hedgeWins.Add(1)
				}
				return a.status, a.hdr, a.data, nil
			}
			if firstErr == nil {
				firstErr = a.err
			}
			launched--
			if launched == 0 {
				return 0, nil, nil, firstErr
			}
		}
	}
}

// hedgeDelay resolves the current hedge trigger: the p99 of observed
// /compile latencies, floored at HedgeMinDelay. 0 means hedging is off.
func (g *Gateway) hedgeDelay() time.Duration {
	if !g.cfg.Hedge || len(g.backends) < 2 {
		return 0
	}
	d := time.Duration(g.latWindow.Quantile(0.99))
	min := g.cfg.HedgeMinDelay
	if min <= 0 {
		min = 10 * time.Millisecond
	}
	if d < min {
		d = min
	}
	return d
}

// requestContext applies the client's propagated DeadlineHeader budget, if
// any, as the request context's deadline; forward() re-propagates whatever
// is left of it to each backend hop. A malformed header is answered 400.
func (g *Gateway) requestContext(w http.ResponseWriter, r *http.Request) (context.Context, context.CancelFunc, bool) {
	d, ok, err := service.ParseDeadline(r.Header)
	if err != nil {
		g.fail(w, http.StatusBadRequest, err.Error())
		return nil, nil, false
	}
	if !ok {
		return r.Context(), func() {}, true
	}
	ctx, cancel := context.WithTimeout(r.Context(), d)
	return ctx, cancel, true
}

// failDispatch maps a dispatch error onto its status: 504 when the
// request's own deadline expired mid-flight, 502 for exhausted ring walks.
func (g *Gateway) failDispatch(w http.ResponseWriter, err error) {
	if errors.Is(err, context.DeadlineExceeded) {
		g.deadlineExceeded.Add(1)
		g.fail(w, http.StatusGatewayTimeout, err.Error())
		return
	}
	g.fail(w, http.StatusBadGateway, err.Error())
}

// handleCompile routes one request by its canonical key and relays the
// owning backend's answer verbatim — status, content type and body bytes —
// so a response through the gateway is indistinguishable from one straight
// off the backend.
func (g *Gateway) handleCompile(w http.ResponseWriter, r *http.Request) {
	g.compileRequests.Add(1)
	if r.Method != http.MethodPost {
		g.fail(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	ctx, cancel, ok := g.requestContext(w, r)
	if !ok {
		return
	}
	defer cancel()
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, g.maxBody()))
	if err != nil {
		g.failRead(w, err)
		return
	}
	var req service.CompileRequest
	if err := strictUnmarshal(body, &req); err != nil {
		g.fail(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	owner := g.Route(&req)
	t0 := time.Now()
	// One in-flight dispatch per exact key: concurrent identical requests —
	// and retries racing a slow owner's failover — join the leader's ring
	// walk instead of launching their own (see coalesce.go).
	status, hdr, data, err, joined := g.coalesce(ctx, req.Canonical(), func() (int, http.Header, []byte, error) {
		if d := g.hedgeDelay(); d > 0 {
			return g.dispatchHedged(ctx, owner, body, d)
		}
		return g.dispatch(ctx, owner, "/compile", body, 1)
	})
	if joined {
		g.coalesced.Add(1)
	}
	if err != nil {
		g.failDispatch(w, err)
		return
	}
	if status == http.StatusOK {
		g.latWindow.Add(float64(time.Since(t0).Nanoseconds()))
	}
	relay(w, status, hdr, data)
}

// handleBatch splits a batch by owning backend, forwards the per-backend
// sub-batches concurrently, and reassembles the entries in input order.
// Entries whose sub-batch exhausted its ring walk carry the transport
// error; everything else is the backend's JSON verbatim.
func (g *Gateway) handleBatch(w http.ResponseWriter, r *http.Request) {
	g.batchRequests.Add(1)
	if r.Method != http.MethodPost {
		g.fail(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	ctx, cancel, ok := g.requestContext(w, r)
	if !ok {
		return
	}
	defer cancel()
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, g.maxBody()))
	if err != nil {
		g.failRead(w, err)
		return
	}
	var req service.BatchRequest
	if err := strictUnmarshal(body, &req); err != nil {
		g.fail(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	if len(req.Requests) > g.maxBatch() {
		g.fail(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("batch of %d exceeds the %d-request limit", len(req.Requests), g.maxBatch()))
		return
	}
	g.batchItems.Add(int64(len(req.Requests)))

	// Group item indices by owning slot, preserving input order per group.
	groups := make(map[int][]int)
	for i := range req.Requests {
		owner := g.Route(&req.Requests[i])
		groups[owner] = append(groups[owner], i)
	}
	results := make([]json.RawMessage, len(req.Requests))
	var wg sync.WaitGroup
	for owner, idxs := range groups {
		wg.Add(1)
		go func(owner int, idxs []int) {
			defer wg.Done()
			sub := service.BatchRequest{Requests: make([]service.CompileRequest, len(idxs))}
			for j, i := range idxs {
				sub.Requests[j] = req.Requests[i]
			}
			subBody, err := json.Marshal(sub)
			if err != nil {
				g.fillErrors(results, idxs, err.Error())
				return
			}
			status, _, data, err := g.dispatch(ctx, owner, "/batch", subBody, len(idxs))
			if err != nil {
				g.fillErrors(results, idxs, err.Error())
				return
			}
			var br rawBatchResponse
			if status != http.StatusOK || json.Unmarshal(data, &br) != nil || len(br.Results) != len(idxs) {
				g.fillErrors(results, idxs, fmt.Sprintf("backend /batch answered status %d with an unusable body", status))
				return
			}
			for j, i := range idxs {
				results[i] = br.Results[j]
			}
		}(owner, idxs)
	}
	wg.Wait()
	writeRawBatch(w, results)
}

// rawBatchResponse decodes a backend batch answer without re-interpreting
// the entries, so the gateway relays each entry's bytes untouched.
type rawBatchResponse struct {
	Results []json.RawMessage `json:"results"`
}

// fillErrors stamps a batch error entry onto every index of a failed group.
func (g *Gateway) fillErrors(results []json.RawMessage, idxs []int, msg string) {
	entry, _ := json.Marshal(service.BatchEntry{Error: msg})
	for _, i := range idxs {
		results[i] = entry
	}
}

// BackendHealth is one backend's probe result inside a /healthz answer.
type BackendHealth struct {
	URL     string `json:"url"`
	Healthy bool   `json:"healthy"`
	Error   string `json:"error,omitempty"`
}

// HealthResponse is the JSON body of GET /healthz: "ok" while at least one
// backend answers its own /healthz, "degraded" when some do not (the ring
// still serves via failover), and HTTP 503 when none do.
type HealthResponse struct {
	Status   string          `json:"status"`
	Backends []BackendHealth `json:"backends"`
}

// probeTimeout resolves the fan-out/prober bound Config.ProbeTimeout.
func (g *Gateway) probeTimeout() time.Duration {
	if g.cfg.ProbeTimeout > 0 {
		return g.cfg.ProbeTimeout
	}
	return 5 * time.Second
}

// fanoutContext bounds a backend fan-out (healthz probes, stats fetches):
// when the caller's context already carries a deadline — its own, or one
// propagated via DeadlineHeader — that deadline governs; otherwise the
// configurable ProbeTimeout floor applies, so a fan-out never hangs on a
// wedged backend just because the client imposed no budget.
func (g *Gateway) fanoutContext(ctx context.Context) (context.Context, context.CancelFunc) {
	if _, ok := ctx.Deadline(); ok {
		return context.WithCancel(ctx)
	}
	return context.WithTimeout(ctx, g.probeTimeout())
}

func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	rctx, rcancel, ok := g.requestContext(w, r)
	if !ok {
		return
	}
	defer rcancel()
	hr := HealthResponse{Backends: make([]BackendHealth, len(g.backends))}
	ctx, cancel := g.fanoutContext(rctx)
	defer cancel()
	var wg sync.WaitGroup
	for i, b := range g.backends {
		wg.Add(1)
		go func(i int, b *backend) {
			defer wg.Done()
			hr.Backends[i] = g.probe(ctx, b)
		}(i, b)
	}
	wg.Wait()
	healthy := 0
	for _, h := range hr.Backends {
		if h.Healthy {
			healthy++
		}
	}
	status := http.StatusOK
	switch {
	case healthy == len(hr.Backends):
		hr.Status = "ok"
	case healthy > 0:
		hr.Status = "degraded"
	default:
		hr.Status = "down"
		status = http.StatusServiceUnavailable
	}
	service.WriteJSON(w, status, hr)
}

func (g *Gateway) probe(ctx context.Context, b *backend) BackendHealth {
	h := BackendHealth{URL: b.url}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.url+"/healthz", nil)
	if err != nil {
		h.Error = err.Error()
		return h
	}
	resp, err := g.client.Do(req)
	if err != nil {
		h.Error = err.Error()
		return h
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		h.Error = fmt.Sprintf("status %d", resp.StatusCode)
		return h
	}
	h.Healthy = true
	return h
}

// StartProber launches the background breaker prober and returns its stop
// function. Every interval it probes the /healthz of each backend whose
// breaker is NOT closed — closed breakers are already fed by in-band
// traffic — and reports the outcome, so an open circuit re-closes as soon
// as the backend recovers even on an idle gateway, instead of waiting for
// a client request to volunteer as the half-open trial. Probes go through
// breaker.allow(), so the prober respects the cooldown and the
// single-trial discipline like any other caller.
func (g *Gateway) StartProber(interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = time.Second
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
			}
			for _, b := range g.backends {
				if b.breaker.state() == breakerClosed {
					continue
				}
				if !b.breaker.allow() {
					continue
				}
				ctx, cancel := context.WithTimeout(context.Background(), g.probeTimeout())
				h := g.probe(ctx, b)
				cancel()
				b.breaker.report(h.Healthy)
			}
		}
	}()
	return func() {
		close(done)
		wg.Wait()
	}
}

// BackendStats is one ring slot inside a /stats answer: the gateway's own
// routing counters plus the backend's /stats body when reachable.
type BackendStats struct {
	URL       string `json:"url"`
	Healthy   bool   `json:"healthy"`
	Owned     int64  `json:"owned"`     // requests hashed to this slot
	Served    int64  `json:"served"`    // requests it answered
	Failovers int64  `json:"failovers"` // requests answered for a neighbour
	Errors    int64  `json:"errors"`    // failed attempts against it
	Skipped   int64  `json:"skipped"`   // attempts the open breaker short-circuited

	// Breaker is the circuit breaker's current state ("closed", "open",
	// "half-open") with its lifetime transition counters — the signal the
	// chaos e2e asserts on: an outage must show opens >= 1 and a final
	// state of "closed" after recovery.
	Breaker       string `json:"breaker"`
	BreakerOpens  int64  `json:"breaker_opens"`
	BreakerCloses int64  `json:"breaker_closes"`

	Cache cache.Stats `json:"cache"` // from the backend, zero when unreachable
	// Structural is the backend's isomorphism-class cache layer: hits
	// served by remap, compiles coalesced across renamed spellings, and
	// renumbered spellings that compiled fresh.
	Structural service.StructuralStats `json:"structural"`
	// Optimal is the backend's certified-tier outcomes: proofs, unproved
	// incumbents, and branch-and-bound nodes pruned.
	Optimal service.OptimalStats `json:"optimal"`
	Sched   service.SchedStats   `json:"sched"`
}

// StatsResponse is the JSON body of GET /stats: per-backend detail plus
// fleet totals (cache counters summed across backends).
type StatsResponse struct {
	UptimeSeconds   float64 `json:"uptime_seconds"`
	BackendCount    int     `json:"backend_count"`
	CompileRequests int64   `json:"compile_requests"`
	BatchRequests   int64   `json:"batch_requests"`
	BatchItems      int64   `json:"batch_items"`
	RequestErrors   int64   `json:"request_errors"`
	// DeadlineExceeded counts requests 504'd by their propagated deadline.
	DeadlineExceeded int64 `json:"deadline_exceeded"`
	// Hedges counts hedged /compile attempts launched; HedgeWins how many
	// answered before their primary.
	Hedges    int64 `json:"hedges"`
	HedgeWins int64 `json:"hedge_wins"`
	// Coalesced counts /compile calls served by joining another caller's
	// in-flight dispatch for the same exact key — requests that cost the
	// fleet no ring walk and no backend call at all.
	Coalesced  int64          `json:"coalesced"`
	Backends   []BackendStats `json:"backends"`
	TotalCache cache.Stats    `json:"total_cache"`
	// TotalStructural sums the backends' structural layers; Enabled is true
	// when any backend has the layer on.
	TotalStructural service.StructuralStats `json:"total_structural"`
	// TotalOptimal sums the backends' certified-tier counters.
	TotalOptimal service.OptimalStats `json:"total_optimal"`
	TotalSched   service.SchedStats   `json:"total_sched"`
}

func (g *Gateway) handleStats(w http.ResponseWriter, r *http.Request) {
	ctx, cancel, ok := g.requestContext(w, r)
	if !ok {
		return
	}
	defer cancel()
	service.WriteJSON(w, http.StatusOK, g.Stats(ctx))
}

// Stats aggregates the fleet: each backend's /stats is fetched concurrently
// and summed into the totals; unreachable backends report their routing
// counters with Healthy=false and zero cache numbers.
func (g *Gateway) Stats(ctx context.Context) StatsResponse {
	st := StatsResponse{
		UptimeSeconds:    time.Since(g.start).Seconds(),
		BackendCount:     len(g.backends),
		CompileRequests:  g.compileRequests.Load(),
		BatchRequests:    g.batchRequests.Load(),
		BatchItems:       g.batchItems.Load(),
		RequestErrors:    g.requestErrors.Load(),
		DeadlineExceeded: g.deadlineExceeded.Load(),
		Hedges:           g.hedges.Load(),
		HedgeWins:        g.hedgeWins.Load(),
		Coalesced:        g.coalesced.Load(),
		Backends:         make([]BackendStats, len(g.backends)),
	}
	ctx, cancel := g.fanoutContext(ctx)
	defer cancel()
	var wg sync.WaitGroup
	for i, b := range g.backends {
		wg.Add(1)
		go func(i int, b *backend) {
			defer wg.Done()
			bs := BackendStats{
				URL:           b.url,
				Owned:         b.owned.Load(),
				Served:        b.served.Load(),
				Failovers:     b.failovers.Load(),
				Errors:        b.errors.Load(),
				Skipped:       b.skipped.Load(),
				Breaker:       b.breaker.state().String(),
				BreakerOpens:  b.breaker.opens.Load(),
				BreakerCloses: b.breaker.closes.Load(),
			}
			if remote, err := g.fetchBackendStats(ctx, b); err == nil {
				bs.Healthy = true
				bs.Cache = remote.Cache
				bs.Structural = remote.Structural
				bs.Optimal = remote.Optimal
				bs.Sched = remote.Sched
			}
			st.Backends[i] = bs
		}(i, b)
	}
	wg.Wait()
	for _, bs := range st.Backends {
		st.TotalCache.Hits += bs.Cache.Hits
		st.TotalCache.Misses += bs.Cache.Misses
		st.TotalCache.Evictions += bs.Cache.Evictions
		st.TotalCache.Entries += bs.Cache.Entries
		st.TotalCache.Coalesced += bs.Cache.Coalesced
		st.TotalStructural.Enabled = st.TotalStructural.Enabled || bs.Structural.Enabled
		st.TotalStructural.Hits += bs.Structural.Hits
		st.TotalStructural.Coalesced += bs.Structural.Coalesced
		st.TotalStructural.Reordered += bs.Structural.Reordered
		st.TotalStructural.Renumbered += bs.Structural.Renumbered
		st.TotalStructural.Entries += bs.Structural.Entries
		st.TotalOptimal.Proved += bs.Optimal.Proved
		st.TotalOptimal.Incumbent += bs.Optimal.Incumbent
		st.TotalOptimal.PrunedNodes += bs.Optimal.PrunedNodes
		st.TotalSched.Compiles += bs.Sched.Compiles
		st.TotalSched.Errors += bs.Sched.Errors
		st.TotalSched.OpsScheduled += bs.Sched.OpsScheduled
		st.TotalSched.IISum += bs.Sched.IISum
		for name, n := range bs.Sched.StrategyWins {
			if st.TotalSched.StrategyWins == nil {
				st.TotalSched.StrategyWins = make(map[string]int64)
			}
			st.TotalSched.StrategyWins[name] += n
		}
		for name, n := range bs.Sched.StageNanos {
			if st.TotalSched.StageNanos == nil {
				st.TotalSched.StageNanos = make(map[string]int64)
			}
			st.TotalSched.StageNanos[name] += n
		}
		for spec, n := range bs.Sched.Machines {
			if st.TotalSched.Machines == nil {
				st.TotalSched.Machines = make(map[string]int64)
			}
			st.TotalSched.Machines[spec] += n
		}
	}
	return st
}

func (g *Gateway) fetchBackendStats(ctx context.Context, b *backend) (*service.StatsResponse, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.url+"/stats", nil)
	if err != nil {
		return nil, err
	}
	resp, err := g.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, fmt.Errorf("status %d", resp.StatusCode)
	}
	var st service.StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}

// strictUnmarshal decodes JSON rejecting unknown fields, matching the
// backend's own decoder so the gateway never accepts a body a backend
// would bounce.
func strictUnmarshal(data []byte, dst any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	return dec.Decode(dst)
}

// relay copies a backend answer to the client byte-for-byte.
func relay(w http.ResponseWriter, status int, hdr http.Header, body []byte) {
	if ct := hdr.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	w.WriteHeader(status)
	w.Write(body)
}

// writeRawBatch emits {"results":[...]} with each entry's bytes untouched,
// terminated by the same trailing newline json.Encoder gives the backend
// paths.
func writeRawBatch(w http.ResponseWriter, results []json.RawMessage) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	var buf bytes.Buffer
	buf.WriteString(`{"results":[`)
	for i, r := range results {
		if i > 0 {
			buf.WriteByte(',')
		}
		buf.Write(r)
	}
	buf.WriteString("]}\n")
	w.Write(buf.Bytes())
}

func (g *Gateway) failRead(w http.ResponseWriter, err error) {
	code := http.StatusBadRequest
	if mbe := (*http.MaxBytesError)(nil); errors.As(err, &mbe) {
		code = http.StatusRequestEntityTooLarge
	}
	g.fail(w, code, err.Error())
}

func (g *Gateway) fail(w http.ResponseWriter, code int, msg string) {
	g.requestErrors.Add(1)
	service.WriteJSON(w, code, map[string]string{"error": msg})
}
