package gateway

import (
	"context"
	"net/http"
	"testing"

	"vliwq"
	"vliwq/internal/corpus"
	"vliwq/internal/service"
)

// TestGatewayEffortAffinityAndStrategyWins: requests that differ only in
// effort are distinct cache keys, so replaying a corpus at one effort
// keeps the fleet invariant "misses == distinct requests"; and the
// gateway's /stats must aggregate the backends' per-strategy win counters.
func TestGatewayEffortAffinityAndStrategyWins(t *testing.T) {
	const n = 12
	loops := corpus.Generate(corpus.Params{Seed: corpus.DefaultSeed, N: n})
	gw, ts, _ := fleet(t, 2, Config{})

	reqs := make([]service.CompileRequest, n)
	for i, l := range loops {
		reqs[i] = service.CompileRequest{
			Loop:       vliwq.FormatLoop(l),
			Machine:    "clustered:4",
			Effort:     "exhaustive",
			SkipVerify: true,
		}
	}
	for pass := 0; pass < 2; pass++ {
		for i := range reqs {
			resp, body := postJSON(t, ts.Client(), ts.URL+"/compile", reqs[i])
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("pass %d loop %d: status %d: %s", pass, i, resp.StatusCode, body)
			}
		}
	}
	st := gw.Stats(context.Background())
	if st.TotalCache.Misses != int64(n) {
		t.Fatalf("fleet misses = %d, want exactly %d distinct requests", st.TotalCache.Misses, n)
	}
	var wins int64
	for _, c := range st.TotalSched.StrategyWins {
		wins += c
	}
	if wins != int64(n) {
		t.Fatalf("aggregated strategy wins %v sum to %d, want %d", st.TotalSched.StrategyWins, wins, n)
	}
	// The new per-machine and per-stage observability aggregates too:
	// every compile targeted clustered:4, and the fleet-summed stage
	// clocks must cover the scheduling work.
	if st.TotalSched.Machines["clustered:4"] != int64(n) {
		t.Fatalf("aggregated machine counters %v, want clustered:4=%d", st.TotalSched.Machines, n)
	}
	if st.TotalSched.StageNanos["schedule"] <= 0 {
		t.Fatalf("aggregated stage nanos missing schedule time: %v", st.TotalSched.StageNanos)
	}

	// The same corpus at a different effort is a different request set:
	// routing still shards it, and the fleet compiles it once more —
	// distinct keys, not duplicated compiles.
	for i := range reqs {
		reqs[i].Effort = "fast"
		if resp, body := postJSON(t, ts.Client(), ts.URL+"/compile", reqs[i]); resp.StatusCode != http.StatusOK {
			t.Fatalf("fast loop %d: status %d: %s", i, resp.StatusCode, body)
		}
	}
	st = gw.Stats(context.Background())
	if st.TotalCache.Misses != int64(2*n) {
		t.Fatalf("fleet misses = %d after the fast replay, want %d", st.TotalCache.Misses, 2*n)
	}
	// An unknown effort is a client error the owning backend answers
	// authoritatively — 400 straight through the gateway, no failover.
	bad := reqs[0]
	bad.Effort = "sluggish"
	resp, body := postJSON(t, ts.Client(), ts.URL+"/compile", bad)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown effort through the gateway: status %d: %s", resp.StatusCode, body)
	}
}
