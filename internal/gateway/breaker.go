package gateway

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// breakerState is a circuit breaker's position: closed (traffic flows),
// open (the backend is presumed down; attempts are skipped until the
// cooldown elapses), or half-open (one trial request is probing whether the
// backend recovered).
type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerClosed:
		return "closed"
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	}
	return fmt.Sprintf("breakerState(%d)", int(s))
}

// breaker is a per-backend circuit breaker fed by two signal sources: the
// in-band outcome of every dispatch attempt, and the background prober's
// periodic /healthz results. threshold consecutive tripping failures open
// it; after cooldown the next allow() claims a single half-open trial whose
// outcome either re-closes or re-opens the circuit.
//
// What counts as a tripping failure is the caller's decision (see
// trips()): transport errors and most 5xx do; 429 (alive but shedding) and
// 504 (the request's own deadline, not backend sickness) do not.
//
// A nil breaker, or one with threshold <= 0, is permanently closed — the
// disabled mode Config.BreakerThreshold < 0 selects.
type breaker struct {
	threshold int           // consecutive tripping failures that open
	cooldown  time.Duration // open -> half-open eligibility delay
	now       func() time.Time

	mu       sync.Mutex
	st       breakerState
	fails    int       // consecutive failures while closed
	openedAt time.Time // when the circuit last opened
	trial    bool      // a half-open trial is in flight
	trialAt  time.Time // when it was claimed

	opens  atomic.Int64 // closed/half-open -> open transitions
	closes atomic.Int64 // half-open -> closed transitions
}

func newBreaker(threshold int, cooldown time.Duration, now func() time.Time) *breaker {
	if now == nil {
		now = time.Now
	}
	return &breaker{threshold: threshold, cooldown: cooldown, now: now}
}

// allow reports whether an attempt against the backend may proceed. While
// open it returns false until the cooldown elapses, then admits exactly one
// caller as the half-open trial. A trial whose outcome never arrives (the
// prober died mid-probe, a request was abandoned before report) releases
// the slot after one cooldown period, so a lost trial cannot wedge the
// breaker half-open forever.
func (b *breaker) allow() bool {
	if b == nil || b.threshold <= 0 {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.now()
	switch b.st {
	case breakerClosed:
		return true
	case breakerOpen:
		if now.Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.st = breakerHalfOpen
		b.trial = true
		b.trialAt = now
		return true
	default: // half-open
		if b.trial && now.Sub(b.trialAt) < b.cooldown {
			return false
		}
		b.trial = true
		b.trialAt = now
		return true
	}
}

// report feeds one attempt outcome. In the closed state failures accumulate
// toward the threshold and any success resets the run; in half-open the
// trial's outcome decides re-close vs re-open. Outcomes arriving while open
// are stragglers from before the circuit tripped and teach nothing.
func (b *breaker) report(ok bool) {
	if b == nil || b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.st {
	case breakerClosed:
		if ok {
			b.fails = 0
			return
		}
		b.fails++
		if b.fails >= b.threshold {
			b.st = breakerOpen
			b.openedAt = b.now()
			b.opens.Add(1)
		}
	case breakerHalfOpen:
		b.trial = false
		if ok {
			b.st = breakerClosed
			b.fails = 0
			b.closes.Add(1)
		} else {
			b.st = breakerOpen
			b.openedAt = b.now()
			b.opens.Add(1)
		}
	case breakerOpen:
	}
}

// state snapshots the current position without advancing transitions.
func (b *breaker) state() breakerState {
	if b == nil || b.threshold <= 0 {
		return breakerClosed
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.st
}
