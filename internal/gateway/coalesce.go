package gateway

import (
	"context"
	"errors"
	"net/http"
)

// Request coalescing: N concurrent /compile requests for one exact
// canonical key collapse into a single dispatch — one ring walk, one
// backend HTTP request, one compile — and every caller relays the same
// answer. This is what stops a failover stampede: when the owner is slow or
// down, the first caller's ring walk (with its backoff and breaker dance)
// is the ONLY one in flight; concurrent callers for the key join it instead
// of each marching the ring and piling onto the surviving peer.
//
// The key is the EXACT canonical key, not the structural one: isomorphic
// but differently-named requests need differently-named response bytes, so
// they must each reach a backend (the same backend — Route hashes the
// structural key — where the service's structural cache collapses the
// actual compile).

// flight is one in-flight dispatch and its outcome, shared by every
// coalesced caller.
type flight struct {
	done   chan struct{}
	status int
	hdr    http.Header
	data   []byte
	err    error
}

// isCtxErr reports a context-cancellation error — the one outcome class
// that belongs to the leader's own deadline rather than to the request key.
func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// shareable reports whether a flight's outcome is authoritative for callers
// other than its leader. Context errors and 504s are the leader's own
// deadline expiring; a joiner with a live deadline must not inherit them.
func (f *flight) shareable() bool {
	return !isCtxErr(f.err) && f.status != http.StatusGatewayTimeout
}

// coalesce runs do() exactly once per key across concurrent callers: the
// first caller (the leader) dispatches, the rest block on its outcome.
// joined reports whether this caller was served by another's dispatch — the
// gateway's coalesced counter and, because joiners skip dispatch entirely,
// the owned/served routing counters both see exactly one request per
// flight.
//
// Leader handoff: when a leader's outcome is not shareable (its own
// deadline fired mid-flight), each waiting joiner loops and races to become
// the next leader rather than inheriting a cancellation that was never
// theirs. A joiner whose own context dies while waiting returns its own
// context error.
func (g *Gateway) coalesce(ctx context.Context, key string, do func() (int, http.Header, []byte, error)) (status int, hdr http.Header, data []byte, err error, joined bool) {
	for {
		g.flightMu.Lock()
		if f, ok := g.flights[key]; ok {
			g.flightMu.Unlock()
			select {
			case <-f.done:
			case <-ctx.Done():
				return 0, nil, nil, ctx.Err(), true
			}
			if !f.shareable() {
				continue // hand off: race to lead the retry
			}
			return f.status, f.hdr, f.data, f.err, true
		}
		f := &flight{done: make(chan struct{})}
		g.flights[key] = f
		g.flightMu.Unlock()

		f.status, f.hdr, f.data, f.err = do()
		g.flightMu.Lock()
		delete(g.flights, key)
		g.flightMu.Unlock()
		close(f.done)
		return f.status, f.hdr, f.data, f.err, false
	}
}
