package gateway

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"vliwq"
	"vliwq/internal/corpus"
	"vliwq/internal/faults"
	"vliwq/internal/service"
)

// TestRetryableAndTripsClassification is the satellite table: every status
// class and error shape, against both classifiers. retryable decides
// whether the ring walk moves on; trips decides whether the breaker learns
// a failure. The rows where they disagree are the interesting ones: 429
// (retry elsewhere, but the backend is alive) and 504 (retry elsewhere,
// but the deadline was the request's, not the backend's).
func TestRetryableAndTripsClassification(t *testing.T) {
	tests := []struct {
		name      string
		status    int
		err       error
		retryable bool
		trips     bool
	}{
		{"200 ok", http.StatusOK, nil, false, false},
		{"204 no content", http.StatusNoContent, nil, false, false},
		{"301 redirect", http.StatusMovedPermanently, nil, false, false},
		{"400 bad request", http.StatusBadRequest, nil, false, false},
		{"404 not found", http.StatusNotFound, nil, false, false},
		{"413 too large", http.StatusRequestEntityTooLarge, nil, false, false},
		{"422 compile rejection", http.StatusUnprocessableEntity, nil, false, false},
		{"429 shed", http.StatusTooManyRequests, nil, true, false},
		{"500 internal", http.StatusInternalServerError, nil, true, true},
		{"502 bad gateway", http.StatusBadGateway, nil, true, true},
		{"503 unavailable", http.StatusServiceUnavailable, nil, true, true},
		{"504 deadline", http.StatusGatewayTimeout, nil, true, false},
		{"599 nonstandard 5xx", 599, nil, true, true},
		{"transport error", 0, errors.New("connection refused"), true, true},
		{"transport error with status", http.StatusOK, errors.New("truncated body"), true, true},
		{"context canceled", 0, context.Canceled, true, true},
		{"context deadline", 0, context.DeadlineExceeded, true, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := retryable(tt.status, tt.err); got != tt.retryable {
				t.Errorf("retryable(%d, %v) = %v, want %v", tt.status, tt.err, got, tt.retryable)
			}
			if got := trips(tt.status, tt.err); got != tt.trips {
				t.Errorf("trips(%d, %v) = %v, want %v", tt.status, tt.err, got, tt.trips)
			}
		})
	}
}

// TestBreakerStateMachine drives the breaker with a fake clock through the
// full closed -> open -> half-open -> closed cycle, including the failed
// trial (re-open) and lost-trial self-healing paths.
func TestBreakerStateMachine(t *testing.T) {
	now := time.Unix(0, 0)
	clock := func() time.Time { return now }
	b := newBreaker(3, time.Second, clock)

	if b.state() != breakerClosed || !b.allow() {
		t.Fatal("new breaker not closed/allowing")
	}
	// A success resets the consecutive-failure run.
	b.report(false)
	b.report(false)
	b.report(true)
	b.report(false)
	b.report(false)
	if b.state() != breakerClosed {
		t.Fatal("breaker opened before threshold consecutive failures")
	}
	b.report(false)
	if b.state() != breakerOpen || b.opens.Load() != 1 {
		t.Fatalf("3 consecutive failures left state %v (opens=%d)", b.state(), b.opens.Load())
	}
	if b.allow() {
		t.Fatal("open breaker allowed an attempt inside the cooldown")
	}

	// Cooldown elapses: exactly one caller becomes the half-open trial.
	now = now.Add(time.Second)
	if !b.allow() {
		t.Fatal("breaker refused the half-open trial after cooldown")
	}
	if b.state() != breakerHalfOpen {
		t.Fatalf("state %v after trial claim, want half-open", b.state())
	}
	if b.allow() {
		t.Fatal("second caller admitted while the trial is in flight")
	}
	// Failed trial: straight back to open, cooldown restarts.
	b.report(false)
	if b.state() != breakerOpen || b.opens.Load() != 2 {
		t.Fatalf("failed trial left state %v (opens=%d)", b.state(), b.opens.Load())
	}

	// Next trial succeeds: re-closed.
	now = now.Add(time.Second)
	if !b.allow() {
		t.Fatal("second trial refused")
	}
	b.report(true)
	if b.state() != breakerClosed || b.closes.Load() != 1 {
		t.Fatalf("successful trial left state %v (closes=%d)", b.state(), b.closes.Load())
	}

	// Lost-trial self-healing: a claimed trial whose outcome never arrives
	// releases the slot after one cooldown, instead of wedging half-open.
	for i := 0; i < 3; i++ {
		b.report(false)
	}
	now = now.Add(time.Second)
	if !b.allow() {
		t.Fatal("trial refused after cooldown")
	}
	// No report. The slot frees after another cooldown.
	if b.allow() {
		t.Fatal("trial slot double-claimed immediately")
	}
	now = now.Add(time.Second)
	if !b.allow() {
		t.Fatal("lost trial never released — breaker wedged half-open")
	}
	b.report(true)
	if b.state() != breakerClosed {
		t.Fatalf("state %v after recovered lost trial", b.state())
	}
}

// TestBreakerDisabled: negative Config.BreakerThreshold must yield
// permanently closed breakers that never skip.
func TestBreakerDisabled(t *testing.T) {
	b := newBreaker(0, time.Second, nil)
	for i := 0; i < 100; i++ {
		b.report(false)
		if !b.allow() {
			t.Fatal("disabled breaker refused an attempt")
		}
	}
	if b.state() != breakerClosed {
		t.Fatalf("disabled breaker state %v", b.state())
	}
}

// injectedFleet boots a 2-backend fleet with a fault injector wrapped
// around backend 0, so tests flip outages with cycle-exact boundaries.
func injectedFleet(t testing.TB, cfg Config) (*Gateway, *httptest.Server, *faults.Injector) {
	t.Helper()
	inj := faults.New(service.New(service.Config{}).Handler(), faults.Config{})
	b0 := httptest.NewServer(inj)
	b1 := httptest.NewServer(service.New(service.Config{}).Handler())
	cfg.Backends = []string{b0.URL, b1.URL}
	gw, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(gw.Handler())
	t.Cleanup(func() {
		ts.Close()
		b0.Close()
		b1.Close()
	})
	return gw, ts, inj
}

// slot0Request finds a corpus request owned by ring slot 0.
func slot0Request(t testing.TB, gw *Gateway) service.CompileRequest {
	t.Helper()
	loops := corpus.Generate(corpus.Params{Seed: corpus.DefaultSeed, N: 32})
	for _, l := range loops {
		req := service.CompileRequest{Loop: vliwq.FormatLoop(l), Machine: "clustered:4", SkipVerify: true}
		if gw.Route(&req) == 0 {
			return req
		}
	}
	t.Fatal("no corpus request routed to slot 0")
	return service.CompileRequest{}
}

// TestBreakerUnderFaultInjector runs the breaker against a real injected
// outage: the injector takes backend 0 down, in-band failures open the
// breaker (requests keep succeeding via failover), the injector recovers,
// and the next post-cooldown request re-closes the circuit.
func TestBreakerUnderFaultInjector(t *testing.T) {
	gw, ts, inj := injectedFleet(t, Config{
		BreakerThreshold: 3,
		BreakerCooldown:  50 * time.Millisecond,
		BackoffBase:      -1, // keep the test fast; backoff has its own test
	})
	req := slot0Request(t, gw)

	inj.SetDown(true)
	for i := 0; i < 6; i++ {
		resp, body := postJSON(t, ts.Client(), ts.URL+"/compile", req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d during outage: %d %s — failover must mask the fault", i, resp.StatusCode, body)
		}
	}
	st := gw.Stats(context.Background())
	if st.Backends[0].Breaker != "open" || st.Backends[0].BreakerOpens != 1 {
		t.Fatalf("breaker %q opens=%d after sustained injected faults, want open/1",
			st.Backends[0].Breaker, st.Backends[0].BreakerOpens)
	}
	if st.Backends[0].Skipped == 0 {
		t.Fatal("open breaker never skipped — requests kept hammering the down backend")
	}
	if st.Backends[1].Failovers == 0 {
		t.Fatal("neighbour recorded no failovers during the outage")
	}

	// Recovery: after the cooldown the next request is the half-open trial;
	// it succeeds against the recovered backend and re-closes the circuit.
	inj.SetDown(false)
	time.Sleep(60 * time.Millisecond)
	resp, body := postJSON(t, ts.Client(), ts.URL+"/compile", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-recovery request: %d %s", resp.StatusCode, body)
	}
	st = gw.Stats(context.Background())
	if st.Backends[0].Breaker != "closed" || st.Backends[0].BreakerCloses != 1 {
		t.Fatalf("breaker %q closes=%d after recovery, want closed/1",
			st.Backends[0].Breaker, st.Backends[0].BreakerCloses)
	}
	if st.Backends[0].Served == 0 {
		t.Fatal("recovered backend never served again")
	}
}

// TestProberReclosesBreakerWithoutTraffic: an idle gateway must re-close an
// open breaker via the background prober alone.
func TestProberReclosesBreakerWithoutTraffic(t *testing.T) {
	gw, ts, inj := injectedFleet(t, Config{
		BreakerThreshold: 2,
		BreakerCooldown:  30 * time.Millisecond,
		BackoffBase:      -1,
	})
	req := slot0Request(t, gw)

	inj.SetDown(true)
	for i := 0; i < 4; i++ {
		postJSON(t, ts.Client(), ts.URL+"/compile", req)
	}
	if st := gw.Stats(context.Background()); st.Backends[0].Breaker != "open" {
		t.Fatalf("breaker %q, want open", st.Backends[0].Breaker)
	}

	stop := gw.StartProber(20 * time.Millisecond)
	defer stop()
	inj.SetDown(false)
	deadline := time.Now().Add(2 * time.Second)
	for {
		if st := gw.Stats(context.Background()); st.Backends[0].Breaker == "closed" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("prober never re-closed the breaker on an idle gateway")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestAllBreakersOpenForcesOwnerAttempt: with every circuit open the walk
// must still attempt the owner rather than failing without trying — the
// forced attempt is the only in-band signal source left.
func TestAllBreakersOpenForcesOwnerAttempt(t *testing.T) {
	var calls atomic.Int64
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		service.WriteJSON(w, http.StatusOK, map[string]string{"ok": "true"})
	}))
	defer backend.Close()
	gw, err := New(Config{Backends: []string{backend.URL}, BreakerThreshold: 1, BackoffBase: -1})
	if err != nil {
		t.Fatal(err)
	}
	// Force the only breaker open with a long cooldown.
	gw.backends[0].breaker.report(false)
	if gw.backends[0].breaker.state() != breakerOpen {
		t.Fatal("setup: breaker not open")
	}

	status, _, _, err := g0walk(gw)
	if err != nil || status != http.StatusOK {
		t.Fatalf("forced owner attempt failed: status %d err %v", status, err)
	}
	if calls.Load() != 1 {
		t.Fatalf("backend saw %d calls, want exactly the forced attempt", calls.Load())
	}
	// report() while open is a no-op, so the forced success does not
	// re-close the circuit by itself; that stays the job of allow()'s
	// half-open trial or the prober.
	if st := gw.backends[0].breaker.state(); st != breakerOpen {
		t.Fatalf("forced attempt moved the breaker to %v", st)
	}
}

func g0walk(gw *Gateway) (int, http.Header, []byte, error) {
	body := []byte(`{"loop":"loop x\ntrip 4\nop a load"}`)
	return gw.ringWalk(context.Background(), 0, 0, "/compile", body, 1)
}

// TestBackoffShape: jittered exponential in [d/2, min(cap, 3d/2)), capped.
func TestBackoffShape(t *testing.T) {
	g := &Gateway{cfg: Config{BackoffBase: 8 * time.Millisecond, BackoffMax: 100 * time.Millisecond}}
	for n := 1; n <= 8; n++ {
		base := 8 * time.Millisecond << (n - 1)
		if base > 100*time.Millisecond {
			base = 100 * time.Millisecond
		}
		for i := 0; i < 50; i++ {
			d := g.backoff(n)
			if d < base/2 || d > 100*time.Millisecond {
				t.Fatalf("backoff(%d) = %v outside [%v, 100ms]", n, d, base/2)
			}
		}
	}
	gOff := &Gateway{cfg: Config{BackoffBase: -1}}
	if d := gOff.backoff(3); d != 0 {
		t.Fatalf("disabled backoff returned %v", d)
	}
}

// TestHedgedCompile: a slow owner is out-raced by the hedge launched after
// the hedge delay, the client sees the fast answer, and the stats count
// the hedge and its win.
func TestHedgedCompile(t *testing.T) {
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(400 * time.Millisecond)
		service.WriteJSON(w, http.StatusOK, map[string]string{"who": "slow"})
	}))
	defer slow.Close()
	fast := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		service.WriteJSON(w, http.StatusOK, map[string]string{"who": "fast"})
	}))
	defer fast.Close()

	gw, err := New(Config{
		Backends:      []string{slow.URL, fast.URL},
		Hedge:         true,
		HedgeMinDelay: 20 * time.Millisecond,
		BackoffBase:   -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(gw.Handler())
	defer ts.Close()

	// Find a request owned by the slow slot so the hedge targets the fast
	// neighbour.
	req := slot0Request(t, gw)
	t0 := time.Now()
	resp, body := postJSON(t, ts.Client(), ts.URL+"/compile", req)
	elapsed := time.Since(t0)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("hedged request: %d %s", resp.StatusCode, body)
	}
	var who map[string]string
	if err := json.Unmarshal(body, &who); err != nil || who["who"] != "fast" {
		t.Fatalf("hedged answer %s, want the fast backend's", body)
	}
	if elapsed >= 400*time.Millisecond {
		t.Fatalf("hedge saved nothing: %v elapsed", elapsed)
	}
	st := gw.Stats(context.Background())
	if st.Hedges != 1 || st.HedgeWins != 1 {
		t.Fatalf("hedges=%d wins=%d, want 1/1", st.Hedges, st.HedgeWins)
	}
}

// TestGatewayDeadlinePropagation is the end-to-end deadline contract
// through the proxy: the client's DeadlineHeader budget reaches the
// backend (tightened to the time actually left) and a budget shorter than
// the compile yields 504 from the BACKEND's stage-boundary cancellation —
// relayed verbatim — not a gateway-side timeout guess.
func TestGatewayDeadlinePropagation(t *testing.T) {
	var sawBudget atomic.Value // string
	observer := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sawBudget.Store(r.Header.Get(service.DeadlineHeader))
		service.New(service.Config{}).Handler().ServeHTTP(w, r)
	})
	b0 := httptest.NewServer(observer)
	defer b0.Close()
	gw, err := New(Config{Backends: []string{b0.URL}})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(gw.Handler())
	defer ts.Close()

	req := service.CompileRequest{Loop: vliwq.FormatLoop(corpus.KernelByName("daxpy")), SkipVerify: true}
	buf, _ := json.Marshal(req)
	hr, err := http.NewRequest(http.MethodPost, ts.URL+"/compile", strings.NewReader(string(buf)))
	if err != nil {
		t.Fatal(err)
	}
	hr.Header.Set(service.DeadlineHeader, "5s")
	resp, err := ts.Client().Do(hr)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	got, _ := sawBudget.Load().(string)
	if got == "" {
		t.Fatal("backend never saw the propagated deadline header")
	}
	d, err := time.ParseDuration(got)
	if err != nil {
		t.Fatalf("propagated budget %q unparsable: %v", got, err)
	}
	if d <= 0 || d > 5*time.Second {
		t.Fatalf("propagated budget %v not tightened within (0, 5s]", d)
	}

	// A budget far shorter than the compile: the backend's own
	// stage-boundary cancellation answers 504 and the gateway relays it.
	var heavy strings.Builder
	heavy.WriteString("loop heavy\ntrip 1024\nop v0 load\n")
	for i := 1; i < 64; i++ {
		fmt.Fprintf(&heavy, "op v%d add v%d\n", i, i-1)
	}
	hreq := service.CompileRequest{Loop: heavy.String(), Machine: "clustered:4", Unroll: true, UnrollFactor: 16, Effort: "exhaustive"}
	hbuf, _ := json.Marshal(hreq)
	hr2, err := http.NewRequest(http.MethodPost, ts.URL+"/compile", strings.NewReader(string(hbuf)))
	if err != nil {
		t.Fatal(err)
	}
	hr2.Header.Set(service.DeadlineHeader, "2ms")
	resp2, err := ts.Client().Do(hr2)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var e map[string]string
	if err := json.NewDecoder(resp2.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	if resp2.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("short-budget status %d (%v), want the backend's 504 relayed", resp2.StatusCode, e)
	}
	if !strings.Contains(e["error"], context.DeadlineExceeded.Error()) {
		t.Fatalf("504 body %v does not carry the backend's context error", e)
	}
}

// TestGatewayBadDeadlineHeaderIs400 mirrors the backend's contract at the
// proxy edge, on every endpoint that parses the header.
func TestGatewayBadDeadlineHeaderIs400(t *testing.T) {
	_, ts, _ := fleet(t, 1, Config{})
	for _, path := range []string{"/compile", "/batch", "/healthz", "/stats"} {
		method := http.MethodPost
		if path == "/healthz" || path == "/stats" {
			method = http.MethodGet
		}
		hr, err := http.NewRequest(method, ts.URL+path, strings.NewReader("{}"))
		if err != nil {
			t.Fatal(err)
		}
		hr.Header.Set(service.DeadlineHeader, "whenever")
		resp, err := ts.Client().Do(hr)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s with bad deadline: status %d, want 400", path, resp.StatusCode)
		}
	}
}

// TestShedBackendFailsOver: a 429 from the owner is retryable (the
// neighbour may have capacity) but must NOT open the owner's breaker.
func TestShedBackendFailsOver(t *testing.T) {
	shedding := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "1")
		service.WriteJSON(w, http.StatusTooManyRequests, map[string]string{"error": "shed"})
	}))
	defer shedding.Close()
	ok := httptest.NewServer(service.New(service.Config{}).Handler())
	defer ok.Close()
	gw, err := New(Config{Backends: []string{shedding.URL, ok.URL}, BreakerThreshold: 2, BackoffBase: -1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(gw.Handler())
	defer ts.Close()

	req := slot0Request(t, gw)
	for i := 0; i < 5; i++ {
		resp, body := postJSON(t, ts.Client(), ts.URL+"/compile", req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: %d %s — shed owner must fail over", i, resp.StatusCode, body)
		}
	}
	st := gw.Stats(context.Background())
	if st.Backends[0].Breaker != "closed" || st.Backends[0].BreakerOpens != 0 {
		t.Fatalf("shedding backend's breaker %q opens=%d — 429 must not trip it",
			st.Backends[0].Breaker, st.Backends[0].BreakerOpens)
	}
	if st.Backends[1].Failovers == 0 {
		t.Fatal("no failovers recorded off the shedding owner")
	}
}
