package gateway

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"vliwq"
	"vliwq/internal/faults"
	"vliwq/internal/service"
)

// dualInjectedFleet boots a 2-backend fleet with a fault injector wrapped
// around EACH backend, so coalescing tests can count exactly how many HTTP
// requests reach every slot — the fleet-wide cost of a request storm.
func dualInjectedFleet(t testing.TB, cfg Config, c0, c1 faults.Config) (*Gateway, *httptest.Server, [2]*faults.Injector) {
	t.Helper()
	inj0 := faults.New(service.New(service.Config{}).Handler(), c0)
	inj1 := faults.New(service.New(service.Config{}).Handler(), c1)
	b0 := httptest.NewServer(inj0)
	b1 := httptest.NewServer(inj1)
	cfg.Backends = []string{b0.URL, b1.URL}
	gw, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(gw.Handler())
	t.Cleanup(func() {
		ts.Close()
		b0.Close()
		b1.Close()
	})
	return gw, ts, [2]*faults.Injector{inj0, inj1}
}

// waitRequests polls until an injector has seen at least n requests — the
// point at which the leader's flight is definitely registered (coalesce
// registers the flight before dispatching) and the backend is inside its
// injected delay, so every request fired after this deterministically joins.
func waitRequests(t testing.TB, inj *faults.Injector, n int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for inj.Counts().Requests < n {
		if time.Now().After(deadline) {
			t.Fatalf("injector saw %d requests, want >= %d", inj.Counts().Requests, n)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestGatewayCoalescesConcurrentIdentical: concurrent identical /compile
// requests cost the fleet ONE backend HTTP request. The owner is slowed so
// the leader's dispatch is reliably in flight when the rest arrive; they
// join it, the backend sees a single request, and every caller relays the
// same bytes. Joiners skip the routing counters, so owned == served == 1.
func TestGatewayCoalescesConcurrentIdentical(t *testing.T) {
	gw, ts, inj := dualInjectedFleet(t, Config{},
		faults.Config{SlowEvery: 1, SlowBy: 150 * time.Millisecond}, faults.Config{})
	req := slot0Request(t, gw)

	const callers = 8
	type reply struct {
		status int
		body   []byte
	}
	replies := make([]reply, callers)
	var wg sync.WaitGroup
	post := func(i int) {
		defer wg.Done()
		resp, body := postJSON(t, ts.Client(), ts.URL+"/compile", req)
		replies[i] = reply{resp.StatusCode, body}
	}
	wg.Add(1)
	go post(0)
	waitRequests(t, inj[0], 1)
	for i := 1; i < callers; i++ {
		wg.Add(1)
		go post(i)
	}
	wg.Wait()

	for i, r := range replies {
		if r.status != http.StatusOK {
			t.Fatalf("caller %d: status %d body %s", i, r.status, r.body)
		}
		if !bytes.Equal(r.body, replies[0].body) {
			t.Fatalf("caller %d relayed different bytes than the leader", i)
		}
	}
	if n := inj[0].Counts().Requests; n != 1 {
		t.Fatalf("backend saw %d requests for %d concurrent callers, want 1", n, callers)
	}
	st := gw.Stats(context.Background())
	if st.Coalesced != callers-1 {
		t.Fatalf("coalesced = %d, want %d", st.Coalesced, callers-1)
	}
	if st.Backends[0].Owned != 1 || st.Backends[0].Served != 1 {
		t.Fatalf("owned=%d served=%d, want 1/1 — joiners must not touch routing counters",
			st.Backends[0].Owned, st.Backends[0].Served)
	}
}

// TestGatewayStampedeJoinsFailover is the failover-stampede regression
// test: the owner is down, so serving the key requires a ring walk onto the
// surviving peer. Before coalescing, every concurrent caller marched that
// ring independently and the peer absorbed the whole storm; now the
// leader's walk is the only one in flight and the peer sees exactly one
// request. The peer is slowed so the joiners reliably arrive mid-flight.
func TestGatewayStampedeJoinsFailover(t *testing.T) {
	gw, ts, inj := dualInjectedFleet(t, Config{BackoffBase: -1},
		faults.Config{}, faults.Config{SlowEvery: 1, SlowBy: 150 * time.Millisecond})
	req := slot0Request(t, gw)
	inj[0].SetDown(true)

	const callers = 8
	statuses := make([]int, callers)
	bodies := make([][]byte, callers)
	var wg sync.WaitGroup
	post := func(i int) {
		defer wg.Done()
		resp, body := postJSON(t, ts.Client(), ts.URL+"/compile", req)
		statuses[i], bodies[i] = resp.StatusCode, body
	}
	wg.Add(1)
	go post(0)
	// Wait for the leader's walk to fail over and reach the peer: from this
	// point its flight is registered and the peer is inside the injected
	// delay, so the stampede below must join rather than re-walk the ring.
	waitRequests(t, inj[1], 1)
	for i := 1; i < callers; i++ {
		wg.Add(1)
		go post(i)
	}
	wg.Wait()

	for i := range statuses {
		if statuses[i] != http.StatusOK {
			t.Fatalf("caller %d: status %d body %s — failover must mask the outage", i, statuses[i], bodies[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("caller %d relayed different bytes than the leader", i)
		}
	}
	if n := inj[1].Counts().Requests; n != 1 {
		t.Fatalf("surviving peer absorbed %d requests, want 1 — the stampede was not coalesced", n)
	}
	if down := inj[0].Counts(); down.Failed == 0 {
		t.Fatalf("down owner injected no failures (%+v); the walk never exercised the outage", down)
	}
	st := gw.Stats(context.Background())
	if st.Coalesced != callers-1 {
		t.Fatalf("coalesced = %d, want %d", st.Coalesced, callers-1)
	}
	if st.Backends[1].Failovers != 1 {
		t.Fatalf("peer failovers = %d, want 1 (one ring walk fleet-wide)", st.Backends[1].Failovers)
	}
}

// gwStructLoop is a small daxpy-shaped loop for structural-routing tests.
const gwStructLoop = `loop daxpy
trip 200
op a load
op x load
op y load
op m mul a
op s add m y
op st store s
carried s m 1
mem st a 1
`

// renameGatewaySpelling rewrites every name in a loop text to a fresh
// namespace, preserving structure and statement order — a name-only
// isomorphic spelling with a distinct exact key.
func renameGatewaySpelling(t testing.TB, src, prefix string) string {
	t.Helper()
	l, err := vliwq.ParseLoop(src)
	if err != nil {
		t.Fatal(err)
	}
	l.Name = prefix + l.Name
	for i, op := range l.Ops {
		if op.Name != "" {
			op.Name = fmt.Sprintf("%s%d", prefix, i)
		}
	}
	return vliwq.FormatLoop(l)
}

// TestGatewayStructuralAcrossSpellings: two isomorphic but differently
// spelled requests route to the SAME backend (Route hashes the structural
// key), the second is served from that backend's structural cache, and the
// gateway's aggregated stats show one fleet-wide compile. The structurally
// served response is byte-identical to a fresh standalone service compiling
// the renamed spelling from scratch.
func TestGatewayStructuralAcrossSpellings(t *testing.T) {
	gw, ts, _ := fleet(t, 2, Config{})
	fresh := httptest.NewServer(service.New(service.Config{}).Handler())
	defer fresh.Close()

	orig := service.CompileRequest{Loop: gwStructLoop, Machine: "clustered:4"}
	renamed := service.CompileRequest{Loop: renameGatewaySpelling(t, gwStructLoop, "z"), Machine: "clustered:4"}
	if gw.Route(&orig) != gw.Route(&renamed) {
		t.Fatalf("isomorphic spellings routed to different slots (%d vs %d); structural routing broken",
			gw.Route(&orig), gw.Route(&renamed))
	}

	if resp, body := postJSON(t, ts.Client(), ts.URL+"/compile", orig); resp.StatusCode != http.StatusOK {
		t.Fatalf("original: status %d body %s", resp.StatusCode, body)
	}
	resp, got := postJSON(t, ts.Client(), ts.URL+"/compile", renamed)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("renamed: status %d body %s", resp.StatusCode, got)
	}
	if _, want := postJSON(t, fresh.Client(), fresh.URL+"/compile", renamed); !bytes.Equal(got, want) {
		t.Fatalf("structurally served response diverged from a fresh compile:\n%s\nvs\n%s", got, want)
	}

	st := gw.Stats(context.Background())
	if st.TotalSched.Compiles != 1 {
		t.Fatalf("fleet compiles = %d, want 1 (the renamed spelling must reuse the class compile)",
			st.TotalSched.Compiles)
	}
	if !st.TotalStructural.Enabled || st.TotalStructural.Hits != 1 {
		t.Fatalf("total structural = %+v, want enabled with hits=1", st.TotalStructural)
	}
	if st.TotalCache.Misses != 2 {
		t.Fatalf("exact misses = %d, want 2 (distinct spellings keep distinct exact keys)", st.TotalCache.Misses)
	}
}
