package sched

import (
	"testing"

	"vliwq/internal/corpus"
	"vliwq/internal/ir"
	"vliwq/internal/machine"
)

// TestScheduleLoopAllocs locks in the scratch-arena behaviour: once the
// pooled state has seen a loop of a given size, rescheduling stays within a
// small constant allocation budget (the returned Schedule plus its two
// placement arrays, Validate's topological check and the MII bounds). The
// pre-arena scheduler allocated well over a hundred times per loop here.
func TestScheduleLoopAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation inflates allocation counts")
	}
	loops := corpus.Generate(corpus.Params{Seed: corpus.DefaultSeed, N: 16})
	for _, cfg := range []machine.Config{machine.SingleCluster(12), machine.Clustered(4)} {
		// Warm the pool so every arena reaches its high-water size.
		for _, l := range loops {
			if _, err := ScheduleLoop(l, cfg, Options{}); err != nil {
				t.Fatalf("%s on %s: %v", l.Name, cfg.Name, err)
			}
		}
		var total float64
		for _, l := range loops {
			total += testing.AllocsPerRun(10, func() {
				if _, err := ScheduleLoop(l, cfg, Options{}); err != nil {
					t.Fatalf("%s on %s: %v", l.Name, cfg.Name, err)
				}
			})
		}
		// ~10 allocs/loop in practice; 25 leaves headroom for a GC clearing
		// the sync.Pool mid-measurement without masking a regression back
		// toward the former ~180+/loop.
		if mean := total / float64(len(loops)); mean > 25 {
			t.Errorf("%s: ScheduleLoop allocates %.1f times per loop, want <= 25", cfg.Name, mean)
		}
	}
}

// TestMRTReuseAllocs verifies the modulo reservation table reuses its rows
// and per-cell reservation slices across reset cycles: steady-state use
// allocates nothing.
func TestMRTReuseAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation inflates allocation counts")
	}
	cfg := machine.Clustered(4)
	m := newMRT(8, &cfg)
	fill := func() {
		m.reset(8, &cfg)
		for row := 0; row < 8; row++ {
			for c := 0; c < cfg.NumClusters(); c++ {
				m.add(row, c, machine.ALU, row*cfg.NumClusters()+c)
			}
		}
		for row := 0; row < 8; row++ {
			for c := 0; c < cfg.NumClusters(); c++ {
				m.remove(row, c, machine.ALU, row*cfg.NumClusters()+c)
			}
		}
	}
	fill() // reach the high-water mark
	if allocs := testing.AllocsPerRun(100, fill); allocs != 0 {
		t.Errorf("MRT reset/add/remove cycle allocates %.1f times, want 0", allocs)
	}
}

// TestTryIIAttemptAllocs checks the heart of the tentpole: after the first
// attempt has sized the arena, further II attempts on the same state are
// allocation-free (reset, MRT, heights, worklist and slot search all reuse
// their storage).
func TestTryIIAttemptAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation inflates allocation counts")
	}
	l := corpus.Stencil3()
	cfg := machine.Clustered(4)
	st := statePool.Get().(*state)
	defer statePool.Put(st)
	st.init(l, cfg, DefaultBudgetRatio, StrategyBaseline, nil, false)
	if !st.tryII(8) {
		t.Fatalf("stencil3 did not schedule at II=8")
	}
	allocs := testing.AllocsPerRun(50, func() {
		st.reset()
		if !st.tryII(8) {
			t.Fatalf("stencil3 did not schedule at II=8")
		}
	})
	if allocs != 0 {
		t.Errorf("II attempt allocates %.1f times, want 0", allocs)
	}
}

// TestForceSlotUnschedulable covers the degenerate inputs that used to
// panic with an index out of range: an op pinned to a cluster without an FU
// of its class (empty occupant list), and an op whose class no cluster in
// the preference order offers (empty preference list). Both must fail the
// attempt cleanly so ScheduleLoop can report ErrNoSchedule.
func TestForceSlotUnschedulable(t *testing.T) {
	l := ir.New("pinned-move")
	l.AddOp(ir.KMove, "m")
	cfg := machine.Config{
		Name: "no-copy-units",
		Clusters: []machine.Cluster{
			{FUs: [machine.NumClasses]int{machine.LS: 1, machine.ALU: 1, machine.MUL: 1}},
			{FUs: [machine.NumClasses]int{machine.LS: 1, machine.ALU: 1, machine.MUL: 1}},
		},
	}

	st := statePool.Get().(*state)
	defer statePool.Put(st)

	// Pinned to a cluster that cannot host a move: forceSlot finds no free
	// unit and no occupant to evict.
	st.init(l, cfg, DefaultBudgetRatio, StrategyBaseline, nil, false)
	st.pinned[0] = 0
	if st.tryII(1) {
		t.Errorf("tryII succeeded for a pinned op on a cluster without its FU class")
	}

	// Unpinned with no providing cluster anywhere: the preference list is
	// empty.
	st.init(l, cfg, DefaultBudgetRatio, StrategyBaseline, nil, false)
	if st.tryII(1) {
		t.Errorf("tryII succeeded for an op whose FU class no cluster offers")
	}
}

// TestScheduleLoopReusedStateDeterminism guards the arena against state
// leaking between runs: scheduling the same corpus twice through the pooled
// states must reproduce identical placements.
func TestScheduleLoopReusedStateDeterminism(t *testing.T) {
	loops := corpus.Generate(corpus.Params{Seed: 5, N: 24})
	cfg := machine.Clustered(5)
	run := func() []int {
		var out []int
		for _, l := range loops {
			s, err := ScheduleLoop(l, cfg, Options{})
			if err != nil {
				t.Fatalf("%s: %v", l.Name, err)
			}
			out = append(out, s.II)
			out = append(out, s.Time...)
			out = append(out, s.Cluster...)
		}
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("runs differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("placement diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
}
