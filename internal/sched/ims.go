package sched

import (
	"sync"

	"vliwq/internal/ir"
	"vliwq/internal/machine"
)

// state carries one scheduling run. A run makes several II attempts; each
// attempt works on per-op arrays restored to their pristine values. The
// state is a reusable scratch arena: every slice, the modulo reservation
// table and the worklist keep their storage across II attempts and — via
// statePool — across ScheduleLoop calls, so the hot path of an attempt
// allocates only when the loop grows past any previously seen size.
type state struct {
	orig        *ir.Loop
	loop        *ir.Loop // working copy; ops are shared, never mutated
	cfg         machine.Config
	budgetRatio int
	strat       Strategy // cluster-preference policy for this run

	ii       int
	ordinal  int   // 1-based position of the current attempt, drives the budget multiplier
	time     []int // issue cycle, -1 = unscheduled
	cluster  []int
	prevTime []int // last forced placement, for Rau's progress rule
	never    []bool
	pinned   []int // fixed cluster for inserted moves, -1 otherwise
	height   []int
	preds    ir.Adj
	succs    ir.Adj
	table    mrt
	load     []int // cached per-cluster reservation counts
	allowed  []int // compact-mode cluster subset (nil = free placement)

	wl        worklist
	prefBuf   []clusterPref // scratch for clusterPrefs ordering
	prefOut   []int         // scratch for the returned preference order
	pinnedBuf [1]int        // scratch for a single pinned preference
	pathBuf   []int         // scratch for move-chain ring paths
	settleBuf []ir.Dep      // scratch for settle's edge snapshot
	iiBuf     []int         // scratch for the candidate-II sequence
	minTBuf   []int         // per-cluster earliest cycle, per findSlot call
	adjBuf    []bool        // per-cluster ring-adjacency verdict

	stats Stats
}

// statePool recycles scheduling arenas across ScheduleLoop calls; the
// experiment pipeline schedules tens of thousands of loops back to back and
// the arena slices are the dominant allocation otherwise.
var statePool = sync.Pool{New: func() any { return new(state) }}

// init binds the arena to a new input loop, reusing all prior storage.
func (st *state) init(l *ir.Loop, cfg machine.Config, budgetRatio int, strat Strategy) {
	st.orig = l
	st.cfg = cfg
	st.budgetRatio = budgetRatio
	st.strat = strat
	st.ordinal = 0
	st.stats = Stats{}
	if st.loop == nil {
		st.loop = &ir.Loop{}
	}
	st.loop.Name = l.Name
	st.loop.Trip = l.Trip
	st.loop.Unroll = l.Unroll
	st.reset()
}

// reset prepares a fresh attempt on the pristine input loop. Op structs are
// shared with the input (the scheduler never mutates them); only the op and
// dependence lists are restored, so an attempt that inserted move operations
// leaves no trace.
func (st *state) reset() {
	st.allowed = nil
	st.loop.Ops = append(st.loop.Ops[:0], st.orig.Ops...)
	st.loop.Deps = append(st.loop.Deps[:0], st.orig.Deps...)
	n := len(st.loop.Ops)
	st.time = refill(st.time, n, -1)
	st.cluster = refill(st.cluster, n, -1)
	st.prevTime = refill(st.prevTime, n, -1)
	st.pinned = refill(st.pinned, n, -1)
	st.never = refill(st.never, n, true)
	st.loop.PredsInto(&st.preds)
	st.loop.SuccsInto(&st.succs)
}

// refill returns s resized to n with every element set to v, reusing the
// backing array when it is large enough.
func refill[T any](s []T, n int, v T) []T {
	if cap(s) < n {
		s = make([]T, n)
	} else {
		s = s[:n]
	}
	for i := range s {
		s[i] = v
	}
	return s
}

// tryII attempts to schedule every operation at the given II within the
// budget. It returns true on success, leaving the placement in st.time and
// st.cluster. Later attempts get a progressively larger budget: when the
// first IIs fail because of partitioning conflicts, raw persistence at a
// slightly larger II is usually what finds the schedule.
func (st *state) tryII(ii int) bool {
	st.ii = ii
	st.table.reset(ii, &st.cfg)
	st.load = refill(st.load, st.cfg.NumClusters(), 0)
	st.computeHeights()

	wl := &st.wl
	wl.reset(st, len(st.loop.Ops))
	for id := range st.loop.Ops {
		wl.push(id)
	}
	mult := st.ordinal
	if mult < 1 {
		mult = 1
	}
	if mult > 4 {
		mult = 4
	}
	budget := st.budgetRatio * len(st.loop.Ops) * mult
	for wl.Len() > 0 {
		if budget <= 0 {
			return false
		}
		budget--
		id := wl.pop()
		st.stats.Placements++
		estart := st.earliestStart(id)
		t, c, ok := st.findSlot(id, estart)
		if !ok {
			if t, c, ok = st.forceSlot(id, estart, wl); !ok {
				// No cluster can ever host the op (or nothing occupies the
				// conflicting slot): the attempt is unschedulable.
				return false
			}
		}
		st.place(id, t, c)
		budget += st.settle(id, wl) * st.budgetRatio
	}
	return true
}

// earliestStart returns the earliest issue cycle permitted by the scheduled
// predecessors of id (ignoring communication latency, which findSlot folds
// into its per-cluster earliest-cycle bound).
func (st *state) earliestStart(id int) int {
	estart := 0
	for _, d := range st.preds.At(id) {
		if tf := st.time[d.From]; tf >= 0 {
			if e := tf + st.loop.Ops[d.From].Kind.Latency() - st.ii*d.Dist; e > estart {
				estart = e
			}
		}
	}
	return estart
}

// findSlot searches the II-wide window from estart for a (time, cluster)
// placement that satisfies resources, scheduled-predecessor timing
// (including communication latency) and the ring adjacency rule. When the
// machine allows moves, a second pass accepts non-adjacent clusters (moves
// are inserted later by settle).
//
// Feasibility splits into per-cluster facts (earliest legal cycle given
// scheduled predecessors, ring adjacency to scheduled neighbours) and the
// one per-cycle fact (a free FU in the reservation table). The per-cluster
// facts cannot change during the search — nothing is placed or evicted —
// so they are computed once per candidate cluster instead of once per
// (cycle, cluster) pair, leaving only the MRT probe in the inner loop.
func (st *state) findSlot(id, estart int) (int, int, bool) {
	prefs := st.clusterPrefs(id)
	if len(prefs) == 0 {
		return 0, 0, false
	}
	nc := st.cfg.NumClusters()
	minT := refill(st.minTBuf, nc, 0)
	adjOK := refill(st.adjBuf, nc, true)
	st.minTBuf, st.adjBuf = minT, adjOK
	for _, c := range prefs {
		req := 0
		for _, d := range st.preds.At(id) {
			tf := st.time[d.From]
			if tf < 0 {
				continue
			}
			lat := st.loop.Ops[d.From].Kind.Latency()
			if d.Kind == ir.Flow && st.cluster[d.From] != c {
				lat += st.cfg.CommLatency
			}
			if r := tf + lat - st.ii*d.Dist; r > req {
				req = r
			}
		}
		minT[c] = req
		ok := true
		for _, d := range st.preds.At(id) {
			if d.Kind == ir.Flow && st.time[d.From] >= 0 && !st.cfg.Adjacent(st.cluster[d.From], c) {
				ok = false
				break
			}
		}
		if ok {
			for _, d := range st.succs.At(id) {
				if d.Kind == ir.Flow && st.time[d.To] >= 0 && !st.cfg.Adjacent(c, st.cluster[d.To]) {
					ok = false
					break
				}
			}
		}
		adjOK[c] = ok
	}
	class := machine.ClassOf(st.loop.Ops[id].Kind)
	pinned := st.pinned[id]
	passes := 1
	if st.cfg.AllowMoves && pinned < 0 {
		passes = 2
	}
	for pass := 0; pass < passes; pass++ {
		requireAdj := pass == 0
		for t := estart; t < estart+st.ii; t++ {
			for _, c := range prefs {
				if pinned >= 0 && c != pinned {
					continue
				}
				if requireAdj && !adjOK[c] {
					continue
				}
				if t < minT[c] {
					continue
				}
				if st.table.free(t%st.ii, c, class) {
					return t, c, true
				}
			}
		}
	}
	return 0, 0, false
}

// clusterPref orders one cluster candidate by a strategy-specific key
// vector: smaller k1 first, then k2, then k3, then cluster index. Every
// strategy is expressed as a key assignment, so one insertion sort serves
// the whole catalogue; the relation stays total (the index breaks every
// tie), so the result is the unique sorted order.
type clusterPref struct{ c, k1, k2, k3 int }

func (p clusterPref) before(q clusterPref) bool {
	if p.k1 != q.k1 {
		return p.k1 < q.k1
	}
	if p.k2 != q.k2 {
		return p.k2 < q.k2
	}
	if p.k3 != q.k3 {
		return p.k3 < q.k3
	}
	return p.c < q.c
}

// prefHash is StrategyPerturb's deterministic jitter source: a splitmix64
// finalizer over the (op, cluster) pair under a fixed salt. Same op, same
// cluster, same verdict — across runs, platforms and worker interleavings.
func prefHash(id, c int) uint64 {
	h := uint64(id)*0x9e3779b97f4a7c15 ^ uint64(c)*0xbf58476d1ce4e5b9 ^ 0x5eed1998
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// clusterPrefs orders the clusters for slot search under the run's
// strategy (see the Strategy catalogue in strategy.go; StrategyBaseline
// reproduces the historical order exactly). Clusters without an FU of the
// op's class are excluded. The result aliases scratch buffers valid until
// the next clusterPrefs call.
func (st *state) clusterPrefs(id int) []int {
	class := machine.ClassOf(st.loop.Ops[id].Kind)
	if st.allowed != nil {
		// Compact fallback mode: placement restricted to a mutually
		// adjacent cluster subset, making the ring rule trivial. If the
		// subset lacks the class entirely, fall back to the lowest
		// cluster providing it.
		out := st.prefOut[:0]
		for _, c := range st.allowed {
			if st.cfg.FUCount(c, class) > 0 {
				out = append(out, c)
			}
		}
		if len(out) == 0 {
			for c := 0; c < st.cfg.NumClusters(); c++ {
				if st.cfg.FUCount(c, class) > 0 {
					out = append(out, c)
					break
				}
			}
		}
		st.prefOut = out
		return out
	}
	// The candidate count is the cluster count (single digits), so an
	// insertion sort into a reused buffer beats sort.Slice and its closure
	// and interface allocations. The order relation is total (ties broken
	// by cluster index), so the result matches any comparison sort.
	nc := st.cfg.NumClusters()
	prefs := st.prefBuf[:0]
	for c := 0; c < nc; c++ {
		if st.cfg.FUCount(c, class) == 0 {
			continue
		}
		// neigh counts already-scheduled flow neighbours on c; commDist
		// sums their ring distances to c (the copy/communication cost of
		// placing the op there). The distance sum is computed only for the
		// strategy that ranks on it, keeping the baseline walk as cheap as
		// it has always been.
		neigh, commDist := 0, 0
		wantDist := st.strat == StrategyAffinity
		for _, d := range st.preds.At(id) {
			if d.Kind == ir.Flow && st.time[d.From] >= 0 {
				if st.cluster[d.From] == c {
					neigh++
				}
				if wantDist {
					commDist += st.cfg.RingDistance(st.cluster[d.From], c)
				}
			}
		}
		for _, d := range st.succs.At(id) {
			if d.Kind == ir.Flow && st.time[d.To] >= 0 {
				if st.cluster[d.To] == c {
					neigh++
				}
				if wantDist {
					commDist += st.cfg.RingDistance(st.cluster[d.To], c)
				}
			}
		}
		p := clusterPref{c: c}
		switch st.strat {
		case StrategyLoadBalanced:
			p.k1, p.k2 = st.load[c], -neigh
		case StrategyAffinity:
			p.k1, p.k2 = commDist, -neigh
		case StrategyRoundRobin:
			p.k1 = st.cfg.RingDistance(id%nc, c)
		case StrategyPerturb:
			h := prefHash(id, c)
			p.k1, p.k2, p.k3 = -neigh, st.load[c]+int(h&1), int(h>>1&0xffff)
		default: // StrategyBaseline
			p.k1, p.k2 = -neigh, st.load[c]
		}
		i := len(prefs)
		prefs = append(prefs, p)
		for i > 0 && p.before(prefs[i-1]) {
			prefs[i] = prefs[i-1]
			i--
		}
		prefs[i] = p
	}
	st.prefBuf = prefs
	out := st.prefOut[:0]
	for _, p := range prefs {
		out = append(out, p.c)
	}
	st.prefOut = out
	return out
}

// forceSlot is Rau's conflict-driven placement: when no conflict-free slot
// exists in the window, place anyway — at estart for never-scheduled ops,
// otherwise strictly later than the previous placement to guarantee
// progress — and evict whatever stands in the way. The false return covers
// the unschedulable degenerate cases: no cluster offers the op's FU class,
// or the conflicting slot has no occupant to evict (a zero-FU slot).
func (st *state) forceSlot(id, estart int, wl *worklist) (int, int, bool) {
	t := estart
	if !st.never[id] && st.prevTime[id]+1 > t {
		t = st.prevTime[id] + 1
	}
	var prefs []int
	if p := st.pinned[id]; p >= 0 {
		st.pinnedBuf[0] = p
		prefs = st.pinnedBuf[:]
	} else {
		prefs = st.clusterPrefs(id)
	}
	if len(prefs) == 0 {
		return 0, 0, false
	}
	// Prefer a cluster with a free unit at this row; otherwise evict the
	// lowest-priority occupant of the first preference.
	class := machine.ClassOf(st.loop.Ops[id].Kind)
	for _, c := range prefs {
		if st.table.free(t%st.ii, c, class) {
			return t, c, true
		}
	}
	c := prefs[0]
	occ := st.table.occupants(t%st.ii, c, class)
	if len(occ) == 0 {
		return 0, 0, false
	}
	victim := occ[0]
	for _, o := range occ {
		if st.height[o] < st.height[victim] {
			victim = o
		}
	}
	st.evict(victim, wl)
	return t, c, true
}

// place commits op id to (t, c) in the reservation table.
func (st *state) place(id, t, c int) {
	st.time[id] = t
	st.cluster[id] = c
	st.prevTime[id] = t
	st.never[id] = false
	st.table.add(t%st.ii, c, machine.ClassOf(st.loop.Ops[id].Kind), id)
	st.load[c]++
}

// evict unschedules op id and requeues it.
func (st *state) evict(id int, wl *worklist) {
	if st.time[id] < 0 {
		return
	}
	st.table.remove(st.time[id]%st.ii, st.cluster[id], machine.ClassOf(st.loop.Ops[id].Kind), id)
	st.load[st.cluster[id]]--
	st.time[id] = -1
	st.cluster[id] = -1
	st.stats.Evictions++
	wl.push(id)
}

// settle resolves the consequences of placing op id: it evicts scheduled
// neighbours whose dependence constraints the new placement violates and —
// when moves are allowed — replaces non-adjacent flow dependences with
// chains of pinned move operations. It returns the number of operations
// added to the loop (so the caller can extend the budget).
func (st *state) settle(id int, wl *worklist) int {
	t, c := st.time[id], st.cluster[id]
	lat := st.loop.Ops[id].Kind.Latency()
	// Dependence-violated successors are evicted (they will be rescheduled
	// later at a feasible time).
	for _, d := range st.succs.At(id) {
		ts := st.time[d.To]
		if ts < 0 {
			continue
		}
		l := lat
		if d.Kind == ir.Flow && st.cluster[d.To] != c {
			l += st.cfg.CommLatency
		}
		if ts+st.ii*d.Dist < t+l {
			st.evict(d.To, wl)
		}
	}
	// Predecessors can only be violated through communication latency
	// (earliestStart covered the base latency).
	if st.cfg.CommLatency > 0 {
		for _, d := range st.preds.At(id) {
			tf := st.time[d.From]
			if tf < 0 || d.Kind != ir.Flow || st.cluster[d.From] == c {
				continue
			}
			if t+st.ii*d.Dist < tf+st.loop.Ops[d.From].Kind.Latency()+st.cfg.CommLatency {
				st.evict(d.From, wl)
			}
		}
	}
	// Ring adjacency. The op's edges are snapshotted first: insertMoveChain
	// rebuilds the adjacency views in place, which would otherwise clobber
	// the edge lists mid-iteration and leak this placement's new move edges
	// into the same pass.
	edges := st.settleBuf[:0]
	edges = append(edges, st.preds.At(id)...)
	edges = append(edges, st.succs.At(id)...)
	st.settleBuf = edges
	added := 0
	for _, d := range edges {
		if d.Kind != ir.Flow {
			continue
		}
		other := d.From + d.To - id // the other endpoint
		if st.time[other] < 0 || st.cfg.Adjacent(st.cluster[d.From], st.cluster[d.To]) {
			continue
		}
		if st.cfg.AllowMoves {
			added += st.insertMoveChain(d, wl)
		} else {
			st.evict(other, wl)
		}
	}
	return added
}

// computeHeights computes Rau's height-based priority: the length of the
// longest latency path from the issue of each op to the end of the
// iteration, with loop-carried edges discounted by II*distance. With
// II >= RecMII there is no positive cycle, so the fixpoint converges within
// numOps passes.
func (st *state) computeHeights() {
	n := len(st.loop.Ops)
	h := refill(st.height, n, 0)
	for id, op := range st.loop.Ops {
		h[id] = op.Kind.Latency()
	}
	for iter := 0; iter < n+1; iter++ {
		changed := false
		for _, d := range st.loop.Deps {
			lat := st.loop.Ops[d.From].Kind.Latency()
			if v := h[d.To] + lat - st.ii*d.Dist; v > h[d.From] {
				h[d.From] = v
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	st.height = h
}

// worklist is a max-heap of unscheduled op IDs ordered by height (ties by
// lower ID for determinism). Membership is tracked in a flat bool array so
// an op is never queued twice. The heap is hand-rolled — container/heap
// boxes every pushed ID into an interface — but replicates container/heap's
// sift algorithms exactly, so the pop order is bit-for-bit the same. Its
// storage lives in the state arena and is reused across attempts.
type worklist struct {
	st  *state
	ids []int
	in  []bool
}

// reset empties the worklist and sizes the membership array for n ops.
func (w *worklist) reset(st *state, n int) {
	w.st = st
	w.ids = w.ids[:0]
	w.in = refill(w.in, n, false)
}

func (w *worklist) Len() int { return len(w.ids) }

// less reports whether heap slot i sorts before slot j (a max-heap on
// height, ties by lower ID).
func (w *worklist) less(i, j int) bool {
	hi, hj := w.st.height[w.ids[i]], w.st.height[w.ids[j]]
	if hi != hj {
		return hi > hj
	}
	return w.ids[i] < w.ids[j]
}

func (w *worklist) swap(i, j int) { w.ids[i], w.ids[j] = w.ids[j], w.ids[i] }

// fix restores the heap invariant over the whole array (used after the
// priorities change wholesale when the move extension grows the graph).
func (w *worklist) fix() {
	n := len(w.ids)
	for i := n/2 - 1; i >= 0; i-- {
		w.down(i, n)
	}
}

func (w *worklist) up(j int) {
	for {
		i := (j - 1) / 2 // parent
		if i == j || !w.less(j, i) {
			break
		}
		w.swap(i, j)
		j = i
	}
}

func (w *worklist) down(i0, n int) {
	i := i0
	for {
		j1 := 2*i + 1
		if j1 >= n || j1 < 0 { // j1 < 0 after int overflow
			break
		}
		j := j1 // left child
		if j2 := j1 + 1; j2 < n && w.less(j2, j1) {
			j = j2 // = 2*i + 2  // right child
		}
		if !w.less(j, i) {
			break
		}
		w.swap(i, j)
		i = j
	}
}

func (w *worklist) push(id int) {
	if w.in[id] {
		return
	}
	w.in[id] = true
	w.ids = append(w.ids, id)
	w.up(len(w.ids) - 1)
}

func (w *worklist) pop() int {
	n := len(w.ids) - 1
	w.swap(0, n)
	w.down(0, n)
	id := w.ids[n]
	w.ids = w.ids[:n]
	w.in[id] = false
	return id
}
