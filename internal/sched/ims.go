package sched

import (
	"math/bits"
	"sync"

	"vliwq/internal/ir"
	"vliwq/internal/machine"
)

// state carries one scheduling run. A run makes several II attempts; each
// attempt works on per-op arrays restored to their pristine values. The
// state is a reusable scratch arena: every slice, the modulo reservation
// table and the worklist keep their storage across II attempts and — via
// statePool — across ScheduleLoop calls, so the hot path of an attempt
// allocates only when the loop grows past any previously seen size.
//
// Cross-attempt reuse goes further than storage: facts that depend only on
// the pristine loop — the CSR precedence views, the per-op latency and FU
// class tables, the per-cluster adjacency masks — are computed once per run
// and shared by every II attempt. The working loop aliases the input
// (copy-on-write): only an attempt that actually inserts move operations
// pays for private op/dep copies and a CSR rebuild (detach, moves.go).
// When several portfolio strategies race one loop, the same facts are
// shared across the racing states through a raceMemo (memo.go).
type state struct {
	orig        *ir.Loop
	loop        *ir.Loop // working view; ops are shared, never mutated
	cfg         machine.Config
	budgetRatio int
	strat       Strategy // cluster-preference policy for this run
	memo        *raceMemo
	ref         bool // route probes through the scalar reference (ref.go)
	mutated     bool // move ops inserted: loop/CSR detached from the input

	ii       int
	ordinal  int   // 1-based position of the current attempt, drives the budget multiplier
	time     []int // issue cycle, -1 = unscheduled
	cluster  []int
	prevTime []int // last forced placement, for Rau's progress rule
	never    []bool
	pinned   []int // fixed cluster for inserted moves, -1 otherwise
	height   []int
	preds    ir.Adj // working views: alias basePreds/baseSuccs until detach
	succs    ir.Adj
	table    mrt
	load     []int // cached per-cluster reservation counts
	allowed  []int // compact-mode cluster subset (nil = free placement)

	// Pristine-loop facts, valid for every attempt until detach.
	basePreds ir.Adj // header copies: own CSR, or the raceMemo's shared one
	baseSuccs ir.Adj
	ownPreds  ir.Adj // private CSR arenas for memo-less runs
	ownSuccs  ir.Adj
	mutPreds  ir.Adj // private CSR arenas rebuilt after move insertion
	mutSuccs  ir.Adj
	opsArena  []*ir.Op // copy-on-write buffers for detach
	depsArena []ir.Dep
	lat       []int                      // per-op latency: ownLat, or the raceMemo's shared table
	class     []machine.FUClass          // per-op FU class: ownClass, or the raceMemo's
	adjMasks  []uint64                   // per-cluster bitmask of ring-adjacent clusters
	allMask   uint64                     // low NumClusters bits set
	classMask [machine.NumClasses]uint64 // per-class bitmask of clusters providing it
	ownLat    []int                      // private arenas backing the above for memo-less runs:
	ownClass  []machine.FUClass          // a memo-bound header must never be refilled in place,
	ownAdj    []uint64                   // the memo may already be pooled and rebound elsewhere
	wl        worklist
	prefBuf   []clusterPref // scratch for the reference preference ordering (ref.go)
	prefOut   []int         // scratch for the returned preference order
	pathBuf   []int         // scratch for move-chain ring paths
	settleBuf []ir.Dep      // scratch for settle's edge snapshot
	iiBuf     []int         // scratch for the candidate-II sequence
	minTBuf   []int         // per-cluster earliest cycle, per findSlot call
	adjBuf    []bool        // per-cluster ring-adjacency verdict (ref path)
	rec       recScratch    // RecMII scratch (mii.go)

	stats Stats
}

// statePool recycles scheduling arenas across ScheduleLoop calls; the
// experiment pipeline schedules tens of thousands of loops back to back and
// the arena slices are the dominant allocation otherwise.
var statePool = sync.Pool{New: func() any { return new(state) }}

// init binds the arena to a new input loop, reusing all prior storage.
// memo, when non-nil, supplies the shared pristine-loop facts of a
// portfolio race; ref routes feasibility probes through the scalar
// reference implementation (the differential harness's toggle).
func (st *state) init(l *ir.Loop, cfg machine.Config, budgetRatio int, strat Strategy, memo *raceMemo, ref bool) {
	st.orig = l
	st.cfg = cfg
	st.budgetRatio = budgetRatio
	st.strat = strat
	st.memo = memo
	st.ordinal = 0
	st.stats = Stats{}
	if st.loop == nil {
		st.loop = &ir.Loop{}
	}
	st.loop.Name = l.Name
	st.loop.Trip = l.Trip
	st.loop.Unroll = l.Unroll

	n := len(l.Ops)
	nc := cfg.NumClusters()
	// The packed adjacency masks hold one bit per cluster; machines wider
	// than a word fall back to the scalar reference wholesale (the bitset
	// fast path gains nothing there anyway).
	st.ref = ref || nc > 64
	if memo != nil {
		// Share every pristine-loop and machine fact the race computed
		// once. The three-index cap on lat/class forces any growOp append
		// to reallocate privately instead of writing into shared storage.
		st.lat = memo.lat[:n:n]
		st.class = memo.class[:n:n]
		st.adjMasks = memo.adjMasks
		st.allMask = memo.allMask
		st.classMask = memo.classMask
		st.basePreds, st.baseSuccs = memo.preds, memo.succs
		st.reset()
		return
	}
	st.ownLat = refill(st.ownLat, n, 0)
	st.ownClass = refill(st.ownClass, n, 0)
	for i, op := range l.Ops {
		st.ownLat[i] = op.Kind.Latency()
		st.ownClass[i] = machine.ClassOf(op.Kind)
	}
	st.lat, st.class = st.ownLat, st.ownClass
	if !st.ref {
		st.ownAdj = refill(st.ownAdj, nc, 0)
		st.allMask, st.classMask = maskInto(st.ownAdj, &cfg)
		st.adjMasks = st.ownAdj
	}
	l.PredsInto(&st.ownPreds)
	l.SuccsInto(&st.ownSuccs)
	st.basePreds, st.baseSuccs = st.ownPreds, st.ownSuccs
	st.reset()
}

// maskInto fills adj (length NumClusters) with the per-cluster ring
// adjacency bitmasks and returns the all-clusters mask and the per-class
// masks of clusters providing each FU class. Only meaningful for machines
// of at most 64 clusters (one bit per cluster).
func maskInto(adj []uint64, cfg *machine.Config) (uint64, [machine.NumClasses]uint64) {
	nc := cfg.NumClusters()
	for a := 0; a < nc; a++ {
		var m uint64
		for b := 0; b < nc; b++ {
			if cfg.Adjacent(a, b) {
				m |= 1 << uint(b)
			}
		}
		adj[a] = m
	}
	all := ^uint64(0)
	if nc < 64 {
		all = 1<<uint(nc) - 1
	}
	var cm [machine.NumClasses]uint64
	for class := machine.FUClass(0); class < machine.NumClasses; class++ {
		var m uint64
		for c := 0; c < nc; c++ {
			if cfg.FUCount(c, class) > 0 {
				m |= 1 << uint(c)
			}
		}
		cm[class] = m
	}
	return all, cm
}

// reset prepares a fresh attempt on the pristine input loop. Op structs are
// shared with the input (the scheduler never mutates them); the working op
// and dependence views alias the input outright, so an attempt that
// inserted move operations only has to drop its private copies (keeping
// their storage for the next detach) and re-point at the input.
func (st *state) reset() {
	st.allowed = nil
	if st.mutated {
		// Recapture the grown copy-on-write buffers so the next detach
		// reuses their high-water capacity, then restore the pristine view.
		st.opsArena = st.loop.Ops[:0]
		st.depsArena = st.loop.Deps[:0]
		st.mutated = false
	}
	st.loop.Ops = st.orig.Ops
	st.loop.Deps = st.orig.Deps
	n := len(st.loop.Ops)
	st.time = refill(st.time, n, -1)
	st.cluster = refill(st.cluster, n, -1)
	st.prevTime = refill(st.prevTime, n, -1)
	st.pinned = refill(st.pinned, n, -1)
	st.never = refill(st.never, n, true)
	st.preds = st.basePreds
	st.succs = st.baseSuccs
}

// detach gives the working loop private op and dependence storage before
// the first mutation of an attempt (move insertion). Until detach the
// working views alias the input, so the common no-moves attempt never
// copies the loop at all.
func (st *state) detach() {
	if st.mutated {
		return
	}
	st.mutated = true
	st.opsArena = append(st.opsArena[:0], st.loop.Ops...)
	st.loop.Ops = st.opsArena
	st.depsArena = append(st.depsArena[:0], st.loop.Deps...)
	st.loop.Deps = st.depsArena
}

// refill returns s resized to n with every element set to v, reusing the
// backing array when it is large enough.
func refill[T any](s []T, n int, v T) []T {
	if cap(s) < n {
		s = make([]T, n)
	} else {
		s = s[:n]
	}
	for i := range s {
		s[i] = v
	}
	return s
}

// uninit returns s resized to n WITHOUT clearing: the contents are
// unspecified and the caller overwrites every element before reading it.
// Scratch arrays that are fully rewritten each use (counting-sort outputs,
// Tarjan low/comp, Bellman-Ford distances reset per component) take this
// path to skip refill's clear pass.
func uninit[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// tryII attempts to schedule every operation at the given II within the
// budget. It returns true on success, leaving the placement in st.time and
// st.cluster. Later attempts get a progressively larger budget: when the
// first IIs fail because of partitioning conflicts, raw persistence at a
// slightly larger II is usually what finds the schedule.
func (st *state) tryII(ii int) bool {
	st.ii = ii
	st.table.reset(ii, &st.cfg)
	st.load = refill(st.load, st.cfg.NumClusters(), 0)
	st.computeHeights()

	wl := &st.wl
	wl.fill(st, len(st.loop.Ops))
	mult := st.ordinal
	if mult < 1 {
		mult = 1
	}
	if mult > 4 {
		mult = 4
	}
	budget := st.budgetRatio * len(st.loop.Ops) * mult
	for wl.Len() > 0 {
		if budget <= 0 {
			return false
		}
		budget--
		id := wl.pop()
		st.stats.Placements++
		t, c, estart, ok := st.findSlot(id)
		if !ok {
			if t, c, ok = st.forceSlot(id, estart, wl); !ok {
				// No cluster can ever host the op (or nothing occupies the
				// conflicting slot): the attempt is unschedulable.
				return false
			}
		}
		st.place(id, t, c)
		budget += st.settle(id, wl) * st.budgetRatio
	}
	return true
}

// earliestStart returns the earliest issue cycle permitted by the scheduled
// predecessors of id (ignoring communication latency, which findSlot folds
// into its per-cluster earliest-cycle bound).
func (st *state) earliestStart(id int) int {
	estart := 0
	for _, d := range st.preds.At(id) {
		if tf := st.time[d.From]; tf >= 0 {
			if e := tf + st.lat[d.From] - st.ii*d.Dist; e > estart {
				estart = e
			}
		}
	}
	return estart
}

// findSlot searches the II-wide window from the op's earliest start for a
// (time, cluster) placement that satisfies resources, scheduled-predecessor
// timing (including communication latency) and the ring adjacency rule.
// When the machine allows moves, a second pass accepts non-adjacent
// clusters (moves are inserted later by settle). It returns the slot and
// the earliest start it derived (the caller's forceSlot needs it on
// failure).
//
// Feasibility splits into per-op facts (earliest start, per-cluster
// scheduled flow-neighbour counts, ring adjacency to those neighbours) and
// the per-cycle fact (a free FU in the reservation table). The per-op
// facts are gathered in ONE walk over the op's edge lists — the reference
// implementation re-walks them once per candidate cluster — and the
// adjacency verdicts compress to a word: the AND of the precomputed
// per-cluster masks of every cluster holding a scheduled flow neighbour.
// The whole per-cycle scan collapses to one firstFree bitmap probe per
// cluster. The historical scan visited (cycle, cluster) pairs
// lexicographically — cycle ascending, then preference order — so taking,
// over the candidate clusters, the minimum earliest feasible cycle (ties
// to the earlier preference position) reproduces its choice exactly; the
// differential harness (ref.go) pins that equivalence on every probe.
func (st *state) findSlot(id int) (int, int, int, bool) {
	if st.ref {
		estart := st.earliestStart(id)
		t, c, ok := st.findSlotRef(id, estart)
		return t, c, estart, ok
	}
	nc := st.cfg.NumClusters()
	var cntArr [64]int32 // nc <= 64 on the packed path (init falls back otherwise)
	cnt := cntArr[:nc]
	estart := 0
	for _, d := range st.preds.At(id) {
		tf := st.time[d.From]
		if tf < 0 {
			continue
		}
		if e := tf + st.lat[d.From] - st.ii*d.Dist; e > estart {
			estart = e
		}
		if d.Kind == ir.Flow {
			cnt[st.cluster[d.From]]++
		}
	}
	for _, d := range st.succs.At(id) {
		if d.Kind == ir.Flow && st.time[d.To] >= 0 {
			cnt[st.cluster[d.To]]++
		}
	}
	adjMask := st.allMask
	for x := 0; x < nc; x++ {
		if cnt[x] > 0 {
			adjMask &= st.adjMasks[x]
		}
	}
	class := st.class[id]
	pinned := st.pinned[id]
	passes := 1
	if st.cfg.AllowMoves && pinned < 0 {
		passes = 2
	}
	end := estart + st.ii
	comm := st.cfg.CommLatency
	if st.allowed != nil {
		// Compact fallback: the candidate order is the position in the
		// mutually adjacent subset, so the historical ordered scan with its
		// cannot-beat-the-incumbent skip applies directly.
		prefs := st.allowedPrefs(class)
		for pass := 0; pass < passes; pass++ {
			requireAdj := pass == 0
			bestT, bestC := -1, -1
			for _, c := range prefs {
				if pinned >= 0 && c != pinned {
					continue
				}
				if requireAdj && adjMask>>uint(c)&1 == 0 {
					continue
				}
				t0 := estart
				if comm > 0 {
					t0 = st.minTFor(id, c)
				}
				if bestT >= 0 && t0 >= bestT {
					continue
				}
				if t, ok := st.table.firstFree(t0, end, c, class); ok && (bestT < 0 || t < bestT) {
					bestT, bestC = t, c
				}
			}
			if bestT >= 0 {
				return bestT, bestC, estart, true
			}
		}
		return 0, 0, estart, false
	}
	// Free placement: take the argmin over feasible candidates of
	// (cycle, strategy key) — minimal cycle, ties to the key that sorts
	// first. The reference scan walks (cycle, preference-position)
	// lexicographically, and preference position is exactly key rank, so
	// the argmin is the same slot without ever ordering the candidates;
	// keys are computed lazily, only when a candidate survives the cycle
	// comparison.
	for pass := 0; pass < passes; pass++ {
		requireAdj := pass == 0
		bestT, bestC := -1, -1
		var bestKey clusterPref
		for m := st.classMask[class]; m != 0; m &= m - 1 {
			c := bits.TrailingZeros64(m)
			if pinned >= 0 && c != pinned {
				continue
			}
			if requireAdj && adjMask>>uint(c)&1 == 0 {
				continue
			}
			t0 := estart
			if comm > 0 {
				t0 = st.minTFor(id, c)
			}
			if bestC >= 0 {
				if t0 > bestT {
					continue // cannot reach the incumbent's cycle
				}
				if t0 == bestT {
					p := st.prefKey(id, c, cnt)
					if !p.before(bestKey) {
						continue // could only tie, and loses the tie-break
					}
					if t, ok := st.table.firstFree(t0, end, c, class); ok && t == bestT {
						bestC, bestKey = c, p
					}
					continue
				}
			}
			t, ok := st.table.firstFree(t0, end, c, class)
			if !ok {
				continue
			}
			if bestC < 0 || t < bestT {
				bestT, bestC, bestKey = t, c, st.prefKey(id, c, cnt)
			} else if t == bestT {
				if p := st.prefKey(id, c, cnt); p.before(bestKey) {
					bestC, bestKey = c, p
				}
			}
		}
		if bestC >= 0 {
			return bestT, bestC, estart, true
		}
	}
	return 0, 0, estart, false
}

// minTFor returns the earliest cycle at which cluster c can issue op id
// given its scheduled predecessors, folding in the communication latency
// of cross-cluster flow values. It is always >= earliestStart, so callers
// on comm-latency machines use it as the per-cluster window start
// directly.
func (st *state) minTFor(id, c int) int {
	req := 0
	for _, d := range st.preds.At(id) {
		tf := st.time[d.From]
		if tf < 0 {
			continue
		}
		lat := st.lat[d.From]
		if d.Kind == ir.Flow && st.cluster[d.From] != c {
			lat += st.cfg.CommLatency
		}
		if r := tf + lat - st.ii*d.Dist; r > req {
			req = r
		}
	}
	return req
}

// prefKey computes one cluster's strategy-specific ranking key (see the
// Strategy catalogue in strategy.go; StrategyBaseline reproduces the
// historical order exactly) from the per-cluster scheduled flow-neighbour
// counts.
func (st *state) prefKey(id, c int, cnt []int32) clusterPref {
	p := clusterPref{c: c}
	neigh := int(cnt[c])
	switch st.strat {
	case StrategyLoadBalanced:
		p.k1, p.k2 = st.load[c], -neigh
	case StrategyAffinity:
		commDist := 0
		for x := range cnt {
			if cnt[x] > 0 {
				commDist += int(cnt[x]) * st.cfg.RingDistance(x, c)
			}
		}
		p.k1, p.k2 = commDist, -neigh
	case StrategyRoundRobin:
		p.k1 = st.cfg.RingDistance(id%st.cfg.NumClusters(), c)
	case StrategyPerturb:
		h := prefHash(id, c)
		p.k1, p.k2, p.k3 = -neigh, st.load[c]+int(h&1), int(h>>1&0xffff)
	default: // StrategyBaseline
		p.k1, p.k2 = -neigh, st.load[c]
	}
	return p
}

// allowedPrefs is the compact fallback's cluster ordering: placement
// restricted to a mutually adjacent cluster subset, making the ring rule
// trivial. If the subset lacks the class entirely, fall back to the lowest
// cluster providing it.
func (st *state) allowedPrefs(class machine.FUClass) []int {
	out := st.prefOut[:0]
	for _, c := range st.allowed {
		if st.cfg.FUCount(c, class) > 0 {
			out = append(out, c)
		}
	}
	if len(out) == 0 {
		for c := 0; c < st.cfg.NumClusters(); c++ {
			if st.cfg.FUCount(c, class) > 0 {
				out = append(out, c)
				break
			}
		}
	}
	st.prefOut = out
	return out
}

// forceSlot is Rau's conflict-driven placement: when no conflict-free slot
// exists in the window, place anyway — at estart for never-scheduled ops,
// otherwise strictly later than the previous placement to guarantee
// progress — and evict whatever stands in the way. The false return covers
// the unschedulable degenerate cases: no cluster offers the op's FU class,
// or the conflicting slot has no occupant to evict (a zero-FU slot).
func (st *state) forceSlot(id, estart int, wl *worklist) (int, int, bool) {
	t := estart
	if !st.never[id] && st.prevTime[id]+1 > t {
		t = st.prevTime[id] + 1
	}
	class := st.class[id]
	if p := st.pinned[id]; p >= 0 {
		if st.slotFree(t%st.ii, p, class) {
			return t, p, true
		}
		return st.evictLowest(t, p, class, wl)
	}
	if st.ref {
		// Reference path: ordered preference list, first cluster with a
		// free unit at this row, else evict from the top preference.
		prefs := st.clusterPrefsRef(id)
		if len(prefs) == 0 {
			return 0, 0, false
		}
		for _, c := range prefs {
			if st.table.freeScalar(t%st.ii, c, class) {
				return t, c, true
			}
		}
		return st.evictLowest(t, prefs[0], class, wl)
	}
	row := t % st.ii
	if st.allowed != nil {
		// Compact fallback: positional order — first subset cluster with a
		// free unit, else evict from the subset head.
		prefs := st.allowedPrefs(class)
		if len(prefs) == 0 {
			return 0, 0, false
		}
		for _, c := range prefs {
			if st.table.free(row, c, class) {
				return t, c, true
			}
		}
		return st.evictLowest(t, prefs[0], class, wl)
	}
	// Packed path: "first preference with a free unit" is the minimal key
	// among free candidates, and "the first preference" is the minimal key
	// overall — one unsorted scan finds both.
	nc := st.cfg.NumClusters()
	var cntArr [64]int32 // nc <= 64 on the packed path (init falls back otherwise)
	cnt := cntArr[:nc]
	for _, d := range st.preds.At(id) {
		if d.Kind == ir.Flow && st.time[d.From] >= 0 {
			cnt[st.cluster[d.From]]++
		}
	}
	for _, d := range st.succs.At(id) {
		if d.Kind == ir.Flow && st.time[d.To] >= 0 {
			cnt[st.cluster[d.To]]++
		}
	}
	freeC, allC := -1, -1
	var freeKey, allKey clusterPref
	for m := st.classMask[class]; m != 0; m &= m - 1 {
		c := bits.TrailingZeros64(m)
		p := st.prefKey(id, c, cnt)
		if allC < 0 || p.before(allKey) {
			allC, allKey = c, p
		}
		if st.table.free(row, c, class) && (freeC < 0 || p.before(freeKey)) {
			freeC, freeKey = c, p
		}
	}
	if allC < 0 {
		return 0, 0, false
	}
	if freeC >= 0 {
		return t, freeC, true
	}
	return st.evictLowest(t, allC, class, wl)
}

// evictLowest evicts the lowest-priority occupant (minimal height, then
// lowest ID — the occupant lists are ID-ordered by construction) of the
// (t mod II, cluster, class) slot and claims it for the caller. It fails
// only on a zero-FU slot, which has nothing to evict.
func (st *state) evictLowest(t, c int, class machine.FUClass, wl *worklist) (int, int, bool) {
	occ := st.table.occupants(t%st.ii, c, class)
	if len(occ) == 0 {
		return 0, 0, false
	}
	victim := occ[0]
	for _, o := range occ {
		if st.height[o] < st.height[victim] {
			victim = o
		}
	}
	st.evict(victim, wl)
	return t, c, true
}

// slotFree probes one (row, cluster, class) slot, through the scalar
// reference when the run is pinned to it.
func (st *state) slotFree(row, cluster int, class machine.FUClass) bool {
	if st.ref {
		return st.table.freeScalar(row, cluster, class)
	}
	return st.table.free(row, cluster, class)
}

// place commits op id to (t, c) in the reservation table.
func (st *state) place(id, t, c int) {
	st.time[id] = t
	st.cluster[id] = c
	st.prevTime[id] = t
	st.never[id] = false
	st.table.add(t%st.ii, c, st.class[id], id)
	st.load[c]++
}

// evict unschedules op id and requeues it.
func (st *state) evict(id int, wl *worklist) {
	if st.time[id] < 0 {
		return
	}
	st.table.remove(st.time[id]%st.ii, st.cluster[id], st.class[id], id)
	st.load[st.cluster[id]]--
	st.time[id] = -1
	st.cluster[id] = -1
	st.stats.Evictions++
	wl.push(id)
}

// settle resolves the consequences of placing op id: it evicts scheduled
// neighbours whose dependence constraints the new placement violates and —
// when moves are allowed — replaces non-adjacent flow dependences with
// chains of pinned move operations. It returns the number of operations
// added to the loop (so the caller can extend the budget).
//
// Without moves the three historical passes (violated successors, comm-
// violated predecessors, non-adjacent neighbours) fuse into one walk per
// edge list. The fusion is exact: an eviction only clears a placement —
// it never changes the cluster of an op that stays placed — so every
// per-edge verdict is the same whenever it is evaluated, evict is
// idempotent, and the evicted SET is the union of the same conditions.
// The worklist orders by a total key (height desc, ID asc), so its pop
// sequence depends only on that set, not on insertion order; the digest
// and differential tests pin this equivalence.
func (st *state) settle(id int, wl *worklist) int {
	if st.ref || st.cfg.AllowMoves {
		return st.settleSlow(id, wl)
	}
	t, c := st.time[id], st.cluster[id]
	lat := st.lat[id]
	comm := st.cfg.CommLatency
	for _, d := range st.succs.At(id) {
		ts := st.time[d.To]
		if ts < 0 {
			continue
		}
		if d.Kind == ir.Flow && st.cluster[d.To] != c {
			if st.adjMasks[c]>>uint(st.cluster[d.To])&1 == 0 {
				st.evict(d.To, wl)
				continue
			}
			if ts+st.ii*d.Dist < t+lat+comm {
				st.evict(d.To, wl)
			}
			continue
		}
		if ts+st.ii*d.Dist < t+lat {
			st.evict(d.To, wl)
		}
	}
	for _, d := range st.preds.At(id) {
		if d.Kind != ir.Flow {
			continue
		}
		tf := st.time[d.From]
		if tf < 0 || st.cluster[d.From] == c {
			continue
		}
		if st.adjMasks[c]>>uint(st.cluster[d.From])&1 == 0 {
			st.evict(d.From, wl)
			continue
		}
		if comm > 0 && t+st.ii*d.Dist < tf+st.lat[d.From]+comm {
			st.evict(d.From, wl)
		}
	}
	return 0
}

// settleSlow is the reference/three-pass settle, required whenever the run
// is pinned to the scalar reference or the machine allows move insertion
// (insertMoveChain rebuilds the adjacency views mid-pass, which the fused
// walk cannot tolerate).
func (st *state) settleSlow(id int, wl *worklist) int {
	t, c := st.time[id], st.cluster[id]
	lat := st.lat[id]
	// Dependence-violated successors are evicted (they will be rescheduled
	// later at a feasible time).
	for _, d := range st.succs.At(id) {
		ts := st.time[d.To]
		if ts < 0 {
			continue
		}
		l := lat
		if d.Kind == ir.Flow && st.cluster[d.To] != c {
			l += st.cfg.CommLatency
		}
		if ts+st.ii*d.Dist < t+l {
			st.evict(d.To, wl)
		}
	}
	// Predecessors can only be violated through communication latency
	// (earliestStart covered the base latency).
	if st.cfg.CommLatency > 0 {
		for _, d := range st.preds.At(id) {
			tf := st.time[d.From]
			if tf < 0 || d.Kind != ir.Flow || st.cluster[d.From] == c {
				continue
			}
			if t+st.ii*d.Dist < tf+st.lat[d.From]+st.cfg.CommLatency {
				st.evict(d.From, wl)
			}
		}
	}
	// Ring adjacency. The op's edges are snapshotted first: insertMoveChain
	// rebuilds the adjacency views in place, which would otherwise clobber
	// the edge lists mid-iteration and leak this placement's new move edges
	// into the same pass.
	edges := st.settleBuf[:0]
	edges = append(edges, st.preds.At(id)...)
	edges = append(edges, st.succs.At(id)...)
	st.settleBuf = edges
	added := 0
	for _, d := range edges {
		if d.Kind != ir.Flow {
			continue
		}
		other := d.From + d.To - id // the other endpoint
		if st.time[other] < 0 || st.cfg.Adjacent(st.cluster[d.From], st.cluster[d.To]) {
			continue
		}
		if st.cfg.AllowMoves {
			added += st.insertMoveChain(d, wl)
		} else {
			st.evict(other, wl)
		}
	}
	return added
}

// computeHeights computes Rau's height-based priority: the length of the
// longest latency path from the issue of each op to the end of the
// iteration, with loop-carried edges discounted by II*distance. With
// II >= RecMII there is no positive cycle, so the fixpoint converges within
// numOps passes.
//
// Heights depend only on the pristine graph and the II, so a portfolio
// race computes them once per II in the shared raceMemo and every racing
// strategy copies the result; only an attempt that grew the graph with
// move operations recomputes privately.
func (st *state) computeHeights() {
	if !st.mutated && st.memo != nil {
		st.height = append(st.height[:0], st.memo.heightsFor(st.ii)...)
		return
	}
	st.height = heightsInto(st.height, st.lat, st.loop.Deps, st.ii, len(st.loop.Ops))
}

// heightsInto computes the height fixpoint into h (reusing its storage):
// each op starts at its own latency and relaxes upward along dependences
// discounted by II*distance. The fixpoint is the unique least solution of
// the max-path equations, so the result is independent of the order deps
// are visited in — only the pass count varies. Each pass walks the list
// BACKWARD: height relaxes h[From] from h[To], and dependence lists are in
// practice emitted close to topological order (producers before consumers),
// so the reverse walk sees consumers sinks-first and the acyclic part
// converges in one pass plus one verification pass instead of one pass per
// path level. Adversarial orders still converge within the n+1-pass bound.
func heightsInto(h, lat []int, deps []ir.Dep, ii, n int) []int {
	h = refill(h, n, 0)
	copy(h, lat[:n])
	for iter := 0; iter < n+1; iter++ {
		changed := false
		for i := len(deps) - 1; i >= 0; i-- {
			d := deps[i]
			if v := h[d.To] + lat[d.From] - ii*d.Dist; v > h[d.From] {
				h[d.From] = v
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return h
}

// worklist is a max-heap of unscheduled op IDs ordered by height (ties by
// lower ID for determinism). Membership is tracked in a flat bool array so
// an op is never queued twice. The heap is hand-rolled — container/heap
// boxes every pushed ID into an interface — but replicates container/heap's
// sift algorithms exactly, so the pop order is bit-for-bit the same. Its
// storage lives in the state arena and is reused across attempts.
//
// The comparison key is packed into one word per entry:
// height<<32 | ^id. Heights are non-negative path lengths (far below
// 2^31), so a single uint64 compare realises exactly (height desc, ID asc)
// without the two dependent loads per comparison the indirect form costs.
// Keys are recomputed wholesale by fix() when the heights change.
type worklist struct {
	st   *state
	ids  []int
	keys []uint64 // parallel to ids: height[id]<<32 | ^uint32(id)
	in   []bool
}

// reset empties the worklist and sizes the membership array for n ops.
func (w *worklist) reset(st *state, n int) {
	w.st = st
	w.ids = w.ids[:0]
	w.keys = w.keys[:0]
	w.in = refill(w.in, n, false)
}

// fill seeds the worklist with every op ID in one O(n) heapify pass
// (sequential pushes cost O(n log n)). The internal heap layout differs
// from a push-built heap, but each pop extracts the unique maximum of a
// total order, so the pop sequence — the only observable — is identical.
func (w *worklist) fill(st *state, n int) {
	w.st = st
	w.in = refill(w.in, n, true)
	w.ids = w.ids[:0]
	w.keys = w.keys[:0]
	for id := 0; id < n; id++ {
		w.ids = append(w.ids, id)
		w.keys = append(w.keys, w.key(id))
	}
	for i := n/2 - 1; i >= 0; i-- {
		w.down(i, n)
	}
}

func (w *worklist) Len() int { return len(w.ids) }

func (w *worklist) key(id int) uint64 {
	return uint64(uint32(w.st.height[id]))<<32 | uint64(^uint32(id))
}

// less reports whether heap slot i sorts before slot j (a max-heap on
// height, ties by lower ID — one packed compare).
func (w *worklist) less(i, j int) bool { return w.keys[i] > w.keys[j] }

func (w *worklist) swap(i, j int) {
	w.ids[i], w.ids[j] = w.ids[j], w.ids[i]
	w.keys[i], w.keys[j] = w.keys[j], w.keys[i]
}

// fix restores the heap invariant over the whole array (used after the
// priorities change wholesale when the move extension grows the graph).
// The packed keys cache the heights, so they are rebuilt first.
func (w *worklist) fix() {
	for i, id := range w.ids {
		w.keys[i] = w.key(id)
	}
	n := len(w.ids)
	for i := n/2 - 1; i >= 0; i-- {
		w.down(i, n)
	}
}

func (w *worklist) up(j int) {
	for {
		i := (j - 1) / 2 // parent
		if i == j || !w.less(j, i) {
			break
		}
		w.swap(i, j)
		j = i
	}
}

func (w *worklist) down(i0, n int) {
	i := i0
	for {
		j1 := 2*i + 1
		if j1 >= n || j1 < 0 { // j1 < 0 after int overflow
			break
		}
		j := j1 // left child
		if j2 := j1 + 1; j2 < n && w.less(j2, j1) {
			j = j2 // = 2*i + 2  // right child
		}
		if !w.less(j, i) {
			break
		}
		w.swap(i, j)
		i = j
	}
}

func (w *worklist) push(id int) {
	if w.in[id] {
		return
	}
	w.in[id] = true
	w.ids = append(w.ids, id)
	w.keys = append(w.keys, w.key(id))
	w.up(len(w.ids) - 1)
}

func (w *worklist) pop() int {
	n := len(w.ids) - 1
	w.swap(0, n)
	w.down(0, n)
	id := w.ids[n]
	w.ids = w.ids[:n]
	w.keys = w.keys[:n]
	w.in[id] = false
	return id
}
