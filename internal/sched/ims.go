package sched

import (
	"container/heap"
	"sort"

	"vliwq/internal/ir"
	"vliwq/internal/machine"
)

// state carries one scheduling run. A run makes several II attempts; each
// attempt works on fresh per-op arrays. When the move extension grows the
// loop, reset restores the pristine input for the next attempt.
type state struct {
	orig        *ir.Loop
	loop        *ir.Loop
	cfg         machine.Config
	budgetRatio int

	ii       int
	time     []int // issue cycle, -1 = unscheduled
	cluster  []int
	prevTime []int // last forced placement, for Rau's progress rule
	never    []bool
	pinned   []int // fixed cluster for inserted moves, -1 otherwise
	height   []int
	preds    [][]ir.Dep
	succs    [][]ir.Dep
	table    *mrt
	load     []int // cached per-cluster reservation counts
	allowed  []int // compact-mode cluster subset (nil = free placement)

	stats Stats
}

func newState(l *ir.Loop, cfg machine.Config, budgetRatio int) *state {
	st := &state{orig: l, cfg: cfg, budgetRatio: budgetRatio}
	st.reset()
	return st
}

// reset prepares a fresh attempt on the pristine input loop.
func (st *state) reset() {
	st.allowed = nil
	st.loop = st.orig.Clone()
	n := len(st.loop.Ops)
	st.time = fillInt(n, -1)
	st.cluster = fillInt(n, -1)
	st.prevTime = fillInt(n, -1)
	st.pinned = fillInt(n, -1)
	st.never = make([]bool, n)
	for i := range st.never {
		st.never[i] = true
	}
	st.preds = st.loop.Preds()
	st.succs = st.loop.Succs()
}

func fillInt(n, v int) []int {
	s := make([]int, n)
	for i := range s {
		s[i] = v
	}
	return s
}

// tryII attempts to schedule every operation at the given II within the
// budget. It returns true on success, leaving the placement in st.time and
// st.cluster. Later attempts get a progressively larger budget: when the
// first IIs fail because of partitioning conflicts, raw persistence at a
// slightly larger II is usually what finds the schedule.
func (st *state) tryII(ii int) bool {
	st.ii = ii
	st.table = newMRT(ii, &st.cfg)
	st.load = make([]int, st.cfg.NumClusters())
	st.computeHeights()

	wl := &worklist{st: st}
	heap.Init(wl)
	for id := range st.loop.Ops {
		wl.push(id)
	}
	mult := st.stats.Attempts
	if mult < 1 {
		mult = 1
	}
	if mult > 4 {
		mult = 4
	}
	budget := st.budgetRatio * len(st.loop.Ops) * mult
	for wl.Len() > 0 {
		if budget <= 0 {
			return false
		}
		budget--
		id := wl.pop()
		st.stats.Placements++
		estart := st.earliestStart(id)
		t, c, ok := st.findSlot(id, estart)
		if !ok {
			t, c = st.forceSlot(id, estart, wl)
		}
		st.place(id, t, c)
		budget += st.settle(id, wl) * st.budgetRatio
	}
	return true
}

// earliestStart returns the earliest issue cycle permitted by the scheduled
// predecessors of id (ignoring communication latency, which is checked per
// candidate cluster in feasible).
func (st *state) earliestStart(id int) int {
	estart := 0
	for _, d := range st.preds[id] {
		if tf := st.time[d.From]; tf >= 0 {
			if e := tf + st.loop.Ops[d.From].Kind.Latency() - st.ii*d.Dist; e > estart {
				estart = e
			}
		}
	}
	return estart
}

// findSlot searches the II-wide window from estart for a (time, cluster)
// placement that satisfies resources, scheduled-predecessor timing
// (including communication latency) and the ring adjacency rule. When the
// machine allows moves, a second pass accepts non-adjacent clusters (moves
// are inserted later by settle).
func (st *state) findSlot(id, estart int) (int, int, bool) {
	prefs := st.clusterPrefs(id)
	passes := 1
	if st.cfg.AllowMoves && st.pinned[id] < 0 {
		passes = 2
	}
	for pass := 0; pass < passes; pass++ {
		requireAdj := pass == 0
		for t := estart; t < estart+st.ii; t++ {
			for _, c := range prefs {
				if st.feasible(id, t, c, requireAdj) {
					return t, c, true
				}
			}
		}
	}
	return 0, 0, false
}

// feasible reports whether op id can issue at cycle t on cluster c.
func (st *state) feasible(id, t, c int, requireAdj bool) bool {
	if p := st.pinned[id]; p >= 0 && c != p {
		return false
	}
	op := st.loop.Ops[id]
	if !st.table.free(t%st.ii, c, machine.ClassOf(op.Kind)) {
		return false
	}
	for _, d := range st.preds[id] {
		tf := st.time[d.From]
		if tf < 0 {
			continue
		}
		lat := st.loop.Ops[d.From].Kind.Latency()
		if d.Kind == ir.Flow && st.cluster[d.From] != c {
			lat += st.cfg.CommLatency
		}
		if t+st.ii*d.Dist < tf+lat {
			return false
		}
	}
	if requireAdj {
		for _, d := range st.preds[id] {
			if d.Kind == ir.Flow && st.time[d.From] >= 0 && !st.cfg.Adjacent(st.cluster[d.From], c) {
				return false
			}
		}
		for _, d := range st.succs[id] {
			if d.Kind == ir.Flow && st.time[d.To] >= 0 && !st.cfg.Adjacent(c, st.cluster[d.To]) {
				return false
			}
		}
	}
	return true
}

// clusterPrefs orders the clusters for slot search: clusters holding more
// already-scheduled flow neighbours first, then lighter MRT load, then
// index. Clusters without an FU of the op's class are excluded.
func (st *state) clusterPrefs(id int) []int {
	class := machine.ClassOf(st.loop.Ops[id].Kind)
	if st.allowed != nil {
		// Compact fallback mode: placement restricted to a mutually
		// adjacent cluster subset, making the ring rule trivial. If the
		// subset lacks the class entirely, fall back to the lowest
		// cluster providing it.
		var out []int
		for _, c := range st.allowed {
			if st.cfg.FUCount(c, class) > 0 {
				out = append(out, c)
			}
		}
		if len(out) > 0 {
			return out
		}
		for c := 0; c < st.cfg.NumClusters(); c++ {
			if st.cfg.FUCount(c, class) > 0 {
				return []int{c}
			}
		}
		return nil
	}
	type pref struct{ c, neigh, load int }
	var prefs []pref
	for c := 0; c < st.cfg.NumClusters(); c++ {
		if st.cfg.FUCount(c, class) == 0 {
			continue
		}
		p := pref{c: c, load: st.load[c]}
		for _, d := range st.preds[id] {
			if d.Kind == ir.Flow && st.time[d.From] >= 0 && st.cluster[d.From] == c {
				p.neigh++
			}
		}
		for _, d := range st.succs[id] {
			if d.Kind == ir.Flow && st.time[d.To] >= 0 && st.cluster[d.To] == c {
				p.neigh++
			}
		}
		prefs = append(prefs, p)
	}
	sort.Slice(prefs, func(i, j int) bool {
		if prefs[i].neigh != prefs[j].neigh {
			return prefs[i].neigh > prefs[j].neigh
		}
		if prefs[i].load != prefs[j].load {
			return prefs[i].load < prefs[j].load
		}
		return prefs[i].c < prefs[j].c
	})
	out := make([]int, len(prefs))
	for i, p := range prefs {
		out[i] = p.c
	}
	return out
}

// forceSlot is Rau's conflict-driven placement: when no conflict-free slot
// exists in the window, place anyway — at estart for never-scheduled ops,
// otherwise strictly later than the previous placement to guarantee
// progress — and evict whatever stands in the way.
func (st *state) forceSlot(id, estart int, wl *worklist) (int, int) {
	t := estart
	if !st.never[id] && st.prevTime[id]+1 > t {
		t = st.prevTime[id] + 1
	}
	prefs := st.clusterPrefs(id)
	if p := st.pinned[id]; p >= 0 {
		prefs = []int{p}
	}
	// Prefer a cluster with a free unit at this row; otherwise evict the
	// lowest-priority occupant of the first preference.
	class := machine.ClassOf(st.loop.Ops[id].Kind)
	for _, c := range prefs {
		if st.table.free(t%st.ii, c, class) {
			return t, c
		}
	}
	c := prefs[0]
	occ := st.table.occupants(t%st.ii, c, class)
	victim := occ[0]
	for _, o := range occ {
		if st.height[o] < st.height[victim] {
			victim = o
		}
	}
	st.evict(victim, wl)
	return t, c
}

// place commits op id to (t, c) in the reservation table.
func (st *state) place(id, t, c int) {
	st.time[id] = t
	st.cluster[id] = c
	st.prevTime[id] = t
	st.never[id] = false
	st.table.add(t%st.ii, c, machine.ClassOf(st.loop.Ops[id].Kind), id)
	st.load[c]++
}

// evict unschedules op id and requeues it.
func (st *state) evict(id int, wl *worklist) {
	if st.time[id] < 0 {
		return
	}
	st.table.remove(st.time[id]%st.ii, st.cluster[id], machine.ClassOf(st.loop.Ops[id].Kind), id)
	st.load[st.cluster[id]]--
	st.time[id] = -1
	st.cluster[id] = -1
	st.stats.Evictions++
	wl.push(id)
}

// settle resolves the consequences of placing op id: it evicts scheduled
// neighbours whose dependence constraints the new placement violates and —
// when moves are allowed — replaces non-adjacent flow dependences with
// chains of pinned move operations. It returns the number of operations
// added to the loop (so the caller can extend the budget).
func (st *state) settle(id int, wl *worklist) int {
	t, c := st.time[id], st.cluster[id]
	lat := st.loop.Ops[id].Kind.Latency()
	// Dependence-violated successors are evicted (they will be rescheduled
	// later at a feasible time).
	for _, d := range st.succs[id] {
		ts := st.time[d.To]
		if ts < 0 {
			continue
		}
		l := lat
		if d.Kind == ir.Flow && st.cluster[d.To] != c {
			l += st.cfg.CommLatency
		}
		if ts+st.ii*d.Dist < t+l {
			st.evict(d.To, wl)
		}
	}
	// Predecessors can only be violated through communication latency
	// (earliestStart covered the base latency).
	if st.cfg.CommLatency > 0 {
		for _, d := range st.preds[id] {
			tf := st.time[d.From]
			if tf < 0 || d.Kind != ir.Flow || st.cluster[d.From] == c {
				continue
			}
			if t+st.ii*d.Dist < tf+st.loop.Ops[d.From].Kind.Latency()+st.cfg.CommLatency {
				st.evict(d.From, wl)
			}
		}
	}
	// Ring adjacency.
	added := 0
	for _, deps := range [2][][]ir.Dep{st.preds, st.succs} {
		for _, d := range deps[id] {
			if d.Kind != ir.Flow {
				continue
			}
			other := d.From + d.To - id // the other endpoint
			if st.time[other] < 0 || st.cfg.Adjacent(st.cluster[d.From], st.cluster[d.To]) {
				continue
			}
			if st.cfg.AllowMoves {
				added += st.insertMoveChain(d, wl)
			} else {
				st.evict(other, wl)
			}
		}
	}
	return added
}

// computeHeights computes Rau's height-based priority: the length of the
// longest latency path from the issue of each op to the end of the
// iteration, with loop-carried edges discounted by II*distance. With
// II >= RecMII there is no positive cycle, so the fixpoint converges within
// numOps passes.
func (st *state) computeHeights() {
	n := len(st.loop.Ops)
	h := make([]int, n)
	for id, op := range st.loop.Ops {
		h[id] = op.Kind.Latency()
	}
	for iter := 0; iter < n+1; iter++ {
		changed := false
		for _, d := range st.loop.Deps {
			lat := st.loop.Ops[d.From].Kind.Latency()
			if v := h[d.To] + lat - st.ii*d.Dist; v > h[d.From] {
				h[d.From] = v
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	st.height = h
}

// worklist is a max-heap of unscheduled op IDs ordered by height (ties by
// lower ID for determinism). Membership is tracked so an op is never queued
// twice.
type worklist struct {
	st  *state
	ids []int
	in  map[int]bool
}

func (w *worklist) Len() int { return len(w.ids) }
func (w *worklist) Less(i, j int) bool {
	hi, hj := w.st.height[w.ids[i]], w.st.height[w.ids[j]]
	if hi != hj {
		return hi > hj
	}
	return w.ids[i] < w.ids[j]
}
func (w *worklist) Swap(i, j int) { w.ids[i], w.ids[j] = w.ids[j], w.ids[i] }
func (w *worklist) Push(x any)    { w.ids = append(w.ids, x.(int)) }
func (w *worklist) Pop() any      { x := w.ids[len(w.ids)-1]; w.ids = w.ids[:len(w.ids)-1]; return x }
func (w *worklist) push(id int) {
	if w.in == nil {
		w.in = map[int]bool{}
	}
	if w.in[id] {
		return
	}
	w.in[id] = true
	heap.Push(w, id)
}
func (w *worklist) pop() int {
	id := heap.Pop(w).(int)
	delete(w.in, id)
	return id
}
