// The exact branch-and-bound searcher behind Options.Effort: optimal.
//
// For one candidate II the searcher answers the exact decision question:
// does ANY partitioned modulo schedule at this II exist? It branches over
// (cluster, row) assignments per operation in a fixed static order and
// prunes with the same packed machinery the heuristic scheduler uses
// (DESIGN.md §14):
//
//   - the bitset MRT row-full words (§13) reject saturated (row, cluster,
//     class) slots with one AND;
//   - the ring-adjacency cluster masks cut the cluster dimension to the
//     intersection of the placed flow neighbours' adjacency words;
//   - a forward occupancy check prunes a placement whose unplaced flow
//     neighbours would be left without any adjacent, capable, non-full
//     cluster (the resource-class occupancy bound);
//   - a difference-constraint propagation over stage potentials rejects
//     placements whose timing constraints form a positive-weight cycle —
//     the same positive-cycle criterion RecMII is built on (mii.go).
//
// The key to exactness without a schedule-length horizon: a row/cluster
// assignment extends to concrete start cycles t = row + II*k if and only if
// the stage counters k satisfy the difference constraints
// k[to] - k[from] >= ceil((L + row[from] - row[to]) / II) - dist for every
// dependence, which holds iff the constraint graph has no positive cycle.
// Rows and clusters are the only finite decisions; the unbounded time
// dimension is discharged by the cycle test, so an exhausted search is a
// proof that no schedule at this II exists, not merely that none was found
// within a horizon.
//
// Determinism: the static op order (height desc, ID asc), the candidate
// order (cluster asc, row asc) and the node budget are all independent of
// timing and worker count, so identical inputs explore the identical tree.
// Rotation symmetry is broken once: the first placed op is pinned to row 0,
// and — on machines whose clusters are identical — to cluster 0, since any
// schedule can be rotated in time and around the ring to such a
// representative.

package sched

import (
	"context"
	"math/bits"
	"sort"

	"vliwq/internal/ir"
	"vliwq/internal/machine"
)

// exactStatus is the outcome of one exact search (or subtree).
type exactStatus int

const (
	// exactFound: a complete placement exists; the searcher state holds it.
	exactFound exactStatus = iota
	// exactInfeasible: the search space is exhausted — a proof that no
	// schedule at this II exists (for a subtree: no completion exists).
	exactInfeasible
	// exactAborted: the node budget or the context deadline cut the search
	// before exhaustion; nothing is proved about this II.
	exactAborted
)

// exactSearcher is the per-loop search arena, reused across the II ladder
// of one scheduleOptimal call.
type exactSearcher struct {
	l   *ir.Loop
	cfg *machine.Config
	n   int
	ii  int

	lat          []int
	class        []machine.FUClass
	preds, succs ir.Adj
	adjMasks     []uint64
	classMask    [machine.NumClasses]uint64
	symmetric    bool // identical clusters: ring rotation is an automorphism

	order  []int32 // static placement order: height desc, then ID asc
	height []int

	table  mrt
	placed []bool
	rowOf  []int32
	cluOf  []int32

	// Stage-potential state for the difference-constraint propagation.
	pot      []int   // k[i]: stage counter witness, >= 0
	pathLen  []int32 // relaxation walk length within the current epoch
	epoch    []int32 // propagation epoch a pathLen entry belongs to
	curEpoch int32
	queue    []int32
	undo     []potUndo

	ctx    context.Context
	budget int64
	nodes  int64 // placements tried this search (the budget unit)
	pruned int64 // candidate placements rejected by a pruning rule
	ctxCut bool  // the abort came from ctx, not the node budget
}

// potUndo records one potential overwrite so backtracking restores the
// exact pre-placement fixpoint.
type potUndo struct {
	id  int32
	pot int
}

// symmetricClusters reports whether every cluster is identical, in which
// case rotating cluster indices is an automorphism of the ring machine and
// the search may pin the first operation's cluster.
func symmetricClusters(cfg *machine.Config) bool {
	for i := 1; i < cfg.NumClusters(); i++ {
		if cfg.Clusters[i] != cfg.Clusters[0] {
			return false
		}
	}
	return true
}

// newExactSearcher builds the arena for one pristine loop on one machine.
// The caller guarantees NumClusters <= 64 (the packed-mask invariant).
func newExactSearcher(l *ir.Loop, cfg *machine.Config) *exactSearcher {
	n := len(l.Ops)
	ex := &exactSearcher{l: l, cfg: cfg, n: n}
	ex.lat = make([]int, n)
	ex.class = make([]machine.FUClass, n)
	for i, op := range l.Ops {
		ex.lat[i] = op.Kind.Latency()
		ex.class[i] = machine.ClassOf(op.Kind)
	}
	l.PredsInto(&ex.preds)
	l.SuccsInto(&ex.succs)
	ex.adjMasks = make([]uint64, cfg.NumClusters())
	_, ex.classMask = maskInto(ex.adjMasks, cfg)
	ex.symmetric = symmetricClusters(cfg)
	ex.order = make([]int32, n)
	ex.placed = make([]bool, n)
	ex.rowOf = make([]int32, n)
	ex.cluOf = make([]int32, n)
	ex.pot = make([]int, n)
	ex.pathLen = make([]int32, n)
	ex.epoch = make([]int32, n)
	return ex
}

// search runs the exact decision procedure for one II under a node budget
// and a context. On exactFound the searcher holds the complete placement
// (read it with schedule); on exactAborted, ctxCut tells a deadline cut
// from a budget cut.
func (ex *exactSearcher) search(ctx context.Context, ii int, budget int64) exactStatus {
	ex.ii = ii
	ex.ctx = ctx
	ex.budget = budget
	ex.nodes = 0
	ex.pruned = 0
	ex.ctxCut = false
	ex.undo = ex.undo[:0]
	ex.table.reset(ii, ex.cfg)
	for i := range ex.placed {
		ex.placed[i] = false
	}
	ex.height = heightsInto(ex.height, ex.lat, ex.l.Deps, ii, ex.n)
	for i := range ex.order {
		ex.order[i] = int32(i)
	}
	sort.Slice(ex.order, func(a, b int) bool {
		x, y := ex.order[a], ex.order[b]
		if ex.height[x] != ex.height[y] {
			return ex.height[x] > ex.height[y]
		}
		return x < y
	})
	return ex.dfs(0)
}

// clusterMask returns the clusters y may still occupy: those providing its
// FU class, intersected with the ring-adjacency words of its placed flow
// neighbours. A zero mask is a proof that no completion places y.
func (ex *exactSearcher) clusterMask(y int) uint64 {
	mask := ex.classMask[ex.class[y]]
	for _, d := range ex.preds.At(y) {
		if d.Kind == ir.Flow && d.From != y && ex.placed[d.From] {
			mask &= ex.adjMasks[ex.cluOf[d.From]]
		}
	}
	for _, d := range ex.succs.At(y) {
		if d.Kind == ir.Flow && d.To != y && ex.placed[d.To] {
			mask &= ex.adjMasks[ex.cluOf[d.To]]
		}
	}
	return mask
}

// dfs places order[depth] in every viable (cluster, row) slot and recurses.
// exactInfeasible from a subtree means "keep trying siblings"; exactFound
// and exactAborted unwind immediately (exactFound leaves the placement
// intact for schedule).
func (ex *exactSearcher) dfs(depth int) exactStatus {
	if depth == ex.n {
		return exactFound
	}
	x := int(ex.order[depth])
	mask := ex.clusterMask(x)
	rows := ex.ii
	if depth == 0 {
		// Symmetry: any schedule rotates in time so its first-ordered op
		// sits in row 0, and on an all-identical-clusters ring it also
		// rotates around the ring onto cluster 0.
		rows = 1
		if ex.symmetric && mask&1 != 0 {
			mask = 1
		}
	}
	if mask == 0 {
		ex.pruned++
		return exactInfeasible
	}
	class := ex.class[x]
	for m := mask; m != 0; m &= m - 1 {
		c := bits.TrailingZeros64(m)
		for r := 0; r < rows; r++ {
			if !ex.table.free(r, c, class) {
				ex.pruned++
				continue
			}
			ex.nodes++
			if ex.nodes > ex.budget {
				return exactAborted
			}
			if ex.nodes&1023 == 0 && ex.ctx.Err() != nil {
				ex.ctxCut = true
				return exactAborted
			}
			ex.table.add(r, c, class, x)
			ex.placed[x] = true
			ex.rowOf[x] = int32(r)
			ex.cluOf[x] = int32(c)
			mark := len(ex.undo)
			ok := ex.propagate(x) && ex.lookahead(x)
			if ok {
				if st := ex.dfs(depth + 1); st != exactInfeasible {
					return st
				}
			} else {
				ex.pruned++
			}
			for len(ex.undo) > mark {
				u := ex.undo[len(ex.undo)-1]
				ex.undo = ex.undo[:len(ex.undo)-1]
				ex.pot[u.id] = u.pot
			}
			ex.placed[x] = false
			ex.table.remove(r, c, class, x)
		}
	}
	return exactInfeasible
}

// weight is the stage-difference coefficient of dependence d between placed
// endpoints: the schedule needs pot[d.To] - pot[d.From] >= weight(d), with
// weight = ceil((L + row[from] - row[to]) / II) - dist and L including the
// cross-cluster communication latency for flow dependences.
func (ex *exactSearcher) weight(d ir.Dep) int {
	l := ex.lat[d.From]
	if d.Kind == ir.Flow && ex.cluOf[d.From] != ex.cluOf[d.To] {
		l += ex.cfg.CommLatency
	}
	return ceilDiv(l+int(ex.rowOf[d.From])-int(ex.rowOf[d.To]), ex.ii) - d.Dist
}

func ceilDiv(a, b int) int {
	if a >= 0 {
		return (a + b - 1) / b
	}
	return -((-a) / b)
}

// propagate activates the constraints between x and the placed ops and
// restores the invariant pot[to] >= pot[from] + weight by queue-driven
// longest-path relaxation. It returns false when the placed subgraph
// acquires a positive-weight cycle — no stage assignment exists, so the
// placement is infeasible. Every potential overwrite lands in ex.undo; the
// caller unwinds to its mark on backtrack (including after a false return).
//
// Cycle detection: each relaxation extends a walk whose potentials strictly
// improve, so a walk of more than n edges revisits some vertex with a
// strictly larger potential — the sub-walk between the visits is a
// positive cycle. pathLen counts the walk edges per propagation epoch.
func (ex *exactSearcher) propagate(x int) bool {
	ex.curEpoch++
	ex.undo = append(ex.undo, potUndo{int32(x), ex.pot[x]})
	ex.pot[x] = 0
	for _, d := range ex.preds.At(x) {
		if !ex.placed[d.From] {
			continue
		}
		if d.From == x {
			// Self dependence: feasible iff its weight is non-positive.
			if ex.weight(d) > 0 {
				return false
			}
			continue
		}
		if nd := ex.pot[d.From] + ex.weight(d); nd > ex.pot[x] {
			ex.pot[x] = nd
		}
	}
	ex.epoch[x] = ex.curEpoch
	ex.pathLen[x] = 0
	q := append(ex.queue[:0], int32(x))
	for head := 0; head < len(q); head++ {
		y := int(q[head])
		for _, d := range ex.succs.At(y) {
			v := d.To
			if !ex.placed[v] {
				continue
			}
			nd := ex.pot[y] + ex.weight(d)
			if nd <= ex.pot[v] {
				continue
			}
			var pl int32
			if ex.epoch[y] == ex.curEpoch {
				pl = ex.pathLen[y]
			}
			pl++
			if int(pl) > ex.n {
				ex.queue = q[:0]
				return false
			}
			ex.undo = append(ex.undo, potUndo{int32(v), ex.pot[v]})
			ex.pot[v] = nd
			ex.epoch[v] = ex.curEpoch
			ex.pathLen[v] = pl
			q = append(q, int32(v))
		}
	}
	ex.queue = q[:0]
	return true
}

// lookahead forward-checks x's unplaced flow neighbours after placing x:
// each must still have a cluster that is adjacent to all of its placed
// flow neighbours, provides its FU class, and has at least one non-full
// row. This is the occupancy lower bound of the search: a violation means
// no completion of the current partial placement exists.
func (ex *exactSearcher) lookahead(x int) bool {
	for _, d := range ex.preds.At(x) {
		if d.Kind == ir.Flow && d.From != x && !ex.placed[d.From] && !ex.viable(d.From) {
			return false
		}
	}
	for _, d := range ex.succs.At(x) {
		if d.Kind == ir.Flow && d.To != x && !ex.placed[d.To] && !ex.viable(d.To) {
			return false
		}
	}
	return true
}

// viable reports whether unplaced op y still has a candidate slot.
func (ex *exactSearcher) viable(y int) bool {
	mask := ex.clusterMask(y)
	if mask == 0 {
		return false
	}
	for m := mask; m != 0; m &= m - 1 {
		if ex.table.anyFree(bits.TrailingZeros64(m), ex.class[y]) {
			return true
		}
	}
	return false
}

// schedule materializes the found placement: per-op start cycles
// row + II*k with the stage counters k recovered from the propagation
// potentials, normalized so the earliest stage is zero.
func (ex *exactSearcher) schedule(cfg machine.Config, ii, resMII, recMII int) *Schedule {
	shift := ex.pot[0]
	for _, p := range ex.pot {
		if p < shift {
			shift = p
		}
	}
	time := make([]int, ex.n)
	cluster := make([]int, ex.n)
	for i := 0; i < ex.n; i++ {
		time[i] = int(ex.rowOf[i]) + ii*(ex.pot[i]-shift)
		cluster[i] = int(ex.cluOf[i])
	}
	return &Schedule{
		Loop:    ex.l,
		Machine: cfg,
		II:      ii,
		Time:    time,
		Cluster: cluster,
		ResMII:  resMII,
		RecMII:  recMII,
	}
}
