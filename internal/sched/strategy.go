package sched

import (
	"fmt"
	"sort"
	"strings"
)

// Strategy identifies one cluster-assignment heuristic. The partitioned
// scheduler's slot search walks clusters in a preference order; a strategy
// is exactly that ordering policy. No single ordering wins across loop
// shapes — communication-bound loops want affinity, throughput-bound loops
// want balance — which is why the portfolio scheduler (portfolio.go) races
// several per candidate II. Strategy values are dense small integers: the
// value doubles as the deterministic tie-break index of a race.
type Strategy uint8

const (
	// StrategyBaseline is the heuristic the scheduler has always used:
	// clusters holding more already-scheduled flow neighbours first, then
	// lighter reservation-table load, then cluster index.
	StrategyBaseline Strategy = iota
	// StrategyLoadBalanced inverts the baseline's priorities: lightest
	// reservation-table load first, affinity second. It wins on wide,
	// communication-light loops where the baseline piles work onto the
	// cluster of the first scheduled operations.
	StrategyLoadBalanced
	// StrategyAffinity is the min-copy ordering: clusters minimizing the
	// total ring distance to already-scheduled flow neighbours first (zero
	// distance = same cluster = no communication at all), affinity count
	// second. It keeps dependence chains together harder than the baseline,
	// which only counts same-cluster neighbours.
	StrategyAffinity
	// StrategyRoundRobin assigns each operation a home cluster by operation
	// index modulo the cluster count and prefers clusters near that home.
	// It ignores dependences entirely — a deliberately contrarian spreader
	// that escapes the clumping failure modes of the affinity family.
	StrategyRoundRobin
	// StrategyPerturb is the baseline with a deterministic, seeded jitter
	// on the load tie-break and a hashed final tie-break. It explores a
	// different corner of the same basin, which is frequently enough to
	// dodge an eviction cycle the unperturbed baseline cannot leave.
	StrategyPerturb
	// NumStrategies is the number of strategies (sentinel, not a strategy).
	NumStrategies
)

var strategyNames = [NumStrategies]string{
	StrategyBaseline:     "baseline",
	StrategyLoadBalanced: "load-balanced",
	StrategyAffinity:     "affinity",
	StrategyRoundRobin:   "round-robin",
	StrategyPerturb:      "perturb",
}

func (s Strategy) String() string {
	if s < NumStrategies {
		return strategyNames[s]
	}
	return fmt.Sprintf("Strategy(%d)", uint8(s))
}

// ParseStrategy maps a strategy name (as printed by Strategy.String) back
// to its value. The error lists the valid names sorted, so surfacing it
// verbatim gives a client an actionable message.
func ParseStrategy(name string) (Strategy, error) {
	for s, n := range strategyNames {
		if n == name {
			return Strategy(s), nil
		}
	}
	return 0, fmt.Errorf("unknown strategy %q (valid: %s)", name, strings.Join(StrategyNames(), ", "))
}

// StrategyNames returns every strategy name, sorted.
func StrategyNames() []string {
	out := make([]string, 0, NumStrategies)
	out = append(out, strategyNames[:]...)
	sort.Strings(out)
	return out
}

// clusterPref orders one cluster candidate by a strategy-specific key
// vector: smaller k1 first, then k2, then k3, then cluster index. Every
// strategy is expressed as a key assignment, so one insertion sort serves
// the whole catalogue; the relation stays total (the index breaks every
// tie), so the result is the unique sorted order. Both the packed
// clusterPrefs (ims.go) and the scalar reference (ref.go) rank with these
// keys, which is what makes their orders identical by construction.
type clusterPref struct{ c, k1, k2, k3 int }

func (p clusterPref) before(q clusterPref) bool {
	if p.k1 != q.k1 {
		return p.k1 < q.k1
	}
	if p.k2 != q.k2 {
		return p.k2 < q.k2
	}
	if p.k3 != q.k3 {
		return p.k3 < q.k3
	}
	return p.c < q.c
}

// prefHash is StrategyPerturb's deterministic jitter source: a splitmix64
// finalizer over the (op, cluster) pair under a fixed salt. Same op, same
// cluster, same verdict — across runs, platforms and worker interleavings.
func prefHash(id, c int) uint64 {
	h := uint64(id)*0x9e3779b97f4a7c15 ^ uint64(c)*0xbf58476d1ce4e5b9 ^ 0x5eed1998
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// Effort selects how much scheduling work a compilation may spend: it
// decides the strategy portfolio raced per candidate II. The zero value is
// EffortFast — the single baseline heuristic, bit-for-bit the scheduler's
// historical behaviour — so existing callers, golden files and cache keys
// are untouched by the portfolio machinery.
type Effort uint8

const (
	// EffortFast runs the baseline strategy only.
	EffortFast Effort = iota
	// EffortBalanced races the three affinity/load heuristics.
	EffortBalanced
	// EffortExhaustive races every strategy in the catalogue.
	EffortExhaustive
	// EffortOptimal runs the exhaustive race for an incumbent, then the
	// exact branch-and-bound searcher (exact.go) to certify or improve it.
	// The result carries an optimality certificate in Schedule.Bound; see
	// DESIGN.md §14 for the anytime/cancellation contract.
	EffortOptimal
	numEfforts
)

var effortNames = [numEfforts]string{
	EffortFast:       "fast",
	EffortBalanced:   "balanced",
	EffortExhaustive: "exhaustive",
	EffortOptimal:    "optimal",
}

func (e Effort) String() string {
	if e < numEfforts {
		return effortNames[e]
	}
	return fmt.Sprintf("Effort(%d)", uint8(e))
}

// ParseEffort maps an effort name to its value; the empty string is
// EffortFast, so an omitted knob (JSON field, flag default) selects the
// historical behaviour. The error lists the valid names sorted.
func ParseEffort(name string) (Effort, error) {
	if name == "" {
		return EffortFast, nil
	}
	for e, n := range effortNames {
		if n == name {
			return Effort(e), nil
		}
	}
	return 0, fmt.Errorf("unknown effort %q (valid: %s)", name, strings.Join(EffortNames(), ", "))
}

// EffortNames returns every effort name, sorted.
func EffortNames() []string {
	out := make([]string, 0, numEfforts)
	out = append(out, effortNames[:]...)
	sort.Strings(out)
	return out
}

// Strategies returns the strategy portfolio an effort level races, in
// tie-break order. The slice is freshly allocated; callers may keep it.
func (e Effort) Strategies() []Strategy {
	switch e {
	case EffortBalanced:
		return []Strategy{StrategyBaseline, StrategyLoadBalanced, StrategyAffinity}
	case EffortExhaustive, EffortOptimal:
		// The optimal tier's heuristic incumbent comes from the same full
		// catalogue the exhaustive tier races; the exact search then
		// certifies or improves it.
		return []Strategy{StrategyBaseline, StrategyLoadBalanced, StrategyAffinity, StrategyRoundRobin, StrategyPerturb}
	}
	return []Strategy{StrategyBaseline}
}
