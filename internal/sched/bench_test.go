package sched

import (
	"testing"

	"vliwq/internal/corpus"
	"vliwq/internal/ir"
	"vliwq/internal/machine"
)

// schedBenchLoops is a fixed slice of the standard corpus: large enough to
// mix single-attempt loops with loops that need several II attempts (where
// the scratch-arena reuse pays off most).
func schedBenchLoops(b *testing.B) []*ir.Loop {
	b.Helper()
	return corpus.Generate(corpus.Params{Seed: corpus.DefaultSeed, N: 48})
}

func benchScheduleLoop(b *testing.B, cfg machine.Config) {
	loops := schedBenchLoops(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, l := range loops {
			if _, err := ScheduleLoop(l, cfg, Options{}); err != nil {
				b.Fatalf("%s: %v", l.Name, err)
			}
		}
	}
}

func BenchmarkScheduleLoopSingle12(b *testing.B) {
	benchScheduleLoop(b, machine.SingleCluster(12))
}

func BenchmarkScheduleLoopClustered4(b *testing.B) {
	benchScheduleLoop(b, machine.Clustered(4))
}

func BenchmarkScheduleLoopClustered6(b *testing.B) {
	benchScheduleLoop(b, machine.Clustered(6))
}

// BenchmarkSchedulePortfolioExhaustive prices the full strategy race: the
// same clustered-6 workload as above under EffortExhaustive, so the bench
// trajectory records what the portfolio costs relative to the fast path.
func BenchmarkSchedulePortfolioExhaustive(b *testing.B) {
	loops := schedBenchLoops(b)
	cfg := machine.Clustered(6)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, l := range loops {
			if _, err := ScheduleLoop(l, cfg, Options{Effort: EffortExhaustive}); err != nil {
				b.Fatalf("%s: %v", l.Name, err)
			}
		}
	}
}

// BenchmarkScheduleOptimalSmall prices the certified tier on the
// hand-written kernels — the population small enough that proofs complete
// — so the bench trajectory records what a certificate costs on top of the
// exhaustive race it contains.
func BenchmarkScheduleOptimalSmall(b *testing.B) {
	loops := corpus.Kernels()
	cfg := machine.Clustered(4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, l := range loops {
			if _, err := ScheduleLoop(l, cfg, Options{Effort: EffortOptimal}); err != nil {
				b.Fatalf("%s: %v", l.Name, err)
			}
		}
	}
}
