package sched

import (
	"reflect"
	"sync"
	"testing"

	"vliwq/internal/corpus"
	"vliwq/internal/machine"
)

// TestRaceMemoHeightsConcurrent hammers heightsFor from 8 goroutines over
// an II range and checks every returned vector against a privately
// computed fixpoint. Under -race this doubles as the proof that the memo's
// compute-once-per-II locking publishes each height vector safely; CI's
// race job runs it at -cpu 1,4.
func TestRaceMemoHeightsConcurrent(t *testing.T) {
	cfg := machine.Clustered(4)
	for _, l := range corpus.Stressed()[:8] {
		m := newRaceMemo(l, &cfg)
		const goroutines, iiLo, iiHi = 8, 1, 24
		var wg sync.WaitGroup
		errs := make(chan string, goroutines)
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				var own []int
				for rep := 0; rep < 4; rep++ {
					for ii := iiLo; ii <= iiHi; ii++ {
						got := m.heightsFor(ii)
						own = heightsInto(own, m.lat, m.deps, ii, m.n)
						if !reflect.DeepEqual(got, own) {
							errs <- l.Name
							return
						}
					}
				}
			}(g)
		}
		wg.Wait()
		close(errs)
		for name := range errs {
			t.Fatalf("%s: heightsFor diverged from a private heightsInto under concurrency", name)
		}
		// The memo must have computed each II exactly once, not per caller.
		if m.used != iiHi-iiLo+1 {
			t.Fatalf("%s: memo holds %d height vectors, want %d (one per distinct II)", l.Name, m.used, iiHi-iiLo+1)
		}
		m.release()
	}
}

// TestPortfolioRaceWorkerCountInvariant races every exhaustive-tier
// strategy over the shared memo at RaceWorkers 1 (pure sequential, no memo
// contention) and RaceWorkers 8 (maximum contention) and demands identical
// schedules. Run under -race at -cpu 1,4 this exercises the memo table
// from genuinely concurrent attempts; in any mode it pins the documented
// contract that RaceWorkers affects wall-clock only, never the result.
func TestPortfolioRaceWorkerCountInvariant(t *testing.T) {
	cfgs := []machine.Config{machine.Clustered(4), machine.Clustered(6)}
	loops := corpus.Stressed()[:16]
	for _, cfg := range cfgs {
		for _, l := range loops {
			seq, seqErr := ScheduleLoop(l, cfg, Options{Effort: EffortExhaustive, RaceWorkers: 1})
			par, parErr := ScheduleLoop(l, cfg, Options{Effort: EffortExhaustive, RaceWorkers: 8})
			if (seqErr == nil) != (parErr == nil) {
				t.Fatalf("%s on %s: workers=1 err=%v, workers=8 err=%v", l.Name, cfg.Name, seqErr, parErr)
			}
			if seqErr != nil {
				continue
			}
			if seq.II != par.II || seq.Strategy != par.Strategy ||
				!reflect.DeepEqual(seq.Time, par.Time) || !reflect.DeepEqual(seq.Cluster, par.Cluster) {
				t.Fatalf("%s on %s: workers=1 II=%d/%v, workers=8 II=%d/%v — race outcome depends on worker count",
					l.Name, cfg.Name, seq.II, seq.Strategy, par.II, par.Strategy)
			}
		}
	}
}
