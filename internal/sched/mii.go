package sched

import (
	"fmt"

	"vliwq/internal/ir"
	"vliwq/internal/machine"
)

// ResMII returns the resource-constrained lower bound on the initiation
// interval: for each FU class, the ceiling of (operations in the class) over
// (machine-wide units of the class). An error is returned when the loop
// uses a class the machine lacks entirely.
func ResMII(l *ir.Loop, cfg machine.Config) (int, error) {
	var ops [machine.NumClasses]int
	for _, op := range l.Ops {
		ops[machine.ClassOf(op.Kind)]++
	}
	fus := cfg.TotalFUs()
	mii := 1
	for c := machine.FUClass(0); c < machine.NumClasses; c++ {
		if ops[c] == 0 {
			continue
		}
		if fus[c] == 0 {
			return 0, fmt.Errorf("%w: %v (loop %q, machine %q)", ErrNoFU, c, l.Name, cfg.Name)
		}
		if b := (ops[c] + fus[c] - 1) / fus[c]; b > mii {
			mii = b
		}
	}
	return mii, nil
}

// resMIISubset computes ResMII using only the FUs of the given cluster
// subset (the compact fallback's resource bound).
func resMIISubset(l *ir.Loop, cfg machine.Config, clusters []int) (int, error) {
	var ops [machine.NumClasses]int
	for _, op := range l.Ops {
		ops[machine.ClassOf(op.Kind)]++
	}
	var fus [machine.NumClasses]int
	for _, c := range clusters {
		if c >= cfg.NumClusters() {
			continue
		}
		for i, n := range cfg.Clusters[c].FUs {
			fus[i] += n
		}
	}
	mii := 1
	for c := machine.FUClass(0); c < machine.NumClasses; c++ {
		if ops[c] == 0 {
			continue
		}
		if fus[c] == 0 {
			// The subset lacks the class; clusterPrefs escapes the subset
			// for those ops, so approximate with one machine-wide unit.
			total := cfg.TotalFUs()
			if total[c] == 0 {
				return 0, fmt.Errorf("%w: %v", ErrNoFU, c)
			}
			if ops[c] > mii {
				mii = ops[c]
			}
			continue
		}
		if b := (ops[c] + fus[c] - 1) / fus[c]; b > mii {
			mii = b
		}
	}
	return mii, nil
}

// RecMII returns the recurrence-constrained lower bound on the initiation
// interval: the smallest II such that the dependence graph with edge
// weights latency(from) - II*distance contains no positive-weight cycle.
// Equivalently, max over elementary circuits of
// ceil(total latency / total distance). Loops without dependence cycles
// have RecMII 1.
func RecMII(l *ir.Loop) int {
	var scr recScratch
	return recMIIInto(l, &scr)
}

// recMIIRef is the scalar reference for RecMII: one global binary search
// over the whole graph, each probe a whole-graph Bellman-Ford. The SCC
// decomposition in recMIIInto must return the same value on every valid
// loop; the differential harness pins the agreement on randomized graphs.
func recMIIRef(l *ir.Loop) int {
	// Positive-cycle existence is monotonically non-increasing in II, so
	// binary-search the smallest II free of positive cycles. One scratch
	// buffer serves every Bellman-Ford probe of the search.
	scratch := make([]int, len(l.Ops))
	lo, hi := 1, l.SumLatency()
	if hi < 1 {
		hi = 1
	}
	if !hasPositiveCycle(l, hi, scratch) {
		for lo < hi {
			mid := (lo + hi) / 2
			if hasPositiveCycle(l, mid, scratch) {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
	} else {
		// Cannot happen for validated loops (II = sum of latencies always
		// breaks every circuit since each circuit has distance >= 1), but
		// degrade gracefully.
		lo = hi + 1
	}
	return lo
}

// recScratch is the arena for recMIIInto: Tarjan SCC state, the
// component-grouped node/edge views and the Bellman-Ford distance array.
// It lives in the scheduling state (ims.go) so the RecMII of every
// ScheduleLoop call reuses one set of buffers.
type recScratch struct {
	lat   []int
	sOff  []int32 // successor CSR offsets (n+1)
	sTo   []int32 // successor CSR targets
	cur   []int32 // counting-sort cursors
	index []int32 // Tarjan discovery index, 0 = unvisited
	low   []int32
	comp  []int32 // SCC id per node
	stack []int32
	onStk []bool
	nodes []int32  // node ids grouped by SCC
	nOff  []int32  // per-SCC offsets into nodes
	edges []ir.Dep // intra-SCC edges grouped by SCC
	eOff  []int32  // per-SCC offsets into edges
	dist  []int
	next  int32 // Tarjan index counter
	ncomp int32
}

// recMIIInto computes RecMII with the work confined to where cycles can
// live: every dependence cycle lies inside one strongly connected
// component, so the graph is SCC-decomposed (Tarjan) and each component
// runs its own binary search with a component-local Bellman-Ford and a
// component-local upper bound (its latency sum). The global RecMII is the
// maximum over components; components whose upper bound cannot exceed the
// running best — or that have no positive cycle at the running best — are
// skipped without a search. On the acyclic majority of the graph this does
// no Bellman-Ford work at all, where the reference implementation's probes
// relax every edge n times.
func recMIIInto(l *ir.Loop, scr *recScratch) int {
	n := len(l.Ops)
	if n == 0 || len(l.Deps) == 0 {
		return 1
	}
	scr.lat = uninit(scr.lat, n)
	for i, op := range l.Ops {
		scr.lat[i] = op.Kind.Latency()
	}
	// Successor CSR (counting sort, same shape as ir.adjInto).
	scr.sOff = refill(scr.sOff, n+1, 0)
	for _, d := range l.Deps {
		scr.sOff[d.From+1]++
	}
	for i := 0; i < n; i++ {
		scr.sOff[i+1] += scr.sOff[i]
	}
	scr.sTo = uninit(scr.sTo, len(l.Deps))
	scr.cur = uninit(scr.cur, n)
	copy(scr.cur, scr.sOff[:n])
	for _, d := range l.Deps {
		scr.sTo[scr.cur[d.From]] = int32(d.To)
		scr.cur[d.From]++
	}
	// Tarjan SCC.
	scr.index = refill(scr.index, n, 0)
	scr.low = uninit(scr.low, n)
	scr.comp = uninit(scr.comp, n)
	scr.onStk = refill(scr.onStk, n, false)
	scr.stack = scr.stack[:0]
	scr.next = 1
	scr.ncomp = 0
	for v := 0; v < n; v++ {
		if scr.index[v] == 0 {
			scr.strongconnect(int32(v))
		}
	}
	// Group nodes and intra-SCC edges by component.
	nc := int(scr.ncomp)
	scr.nOff = refill(scr.nOff, nc+1, 0)
	for v := 0; v < n; v++ {
		scr.nOff[scr.comp[v]+1]++
	}
	for s := 0; s < nc; s++ {
		scr.nOff[s+1] += scr.nOff[s]
	}
	scr.nodes = uninit(scr.nodes, n)
	scr.cur = uninit(scr.cur, nc)
	copy(scr.cur, scr.nOff[:nc])
	for v := 0; v < n; v++ {
		s := scr.comp[v]
		scr.nodes[scr.cur[s]] = int32(v)
		scr.cur[s]++
	}
	scr.eOff = refill(scr.eOff, nc+1, 0)
	ne := 0
	for _, d := range l.Deps {
		if scr.comp[d.From] == scr.comp[d.To] {
			scr.eOff[scr.comp[d.From]+1]++
			ne++
		}
	}
	for s := 0; s < nc; s++ {
		scr.eOff[s+1] += scr.eOff[s]
	}
	scr.edges = uninit(scr.edges, ne)
	scr.cur = uninit(scr.cur, nc)
	copy(scr.cur, scr.eOff[:nc])
	for _, d := range l.Deps {
		if s := scr.comp[d.From]; s == scr.comp[d.To] {
			scr.edges[scr.cur[s]] = d
			scr.cur[s]++
		}
	}
	// Per-component binary search. The skip tests keep the max over
	// components exact: a component's RecMII is at most its latency sum
	// (every circuit has distance >= 1), and a component with no positive
	// cycle at the running best cannot raise it.
	scr.dist = uninit(scr.dist, n)
	best := 1
	for s := 0; s < nc; s++ {
		edges := scr.edges[scr.eOff[s]:scr.eOff[s+1]]
		if len(edges) == 0 {
			continue // singleton SCC without a self-loop: acyclic
		}
		nodes := scr.nodes[scr.nOff[s]:scr.nOff[s+1]]
		hi := 0
		for _, v := range nodes {
			hi += scr.lat[v]
		}
		if hi <= best {
			continue
		}
		if len(nodes) == 1 {
			// Singleton SCC: every intra-SCC edge is a self-loop, and the
			// circuit through a self-loop of distance d bounds the II at
			// ceil(latency/d) directly — no Bellman-Ford needed. This is the
			// common shape (accumulators, induction variables), so it keeps
			// the binary search off the hot path entirely.
			v := nodes[0]
			for _, d := range edges {
				if d.Dist == 0 {
					// Zero-distance self cycle; cannot happen for validated
					// loops, but degrade like the generic path (hi+1).
					if b := scr.lat[v] + 1; b > best {
						best = b
					}
					continue
				}
				if b := (scr.lat[v] + d.Dist - 1) / d.Dist; b > best {
					best = b
				}
			}
			continue
		}
		if !scr.posCycle(nodes, edges, best) {
			continue
		}
		if scr.posCycle(nodes, edges, hi) {
			// Zero-distance cycle; cannot happen for validated loops, but
			// degrade gracefully like the reference.
			best = hi + 1
			continue
		}
		lo, h := best+1, hi
		for lo < h {
			mid := (lo + h) / 2
			if scr.posCycle(nodes, edges, mid) {
				lo = mid + 1
			} else {
				h = mid
			}
		}
		best = lo
	}
	return best
}

// strongconnect is Tarjan's recursive DFS over the scratch CSR. Depth is
// bounded by the op count (loops are at most a few hundred ops), so plain
// recursion beats an explicit frame stack.
func (scr *recScratch) strongconnect(v int32) {
	scr.index[v] = scr.next
	scr.low[v] = scr.next
	scr.next++
	scr.stack = append(scr.stack, v)
	scr.onStk[v] = true
	for _, w := range scr.sTo[scr.sOff[v]:scr.sOff[v+1]] {
		if scr.index[w] == 0 {
			scr.strongconnect(w)
			if scr.low[w] < scr.low[v] {
				scr.low[v] = scr.low[w]
			}
		} else if scr.onStk[w] && scr.index[w] < scr.low[v] {
			scr.low[v] = scr.index[w]
		}
	}
	if scr.low[v] == scr.index[v] {
		for {
			w := scr.stack[len(scr.stack)-1]
			scr.stack = scr.stack[:len(scr.stack)-1]
			scr.onStk[w] = false
			scr.comp[w] = scr.ncomp
			if w == v {
				break
			}
		}
		scr.ncomp++
	}
}

// posCycle reports whether the component has a positive-weight cycle at the
// given II (Bellman-Ford longest-path relaxation restricted to the
// component's nodes and edges; a cycle that still relaxes after |nodes|
// passes is positive).
func (scr *recScratch) posCycle(nodes []int32, edges []ir.Dep, ii int) bool {
	for _, v := range nodes {
		scr.dist[v] = 0
	}
	for range nodes {
		changed := false
		for _, d := range edges {
			w := scr.lat[d.From] - ii*d.Dist
			if nd := scr.dist[d.From] + w; nd > scr.dist[d.To] {
				scr.dist[d.To] = nd
				changed = true
			}
		}
		if !changed {
			return false
		}
	}
	for _, d := range edges {
		w := scr.lat[d.From] - ii*d.Dist
		if scr.dist[d.From]+w > scr.dist[d.To] {
			return true
		}
	}
	return false
}

// hasPositiveCycle reports whether the dependence graph has a cycle of
// positive total weight with edge weight latency(from) - II*dist
// (Bellman-Ford longest-path relaxation from a virtual source). scratch
// must hold len(l.Ops) elements; it is overwritten.
func hasPositiveCycle(l *ir.Loop, ii int, scratch []int) bool {
	n := len(l.Ops)
	dist := scratch[:n] // virtual source connects to all with weight 0
	for i := range dist {
		dist[i] = 0
	}
	for iter := 0; iter < n; iter++ {
		changed := false
		for _, d := range l.Deps {
			w := l.Ops[d.From].Kind.Latency() - ii*d.Dist
			if nd := dist[d.From] + w; nd > dist[d.To] {
				dist[d.To] = nd
				changed = true
			}
		}
		if !changed {
			return false
		}
	}
	// Still relaxing after n passes: positive cycle.
	for _, d := range l.Deps {
		w := l.Ops[d.From].Kind.Latency() - ii*d.Dist
		if dist[d.From]+w > dist[d.To] {
			return true
		}
	}
	return false
}

// RecMIIBrute computes RecMII by enumerating all elementary circuits (DFS
// with a bounded path length). It is exponential and exists only so tests
// can validate RecMII on small graphs.
func RecMIIBrute(l *ir.Loop, maxLen int) int {
	n := len(l.Ops)
	succ := l.Succs()
	best := 1
	var path []ir.Dep
	onPath := make([]bool, n)
	var dfs func(start, cur int)
	dfs = func(start, cur int) {
		if len(path) > maxLen {
			return
		}
		for _, d := range succ.At(cur) {
			if d.To == start && len(path) >= 0 {
				lat, dist := 0, 0
				for _, e := range path {
					lat += l.Ops[e.From].Kind.Latency()
					dist += e.Dist
				}
				lat += l.Ops[d.From].Kind.Latency()
				dist += d.Dist
				if dist > 0 {
					if b := (lat + dist - 1) / dist; b > best {
						best = b
					}
				}
				continue
			}
			if d.To < start || onPath[d.To] {
				// Enumerate each circuit once: only visit nodes >= start.
				continue
			}
			onPath[d.To] = true
			path = append(path, d)
			dfs(start, d.To)
			path = path[:len(path)-1]
			onPath[d.To] = false
		}
	}
	for s := 0; s < n; s++ {
		onPath[s] = true
		dfs(s, s)
		onPath[s] = false
	}
	return best
}
