package sched

import (
	"fmt"

	"vliwq/internal/ir"
	"vliwq/internal/machine"
)

// ResMII returns the resource-constrained lower bound on the initiation
// interval: for each FU class, the ceiling of (operations in the class) over
// (machine-wide units of the class). An error is returned when the loop
// uses a class the machine lacks entirely.
func ResMII(l *ir.Loop, cfg machine.Config) (int, error) {
	var ops [machine.NumClasses]int
	for _, op := range l.Ops {
		ops[machine.ClassOf(op.Kind)]++
	}
	fus := cfg.TotalFUs()
	mii := 1
	for c := machine.FUClass(0); c < machine.NumClasses; c++ {
		if ops[c] == 0 {
			continue
		}
		if fus[c] == 0 {
			return 0, fmt.Errorf("%w: %v (loop %q, machine %q)", ErrNoFU, c, l.Name, cfg.Name)
		}
		if b := (ops[c] + fus[c] - 1) / fus[c]; b > mii {
			mii = b
		}
	}
	return mii, nil
}

// resMIISubset computes ResMII using only the FUs of the given cluster
// subset (the compact fallback's resource bound).
func resMIISubset(l *ir.Loop, cfg machine.Config, clusters []int) (int, error) {
	var ops [machine.NumClasses]int
	for _, op := range l.Ops {
		ops[machine.ClassOf(op.Kind)]++
	}
	var fus [machine.NumClasses]int
	for _, c := range clusters {
		if c >= cfg.NumClusters() {
			continue
		}
		for i, n := range cfg.Clusters[c].FUs {
			fus[i] += n
		}
	}
	mii := 1
	for c := machine.FUClass(0); c < machine.NumClasses; c++ {
		if ops[c] == 0 {
			continue
		}
		if fus[c] == 0 {
			// The subset lacks the class; clusterPrefs escapes the subset
			// for those ops, so approximate with one machine-wide unit.
			total := cfg.TotalFUs()
			if total[c] == 0 {
				return 0, fmt.Errorf("%w: %v", ErrNoFU, c)
			}
			if ops[c] > mii {
				mii = ops[c]
			}
			continue
		}
		if b := (ops[c] + fus[c] - 1) / fus[c]; b > mii {
			mii = b
		}
	}
	return mii, nil
}

// RecMII returns the recurrence-constrained lower bound on the initiation
// interval: the smallest II such that the dependence graph with edge
// weights latency(from) - II*distance contains no positive-weight cycle.
// Equivalently, max over elementary circuits of
// ceil(total latency / total distance). Loops without dependence cycles
// have RecMII 1.
func RecMII(l *ir.Loop) int {
	// Positive-cycle existence is monotonically non-increasing in II, so
	// binary-search the smallest II free of positive cycles. One scratch
	// buffer serves every Bellman-Ford probe of the search.
	scratch := make([]int, len(l.Ops))
	lo, hi := 1, l.SumLatency()
	if hi < 1 {
		hi = 1
	}
	if !hasPositiveCycle(l, hi, scratch) {
		for lo < hi {
			mid := (lo + hi) / 2
			if hasPositiveCycle(l, mid, scratch) {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
	} else {
		// Cannot happen for validated loops (II = sum of latencies always
		// breaks every circuit since each circuit has distance >= 1), but
		// degrade gracefully.
		lo = hi + 1
	}
	return lo
}

// hasPositiveCycle reports whether the dependence graph has a cycle of
// positive total weight with edge weight latency(from) - II*dist
// (Bellman-Ford longest-path relaxation from a virtual source). scratch
// must hold len(l.Ops) elements; it is overwritten.
func hasPositiveCycle(l *ir.Loop, ii int, scratch []int) bool {
	n := len(l.Ops)
	dist := scratch[:n] // virtual source connects to all with weight 0
	for i := range dist {
		dist[i] = 0
	}
	for iter := 0; iter < n; iter++ {
		changed := false
		for _, d := range l.Deps {
			w := l.Ops[d.From].Kind.Latency() - ii*d.Dist
			if nd := dist[d.From] + w; nd > dist[d.To] {
				dist[d.To] = nd
				changed = true
			}
		}
		if !changed {
			return false
		}
	}
	// Still relaxing after n passes: positive cycle.
	for _, d := range l.Deps {
		w := l.Ops[d.From].Kind.Latency() - ii*d.Dist
		if dist[d.From]+w > dist[d.To] {
			return true
		}
	}
	return false
}

// RecMIIBrute computes RecMII by enumerating all elementary circuits (DFS
// with a bounded path length). It is exponential and exists only so tests
// can validate RecMII on small graphs.
func RecMIIBrute(l *ir.Loop, maxLen int) int {
	n := len(l.Ops)
	succ := l.Succs()
	best := 1
	var path []ir.Dep
	onPath := make([]bool, n)
	var dfs func(start, cur int)
	dfs = func(start, cur int) {
		if len(path) > maxLen {
			return
		}
		for _, d := range succ.At(cur) {
			if d.To == start && len(path) >= 0 {
				lat, dist := 0, 0
				for _, e := range path {
					lat += l.Ops[e.From].Kind.Latency()
					dist += e.Dist
				}
				lat += l.Ops[d.From].Kind.Latency()
				dist += d.Dist
				if dist > 0 {
					if b := (lat + dist - 1) / dist; b > best {
						best = b
					}
				}
				continue
			}
			if d.To < start || onPath[d.To] {
				// Enumerate each circuit once: only visit nodes >= start.
				continue
			}
			onPath[d.To] = true
			path = append(path, d)
			dfs(start, d.To)
			path = path[:len(path)-1]
			onPath[d.To] = false
		}
	}
	for s := 0; s < n; s++ {
		onPath[s] = true
		dfs(s, s)
		onPath[s] = false
	}
	return best
}
