package sched

import "vliwq/internal/machine"

// mrt is the modulo reservation table: for each of the II rows, each
// cluster, and each FU class, the IDs of the operations issuing there.
// Every operation reserves its functional unit for exactly one cycle at its
// issue time (unit-latency reservation, as in the paper's model).
type mrt struct {
	ii   int
	cfg  *machine.Config
	rows []cell // len ii * numClusters, row-major
}

type cell [machine.NumClasses][]int

func newMRT(ii int, cfg *machine.Config) *mrt {
	m := &mrt{}
	m.reset(ii, cfg)
	return m
}

// reset reconfigures the table for a new II, reusing the row array and the
// per-cell reservation slices so repeated attempts do not allocate once the
// table has reached its high-water size.
func (m *mrt) reset(ii int, cfg *machine.Config) {
	m.ii = ii
	m.cfg = cfg
	need := ii * cfg.NumClusters()
	if cap(m.rows) < need {
		m.rows = make([]cell, need)
	} else {
		m.rows = m.rows[:need]
		for i := range m.rows {
			for class := range m.rows[i] {
				m.rows[i][class] = m.rows[i][class][:0]
			}
		}
	}
}

func (m *mrt) at(row, cluster int) *cell {
	return &m.rows[row*m.cfg.NumClusters()+cluster]
}

// free reports whether an FU of the given class is available in the cluster
// at the given row.
func (m *mrt) free(row, cluster int, class machine.FUClass) bool {
	return len(m.at(row, cluster)[class]) < m.cfg.FUCount(cluster, class)
}

// add reserves one unit; callers must have checked free (or intend to
// oversubscribe temporarily before evicting, which is forbidden here:
// add panics on oversubscription to catch scheduler bugs early).
func (m *mrt) add(row, cluster int, class machine.FUClass, opID int) {
	c := m.at(row, cluster)
	if len(c[class]) >= m.cfg.FUCount(cluster, class) {
		panic("sched: MRT oversubscription")
	}
	c[class] = append(c[class], opID)
}

// remove releases the reservation of opID; it panics if absent.
func (m *mrt) remove(row, cluster int, class machine.FUClass, opID int) {
	c := m.at(row, cluster)
	s := c[class]
	for i, id := range s {
		if id == opID {
			c[class] = append(s[:i], s[i+1:]...)
			return
		}
	}
	panic("sched: MRT remove of absent op")
}

// occupants returns the ops occupying (row, cluster, class).
func (m *mrt) occupants(row, cluster int, class machine.FUClass) []int {
	return m.at(row, cluster)[class]
}
