package sched

import (
	"math/bits"

	"vliwq/internal/machine"
)

// mrt is the modulo reservation table: for each of the II rows, each
// cluster, and each FU class, the IDs of the operations issuing there.
// Every operation reserves its functional unit for exactly one cycle at its
// issue time (unit-latency reservation, as in the paper's model).
//
// Occupancy is tracked twice, deliberately:
//
//   - rows holds the per-slot occupant ID lists. They answer "who is in the
//     way" (forceSlot's eviction choice) and double as the scalar reference
//     the differential harness replays probes against.
//   - full packs, per (cluster, class), one bit per row that is at
//     capacity. A feasibility probe over the whole II window collapses to a
//     rotate/mask/trailing-zeros sequence on these words instead of a
//     per-row walk, which is where the slot search spends its time.
//
// The two views are updated together in add/remove; FuzzMRTBitset and the
// differential tests pin their agreement.
type mrt struct {
	ii     int
	cfg    *machine.Config
	rows   []cell // len ii * numClusters, row-major
	nwords int    // 64-bit words per (cluster, class) row bitmap
	mask   uint64 // valid-row bits of the last (or only) bitmap word
	full   []uint64
}

type cell [machine.NumClasses][]int

func newMRT(ii int, cfg *machine.Config) *mrt {
	m := &mrt{}
	m.reset(ii, cfg)
	return m
}

// reset reconfigures the table for a new II, reusing the row array, the
// per-cell reservation slices and the bitmap words so repeated attempts do
// not allocate once the table has reached its high-water size.
func (m *mrt) reset(ii int, cfg *machine.Config) {
	m.ii = ii
	m.cfg = cfg
	nc := cfg.NumClusters()
	need := ii * nc
	if cap(m.rows) < need {
		m.rows = make([]cell, need)
	} else {
		m.rows = m.rows[:need]
		for i := range m.rows {
			for class := range m.rows[i] {
				m.rows[i][class] = m.rows[i][class][:0]
			}
		}
	}
	m.nwords = (ii + 63) / 64
	if rem := ii % 64; rem != 0 {
		m.mask = 1<<rem - 1
	} else {
		m.mask = ^uint64(0)
	}
	nfull := nc * int(machine.NumClasses) * m.nwords
	if cap(m.full) < nfull {
		m.full = make([]uint64, nfull)
	} else {
		m.full = m.full[:nfull]
		for i := range m.full {
			m.full[i] = 0
		}
	}
	// A (cluster, class) pair without units can never issue: mark every row
	// full up front so probes reject it with the same bit test as a
	// genuinely saturated row.
	for c := 0; c < nc; c++ {
		for class := machine.FUClass(0); class < machine.NumClasses; class++ {
			if cfg.FUCount(c, class) == 0 {
				w := m.fidx(c, class)
				for i := 0; i < m.nwords; i++ {
					m.full[w+i] = ^uint64(0)
				}
				m.full[w+m.nwords-1] = m.mask
			}
		}
	}
}

func (m *mrt) at(row, cluster int) *cell {
	return &m.rows[row*m.cfg.NumClusters()+cluster]
}

// fidx returns the first bitmap word of the (cluster, class) pair.
func (m *mrt) fidx(cluster int, class machine.FUClass) int {
	return (cluster*int(machine.NumClasses) + int(class)) * m.nwords
}

// free reports whether an FU of the given class is available in the cluster
// at the given row (one AND of the packed occupancy word).
func (m *mrt) free(row, cluster int, class machine.FUClass) bool {
	return m.full[m.fidx(cluster, class)+row>>6]>>(uint(row)&63)&1 == 0
}

// freeScalar is the scalar reference for free: the occupant-list length
// check the pre-bitset scheduler used. The differential harness schedules
// entire corpora through it to pin the packed probes byte-identical.
func (m *mrt) freeScalar(row, cluster int, class machine.FUClass) bool {
	return len(m.at(row, cluster)[class]) < m.cfg.FUCount(cluster, class)
}

// firstFree returns the first cycle t in [from, to) whose row t%II has a
// free unit of the class in the cluster. The caller guarantees
// to-from <= II, so each row is visited at most once; on the II <= 64 fast
// path the whole window collapses to one rotate + mask + trailing-zeros.
func (m *mrt) firstFree(from, to, cluster int, class machine.FUClass) (int, bool) {
	if from >= to {
		return 0, false
	}
	w := m.fidx(cluster, class)
	if m.nwords == 1 {
		avail := ^m.full[w] & m.mask
		if avail == 0 {
			return 0, false
		}
		// Rotate the free-row bits so bit d corresponds to cycle from+d,
		// then clip to the window length.
		r0 := uint(from % m.ii)
		g := (avail>>r0 | avail<<(uint(m.ii)-r0)) & m.mask
		if l := to - from; l < m.ii {
			g &= 1<<uint(l) - 1
		}
		if g == 0 {
			return 0, false
		}
		return from + bits.TrailingZeros64(g), true
	}
	for t := from; t < to; t++ {
		row := t % m.ii
		if m.full[w+row>>6]>>(uint(row)&63)&1 == 0 {
			return t, true
		}
	}
	return 0, false
}

// add reserves one unit; callers must have checked free (or intend to
// oversubscribe temporarily before evicting, which is forbidden here:
// add panics on oversubscription to catch scheduler bugs early).
func (m *mrt) add(row, cluster int, class machine.FUClass, opID int) {
	c := m.at(row, cluster)
	n := m.cfg.FUCount(cluster, class)
	if len(c[class]) >= n {
		panic("sched: MRT oversubscription")
	}
	c[class] = append(c[class], opID)
	if len(c[class]) == n {
		m.full[m.fidx(cluster, class)+row>>6] |= 1 << (uint(row) & 63)
	}
}

// remove releases the reservation of opID; it panics if absent.
func (m *mrt) remove(row, cluster int, class machine.FUClass, opID int) {
	c := m.at(row, cluster)
	s := c[class]
	for i, id := range s {
		if id == opID {
			c[class] = append(s[:i], s[i+1:]...)
			m.full[m.fidx(cluster, class)+row>>6] &^= 1 << (uint(row) & 63)
			return
		}
	}
	panic("sched: MRT remove of absent op")
}

// anyFree reports whether any row of the (cluster, class) pair still has a
// free unit — one complement-and-mask pass over the packed row-full words.
// The exact search's occupancy lookahead (exact.go) is built on it.
func (m *mrt) anyFree(cluster int, class machine.FUClass) bool {
	w := m.fidx(cluster, class)
	for i := 0; i < m.nwords-1; i++ {
		if ^m.full[w+i] != 0 {
			return true
		}
	}
	return ^m.full[w+m.nwords-1]&m.mask != 0
}

// occupants returns the ops occupying (row, cluster, class).
func (m *mrt) occupants(row, cluster int, class machine.FUClass) []int {
	return m.at(row, cluster)[class]
}
