package sched

import (
	"vliwq/internal/ir"
	"vliwq/internal/machine"
)

// This file retains the scalar reference implementation of the slot-search
// core: the pre-bitset findSlot and clusterPrefs, verbatim. It is live
// code, not an archive — the differential harness (differential_test.go)
// schedules whole corpora through it via Options and asserts the packed
// implementation in ims.go matches op-for-op, and machines wider than 64
// clusters are routed here unconditionally because the packed adjacency
// masks hold one bit per cluster. Any change to the search semantics must
// land in both implementations or the harness fails.

// findSlotRef is the scalar reference for findSlot: per-cluster earliest
// cycles and adjacency verdicts in flat arrays, then a lexicographic scan
// of (cycle, preference-order cluster) pairs probing the occupant-list
// lengths. The packed implementation must return exactly this slot.
func (st *state) findSlotRef(id, estart int) (int, int, bool) {
	prefs := st.clusterPrefsRef(id)
	if len(prefs) == 0 {
		return 0, 0, false
	}
	nc := st.cfg.NumClusters()
	minT := refill(st.minTBuf, nc, 0)
	adjOK := refill(st.adjBuf, nc, true)
	st.minTBuf, st.adjBuf = minT, adjOK
	for _, c := range prefs {
		req := 0
		for _, d := range st.preds.At(id) {
			tf := st.time[d.From]
			if tf < 0 {
				continue
			}
			lat := st.loop.Ops[d.From].Kind.Latency()
			if d.Kind == ir.Flow && st.cluster[d.From] != c {
				lat += st.cfg.CommLatency
			}
			if r := tf + lat - st.ii*d.Dist; r > req {
				req = r
			}
		}
		minT[c] = req
		ok := true
		for _, d := range st.preds.At(id) {
			if d.Kind == ir.Flow && st.time[d.From] >= 0 && !st.cfg.Adjacent(st.cluster[d.From], c) {
				ok = false
				break
			}
		}
		if ok {
			for _, d := range st.succs.At(id) {
				if d.Kind == ir.Flow && st.time[d.To] >= 0 && !st.cfg.Adjacent(c, st.cluster[d.To]) {
					ok = false
					break
				}
			}
		}
		adjOK[c] = ok
	}
	class := machine.ClassOf(st.loop.Ops[id].Kind)
	pinned := st.pinned[id]
	passes := 1
	if st.cfg.AllowMoves && pinned < 0 {
		passes = 2
	}
	for pass := 0; pass < passes; pass++ {
		requireAdj := pass == 0
		for t := estart; t < estart+st.ii; t++ {
			for _, c := range prefs {
				if pinned >= 0 && c != pinned {
					continue
				}
				if requireAdj && !adjOK[c] {
					continue
				}
				if t < minT[c] {
					continue
				}
				if st.table.freeScalar(t%st.ii, c, class) {
					return t, c, true
				}
			}
		}
	}
	return 0, 0, false
}

// clusterPrefsRef is the scalar reference for clusterPrefs: it re-walks the
// op's edge lists once per candidate cluster instead of gathering the
// per-cluster counters in one pass. Same key vectors, same insertion sort,
// so the preference order is identical by construction; the differential
// harness pins it anyway.
func (st *state) clusterPrefsRef(id int) []int {
	class := machine.ClassOf(st.loop.Ops[id].Kind)
	if st.allowed != nil {
		return st.allowedPrefs(class)
	}
	nc := st.cfg.NumClusters()
	prefs := st.prefBuf[:0]
	for c := 0; c < nc; c++ {
		if st.cfg.FUCount(c, class) == 0 {
			continue
		}
		// neigh counts already-scheduled flow neighbours on c; commDist
		// sums their ring distances to c (the copy/communication cost of
		// placing the op there). The distance sum is computed only for the
		// strategy that ranks on it, keeping the baseline walk as cheap as
		// it has always been.
		neigh, commDist := 0, 0
		wantDist := st.strat == StrategyAffinity
		for _, d := range st.preds.At(id) {
			if d.Kind == ir.Flow && st.time[d.From] >= 0 {
				if st.cluster[d.From] == c {
					neigh++
				}
				if wantDist {
					commDist += st.cfg.RingDistance(st.cluster[d.From], c)
				}
			}
		}
		for _, d := range st.succs.At(id) {
			if d.Kind == ir.Flow && st.time[d.To] >= 0 {
				if st.cluster[d.To] == c {
					neigh++
				}
				if wantDist {
					commDist += st.cfg.RingDistance(st.cluster[d.To], c)
				}
			}
		}
		p := clusterPref{c: c}
		switch st.strat {
		case StrategyLoadBalanced:
			p.k1, p.k2 = st.load[c], -neigh
		case StrategyAffinity:
			p.k1, p.k2 = commDist, -neigh
		case StrategyRoundRobin:
			p.k1 = st.cfg.RingDistance(id%nc, c)
		case StrategyPerturb:
			h := prefHash(id, c)
			p.k1, p.k2, p.k3 = -neigh, st.load[c]+int(h&1), int(h>>1&0xffff)
		default: // StrategyBaseline
			p.k1, p.k2 = -neigh, st.load[c]
		}
		i := len(prefs)
		prefs = append(prefs, p)
		for i > 0 && p.before(prefs[i-1]) {
			prefs[i] = prefs[i-1]
			i--
		}
		prefs[i] = p
	}
	st.prefBuf = prefs
	out := st.prefOut[:0]
	for _, p := range prefs {
		out = append(out, p.c)
	}
	st.prefOut = out
	return out
}
