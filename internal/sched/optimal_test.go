package sched

// Tests for the certified branch-and-bound backend (Effort: optimal,
// exact.go + bound.go). The properties here are the tier's public
// contract, restated in DESIGN.md §14:
//
//   - optimal never returns a worse II than exhaustive;
//   - Bound.Lower >= MII always, and Bound.Lower <= II;
//   - Bound.Optimal implies II == Bound.Lower;
//   - a cancelled proof still returns a complete, Verify-clean incumbent;
//   - the result is identical at any worker count.

import (
	"context"
	"reflect"
	"testing"

	"vliwq/internal/corpus"
	"vliwq/internal/ir"
	"vliwq/internal/machine"
)

// TestOptimalBoundContract is the stressed-corpus property test: over the
// loops whose partition quality decides II-optimality, the optimal tier
// must match-or-beat exhaustive and carry a self-consistent certificate.
func TestOptimalBoundContract(t *testing.T) {
	loops := corpus.Generate(corpusStress(48))
	improvedOrProved := 0
	for _, cfg := range []machine.Config{machine.Clustered(4), machine.Clustered(6)} {
		for _, l := range loops {
			ex, err := ScheduleLoop(l, cfg, Options{Effort: EffortExhaustive})
			if err != nil {
				t.Fatalf("%s on %s exhaustive: %v", l.Name, cfg.Name, err)
			}
			opt, err := ScheduleLoop(l, cfg, Options{Effort: EffortOptimal})
			if err != nil {
				t.Fatalf("%s on %s optimal: %v", l.Name, cfg.Name, err)
			}
			if err := opt.Verify(); err != nil {
				t.Fatalf("%s on %s: optimal schedule invalid: %v", l.Name, cfg.Name, err)
			}
			if opt.II > ex.II {
				t.Fatalf("%s on %s: optimal II %d worse than exhaustive %d", l.Name, cfg.Name, opt.II, ex.II)
			}
			b := opt.Bound
			if b.Lower < opt.MII() {
				t.Fatalf("%s on %s: Bound.Lower %d < MII %d", l.Name, cfg.Name, b.Lower, opt.MII())
			}
			if b.Lower > opt.II {
				t.Fatalf("%s on %s: Bound.Lower %d > II %d", l.Name, cfg.Name, b.Lower, opt.II)
			}
			if b.Optimal && opt.II != b.Lower {
				t.Fatalf("%s on %s: Optimal=true but II %d != Lower %d", l.Name, cfg.Name, opt.II, b.Lower)
			}
			if b.DeadlineCut {
				t.Fatalf("%s on %s: DeadlineCut without a deadline", l.Name, cfg.Name)
			}
			if ex.II > ex.MII() && (b.Optimal || opt.II < ex.II) {
				improvedOrProved++
			}
		}
	}
	if improvedOrProved == 0 {
		t.Fatalf("no exhaustive-gapped loop was proved optimal or improved; the exact search is not searching")
	}
}

// TestOptimalCancellation: an expired context cuts the proof but never the
// schedule — the portfolio incumbent comes back complete and Verify-clean,
// flagged unproved and deadline-cut. The end-to-end simulator check of the
// same property lives in the root package (TestOptimalEffortCancellation),
// where the pipeline's verify stage replays the incumbent.
func TestOptimalCancellation(t *testing.T) {
	cfg := machine.Clustered(6)
	l := findGappedLoop(t, cfg)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s, err := ScheduleLoopContext(ctx, l, cfg, Options{Effort: EffortOptimal})
	if err != nil {
		t.Fatalf("cancelled optimal compile failed: %v", err)
	}
	if err := s.Verify(); err != nil {
		t.Fatalf("incumbent invalid after cancellation: %v", err)
	}
	if s.Bound.Optimal {
		t.Fatalf("cancelled proof claims optimality (II=%d, Lower=%d)", s.II, s.Bound.Lower)
	}
	if !s.Bound.DeadlineCut {
		t.Fatalf("cancelled proof not flagged DeadlineCut")
	}
	if s.Bound.Lower != s.MII() {
		t.Fatalf("cancelled proof raised the bound: Lower=%d, MII=%d", s.Bound.Lower, s.MII())
	}
	// The incumbent must equal the exhaustive tier's schedule: cancellation
	// may only cost the certificate, never placement quality.
	ex, err := ScheduleLoop(l, cfg, Options{Effort: EffortExhaustive})
	if err != nil {
		t.Fatal(err)
	}
	if s.II != ex.II || !reflect.DeepEqual(s.Time, ex.Time) || !reflect.DeepEqual(s.Cluster, ex.Cluster) {
		t.Fatalf("cancelled incumbent differs from the exhaustive schedule (II %d vs %d)", s.II, ex.II)
	}
}

// TestOptimalBudgetCutDeterministic: a node-budget cut is deterministic —
// unlike a deadline cut it reproduces bit-for-bit, so it is not flagged
// DeadlineCut and stays cacheable.
func TestOptimalBudgetCutDeterministic(t *testing.T) {
	cfg := machine.Clustered(6)
	l := findGappedLoop(t, cfg)
	opts := Options{Effort: EffortOptimal, BudgetRatio: 1}
	var ref *Schedule
	for _, workers := range []int{1, 4} {
		o := opts
		o.RaceWorkers = workers
		s, err := ScheduleLoop(l, cfg, o)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if s.Bound.DeadlineCut {
			t.Fatalf("workers=%d: budget cut misreported as deadline cut", workers)
		}
		if ref == nil {
			ref = s
			continue
		}
		if s.II != ref.II || s.Bound != ref.Bound ||
			!reflect.DeepEqual(s.Time, ref.Time) || !reflect.DeepEqual(s.Cluster, ref.Cluster) {
			t.Fatalf("workers=%d: optimal result differs from workers=1 (II %d vs %d, bound %+v vs %+v)",
				workers, s.II, ref.II, s.Bound, ref.Bound)
		}
	}
}

// TestOptimalTrivialCertificates: the cases that skip the search entirely.
func TestOptimalTrivialCertificates(t *testing.T) {
	// A heuristic MII hit is proved optimal with zero search nodes.
	l := corpus.Daxpy()
	cfg := machine.Clustered(4)
	s, err := ScheduleLoop(l, cfg, Options{Effort: EffortOptimal})
	if err != nil {
		t.Fatal(err)
	}
	if s.II == s.MII() {
		if !s.Bound.Optimal || s.Bound.Lower != s.II || s.Stats.PrunedNodes != 0 {
			t.Fatalf("MII hit not trivially certified: II=%d bound=%+v pruned=%d", s.II, s.Bound, s.Stats.PrunedNodes)
		}
	}
	// Heuristic tiers never set a certificate.
	for _, e := range []Effort{EffortFast, EffortBalanced, EffortExhaustive} {
		s, err := ScheduleLoop(l, cfg, Options{Effort: e})
		if err != nil {
			t.Fatal(err)
		}
		if s.Bound != (Bound{}) {
			t.Fatalf("effort %s set a bound: %+v", e, s.Bound)
		}
	}
	// Moves-extended machines keep the trivial MII certificate: the exact
	// model does not cover move insertion, so the bound must never rise.
	mv := machine.Clustered(6)
	mv.AllowMoves = true
	for _, l := range corpus.Generate(corpusStress(8)) {
		s, err := ScheduleLoop(l, mv, Options{Effort: EffortOptimal})
		if err != nil {
			t.Fatal(err)
		}
		if s.Bound.Lower != s.MII() || s.Bound.Optimal != (s.II == s.MII()) {
			t.Fatalf("%s with moves: bound %+v, II=%d, MII=%d", l.Name, s.Bound, s.II, s.MII())
		}
	}
}

// TestExactSearchRejectsInfeasibleII: the searcher run directly at an II
// below RecMII must never "find" a schedule — the positive-cycle test is
// the searcher's soundness in the rejecting direction. On the small
// hand-written kernels the proof also completes within budget (an actual
// exhaustion, not an abort); large stressed loops may legitimately burn
// the budget first, which is exactly what the budget is for.
func TestExactSearchRejectsInfeasibleII(t *testing.T) {
	cfg := machine.Clustered(4)
	proved := 0
	for _, l := range corpus.Kernels() {
		rec := RecMII(l)
		if rec < 2 {
			continue
		}
		if _, err := ResMII(l, cfg); err != nil {
			continue
		}
		ex := newExactSearcher(l, &cfg)
		switch got := ex.search(context.Background(), rec-1, 1<<20); got {
		case exactFound:
			t.Fatalf("%s: search found a schedule at II=%d < RecMII=%d", l.Name, rec-1, rec)
		case exactInfeasible:
			proved++
		}
	}
	if proved == 0 {
		t.Fatal("no kernel's sub-RecMII infeasibility was proved within budget")
	}
}

// TestExactFoundScheduleVerifies: every schedule the searcher materializes
// (stage counters recovered from the propagation potentials) satisfies the
// full Verify contract, on single-cluster and ring machines.
func TestExactFoundScheduleVerifies(t *testing.T) {
	cfgs := []machine.Config{machine.SingleCluster(4), machine.Clustered(4), machine.Clustered(6)}
	for _, cfg := range cfgs {
		for _, l := range corpus.Generate(corpusStress(8)) {
			resMII, err := ResMII(l, cfg)
			if err != nil {
				t.Fatal(err)
			}
			recMII := RecMII(l)
			mii := resMII
			if recMII > mii {
				mii = recMII
			}
			ex := newExactSearcher(l, &cfg)
			for ii := mii; ii < mii+4; ii++ {
				st := ex.search(context.Background(), ii, 60000)
				if st != exactFound {
					continue
				}
				s := ex.schedule(cfg, ii, resMII, recMII)
				if err := s.Verify(); err != nil {
					t.Fatalf("%s on %s at II=%d: exact schedule invalid: %v", l.Name, cfg.Name, ii, err)
				}
				break
			}
		}
	}
}

// findGappedLoop returns the first stressed loop whose exhaustive schedule
// leaves II > MII on cfg — the population the optimal tier exists for.
func findGappedLoop(t *testing.T, cfg machine.Config) *ir.Loop {
	t.Helper()
	for _, l := range corpus.Generate(corpusStress(64)) {
		s, err := ScheduleLoop(l, cfg, Options{Effort: EffortExhaustive})
		if err != nil {
			continue
		}
		if s.II > s.MII() && len(s.Loop.Ops) == len(l.Ops) {
			return l
		}
	}
	t.Fatal("no gapped loop in the stressed slice")
	return nil
}
