package sched

// The differential test harness for the bitset feasibility core (DESIGN.md
// §13). The scheduler keeps two implementations of every feasibility
// primitive: the packed bitset fast path (mrt.full words, adjacency masks,
// argmin candidate selection) and the retained scalar reference
// (ref.go + mrt.freeScalar), selected per run by Options.refImpl. The
// tests here drive both over randomized machines and stressed loops and
// demand op-for-op identical schedules, pin the per-probe MRT agreement
// directly, and pin the schedule digests of every effort tier so byte
// drift anywhere in the corpus fails loudly.
//
// CONTRIBUTING.md makes this file a gate: bench/baseline.txt must never be
// refreshed while any test in here is red.

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"reflect"
	"testing"

	"vliwq/internal/corpus"
	"vliwq/internal/ir"
	"vliwq/internal/machine"
)

// effortDigest hashes every schedule of loops × cfgs at one effort tier
// into a single FNV-64a word: name, II, winning strategy, and each op's
// (cycle, cluster) placement.
func effortDigest(t *testing.T, loops []*ir.Loop, cfgs []machine.Config, e Effort) uint64 {
	t.Helper()
	h := fnv.New64a()
	writeInt := func(v int) {
		var b [8]byte
		for i := 0; i < 8; i++ {
			b[i] = byte(v >> (8 * i))
		}
		h.Write(b[:])
	}
	for _, cfg := range cfgs {
		for _, l := range loops {
			s, err := ScheduleLoop(l, cfg, Options{Effort: e})
			if err != nil {
				t.Fatalf("%s on %s: %v", l.Name, cfg.Name, err)
			}
			h.Write([]byte(l.Name))
			writeInt(s.II)
			writeInt(int(s.Strategy))
			for id := range s.Loop.Ops {
				writeInt(s.Time[id])
				writeInt(s.Cluster[id])
			}
		}
	}
	return h.Sum64()
}

// TestScheduleDigestPinnedAllEfforts extends the fast-path digest pin
// (TestFastScheduleDigestPinned) to every effort tier over both the
// 64-loop bench corpus and the first 48 stressed loops (the structural
// remap corpus size). Any placement shift anywhere — a candidate ordering
// change, a worklist tie-break, an MRT probe off by one — moves one of the
// six words. Regenerate the constants only for a deliberate, reviewed
// scheduler behaviour change, never to make a refactor pass.
func TestScheduleDigestPinnedAllEfforts(t *testing.T) {
	cfgs := []machine.Config{machine.SingleCluster(12), machine.Clustered(4), machine.Clustered(6)}
	bench := identityCorpus(t)
	stressed := corpus.Stressed()[:48]
	pinned := map[Effort][2]uint64{
		EffortFast:       {0xd1a1c7a67cc45035, 0x62de04b8de0b69ab},
		EffortBalanced:   {0xd0a9c3817e9fe0cb, 0xb8418867b245cbca},
		EffortExhaustive: {0xcf72e4dc163740c6, 0x4c8c69bf2b816f57},
	}
	for _, e := range []Effort{EffortFast, EffortBalanced, EffortExhaustive} {
		want := pinned[e]
		if got := effortDigest(t, bench, cfgs, e); got != want[0] {
			t.Errorf("effort=%s bench-corpus digest = %#x, want %#x", e, got, want[0])
		}
		if got := effortDigest(t, stressed, cfgs, e); got != want[1] {
			t.Errorf("effort=%s stressed-corpus digest = %#x, want %#x", e, got, want[1])
		}
	}
}

// randomConfig builds a random ring machine: 1-8 clusters with mixed FU
// widths (including clusters missing a class entirely — their classMask
// bit is absent and their MRT rows are born full), random comm latency and
// the move extension on half the draws. Cluster 0 always provides every
// class so ResMII cannot reject a loop outright.
func randomConfig(rng *rand.Rand) machine.Config {
	nc := 1 + rng.Intn(8)
	clusters := make([]machine.Cluster, nc)
	for i := range clusters {
		var fus [machine.NumClasses]int
		for cl := range fus {
			fus[cl] = rng.Intn(3) // 0-2 units: mixed widths, gaps included
		}
		if i == 0 {
			for cl := range fus {
				if fus[cl] == 0 {
					fus[cl] = 1
				}
			}
		}
		total := 0
		for _, n := range fus {
			total += n
		}
		if total == 0 {
			fus[machine.ALU] = 1 // Validate rejects an FU-less cluster
		}
		clusters[i] = machine.Cluster{FUs: fus, PrivateQueues: machine.DefaultPrivateQueues}
	}
	return machine.Config{
		Name:        fmt.Sprintf("rand-%dc", nc),
		Clusters:    clusters,
		RingQueues:  machine.DefaultRingQueues,
		CommLatency: rng.Intn(3),
		AllowMoves:  rng.Intn(2) == 1,
	}
}

// TestDifferentialBitsetVsReference is the harness's main property: over
// randomized machines × stressed loops, a run whose every feasibility
// probe goes through the scalar reference implementation must produce the
// schedule the packed bitset path produces, op for op — same II, same
// winning strategy, same (cycle, cluster) per op, or the identical error.
// The seed is logged so a failure replays exactly.
func TestDifferentialBitsetVsReference(t *testing.T) {
	const seed = 20260808
	rng := rand.New(rand.NewSource(seed))
	t.Logf("differential seed %d", seed)
	loops := corpus.Stressed()
	efforts := []Effort{EffortFast, EffortBalanced}
	for trial := 0; trial < 32; trial++ {
		cfg := randomConfig(rng)
		l := loops[rng.Intn(len(loops))]
		e := efforts[trial%len(efforts)]
		opts := Options{Effort: e}
		refOpts := opts
		refOpts.refImpl = true
		got, gotErr := ScheduleLoop(l, cfg, opts)
		want, wantErr := ScheduleLoop(l, cfg, refOpts)
		ctx := fmt.Sprintf("trial %d: %s on %s (comm=%d moves=%v effort=%s)",
			trial, l.Name, cfg.String(), cfg.CommLatency, cfg.AllowMoves, e)
		if (gotErr == nil) != (wantErr == nil) {
			t.Fatalf("%s: packed err=%v, reference err=%v", ctx, gotErr, wantErr)
		}
		if gotErr != nil {
			continue
		}
		if got.II != want.II || got.Strategy != want.Strategy {
			t.Fatalf("%s: packed II=%d/%v, reference II=%d/%v",
				ctx, got.II, got.Strategy, want.II, want.Strategy)
		}
		if !reflect.DeepEqual(got.Time, want.Time) || !reflect.DeepEqual(got.Cluster, want.Cluster) {
			t.Fatalf("%s: placements diverge\npacked  time=%v cluster=%v\nref     time=%v cluster=%v",
				ctx, got.Time, got.Cluster, want.Time, want.Cluster)
		}
	}
}

// TestMRTProbeDifferential pins the per-probe agreement of the two MRT
// occupancy views directly: after every add/remove of a randomized
// reservation script, the packed bitmap (free, firstFree) must answer
// exactly like the scalar occupant-list reference (freeScalar, a linear
// window walk). FuzzMRTBitset extends this script shape to fuzzing.
func TestMRTProbeDifferential(t *testing.T) {
	const seed = 8081998
	rng := rand.New(rand.NewSource(seed))
	t.Logf("mrt probe seed %d", seed)
	for trial := 0; trial < 64; trial++ {
		ii := 1 + rng.Intn(64)
		cfg := randomConfig(rng)
		nc := cfg.NumClusters()
		m := newMRT(ii, &cfg)
		type res struct {
			row, c int
			class  machine.FUClass
			id     int
		}
		var live []res
		nextID := 0
		for step := 0; step < 128; step++ {
			if len(live) > 0 && rng.Intn(3) == 0 {
				k := rng.Intn(len(live))
				r := live[k]
				m.remove(r.row, r.c, r.class, r.id)
				live = append(live[:k], live[k+1:]...)
			} else {
				row, c := rng.Intn(ii), rng.Intn(nc)
				class := machine.FUClass(rng.Intn(int(machine.NumClasses)))
				if m.freeScalar(row, c, class) {
					m.add(row, c, class, nextID)
					live = append(live, res{row, c, class, nextID})
					nextID++
				}
			}
			mrtViewsAgree(t, m, &cfg, ii)
			if t.Failed() {
				t.Fatalf("trial %d step %d (ii=%d, %s): packed and scalar MRT views diverged", trial, step, ii, cfg.Name)
			}
		}
	}
}

// mrtViewsAgree asserts free == freeScalar on every slot and firstFree ==
// a scalar window walk on a spread of windows.
func mrtViewsAgree(t *testing.T, m *mrt, cfg *machine.Config, ii int) {
	t.Helper()
	nc := cfg.NumClusters()
	for c := 0; c < nc; c++ {
		for class := machine.FUClass(0); class < machine.NumClasses; class++ {
			for row := 0; row < ii; row++ {
				if got, want := m.free(row, c, class), m.freeScalar(row, c, class); got != want {
					t.Errorf("free(%d,%d,%v) = %v, scalar reference says %v", row, c, class, got, want)
					return
				}
			}
			for _, from := range []int{0, ii / 2, ii - 1, ii, 3*ii + 1} {
				for _, span := range []int{1, ii / 2, ii} {
					if span == 0 {
						continue
					}
					to := from + span
					gotT, gotOK := m.firstFree(from, to, c, class)
					wantT, wantOK := -1, false
					for x := from; x < to; x++ {
						if m.freeScalar(x%ii, c, class) {
							wantT, wantOK = x, true
							break
						}
					}
					if gotOK != wantOK || (gotOK && gotT != wantT) {
						t.Errorf("firstFree(%d,%d,%d,%v) = (%d,%v), scalar walk says (%d,%v)",
							from, to, c, class, gotT, gotOK, wantT, wantOK)
						return
					}
				}
			}
		}
	}
}

// TestRecMIIDecompositionMatchesReference pins the SCC-decomposed RecMII
// (recMIIInto, with its singleton self-loop shortcut and per-component
// binary searches) against the whole-graph binary-search reference
// (recMIIRef) over the stressed corpus and freshly randomized loops.
func TestRecMIIDecompositionMatchesReference(t *testing.T) {
	var scr recScratch
	check := func(loops []*ir.Loop, tag string) {
		for _, l := range loops {
			if got, want := recMIIInto(l, &scr), recMIIRef(l); got != want {
				t.Errorf("%s/%s: recMIIInto = %d, reference = %d", tag, l.Name, got, want)
			}
		}
	}
	check(corpus.Stressed(), "stressed")
	check(corpus.Generate(corpus.Params{Seed: 424242, N: 64}), "random")
	check(corpus.Kernels(), "kernels")
}
