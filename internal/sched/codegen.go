package sched

import (
	"fmt"
	"io"
	"strings"

	"vliwq/internal/machine"
)

// Code generation: a modulo schedule describes only the kernel; the
// executable loop consists of a prologue that fills the pipeline (stages
// starting one iteration at a time), the steady-state kernel executed once
// per remaining iteration, and an epilogue that drains the in-flight
// iterations (paper §2: "the less efficient stages surrounding the kernel
// execution"). EmitPipelined renders the complete program as VLIW
// instruction words, one line per cycle, one slot per functional unit.
//
// The emitted text is the machine's instruction stream, not a simulation:
// each slot holds `op[iter_offset]`, where iter_offset is the iteration
// (relative to the word's first stage) the operation instance belongs to.

// EmitPipelined writes the full software-pipelined program for the
// schedule. The listing has (SC-1)*II prologue cycles, II kernel cycles
// and (SC-1)*II epilogue cycles, where SC is the stage count.
func EmitPipelined(w io.Writer, s *Schedule) error {
	sc := s.StageCount()
	ii := s.II

	// slotName renders one operation instance in a word.
	slotName := func(id, stageOfWord int) string {
		op := s.Loop.Ops[id]
		name := op.Name
		if name == "" {
			name = fmt.Sprintf("%s%d", op.Kind, op.ID)
		}
		// The op issues in stage floor(S/II); an instruction word executed
		// while the pipeline is at stage `stageOfWord` runs the instance
		// of iteration (stageOfWord - opStage).
		iter := stageOfWord - s.Time[id]/ii
		if iter == 0 {
			return fmt.Sprintf("%s[i]", name)
		}
		return fmt.Sprintf("%s[i%+d]", name, -iter)
	}

	// For each kernel row and cluster, the ops issuing there.
	type slot struct{ id, stage int }
	rows := make([][][]slot, ii)
	for r := range rows {
		rows[r] = make([][]slot, s.Machine.NumClusters())
	}
	for id := range s.Loop.Ops {
		r := s.Time[id] % ii
		rows[r][s.Cluster[id]] = append(rows[r][s.Cluster[id]],
			slot{id, s.Time[id] / ii})
	}

	var b strings.Builder
	writeWord := func(cycle, row, minStage, maxStage int) {
		fmt.Fprintf(&b, "%4d:", cycle)
		for c := 0; c < s.Machine.NumClusters(); c++ {
			var ops []string
			for _, sl := range rows[row][c] {
				if sl.stage < minStage || sl.stage > maxStage {
					continue // instance not active in this phase
				}
				ops = append(ops, slotName(sl.id, maxStage))
			}
			cell := strings.Join(ops, " ")
			if cell == "" {
				cell = "nop"
			}
			fmt.Fprintf(&b, "  | %-24s", cell)
		}
		b.WriteString("\n")
	}

	fmt.Fprintf(&b, "; %s: II=%d stages=%d machine=%s\n", s.Loop.Name, ii, sc, s.Machine.Name)
	fmt.Fprintf(&b, "; prologue (%d cycles)\n", (sc-1)*ii)
	cycle := 0
	// Prologue: pipeline fill. In fill step k (0-based), stages 0..k are
	// active; the word at row r executes the ops of stages <= k.
	for k := 0; k < sc-1; k++ {
		for r := 0; r < ii; r++ {
			writeWord(cycle, r, 0, k)
			cycle++
		}
	}
	fmt.Fprintf(&b, "; kernel (%d cycles, iterate %s times)\n", ii, "trip-(stages-1)")
	for r := 0; r < ii; r++ {
		writeWord(cycle, r, 0, sc-1)
		cycle++
	}
	fmt.Fprintf(&b, "; epilogue (%d cycles)\n", (sc-1)*ii)
	// Epilogue: pipeline drain. In drain step k, stages k+1..sc-1 remain.
	for k := 0; k < sc-1; k++ {
		for r := 0; r < ii; r++ {
			writeWord(cycle, r, k+1, sc-1)
			cycle++
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// PipelinedLength returns the total cycle count of the emitted program
// for n iterations of the body: prologue + kernel repetitions + epilogue.
func PipelinedLength(s *Schedule, n int) int {
	sc := s.StageCount()
	if n < sc {
		// Degenerate short trips fall back to sequential stage execution.
		return n * s.Length()
	}
	return (n + sc - 1) * s.II
}

// CountSlots tallies the issue slots of the emitted kernel: used slots,
// total slots, and the resulting utilization — the static IPC denominator
// the paper's §4 discussion refers to.
func CountSlots(s *Schedule) (used, total int, utilization float64) {
	used = len(s.Loop.Ops)
	fus := s.Machine.TotalFUs()
	perCycle := 0
	for _, n := range fus {
		perCycle += n
	}
	total = perCycle * s.II
	if total > 0 {
		utilization = float64(used) / float64(total)
	}
	return used, total, utilization
}

// ClusterUtilization returns the fraction of each cluster's issue slots
// used by the kernel, exposing partitioning balance.
func ClusterUtilization(s *Schedule) []float64 {
	out := make([]float64, s.Machine.NumClusters())
	counts := make([]int, s.Machine.NumClusters())
	for id := range s.Loop.Ops {
		counts[s.Cluster[id]]++
	}
	for c := range out {
		perCycle := 0
		for class := machine.FUClass(0); class < machine.NumClasses; class++ {
			perCycle += s.Machine.FUCount(c, class)
		}
		if perCycle > 0 {
			out[c] = float64(counts[c]) / float64(perCycle*s.II)
		}
	}
	return out
}
