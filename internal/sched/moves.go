package sched

import (
	"vliwq/internal/ir"
	"vliwq/internal/machine"
)

// insertMoveChain implements the paper's proposed extension (§5): when a
// flow dependence spans non-adjacent clusters, replace it with a chain of
// move operations hopping along the shortest ring path, each pinned to its
// intermediate cluster and executed on that cluster's COPY unit. The new
// operations join the worklist; the caller extends the budget by the number
// of added ops.
//
// It returns the number of operations added (0 if the chain cannot be built,
// in which case the consumer is evicted instead, as in the base algorithm).
func (st *state) insertMoveChain(d ir.Dep, wl *worklist) int {
	cp, cc := st.cluster[d.From], st.cluster[d.To]
	hops := st.cfg.RingDistance(cp, cc)
	if hops <= 1 {
		return 0
	}
	n := st.cfg.NumClusters()
	// Shortest direction around the ring.
	step := 1
	if (cp-cc+n)%n < (cc-cp+n)%n {
		step = -1
	}
	// Every intermediate cluster needs a COPY unit to host a move.
	path := st.pathBuf[:0]
	for c := (cp + step + n) % n; c != cc; c = (c + step + n) % n {
		if st.cfg.FUCount(c, machine.COPY) == 0 {
			st.evict(d.To, wl)
			return 0
		}
		path = append(path, c)
	}
	st.pathBuf = path

	// About to mutate the op and dependence lists: give the working loop
	// private storage. Until here they alias the pristine input (and, in a
	// portfolio race, the CSR views may be shared by every racing
	// strategy), so mutating in place would corrupt the other attempts.
	st.detach()

	// Remove the offending dependence (first value match).
	removed := false
	for i, e := range st.loop.Deps {
		if e == d {
			st.loop.Deps = append(st.loop.Deps[:i], st.loop.Deps[i+1:]...)
			removed = true
			break
		}
	}
	if !removed {
		return 0
	}

	// Build producer -> m1 -> ... -> mk -> consumer. The loop-carried
	// distance stays on the first hop, so no move instance is ever read
	// from before iteration zero; lineage is still set so a move's value
	// identity matches the value it forwards.
	src := st.loop.Ops[d.From]
	prev := d.From
	dist := d.Dist
	added := 0
	for _, c := range path {
		m := st.loop.AddOp(ir.KMove, "")
		m.Orig = src.EffID()
		m.Phase = src.Phase
		st.growOp(c)
		st.loop.AddDep(ir.Dep{From: prev, To: m.ID, Dist: dist, Kind: ir.Flow})
		prev, dist = m.ID, 0
		added++
		st.stats.MovesInserted++
		wl.push(m.ID)
	}
	st.loop.AddDep(ir.Dep{From: prev, To: d.To, Dist: dist, Kind: ir.Flow})

	// The graph changed shape: rebuild adjacency and priorities, and
	// restore the heap invariant under the new heights. The rebuild goes
	// into the state's private mutPreds/mutSuccs arenas — never into the
	// base views, whose storage may be shared with other racing attempts.
	st.loop.PredsInto(&st.mutPreds)
	st.loop.SuccsInto(&st.mutSuccs)
	st.preds = st.mutPreds
	st.succs = st.mutSuccs
	st.computeHeights()
	wl.fix()
	return added
}

// growOp extends the per-op state arrays for a newly added move operation
// pinned to the given cluster (the only kind the scheduler ever adds).
func (st *state) growOp(pinnedCluster int) {
	st.time = append(st.time, -1)
	st.cluster = append(st.cluster, -1)
	st.prevTime = append(st.prevTime, -1)
	st.pinned = append(st.pinned, pinnedCluster)
	st.never = append(st.never, true)
	st.height = append(st.height, 0)
	st.lat = append(st.lat, ir.KMove.Latency())
	st.class = append(st.class, machine.ClassOf(ir.KMove))
	st.wl.in = append(st.wl.in, false)
}
