package sched

import (
	"testing"

	"vliwq/internal/machine"
)

// FuzzMRTBitset fuzzes the packed MRT occupancy bitmaps against the scalar
// occupant-list reference (the same agreement TestMRTProbeDifferential
// pins on fixed seeds). The input derives an II in [1, 64], a ring machine
// of 1-8 clusters with mixed FU widths, and a reservation script; after
// every add/remove the packed free bit of each (row, cluster, class) slot
// must match freeScalar, and firstFree windows must match a scalar walk.
// Any divergence is a feasibility probe the scheduler would answer
// differently on the two paths — exactly the byte-identity break the
// differential harness exists to catch. Nightly fuzz.yml runs this target;
// crashers land in testdata/fuzz and are committed as regression seeds.
func FuzzMRTBitset(f *testing.F) {
	f.Add(uint8(3), uint8(1), uint8(0), []byte{0, 0, 0, 1, 1, 0, 2, 0, 1})
	f.Add(uint8(63), uint8(5), uint8(7), []byte{10, 2, 0, 11, 3, 1, 10, 2, 0, 200, 0, 0})
	f.Add(uint8(64), uint8(8), uint8(255), []byte{0, 0, 0, 63, 7, 3, 31, 4, 2, 1, 1, 1, 128, 0, 0})
	f.Fuzz(func(t *testing.T, iiRaw, ncRaw, widths uint8, script []byte) {
		ii := 1 + int(iiRaw)%64
		nc := 1 + int(ncRaw)%8
		clusters := make([]machine.Cluster, nc)
		for i := range clusters {
			// Mixed widths driven by the input: 0-2 units per class, shifted
			// per cluster so the layout is irregular; cluster 0 keeps one of
			// everything so no class is machine-wide absent.
			var fus [machine.NumClasses]int
			for cl := range fus {
				fus[cl] = int(widths>>uint((i+cl)%7)) % 3
				if i == 0 && fus[cl] == 0 {
					fus[cl] = 1
				}
			}
			total := 0
			for _, n := range fus {
				total += n
			}
			if total == 0 {
				fus[machine.ALU] = 1
			}
			clusters[i] = machine.Cluster{FUs: fus, PrivateQueues: machine.DefaultPrivateQueues}
		}
		cfg := machine.Config{Name: "fuzz", Clusters: clusters, RingQueues: machine.DefaultRingQueues}
		m := newMRT(ii, &cfg)

		type res struct {
			row, c int
			class  machine.FUClass
			id     int
		}
		var live []res
		nextID := 0
		for i := 0; i+2 < len(script) && i < 3*64; i += 3 {
			a, b, op := script[i], script[i+1], script[i+2]
			if op >= 128 && len(live) > 0 {
				k := (int(a)<<8 | int(b)) % len(live)
				r := live[k]
				m.remove(r.row, r.c, r.class, r.id)
				live = append(live[:k], live[k+1:]...)
			} else {
				row, c := int(a)%ii, int(b)%nc
				class := machine.FUClass(op % uint8(machine.NumClasses))
				if m.freeScalar(row, c, class) {
					m.add(row, c, class, nextID)
					live = append(live, res{row, c, class, nextID})
					nextID++
				}
			}
			mrtViewsAgree(t, m, &cfg, ii)
			if t.Failed() {
				t.Fatalf("packed and scalar MRT views diverged at script offset %d (ii=%d, nc=%d, widths=%#x)",
					i, ii, nc, widths)
			}
		}
	})
}
