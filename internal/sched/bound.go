// Certified optimality: the Bound contract and the Effort: optimal ladder.
//
// The heuristic tiers (fast/balanced/exhaustive) stop at the first II any
// strategy schedules, which proves nothing about the IIs below it. The
// optimal tier closes that hole: it first runs the exhaustive portfolio for
// an incumbent, then walks every integer II from MII up to the incumbent
// and asks the exact branch-and-bound searcher (exact.go) the decision
// question "does any partitioned modulo schedule exist at this II?". Each
// exhausted search raises the proved lower bound by one; the first feasible
// II replaces the incumbent and closes the gap. The result carries the
// certificate as Schedule.Bound (DESIGN.md §14).
//
// The ladder is anytime: it is cut at the node-budget boundary (a
// deterministic per-II cap derived from Options.BudgetRatio) or at the
// context deadline, and in both cases the best incumbent — always a
// complete, verified schedule — is returned with Bound.Optimal=false.
// Budget cuts are deterministic and therefore cacheable; deadline cuts are
// wall-clock dependent and flagged DeadlineCut so the serving layer can
// keep them out of its caches.

package sched

import (
	"context"

	"vliwq/internal/ir"
	"vliwq/internal/machine"
)

// Bound is the optimality certificate of a schedule produced under
// Options.Effort: optimal. The zero value (Lower == 0) means no certificate
// was computed — the heuristic tiers never set one, which keeps their
// reports, golden files and cache entries byte-identical.
type Bound struct {
	// Lower is the proved lower bound on the initiation interval of any
	// partitioned modulo schedule for this (loop, machine) pair. It starts
	// at MII = max(ResMII, RecMII) and rises by one for every candidate II
	// the exact search exhausts without finding a schedule; it never
	// exceeds the achieved II.
	Lower int
	// Optimal reports that the search proved II == Lower: every smaller II
	// was exhausted, so no schedule with a smaller initiation interval
	// exists. False means the proof was cut (budget or deadline) with the
	// gap [Lower, II) still open — the schedule itself is still valid.
	Optimal bool
	// DeadlineCut reports that the proof search was interrupted by context
	// cancellation rather than by the deterministic node budget. Such a
	// certificate depends on wall-clock timing, so deadline-cut results
	// must not be cached under a canonical request key (the service
	// forgets them after serving); budget-cut results are reproducible and
	// cache normally. DeadlineCut is never true when Optimal is true.
	DeadlineCut bool
}

// exactNodeBudgetPerRatio scales Options.BudgetRatio into the per-candidate-
// II search-node cap: the default ratio of 6 allows 240k nodes per II. The
// cap is counted in placements tried, so it is identical at any worker
// count and on any machine — a budget-cut certificate is deterministic.
const exactNodeBudgetPerRatio = 40000

func exactNodeBudget(ratio int) int64 {
	return int64(ratio) * exactNodeBudgetPerRatio
}

// scheduleOptimal implements Options.Effort: optimal. It obtains an
// incumbent from the heuristic portfolio (the same race the exhaustive tier
// runs), then certifies or improves it with the exact searcher, walking
// every integer II in [MII, incumbent II). Note the ladder deliberately
// does not use candidateIIs: a proof of optimality needs every integer
// rung, while the heuristic ladder is allowed to skip.
func scheduleOptimal(ctx context.Context, st *state, l *ir.Loop, cfg machine.Config, opts Options, strats []Strategy, resMII, recMII, maxII int) (*Schedule, error) {
	var s *Schedule
	var err error
	if len(strats) > 1 {
		s, err = schedulePortfolio(st, l, cfg, opts, strats, resMII, recMII, maxII)
	} else {
		s, err = scheduleSingle(st, l, cfg, opts, strats[0], resMII, recMII, maxII)
	}
	if err != nil {
		return nil, err
	}
	mii := s.MII()
	s.Bound = Bound{Lower: mii}
	if s.II == mii {
		// The heuristic already reached the lower bound; MII-optimality
		// needs no search.
		s.Bound.Optimal = true
		return s, nil
	}
	// The exact model covers the pristine loop under the ring rule. Move
	// insertion grows the op set mid-search (so "no schedule at II" would
	// not be a sound lower bound for the moves-extended machine), and
	// machines wider than one mask word have no packed cluster masks;
	// both keep the trivial MII certificate.
	if cfg.AllowMoves || cfg.NumClusters() > 64 || len(s.Loop.Ops) != len(l.Ops) {
		return s, nil
	}
	ex := newExactSearcher(l, &cfg)
	budget := exactNodeBudget(opts.budgetRatio())
	for ii := mii; ii < s.II; ii++ {
		if ctx.Err() != nil {
			s.Bound.DeadlineCut = true
			return s, nil
		}
		res := ex.search(ctx, ii, budget)
		s.Stats.PrunedNodes += ex.pruned
		switch res {
		case exactFound:
			opt := ex.schedule(cfg, ii, resMII, recMII)
			// The incumbent's strategy and accumulated work carry over:
			// the exact schedule supersedes the portfolio's result, and
			// every smaller II was exhausted first, so ii is proved
			// optimal.
			opt.Strategy = s.Strategy
			opt.Stats = s.Stats
			opt.Bound = Bound{Lower: ii, Optimal: true}
			return opt, nil
		case exactInfeasible:
			s.Bound.Lower = ii + 1
		case exactAborted:
			s.Bound.DeadlineCut = ex.ctxCut
			return s, nil
		}
	}
	// Every II below the incumbent is exhausted: the heuristic schedule
	// was optimal all along.
	s.Bound.Optimal = true
	return s, nil
}
