// Package sched implements Rau's Iterative Modulo Scheduling (IMS) and the
// paper's partitioned variant for clustered VLIW machines.
//
// The single-cluster scheduler is the classic algorithm: compute the minimum
// initiation interval MII = max(ResMII, RecMII), then for each candidate II
// try to place all operations with a budgeted, height-priority-driven
// iterative search that may evict (unschedule) conflicting operations.
//
// The partitioned scheduler extends slot search with a cluster dimension and
// the paper's communication rule: a value may only flow between operations
// on the same or ring-adjacent clusters. When no adjacent placement exists,
// conflicting neighbours are evicted and rescheduled (the paper's
// "backtracking"); if the budget runs out the II is increased — exactly the
// degradation Fig. 6 measures. With Config.AllowMoves the paper's proposed
// future extension is enabled: chains of move operations on COPY units carry
// values between non-adjacent clusters instead of forcing an eviction.
package sched

import (
	"context"
	"errors"
	"fmt"

	"vliwq/internal/ir"
	"vliwq/internal/machine"
)

// Schedule is a modulo schedule: an initiation interval plus, for every
// operation, a start cycle and a cluster assignment.
//
// When the scheduler inserts move operations (AllowMoves) the Loop field
// points at the transformed copy of the input loop; downstream passes
// (queue allocation, simulation) must use it rather than the original.
type Schedule struct {
	Loop    *ir.Loop
	Machine machine.Config
	II      int
	Time    []int // start cycle per op ID (>= 0)
	Cluster []int // cluster per op ID

	// Lower bounds computed before scheduling.
	ResMII int
	RecMII int

	// Strategy is the cluster-assignment strategy the schedule was
	// produced under: StrategyBaseline unless a portfolio raced
	// alternatives or Options.Strategies pinned another. A single-strategy
	// run reports its configured strategy even through the compact
	// fallback (where the restricted cluster subset makes every ordering
	// equivalent); a portfolio race that ends in the compact fallback
	// reports baseline.
	Strategy Strategy

	// Bound is the optimality certificate of the schedule. Only
	// Options.Effort: optimal sets it (Lower >= 1); for every other tier
	// it stays the zero value, keeping historical outputs byte-identical.
	// See bound.go for the contract.
	Bound Bound

	Stats Stats
}

// MII returns max(ResMII, RecMII), the lower bound on the achieved II.
func (s *Schedule) MII() int {
	if s.ResMII > s.RecMII {
		return s.ResMII
	}
	return s.RecMII
}

// Length returns the number of cycles from the start of the first operation
// to the completion of the last, for a single iteration.
func (s *Schedule) Length() int {
	max := 0
	for id, op := range s.Loop.Ops {
		if end := s.Time[id] + op.Kind.Latency(); end > max {
			max = end
		}
	}
	return max
}

// StageCount returns the number of kernel stages: the number of iterations
// simultaneously in flight at full pipeline (paper §2).
func (s *Schedule) StageCount() int {
	maxStart := 0
	for _, t := range s.Time {
		if t > maxStart {
			maxStart = t
		}
	}
	return maxStart/s.II + 1
}

// Stats records how hard the scheduler had to work.
type Stats struct {
	Attempts      int // number of (II, strategy) attempts tried
	Placements    int // total operation placements across attempts
	Evictions     int // operations unscheduled to resolve conflicts
	MovesInserted int // move operations added (AllowMoves only)

	// StrategiesTried is the portfolio width: the number of strategies
	// raced for this schedule. Zero means no portfolio ran (the fast
	// single-strategy path), which is how downstream reporting knows not
	// to print portfolio detail for historical outputs.
	StrategiesTried int

	// PrunedNodes is the number of candidate placements the exact search
	// rejected by a pruning rule (Effort: optimal only; zero elsewhere).
	// The service aggregates it fleet-wide as optimal.pruned_nodes.
	PrunedNodes int64
}

// Options control the scheduler's effort.
type Options struct {
	// MaxII caps the search; 0 derives a safe default that always admits a
	// fully sequential schedule.
	MaxII int
	// BudgetRatio bounds placements per II attempt at BudgetRatio*numOps
	// (Rau's budget); 0 means DefaultBudgetRatio.
	BudgetRatio int
	// Effort selects the portfolio of cluster-assignment strategies raced
	// per candidate II on clustered machines (portfolio.go). The zero
	// value, EffortFast, runs the single baseline heuristic — bit-for-bit
	// the scheduler's historical behaviour.
	Effort Effort
	// Strategies, when non-empty, overrides the effort-derived portfolio
	// with an explicit strategy list. Order matters: the position is the
	// race's deterministic tie-break index. Duplicates and out-of-range
	// values are dropped.
	Strategies []Strategy
	// RaceWorkers bounds the parallelism of a portfolio race; 0 uses
	// GOMAXPROCS. It affects wall-clock only, never the chosen schedule,
	// so it must not participate in any cache key.
	RaceWorkers int

	// refImpl routes every feasibility probe through the scalar reference
	// implementation (ref.go) instead of the packed bitset one. It exists
	// for the differential harness, which schedules corpora both ways and
	// asserts byte identity; it is unexported because the reference is a
	// test oracle, not a supported mode.
	refImpl bool
}

// DefaultBudgetRatio is Rau's recommended scheduling budget multiplier.
const DefaultBudgetRatio = 6

func (o Options) budgetRatio() int {
	if o.BudgetRatio > 0 {
		return o.BudgetRatio
	}
	return DefaultBudgetRatio
}

func (o Options) maxII(l *ir.Loop, mii int) int {
	if o.MaxII > 0 {
		return o.MaxII
	}
	m := l.SumLatency() + len(l.Ops)
	if mii > m {
		m = mii
	}
	return m + 8
}

// candidateIIs enumerates the IIs to attempt: every value near MII (where
// the interesting results live), then geometrically growing steps, and
// finally maxII itself, where a near-sequential schedule always exists.
// This keeps pathological partitioning cases from burning thousands of
// attempts while preserving Rau's II-minimality behaviour in practice.
// The sequence is appended into buf (reset to length zero) so repeated
// scheduling runs can reuse one buffer.
func candidateIIs(buf []int, mii, maxII int) []int {
	out := buf[:0]
	ii := mii
	for ii <= maxII {
		out = append(out, ii)
		if len(out) < 8 {
			ii++
		} else {
			ii += ii/4 + 1
		}
	}
	if len(out) == 0 || out[len(out)-1] != maxII {
		out = append(out, maxII)
	}
	return out
}

// Errors returned by the scheduler.
var (
	// ErrNoFU indicates the machine lacks a functional unit class that the
	// loop needs (e.g. a copy operation on a machine without COPY units).
	ErrNoFU = errors.New("sched: loop needs an FU class the machine does not have")
	// ErrNoSchedule indicates no schedule was found up to MaxII.
	ErrNoSchedule = errors.New("sched: no schedule found within II and budget limits")
)

// strategySet resolves the strategies a compilation races: the explicit
// Strategies list when given (filtered and deduplicated), otherwise the
// effort level's portfolio. Single-cluster machines always collapse to the
// baseline — every ordering of one cluster is the same ordering.
func (o Options) strategySet(numClusters int) []Strategy {
	if numClusters <= 1 {
		return []Strategy{StrategyBaseline}
	}
	if len(o.Strategies) > 0 {
		out := make([]Strategy, 0, len(o.Strategies))
		var seen [NumStrategies]bool
		for _, s := range o.Strategies {
			if s < NumStrategies && !seen[s] {
				seen[s] = true
				out = append(out, s)
			}
		}
		if len(out) > 0 {
			return out
		}
	}
	return o.Effort.Strategies()
}

// ScheduleLoop modulo-schedules the loop on the given machine. It works for
// both single-cluster and clustered configurations; for the latter it runs
// the paper's partitioned IMS — as a single heuristic at EffortFast, or as
// a strategy portfolio raced per candidate II at the higher effort levels.
func ScheduleLoop(l *ir.Loop, cfg machine.Config, opts Options) (*Schedule, error) {
	return ScheduleLoopContext(context.Background(), l, cfg, opts)
}

// ScheduleLoopContext is ScheduleLoop with a context. Only the optimal
// tier's proof search observes the context: a deadline or cancellation cuts
// the exact branch-and-bound ladder, which then returns the best incumbent
// with Bound.Optimal=false and Bound.DeadlineCut=true (the anytime
// contract, DESIGN.md §14). Every other effort level ignores ctx, so the
// heuristic tiers stay deterministic under any deadline.
func ScheduleLoopContext(ctx context.Context, l *ir.Loop, cfg machine.Config, opts Options) (*Schedule, error) {
	if err := l.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	resMII, err := ResMII(l, cfg)
	if err != nil {
		return nil, err
	}
	// The scheduling state is acquired before the lower bounds so RecMII
	// runs out of the same arena (recScratch) instead of allocating; the
	// state then serves the single-strategy search or the portfolio's
	// compact fallback directly.
	st := statePool.Get().(*state)
	defer statePool.Put(st)
	recMII := recMIIInto(l, &st.rec)
	mii := resMII
	if recMII > mii {
		mii = recMII
	}
	maxII := opts.maxII(l, mii)
	strats := opts.strategySet(cfg.NumClusters())
	if opts.Effort == EffortOptimal {
		return scheduleOptimal(ctx, st, l, cfg, opts, strats, resMII, recMII, maxII)
	}
	if len(strats) > 1 {
		return schedulePortfolio(st, l, cfg, opts, strats, resMII, recMII, maxII)
	}
	return scheduleSingle(st, l, cfg, opts, strats[0], resMII, recMII, maxII)
}

// scheduleSingle is the historical single-strategy search: the candidate-II
// ladder under one cluster-preference policy, then the compact fallbacks.
func scheduleSingle(st *state, l *ir.Loop, cfg machine.Config, opts Options, strat Strategy, resMII, recMII, maxII int) (*Schedule, error) {
	mii := resMII
	if recMII > mii {
		mii = recMII
	}
	st.init(l, cfg, opts.budgetRatio(), strat, nil, opts.refImpl)
	finish := func(ii int) *Schedule {
		// The state goes back to the pool, so the schedule takes copies of
		// the placement arrays. When no move operations were inserted the
		// working loop is identical to the input and the input is returned
		// (downstream passes treat Schedule.Loop as read-only); otherwise
		// the grown working copy is cloned out of the arena.
		resLoop := l
		if len(st.loop.Ops) != len(l.Ops) {
			resLoop = st.loop.Clone()
		}
		time := make([]int, len(st.time))
		copy(time, st.time)
		cluster := make([]int, len(st.cluster))
		copy(cluster, st.cluster)
		return &Schedule{
			Loop:     resLoop,
			Machine:  cfg,
			II:       ii,
			Time:     time,
			Cluster:  cluster,
			ResMII:   resMII,
			RecMII:   recMII,
			Strategy: strat,
			Stats:    st.stats,
		}
	}
	st.iiBuf = candidateIIs(st.iiBuf, mii, maxII)
	for _, ii := range st.iiBuf {
		st.stats.Attempts++
		st.ordinal = st.stats.Attempts
		if st.tryII(ii) {
			return finish(ii), nil
		}
		st.reset()
	}
	if ii := st.compactSchedule(mii, maxII); ii >= 0 {
		return finish(ii), nil
	}
	return nil, fmt.Errorf("%w: %q on %s (MII=%d, maxII=%d)", ErrNoSchedule, l.Name, cfg.Name, mii, maxII)
}

// compactSchedule runs the compact fallbacks, for the rare loops whose
// communication structure defeats the free partitioner at every candidate
// II (typically an operation whose neighbours settle on mutually distant
// clusters and evict each other until the budget runs out). Restricting
// placement to a mutually adjacent cluster subset makes the ring rule
// vacuous at the price of fewer FUs: first an adjacent pair, then one
// cluster — at maxII the single-cluster attempt cannot fail, so every
// valid loop schedules on every valid machine. The II cost shows up
// honestly in the experiment statistics. It returns the achieved II, or -1
// on a single-cluster machine (where no fallback exists).
func (st *state) compactSchedule(mii, maxII int) int {
	if st.cfg.NumClusters() <= 1 {
		return -1
	}
	subsets := [][]int{{0, 1}, {0}}
	for _, allowed := range subsets {
		sub, err := resMIISubset(st.orig, st.cfg, allowed)
		if err != nil {
			continue
		}
		if sub < mii {
			sub = mii
		}
		st.iiBuf = candidateIIs(st.iiBuf, sub, maxII)
		for _, ii := range st.iiBuf {
			st.stats.Attempts++
			st.ordinal = st.stats.Attempts
			st.allowed = allowed
			if st.tryII(ii) {
				return ii
			}
			st.reset()
		}
	}
	return -1
}

// Verify checks that the schedule satisfies every dependence, every
// resource constraint and the cluster communication rule. It is used by
// tests and by cmd tools; a correct scheduler never produces a schedule
// that fails Verify.
func (s *Schedule) Verify() error {
	l := s.Loop
	if len(s.Time) != len(l.Ops) || len(s.Cluster) != len(l.Ops) {
		return fmt.Errorf("sched: schedule arrays do not match loop size")
	}
	for id, op := range l.Ops {
		if s.Time[id] < 0 {
			return fmt.Errorf("sched: %v is unscheduled", op)
		}
		if c := s.Cluster[id]; c < 0 || c >= s.Machine.NumClusters() {
			return fmt.Errorf("sched: %v has invalid cluster %d", op, c)
		}
	}
	// Dependences: S(to) + II*dist >= S(from) + latency(from) (+ comm).
	for _, d := range l.Deps {
		lat := l.Ops[d.From].Kind.Latency()
		if d.Kind == ir.Flow {
			lat += s.commLat(d)
		}
		slack := s.Time[d.To] + s.II*d.Dist - (s.Time[d.From] + lat)
		if slack < 0 {
			return fmt.Errorf("sched: dependence violated: %v (slack %d)", d, slack)
		}
	}
	// Resources: at most FUs[class] issues per (cluster, class, row).
	type key struct {
		row, cluster int
		class        machine.FUClass
	}
	used := map[key]int{}
	for id, op := range l.Ops {
		k := key{s.Time[id] % s.II, s.Cluster[id], machine.ClassOf(op.Kind)}
		used[k]++
		if used[k] > s.Machine.FUCount(k.cluster, k.class) {
			return fmt.Errorf("sched: row %d cluster %d oversubscribes %v", k.row, k.cluster, k.class)
		}
	}
	// Communication: flow dependences only between adjacent clusters.
	for _, d := range l.Deps {
		if d.Kind != ir.Flow {
			continue
		}
		if !s.Machine.Adjacent(s.Cluster[d.From], s.Cluster[d.To]) {
			return fmt.Errorf("sched: flow dep %v spans non-adjacent clusters %d and %d",
				d, s.Cluster[d.From], s.Cluster[d.To])
		}
	}
	return nil
}

// commLat returns the extra communication latency of a flow dependence.
func (s *Schedule) commLat(d ir.Dep) int {
	if s.Cluster[d.From] != s.Cluster[d.To] {
		return s.Machine.CommLatency
	}
	return 0
}
