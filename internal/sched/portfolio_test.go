package sched

import (
	"hash/fnv"
	"reflect"
	"strings"
	"testing"

	"vliwq/internal/corpus"
	"vliwq/internal/ir"
	"vliwq/internal/machine"
)

func TestStrategyAndEffortNames(t *testing.T) {
	for s := Strategy(0); s < NumStrategies; s++ {
		got, err := ParseStrategy(s.String())
		if err != nil || got != s {
			t.Fatalf("ParseStrategy(%q) = %v, %v", s.String(), got, err)
		}
	}
	if _, err := ParseStrategy("nope"); err == nil ||
		!strings.Contains(err.Error(), "affinity, baseline, load-balanced, perturb, round-robin") {
		t.Fatalf("ParseStrategy error not sorted: %v", err)
	}
	for e := Effort(0); e < numEfforts; e++ {
		got, err := ParseEffort(e.String())
		if err != nil || got != e {
			t.Fatalf("ParseEffort(%q) = %v, %v", e.String(), got, err)
		}
	}
	if e, err := ParseEffort(""); err != nil || e != EffortFast {
		t.Fatalf("empty effort = %v, %v; want fast", e, err)
	}
	if _, err := ParseEffort("extreme"); err == nil ||
		!strings.Contains(err.Error(), "balanced, exhaustive, fast, optimal") {
		t.Fatalf("ParseEffort error not sorted: %v", err)
	}
	if s := Strategy(200).String(); !strings.Contains(s, "200") {
		t.Fatalf("out-of-range strategy string %q", s)
	}
	if s := Effort(200).String(); !strings.Contains(s, "200") {
		t.Fatalf("out-of-range effort string %q", s)
	}
}

func TestStrategySet(t *testing.T) {
	// Single-cluster machines collapse to baseline at any effort.
	if got := (Options{Effort: EffortExhaustive}).strategySet(1); !reflect.DeepEqual(got, []Strategy{StrategyBaseline}) {
		t.Fatalf("single cluster set = %v", got)
	}
	if got := (Options{}).strategySet(4); !reflect.DeepEqual(got, []Strategy{StrategyBaseline}) {
		t.Fatalf("fast set = %v", got)
	}
	if got := (Options{Effort: EffortExhaustive}).strategySet(4); len(got) != int(NumStrategies) {
		t.Fatalf("exhaustive set = %v", got)
	}
	// Explicit lists are filtered, deduplicated and order-preserving.
	got := (Options{Strategies: []Strategy{StrategyRoundRobin, Strategy(99), StrategyRoundRobin, StrategyBaseline}}).strategySet(4)
	if !reflect.DeepEqual(got, []Strategy{StrategyRoundRobin, StrategyBaseline}) {
		t.Fatalf("explicit set = %v", got)
	}
	// A fully invalid explicit list falls back to the effort portfolio.
	got = (Options{Strategies: []Strategy{Strategy(99)}, Effort: EffortBalanced}).strategySet(4)
	if len(got) != 3 {
		t.Fatalf("fallback set = %v", got)
	}
}

// identityCorpus is the 64-loop bench corpus the satellite pins: the same
// loops bench_test.go and the e2e load generator replay.
func identityCorpus(t *testing.T) []*ir.Loop {
	t.Helper()
	return corpus.Generate(corpus.Params{Seed: corpus.DefaultSeed, N: 64})
}

// TestEffortFastByteIdentity is the regression contract protecting golden
// files and cache keys: EffortFast — spelled as the zero value, explicitly,
// or as an explicit baseline-only portfolio — must reproduce the
// historical scheduler's placements exactly, operation by operation.
func TestEffortFastByteIdentity(t *testing.T) {
	loops := identityCorpus(t)
	variants := []Options{
		{Effort: EffortFast},
		{Strategies: []Strategy{StrategyBaseline}},
	}
	for _, cfg := range []machine.Config{machine.SingleCluster(12), machine.Clustered(4), machine.Clustered(6)} {
		for _, l := range loops {
			ref, err := ScheduleLoop(l, cfg, Options{})
			if err != nil {
				t.Fatalf("%s on %s: %v", l.Name, cfg.Name, err)
			}
			for vi, opts := range variants {
				got, err := ScheduleLoop(l, cfg, opts)
				if err != nil {
					t.Fatalf("%s on %s variant %d: %v", l.Name, cfg.Name, vi, err)
				}
				if got.II != ref.II || !reflect.DeepEqual(got.Time, ref.Time) || !reflect.DeepEqual(got.Cluster, ref.Cluster) {
					t.Fatalf("%s on %s variant %d: schedule differs from default options", l.Name, cfg.Name, vi)
				}
				if got.Strategy != StrategyBaseline || got.Stats.StrategiesTried != 0 {
					t.Fatalf("%s on %s variant %d: strategy=%v tried=%d, want baseline/0",
						l.Name, cfg.Name, vi, got.Strategy, got.Stats.StrategiesTried)
				}
			}
		}
	}
}

// scheduleDigest pins today's schedules as one number, so a future change
// that shifts any placement of the fast path anywhere in the bench corpus
// fails loudly instead of silently invalidating goldens and cache keys.
func scheduleDigest(t *testing.T, loops []*ir.Loop, cfgs []machine.Config) uint64 {
	t.Helper()
	h := fnv.New64a()
	writeInt := func(v int) {
		var b [8]byte
		for i := 0; i < 8; i++ {
			b[i] = byte(v >> (8 * i))
		}
		h.Write(b[:])
	}
	for _, cfg := range cfgs {
		for _, l := range loops {
			s, err := ScheduleLoop(l, cfg, Options{})
			if err != nil {
				t.Fatalf("%s on %s: %v", l.Name, cfg.Name, err)
			}
			h.Write([]byte(l.Name))
			writeInt(s.II)
			for id := range s.Loop.Ops {
				writeInt(s.Time[id])
				writeInt(s.Cluster[id])
			}
		}
	}
	return h.Sum64()
}

func TestFastScheduleDigestPinned(t *testing.T) {
	// Computed from the pre-portfolio scheduler; EffortFast must keep
	// producing it. Regenerate only for a deliberate, reviewed scheduler
	// behaviour change.
	const pinned = uint64(0xdf0ec0390bfa1535)
	got := scheduleDigest(t, identityCorpus(t),
		[]machine.Config{machine.SingleCluster(12), machine.Clustered(4), machine.Clustered(6)})
	if got != pinned {
		t.Fatalf("fast-path schedule digest = %#x, want %#x", got, pinned)
	}
}

// TestPortfolioDeterministic: the race must return the identical schedule
// sequentially and at any worker count — the determinism guarantee
// DESIGN.md §9 documents.
func TestPortfolioDeterministic(t *testing.T) {
	loops := corpus.Generate(corpus.Params{Seed: 11, N: 24, MinOps: 8})
	cfg := machine.Clustered(4)
	for _, l := range loops {
		var ref *Schedule
		for _, workers := range []int{1, 2, 8} {
			s, err := ScheduleLoop(l, cfg, Options{Effort: EffortExhaustive, RaceWorkers: workers})
			if err != nil {
				t.Fatalf("%s workers=%d: %v", l.Name, workers, err)
			}
			if err := s.Verify(); err != nil {
				t.Fatalf("%s workers=%d: %v", l.Name, workers, err)
			}
			if ref == nil {
				ref = s
				continue
			}
			if s.II != ref.II || s.Strategy != ref.Strategy ||
				!reflect.DeepEqual(s.Time, ref.Time) || !reflect.DeepEqual(s.Cluster, ref.Cluster) {
				t.Fatalf("%s: workers=%d disagrees with workers=1 (II %d vs %d, strategy %v vs %v)",
					l.Name, workers, s.II, ref.II, s.Strategy, ref.Strategy)
			}
		}
	}
}

// TestPortfolioNeverWorse: the portfolio contains the baseline, and the
// II ladder stops at the first schedulable II, so a portfolio schedule can
// only match or beat the baseline's II.
func TestPortfolioNeverWorse(t *testing.T) {
	loops := corpus.Generate(corpus.Params(corpusStress(48)))
	cfg := machine.Clustered(6)
	improved := 0
	for _, l := range loops {
		base, err := ScheduleLoop(l, cfg, Options{})
		if err != nil {
			t.Fatalf("%s: %v", l.Name, err)
		}
		port, err := ScheduleLoop(l, cfg, Options{Effort: EffortExhaustive})
		if err != nil {
			t.Fatalf("%s: %v", l.Name, err)
		}
		if port.II > base.II {
			t.Fatalf("%s: portfolio II %d worse than baseline %d", l.Name, port.II, base.II)
		}
		if port.II < base.II {
			improved++
		}
		if port.Stats.StrategiesTried != int(NumStrategies) {
			t.Fatalf("%s: StrategiesTried = %d", l.Name, port.Stats.StrategiesTried)
		}
	}
	if improved == 0 {
		t.Fatalf("exhaustive portfolio improved no loop of the stressed slice; the race is not racing")
	}
}

// corpusStress mirrors corpus.StressedParams at a test-sized N without
// importing the preset's memoized slice.
func corpusStress(n int) corpus.Params {
	p := corpus.StressedParams()
	p.N = n
	return p
}

func TestPortfolioExplicitStrategy(t *testing.T) {
	l := corpus.Daxpy()
	cfg := machine.Clustered(4)
	s, err := ScheduleLoop(l, cfg, Options{Strategies: []Strategy{StrategyRoundRobin}})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
	if s.Strategy != StrategyRoundRobin {
		t.Fatalf("strategy = %v, want round-robin", s.Strategy)
	}
	// A two-strategy race records the portfolio width.
	s, err = ScheduleLoop(l, cfg, Options{Strategies: []Strategy{StrategyLoadBalanced, StrategyRoundRobin}})
	if err != nil {
		t.Fatal(err)
	}
	if s.Stats.StrategiesTried != 2 {
		t.Fatalf("StrategiesTried = %d, want 2", s.Stats.StrategiesTried)
	}
}

func TestEffortPortfolios(t *testing.T) {
	if got := EffortFast.Strategies(); len(got) != 1 || got[0] != StrategyBaseline {
		t.Fatalf("fast portfolio = %v", got)
	}
	if got := EffortBalanced.Strategies(); len(got) != 3 || got[0] != StrategyBaseline {
		t.Fatalf("balanced portfolio = %v", got)
	}
	if got := EffortExhaustive.Strategies(); len(got) != int(NumStrategies) {
		t.Fatalf("exhaustive portfolio = %v", got)
	}
}
