package sched

import (
	"errors"
	"testing"

	"vliwq/internal/corpus"
	"vliwq/internal/ir"
	"vliwq/internal/machine"
)

func mustSchedule(t *testing.T, l *ir.Loop, cfg machine.Config) *Schedule {
	t.Helper()
	s, err := ScheduleLoop(l, cfg, Options{})
	if err != nil {
		t.Fatalf("schedule %s on %s: %v", l.Name, cfg.Name, err)
	}
	if err := s.Verify(); err != nil {
		t.Fatalf("verify %s: %v", l.Name, err)
	}
	return s
}

func TestResMII(t *testing.T) {
	cfg := machine.SingleCluster(4) // 1 L/S, 2 ADD, 1 MUL (+2 COPY)
	cases := []struct {
		name string
		loop *ir.Loop
		want int
	}{
		{"daxpy", corpus.Daxpy(), 4},       // 4 L/S ops (3 loads + 1 store) vs 1 L/S unit
		{"stencil3", corpus.Stencil3(), 5}, // 5 L/S ops
		{"ddot", corpus.Ddot(), 3},         // 3 L/S ops
	}
	for _, c := range cases {
		got, err := ResMII(c.loop, cfg)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if got != c.want {
			t.Errorf("%s: ResMII = %d, want %d", c.name, got, c.want)
		}
	}
}

func TestResMIIMissingClass(t *testing.T) {
	l := ir.New("copyonly")
	a := l.AddOp(ir.KLoad, "a")
	c := l.AddOp(ir.KCopy, "c")
	l.AddFlow(a, c)
	st := l.AddOp(ir.KStore, "s")
	l.AddFlow(c, st)
	cfg := machine.Config{
		Name:     "nocopy",
		Clusters: []machine.Cluster{{FUs: [machine.NumClasses]int{machine.LS: 1, machine.ALU: 1, machine.MUL: 1}}},
	}
	if _, err := ResMII(l, cfg); !errors.Is(err, ErrNoFU) {
		t.Fatalf("expected ErrNoFU, got %v", err)
	}
}

func TestRecMIIKnown(t *testing.T) {
	cases := []struct {
		name string
		loop *ir.Loop
		want int
	}{
		{"daxpy-no-recurrence", corpus.Daxpy(), 1},
		// ddot: acc -> acc circuit, latency 1, distance 1.
		{"ddot", corpus.Ddot(), 1},
		// horner: mul(2) -> add(1) -> mul, distance 1: ceil(3/1) = 3.
		{"horner", corpus.Horner(), 3},
		// divnorm: add(1) -> div(8) -> add, distance 1: 9.
		{"divnorm", corpus.DivNorm(), 9},
		// tridiag: add(1) -> mul(2) -> add, distance 1: 3.
		{"tridiag", corpus.Tridiag(), 3},
		// wave2 circuits: u->twice->diff->u lat 1+2+1 dist 1 => 4;
		// u->diff->u lat 1+1 dist 2 => 1.
		{"wave2", corpus.Wave2(), 4},
	}
	for _, c := range cases {
		if got := RecMII(c.loop); got != c.want {
			t.Errorf("%s: RecMII = %d, want %d", c.name, got, c.want)
		}
	}
}

// TestRecMIIMatchesBruteForce cross-validates the Bellman-Ford RecMII
// against exhaustive circuit enumeration on the synthetic corpus.
func TestRecMIIMatchesBruteForce(t *testing.T) {
	loops := corpus.Generate(corpus.Params{Seed: 11, N: 80, MaxOps: 14, MeanLogOps: 1.8})
	for _, l := range loops {
		fast := RecMII(l)
		brute := RecMIIBrute(l, 14)
		if fast != brute {
			t.Errorf("%s: RecMII=%d brute=%d", l.Name, fast, brute)
		}
	}
}

func TestScheduleAchievesMIIOnSimpleLoops(t *testing.T) {
	// Resource-rich machine: simple dependence chains schedule at MII.
	cfg := machine.SingleCluster(12)
	for _, l := range []*ir.Loop{corpus.Daxpy(), corpus.Stencil3(), corpus.Hydro(), corpus.FIR5()} {
		s := mustSchedule(t, l, cfg)
		if s.II != s.MII() {
			t.Errorf("%s: II=%d > MII=%d on a wide machine", l.Name, s.II, s.MII())
		}
	}
}

func TestScheduleRespectsRecurrences(t *testing.T) {
	cfg := machine.SingleCluster(12)
	for _, l := range []*ir.Loop{corpus.Horner(), corpus.DivNorm(), corpus.Wave2(), corpus.PrefixSum()} {
		s := mustSchedule(t, l, cfg)
		if s.II < s.RecMII {
			t.Errorf("%s: II=%d below RecMII=%d", l.Name, s.II, s.RecMII)
		}
	}
}

// TestSchedulePropertyCorpus: every scheduled corpus loop satisfies all
// dependences and resource limits (Verify), on narrow and wide machines.
func TestSchedulePropertyCorpus(t *testing.T) {
	loops := corpus.Generate(corpus.Params{Seed: 5, N: 120})
	for _, cfg := range []machine.Config{
		machine.SingleCluster(4),
		machine.SingleCluster(6),
		machine.SingleCluster(12),
	} {
		for _, l := range loops {
			s := mustSchedule(t, l, cfg)
			if s.II < s.MII() {
				t.Fatalf("%s: II=%d below MII=%d", l.Name, s.II, s.MII())
			}
		}
	}
}

func TestPartitionedAdjacency(t *testing.T) {
	// Verify()'s adjacency check must hold for every clustered schedule.
	loops := corpus.Generate(corpus.Params{Seed: 6, N: 80})
	for _, nc := range []int{2, 4, 6} {
		cfg := machine.Clustered(nc)
		for _, l := range loops {
			s := mustSchedule(t, l, cfg) // Verify runs inside
			// Double-check explicitly.
			for _, d := range s.Loop.Deps {
				if d.Kind != ir.Flow {
					continue
				}
				if !cfg.Adjacent(s.Cluster[d.From], s.Cluster[d.To]) {
					t.Fatalf("%s: non-adjacent flow dep survived", l.Name)
				}
			}
		}
	}
}

func TestPartitionedNeverBeatsMII(t *testing.T) {
	loops := corpus.Generate(corpus.Params{Seed: 8, N: 60})
	cfg := machine.Clustered(4)
	for _, l := range loops {
		s := mustSchedule(t, l, cfg)
		if s.II < s.MII() {
			t.Fatalf("%s: partitioned II=%d beats MII=%d", l.Name, s.II, s.MII())
		}
	}
}

func TestMoveExtensionInsertsMovesOnly(t *testing.T) {
	loops := corpus.Generate(corpus.Params{Seed: 9, N: 60})
	cfg := machine.Clustered(6)
	cfg.AllowMoves = true
	sawMove := false
	for _, l := range loops {
		s := mustSchedule(t, l, cfg)
		for id, op := range s.Loop.Ops {
			if op.Kind == ir.KMove {
				sawMove = true
				if id < len(l.Ops) {
					t.Fatalf("%s: move op replaced an original op", l.Name)
				}
			}
		}
		// Adjacency must hold after move insertion too (Verify checks).
	}
	if !sawMove {
		t.Log("note: no moves were needed in this corpus slice (acceptable but unusual)")
	}
}

func TestStageCount(t *testing.T) {
	l := corpus.Daxpy()
	s := mustSchedule(t, l, machine.SingleCluster(12))
	// daxpy chain: load(2) -> mul(2) -> add(1) -> store; length 6,
	// II=ResMII=2 (4 L/S over 2... SingleCluster(12): 4 L/S units -> ResMII 1).
	if s.StageCount() < 2 {
		t.Errorf("daxpy stage count %d; expected pipelining across stages", s.StageCount())
	}
	if got := s.StageCount(); got != (maxTime(s.Time)/s.II)+1 {
		t.Errorf("StageCount = %d, want %d", got, (maxTime(s.Time)/s.II)+1)
	}
}

func maxTime(ts []int) int {
	m := 0
	for _, t := range ts {
		if t > m {
			m = t
		}
	}
	return m
}

func TestScheduleDeterminism(t *testing.T) {
	l := corpus.Hydro()
	cfg := machine.Clustered(4)
	a := mustSchedule(t, l, cfg)
	b := mustSchedule(t, l, cfg)
	if a.II != b.II {
		t.Fatalf("II differs across runs: %d vs %d", a.II, b.II)
	}
	for i := range a.Time {
		if a.Time[i] != b.Time[i] || a.Cluster[i] != b.Cluster[i] {
			t.Fatalf("placement differs at op %d", i)
		}
	}
}

func TestOptionsMaxIIRespected(t *testing.T) {
	l := corpus.DivNorm() // RecMII 9
	_, err := ScheduleLoop(l, machine.SingleCluster(4), Options{MaxII: 3})
	if !errors.Is(err, ErrNoSchedule) {
		t.Fatalf("expected ErrNoSchedule with MaxII below RecMII, got %v", err)
	}
}

func TestCommLatencyRespected(t *testing.T) {
	loops := corpus.Generate(corpus.Params{Seed: 12, N: 40})
	cfg := machine.Clustered(4)
	cfg.CommLatency = 2
	for _, l := range loops {
		s := mustSchedule(t, l, cfg) // Verify enforces comm latency slack
		_ = s
	}
}

func TestInvalidInputsRejected(t *testing.T) {
	if _, err := ScheduleLoop(ir.New("empty"), machine.SingleCluster(4), Options{}); err == nil {
		t.Fatal("empty loop accepted")
	}
	bad := machine.Config{Name: "none"}
	if _, err := ScheduleLoop(corpus.Daxpy(), bad, Options{}); err == nil {
		t.Fatal("machine without clusters accepted")
	}
}
