// Portfolio scheduling: race several cluster-assignment strategies per
// candidate II and keep the best schedule.
//
// The paper's partitioned IMS commits to one cluster-preference heuristic,
// and its Fig. 6 degradation is exactly the cost of that commitment: when
// the heuristic's first placements settle on mutually distant clusters, the
// budget burns down in eviction cycles and the II inflates. No single
// ordering wins across loop shapes, so the portfolio runs a catalogue of
// orderings (strategy.go) against every candidate II and returns the best
// result under a fully deterministic selection rule:
//
//   - The first candidate II at which any strategy schedules wins (the II
//     ladder is walked from MII upward, so this is the lowest achievable II
//     over the portfolio).
//   - At II > MII every strategy completes and the best schedule is chosen
//     by fewest inserted move operations, then shortest schedule, then
//     lowest strategy index.
//   - At II == MII the race short-circuits: the lowest-indexed strategy to
//     schedule wins outright and strategies with higher indices are
//     abandoned. Every strategy below the winner always runs to
//     completion, so the winner is independent of timing, worker count and
//     interleaving — raced and sequential execution return the identical
//     schedule.
//
// Racing uses the repo-wide worker pool (internal/pool). Attempts are fed
// in strategy order; cancellation after an MII hit can therefore only skip
// strategies above the first winner, which is what makes the short-circuit
// deterministic.

package sched

import (
	"context"
	"fmt"
	"runtime"
	"sync/atomic"

	"vliwq/internal/ir"
	"vliwq/internal/machine"
	"vliwq/internal/pool"
)

// attempt is the outcome of one (strategy, II) scheduling try.
type attempt struct {
	ok      bool
	time    []int
	cluster []int
	loop    *ir.Loop // input loop, or a clone when moves were inserted
	stats   Stats
	moves   int // move operations inserted
	length  int // single-iteration span, the last tie-break metric
}

// runAttempt schedules l at one II under one strategy on a private arena.
// ordinal is the 1-based position of ii on the candidate ladder; it seeds
// the budget multiplier so each strategy sees the same budget growth it
// would in the single-strategy search. memo carries the race-wide shared
// pristine-loop facts (CSR views, per-II heights); the attempt's private
// arena holds everything placement-dependent.
func runAttempt(l *ir.Loop, cfg machine.Config, budgetRatio int, strat Strategy, ii, ordinal int, memo *raceMemo, ref bool) attempt {
	st := statePool.Get().(*state)
	defer statePool.Put(st)
	st.init(l, cfg, budgetRatio, strat, memo, ref)
	st.ordinal = ordinal
	st.stats.Attempts = 1 // this call is exactly one (II, strategy) attempt
	if !st.tryII(ii) {
		return attempt{stats: st.stats}
	}
	a := attempt{ok: true, stats: st.stats, moves: st.stats.MovesInserted}
	a.loop = l
	if len(st.loop.Ops) != len(l.Ops) {
		a.loop = st.loop.Clone()
	}
	a.time = append([]int(nil), st.time...)
	a.cluster = append([]int(nil), st.cluster...)
	for id, op := range a.loop.Ops {
		if end := a.time[id] + op.Kind.Latency(); end > a.length {
			a.length = end
		}
	}
	return a
}

// better reports whether a beats b under the II-equal comparison: fewer
// inserted moves, then shorter schedule. Index order breaks ties because
// the caller scans attempts in strategy order and keeps the incumbent.
func (a attempt) better(b attempt) bool {
	if a.moves != b.moves {
		return a.moves < b.moves
	}
	return a.length < b.length
}

func (o Options) raceWorkers() int {
	if o.RaceWorkers > 0 {
		return o.RaceWorkers
	}
	return runtime.GOMAXPROCS(0)
}

// schedulePortfolio walks the candidate-II ladder racing every strategy at
// each step. See the package comment above for the selection rule and its
// determinism argument.
func schedulePortfolio(st *state, l *ir.Loop, cfg machine.Config, opts Options, strats []Strategy, resMII, recMII, maxII int) (*Schedule, error) {
	mii := resMII
	if recMII > mii {
		mii = recMII
	}
	ratio := opts.budgetRatio()
	workers := opts.raceWorkers()
	st.iiBuf = candidateIIs(st.iiBuf, mii, maxII)
	iis := st.iiBuf
	// The memo is shared by every racing attempt and released only after
	// the last race round has completed (pool.Run is a barrier per round).
	memo := newRaceMemo(l, &cfg)
	defer memo.release()

	var total Stats
	results := make([]attempt, len(strats))
	for ord, ii := range iis {
		for i := range results {
			results[i] = attempt{}
		}
		atMII := ii == mii
		if workers == 1 {
			// A single worker runs the strategies in index order anyway, so
			// the race degenerates to a plain loop — same results, same
			// MII short-circuit, none of the pool's goroutine/channel cost.
			for i := range strats {
				results[i] = runAttempt(l, cfg, ratio, strats[i], ii, ord+1, memo, opts.refImpl)
				if atMII && results[i].ok {
					break
				}
			}
		} else {
			ctx, cancel := context.WithCancel(context.Background())
			// minWin tracks the lowest strategy index that has scheduled at
			// MII. Feeding is in index order, so by the time strategy i runs,
			// every index below i has at least started and will complete;
			// cancellation can only drop indices that cannot win.
			minWin := atomic.Int64{}
			minWin.Store(int64(len(strats)))
			pool.Run(ctx, len(strats), workers, func(i int) {
				if atMII && minWin.Load() < int64(i) {
					return // a strictly better winner already exists
				}
				results[i] = runAttempt(l, cfg, ratio, strats[i], ii, ord+1, memo, opts.refImpl)
				if atMII && results[i].ok {
					for {
						cur := minWin.Load()
						if int64(i) >= cur || minWin.CompareAndSwap(cur, int64(i)) {
							break
						}
					}
					cancel()
				}
			}, nil)
			cancel()
		}

		win := -1
		for i := range results {
			total.Attempts += results[i].stats.Attempts
			total.Placements += results[i].stats.Placements
			total.Evictions += results[i].stats.Evictions
		}
		for i := range results {
			if !results[i].ok {
				continue
			}
			if atMII {
				// Lowest index wins outright: indices below i either ran
				// and failed (deterministically) or succeeded and already
				// claimed the race.
				win = i
				break
			}
			if win < 0 || results[i].better(results[win]) {
				win = i
			}
		}
		if win < 0 {
			continue
		}
		a := results[win]
		total.MovesInserted = a.moves
		total.StrategiesTried = len(strats)
		return &Schedule{
			Loop:     a.loop,
			Machine:  cfg,
			II:       ii,
			Time:     a.time,
			Cluster:  a.cluster,
			ResMII:   resMII,
			RecMII:   recMII,
			Strategy: strats[win],
			Stats:    total,
		}, nil
	}

	// No strategy scheduled anywhere on the ladder: fall back to the
	// compact cluster-subset search, which cannot fail on a valid loop.
	// Compact mode restricts placement to a mutually adjacent subset, so
	// the preference ordering is irrelevant and the result reports the
	// baseline strategy. The race has ended, so the caller's state arena
	// (and the memo, still valid) is reused for the fallback.
	st.init(l, cfg, ratio, StrategyBaseline, memo, opts.refImpl)
	// Seed the attempt counter to the ladder length so the compact
	// attempts run at the same (capped) budget multiplier they get in
	// scheduleSingle after its full ladder — otherwise the portfolio's
	// fallback would search with a smaller budget than the fast path and
	// could land a strictly worse II. Only the attempts the fallback
	// itself makes are added to the reported stats.
	st.stats.Attempts = len(iis)
	if ii := st.compactSchedule(mii, maxII); ii >= 0 {
		resLoop := l
		if len(st.loop.Ops) != len(l.Ops) {
			resLoop = st.loop.Clone()
		}
		total.Attempts += st.stats.Attempts - len(iis)
		total.Placements += st.stats.Placements
		total.Evictions += st.stats.Evictions
		total.MovesInserted = st.stats.MovesInserted
		total.StrategiesTried = len(strats)
		return &Schedule{
			Loop:     resLoop,
			Machine:  cfg,
			II:       ii,
			Time:     append([]int(nil), st.time...),
			Cluster:  append([]int(nil), st.cluster...),
			ResMII:   resMII,
			RecMII:   recMII,
			Strategy: StrategyBaseline,
			Stats:    total,
		}, nil
	}
	return nil, fmt.Errorf("%w: %q on %s (MII=%d, maxII=%d)", ErrNoSchedule, l.Name, cfg.Name, mii, maxII)
}
