//go:build race

package sched

// raceEnabled reports whether the race detector is active; its
// instrumentation inflates allocation counts, so the AllocsPerRun
// regression tests skip under it.
const raceEnabled = true
