package sched

import (
	"strings"
	"testing"

	"vliwq/internal/corpus"
	"vliwq/internal/machine"
)

func TestEmitPipelinedStructure(t *testing.T) {
	s := mustSchedule(t, corpus.Daxpy(), machine.SingleCluster(6))
	var b strings.Builder
	if err := EmitPipelined(&b, s); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	sc := s.StageCount()
	wantCycles := (2*(sc-1) + 1) * s.II
	lines := 0
	for _, ln := range strings.Split(out, "\n") {
		if strings.Contains(ln, "|") {
			lines++
		}
	}
	if lines != wantCycles {
		t.Fatalf("emitted %d instruction words, want %d\n%s", lines, wantCycles, out)
	}
	for _, frag := range []string{"; prologue", "; kernel", "; epilogue"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("missing %q section", frag)
		}
	}
}

// TestEmitPipelinedOpCount: across prologue+kernel+epilogue, every op must
// appear exactly SC times (once per active stage combination), and the
// kernel word must contain every op exactly once.
func TestEmitPipelinedOpCount(t *testing.T) {
	for _, l := range []string{"daxpy", "hydro", "wave2"} {
		s := mustSchedule(t, corpus.KernelByName(l), machine.SingleCluster(6))
		var b strings.Builder
		if err := EmitPipelined(&b, s); err != nil {
			t.Fatal(err)
		}
		out := b.String()
		sc := s.StageCount()
		counts := map[string]int{}
		for _, tok := range strings.Fields(out) {
			if i := strings.IndexByte(tok, '['); i > 0 {
				counts[tok[:i]]++
			}
		}
		for _, op := range s.Loop.Ops {
			if n := counts[op.Name]; n != sc {
				t.Fatalf("%s: op %s appears %d times, want %d (stage count)\n%s",
					l, op.Name, n, sc, out)
			}
		}
	}
}

// TestEmitPipelinedKernelIterOffsets: in the kernel words every op carries
// an iteration offset in (-SC, 0], and ops in stage 0 carry offset 0.
func TestEmitPipelinedKernelIterOffsets(t *testing.T) {
	s := mustSchedule(t, corpus.FIR5(), machine.SingleCluster(4))
	var b strings.Builder
	if err := EmitPipelined(&b, s); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	kernelAt := strings.Index(out, "; kernel")
	epiAt := strings.Index(out, "; epilogue")
	kernel := out[kernelAt:epiAt]
	if strings.Contains(kernel, "[i+") {
		t.Fatalf("kernel references future iterations:\n%s", kernel)
	}
}

func TestPipelinedLength(t *testing.T) {
	s := mustSchedule(t, corpus.Daxpy(), machine.SingleCluster(6))
	n := 100
	want := (n + s.StageCount() - 1) * s.II
	if got := PipelinedLength(s, n); got != want {
		t.Fatalf("PipelinedLength = %d, want %d", got, want)
	}
	// Degenerate short trip: sequential bound.
	if got := PipelinedLength(s, 1); got != s.Length() {
		t.Fatalf("short-trip length = %d, want %d", got, s.Length())
	}
}

func TestCountSlots(t *testing.T) {
	s := mustSchedule(t, corpus.Hydro(), machine.SingleCluster(6))
	used, total, util := CountSlots(s)
	if used != len(s.Loop.Ops) {
		t.Fatalf("used = %d", used)
	}
	if total < used || util <= 0 || util > 1 {
		t.Fatalf("total=%d util=%f", total, util)
	}
}

func TestClusterUtilizationBalance(t *testing.T) {
	s := mustSchedule(t, corpus.Hydro(), machine.Clustered(4))
	utils := ClusterUtilization(s)
	if len(utils) != 4 {
		t.Fatalf("got %d clusters", len(utils))
	}
	sum := 0.0
	for _, u := range utils {
		if u < 0 || u > 1 {
			t.Fatalf("utilization out of range: %v", utils)
		}
		sum += u
	}
	if sum == 0 {
		t.Fatal("no cluster does any work")
	}
}

func TestCandidateIIs(t *testing.T) {
	cs := candidateIIs(nil, 3, 100)
	if cs[0] != 3 {
		t.Fatalf("first candidate %d, want MII", cs[0])
	}
	for i := 1; i < 8 && i < len(cs); i++ {
		if cs[i] != cs[i-1]+1 {
			t.Fatalf("candidates not dense near MII: %v", cs[:8])
		}
	}
	if cs[len(cs)-1] != 100 {
		t.Fatalf("maxII missing: %v", cs)
	}
	for i := 1; i < len(cs); i++ {
		if cs[i] <= cs[i-1] {
			t.Fatalf("candidates not increasing: %v", cs)
		}
	}
	// Growth must be geometric-ish: far fewer than maxII-mii attempts.
	if len(cs) > 40 {
		t.Fatalf("too many candidates: %d", len(cs))
	}
	// Degenerate range.
	if got := candidateIIs(nil, 5, 5); len(got) != 1 || got[0] != 5 {
		t.Fatalf("single-candidate range wrong: %v", got)
	}
}

func TestMRTAddRemove(t *testing.T) {
	cfg := machine.Clustered(2)
	m := newMRT(3, &cfg)
	if !m.free(0, 0, machine.ALU) {
		t.Fatal("fresh MRT not free")
	}
	m.add(0, 0, machine.ALU, 7)
	if m.free(0, 0, machine.ALU) {
		t.Fatal("full cell reported free")
	}
	if occ := m.occupants(0, 0, machine.ALU); len(occ) != 1 || occ[0] != 7 {
		t.Fatalf("occupants = %v", occ)
	}
	m.remove(0, 0, machine.ALU, 7)
	if !m.free(0, 0, machine.ALU) {
		t.Fatal("cell not freed")
	}
}

func TestMRTPanicsOnOversubscription(t *testing.T) {
	cfg := machine.Clustered(1)
	m := newMRT(2, &cfg)
	m.add(1, 0, machine.MUL, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on oversubscription")
		}
	}()
	m.add(1, 0, machine.MUL, 2)
}

func TestFallbackLadderSchedulesHostileLoop(t *testing.T) {
	// A loop engineered to defeat free partitioning: a hub consumed by
	// chains that the neighbour-affinity heuristic wants to spread out.
	l := corpus.Generate(corpus.Params{Seed: 77, N: 30})[0]
	cfg := machine.Clustered(6)
	s := mustSchedule(t, l, cfg) // must not fail thanks to the ladder
	if s.II < s.MII() {
		t.Fatal("II below MII")
	}
}
