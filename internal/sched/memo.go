package sched

import (
	"sync"

	"vliwq/internal/ir"
	"vliwq/internal/machine"
)

// raceMemo shares placement-invariant facts across the attempts of one
// ScheduleLoop call. A portfolio race runs (strategies × candidate IIs)
// attempts over the same pristine loop; without sharing, each attempt
// rebuilds the CSR precedence views and recomputes the height priority
// fixpoint from scratch. Both depend only on the pristine graph (and, for
// heights, the II), so the race computes them once and every racing state
// reads them.
//
// The sharing is deliberately limited to placement-invariant facts.
// Placement-dependent candidates — per-op earliest-slot floors carried from
// a failed II, heights seeded from the previous II's fixpoint — are NOT
// memoized: ops legally sit below their eventual floors mid-attempt
// (evictions re-place them), and at II == RecMII zero-weight critical
// cycles make the fixpoint II-specific, so either would change placement
// decisions and break the byte-identity contract that Effort: fast results
// are cached, snapshotted and remapped under (DESIGN.md §13 spells out the
// invalidation rules).
//
// Concurrency: preds/succs/lat/deps are built before the race starts and
// are read-only afterwards. The heights table is guarded by mu; a height
// vector is written once, under the lock, by the first attempt to need its
// II, and only read (copied out) after that. An attempt that mutates its
// working loop (move insertion) detaches from the memo entirely and
// recomputes privately.
type raceMemo struct {
	n     int
	deps  []ir.Dep // aliases the pristine loop's list, never mutated
	lat   []int
	class []machine.FUClass

	preds, succs ir.Adj

	// Machine facts of the racing config (see maskInto); valid when the
	// machine fits the packed one-bit-per-cluster representation.
	adjMasks  []uint64
	allMask   uint64
	classMask [machine.NumClasses]uint64

	mu      sync.Mutex
	used    int // live prefix of heights (stale entries keep their storage)
	heights []memoHeights
}

type memoHeights struct {
	ii int
	h  []int
}

// memoPool recycles raceMemo arenas across portfolio ScheduleLoop calls,
// like statePool does for scheduling states.
var memoPool = sync.Pool{New: func() any { return new(raceMemo) }}

// newRaceMemo binds a pooled memo to a pristine loop and the machine the
// race targets.
func newRaceMemo(l *ir.Loop, cfg *machine.Config) *raceMemo {
	m := memoPool.Get().(*raceMemo)
	m.n = len(l.Ops)
	m.deps = l.Deps
	m.lat = refill(m.lat, m.n, 0)
	m.class = refill(m.class, m.n, 0)
	for i, op := range l.Ops {
		m.lat[i] = op.Kind.Latency()
		m.class[i] = machine.ClassOf(op.Kind)
	}
	if nc := cfg.NumClusters(); nc <= 64 {
		m.adjMasks = refill(m.adjMasks, nc, 0)
		m.allMask, m.classMask = maskInto(m.adjMasks, cfg)
	}
	l.PredsInto(&m.preds)
	l.SuccsInto(&m.succs)
	m.used = 0
	return m
}

// release returns the memo to the pool. The caller must guarantee no racing
// state still references it (the race's pool.Run has completed).
func (m *raceMemo) release() {
	m.deps = nil
	memoPool.Put(m)
}

// heightsFor returns the shared height vector for ii, computing it at most
// once per (loop, II) across every racing strategy. The returned slice is
// immutable; callers copy it into their own arena.
func (m *raceMemo) heightsFor(ii int) []int {
	m.mu.Lock()
	for i := 0; i < m.used; i++ {
		if m.heights[i].ii == ii {
			h := m.heights[i].h
			m.mu.Unlock()
			return h
		}
	}
	if m.used == len(m.heights) {
		m.heights = append(m.heights, memoHeights{})
	}
	e := &m.heights[m.used]
	e.ii = ii
	e.h = heightsInto(e.h, m.lat, m.deps, ii, m.n)
	m.used++
	h := e.h
	m.mu.Unlock()
	return h
}
