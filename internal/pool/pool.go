// Package pool provides the one worker-pool primitive every fan-out in the
// repo shares: the experiment sweeps (internal/exp), the facade's
// CompileBatch and the service's /batch endpoint all fan index sets over a
// fixed set of workers with deterministic, index-addressed output.
package pool

import (
	"context"
	"sync"
)

// Run calls fn(i) for every i in [0, n) on a fixed pool of workers pulling
// indices from a channel. A fixed pool spawns `workers` goroutines total
// instead of one per item — corpora run to a thousand-plus loops and each
// experiment sweeps them several times, so goroutine-per-item churn adds
// up. workers is clamped to [1, n].
//
// When ctx is cancelled, feeding stops and every unstarted index is handed
// to skipped instead (in-flight fn calls run to completion; a nil skipped
// drops them silently). Run returns only after all started work finishes.
// fn and skipped run concurrently and must write disjoint, index-addressed
// state; that discipline is also what keeps output order deterministic
// regardless of worker interleaving.
func Run(ctx context.Context, n, workers int, fn func(i int), skipped func(i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				fn(i)
			}
		}()
	}
	done := ctx.Done()
feed:
	for i := 0; i < n; i++ {
		// Check before the select: with an idle worker AND a cancelled
		// context both ready, select would pick randomly and dispatch
		// indices the caller expects to be skipped.
		if ctx.Err() != nil {
			skipRest(skipped, i, n)
			break
		}
		select {
		case idx <- i:
		case <-done:
			skipRest(skipped, i, n)
			break feed
		}
	}
	close(idx)
	wg.Wait()
}

func skipRest(skipped func(i int), from, n int) {
	if skipped == nil {
		return
	}
	for j := from; j < n; j++ {
		skipped(j)
	}
}
