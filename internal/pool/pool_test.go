package pool

import (
	"context"
	"sync/atomic"
	"testing"
)

func TestRunCoversEveryIndex(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 64} {
		const n = 40
		out := make([]int, n)
		Run(context.Background(), n, workers, func(i int) { out[i] = i + 1 }, nil)
		for i, v := range out {
			if v != i+1 {
				t.Fatalf("workers=%d: index %d not processed (got %d)", workers, i, v)
			}
		}
	}
}

func TestRunZeroItems(t *testing.T) {
	Run(context.Background(), 0, 4, func(i int) { t.Fatal("fn called") }, nil)
}

func TestRunCancelledUpfront(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	const n = 16
	var ran, skip atomic.Int64
	Run(ctx, n, 2, func(i int) { ran.Add(1) }, func(i int) { skip.Add(1) })
	// A context cancelled before Run starts must dispatch nothing: idle
	// workers make both select cases ready, and only the explicit
	// pre-select ctx check keeps indices out of fn.
	if ran.Load() != 0 {
		t.Fatalf("pre-cancelled run dispatched %d indices to fn", ran.Load())
	}
	if skip.Load() != n {
		t.Fatalf("skipped %d of %d", skip.Load(), n)
	}
}

func TestRunCancelMidway(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	const n = 100
	var ran, skip atomic.Int64
	Run(ctx, n, 2, func(i int) {
		if ran.Add(1) == 10 {
			cancel()
		}
	}, func(i int) { skip.Add(1) })
	if got := ran.Load() + skip.Load(); got != n {
		t.Fatalf("ran %d + skipped %d = %d, want every index accounted for (%d)", ran.Load(), skip.Load(), got, n)
	}
	if skip.Load() == 0 {
		t.Fatal("cancellation mid-run skipped nothing")
	}
}
