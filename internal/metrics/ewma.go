package metrics

import (
	"math"
	"sort"
	"sync"
)

// EWMA is a thread-safe exponentially weighted moving average. The serving
// layer uses it as the latency signal behind SLO-aware degradation: one
// number that tracks the recent compile latency while forgetting ancient
// history at a rate set by alpha.
type EWMA struct {
	mu    sync.Mutex
	alpha float64
	val   float64
	n     int64
}

// NewEWMA returns an EWMA with smoothing factor alpha in (0, 1]: each
// observation contributes alpha of the new value and keeps (1-alpha) of the
// old. Out-of-range alphas are clamped to 0.2 (roughly a 5-sample memory).
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 || alpha > 1 || math.IsNaN(alpha) {
		alpha = 0.2
	}
	return &EWMA{alpha: alpha}
}

// Observe folds one sample in and returns the updated average. The first
// sample seeds the average directly, so the estimate is meaningful from the
// start instead of climbing up from zero.
func (e *EWMA) Observe(x float64) float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.n == 0 {
		e.val = x
	} else {
		e.val = e.alpha*x + (1-e.alpha)*e.val
	}
	e.n++
	return e.val
}

// Value returns the current average (0 before any observation).
func (e *EWMA) Value() float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.val
}

// Count returns how many samples have been observed.
func (e *EWMA) Count() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.n
}

// Window is a thread-safe sliding window over the most recent N samples,
// answering order statistics. The gateway feeds it per-request latencies
// and reads Quantile(0.99) to derive its hedging delay — a tail estimate
// that adapts to the workload instead of a hardcoded timer.
type Window struct {
	mu  sync.Mutex
	buf []float64
	i   int // next write position
	n   int // filled count, <= len(buf)
}

// NewWindow returns a window over the last size samples (minimum 2).
func NewWindow(size int) *Window {
	if size < 2 {
		size = 2
	}
	return &Window{buf: make([]float64, size)}
}

// Add records one sample, evicting the oldest once the window is full.
func (w *Window) Add(x float64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.buf[w.i] = x
	w.i = (w.i + 1) % len(w.buf)
	if w.n < len(w.buf) {
		w.n++
	}
}

// Len returns the number of samples currently held.
func (w *Window) Len() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.n
}

// Quantile returns the q-quantile (q in [0, 1], nearest-rank) of the held
// samples, or 0 when the window is empty.
func (w *Window) Quantile(q float64) float64 {
	w.mu.Lock()
	if w.n == 0 {
		w.mu.Unlock()
		return 0
	}
	tmp := make([]float64, w.n)
	copy(tmp, w.buf[:w.n])
	w.mu.Unlock()
	sort.Float64s(tmp)
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	return tmp[int(q*float64(len(tmp)-1))]
}
