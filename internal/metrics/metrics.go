// Package metrics computes the performance measures the paper reports:
// initiation-interval speedups from unrolling (Fig. 4), stage counts, and
// static/dynamic operations-issued-per-cycle (Figs. 8 and 9).
package metrics

import (
	"vliwq/internal/ir"
	"vliwq/internal/sched"
)

// RealOps counts the operations of the original program, excluding the
// copy and move overhead the compiler added. The paper sizes machines as
// "N FUs plus the required FUs to support copy operations" and reports
// issue rates of program operations, so overhead ops are not counted as
// issued work.
func RealOps(l *ir.Loop) int {
	n := 0
	for _, op := range l.Ops {
		if op.Kind != ir.KCopy && op.Kind != ir.KMove {
			n++
		}
	}
	return n
}

// IPCStatic is the kernel-phase issue rate for one iteration of the
// scheduled body: program operations per II cycles (paper §4).
func IPCStatic(s *sched.Schedule) float64 {
	return float64(RealOps(s.Loop)) / float64(s.II)
}

// Cycles models the total execution time of the software-pipelined loop:
// prologue + kernel + epilogue = (iterations + stages - 1) * II, where
// iterations counts executions of the (possibly unrolled) body.
func Cycles(s *sched.Schedule, iterations int) int {
	return (iterations + s.StageCount() - 1) * s.II
}

// IPCDynamic is the issue rate over the whole execution including the less
// efficient prologue and epilogue phases.
func IPCDynamic(s *sched.Schedule, iterations int) float64 {
	if iterations <= 0 {
		iterations = s.Loop.TripCount()
	}
	return float64(RealOps(s.Loop)*iterations) / float64(Cycles(s, iterations))
}

// IISpeedup is the paper's Equation (1), normalized per original
// iteration: II_speedup = (II_original * U) / II_unrolled, where the
// unrolled body covers U original iterations per initiation.
func IISpeedup(origII, factor, unrolledII int) float64 {
	return float64(origII*factor) / float64(unrolledII)
}

// DynamicAggregate accumulates corpus-wide dynamic issue statistics. The
// paper's dynamic analysis weights loops by execution time, which is why a
// few large loops dominate the dynamic numbers (Fig. 8 discussion); this
// accumulator reproduces that weighting: total operations issued over
// total cycles across the whole corpus.
type DynamicAggregate struct {
	ops    float64
	cycles float64
}

// Add accounts one scheduled loop. origIterations is the trip count in the
// original iteration space; the body executes origIterations/U times.
func (d *DynamicAggregate) Add(s *sched.Schedule, origIterations int) {
	u := s.Loop.UnrollFactor()
	iters := origIterations / u
	if iters < 1 {
		iters = 1
	}
	d.ops += float64(RealOps(s.Loop) * iters)
	d.cycles += float64(Cycles(s, iters))
}

// IPC returns the execution-time-weighted dynamic issue rate.
func (d *DynamicAggregate) IPC() float64 {
	if d.cycles == 0 {
		return 0
	}
	return d.ops / d.cycles
}

// Mean accumulates an arithmetic mean (used for the static IPC series,
// which the paper averages per loop).
type Mean struct {
	sum float64
	n   int
}

// Add accounts one sample.
func (m *Mean) Add(v float64) { m.sum += v; m.n++ }

// Value returns the mean (0 for no samples).
func (m *Mean) Value() float64 {
	if m.n == 0 {
		return 0
	}
	return m.sum / float64(m.n)
}

// N returns the sample count.
func (m *Mean) N() int { return m.n }
