package metrics

import (
	"math"
	"sync"
	"testing"
)

func TestEWMASeedAndDecay(t *testing.T) {
	e := NewEWMA(0.5)
	if v := e.Value(); v != 0 {
		t.Fatalf("empty EWMA value %v, want 0", v)
	}
	if v := e.Observe(100); v != 100 {
		t.Fatalf("first sample seeds the average: got %v, want 100", v)
	}
	if v := e.Observe(0); v != 50 {
		t.Fatalf("alpha 0.5 after 100 then 0: got %v, want 50", v)
	}
	if v := e.Observe(0); v != 25 {
		t.Fatalf("decay continues: got %v, want 25", v)
	}
	if e.Count() != 3 {
		t.Fatalf("count %d, want 3", e.Count())
	}
}

func TestEWMAClampsBadAlpha(t *testing.T) {
	for _, alpha := range []float64{0, -1, 1.5, math.NaN()} {
		e := NewEWMA(alpha)
		e.Observe(10)
		e.Observe(20)
		v := e.Value()
		if v <= 10 || v >= 20 {
			t.Fatalf("alpha %v: value %v outside (10, 20) — clamp failed", alpha, v)
		}
	}
}

func TestEWMAConvergesToConstant(t *testing.T) {
	e := NewEWMA(0.2)
	for i := 0; i < 200; i++ {
		e.Observe(42)
	}
	if v := e.Value(); math.Abs(v-42) > 1e-9 {
		t.Fatalf("constant stream: value %v, want 42", v)
	}
}

func TestWindowQuantile(t *testing.T) {
	w := NewWindow(100)
	if q := w.Quantile(0.99); q != 0 {
		t.Fatalf("empty window quantile %v, want 0", q)
	}
	for i := 1; i <= 100; i++ {
		w.Add(float64(i))
	}
	if w.Len() != 100 {
		t.Fatalf("len %d, want 100", w.Len())
	}
	if q := w.Quantile(0); q != 1 {
		t.Fatalf("q0 = %v, want 1", q)
	}
	if q := w.Quantile(1); q != 100 {
		t.Fatalf("q1 = %v, want 100", q)
	}
	if q := w.Quantile(0.5); q != 50 {
		t.Fatalf("median = %v, want 50", q)
	}
	// Out-of-range quantiles clamp instead of panicking.
	if q := w.Quantile(1.5); q != 100 {
		t.Fatalf("q1.5 = %v, want 100", q)
	}
	if q := w.Quantile(-1); q != 1 {
		t.Fatalf("q-1 = %v, want 1", q)
	}
}

func TestWindowEvictsOldest(t *testing.T) {
	w := NewWindow(4)
	for i := 1; i <= 8; i++ {
		w.Add(float64(i))
	}
	// Only 5..8 remain: the minimum visible sample must be 5.
	if q := w.Quantile(0); q != 5 {
		t.Fatalf("after wraparound min = %v, want 5", q)
	}
	if w.Len() != 4 {
		t.Fatalf("len %d, want 4", w.Len())
	}
}

func TestWindowMinimumSize(t *testing.T) {
	w := NewWindow(0)
	w.Add(3)
	if q := w.Quantile(0.5); q != 3 {
		t.Fatalf("tiny window quantile %v, want 3", q)
	}
}

func TestEWMAAndWindowConcurrent(t *testing.T) {
	e := NewEWMA(0.1)
	w := NewWindow(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				e.Observe(float64(i % 7))
				w.Add(float64(i % 7))
				_ = w.Quantile(0.99)
				_ = e.Value()
			}
		}()
	}
	wg.Wait()
	if e.Count() != 8000 {
		t.Fatalf("count %d, want 8000", e.Count())
	}
	if q := w.Quantile(1); q > 6 {
		t.Fatalf("max %v exceeds the largest sample 6", q)
	}
}
