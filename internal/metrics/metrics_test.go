package metrics

import (
	"math"
	"testing"

	"vliwq/internal/copyins"
	"vliwq/internal/corpus"
	"vliwq/internal/machine"
	"vliwq/internal/sched"
	"vliwq/internal/unroll"
)

func TestRealOpsExcludesOverhead(t *testing.T) {
	l := corpus.ComplexMul()
	if got, want := RealOps(l), len(l.Ops); got != want {
		t.Fatalf("RealOps = %d, want %d", got, want)
	}
	ins, err := copyins.Insert(l, copyins.Tree)
	if err != nil {
		t.Fatal(err)
	}
	if got := RealOps(ins.Loop); got != len(l.Ops) {
		t.Fatalf("RealOps after copy insertion = %d, want %d (copies excluded)", got, len(l.Ops))
	}
}

func TestIPCStaticAndDynamicRelation(t *testing.T) {
	cfg := machine.SingleCluster(6)
	for _, l := range corpus.Kernels() {
		s, err := sched.ScheduleLoop(l, cfg, sched.Options{})
		if err != nil {
			t.Fatalf("%s: %v", l.Name, err)
		}
		static := IPCStatic(s)
		dyn := IPCDynamic(s, l.TripCount())
		if static <= 0 || dyn <= 0 {
			t.Fatalf("%s: nonpositive IPC", l.Name)
		}
		// Dynamic includes prologue/epilogue overhead, so it can never
		// exceed static.
		if dyn > static+1e-9 {
			t.Fatalf("%s: dynamic %.3f > static %.3f", l.Name, dyn, static)
		}
		// And converges to static as the trip count grows.
		dynBig := IPCDynamic(s, 1_000_000)
		if math.Abs(dynBig-static) > 0.01*static {
			t.Fatalf("%s: dynamic %.4f does not converge to static %.4f", l.Name, dynBig, static)
		}
	}
}

func TestCycles(t *testing.T) {
	l := corpus.Daxpy()
	s, err := sched.ScheduleLoop(l, machine.SingleCluster(12), sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	n := 100
	want := (n + s.StageCount() - 1) * s.II
	if got := Cycles(s, n); got != want {
		t.Fatalf("Cycles = %d, want %d", got, want)
	}
}

func TestIISpeedup(t *testing.T) {
	if got := IISpeedup(3, 2, 5); math.Abs(got-1.2) > 1e-9 {
		t.Fatalf("IISpeedup(3,2,5) = %v, want 1.2", got)
	}
	if got := IISpeedup(4, 1, 4); got != 1 {
		t.Fatalf("identity speedup = %v", got)
	}
	if got := IISpeedup(4, 2, 10); got >= 1 {
		t.Fatalf("slowdown should be < 1, got %v", got)
	}
}

func TestDynamicAggregateWeighting(t *testing.T) {
	cfg := machine.SingleCluster(6)
	small, err := sched.ScheduleLoop(corpus.Daxpy(), cfg, sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	big, err := sched.ScheduleLoop(corpus.Hydro(), cfg, sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Weighting by execution time: an aggregate dominated by the big
	// loop's long run must sit near the big loop's own dynamic IPC.
	var agg DynamicAggregate
	agg.Add(small, 10)
	agg.Add(big, 100000)
	bigOwn := IPCDynamic(big, 100000)
	if math.Abs(agg.IPC()-bigOwn) > 0.05*bigOwn {
		t.Fatalf("aggregate %.3f not dominated by big loop %.3f", agg.IPC(), bigOwn)
	}
}

func TestDynamicAggregateUnrolled(t *testing.T) {
	cfg := machine.SingleCluster(6)
	l := corpus.Stencil3()
	u, err := unroll.Unroll(l, 2)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.ScheduleLoop(u, cfg, sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var agg DynamicAggregate
	agg.Add(s, l.TripCount())
	// The unrolled body executes trip/2 times; ops per body iteration
	// doubled. The aggregate must roughly match the per-loop dynamic IPC.
	own := IPCDynamic(s, l.TripCount()/2)
	if math.Abs(agg.IPC()-own) > 1e-9 {
		t.Fatalf("aggregate %.4f != per-loop %.4f", agg.IPC(), own)
	}
}

func TestMean(t *testing.T) {
	var m Mean
	if m.Value() != 0 || m.N() != 0 {
		t.Fatal("zero-value Mean wrong")
	}
	m.Add(1)
	m.Add(2)
	m.Add(6)
	if got := m.Value(); math.Abs(got-3) > 1e-12 {
		t.Fatalf("mean = %v, want 3", got)
	}
	if m.N() != 3 {
		t.Fatalf("N = %d", m.N())
	}
}
