package exp

import (
	"fmt"

	"vliwq/internal/copyins"
	"vliwq/internal/corpus"
	"vliwq/internal/ir"
	"vliwq/internal/machine"
	"vliwq/internal/sched"
)

// Portfolio is the portfolio-vs-baseline sweep: for the standard corpus
// and the stressed preset (corpus.Stressed — wide fanout, heavy
// cross-cluster pressure), it compiles every loop on clustered machines at
// EffortFast (the single baseline heuristic) and EffortExhaustive (the
// full strategy race) and reports the II-gap histogram — how far each
// schedule lands from its MII lower bound. The exhaustive rows also tally
// which strategy won, so the catalogue's diversity is visible, not
// assumed. Everything is deterministic: same corpora, same report,
// regardless of worker count.
//
// This is the repo's scenario-diversity experiment rather than a paper
// figure: the paper commits to one partition heuristic, and this table
// measures exactly what that commitment costs on partition-hostile loops.
func Portfolio(opts Options) *Table {
	t := &Table{
		ID:     "portfolio",
		Title:  "Portfolio scheduling: II gap to MII by effort (copy ops, partitioned)",
		Header: []string{"corpus", "clusters", "effort", "II=MII", "+1", "+2", ">+2", "mean gap", "failed"},
	}
	// Rows pin their effort explicitly, so the sweep-wide Options.Effort
	// must not leak into the fast rows through the compiler's injection.
	base := opts
	base.Effort = sched.EffortFast
	corpora := []struct {
		name  string
		loops []*ir.Loop
	}{
		{"standard", opts.loops()},
		{"stressed", opts.stressedLoops()},
	}
	type res struct {
		ok       bool
		gap      int
		strategy sched.Strategy
	}
	for _, co := range corpora {
		for _, nc := range []int{4, 6} {
			cfg := machine.Clustered(nc)
			for _, eff := range []sched.Effort{sched.EffortFast, sched.EffortExhaustive} {
				comp := base.compiler(cfg, pipeOpts{
					copies:    true,
					shape:     copyins.Tree,
					schedOpts: sched.Options{Effort: eff},
				})
				results := forEach(co.loops, base.workers(), func(l *ir.Loop) res {
					c := comp(l)
					if c.Err != nil {
						return res{}
					}
					return res{ok: true, gap: c.Sched.II - c.Sched.MII(), strategy: c.Sched.Strategy}
				})
				var ok, g0, g1, g2, gMore, gapSum, failed int
				wins := map[sched.Strategy]int{}
				for _, r := range results {
					if !r.ok {
						failed++
						continue
					}
					ok++
					gapSum += r.gap
					wins[r.strategy]++
					switch {
					case r.gap <= 0:
						g0++
					case r.gap == 1:
						g1++
					case r.gap == 2:
						g2++
					default:
						gMore++
					}
				}
				mean := "n/a"
				if ok > 0 {
					mean = fmt.Sprintf("%.3f", float64(gapSum)/float64(ok))
				}
				t.Rows = append(t.Rows, []string{
					co.name,
					fmt.Sprintf("%d", nc),
					eff.String(),
					pct(g0, ok),
					pct(g1, ok),
					pct(g2, ok),
					pct(gMore, ok),
					mean,
					fmt.Sprintf("%d", failed),
				})
				if eff == sched.EffortExhaustive {
					t.Notes = append(t.Notes, fmt.Sprintf(
						"%s/%d-cluster exhaustive wins: %s", co.name, nc, winsByStrategy(wins)))
				}
			}
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("stressed preset: %d loops, seed %d (wide fanout, dense cross-iteration flow)",
			len(corpora[1].loops), corpus.StressedSeed),
		"exhaustive races every strategy per candidate II and can only match or lower the II of the baseline heuristic")
	return t
}

// winsByStrategy renders a win tally in strategy-index order, so the note
// is deterministic.
func winsByStrategy(wins map[sched.Strategy]int) string {
	out := ""
	for s := sched.Strategy(0); s < sched.NumStrategies; s++ {
		if n := wins[s]; n > 0 {
			if out != "" {
				out += " "
			}
			out += fmt.Sprintf("%s=%d", s, n)
		}
	}
	if out == "" {
		return "none"
	}
	return out
}
