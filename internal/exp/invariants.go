package exp

import (
	"fmt"

	"vliwq/internal/copyins"
	"vliwq/internal/ir"
	"vliwq/internal/machine"
)

// AblationInvariants quantifies the paper's §5 work-in-progress item,
// "strategies to deal with loop invariants". The baseline model (like the
// paper's) re-loads loop-invariant scalars every iteration, because a queue
// read destroys the value; a hoisting scheme would keep invariants in
// dedicated storage and remove those loads from the loop body. This
// ablation compares the II of each loop against a hypothetically hoisted
// variant in which invariant-like leaf loads (no address operand, i.e. the
// same location every iteration) are deleted, bounding what a real
// recirculation or invariant-register scheme could gain.
//
// The comparison is scheduling-only: removing a load changes program
// semantics, so the hoisted variants are never simulated.
func AblationInvariants(opts Options) *Table {
	loops := opts.loops()
	t := &Table{
		ID:     "ablation-invariants",
		Title:  "Loop-invariant hoisting bound (leaf loads removed)",
		Header: []string{"machine", "loops w/ invariants", "II improves", "mean II ratio (hoisted/base)", "mean loads removed"},
	}
	for _, nfu := range []int{4, 6, 12} {
		cfg := machine.SingleCluster(nfu)
		type res struct {
			ok       bool
			has      bool
			improves bool
			ratio    float64
			removed  int
		}
		compBase := opts.compiler(cfg, pipeOpts{copies: true, shape: copyins.Tree})
		results := forEach(loops, opts.workers(), func(l *ir.Loop) res {
			hoisted, removed := hoistInvariants(l)
			if removed == 0 {
				return res{ok: true}
			}
			base := compBase(l)
			// The hoisted variant is a fresh per-call loop: its pointer key
			// could never hit the shared cache again, so compiling it
			// through the Pipeline would only pollute the memo.
			hc := compileLoop(hoisted, cfg, pipeOpts{copies: true, shape: copyins.Tree}, nil)
			if base.Err != nil || hc.Err != nil {
				return res{}
			}
			return res{
				ok:       true,
				has:      true,
				improves: hc.Sched.II < base.Sched.II,
				ratio:    float64(hc.Sched.II) / float64(base.Sched.II),
				removed:  removed,
			}
		})
		var ok, has, improves, removed int
		var ratio float64
		for _, r := range results {
			if !r.ok {
				continue
			}
			ok++
			if !r.has {
				continue
			}
			has++
			removed += r.removed
			ratio += r.ratio
			if r.improves {
				improves++
			}
		}
		row := []string{fmt.Sprintf("%d FUs", nfu), pct(has, ok)}
		if has > 0 {
			row = append(row,
				pct(improves, has),
				fmt.Sprintf("%.3f", ratio/float64(has)),
				fmt.Sprintf("%.1f", float64(removed)/float64(has)))
		} else {
			row = append(row, "n/a", "n/a", "n/a")
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"upper bound: deleting the loads assumes invariants live in dedicated storage with free reads",
		"gains concentrate on narrow machines where the L/S unit is the binding resource")
	return t
}

// hoistInvariants returns a copy of the loop with invariant-like leaf
// loads (loads without an address operand) removed, along with the number
// removed. Consumers simply lose that operand; loads whose removal would
// leave a store with no inputs are kept.
func hoistInvariants(l *ir.Loop) (*ir.Loop, int) {
	// Identify candidates on the original indices.
	inputs := make([]int, len(l.Ops))
	for _, d := range l.Deps {
		if d.Kind == ir.Flow {
			inputs[d.To]++
		}
	}
	candidate := make([]bool, len(l.Ops))
	for id, op := range l.Ops {
		if op.Kind == ir.KLoad && inputs[id] == 0 {
			candidate[id] = true
		}
	}
	// A store must keep at least one operand (it has to store something).
	for _, op := range l.Ops {
		if op.Kind != ir.KStore {
			continue
		}
		deps := l.FlowInputs(op)
		all := len(deps) > 0
		for _, d := range deps {
			if !candidate[d.From] {
				all = false
			}
		}
		if all {
			candidate[deps[0].From] = false
		}
	}
	removedCount := 0
	for id := range candidate {
		if candidate[id] {
			removedCount++
		}
	}
	if removedCount == 0 {
		return l, 0
	}
	// Rebuild without the candidates.
	out := &ir.Loop{Name: l.Name + ".hoisted", Trip: l.Trip, Unroll: l.Unroll}
	remap := make([]int, len(l.Ops))
	for id, op := range l.Ops {
		if candidate[id] {
			remap[id] = -1
			continue
		}
		c := out.AddOp(op.Kind, op.Name)
		c.Orig = op.Orig
		c.Phase = op.Phase
		remap[id] = c.ID
	}
	for _, d := range l.Deps {
		if remap[d.From] < 0 || remap[d.To] < 0 {
			continue
		}
		out.AddDep(ir.Dep{From: remap[d.From], To: remap[d.To], Dist: d.Dist, Kind: d.Kind})
	}
	if err := out.Validate(); err != nil {
		// Degenerate shapes (e.g. everything was an invariant) fall back
		// to the original loop.
		return l, 0
	}
	return out, removedCount
}
