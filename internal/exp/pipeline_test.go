package exp

import (
	"bytes"
	"testing"

	"vliwq/internal/copyins"
	"vliwq/internal/corpus"
	"vliwq/internal/machine"
)

func render(t *Table) string {
	var b bytes.Buffer
	t.Fprint(&b)
	return b.String()
}

// TestPipelineCacheMatchesUncached is the cache's determinism contract:
// every experiment must produce table-for-table identical output whether
// its compilations come from a shared Pipeline or run uncached.
func TestPipelineCacheMatchesUncached(t *testing.T) {
	loops := corpus.Generate(corpus.Params{Seed: 11, N: 16})
	figs := []struct {
		name string
		fn   func(Options) *Table
	}{
		{"fig3", Fig3}, {"copycost", CopyCost},
		{"fig4", Fig4}, {"unrollqueues", UnrollQueues},
		{"fig6", Fig6}, {"clusterres", ClusterResources},
		{"fig8", Fig8}, {"fig9", Fig9},
		{"ablation-copyshape", AblationCopyShape},
		{"ablation-moves", AblationMoveOps},
		{"ablation-commlat", AblationCommLatency},
		{"ablation-invariants", AblationInvariants},
	}
	cached := Options{Loops: loops, Pipeline: NewPipeline()}
	uncached := Options{Loops: loops}
	for _, f := range figs {
		want := render(f.fn(uncached))
		got := render(f.fn(cached))
		if got != want {
			t.Errorf("%s: cached output differs from uncached:\n--- uncached ---\n%s--- cached ---\n%s", f.name, want, got)
		}
		// A second cached run — now fully served from the memo — must also
		// agree.
		if again := render(f.fn(cached)); again != want {
			t.Errorf("%s: cache-hit output differs from uncached", f.name)
		}
	}
}

// TestRunAllDeterministic runs the whole suite twice with independent
// caches and worker pools; the rendered bytes must match exactly.
func TestRunAllDeterministic(t *testing.T) {
	loops := corpus.Generate(corpus.Params{Seed: 7, N: 12})
	var a, b bytes.Buffer
	RunAll(&a, Options{Loops: loops, Workers: 4})
	RunAll(&b, Options{Loops: loops, Workers: 1})
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("RunAll output depends on run or worker count:\n--- run 1 ---\n%s--- run 2 ---\n%s", a.String(), b.String())
	}
}

// TestPipelineKeySeparation ensures the digests keep distinct machines and
// pipeline options apart: a cache shared across experiments must never
// serve a compilation for the wrong configuration.
func TestPipelineKeySeparation(t *testing.T) {
	p := NewPipeline()
	l := corpus.Daxpy()
	a := p.compile(l, machine.SingleCluster(4), pipeOpts{copies: true, shape: copyins.Tree})
	b := p.compile(l, machine.SingleCluster(12), pipeOpts{copies: true, shape: copyins.Tree})
	if a.Err != nil || b.Err != nil {
		t.Fatalf("compile errors: %v, %v", a.Err, b.Err)
	}
	if a.Sched.II == b.Sched.II {
		t.Fatalf("4-FU and 12-FU compilations collided in the cache (II %d == %d)", a.Sched.II, b.Sched.II)
	}
	moves := machine.Clustered(4)
	moves.AllowMoves = true
	c := p.compile(l, machine.Clustered(4), pipeOpts{copies: true, shape: copyins.Tree})
	d := p.compile(l, moves, pipeOpts{copies: true, shape: copyins.Tree})
	if c.Sched == d.Sched {
		t.Fatalf("AllowMoves variant shares the base machine's cache entry")
	}
	// Identical inputs must share one entry (pointer-equal results).
	e := p.compile(l, machine.SingleCluster(4), pipeOpts{copies: true, shape: copyins.Tree})
	if e.Sched != a.Sched {
		t.Fatalf("identical compilation did not hit the cache")
	}
}

// TestStandardCorpusMemoized verifies corpus.Standard returns the shared
// corpus instance, the property the cross-figure cache keys rely on.
func TestStandardCorpusMemoized(t *testing.T) {
	a, b := corpus.Standard(), corpus.Standard()
	if len(a) != corpus.PaperCorpusSize {
		t.Fatalf("standard corpus has %d loops", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("Standard() regenerated loop %d", i)
		}
	}
}

// TestPipelineStatsCounters checks the refactored Pipeline exposes the
// shared cache's counters: a second identical compile is a hit, not a
// recompute.
func TestPipelineStatsCounters(t *testing.T) {
	p := NewPipeline()
	l := corpus.Daxpy()
	p.compile(l, machine.SingleCluster(4), pipeOpts{copies: true})
	p.compile(l, machine.SingleCluster(4), pipeOpts{copies: true})
	st := p.Stats()
	if st.Misses != 1 || st.Hits != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v, want 1 miss, 1 hit, 1 entry", st)
	}
}

// TestPipelineStageNanos: the per-stage clocks count actual compilations
// only — a cache hit adds nothing — and key by the facade's stage names.
func TestPipelineStageNanos(t *testing.T) {
	p := NewPipeline()
	l := corpus.Daxpy()
	p.compile(l, machine.SingleCluster(4), pipeOpts{copies: true})
	first := p.StageNanos()
	if first["schedule"] <= 0 || first["alloc"] <= 0 || first["copies"] <= 0 {
		t.Fatalf("stage nanos missing executed stages: %v", first)
	}
	p.compile(l, machine.SingleCluster(4), pipeOpts{copies: true}) // hit
	if again := p.StageNanos()["schedule"]; again != first["schedule"] {
		t.Fatalf("a cache hit advanced the schedule clock: %d -> %d", first["schedule"], again)
	}
}
