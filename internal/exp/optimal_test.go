package exp

import (
	"strconv"
	"strings"
	"testing"

	"vliwq/internal/corpus"
)

// optimalOpts is a test-sized sweep: small stressed slice, shared pipeline.
func optimalOpts() Options {
	sp := corpus.StressedParams()
	sp.N = 32
	return Options{
		StressedLoops: corpus.Generate(sp),
		Pipeline:      NewPipeline(),
	}
}

// TestOptimalShapeAndDeterminism: one row per ring machine, every gapped
// loop classified exactly once, identical tables across runs.
func TestOptimalShapeAndDeterminism(t *testing.T) {
	tab := Optimal(optimalOpts())
	if len(tab.Rows) != 2 {
		t.Fatalf("optimal rows = %d, want 2", len(tab.Rows))
	}
	atoi := func(s string) int {
		n, err := strconv.Atoi(s)
		if err != nil {
			t.Fatalf("non-numeric cell %q", s)
		}
		return n
	}
	for _, row := range tab.Rows {
		gapped, proved, improved, unproved := atoi(row[4]), atoi(row[5]), atoi(row[6]), atoi(row[7])
		if proved+improved+unproved != gapped {
			t.Fatalf("gap classification does not partition: %v", row)
		}
	}
	again := Optimal(optimalOpts())
	for i := range tab.Rows {
		if strings.Join(tab.Rows[i], "|") != strings.Join(again.Rows[i], "|") {
			t.Fatalf("row %d not deterministic:\n%v\n%v", i, tab.Rows[i], again.Rows[i])
		}
	}
}

// TestOptimalCertifiesOrImprovesGap is the PR's acceptance criterion in
// miniature: the exhaustive tier must leave gapped loops on the stressed
// ring machines, and the exact search must prove or improve at least one
// of them.
func TestOptimalCertifiesOrImprovesGap(t *testing.T) {
	tab := Optimal(optimalOpts())
	gapped, closed := 0, 0
	for _, row := range tab.Rows {
		g, _ := strconv.Atoi(row[4])
		p, _ := strconv.Atoi(row[5])
		im, _ := strconv.Atoi(row[6])
		gapped += g
		closed += p + im
	}
	if gapped == 0 {
		t.Fatal("no gapped loops on the stressed slice; the sweep measures nothing")
	}
	if closed == 0 {
		t.Fatal("no gapped loop was proved optimal or improved")
	}
}
