package exp

import (
	"fmt"

	"vliwq/internal/copyins"
	"vliwq/internal/ir"
	"vliwq/internal/machine"
)

// Fig6 reproduces "Figure 6. Initiation Interval Variation": the fraction
// of loops that the partitioned scheduler places on a clustered machine at
// exactly the II achieved by the single-cluster machine of the same size,
// for 4, 5 and 6 clusters (12, 15, 18 FUs). Loop unrolling and copy
// insertion are applied, as in the paper's experiments.
func Fig6(opts Options) *Table {
	loops := opts.loops()
	t := &Table{
		ID:     "fig6",
		Title:  "Partitioned vs single-cluster II (IMS partitioning)",
		Header: []string{"clusters", "FUs", "same II", "+1 cycle", ">+1", "unschedulable"},
	}
	for _, nc := range machine.PaperClusterCounts {
		single := machine.SingleCluster(3 * nc)
		clustered := machine.Clustered(nc)
		type res struct {
			ok     bool
			delta  int
			failed bool
		}
		compSingle := opts.compiler(single, pipeOpts{unroll: true, copies: true, shape: copyins.Tree})
		compClustered := opts.compiler(clustered, pipeOpts{unroll: true, copies: true, shape: copyins.Tree, factorFrom: &single})
		results := forEach(loops, opts.workers(), func(l *ir.Loop) res {
			// The same transformed body is scheduled on both machines
			// (total FU mixes match, so AutoFactor agrees).
			s1 := compSingle(l)
			if s1.Err != nil {
				return res{failed: true}
			}
			s2 := compClustered(l)
			if s2.Err != nil {
				return res{failed: true}
			}
			return res{ok: true, delta: s2.Sched.II - s1.Sched.II}
		})
		var ok, same, plus1, more, failed int
		for _, r := range results {
			if r.failed {
				failed++
				continue
			}
			if !r.ok {
				continue
			}
			ok++
			switch {
			case r.delta <= 0:
				same++
			case r.delta == 1:
				plus1++
			default:
				more++
			}
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", nc),
			fmt.Sprintf("%d", 3*nc),
			pct(same, ok),
			pct(plus1, ok),
			pct(more, ok),
			fmt.Sprintf("%d", failed),
		})
	}
	t.Notes = append(t.Notes,
		"paper: ~95% same II at 4 clusters, 84% at 5, 52% at 6; degradation blamed on the inability to move values between non-adjacent clusters")
	return t
}

// ClusterResources reproduces the §4 hardware sizing result: a cluster of
// 8 private queues plus 8 ring queues per direction suffices for the vast
// majority of loops (Fig. 7's basic cluster configuration).
func ClusterResources(opts Options) *Table {
	loops := opts.loops()
	t := &Table{
		ID:     "clusterres",
		Title:  "Cluster queue resources (unrolled, copy ops, partitioned)",
		Header: []string{"clusters", "private<=8", "ring<=8/dir", "both", "mean private", "mean ring", "max depth"},
	}
	for _, nc := range machine.PaperClusterCounts {
		clustered := machine.Clustered(nc)
		type res struct {
			ok         bool
			priv, ring int
			depth      int
		}
		comp := opts.compiler(clustered, pipeOpts{unroll: true, copies: true, shape: copyins.Tree})
		results := forEach(loops, opts.workers(), func(l *ir.Loop) res {
			c := comp(l)
			if c.Err != nil {
				return res{}
			}
			return res{ok: true, priv: c.Alloc.MaxPrivateQueues(), ring: c.Alloc.MaxRingQueues(), depth: c.Alloc.MaxDepth()}
		})
		var ok, privOK, ringOK, bothOK, privSum, ringSum, depthMax int
		for _, r := range results {
			if !r.ok {
				continue
			}
			ok++
			privSum += r.priv
			ringSum += r.ring
			if r.priv <= machine.DefaultPrivateQueues {
				privOK++
			}
			if r.ring <= machine.DefaultRingQueues {
				ringOK++
			}
			if r.priv <= machine.DefaultPrivateQueues && r.ring <= machine.DefaultRingQueues {
				bothOK++
			}
			if r.depth > depthMax {
				depthMax = r.depth
			}
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", nc),
			pct(privOK, ok),
			pct(ringOK, ok),
			pct(bothOK, ok),
			fmt.Sprintf("%.1f", float64(privSum)/float64(ok)),
			fmt.Sprintf("%.1f", float64(ringSum)/float64(ok)),
			fmt.Sprintf("%d", depthMax),
		})
	}
	t.Notes = append(t.Notes,
		"paper: 8 private + 16 ring queues (8 per direction) suffice for any machine model analysed; a small fraction of loops needs more")
	return t
}
