package exp

import (
	"fmt"

	"vliwq/internal/copyins"
	"vliwq/internal/ir"
	"vliwq/internal/machine"
	"vliwq/internal/metrics"
	"vliwq/internal/sched"
)

// ipcSeries computes the four curves of Figs. 8/9 — static and dynamic IPC
// for single-cluster and clustered machines — across the FU axis. Static
// IPC is averaged per loop (kernel issue rate); dynamic IPC is weighted by
// execution time across the corpus, which is what lets a few large loops
// dominate, the effect the paper highlights.
func ipcSeries(opts Options, loops []*ir.Loop, title, id string) *Table {
	t := &Table{
		ID:     id,
		Title:  title,
		Header: []string{"FUs", "static single", "static clustered", "dynamic single", "dynamic clustered"},
	}
	type point struct {
		static float64
		hasDyn bool
		ops    float64
		cycles float64
		ok     bool
	}
	measure := func(cfg machine.Config) (staticMean float64, dynIPC float64) {
		comp := opts.compiler(cfg, pipeOpts{unroll: true, copies: true, shape: copyins.Tree})
		results := forEach(loops, opts.workers(), func(l *ir.Loop) point {
			c := comp(l)
			if c.Err != nil {
				return point{}
			}
			u := c.Sched.Loop.UnrollFactor()
			iters := l.TripCount() / u
			if iters < 1 {
				iters = 1
			}
			return point{
				static: metrics.IPCStatic(c.Sched),
				ok:     true,
				ops:    float64(metrics.RealOps(c.Sched.Loop) * iters),
				cycles: float64(metrics.Cycles(c.Sched, iters)),
			}
		})
		var m metrics.Mean
		var ops, cycles float64
		for _, p := range results {
			if !p.ok {
				continue
			}
			m.Add(p.static)
			ops += p.ops
			cycles += p.cycles
		}
		if cycles == 0 {
			return 0, 0
		}
		return m.Value(), ops / cycles
	}

	// Clustered machines exist at multiples of 3 FUs (>= 2 clusters).
	clusteredAt := map[int]machine.Config{}
	for nc := 2; nc <= 6; nc++ {
		clusteredAt[3*nc] = machine.Clustered(nc)
	}
	for nfu := 4; nfu <= 18; nfu++ {
		sStat, sDyn := measure(machine.SingleCluster(nfu))
		row := []string{fmt.Sprintf("%d", nfu), fmt.Sprintf("%.2f", sStat), "", fmt.Sprintf("%.2f", sDyn), ""}
		if cfg, ok := clusteredAt[nfu]; ok {
			cStat, cDyn := measure(cfg)
			row[2] = fmt.Sprintf("%.2f", cStat)
			row[4] = fmt.Sprintf("%.2f", cDyn)
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Fig8 reproduces "Figure 8. IPC — All Loops".
func Fig8(opts Options) *Table {
	t := ipcSeries(opts, opts.loops(),
		"Operations issued per cycle, all loops", "fig8")
	t.Notes = append(t.Notes,
		"paper: static > dynamic (prologue/epilogue overhead); many loops are recurrence-bound and cannot use extra FUs",
		"clustered columns exist at 6/9/12/15/18 FUs (2..6 clusters)")
	return t
}

// Fig9 reproduces "Figure 9. IPC — Resource-Constrained Loops": the same
// series restricted to loops whose II is limited by the functional units
// even on the largest machine (RecMII <= ResMII at 18 FUs).
func Fig9(opts Options) *Table {
	big := machine.SingleCluster(18)
	var filtered []*ir.Loop
	for _, l := range opts.loops() {
		res, err := sched.ResMII(l, big)
		if err != nil {
			continue
		}
		if sched.RecMII(l) <= res {
			filtered = append(filtered, l)
		}
	}
	t := ipcSeries(opts, filtered,
		fmt.Sprintf("Operations issued per cycle, resource-constrained loops (%d of %d)",
			len(filtered), len(opts.loops())), "fig9")
	t.Notes = append(t.Notes,
		"paper: issue rates rise much faster with machine width than for the full corpus; the single-vs-clustered gap at 15/18 FUs is the partitioning cost")
	return t
}
