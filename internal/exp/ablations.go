package exp

import (
	"fmt"

	"vliwq/internal/copyins"
	"vliwq/internal/ir"
	"vliwq/internal/machine"
)

// AblationCopyShape compares the two copy-tree topologies (DESIGN.md A1):
// balanced trees add O(log n) latency to fanned-out values, chains O(n).
// The paper uses the dedicated copy FU without specifying the shape; this
// ablation shows why the tree is the right default.
func AblationCopyShape(opts Options) *Table {
	loops := opts.loops()
	t := &Table{
		ID:     "ablation-copyshape",
		Title:  "Copy fanout shape: balanced tree vs chain (6 FUs)",
		Header: []string{"shape", "mean II", "mean stage count", "mean queues", "II wins vs other"},
	}
	cfg := machine.SingleCluster(6)
	type res struct {
		ok       bool
		iiT, iiC int
		scT, scC int
		qT, qC   int
	}
	compTree := opts.compiler(cfg, pipeOpts{copies: true, shape: copyins.Tree})
	compChain := opts.compiler(cfg, pipeOpts{copies: true, shape: copyins.Chain})
	results := forEach(loops, opts.workers(), func(l *ir.Loop) res {
		tr := compTree(l)
		ch := compChain(l)
		if tr.Err != nil || ch.Err != nil {
			return res{}
		}
		return res{
			ok:  true,
			iiT: tr.Sched.II, iiC: ch.Sched.II,
			scT: tr.Sched.StageCount(), scC: ch.Sched.StageCount(),
			qT: tr.Alloc.MaxPrivateQueues(), qC: ch.Alloc.MaxPrivateQueues(),
		}
	})
	var ok, winT, winC int
	var iiT, iiC, scT, scC, qT, qC float64
	for _, r := range results {
		if !r.ok {
			continue
		}
		ok++
		iiT += float64(r.iiT)
		iiC += float64(r.iiC)
		scT += float64(r.scT)
		scC += float64(r.scC)
		qT += float64(r.qT)
		qC += float64(r.qC)
		if r.iiT < r.iiC {
			winT++
		}
		if r.iiC < r.iiT {
			winC++
		}
	}
	f := func(v float64) string { return fmt.Sprintf("%.2f", v/float64(ok)) }
	t.Rows = append(t.Rows,
		[]string{"tree", f(iiT), f(scT), f(qT), pct(winT, ok)},
		[]string{"chain", f(iiC), f(scC), f(qC), pct(winC, ok)},
	)
	t.Notes = append(t.Notes, "tree never adds more than ceil(log2(fanout)) copy latencies to a path")
	return t
}

// AblationMoveOps evaluates the paper's proposed future extension (§5):
// move operations carrying values between non-adjacent clusters. The paper
// conjectures this recovers the II lost at 5 and 6 clusters; the ablation
// measures exactly that.
func AblationMoveOps(opts Options) *Table {
	loops := opts.loops()
	t := &Table{
		ID:     "ablation-moves",
		Title:  "Move-op extension: same-II fraction vs single cluster",
		Header: []string{"clusters", "moves off", "moves on", "mean moves/loop (on)"},
	}
	for _, nc := range machine.PaperClusterCounts {
		single := machine.SingleCluster(3 * nc)
		base := machine.Clustered(nc)
		withMoves := machine.Clustered(nc)
		withMoves.AllowMoves = true
		type res struct {
			ok              bool
			sameOff, sameOn bool
			moves           int
		}
		compRef := opts.compiler(single, pipeOpts{unroll: true, copies: true, shape: copyins.Tree})
		compOff := opts.compiler(base, pipeOpts{unroll: true, copies: true, shape: copyins.Tree, factorFrom: &single})
		compOn := opts.compiler(withMoves, pipeOpts{unroll: true, copies: true, shape: copyins.Tree, factorFrom: &single})
		results := forEach(loops, opts.workers(), func(l *ir.Loop) res {
			ref := compRef(l)
			off := compOff(l)
			on := compOn(l)
			if ref.Err != nil || off.Err != nil || on.Err != nil {
				return res{}
			}
			moves := 0
			for _, op := range on.Sched.Loop.Ops {
				if op.Kind == ir.KMove {
					moves++
				}
			}
			return res{
				ok:      true,
				sameOff: off.Sched.II <= ref.Sched.II,
				sameOn:  on.Sched.II <= ref.Sched.II,
				moves:   moves,
			}
		})
		var ok, sameOff, sameOn, moves int
		for _, r := range results {
			if !r.ok {
				continue
			}
			ok++
			if r.sameOff {
				sameOff++
			}
			if r.sameOn {
				sameOn++
			}
			moves += r.moves
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", nc),
			pct(sameOff, ok),
			pct(sameOn, ok),
			fmt.Sprintf("%.2f", float64(moves)/float64(ok)),
		})
	}
	t.Notes = append(t.Notes,
		"paper §5: 'a more sophisticated scheme using move operations ... should make possible for a clustered machine to achieve performance figures similar to ... a single cluster machine'")
	return t
}

// AblationCommLatency measures sensitivity to inter-cluster communication
// latency (the paper's ring writes into the neighbour's queue directly;
// real implementations may need a cycle or two).
func AblationCommLatency(opts Options) *Table {
	loops := opts.loops()
	t := &Table{
		ID:     "ablation-commlat",
		Title:  "Inter-cluster communication latency sensitivity (4 clusters)",
		Header: []string{"comm latency", "same II as lat 0", "mean II"},
	}
	type res struct {
		ok  bool
		iis [3]int
	}
	lats := []int{0, 1, 2}
	comps := make([]func(*ir.Loop) compiled, len(lats))
	for i, lat := range lats {
		cfg := machine.Clustered(4)
		cfg.CommLatency = lat
		comps[i] = opts.compiler(cfg, pipeOpts{unroll: true, copies: true, shape: copyins.Tree})
	}
	results := forEach(loops, opts.workers(), func(l *ir.Loop) res {
		var r res
		r.ok = true
		for i := range lats {
			c := comps[i](l)
			if c.Err != nil {
				return res{}
			}
			r.iis[i] = c.Sched.II
		}
		return r
	})
	for i, lat := range lats {
		var ok, same int
		var sum float64
		for _, r := range results {
			if !r.ok {
				continue
			}
			ok++
			if r.iis[i] <= r.iis[0] {
				same++
			}
			sum += float64(r.iis[i])
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d cycles", lat),
			pct(same, ok),
			fmt.Sprintf("%.2f", sum/float64(ok)),
		})
	}
	t.Notes = append(t.Notes,
		"latency tolerance comes from software pipelining: communication latency folds into lifetimes, not into the II, unless a recurrence crosses clusters")
	return t
}
