package exp

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"vliwq/internal/corpus"
	"vliwq/internal/ir"
	"vliwq/internal/machine"
)

// small keeps experiment tests fast while exercising every code path.
func small() Options {
	return Options{Loops: corpus.Generate(corpus.Params{Seed: 3, N: 32})}
}

func parsePct(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil {
		t.Fatalf("bad percentage %q", s)
	}
	return v
}

func TestFig3Shape(t *testing.T) {
	tab := Fig3(small())
	if len(tab.Rows) != 6 { // 3 machines x with/without
		t.Fatalf("fig3 rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		// Cumulative: %<=4 <= %<=8 <= %<=16 <= %<=32.
		prev := -1.0
		for _, cell := range row[2:6] {
			v := parsePct(t, cell)
			if v < prev {
				t.Fatalf("fig3 row %v not cumulative", row)
			}
			prev = v
		}
		if row[6] != "0" {
			t.Fatalf("fig3 has unschedulable loops: %v", row)
		}
	}
}

func TestCopyCostMostLoopsKeepII(t *testing.T) {
	tab := CopyCost(small())
	for _, row := range tab.Rows {
		if v := parsePct(t, row[1]); v < 60 {
			t.Fatalf("same-II fraction %v implausibly low: %v", v, row)
		}
	}
}

func TestFig4SpeedupBounds(t *testing.T) {
	tab := Fig4(small())
	if len(tab.Rows) != 3 {
		t.Fatalf("fig4 rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		v := parsePct(t, row[1])
		if v < 0 || v > 100 {
			t.Fatalf("fig4 fraction out of range: %v", row)
		}
	}
}

func TestFig6Monotonicity(t *testing.T) {
	tab := Fig6(small())
	if len(tab.Rows) != 3 {
		t.Fatalf("fig6 rows = %d", len(tab.Rows))
	}
	// The paper's core finding: the same-II fraction does not improve as
	// clusters are added.
	prev := 101.0
	for _, row := range tab.Rows {
		v := parsePct(t, row[2])
		if v > prev+5 { // tolerate small-sample noise
			t.Fatalf("same-II fraction rose sharply with more clusters: %v", tab.Rows)
		}
		if v < prev {
			prev = v
		}
	}
}

func TestClusterResourcesFig7Sizing(t *testing.T) {
	tab := ClusterResources(small())
	for _, row := range tab.Rows {
		if v := parsePct(t, row[3]); v < 50 {
			t.Fatalf("Fig. 7 sizing covers only %v%%: %v", v, row)
		}
	}
}

func TestFig8Shape(t *testing.T) {
	tab := Fig8(small())
	if len(tab.Rows) != 15 { // FUs 4..18
		t.Fatalf("fig8 rows = %d", len(tab.Rows))
	}
	first, err1 := strconv.ParseFloat(tab.Rows[0][1], 64)
	last, err2 := strconv.ParseFloat(tab.Rows[14][1], 64)
	if err1 != nil || err2 != nil {
		t.Fatalf("bad IPC cells")
	}
	if last <= first {
		t.Fatalf("static IPC did not grow with machine width: %v -> %v", first, last)
	}
	// Clustered columns only at 6/9/12/15/18 FUs.
	for i, row := range tab.Rows {
		nfu := i + 4
		hasClustered := row[2] != ""
		if hasClustered != (nfu%3 == 0 && nfu >= 6) {
			t.Fatalf("clustered column wrong at %d FUs", nfu)
		}
	}
	// Dynamic IPC must be positive and grow with machine width overall.
	// (Per-loop dynamic <= static is tested in internal/metrics; the
	// corpus aggregate is execution-time weighted and may sit above the
	// unweighted static mean.)
	dFirst, _ := strconv.ParseFloat(tab.Rows[0][3], 64)
	dLast, _ := strconv.ParseFloat(tab.Rows[14][3], 64)
	if dFirst <= 0 || dLast <= dFirst {
		t.Fatalf("dynamic IPC series not growing: %v -> %v", dFirst, dLast)
	}
}

func TestFig9FiltersResourceConstrained(t *testing.T) {
	opts := small()
	tab := Fig9(opts)
	if !strings.Contains(tab.Title, "of") {
		t.Fatalf("fig9 title should report the filter: %q", tab.Title)
	}
	// Resource-constrained loops scale better: IPC at 18 FUs must exceed
	// the all-loops value.
	all := Fig8(opts)
	f9, _ := strconv.ParseFloat(tab.Rows[14][1], 64)
	f8, _ := strconv.ParseFloat(all.Rows[14][1], 64)
	if f9 < f8 {
		t.Fatalf("resource-constrained IPC %v below all-loops %v at 18 FUs", f9, f8)
	}
}

func TestAblationCopyShapeTreeWins(t *testing.T) {
	tab := AblationCopyShape(small())
	tree, _ := strconv.ParseFloat(tab.Rows[0][1], 64)
	chain, _ := strconv.ParseFloat(tab.Rows[1][1], 64)
	if tree > chain {
		t.Fatalf("tree mean II %v worse than chain %v", tree, chain)
	}
}

func TestAblationMoveOps(t *testing.T) {
	tab := AblationMoveOps(small())
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		off := parsePct(t, row[1])
		on := parsePct(t, row[2])
		if off < 0 || off > 100 || on < 0 || on > 100 {
			t.Fatalf("fractions out of range: %v", row)
		}
	}
}

func TestAblationCommLatencyMonotone(t *testing.T) {
	tab := AblationCommLatency(small())
	if parsePct(t, tab.Rows[0][1]) != 100 {
		t.Fatalf("latency 0 must match itself: %v", tab.Rows[0])
	}
	ii0, _ := strconv.ParseFloat(tab.Rows[0][2], 64)
	ii2, _ := strconv.ParseFloat(tab.Rows[2][2], 64)
	if ii2 < ii0-1e-9 {
		t.Fatalf("mean II improved with higher comm latency: %v vs %v", ii2, ii0)
	}
}

func TestAblationInvariantsBound(t *testing.T) {
	tab := AblationInvariants(small())
	for _, row := range tab.Rows {
		if row[3] == "n/a" {
			continue
		}
		ratio, err := strconv.ParseFloat(row[3], 64)
		if err != nil || ratio > 1.0+1e-9 {
			t.Fatalf("hoisting made things worse: %v", row)
		}
	}
}

func TestHoistInvariants(t *testing.T) {
	l := corpus.Daxpy() // loads a (invariant-like), x, y — all leaf loads
	h, removed := hoistInvariants(l)
	if removed != 3 {
		t.Fatalf("removed %d leaf loads, want 3", removed)
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(h.Ops) != len(l.Ops)-3 {
		t.Fatalf("hoisted loop has %d ops", len(h.Ops))
	}
	// A loop with an indexed (address-fed) load keeps it.
	sp := corpus.SpMVRow()
	_, removedSp := hoistInvariants(sp)
	for _, op := range sp.Ops {
		_ = op
	}
	if removedSp >= 3 {
		t.Fatalf("indexed load treated as invariant (removed %d)", removedSp)
	}
}

func TestTableFprint(t *testing.T) {
	tab := &Table{
		ID: "x", Title: "T",
		Header: []string{"a", "b"},
		Rows:   [][]string{{"1", "2"}},
		Notes:  []string{"n"},
	}
	var buf bytes.Buffer
	tab.Fprint(&buf)
	out := buf.String()
	for _, frag := range []string{"== x: T ==", "a", "1", "note: n"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("missing %q in:\n%s", frag, out)
		}
	}
}

func TestForEachOrderAndParallelism(t *testing.T) {
	loops := corpus.Generate(corpus.Params{Seed: 2, N: 20})
	got := forEach(loops, 4, func(l *ir.Loop) string { return l.Name })
	for i, name := range got {
		if name != loops[i].Name {
			t.Fatalf("order broken at %d", i)
		}
	}
}

func TestCompileLoopFactorFrom(t *testing.T) {
	l := corpus.Stencil3()
	single := machine.SingleCluster(12)
	c := compileLoop(l, machine.Clustered(4), pipeOpts{unroll: true, copies: true, factorFrom: &single}, nil)
	if c.Err != nil {
		t.Fatal(c.Err)
	}
	if c.Factor < 1 {
		t.Fatalf("factor %d", c.Factor)
	}
}
