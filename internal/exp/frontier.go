package exp

import (
	"context"
	"fmt"

	"vliwq/internal/corpus"
	"vliwq/internal/program"
)

// Frontier sweeps the traced programs (corpus.TracedPrograms) across
// cluster counts and reports, per (program, machine) point, the whole-
// program trade-off the clustering decision moves along: steady-state cost
// (sum of region IIs), inter-cluster copy traffic, and register pressure
// (private and ring queue demand). It is the program-level counterpart of
// Fig. 6: where the paper plots per-loop II variation against cluster
// count, the frontier shows what a whole trace pays. Not part of RunAll —
// it consumes traces, not the synthetic corpus.
func Frontier(o Options) *Table {
	clusters := []int{2, 4, 6}
	t := &Table{
		ID:     "frontier",
		Title:  "whole-program frontier: II vs copy traffic vs register pressure (traced programs)",
		Header: []string{"program", "clusters", "regions", "hard", "sum II", "copy ops", "max queues", "max ring"},
		Notes: []string{
			"traced preset: RISC traces lifted via internal/frontend, scheduled via internal/program",
			"hard regions compile at effort optimal and carry Bound certificates",
		},
	}
	for _, p := range corpus.TracedPrograms() {
		for _, c := range clusters {
			s, err := program.ScheduleProgram(context.Background(), p, program.Options{
				Machine:    fmt.Sprintf("clustered:%d", c),
				Workers:    o.Workers,
				SkipVerify: true,
			})
			if err != nil {
				t.Rows = append(t.Rows, []string{p.Name, fmt.Sprint(c), "error: " + err.Error()})
				continue
			}
			t.Rows = append(t.Rows, []string{
				p.Name,
				fmt.Sprint(c),
				fmt.Sprint(len(s.Regions)),
				fmt.Sprint(s.HardCount()),
				fmt.Sprint(s.SumII()),
				fmt.Sprint(s.CopyOps()),
				fmt.Sprint(s.MaxQueues()),
				fmt.Sprint(s.MaxRingQueues()),
			})
		}
	}
	return t
}
