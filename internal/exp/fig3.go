package exp

import (
	"fmt"

	"vliwq/internal/copyins"
	"vliwq/internal/ir"
	"vliwq/internal/machine"
)

// queueThresholds are Fig. 3's x-axis: private QRF sizes.
var queueThresholds = []int{4, 8, 16, 32}

// Fig3 reproduces "Figure 3. Number of Queues": the cumulative fraction of
// loops whose queue allocation fits within 4/8/16/32 queues, for machines
// of 4, 6 and 12 FUs, with copy operations inserted — and, for the copy-op
// comparison the section discusses, without them (simultaneous writes
// allowed, Fig. 1c style).
func Fig3(opts Options) *Table {
	loops := opts.loops()
	t := &Table{
		ID:     "fig3",
		Title:  "Number of queues required (cumulative % of loops)",
		Header: []string{"machine", "copy ops", "<=4", "<=8", "<=16", "<=32", "unschedulable"},
	}
	for _, nfu := range machine.PaperSingleClusterFUs {
		cfg := machine.SingleCluster(nfu)
		for _, withCopies := range []bool{false, true} {
			withCopies := withCopies
			type res struct {
				queues int
				failed bool
			}
			comp := opts.compiler(cfg, pipeOpts{copies: withCopies, shape: copyins.Tree})
			results := forEach(loops, opts.workers(), func(l *ir.Loop) res {
				c := comp(l)
				if c.Err != nil {
					return res{failed: true}
				}
				return res{queues: c.Alloc.MaxPrivateQueues()}
			})
			counts := make([]int, len(queueThresholds))
			failed := 0
			for _, r := range results {
				if r.failed {
					failed++
					continue
				}
				for i, q := range queueThresholds {
					if r.queues <= q {
						counts[i]++
					}
				}
			}
			label := "without"
			if withCopies {
				label = "with"
			}
			row := []string{fmt.Sprintf("%d FUs", nfu), label}
			for _, c := range counts {
				row = append(row, pct(c, len(loops)))
			}
			row = append(row, fmt.Sprintf("%d", failed))
			t.Rows = append(t.Rows, row)
		}
	}
	t.Notes = append(t.Notes,
		"paper: 32 queues schedule most loops on every machine; copy ops do not significantly increase queue demand",
		"'without' counts queues for multi-consumer values stored into one queue per consumer (simultaneous writes)")
	return t
}

// CopyCost reproduces the §2 text results: the fraction of loops whose II
// and stage count survive copy insertion unchanged.
func CopyCost(opts Options) *Table {
	loops := opts.loops()
	t := &Table{
		ID:     "copycost",
		Title:  "Cost of copy operations (vs. schedule without copies)",
		Header: []string{"machine", "same II", "same stage count", "mean II growth", "mean copies/loop"},
	}
	for _, nfu := range machine.PaperSingleClusterFUs {
		cfg := machine.SingleCluster(nfu)
		type res struct {
			ok             bool
			sameII, sameSC bool
			iiGrowth       float64
			copies         int
		}
		compBase := opts.compiler(cfg, pipeOpts{})
		compWith := opts.compiler(cfg, pipeOpts{copies: true, shape: copyins.Tree})
		results := forEach(loops, opts.workers(), func(l *ir.Loop) res {
			base := compBase(l)
			with := compWith(l)
			if base.Err != nil || with.Err != nil {
				return res{}
			}
			nCopies := 0
			for _, op := range with.Sched.Loop.Ops {
				if op.Kind == ir.KCopy {
					nCopies++
				}
			}
			return res{
				ok:       true,
				sameII:   with.Sched.II == base.Sched.II,
				sameSC:   with.Sched.StageCount() == base.Sched.StageCount(),
				iiGrowth: float64(with.Sched.II) / float64(base.Sched.II),
				copies:   nCopies,
			}
		})
		var ok, sameII, sameSC, copies int
		var growth float64
		for _, r := range results {
			if !r.ok {
				continue
			}
			ok++
			if r.sameII {
				sameII++
			}
			if r.sameSC {
				sameSC++
			}
			growth += r.iiGrowth
			copies += r.copies
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d FUs", nfu),
			pct(sameII, ok),
			pct(sameSC, ok),
			fmt.Sprintf("%.3fx", growth/float64(ok)),
			fmt.Sprintf("%.2f", float64(copies)/float64(ok)),
		})
	}
	t.Notes = append(t.Notes,
		"paper: ~95% of loops keep the same II after copy insertion; stage count unchanged for most loops")
	return t
}
