package exp

import (
	"fmt"

	"vliwq/internal/copyins"
	"vliwq/internal/ir"
	"vliwq/internal/machine"
	"vliwq/internal/metrics"
)

// Fig4 reproduces "Figure 4. Initiation Interval Speedup": the fraction of
// loops achieving II_speedup > 1 when loop unrolling is applied, per
// machine, using no extra functional units (Equation 1, normalized per
// original iteration).
func Fig4(opts Options) *Table {
	loops := opts.loops()
	t := &Table{
		ID:     "fig4",
		Title:  "II speedup from loop unrolling (no extra FUs)",
		Header: []string{"machine", "speedup > 1", "mean speedup (improved)", "mean unroll factor", "unrolled loops"},
	}
	for _, nfu := range machine.PaperSingleClusterFUs {
		cfg := machine.SingleCluster(nfu)
		type res struct {
			ok       bool
			speedup  float64
			factor   int
			unrolled bool
		}
		compBase := opts.compiler(cfg, pipeOpts{copies: true, shape: copyins.Tree})
		compUnrl := opts.compiler(cfg, pipeOpts{unroll: true, copies: true, shape: copyins.Tree})
		results := forEach(loops, opts.workers(), func(l *ir.Loop) res {
			base := compBase(l)
			un := compUnrl(l)
			if base.Err != nil || un.Err != nil {
				return res{}
			}
			return res{
				ok:       true,
				speedup:  metrics.IISpeedup(base.Sched.II, un.Factor, un.Sched.II),
				factor:   un.Factor,
				unrolled: un.Factor > 1,
			}
		})
		var ok, improved, unrolled, factors int
		var gain metrics.Mean
		for _, r := range results {
			if !r.ok {
				continue
			}
			ok++
			factors += r.factor
			if r.unrolled {
				unrolled++
			}
			if r.speedup > 1 {
				improved++
				gain.Add(r.speedup)
			}
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d FUs", nfu),
			pct(improved, ok),
			fmt.Sprintf("%.2fx", gain.Value()),
			fmt.Sprintf("%.2f", float64(factors)/float64(ok)),
			pct(unrolled, ok),
		})
	}
	t.Notes = append(t.Notes,
		"paper: a considerable fraction of loops achieves II_speedup > 1 with no extra FUs",
		"recurrence-bound loops cannot improve: their latency/distance ratio is unroll-invariant")
	return t
}

// UnrollQueues reproduces the §3 text result: unrolling moderately
// increases queue demand, but 32 queues still cover over 90% of loops.
func UnrollQueues(opts Options) *Table {
	loops := opts.loops()
	t := &Table{
		ID:     "unrollqueues",
		Title:  "Queue demand after unrolling (cumulative % of loops)",
		Header: []string{"machine", "<=4", "<=8", "<=16", "<=32", "mean queues (unrolled vs not)"},
	}
	for _, nfu := range machine.PaperSingleClusterFUs {
		cfg := machine.SingleCluster(nfu)
		type res struct {
			ok           bool
			qBase, qUnrl int
		}
		compBase := opts.compiler(cfg, pipeOpts{copies: true, shape: copyins.Tree})
		compUnrl := opts.compiler(cfg, pipeOpts{unroll: true, copies: true, shape: copyins.Tree})
		results := forEach(loops, opts.workers(), func(l *ir.Loop) res {
			base := compBase(l)
			un := compUnrl(l)
			if base.Err != nil || un.Err != nil {
				return res{}
			}
			return res{ok: true, qBase: base.Alloc.MaxPrivateQueues(), qUnrl: un.Alloc.MaxPrivateQueues()}
		})
		counts := make([]int, len(queueThresholds))
		var ok, sumBase, sumUnrl int
		for _, r := range results {
			if !r.ok {
				continue
			}
			ok++
			sumBase += r.qBase
			sumUnrl += r.qUnrl
			for i, q := range queueThresholds {
				if r.qUnrl <= q {
					counts[i]++
				}
			}
		}
		row := []string{fmt.Sprintf("%d FUs", nfu)}
		for _, c := range counts {
			row = append(row, pct(c, ok))
		}
		row = append(row, fmt.Sprintf("%.1f vs %.1f",
			float64(sumUnrl)/float64(ok), float64(sumBase)/float64(ok)))
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"paper: 32 queues still schedule over 90% of loops after unrolling")
	return t
}
