package exp

import (
	"fmt"

	"vliwq/internal/copyins"
	"vliwq/internal/corpus"
	"vliwq/internal/ir"
	"vliwq/internal/machine"
	"vliwq/internal/sched"
)

// Optimal is the certified-optimality sweep: it takes the stressed preset
// (the partition-hostile population the portfolio sweep measures), compiles
// every loop at EffortExhaustive and EffortOptimal, and classifies each
// loop the heuristics left above MII — proved (the branch-and-bound search
// exhausted every smaller II, so the heuristic schedule was optimal all
// along), improved (the search found a strictly smaller II), or unproved
// (the per-II node budget cut the proof with the gap still open). Ring
// machines carry inter-cluster latency here because it is what creates the
// II gaps worth certifying: with zero-latency links and copy ops the
// stressed preset schedules at MII almost everywhere.
//
// This is the experiment DESIGN.md §14 points at: it turns the portfolio
// sweep's "mean gap to MII" column — a bound against a lower bound that
// might be unachievable — into a certified account of how much of that gap
// is real.
func Optimal(opts Options) *Table {
	t := &Table{
		ID:     "optimal",
		Title:  "Certified optimality: the heuristic II gap, proved or closed (stressed corpus)",
		Header: []string{"clusters", "commlat", "loops", "at MII", "gapped", "proved", "improved", "unproved", "pruned nodes"},
	}
	// Efforts are pinned per compile; the sweep-wide Options.Effort must
	// not leak in (same convention as the portfolio sweep).
	base := opts
	base.Effort = sched.EffortFast
	loops := opts.stressedLoops()
	type res struct {
		ok       bool
		gapped   bool
		proved   bool
		improved bool
		pruned   int64
	}
	for _, mc := range []struct {
		nc, cl int
	}{{4, 2}, {6, 2}} {
		cfg := machine.Clustered(mc.nc)
		cfg.CommLatency = mc.cl
		exC := base.compiler(cfg, pipeOpts{
			copies:    true,
			shape:     copyins.Tree,
			schedOpts: sched.Options{Effort: sched.EffortExhaustive},
		})
		optC := base.compiler(cfg, pipeOpts{
			copies:    true,
			shape:     copyins.Tree,
			schedOpts: sched.Options{Effort: sched.EffortOptimal},
		})
		results := forEach(loops, base.workers(), func(l *ir.Loop) res {
			ex := exC(l)
			opt := optC(l)
			if ex.Err != nil || opt.Err != nil {
				return res{}
			}
			b := opt.Sched.Bound
			return res{
				ok:       true,
				gapped:   ex.Sched.II > ex.Sched.MII(),
				proved:   b.Optimal && opt.Sched.II == ex.Sched.II,
				improved: opt.Sched.II < ex.Sched.II,
				pruned:   opt.Sched.Stats.PrunedNodes,
			}
		})
		var ok, atMII, gapped, proved, improved, unproved int
		var pruned int64
		for _, r := range results {
			if !r.ok {
				continue
			}
			ok++
			pruned += r.pruned
			if !r.gapped {
				atMII++
				continue
			}
			gapped++
			switch {
			case r.improved:
				improved++
			case r.proved:
				proved++
			default:
				unproved++
			}
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", mc.nc),
			fmt.Sprintf("%d", mc.cl),
			fmt.Sprintf("%d", ok),
			pct(atMII, ok),
			fmt.Sprintf("%d", gapped),
			fmt.Sprintf("%d", proved),
			fmt.Sprintf("%d", improved),
			fmt.Sprintf("%d", unproved),
			fmt.Sprintf("%d", pruned),
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("stressed preset: %d loops, seed %d (wide fanout, dense cross-iteration flow)",
			len(loops), corpus.StressedSeed),
		"proved: every II below the heuristic's was exhausted — the heuristic schedule was optimal",
		"improved: the exact search found a schedule at a smaller II than every heuristic strategy",
		"unproved: the deterministic per-II node budget cut the proof with the gap still open",
	)
	return t
}
