package exp

import (
	"strings"
	"testing"

	"vliwq/internal/corpus"
	"vliwq/internal/sched"
)

// portfolioOpts is a test-sized sweep: small standard slice, small
// stressed slice, shared pipeline.
func portfolioOpts() Options {
	sp := corpus.StressedParams()
	sp.N = 64
	return Options{
		Loops:         corpus.Generate(corpus.Params{Seed: 3, N: 32}),
		StressedLoops: corpus.Generate(sp),
		Pipeline:      NewPipeline(),
	}
}

func TestPortfolioShapeAndDeterminism(t *testing.T) {
	opts := portfolioOpts()
	tab := Portfolio(opts)
	if len(tab.Rows) != 8 { // 2 corpora x 2 cluster counts x 2 efforts
		t.Fatalf("portfolio rows = %d, want 8", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if row[8] != "0" {
			t.Fatalf("portfolio sweep has failed loops: %v", row)
		}
	}
	again := Portfolio(portfolioOpts())
	for i := range tab.Rows {
		if strings.Join(tab.Rows[i], "|") != strings.Join(again.Rows[i], "|") {
			t.Fatalf("row %d not deterministic:\n%v\n%v", i, tab.Rows[i], again.Rows[i])
		}
	}
	for i := range tab.Notes {
		if tab.Notes[i] != again.Notes[i] {
			t.Fatalf("note %d not deterministic: %q vs %q", i, tab.Notes[i], again.Notes[i])
		}
	}
}

// TestPortfolioExhaustiveBeatsBaseline is the PR's acceptance criterion in
// miniature: on the stressed corpus, EffortExhaustive must reach II == MII
// on strictly more loops than the baseline heuristic (and never fewer
// anywhere).
func TestPortfolioExhaustiveBeatsBaseline(t *testing.T) {
	tab := Portfolio(portfolioOpts())
	strictlyBetter := false
	for i := 0; i+1 < len(tab.Rows); i += 2 {
		fast, exh := tab.Rows[i], tab.Rows[i+1]
		if fast[2] != "fast" || exh[2] != "exhaustive" {
			t.Fatalf("unexpected row pairing: %v / %v", fast, exh)
		}
		f := parsePct(t, fast[3])
		e := parsePct(t, exh[3])
		if e < f {
			t.Fatalf("exhaustive II=MII %v%% below fast %v%% in %v", e, f, exh)
		}
		if fast[0] == "stressed" && e > f {
			strictlyBetter = true
		}
	}
	if !strictlyBetter {
		t.Fatal("exhaustive did not beat the baseline on any stressed row")
	}
	// The win tally notes must show the race is actually diverse: at least
	// one non-baseline strategy winning somewhere.
	diverse := false
	for _, n := range tab.Notes {
		if strings.Contains(n, "wins:") && (strings.Contains(n, "load-balanced=") ||
			strings.Contains(n, "affinity=") || strings.Contains(n, "round-robin=") ||
			strings.Contains(n, "perturb=")) {
			diverse = true
		}
	}
	if !diverse {
		t.Fatalf("no non-baseline strategy won anywhere: %v", tab.Notes)
	}
}

// TestOptionsEffortThreadsThroughCompiler: the sweep-wide effort must reach
// experiments that do not pin their own, and it must participate in the
// pipeline cache key (distinct efforts, distinct compilations).
func TestOptionsEffortThreadsThroughCompiler(t *testing.T) {
	opts := small()
	opts.Pipeline = NewPipeline()
	Fig6(opts)
	base := opts.Pipeline.Stats().Misses
	if base == 0 {
		t.Fatal("fig6 compiled nothing")
	}
	// Same pipeline, higher effort: every clustered compilation re-runs
	// under its new key instead of hitting the fast entries.
	opts.Effort = sched.EffortExhaustive
	Fig6(opts)
	if again := opts.Pipeline.Stats().Misses; again <= base {
		t.Fatalf("effort change added no cache misses (%d -> %d); effort is outside the pipe key", base, again)
	}
}

func TestWinsByStrategyOrdering(t *testing.T) {
	if got := winsByStrategy(nil); got != "none" {
		t.Fatalf("empty tally = %q", got)
	}
	tally := map[sched.Strategy]int{
		sched.StrategyPerturb:  1,
		sched.StrategyBaseline: 9,
	}
	if got := winsByStrategy(tally); got != "baseline=9 perturb=1" {
		t.Fatalf("tally rendered %q, want strategy-index order", got)
	}
}
