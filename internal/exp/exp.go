// Package exp regenerates every table and figure of the paper's evaluation
// (see DESIGN.md §5 for the experiment index and EXPERIMENTS.md for
// paper-vs-measured results). Each experiment consumes a loop corpus,
// drives the full compilation pipeline (unrolling, copy insertion, modulo
// scheduling / partitioning, queue allocation) and reduces the outcomes to
// the statistic the paper plots.
package exp

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"text/tabwriter"

	"vliwq/internal/copyins"
	"vliwq/internal/corpus"
	"vliwq/internal/ir"
	"vliwq/internal/machine"
	"vliwq/internal/queue"
	"vliwq/internal/sched"
	"vliwq/internal/unroll"
)

// Options configure an experiment run.
type Options struct {
	// Loops is the corpus; nil uses corpus.Standard() (1258 loops).
	Loops []*ir.Loop
	// Workers bounds parallel loop compilation; 0 uses GOMAXPROCS.
	Workers int
}

func (o Options) loops() []*ir.Loop {
	if o.Loops != nil {
		return o.Loops
	}
	return corpus.Standard()
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Table is a rendered experiment result.
type Table struct {
	ID     string // e.g. "fig3"
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Fprint renders the table as aligned text.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	for i, h := range t.Header {
		if i > 0 {
			fmt.Fprint(tw, "\t")
		}
		fmt.Fprint(tw, h)
	}
	fmt.Fprintln(tw)
	for _, row := range t.Rows {
		for i, c := range row {
			if i > 0 {
				fmt.Fprint(tw, "\t")
			}
			fmt.Fprint(tw, c)
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// compiled is one loop pushed through the full pipeline.
type compiled struct {
	Loop   *ir.Loop // original loop
	Factor int      // unroll factor applied
	Sched  *sched.Schedule
	Alloc  *queue.Allocation
	Err    error
}

// pipeline options for compileLoop.
type pipeOpts struct {
	unroll     bool
	copies     bool
	shape      copyins.Shape
	schedOpts  sched.Options
	factorFrom *machine.Config // machine used for AutoFactor; nil = target
}

// compileLoop runs unroll -> copy insertion -> scheduling -> allocation.
func compileLoop(l *ir.Loop, cfg machine.Config, po pipeOpts) compiled {
	c := compiled{Loop: l, Factor: 1}
	work := l
	if po.unroll {
		fm := cfg
		if po.factorFrom != nil {
			fm = *po.factorFrom
		}
		c.Factor = unroll.AutoFactor(l, fm)
		u, err := unroll.Unroll(l, c.Factor)
		if err != nil {
			c.Err = err
			return c
		}
		work = u
	}
	if po.copies {
		ins, err := copyins.Insert(work, po.shape)
		if err != nil {
			c.Err = err
			return c
		}
		work = ins.Loop
	}
	s, err := sched.ScheduleLoop(work, cfg, po.schedOpts)
	if err != nil {
		c.Err = err
		return c
	}
	c.Sched = s
	c.Alloc = queue.Allocate(s)
	return c
}

// forEach compiles fn over the corpus with a bounded worker pool, keeping
// result order aligned with the input order.
func forEach[T any](loops []*ir.Loop, workers int, fn func(l *ir.Loop) T) []T {
	out := make([]T, len(loops))
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i, l := range loops {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, l *ir.Loop) {
			defer wg.Done()
			out[i] = fn(l)
			<-sem
		}(i, l)
	}
	wg.Wait()
	return out
}

func pct(n, total int) string {
	if total == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(n)/float64(total))
}

// RunAll regenerates every figure and table in order and writes them to w.
func RunAll(w io.Writer, opts Options) {
	for _, t := range []*Table{
		Fig3(opts),
		CopyCost(opts),
		Fig4(opts),
		UnrollQueues(opts),
		Fig6(opts),
		ClusterResources(opts),
		Fig8(opts),
		Fig9(opts),
		AblationCopyShape(opts),
		AblationMoveOps(opts),
		AblationCommLatency(opts),
		AblationInvariants(opts),
	} {
		t.Fprint(w)
	}
}
