// Package exp regenerates every table and figure of the paper's evaluation
// (see DESIGN.md §5 for the experiment index). Each experiment consumes a
// loop corpus, drives the full compilation pipeline (unrolling, copy
// insertion, modulo scheduling / partitioning, queue allocation) and
// reduces the outcomes to the statistic the paper plots.
package exp

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"strings"
	"sync/atomic"
	"text/tabwriter"
	"time"

	"vliwq"
	"vliwq/internal/cache"
	"vliwq/internal/copyins"
	"vliwq/internal/corpus"
	"vliwq/internal/ir"
	"vliwq/internal/machine"
	"vliwq/internal/pool"
	"vliwq/internal/queue"
	"vliwq/internal/sched"
	"vliwq/internal/unroll"
)

// Options configure an experiment run.
type Options struct {
	// Loops is the corpus; nil uses corpus.Standard() (1258 loops).
	Loops []*ir.Loop
	// Workers bounds parallel loop compilation; 0 uses GOMAXPROCS.
	Workers int
	// Pipeline, when non-nil, memoizes compilations across experiments
	// sharing it: the figures compile heavily overlapping (loop, machine,
	// options) sets, and the cache collapses every repeat into a map hit.
	// RunAll installs one automatically. Nil compiles uncached.
	Pipeline *Pipeline
	// Effort raises the scheduler effort of every experiment that does not
	// pin its own (the portfolio sweep pins effort per row). The zero
	// value is sched.EffortFast — the historical behaviour.
	Effort sched.Effort
	// StressedLoops overrides the stressed corpus of the portfolio sweep;
	// nil uses corpus.Stressed().
	StressedLoops []*ir.Loop
}

func (o Options) loops() []*ir.Loop {
	if o.Loops != nil {
		return o.Loops
	}
	return corpus.Standard()
}

func (o Options) stressedLoops() []*ir.Loop {
	if o.StressedLoops != nil {
		return o.StressedLoops
	}
	return corpus.Stressed()
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Table is a rendered experiment result.
type Table struct {
	ID     string // e.g. "fig3"
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Fprint renders the table as aligned text.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	for i, h := range t.Header {
		if i > 0 {
			fmt.Fprint(tw, "\t")
		}
		fmt.Fprint(tw, h)
	}
	fmt.Fprintln(tw)
	for _, row := range t.Rows {
		for i, c := range row {
			if i > 0 {
				fmt.Fprint(tw, "\t")
			}
			fmt.Fprint(tw, c)
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// compiled is one loop pushed through the full pipeline.
type compiled struct {
	Loop   *ir.Loop // original loop
	Factor int      // unroll factor applied
	Sched  *sched.Schedule
	Alloc  *queue.Allocation
	Err    error
}

// pipeline options for compileLoop.
type pipeOpts struct {
	unroll     bool
	copies     bool
	shape      copyins.Shape
	schedOpts  sched.Options
	factorFrom *machine.Config // machine used for AutoFactor; nil = target
}

// Pipeline is a concurrency-safe memo of compileLoop results, keyed by the
// loop's identity plus digests of the machine configuration and pipeline
// options. Results are shared pointers and must be treated as read-only —
// which every experiment already does, since compiled loops, schedules and
// allocations are never mutated after compilation. The storage is a sharded
// internal/cache.Cache, so concurrent workers contend per shard and each
// distinct compilation runs exactly once behind its entry's sync.Once.
type Pipeline struct {
	c *cache.Cache[pipeKey, compiled]

	// stageNanos accumulates, per vliwq.Stage, the wall-clock time actual
	// compilations (cache misses) spent in that stage — the same
	// observability the staged facade engine reports in Result.Stages,
	// threaded through the experiment sweeps so `vliwexp -stage-times`
	// can show where a figure run's time went.
	stageNanos [vliwq.NumStages]atomic.Int64
}

// NewPipeline returns an empty, unbounded compilation cache.
func NewPipeline() *Pipeline {
	return &Pipeline{c: cache.New[pipeKey, compiled](cache.Options{}, hashPipeKey)}
}

// Stats snapshots the cache counters (hits, misses, entries).
func (p *Pipeline) Stats() cache.Stats { return p.c.Stats() }

// record adds one stage's wall-clock cost; a nil Pipeline drops it.
func (p *Pipeline) record(st vliwq.Stage, t0 time.Time) {
	if p != nil {
		p.stageNanos[st].Add(time.Since(t0).Nanoseconds())
	}
}

// StageNanos reports the accumulated per-stage compile time, keyed by
// stage name (vliwq.Stage.String). Only stages with nonzero time appear.
func (p *Pipeline) StageNanos() map[string]int64 {
	out := make(map[string]int64, len(p.stageNanos))
	for i := range p.stageNanos {
		if n := p.stageNanos[i].Load(); n > 0 {
			out[vliwq.Stage(i).String()] = n
		}
	}
	return out
}

// hashPipeKey spreads compilations over cache shards. Loop names are unique
// within a corpus and carry most of the entropy; the config digest and the
// option fields keep same-loop sweeps from piling onto one shard. Equality
// is still the full pipeKey — the hash only picks the shard.
func hashPipeKey(k pipeKey) uint64 {
	h := cache.StringHash(k.loop.Name)
	h ^= cache.StringHash(k.cfg)
	h ^= cache.StringHash(k.opts.factorFrom)
	h ^= cache.StringHash(k.opts.strategies)
	mix := uint64(k.opts.maxII)<<32 | uint64(uint32(k.opts.budget))<<3 | uint64(k.opts.shape)<<2
	mix ^= uint64(k.opts.effort) << 24
	if k.opts.unroll {
		mix |= 2
	}
	if k.opts.copies {
		mix |= 1
	}
	return h ^ (mix * 1099511628211)
}

// pipeKey identifies one compilation. The loop is keyed by pointer: all
// experiments sharing a Pipeline also share their corpus slice (RunAll uses
// one Options value; corpus.Standard is memoized), so pointer identity is
// exactly loop identity and avoids hashing whole dependence graphs.
type pipeKey struct {
	loop *ir.Loop
	cfg  string
	opts pipeOptsKey
}

// pipeOptsKey is the comparable digest of pipeOpts. Every field of
// sched.Options that changes schedules participates (effort and the
// explicit strategy list do; RaceWorkers deliberately does not — it only
// changes wall-clock).
type pipeOptsKey struct {
	unroll, copies bool
	shape          copyins.Shape
	maxII, budget  int
	effort         sched.Effort
	strategies     string // explicit sched.Options.Strategies, one byte per entry
	factorFrom     string // configDigest of the AutoFactor machine, or ""
}

// configDigest renders every schedule-relevant Config field into a
// comparable key. The name participates too: it appears in scheduler error
// strings, so two same-shape machines with different names are not
// interchangeable byte-for-byte.
func configDigest(c *machine.Config) string {
	var b strings.Builder
	b.WriteString(c.Name)
	for _, cl := range c.Clusters {
		fmt.Fprintf(&b, ";%v|%d|%d", cl.FUs, cl.PrivateQueues, cl.QueueDepth)
	}
	fmt.Fprintf(&b, ";r%d;l%d;m%t", c.RingQueues, c.CommLatency, c.AllowMoves)
	return b.String()
}

func optsKey(po pipeOpts) pipeOptsKey {
	k := pipeOptsKey{
		unroll: po.unroll,
		copies: po.copies,
		shape:  po.shape,
		maxII:  po.schedOpts.MaxII,
		budget: po.schedOpts.BudgetRatio,
		effort: po.schedOpts.Effort,
	}
	if len(po.schedOpts.Strategies) > 0 {
		b := make([]byte, len(po.schedOpts.Strategies))
		for i, s := range po.schedOpts.Strategies {
			b[i] = byte(s)
		}
		k.strategies = string(b)
	}
	if po.factorFrom != nil {
		k.factorFrom = configDigest(po.factorFrom)
	}
	return k
}

// compile returns the memoized compilation of (l, cfg, po), computing it on
// first use. A nil Pipeline compiles directly. Sweeps over many loops with
// one configuration should bind Options.compiler instead, which digests the
// configuration once.
func (p *Pipeline) compile(l *ir.Loop, cfg machine.Config, po pipeOpts) compiled {
	if p == nil {
		return compileLoop(l, cfg, po, nil)
	}
	k := pipeKey{loop: l, cfg: configDigest(&cfg), opts: optsKey(po)}
	return p.c.Do(k, func() compiled { return compileLoop(l, cfg, po, p) })
}

// compiler binds (cfg, po) and returns the per-loop compile function the
// experiments use inside their corpus sweeps. The cache-key digests are
// computed once here rather than once per loop, so the per-loop cache hit
// is just a map lookup.
func (o Options) compiler(cfg machine.Config, po pipeOpts) func(*ir.Loop) compiled {
	// The sweep-wide effort applies to every experiment that does not pin
	// its own (EffortFast is the zero value, so a pinned fast row is
	// indistinguishable from "unset" — the portfolio sweep clears the
	// sweep-wide effort before building its compilers instead).
	if po.schedOpts.Effort == sched.EffortFast {
		po.schedOpts.Effort = o.Effort
	}
	p := o.Pipeline
	if p == nil {
		return func(l *ir.Loop) compiled { return compileLoop(l, cfg, po, nil) }
	}
	cfgD := configDigest(&cfg)
	optsD := optsKey(po)
	return func(l *ir.Loop) compiled {
		k := pipeKey{loop: l, cfg: cfgD, opts: optsD}
		return p.c.Do(k, func() compiled { return compileLoop(l, cfg, po, p) })
	}
}

// compileLoop runs unroll -> copy insertion -> scheduling -> allocation,
// stamping each stage's wall clock into p (nil drops the timings).
func compileLoop(l *ir.Loop, cfg machine.Config, po pipeOpts, p *Pipeline) compiled {
	c := compiled{Loop: l, Factor: 1}
	work := l
	t0 := time.Now()
	if po.unroll {
		fm := cfg
		if po.factorFrom != nil {
			fm = *po.factorFrom
		}
		c.Factor = unroll.AutoFactor(l, fm)
		u, err := unroll.Unroll(l, c.Factor)
		if err != nil {
			c.Err = err
			return c
		}
		work = u
	}
	p.record(vliwq.StageUnroll, t0)
	if po.copies {
		t0 = time.Now()
		ins, err := copyins.Insert(work, po.shape)
		if err != nil {
			c.Err = err
			return c
		}
		work = ins.Loop
		p.record(vliwq.StageCopies, t0)
	}
	t0 = time.Now()
	s, err := sched.ScheduleLoop(work, cfg, po.schedOpts)
	if err != nil {
		c.Err = err
		return c
	}
	c.Sched = s
	p.record(vliwq.StageSchedule, t0)
	t0 = time.Now()
	c.Alloc = queue.Allocate(s)
	p.record(vliwq.StageAlloc, t0)
	return c
}

// forEach compiles fn over the corpus on the shared fixed worker pool
// (internal/pool), keeping result order aligned with the input order.
func forEach[T any](loops []*ir.Loop, workers int, fn func(l *ir.Loop) T) []T {
	out := make([]T, len(loops))
	pool.Run(context.Background(), len(loops), workers, func(i int) {
		out[i] = fn(loops[i])
	}, nil)
	return out
}

func pct(n, total int) string {
	if total == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(n)/float64(total))
}

// RunAll regenerates every figure and table in order and writes them to w.
// All experiments share one compilation cache: the figures' (loop, machine,
// options) sets overlap heavily, so each distinct compilation runs once.
// RunAll is deliberately the *paper's* evaluation only: the Portfolio
// sweep (this repo's extension, with its own stressed corpus and a 5x
// scheduling cost at exhaustive effort) runs explicitly via
// `vliwexp -fig portfolio`, keeping RunAll's output and BenchmarkRunAll's
// cost stable against the published baselines.
func RunAll(w io.Writer, opts Options) {
	if opts.Pipeline == nil {
		opts.Pipeline = NewPipeline()
	}
	for _, t := range []*Table{
		Fig3(opts),
		CopyCost(opts),
		Fig4(opts),
		UnrollQueues(opts),
		Fig6(opts),
		ClusterResources(opts),
		Fig8(opts),
		Fig9(opts),
		AblationCopyShape(opts),
		AblationMoveOps(opts),
		AblationCommLatency(opts),
		AblationInvariants(opts),
	} {
		t.Fprint(w)
	}
}
