package vliwq

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Stage names one phase of the compilation pipeline, in execution order.
// The staged compiler API (Compiler.RunUntil, vliwsched -dump-after) uses
// stages to stop the pipeline early and expose intermediate artifacts, and
// Result.Stages reports per-stage wall-clock timings for observability
// (the vliwd service aggregates them fleet-wide in /stats).
type Stage uint8

const (
	// StageUnroll replicates the loop body: automatic factor selection
	// (Options.Unroll) or a forced factor (Options.UnrollFactor).
	StageUnroll Stage = iota
	// StageCopies rewrites every multi-consumer value into a fanout tree
	// of copy operations (internal/copyins) — queue register files destroy
	// a value on read, so fanout must be materialized.
	StageCopies
	// StageSchedule runs partitioned iterative modulo scheduling
	// (internal/sched), producing the kernel and cluster assignment.
	StageSchedule
	// StageAlloc maps values onto FIFO queues with the Q-Compatibility
	// test (internal/queue) and computes the headline metrics.
	StageAlloc
	// StageVerify replays the pipelined schedule on the cycle-accurate
	// simulator against sequential execution (skipped by
	// Options.SkipVerify / Request.SkipVerify).
	StageVerify
	// NumStages is the number of pipeline stages.
	NumStages
)

var stageNames = [NumStages]string{
	StageUnroll:   "unroll",
	StageCopies:   "copies",
	StageSchedule: "schedule",
	StageAlloc:    "alloc",
	StageVerify:   "verify",
}

func (s Stage) String() string {
	if s < NumStages {
		return stageNames[s]
	}
	return fmt.Sprintf("Stage(%d)", uint8(s))
}

// ParseStage maps a stage name to its value. The error lists the valid
// names sorted — the cmds surface it verbatim.
func ParseStage(name string) (Stage, error) {
	for s, n := range stageNames {
		if n == name {
			return Stage(s), nil
		}
	}
	return 0, fmt.Errorf("unknown stage %q (valid: %s)", name, strings.Join(StageNames(), ", "))
}

// StageNames returns every stage name, sorted.
func StageNames() []string {
	out := make([]string, 0, NumStages)
	for _, n := range stageNames {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// StageTiming is one executed stage's wall-clock cost. Result.Stages
// collects them in execution order; stages that did not run (verification
// under SkipVerify, stages past a RunUntil cutoff) are absent.
type StageTiming struct {
	Stage    Stage
	Duration time.Duration
}
