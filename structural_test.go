package vliwq

import (
	"strings"
	"testing"
)

const structBase = `
loop daxpy
trip 200
op a load
op x load
op y load
op m mul a
op s add m y
op st store s
carried s m 1
mem st a 1
`

// structRenamed is structBase with every name (ops and loop) replaced;
// structure, statement order and operand order are untouched.
const structRenamed = `
loop zloop
trip 200
op p0 load
op p1 load
op p2 load
op q0 mul p0
op q1 add q0 p2
op w store q1
carried q1 q0 1
mem w p0 1
`

// structPermuted is structBase with the first two loads swapped: same
// fingerprint class, different skeleton.
const structPermuted = `
loop daxpy
trip 200
op x load
op a load
op y load
op m mul a
op s add m y
op st store s
carried s m 1
mem st a 1
`

func TestStructuralKeyGroupsRenamedSpellings(t *testing.T) {
	a := Request{Loop: structBase}
	b := Request{Loop: structRenamed}
	c := Request{Loop: structPermuted}
	if a.Canonical() == b.Canonical() {
		t.Fatal("renamed spellings must have distinct exact keys")
	}
	if a.StructuralKey() != b.StructuralKey() {
		t.Fatal("renamed spellings must share a structural key")
	}
	if a.StructuralKey() != c.StructuralKey() {
		t.Fatal("statement-permuted spellings must share a structural key")
	}
	if !strings.HasPrefix(a.StructuralKey(), "sq1;m=single:6;") {
		t.Fatalf("structural key %q lacks canonical knob prefix", a.StructuralKey())
	}
}

func TestStructuralKeySeparatesKnobs(t *testing.T) {
	base := Request{Loop: structBase}
	variants := []Request{
		{Loop: structBase, Machine: "clustered:4"},
		{Loop: structBase, Unroll: true},
		{Loop: structBase, UnrollFactor: 2},
		{Loop: structBase, CopyShape: "chain"},
		{Loop: structBase, Effort: "balanced"},
		{Loop: structBase, SkipVerify: true},
		{Loop: structBase, Machine: "clustered:4", AllowMoves: true},
		{Loop: structBase, Machine: "clustered:4", CommLatency: 2},
	}
	for i, v := range variants {
		if v.StructuralKey() == base.StructuralKey() {
			t.Errorf("variant %d shares the base structural key", i)
		}
	}
	// Default spellings still collapse, as with Canonical().
	explicit := Request{Loop: structBase, Machine: "single:6", CopyShape: "tree", Effort: "fast"}
	if explicit.StructuralKey() != base.StructuralKey() {
		t.Fatal("default spellings must share a structural key")
	}
}

func TestStructuralKeyFallsBackToCanonical(t *testing.T) {
	bad := []Request{
		{Loop: ""},                                // fails Normalize
		{Loop: "loop x\nop a frobnicate\n"},       // fails parse
		{Loop: structBase, Machine: "warp:9"},     // bad machine
		{Loop: structBase, Effort: "impossible"},  // bad effort
		{Loop: structBase, UnrollFactor: 9000000}, // out of range
	}
	for i, r := range bad {
		if got := r.StructuralKey(); got != r.Canonical() {
			t.Errorf("invalid request %d: structural key %q != canonical fallback", i, got)
		}
	}
}

// TestRemapResultByteIdentical is the core invariant: remapping a compiled
// result onto a renamed spelling renders byte-identically to compiling the
// renamed loop from scratch, across machine shapes, unrolling and the
// move extension.
func TestRemapResultByteIdentical(t *testing.T) {
	cases := []struct {
		name string
		req  Request // only the knobs are read; Options() maps them
	}{
		{"single", Request{}},
		{"clustered", Request{Machine: "clustered:4"}},
		{"unrolled", Request{Unroll: true}},
		{"forced-unroll", Request{Machine: "clustered:2", UnrollFactor: 3}},
		{"chain-copies", Request{CopyShape: "chain"}},
		{"moves", Request{Machine: "clustered:4", AllowMoves: true, CommLatency: 1}},
		{"exhaustive", Request{Machine: "clustered:4", Effort: "exhaustive"}},
	}
	from, err := ParseLoop(structBase)
	if err != nil {
		t.Fatal(err)
	}
	to, err := ParseLoop(structRenamed)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tc.req.Loop = structBase
			opts, err := tc.req.Options()
			if err != nil {
				t.Fatal(err)
			}
			cached, err := Compile(from.Clone(), opts)
			if err != nil {
				t.Fatal(err)
			}
			fresh, err := Compile(to.Clone(), opts)
			if err != nil {
				t.Fatal(err)
			}
			remapped, err := RemapResult(cached, to)
			if err != nil {
				t.Fatal(err)
			}
			if got, want := remapped.Report(), fresh.Report(); got != want {
				t.Errorf("Report mismatch:\nremap:\n%s\nfresh:\n%s", got, want)
			}
			if got, want := remapped.KernelSchedule(), fresh.KernelSchedule(); got != want {
				t.Errorf("KernelSchedule mismatch:\nremap:\n%s\nfresh:\n%s", got, want)
			}
			if got, want := FormatLoop(remapped.AfterCopies), FormatLoop(fresh.AfterCopies); got != want {
				t.Errorf("AfterCopies mismatch:\nremap:\n%s\nfresh:\n%s", got, want)
			}
			if got, want := FormatLoop(remapped.Input), FormatLoop(to); got != want {
				t.Errorf("remapped Input differs from target loop:\n%s\nvs\n%s", got, want)
			}
			// The cached result must be untouched: its loops still carry the
			// original names.
			if cached.Input.Name != "daxpy" || cached.Sched.Loop == remapped.Sched.Loop {
				t.Error("remap mutated or aliased the cached result's loops")
			}
		})
	}
}

func TestRemapResultRejectsPermutedLoop(t *testing.T) {
	from, _ := ParseLoop(structBase)
	perm, _ := ParseLoop(structPermuted)
	res, err := Compile(from, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RemapResult(res, perm); err == nil {
		t.Fatal("remap onto a statement-permuted loop must be rejected")
	}
}

func TestRemapResultIdentity(t *testing.T) {
	from, _ := ParseLoop(structBase)
	same, _ := ParseLoop(structBase)
	res, err := Compile(from, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := RemapResult(res, same)
	if err != nil {
		t.Fatal(err)
	}
	if got != res {
		t.Fatal("remap onto an identically-named loop must be the identity")
	}
}
