// Package vliwq reproduces "Partitioned Schedules for Clustered VLIW
// Architectures" (Fernandes, Llosa, Topham — IPPS/SPDP 1998): modulo
// scheduling of innermost loops onto clustered VLIW machines whose register
// files are FIFO queues, with copy-operation insertion for multi-consumer
// values, loop unrolling, ring-partitioned scheduling, and queue allocation
// via the Q-Compatibility test.
//
// This root package is the high-level facade; the building blocks live in
// internal packages (ir, machine, sched, queue, copyins, unroll, sim,
// metrics, exp) and are exercised directly by the examples and tools.
//
// The primary API is request-centric: a Request is the canonical encoding
// of one compilation (loop text plus every knob, with a deterministic
// Canonical() key every cache and router shares), and a Compiler is a
// configured session that runs Requests:
//
//	c := vliwq.NewCompiler(vliwq.CompilerConfig{})
//	res, err := c.Run(ctx, vliwq.Request{Loop: src, Machine: "clustered:4", Unroll: true})
//	fmt.Println(res.Report())
//
// Run returns the schedule, the queue allocation and the headline metrics,
// after verifying the result on the cycle-accurate simulator; RunUntil
// stops the pipeline at a chosen Stage and exposes its artifacts. The
// loop-first helpers — Compile, CompileContext, CompileBatch — remain as
// thin shims over the same staged engine:
//
//	loop, _ := vliwq.ParseLoop(src)
//	res, err := vliwq.Compile(loop, vliwq.Options{Machine: vliwq.Clustered(4), Unroll: true})
package vliwq

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"strconv"
	"strings"
	"time"

	"vliwq/internal/copyins"
	"vliwq/internal/ir"
	"vliwq/internal/machine"
	"vliwq/internal/metrics"
	"vliwq/internal/pool"
	"vliwq/internal/queue"
	"vliwq/internal/sched"
	"vliwq/internal/sim"
	"vliwq/internal/unroll"
)

// Loop is the compiler's input: an innermost loop body as a dependence
// graph. Build one with ParseLoop or the internal/ir builders.
type Loop = ir.Loop

// Machine describes the target configuration.
type Machine = machine.Config

// SingleCluster returns the paper's single-cluster baseline machine with n
// computation FUs (plus copy units).
func SingleCluster(n int) Machine { return machine.SingleCluster(n) }

// Clustered returns the paper's clustered machine: n clusters of
// {1 L/S, 1 ADD, 1 MUL, 1 COPY}, 8 private queues each, connected by a
// bidirectional ring with 8 communication queues per direction.
func Clustered(n int) Machine { return machine.Clustered(n) }

// ParseLoop reads a loop in the text format (see internal/ir: `op`,
// `carried`, `mem`, `order` directives).
func ParseLoop(src string) (*Loop, error) { return ir.ParseString(src) }

// FormatLoop renders a loop back into the text format ParseLoop reads.
func FormatLoop(l *Loop) string { return ir.FormatString(l) }

// MaxMachineSize caps the size argument ParseMachine accepts. The paper's
// machines top out at 18 FUs / 6 clusters; the cap is generous headroom
// that still keeps a hostile spec ("clustered:500000000", which would
// allocate the cluster array before any compile starts) from sizing
// allocations — ParseMachine is the service's trust boundary.
const MaxMachineSize = 512

// ParseMachine parses a machine spec of the form "single:<fus>" or
// "clustered:<clusters>" — the notation cmd/vliwsched, cmd/vliwload and the
// vliwd service share.
func ParseMachine(spec string) (Machine, error) {
	kind, arg, ok := strings.Cut(spec, ":")
	if !ok {
		return Machine{}, fmt.Errorf("bad machine spec %q (want single:<n> or clustered:<n>)", spec)
	}
	n, err := strconv.Atoi(arg)
	if err != nil || n < 1 {
		return Machine{}, fmt.Errorf("bad machine size %q", arg)
	}
	if n > MaxMachineSize {
		return Machine{}, fmt.Errorf("machine size %d exceeds the %d limit", n, MaxMachineSize)
	}
	switch kind {
	case "single":
		return SingleCluster(n), nil
	case "clustered":
		return Clustered(n), nil
	}
	return Machine{}, fmt.Errorf("unknown machine kind %q", kind)
}

// ReadLoop reads a loop in the text format from r.
func ReadLoop(r io.Reader) (*Loop, error) { return ir.Parse(r) }

// Effort selects the scheduler's search breadth: how many partition
// strategies the portfolio scheduler races per candidate II (see
// internal/sched), and — at EffortOptimal — whether the exact
// branch-and-bound backend certifies the result. The zero value,
// EffortFast, is the single baseline heuristic — bit-for-bit the
// historical scheduler.
type Effort = sched.Effort

// Effort levels, re-exported for callers configuring Options.Sched.
const (
	EffortFast       = sched.EffortFast
	EffortBalanced   = sched.EffortBalanced
	EffortExhaustive = sched.EffortExhaustive
	EffortOptimal    = sched.EffortOptimal
)

// Bound is the optimality certificate an EffortOptimal compilation carries
// in Result.Bound: the proved lower bound on II and whether the achieved
// II was proved equal to it. See DESIGN.md §14 for the contract.
type Bound = sched.Bound

// ParseEffort maps an effort name ("fast", "balanced", "exhaustive",
// "optimal"; "" means fast) to its value. The error lists the valid names
// sorted — the service and the cmds surface it verbatim.
func ParseEffort(name string) (Effort, error) { return sched.ParseEffort(name) }

// EffortNames returns every effort name, sorted.
func EffortNames() []string { return sched.EffortNames() }

// Options control the compilation pipeline.
type Options struct {
	// Machine is the target; the zero value selects SingleCluster(6).
	Machine Machine
	// Unroll enables automatic loop unrolling (factor chosen to minimize
	// the per-original-iteration II bound, capped at 8).
	Unroll bool
	// UnrollFactor forces a specific factor (>= 2) instead of the
	// automatic choice; implies unrolling.
	UnrollFactor int
	// CopyShape selects the fanout topology for copy insertion;
	// the zero value is the balanced tree.
	CopyShape copyins.Shape
	// SkipVerify skips the simulator-based verification pass (useful for
	// bulk experiments; the paper-scale harness verifies samples instead).
	SkipVerify bool
	// VerifyIterations bounds the verification run (0 = min(trip, 64)).
	VerifyIterations int
	// Sched tunes the scheduler's search effort.
	Sched sched.Options
}

// Result is a compiled loop: the transformed body, its modulo schedule,
// the queue allocation, and derived metrics. A full run (Compile,
// Compiler.Run) populates every field; a staged run (Compiler.RunUntil)
// populates only the fields of the stages that executed — Sched is nil
// before StageSchedule, Alloc and the headline metrics before StageAlloc —
// and Report/KernelSchedule require at least StageAlloc/StageSchedule
// respectively.
type Result struct {
	Input    *Loop // the loop as given
	Unrolled int   // unroll factor applied (1 = none)
	Sched    *sched.Schedule
	Alloc    *queue.Allocation

	// Per-stage artifacts: the loop body as each transformation stage left
	// it. AfterUnroll is the input itself when no unrolling applied;
	// AfterCopies is the dependence graph the scheduler consumed (when the
	// move-op extension rewrites it further, Sched.Loop is the final
	// body). Shared pointers — treat as read-only.
	AfterUnroll *Loop
	AfterCopies *Loop

	// Stages records the wall-clock cost of every stage that executed, in
	// execution order — the observability hook the vliwd service
	// aggregates into /stats (stage_nanos) and vliwexp's -stage-times
	// sweeps report.
	Stages []StageTiming

	// Headline metrics.
	II         int
	MII        int
	StageCount int
	IPCStatic  float64
	IPCDynamic float64
	Queues     int // max private queues used in any cluster
	RingQueues int // max ring queues used on any directed link

	// Strategy names the cluster-assignment strategy that produced the
	// schedule ("baseline" unless a portfolio raced alternatives), so
	// portfolio wins are observable wherever results flow — reports, the
	// service's responses and /stats, the experiment sweeps.
	Strategy string

	// Bound is the optimality certificate (EffortOptimal only; the zero
	// value — Lower == 0 — everywhere else, keeping historical outputs
	// byte-identical). Bound.Optimal=true is a proof that no schedule with
	// a smaller II exists for this loop on this machine.
	Bound Bound
}

// Compile runs the full pipeline on one loop: (optional) unrolling, copy
// insertion, modulo scheduling (partitioned when the machine has several
// clusters), queue allocation, and — unless disabled — end-to-end
// verification against sequential execution on the cycle-accurate QRF
// simulator.
func Compile(l *Loop, opts Options) (*Result, error) {
	return CompileContext(context.Background(), l, opts)
}

// CompileContext is Compile with cancellation: the context is checked
// between pipeline stages, so a cancelled request abandons the remaining
// (scheduling, allocation, verification) work and returns ctx.Err(). Long
// batch runs — the service's /batch endpoint, CompileBatch — rely on this
// to stop promptly when the client goes away.
//
// CompileContext is a thin shim over the staged engine Compiler sessions
// drive (compileStaged): both paths run identical code, which is what pins
// Compiler.Run output byte-for-byte to the historical Compile output.
func CompileContext(ctx context.Context, l *Loop, opts Options) (*Result, error) {
	return compileStaged(ctx, l, opts, StageVerify)
}

// compileStaged is the pipeline engine: it runs the stages in order —
// unroll, copy insertion, scheduling, queue allocation, verification —
// stamping each executed stage's wall-clock cost into Result.Stages and
// its artifact into the Result, and stops after `until` (StageVerify = the
// full pipeline; SkipVerify ends a full run at StageAlloc). The context is
// checked on entry and at every stage boundary from scheduling on
// (schedule, alloc, verify) — the boundaries where a propagated request
// deadline cancels abandoned work.
//
// EffortOptimal inverts that contract: the deadline bounds the optimality
// proof, never the compilation. The scheduler's anytime ladder observes ctx
// itself and returns its best incumbent with Bound.DeadlineCut set, and the
// pipeline's own boundary checks are skipped so even an already-expired
// context yields a complete (and still verified) result rather than an
// error — the serving layer turns that into a 200 with bound.optimal=false
// instead of a timeout.
func compileStaged(ctx context.Context, l *Loop, opts Options, until Stage) (*Result, error) {
	if l == nil {
		return nil, fmt.Errorf("vliwq: nil loop")
	}
	anytime := opts.Sched.Effort == sched.EffortOptimal
	if err := ctx.Err(); err != nil && !anytime {
		return nil, err
	}
	cfg := opts.Machine
	if cfg.NumClusters() == 0 {
		cfg = SingleCluster(6)
	}
	if err := l.Validate(); err != nil {
		return nil, err
	}
	res := &Result{Input: l, Unrolled: 1}
	stamp := func(st Stage, t0 time.Time) {
		res.Stages = append(res.Stages, StageTiming{Stage: st, Duration: time.Since(t0)})
	}

	t0 := time.Now()
	work := l
	factor := 1
	switch {
	case opts.UnrollFactor >= 2:
		factor = opts.UnrollFactor
	case opts.Unroll:
		factor = unroll.AutoFactor(l, cfg)
	}
	if factor > 1 {
		u, err := unroll.Unroll(l, factor)
		if err != nil {
			return nil, err
		}
		work = u
	}
	res.Unrolled = factor
	res.AfterUnroll = work
	stamp(StageUnroll, t0)
	if until <= StageUnroll {
		return res, nil
	}

	t0 = time.Now()
	ins, err := copyins.Insert(work, opts.CopyShape)
	if err != nil {
		return nil, err
	}
	res.AfterCopies = ins.Loop
	stamp(StageCopies, t0)
	if until <= StageCopies {
		return res, nil
	}
	if err := ctx.Err(); err != nil && !anytime {
		return nil, err
	}

	t0 = time.Now()
	s, err := sched.ScheduleLoopContext(ctx, ins.Loop, cfg, opts.Sched)
	if err != nil {
		return nil, err
	}
	if err := s.Verify(); err != nil {
		return nil, fmt.Errorf("vliwq: internal error: %w", err)
	}
	res.Sched = s
	res.II = s.II
	res.MII = s.MII()
	res.StageCount = s.StageCount()
	res.Strategy = s.Strategy.String()
	res.Bound = s.Bound
	stamp(StageSchedule, t0)
	if until <= StageSchedule {
		return res, nil
	}

	if err := ctx.Err(); err != nil && !anytime {
		return nil, err
	}
	t0 = time.Now()
	alloc := queue.Allocate(s)
	if err := alloc.Verify(); err != nil {
		return nil, fmt.Errorf("vliwq: internal error: %w", err)
	}
	res.Alloc = alloc
	res.Queues = alloc.MaxPrivateQueues()
	res.RingQueues = alloc.MaxRingQueues()
	trip := l.TripCount()
	iters := trip / factor
	if iters < 1 {
		iters = 1
	}
	res.IPCStatic = metrics.IPCStatic(s)
	res.IPCDynamic = metrics.IPCDynamic(s, iters)
	stamp(StageAlloc, t0)
	if until <= StageAlloc {
		return res, nil
	}

	if err := ctx.Err(); err != nil && !anytime {
		return nil, err
	}
	if !opts.SkipVerify {
		t0 = time.Now()
		n := opts.VerifyIterations
		if n <= 0 {
			n = s.Loop.TripCount()
			if n > 64 {
				n = 64
			}
		}
		if err := sim.VerifyPipeline(s, alloc, n); err != nil {
			return nil, fmt.Errorf("vliwq: verification failed: %w", err)
		}
		stamp(StageVerify, t0)
	}
	return res, nil
}

// BatchItem is one compilation request in a CompileBatch call.
type BatchItem struct {
	Loop *Loop
	Opts Options
}

// BatchResult is the outcome for the BatchItem at the same index: exactly
// one of Result and Err is set.
type BatchResult struct {
	Result *Result
	Err    error
}

// CompileBatch compiles every item on a fixed pool of workers (pool.Run)
// and returns the results in input order: out[i] always corresponds to
// items[i], whatever the worker interleaving. workers <= 0 selects
// GOMAXPROCS. When ctx is cancelled, in-flight compilations stop at their
// next stage boundary and every unstarted item reports ctx.Err(); the
// returned slice always has len(items) entries.
func CompileBatch(ctx context.Context, items []BatchItem, workers int) []BatchResult {
	out := make([]BatchResult, len(items))
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	pool.Run(ctx, len(items), workers, func(i int) {
		r, err := CompileContext(ctx, items[i].Loop, items[i].Opts)
		out[i] = BatchResult{Result: r, Err: err}
	}, func(i int) {
		out[i] = BatchResult{Err: ctx.Err()}
	})
	return out
}

// Report renders a human-readable summary of the compiled loop.
func (r *Result) Report() string {
	var b strings.Builder
	s := r.Sched
	fmt.Fprintf(&b, "loop %s on %s\n", r.Input.Name, s.Machine.Name)
	if r.Unrolled > 1 {
		fmt.Fprintf(&b, "  unrolled x%d (%d ops)\n", r.Unrolled, len(s.Loop.Ops))
	}
	fmt.Fprintf(&b, "  II=%d (ResMII=%d RecMII=%d)  stages=%d  length=%d\n",
		s.II, s.ResMII, s.RecMII, r.StageCount, s.Length())
	if s.Stats.StrategiesTried > 0 {
		// Only portfolio runs print this line, so fast-effort output stays
		// byte-identical to the historical reports (and their goldens).
		fmt.Fprintf(&b, "  portfolio: %d strategies raced, %s won\n",
			s.Stats.StrategiesTried, s.Strategy)
	}
	if r.Bound.Lower > 0 {
		// Only the optimal tier carries a certificate; other tiers' reports
		// stay byte-identical.
		status := "unproved"
		if r.Bound.Optimal {
			status = "proved"
		} else if r.Bound.DeadlineCut {
			status = "deadline-cut"
		}
		fmt.Fprintf(&b, "  optimal: lower-bound=%d %s (pruned %d nodes)\n",
			r.Bound.Lower, status, s.Stats.PrunedNodes)
	}
	fmt.Fprintf(&b, "  IPC static=%.2f dynamic=%.2f\n", r.IPCStatic, r.IPCDynamic)
	fmt.Fprintf(&b, "  queues: private<=%d per cluster, ring<=%d per link, max depth %d\n",
		r.Queues, r.RingQueues, r.Alloc.MaxDepth())
	return b.String()
}

// KernelSchedule renders the kernel as an II x FU table: one row per
// modulo cycle, one column per cluster, listing the operations issued.
func (r *Result) KernelSchedule() string {
	s := r.Sched
	rows := make([][]string, s.II)
	for i := range rows {
		rows[i] = make([]string, s.Machine.NumClusters())
	}
	for id, op := range s.Loop.Ops {
		row := s.Time[id] % s.II
		c := s.Cluster[id]
		cell := &rows[row][c]
		if *cell != "" {
			*cell += " "
		}
		name := op.Name
		if name == "" {
			name = fmt.Sprintf("%s#%d", op.Kind, op.ID)
		}
		*cell += fmt.Sprintf("%s@%d", name, s.Time[id])
	}
	var b strings.Builder
	for row := 0; row < s.II; row++ {
		fmt.Fprintf(&b, "cycle %2d |", row)
		for c := 0; c < s.Machine.NumClusters(); c++ {
			fmt.Fprintf(&b, " %-30s |", rows[row][c])
		}
		b.WriteString("\n")
	}
	return b.String()
}
