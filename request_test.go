package vliwq

import (
	"reflect"
	"strings"
	"testing"
)

const reqTestLoop = "loop x\ntrip 8\nop a load\nop b load\nop s add a b\nop st store s\n"

func TestNormalizeFillsDefaults(t *testing.T) {
	r := Request{Loop: reqTestLoop}
	if err := r.Normalize(); err != nil {
		t.Fatal(err)
	}
	if r.Machine != "single:6" || r.CopyShape != "tree" || r.Effort != "fast" {
		t.Fatalf("normalized defaults wrong: machine=%q shape=%q effort=%q", r.Machine, r.CopyShape, r.Effort)
	}
	// Explicit values survive untouched.
	r = Request{Loop: reqTestLoop, Machine: "clustered:4", CopyShape: "chain", Effort: "exhaustive"}
	if err := r.Normalize(); err != nil {
		t.Fatal(err)
	}
	if r.Machine != "clustered:4" || r.CopyShape != "chain" || r.Effort != "exhaustive" {
		t.Fatalf("normalize rewrote explicit values: %+v", r)
	}
}

func TestNormalizeRejects(t *testing.T) {
	tests := []struct {
		name   string
		req    Request
		errHas string
	}{
		{"empty loop", Request{}, "empty loop"},
		{"bad machine", Request{Loop: reqTestLoop, Machine: "mesh:4"}, "unknown machine kind"},
		{"huge machine", Request{Loop: reqTestLoop, Machine: "clustered:500000000"}, "exceeds"},
		{"bad shape", Request{Loop: reqTestLoop, CopyShape: "star"}, "unknown copy_shape"},
		{"negative commlat", Request{Loop: reqTestLoop, CommLatency: -1}, "comm_latency"},
		{"huge unroll factor", Request{Loop: reqTestLoop, UnrollFactor: 65}, "out of range"},
		{"negative unroll factor", Request{Loop: reqTestLoop, UnrollFactor: -1}, "out of range"},
		{"bad effort", Request{Loop: reqTestLoop, Effort: "sluggish"}, "unknown effort"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.req.Normalize()
			if err == nil || !strings.Contains(err.Error(), tt.errHas) {
				t.Fatalf("Normalize() = %v, want error mentioning %q", err, tt.errHas)
			}
		})
	}
}

// TestCanonicalCollapsesDefaultSpellings is the library half of the
// key-fragmentation regression (the service and gateway tests cover the
// cache-entry and shard halves): every spelling of the default behaviour
// must encode to one canonical key.
func TestCanonicalCollapsesDefaultSpellings(t *testing.T) {
	bare := Request{Loop: reqTestLoop}
	spellings := []Request{
		{Loop: reqTestLoop, Machine: "single:6"},
		{Loop: reqTestLoop, CopyShape: "tree"},
		{Loop: reqTestLoop, Effort: "fast"},
		{Loop: reqTestLoop, Machine: "single:6", CopyShape: "tree", Effort: "fast"},
	}
	for i, s := range spellings {
		if s.Canonical() != bare.Canonical() {
			t.Fatalf("spelling %d keys apart:\n%q\nvs\n%q", i, s.Canonical(), bare.Canonical())
		}
	}
	// Non-canonical digit spellings of one machine (strconv accepts
	// leading zeros and signs) collapse through Spec() re-rendering.
	canon := Request{Loop: reqTestLoop, Machine: "single:6"}
	for _, spec := range []string{"single:06", "single:+6"} {
		alt := Request{Loop: reqTestLoop, Machine: spec}
		if alt.Canonical() != canon.Canonical() {
			t.Fatalf("machine spelling %q keys apart from single:6", spec)
		}
	}
	// Equivalent unroll spellings fold: a forced factor makes the
	// automatic flag dead weight, and factor 1 is factor 0.
	forced := Request{Loop: reqTestLoop, UnrollFactor: 4}
	both := Request{Loop: reqTestLoop, Unroll: true, UnrollFactor: 4}
	if forced.Canonical() != both.Canonical() {
		t.Fatal("unroll=true with a forced factor keys apart from the forced factor alone")
	}
	one := Request{Loop: reqTestLoop, UnrollFactor: 1}
	if one.Canonical() != bare.Canonical() {
		t.Fatal("unroll_factor 1 keys apart from no unrolling")
	}
	// Canonical must not mutate the receiver.
	r := Request{Loop: reqTestLoop}
	_ = r.Canonical()
	if !reflect.DeepEqual(r, Request{Loop: reqTestLoop}) {
		t.Fatalf("Canonical mutated its receiver: %+v", r)
	}
}

func TestCanonicalSeparatesBehaviours(t *testing.T) {
	base := Request{Loop: reqTestLoop}
	distinct := []Request{
		{Loop: reqTestLoop, Machine: "single:4"},
		{Loop: reqTestLoop, Machine: "clustered:4"},
		{Loop: reqTestLoop, Unroll: true},
		{Loop: reqTestLoop, UnrollFactor: 2},
		{Loop: reqTestLoop, CopyShape: "chain"},
		{Loop: reqTestLoop, AllowMoves: true},
		{Loop: reqTestLoop, CommLatency: 1},
		{Loop: reqTestLoop, SkipVerify: true},
		{Loop: reqTestLoop, Effort: "balanced"},
		{Loop: reqTestLoop + "op t add s s\n"},
	}
	seen := map[string]int{base.Canonical(): -1}
	for i, r := range distinct {
		k := r.Canonical()
		if j, dup := seen[k]; dup {
			t.Fatalf("behaviourally distinct requests %d and %d share key %q", i, j, k)
		}
		seen[k] = i
	}
}

// TestCanonicalOfInvalidRequestIsDeterministic: requests Normalize rejects
// still need a stable key — the gateway routes them to SOME backend, which
// rejects them with 400; what matters is that the choice is deterministic.
func TestCanonicalOfInvalidRequestIsDeterministic(t *testing.T) {
	bad := Request{Loop: reqTestLoop, Machine: "mesh:4", Effort: "sluggish"}
	if bad.Canonical() != bad.Canonical() {
		t.Fatal("invalid request keyed differently across calls")
	}
	if bad.Canonical() == (Request{Loop: reqTestLoop}).Canonical() {
		t.Fatal("invalid request collided with the default request")
	}
}

// TestNewRequestRoundTrip: a Request built from (loop, Options) must carry
// the same behaviour back through Request.Options — machine shape, knobs
// and effort all surviving the trip through spec strings.
func TestNewRequestRoundTrip(t *testing.T) {
	loop, err := ParseLoop(reqTestLoop)
	if err != nil {
		t.Fatal(err)
	}
	m := Clustered(4)
	m.AllowMoves = true
	m.CommLatency = 2
	in := Options{Machine: m, Unroll: true, SkipVerify: true}
	in.Sched.Effort = EffortBalanced

	req := NewRequest(loop, in)
	if req.Machine != "clustered:4" || !req.AllowMoves || req.CommLatency != 2 || req.Effort != "balanced" {
		t.Fatalf("NewRequest dropped knobs: %+v", req)
	}
	out, err := req.Options()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out.Machine, m) {
		t.Fatalf("machine did not round-trip:\n%+v\nvs\n%+v", out.Machine, m)
	}
	if out.Unroll != in.Unroll || out.SkipVerify != in.SkipVerify || out.Sched.Effort != in.Sched.Effort {
		t.Fatalf("options did not round-trip: %+v vs %+v", out, in)
	}
	back, err := ParseLoop(req.Loop)
	if err != nil {
		t.Fatal(err)
	}
	if FormatLoop(back) != FormatLoop(loop) {
		t.Fatal("loop text did not round-trip")
	}
}

// TestMachineSpecRoundTrip pins Machine.Spec as the inverse of
// ParseMachine over every constructor-built machine the paper uses (and
// then some): parse(spec(m)) must rebuild an identical Config.
func TestMachineSpecRoundTrip(t *testing.T) {
	for n := 1; n <= 18; n++ {
		m := SingleCluster(n)
		spec := m.Spec()
		back, err := ParseMachine(spec)
		if err != nil {
			t.Fatalf("single %d: %v", n, err)
		}
		if !reflect.DeepEqual(back, m) {
			t.Fatalf("single %d: spec %q round-tripped to a different machine", n, spec)
		}
	}
	for n := 1; n <= 8; n++ {
		m := Clustered(n)
		spec := m.Spec()
		back, err := ParseMachine(spec)
		if err != nil {
			t.Fatalf("clustered %d: %v", n, err)
		}
		if !reflect.DeepEqual(back, m) {
			t.Fatalf("clustered %d: spec %q round-tripped to a different machine", n, spec)
		}
	}
}
