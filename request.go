package vliwq

import (
	"errors"
	"fmt"
	"strings"

	"vliwq/internal/copyins"
)

// Request is the canonical compilation request: the loop plus every knob
// the pipeline accepts, in one flat, JSON-serializable value. It is THE
// request encoding across the whole system — the library's Compiler
// sessions consume it, the vliwd service's /compile and /batch bodies ARE
// this type (service.CompileRequest is an alias), and the vliwgate fleet
// routes by its Canonical() string. A request built from a parsed loop and
// library Options comes from NewRequest.
//
// The zero values of every optional field mean "the default": an empty
// Machine is "single:6", an empty CopyShape is "tree", an empty Effort is
// "fast". Normalize fills those in; Canonical does so implicitly, which is
// what guarantees that two spellings of the same behaviour — {"loop": L}
// and {"loop": L, "machine": "single:6"} — share one cache entry and one
// gateway shard.
type Request struct {
	// Loop is the loop body in the text format internal/ir documents
	// (op/carried/mem/order directives). Required.
	Loop string `json:"loop"`
	// Machine is the "single:<n>" / "clustered:<n>" spec ParseMachine
	// accepts; empty means "single:6".
	Machine string `json:"machine,omitempty"`
	// Unroll enables automatic loop unrolling.
	Unroll bool `json:"unroll,omitempty"`
	// UnrollFactor forces a specific factor (2..64) instead of the
	// automatic choice, overriding Unroll; 0 and 1 both mean "no forced
	// factor" (Normalize folds 1 to 0). The cap exists because the factor
	// multiplies the loop body and Request is the service's trust
	// boundary.
	UnrollFactor int `json:"unroll_factor,omitempty"`
	// CopyShape selects the copy-insertion fanout topology: "tree"
	// (default) or "chain".
	CopyShape string `json:"copy_shape,omitempty"`
	// AllowMoves enables the move-operation extension on clustered
	// machines.
	AllowMoves bool `json:"allow_moves,omitempty"`
	// CommLatency is the extra inter-cluster delivery latency in cycles.
	CommLatency int `json:"comm_latency,omitempty"`
	// SkipVerify skips the simulator-based verification stage.
	SkipVerify bool `json:"skip_verify,omitempty"`
	// Effort selects the scheduler's tier: "fast" (default), "balanced",
	// "exhaustive", or "optimal" (exhaustive plus a branch-and-bound
	// optimality certificate in the response's bound field).
	Effort string `json:"effort,omitempty"`
}

// Normalize validates the request and fills every defaultable field with
// its canonical spelling in place: Machine "" becomes "single:6",
// CopyShape "" becomes "tree", Effort is canonicalized through
// ParseEffort. The error, if any, is a request-shape problem the caller
// should surface to the client (the service answers HTTP 400).
func (r *Request) Normalize() error {
	spec := r.Machine
	if spec == "" {
		spec = "single:6"
	}
	m, err := ParseMachine(spec)
	if err != nil {
		return err
	}
	// Re-render through Spec(): strconv accepts non-canonical digits
	// ("single:06", "single:+6"), and those spellings must share the
	// canonical key of the machine they denote.
	r.Machine = m.Spec()
	if r.CommLatency < 0 {
		return fmt.Errorf("negative comm_latency %d", r.CommLatency)
	}
	// The unroll factor multiplies the loop body; unchecked it lets a
	// four-op request allocate hundreds of millions of ops. The library's
	// automatic choice caps at 8, so 64 is generous for a forced factor.
	if r.UnrollFactor < 0 || r.UnrollFactor > 64 {
		return fmt.Errorf("unroll_factor %d out of range [0, 64]", r.UnrollFactor)
	}
	// Fold the equivalent unroll spellings onto one encoding: a forced
	// factor overrides the automatic flag in the pipeline (so the flag is
	// dead weight next to it), and factor 1 behaves exactly like factor 0.
	if r.UnrollFactor == 1 {
		r.UnrollFactor = 0
	}
	if r.UnrollFactor >= 2 {
		r.Unroll = false
	}
	switch r.CopyShape {
	case "":
		r.CopyShape = "tree"
	case "tree", "chain":
	default:
		return fmt.Errorf("unknown copy_shape %q (want tree or chain)", r.CopyShape)
	}
	eff, err := ParseEffort(r.Effort)
	if err != nil {
		return err
	}
	r.Effort = eff.String()
	if r.Loop == "" {
		return errors.New("empty loop")
	}
	return nil
}

// Canonical returns the deterministic canonical encoding of the request:
// THE cache key of every compile cache and THE routing key of the vliwgate
// hash ring. It normalizes a copy first, so behaviourally identical
// spellings encode identically. The grammar (DESIGN.md §10) is
//
//	"rq1;" "m=" machine ";u=" bool ";f=" int ";s=" shape
//	";mv=" bool ";cl=" int ";sv=" bool ";e=" effort ";" loop-text
//
// with bools as "true"/"false" and the loop text appended verbatim (it is
// last and unescaped; every fixed-width field precedes it, so the encoding
// is unambiguous). A request Normalize rejects still encodes
// deterministically — on its raw field values — and collides only with
// requests that are rejected identically downstream.
func (r Request) Canonical() string {
	n := r
	// Ignore the error: an invalid request keys on whatever Normalize left
	// behind, which is still a pure function of the input.
	_ = n.Normalize()
	var b strings.Builder
	b.Grow(len(n.Loop) + 64)
	fmt.Fprintf(&b, "rq1;m=%s;u=%t;f=%d;s=%s;mv=%t;cl=%d;sv=%t;e=%s;",
		n.Machine, n.Unroll, n.UnrollFactor, n.CopyShape,
		n.AllowMoves, n.CommLatency, n.SkipVerify, n.Effort)
	b.WriteString(n.Loop)
	return b.String()
}

// Options maps the request onto the library pipeline's Options, without
// mutating the receiver. The error is the same request-shape error
// Normalize reports.
func (r Request) Options() (Options, error) {
	n := r
	if err := n.Normalize(); err != nil {
		return Options{}, err
	}
	m, err := ParseMachine(n.Machine)
	if err != nil {
		return Options{}, err
	}
	m.AllowMoves = n.AllowMoves
	m.CommLatency = n.CommLatency
	opts := Options{
		Machine:      m,
		Unroll:       n.Unroll,
		UnrollFactor: n.UnrollFactor,
		SkipVerify:   n.SkipVerify,
	}
	if n.CopyShape == "chain" {
		opts.CopyShape = copyins.Chain
	}
	eff, err := ParseEffort(n.Effort)
	if err != nil {
		return Options{}, err
	}
	opts.Sched.Effort = eff
	return opts, nil
}

// NewRequest renders a parsed loop plus library Options into the canonical
// Request: the loop through FormatLoop, the machine through Machine.Spec.
// Only machines built by SingleCluster/Clustered/ParseMachine have a spec,
// so hand-assembled Configs with custom cluster mixes do not survive the
// trip; neither do Options.VerifyIterations or an explicit
// Options.Sched.Strategies list, which are session-level knobs with no
// wire representation.
func NewRequest(l *Loop, opts Options) Request {
	m := opts.Machine
	if m.NumClusters() == 0 {
		m = SingleCluster(6)
	}
	return Request{
		Loop:         FormatLoop(l),
		Machine:      m.Spec(),
		Unroll:       opts.Unroll,
		UnrollFactor: opts.UnrollFactor,
		CopyShape:    opts.CopyShape.String(),
		AllowMoves:   m.AllowMoves,
		CommLatency:  m.CommLatency,
		SkipVerify:   opts.SkipVerify,
		Effort:       opts.Sched.Effort.String(),
	}
}
