// Command vliwd is the long-running compilation daemon: an HTTP/JSON
// service (internal/service) over the vliwq pipeline, backed by the shared
// compile cache.
//
// Usage:
//
//	vliwd                          # serve on :8391, cache bounded at 64Ki entries
//	vliwd -addr 127.0.0.1:9000 -cache-entries 4096
//
// Endpoints: POST /compile, POST /batch, GET /healthz, GET /stats. Drive it
// with cmd/vliwload or curl; see the README's "Serving" quickstart.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"vliwq/internal/service"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr, nil))
}

// run serves until ctx is cancelled and returns the process exit code. When
// ready is non-nil it receives the bound address once the listener is up —
// the hook the tests (and -addr :0) use.
func run(ctx context.Context, args []string, stdout, stderr io.Writer, ready chan<- string) int {
	fs := flag.NewFlagSet("vliwd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr    = fs.String("addr", ":8391", "listen address")
		entries = fs.Int("cache-entries", 65536, "compile cache bound (0 = unbounded, negative disables caching)")
		workers = fs.Int("workers", 0, "per-batch compile workers (0 = GOMAXPROCS)")
		batch   = fs.Int("max-batch", 0, "max requests per /batch call (0 = 1024)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	srv := service.New(service.Config{
		CacheEntries: *entries,
		Workers:      *workers,
		MaxBatch:     *batch,
	})
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, "vliwd:", err)
		return 1
	}
	fmt.Fprintf(stdout, "vliwd: listening on %s\n", ln.Addr())
	if ready != nil {
		ready <- ln.Addr().String()
	}

	hs := &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 10 * time.Second}
	done := make(chan error, 1)
	go func() { done <- hs.Serve(ln) }()
	select {
	case err := <-done:
		fmt.Fprintln(stderr, "vliwd:", err)
		return 1
	case <-ctx.Done():
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(stderr, "vliwd: shutdown:", err)
		return 1
	}
	st := srv.Stats()
	fmt.Fprintf(stdout, "vliwd: served %d compile + %d batch requests (%d cache hits), shutting down\n",
		st.CompileRequests, st.BatchRequests, st.Cache.Hits)
	return 0
}
