// Command vliwd is the long-running compilation daemon: an HTTP/JSON
// service (internal/service) over the vliwq pipeline, backed by the shared
// compile cache.
//
// Usage:
//
//	vliwd                          # serve on :8391, cache bounded at 64Ki entries
//	vliwd -addr 127.0.0.1:9000 -cache-entries 4096
//	vliwd -cache-snapshot /var/lib/vliwd/cache.snap   # warm-start + persist
//	vliwd -max-inflight 256 -slo 50ms    # shed past 256 in flight, degrade effort past 50ms
//
// With -cache-snapshot the daemon loads the snapshot on boot (a missing
// file is a normal cold start; a corrupt one is logged and skipped) and
// persists the cache to the same path on graceful shutdown, so a restarted
// backend serves its first repeated request as a cache hit.
//
// Endpoints: POST /compile, POST /batch, GET /healthz, GET /stats. Drive it
// with cmd/vliwload or curl — directly or behind the cmd/vliwgate sharding
// gateway; see the README's "Serving" and "Scaling out" quickstarts.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"io/fs"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"vliwq/internal/service"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr, nil))
}

// run serves until ctx is cancelled and returns the process exit code. When
// ready is non-nil it receives the bound address once the listener is up —
// the hook the tests (and -addr :0) use.
func run(ctx context.Context, args []string, stdout, stderr io.Writer, ready chan<- string) int {
	flags := flag.NewFlagSet("vliwd", flag.ContinueOnError)
	flags.SetOutput(stderr)
	var (
		addr     = flags.String("addr", ":8391", "listen address")
		entries  = flags.Int("cache-entries", 65536, "compile cache bound (0 = unbounded, negative disables caching)")
		workers  = flags.Int("workers", 0, "per-batch compile workers (0 = GOMAXPROCS)")
		batch    = flags.Int("max-batch", 0, "max requests per /batch call (0 = 1024)")
		snapshot = flags.String("cache-snapshot", "", "snapshot file: warm-start the cache on boot, persist it on shutdown")
		inflight = flags.Int("max-inflight", 0, "admission bound: concurrent requests before shedding with 429 (0 disables)")
		slo      = flags.Duration("slo", 0, "compile-latency SLO target driving the effort degradation ladder (0 disables)")
		noStruct = flags.Bool("no-structural", false, "disable the structural (isomorphism-class) cache layer")
	)
	if err := flags.Parse(args); err != nil {
		return 2
	}
	if *snapshot != "" && *entries < 0 {
		fmt.Fprintln(stderr, "vliwd: -cache-snapshot needs caching enabled (-cache-entries >= 0)")
		return 2
	}
	srv := service.New(service.Config{
		CacheEntries: *entries,
		Workers:      *workers,
		MaxBatch:     *batch,
		MaxInflight:  *inflight,
		SLOTarget:    *slo,

		DisableStructural: *noStruct,
	})
	if *snapshot != "" {
		if err := warmStart(srv, *snapshot, stdout); err != nil {
			// A bad snapshot must not keep the daemon down: log and serve cold.
			fmt.Fprintln(stderr, "vliwd: cache snapshot:", err)
		}
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, "vliwd:", err)
		return 1
	}
	fmt.Fprintf(stdout, "vliwd: listening on %s\n", ln.Addr())
	if ready != nil {
		ready <- ln.Addr().String()
	}

	hs := &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 10 * time.Second}
	done := make(chan error, 1)
	go func() { done <- hs.Serve(ln) }()
	select {
	case err := <-done:
		fmt.Fprintln(stderr, "vliwd:", err)
		return 1
	case <-ctx.Done():
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(stderr, "vliwd: shutdown:", err)
		return 1
	}
	if *snapshot != "" {
		if err := saveSnapshot(srv, *snapshot, stdout); err != nil {
			fmt.Fprintln(stderr, "vliwd: cache snapshot:", err)
			return 1
		}
	}
	st := srv.Stats()
	fmt.Fprintf(stdout, "vliwd: served %d compile + %d batch requests (%d cache hits), shutting down\n",
		st.CompileRequests, st.BatchRequests, st.Cache.Hits)
	return 0
}

// warmStart loads the compile cache from path. A missing file is a normal
// cold start, not an error.
func warmStart(srv *service.Server, path string, stdout io.Writer) error {
	f, err := os.Open(path)
	if errors.Is(err, fs.ErrNotExist) {
		fmt.Fprintf(stdout, "vliwd: no cache snapshot at %s, starting cold\n", path)
		return nil
	}
	if err != nil {
		return err
	}
	defer f.Close()
	n, err := srv.LoadCache(f)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "vliwd: warm start: %d cache entries from %s\n", n, path)
	return nil
}

// saveSnapshot persists the compile cache to path via a temp file and
// rename, so a crash mid-write can never leave a truncated snapshot where
// the next boot expects a good one.
func saveSnapshot(srv *service.Server, path string, stdout io.Writer) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	n, err := srv.SaveCache(tmp)
	if err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "vliwd: saved %d cache entries to %s\n", n, path)
	return nil
}
