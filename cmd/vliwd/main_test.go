package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"vliwq"
	"vliwq/internal/corpus"
	"vliwq/internal/service"
)

// TestRunServesAndShutsDown boots the daemon on an ephemeral port, drives
// one compile through it, and checks the graceful-shutdown path.
func TestRunServesAndShutsDown(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ready := make(chan string, 1)
	var stdout, stderr bytes.Buffer
	done := make(chan int, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0"}, &stdout, &stderr, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case <-time.After(10 * time.Second):
		t.Fatalf("daemon never became ready; stderr: %s", stderr.String())
	}

	base := "http://" + addr
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}

	body, _ := json.Marshal(service.CompileRequest{
		Loop:    vliwq.FormatLoop(corpus.KernelByName("daxpy")),
		Machine: "clustered:4",
	})
	resp, err = http.Post(base+"/compile", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var cr service.CompileResponse
	err = json.NewDecoder(resp.Body).Decode(&cr)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("compile: status %d, err %v", resp.StatusCode, err)
	}
	if cr.Loop != "daxpy" || cr.II < 1 {
		t.Fatalf("compile response: %+v", cr)
	}

	cancel()
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("exit code %d; stderr: %s", code, stderr.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not shut down")
	}
	if !strings.Contains(stdout.String(), "listening on") || !strings.Contains(stdout.String(), "shutting down") {
		t.Fatalf("stdout missing lifecycle lines:\n%s", stdout.String())
	}
}

func TestRunBadFlags(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(context.Background(), []string{"-bogus"}, &stdout, &stderr, nil); code != 2 {
		t.Fatalf("bad flag exit code %d, want 2", code)
	}
	if code := run(context.Background(), []string{"-addr", "256.0.0.1:bad"}, &stdout, &stderr, nil); code != 1 {
		t.Fatalf("bad addr exit code %d, want 1", code)
	}
	if code := run(context.Background(), []string{"-cache-snapshot", "x", "-cache-entries", "-1"}, &stdout, &stderr, nil); code != 2 {
		t.Fatalf("snapshot without caching exit code %d, want 2", code)
	}
}

// bootDaemon starts run() with args, waits for the listener, and returns
// the base URL plus a shutdown func that asserts a clean exit.
func bootDaemon(t *testing.T, args []string, stdout, stderr *bytes.Buffer) (string, func()) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan string, 1)
	done := make(chan int, 1)
	go func() { done <- run(ctx, args, stdout, stderr, ready) }()
	var addr string
	select {
	case addr = <-ready:
	case <-time.After(10 * time.Second):
		cancel()
		t.Fatalf("daemon never became ready; stderr: %s", stderr.String())
	}
	return "http://" + addr, func() {
		cancel()
		select {
		case code := <-done:
			if code != 0 {
				t.Fatalf("exit code %d; stderr: %s", code, stderr.String())
			}
		case <-time.After(10 * time.Second):
			t.Fatal("daemon did not shut down")
		}
	}
}

func compileDaxpy(t *testing.T, base string) service.CompileResponse {
	t.Helper()
	body, _ := json.Marshal(service.CompileRequest{
		Loop:    vliwq.FormatLoop(corpus.KernelByName("daxpy")),
		Machine: "clustered:4",
	})
	resp, err := http.Post(base+"/compile", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var cr service.CompileResponse
	err = json.NewDecoder(resp.Body).Decode(&cr)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("compile: status %d, err %v", resp.StatusCode, err)
	}
	return cr
}

// TestRunSnapshotWarmRestart is the daemon-level persistence contract: a
// compile served before shutdown is persisted via -cache-snapshot, and a
// second daemon booting from the same path serves the repeated request as
// a cache hit without running the pipeline.
func TestRunSnapshotWarmRestart(t *testing.T) {
	snap := t.TempDir() + "/cache.snap"
	args := []string{"-addr", "127.0.0.1:0", "-cache-snapshot", snap}

	var stdout1, stderr1 bytes.Buffer
	base, shutdown := bootDaemon(t, args, &stdout1, &stderr1)
	first := compileDaxpy(t, base)
	shutdown()
	if !strings.Contains(stdout1.String(), "starting cold") ||
		!strings.Contains(stdout1.String(), "saved 1 cache entries") {
		t.Fatalf("first run missing snapshot lifecycle lines:\n%s", stdout1.String())
	}

	var stdout2, stderr2 bytes.Buffer
	base2, shutdown2 := bootDaemon(t, args, &stdout2, &stderr2)
	second := compileDaxpy(t, base2)
	if first != second {
		t.Fatalf("warm-restarted response differs:\n%+v\nvs\n%+v", second, first)
	}
	resp, err := http.Get(base2 + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st service.StatsResponse
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if st.Cache.Hits < 1 || st.Sched.Compiles != 0 {
		t.Fatalf("warm restart served hits=%d compiles=%d, want a hit and zero compiles", st.Cache.Hits, st.Sched.Compiles)
	}
	shutdown2()
	if !strings.Contains(stdout2.String(), "warm start: 1 cache entries") {
		t.Fatalf("second run missing warm-start line:\n%s", stdout2.String())
	}
}
