package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"vliwq"
	"vliwq/internal/corpus"
	"vliwq/internal/service"
)

// TestRunServesAndShutsDown boots the daemon on an ephemeral port, drives
// one compile through it, and checks the graceful-shutdown path.
func TestRunServesAndShutsDown(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ready := make(chan string, 1)
	var stdout, stderr bytes.Buffer
	done := make(chan int, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0"}, &stdout, &stderr, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case <-time.After(10 * time.Second):
		t.Fatalf("daemon never became ready; stderr: %s", stderr.String())
	}

	base := "http://" + addr
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}

	body, _ := json.Marshal(service.CompileRequest{
		Loop:    vliwq.FormatLoop(corpus.KernelByName("daxpy")),
		Machine: "clustered:4",
	})
	resp, err = http.Post(base+"/compile", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var cr service.CompileResponse
	err = json.NewDecoder(resp.Body).Decode(&cr)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("compile: status %d, err %v", resp.StatusCode, err)
	}
	if cr.Loop != "daxpy" || cr.II < 1 {
		t.Fatalf("compile response: %+v", cr)
	}

	cancel()
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("exit code %d; stderr: %s", code, stderr.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not shut down")
	}
	if !strings.Contains(stdout.String(), "listening on") || !strings.Contains(stdout.String(), "shutting down") {
		t.Fatalf("stdout missing lifecycle lines:\n%s", stdout.String())
	}
}

func TestRunBadFlags(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(context.Background(), []string{"-bogus"}, &stdout, &stderr, nil); code != 2 {
		t.Fatalf("bad flag exit code %d, want 2", code)
	}
	if code := run(context.Background(), []string{"-addr", "256.0.0.1:bad"}, &stdout, &stderr, nil); code != 1 {
		t.Fatalf("bad addr exit code %d, want 1", code)
	}
}
