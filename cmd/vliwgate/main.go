// Command vliwgate is the cache-aware sharding gateway: it fronts N vliwd
// backends and routes every compile request by a stable hash of its
// canonical key, so identical requests always land on the backend whose
// cache already holds them (internal/gateway documents the routing rule
// and its relation to the paper's ring partitioning).
//
// Usage:
//
//	vliwgate -backends http://10.0.0.1:8391,http://10.0.0.2:8391
//	vliwgate -addr :8390 -backends ... -retries 2
//
// Endpoints mirror vliwd: POST /compile and /batch are routed, GET
// /healthz probes every backend, GET /stats aggregates fleet counters.
// Drive it exactly like a single vliwd — cmd/vliwload reports per-backend
// distribution when pointed at a gateway.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"vliwq/internal/gateway"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr, nil))
}

// run serves until ctx is cancelled and returns the process exit code. When
// ready is non-nil it receives the bound address once the listener is up —
// the hook the tests (and -addr :0) use.
func run(ctx context.Context, args []string, stdout, stderr io.Writer, ready chan<- string) int {
	fs := flag.NewFlagSet("vliwgate", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr     = fs.String("addr", ":8390", "listen address")
		backends = fs.String("backends", "", "comma-separated vliwd base URLs, in ring order (required)")
		retries  = fs.Int("retries", 0, "ring-adjacent failover attempts per request (0 = 1, negative disables)")
		timeout  = fs.Duration("timeout", 60*time.Second, "per-backend-request timeout")

		breakerThreshold = fs.Int("breaker-threshold", 0, "consecutive failures opening a backend's circuit breaker (0 = 5, negative disables)")
		breakerCooldown  = fs.Duration("breaker-cooldown", 0, "open-breaker cooldown before a half-open trial (0 = 2s)")
		probeInterval    = fs.Duration("probe-interval", time.Second, "background breaker-prober period (0 disables the prober)")
		probeTimeout     = fs.Duration("probe-timeout", 0, "healthz/stats fan-out bound when the request carries no deadline (0 = 5s)")
		backoffBase      = fs.Duration("backoff", 0, "first inter-hop failover backoff, doubled with jitter per hop (0 = 10ms, negative disables)")
		backoffMax       = fs.Duration("backoff-max", 0, "inter-hop backoff cap (0 = 250ms)")
		hedge            = fs.Bool("hedge", false, "hedge /compile on the ring neighbour after the observed p99 latency")
		hedgeMinDelay    = fs.Duration("hedge-min-delay", 0, "floor for the hedge delay (0 = 10ms)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	var urls []string
	for _, u := range strings.Split(*backends, ",") {
		if u = strings.TrimSuffix(strings.TrimSpace(u), "/"); u != "" {
			urls = append(urls, u)
		}
	}
	if len(urls) == 0 {
		fmt.Fprintln(stderr, "vliwgate: -backends is required (comma-separated vliwd URLs)")
		return 2
	}
	gw, err := gateway.New(gateway.Config{
		Backends:         urls,
		Retries:          *retries,
		Timeout:          *timeout,
		BreakerThreshold: *breakerThreshold,
		BreakerCooldown:  *breakerCooldown,
		ProbeTimeout:     *probeTimeout,
		BackoffBase:      *backoffBase,
		BackoffMax:       *backoffMax,
		Hedge:            *hedge,
		HedgeMinDelay:    *hedgeMinDelay,
	})
	if err != nil {
		fmt.Fprintln(stderr, "vliwgate:", err)
		return 2
	}
	if *probeInterval > 0 {
		stopProber := gw.StartProber(*probeInterval)
		defer stopProber()
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, "vliwgate:", err)
		return 1
	}
	fmt.Fprintf(stdout, "vliwgate: listening on %s, %d backends: %s\n",
		ln.Addr(), len(urls), strings.Join(urls, " "))
	if ready != nil {
		ready <- ln.Addr().String()
	}

	hs := &http.Server{Handler: gw.Handler(), ReadHeaderTimeout: 10 * time.Second}
	done := make(chan error, 1)
	go func() { done <- hs.Serve(ln) }()
	select {
	case err := <-done:
		fmt.Fprintln(stderr, "vliwgate:", err)
		return 1
	case <-ctx.Done():
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(stderr, "vliwgate: shutdown:", err)
		return 1
	}
	st := gw.Stats(context.Background())
	fmt.Fprintf(stdout, "vliwgate: routed %d compile + %d batch requests across %d backends, shutting down\n",
		st.CompileRequests, st.BatchRequests, st.BackendCount)
	return 0
}
