package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"vliwq"
	"vliwq/internal/corpus"
	"vliwq/internal/gateway"
	"vliwq/internal/service"
)

// TestRunRoutesAndShutsDown boots two in-process backends and the gateway
// daemon on an ephemeral port, drives a compile through it, checks the
// aggregated stats shape, and exercises the graceful-shutdown path.
func TestRunRoutesAndShutsDown(t *testing.T) {
	b1 := httptest.NewServer(service.New(service.Config{}).Handler())
	defer b1.Close()
	b2 := httptest.NewServer(service.New(service.Config{}).Handler())
	defer b2.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ready := make(chan string, 1)
	var stdout, stderr bytes.Buffer
	done := make(chan int, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-backends", b1.URL + "," + b2.URL},
			&stdout, &stderr, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case <-time.After(10 * time.Second):
		t.Fatalf("gateway never became ready; stderr: %s", stderr.String())
	}
	base := "http://" + addr

	body, _ := json.Marshal(service.CompileRequest{
		Loop:    vliwq.FormatLoop(corpus.KernelByName("daxpy")),
		Machine: "clustered:4",
	})
	resp, err := http.Post(base+"/compile", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var cr service.CompileResponse
	err = json.NewDecoder(resp.Body).Decode(&cr)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("compile through gateway: status %d, err %v", resp.StatusCode, err)
	}
	if cr.Loop != "daxpy" || cr.II < 1 {
		t.Fatalf("compile response: %+v", cr)
	}

	resp, err = http.Get(base + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st gateway.StatsResponse
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if st.BackendCount != 2 || len(st.Backends) != 2 || st.CompileRequests != 1 {
		t.Fatalf("gateway stats: %+v", st)
	}
	if st.Backends[0].Served+st.Backends[1].Served != 1 {
		t.Fatalf("exactly one backend should have served: %+v", st.Backends)
	}

	cancel()
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("exit code %d; stderr: %s", code, stderr.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("gateway did not shut down")
	}
	if !strings.Contains(stdout.String(), "listening on") || !strings.Contains(stdout.String(), "shutting down") {
		t.Fatalf("stdout missing lifecycle lines:\n%s", stdout.String())
	}
}

func TestRunBadFlags(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(context.Background(), []string{"-bogus"}, &stdout, &stderr, nil); code != 2 {
		t.Fatalf("bad flag exit code %d, want 2", code)
	}
	if code := run(context.Background(), nil, &stdout, &stderr, nil); code != 2 {
		t.Fatalf("missing -backends exit code %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "-backends is required") {
		t.Fatalf("stderr missing the -backends hint:\n%s", stderr.String())
	}
	if code := run(context.Background(), []string{"-backends", "http://x", "-addr", "256.0.0.1:bad"}, &stdout, &stderr, nil); code != 1 {
		t.Fatalf("bad addr exit code %d, want 1", code)
	}
}
