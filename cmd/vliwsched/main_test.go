package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

func golden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("output differs from %s:\n--- got ---\n%s--- want ---\n%s", path, got, want)
	}
}

func TestRunKernelGolden(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-kernel", "daxpy", "-machine", "clustered:4"}, strings.NewReader(""), &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code %d, stderr: %s", code, stderr.String())
	}
	golden(t, "daxpy_clustered4", stdout.Bytes())
}

func TestRunStdinLoopGolden(t *testing.T) {
	const loop = `
loop fir2
trip 100
op c0 load
op x0 load
op c1 load
op x1 load
op m0 mul c0 x0
op m1 mul c1 x1
op s  add m0 m1
op st store s
`
	var stdout, stderr bytes.Buffer
	code := run([]string{"-machine", "single:6", "-unroll"}, strings.NewReader(loop), &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code %d, stderr: %s", code, stderr.String())
	}
	golden(t, "fir2_single6_unroll", stdout.Bytes())
}

// TestRunEffortPortfolio: -effort exhaustive races the strategy catalogue
// and reports the winner; the default fast path must not print that line
// (that is what keeps the goldens above stable).
func TestRunEffortPortfolio(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-kernel", "daxpy", "-machine", "clustered:4", "-effort", "exhaustive"},
		strings.NewReader(""), &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code %d, stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "portfolio: 5 strategies raced") {
		t.Fatalf("missing portfolio line:\n%s", stdout.String())
	}
}

// TestRunEffortOptimal: -effort optimal answers the "is this schedule
// optimal?" question in the report — the certificate line carries the
// proved lower bound. Other efforts must not print it.
func TestRunEffortOptimal(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-kernel", "daxpy", "-machine", "clustered:4", "-effort", "optimal"},
		strings.NewReader(""), &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code %d, stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "optimal: lower-bound=") {
		t.Fatalf("missing certificate line:\n%s", stdout.String())
	}
}

// TestRunDumpAfter drives the staged pipeline (-dump-after → RunUntil)
// through every cutoff: the unroll and copies artifacts must come back in
// the loop text format (re-parseable), the schedule dump must carry the
// kernel table, and an unknown stage fails with the sorted stage list.
func TestRunDumpAfter(t *testing.T) {
	base := []string{"-kernel", "daxpy", "-machine", "clustered:4", "-unroll"}
	run1 := func(args ...string) (int, string, string) {
		var stdout, stderr bytes.Buffer
		code := run(append(append([]string{}, base...), args...), strings.NewReader(""), &stdout, &stderr)
		return code, stdout.String(), stderr.String()
	}

	code, out, errOut := run1("-dump-after", "unroll")
	if code != 0 {
		t.Fatalf("dump-after unroll: exit %d, stderr %s", code, errOut)
	}
	if !strings.Contains(out, "# after unroll on clustered:4") || !strings.Contains(out, "loop daxpy") {
		t.Fatalf("unroll dump not in loop text format:\n%s", out)
	}
	if strings.Contains(out, "II=") {
		t.Fatalf("unroll dump ran the scheduler:\n%s", out)
	}

	code, out, _ = run1("-dump-after", "copies")
	if code != 0 || !strings.Contains(out, "after copy insertion") || !strings.Contains(out, "copy") {
		t.Fatalf("copies dump (exit %d):\n%s", code, out)
	}

	code, out, _ = run1("-dump-after", "schedule")
	if code != 0 || !strings.Contains(out, "II=") || !strings.Contains(out, "cycle  0 |") {
		t.Fatalf("schedule dump (exit %d):\n%s", code, out)
	}

	code, out, _ = run1("-dump-after", "alloc")
	if code != 0 || !strings.Contains(out, "queues") {
		t.Fatalf("alloc dump (exit %d):\n%s", code, out)
	}

	code, _, errOut = run1("-dump-after", "parse")
	if code == 0 || !strings.Contains(errOut, "unknown stage \"parse\" (valid: alloc, copies, schedule, unroll, verify)") {
		t.Fatalf("unknown stage: exit %d, stderr %s", code, errOut)
	}
}

func TestRunListKernels(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, strings.NewReader(""), &stdout, &stderr); code != 0 {
		t.Fatalf("exit code %d", code)
	}
	for _, k := range []string{"daxpy", "ddot"} {
		if !strings.Contains(stdout.String(), k) {
			t.Fatalf("-list output missing %q:\n%s", k, stdout.String())
		}
	}
}

func TestRunDotOutput(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-kernel", "daxpy", "-dot"}, strings.NewReader(""), &stdout, &stderr); code != 0 {
		t.Fatalf("exit code %d", code)
	}
	if !strings.Contains(stdout.String(), "digraph") {
		t.Fatalf("-dot output is not DOT:\n%s", stdout.String())
	}
}

func TestRunErrors(t *testing.T) {
	tests := []struct {
		name      string
		args      []string
		stdin     string
		stderrHas string
	}{
		{"unknown kernel", []string{"-kernel", "nosuch"}, "", `unknown kernel "nosuch"`},
		{"bad machine", []string{"-kernel", "daxpy", "-machine", "mesh:4"}, "", "unknown machine kind"},
		{"bad machine size", []string{"-kernel", "daxpy", "-machine", "single:zero"}, "", "bad machine size"},
		{"unparsable stdin", []string{}, "op nope unknownkind", "vliwsched:"},
		{"bad effort", []string{"-kernel", "daxpy", "-effort", "sluggish"}, "", "unknown effort \"sluggish\" (valid: balanced, exhaustive, fast, optimal)"},
		{"unknown flag", []string{"-zap"}, "", "flag provided but not defined"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			code := run(tt.args, strings.NewReader(tt.stdin), &stdout, &stderr)
			if code == 0 {
				t.Fatalf("run(%v) exited 0", tt.args)
			}
			if !strings.Contains(stderr.String(), tt.stderrHas) {
				t.Fatalf("stderr %q does not contain %q", stderr.String(), tt.stderrHas)
			}
		})
	}
}

// TestRunFromTraceGolden locks in the whole-program mode: the checked-in
// kernel trace scheduled end to end on clustered:4, with the hard region
// (L2) compiled at effort optimal and the merged schedule verified.
func TestRunFromTraceGolden(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-from-trace", "../../internal/frontend/testdata/kernel.trace", "-machine", "clustered:4"},
		strings.NewReader(""), &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code %d, stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "region L2 [hard, effort=optimal]") {
		t.Fatalf("L2 not scheduled through the certified tier:\n%s", out)
	}
	if !strings.Contains(out, "verified: every region's pipelined execution matches sequential reference") {
		t.Fatalf("missing verification line:\n%s", out)
	}
	golden(t, "kernelmix_clustered4", stdout.Bytes())
}

// TestRunFromTraceErrors: trace-mode failures exit non-zero with a
// diagnostic.
func TestRunFromTraceErrors(t *testing.T) {
	tests := []struct {
		name      string
		args      []string
		stderrHas string
	}{
		{"missing file", []string{"-from-trace", "testdata/nope.trace"}, "no such file"},
		{"bad machine", []string{"-from-trace", "../../internal/frontend/testdata/kernel.trace", "-machine", "hex:9"}, "machine"},
		{"bad effort", []string{"-from-trace", "../../internal/frontend/testdata/kernel.trace", "-effort", "wat"}, "effort"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if code := run(tt.args, strings.NewReader(""), &stdout, &stderr); code == 0 {
				t.Fatalf("run(%v) exited 0", tt.args)
			}
			if !strings.Contains(stderr.String(), tt.stderrHas) {
				t.Fatalf("stderr %q does not contain %q", stderr.String(), tt.stderrHas)
			}
		})
	}
}
