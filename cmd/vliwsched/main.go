// Command vliwsched compiles one innermost loop for a (possibly clustered)
// queue-register-file VLIW machine and prints the modulo schedule, the
// queue allocation and the headline metrics. The result is verified by
// cycle-accurate simulation against sequential execution unless -noverify
// is given.
//
// Usage:
//
//	vliwsched -kernel daxpy -machine clustered:4
//	vliwsched -machine single:6 -unroll loop.txt
//	vliwsched -dot loop.txt > ddg.dot
//
// The loop file format is documented in internal/ir (op/carried/mem/order
// directives); -kernel selects one of the built-in scientific kernels.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"vliwq"
	"vliwq/internal/copyins"
	"vliwq/internal/corpus"
	"vliwq/internal/ir"
	"vliwq/internal/sched"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("vliwsched", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		machineSpec = fs.String("machine", "single:6", "target machine: single:<fus> or clustered:<clusters>")
		kernel      = fs.String("kernel", "", "compile a built-in kernel instead of a file (see -list)")
		list        = fs.Bool("list", false, "list built-in kernels and exit")
		doUnroll    = fs.Bool("unroll", false, "apply automatic loop unrolling")
		factor      = fs.Int("factor", 0, "force a specific unroll factor (>= 2)")
		shape       = fs.String("shape", "tree", "copy fanout shape: tree or chain")
		noVerify    = fs.Bool("noverify", false, "skip simulator verification")
		dot         = fs.Bool("dot", false, "print the dependence graph in DOT format and exit")
		showKernel  = fs.Bool("schedule", true, "print the kernel schedule table")
		emit        = fs.Bool("emit", false, "emit the complete pipelined program (prologue/kernel/epilogue)")
		moves       = fs.Bool("moves", false, "enable the move-operation extension on clustered machines")
		commLat     = fs.Int("commlat", 0, "inter-cluster communication latency in cycles")
		effort      = fs.String("effort", "fast", "scheduler effort: fast, balanced or exhaustive (races partition strategies)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	fail := func(err error) int {
		fmt.Fprintln(stderr, "vliwsched:", err)
		return 1
	}

	if *list {
		for _, k := range corpus.Kernels() {
			fmt.Fprintf(stdout, "%-12s %2d ops, trip %d\n", k.Name, len(k.Ops), k.TripCount())
		}
		return 0
	}

	loop, err := loadLoop(*kernel, fs.Arg(0), stdin)
	if err != nil {
		return fail(err)
	}
	if *dot {
		if err := ir.WriteDot(stdout, loop); err != nil {
			return fail(err)
		}
		return 0
	}

	cfg, err := vliwq.ParseMachine(*machineSpec)
	if err != nil {
		return fail(err)
	}
	cfg.AllowMoves = *moves
	cfg.CommLatency = *commLat
	eff, err := vliwq.ParseEffort(*effort)
	if err != nil {
		return fail(err)
	}

	opts := vliwq.Options{
		Machine:      cfg,
		Unroll:       *doUnroll,
		UnrollFactor: *factor,
		SkipVerify:   *noVerify,
	}
	opts.Sched.Effort = eff
	if *shape == "chain" {
		opts.CopyShape = copyins.Chain
	}
	res, err := vliwq.Compile(loop, opts)
	if err != nil {
		return fail(err)
	}
	fmt.Fprint(stdout, res.Report())
	if !*noVerify {
		fmt.Fprintln(stdout, "  verified: pipelined execution matches sequential reference")
	}
	if *showKernel {
		fmt.Fprintln(stdout, "\nkernel (cycle mod II, per cluster; op@issue-cycle):")
		fmt.Fprint(stdout, res.KernelSchedule())
	}
	fmt.Fprintln(stdout, "\nqueue allocation:")
	for _, f := range res.Alloc.Files {
		fmt.Fprintf(stdout, "  %-12v %d queues, depths %v\n", f.Loc, f.Queues, f.MaxOccupancy)
	}
	if *emit {
		fmt.Fprintln(stdout, "\npipelined program:")
		if err := sched.EmitPipelined(stdout, res.Sched); err != nil {
			return fail(err)
		}
	}
	return 0
}

func loadLoop(kernel, path string, stdin io.Reader) (*vliwq.Loop, error) {
	if kernel != "" {
		l := corpus.KernelByName(kernel)
		if l == nil {
			return nil, fmt.Errorf("unknown kernel %q (use -list)", kernel)
		}
		return l, nil
	}
	if path == "" || path == "-" {
		return vliwq.ReadLoop(stdin)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return vliwq.ReadLoop(f)
}
