// Command vliwsched compiles one innermost loop for a (possibly clustered)
// queue-register-file VLIW machine and prints the modulo schedule, the
// queue allocation and the headline metrics. The result is verified by
// cycle-accurate simulation against sequential execution unless -noverify
// is given.
//
// Usage:
//
//	vliwsched -kernel daxpy -machine clustered:4
//	vliwsched -machine single:6 -unroll loop.txt
//	vliwsched -dot loop.txt > ddg.dot
//
// The loop file format is documented in internal/ir (op/carried/mem/order
// directives); -kernel selects one of the built-in scientific kernels.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"vliwq"
	"vliwq/internal/copyins"
	"vliwq/internal/corpus"
	"vliwq/internal/ir"
	"vliwq/internal/sched"
)

func main() {
	var (
		machineSpec = flag.String("machine", "single:6", "target machine: single:<fus> or clustered:<clusters>")
		kernel      = flag.String("kernel", "", "compile a built-in kernel instead of a file (see -list)")
		list        = flag.Bool("list", false, "list built-in kernels and exit")
		doUnroll    = flag.Bool("unroll", false, "apply automatic loop unrolling")
		factor      = flag.Int("factor", 0, "force a specific unroll factor (>= 2)")
		shape       = flag.String("shape", "tree", "copy fanout shape: tree or chain")
		noVerify    = flag.Bool("noverify", false, "skip simulator verification")
		dot         = flag.Bool("dot", false, "print the dependence graph in DOT format and exit")
		showKernel  = flag.Bool("schedule", true, "print the kernel schedule table")
		emit        = flag.Bool("emit", false, "emit the complete pipelined program (prologue/kernel/epilogue)")
		moves       = flag.Bool("moves", false, "enable the move-operation extension on clustered machines")
		commLat     = flag.Int("commlat", 0, "inter-cluster communication latency in cycles")
	)
	flag.Parse()

	if *list {
		for _, k := range corpus.Kernels() {
			fmt.Printf("%-12s %2d ops, trip %d\n", k.Name, len(k.Ops), k.TripCount())
		}
		return
	}

	loop, err := loadLoop(*kernel, flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	if *dot {
		if err := ir.WriteDot(os.Stdout, loop); err != nil {
			fatal(err)
		}
		return
	}

	cfg, err := parseMachine(*machineSpec)
	if err != nil {
		fatal(err)
	}
	cfg.AllowMoves = *moves
	cfg.CommLatency = *commLat

	opts := vliwq.Options{
		Machine:      cfg,
		Unroll:       *doUnroll,
		UnrollFactor: *factor,
		SkipVerify:   *noVerify,
	}
	if *shape == "chain" {
		opts.CopyShape = copyins.Chain
	}
	res, err := vliwq.Compile(loop, opts)
	if err != nil {
		fatal(err)
	}
	fmt.Print(res.Report())
	if !*noVerify {
		fmt.Println("  verified: pipelined execution matches sequential reference")
	}
	if *showKernel {
		fmt.Println("\nkernel (cycle mod II, per cluster; op@issue-cycle):")
		fmt.Print(res.KernelSchedule())
	}
	fmt.Println("\nqueue allocation:")
	for _, f := range res.Alloc.Files {
		fmt.Printf("  %-12v %d queues, depths %v\n", f.Loc, f.Queues, f.MaxOccupancy)
	}
	if *emit {
		fmt.Println("\npipelined program:")
		if err := sched.EmitPipelined(os.Stdout, res.Sched); err != nil {
			fatal(err)
		}
	}
}

func loadLoop(kernel, path string) (*vliwq.Loop, error) {
	if kernel != "" {
		l := corpus.KernelByName(kernel)
		if l == nil {
			return nil, fmt.Errorf("unknown kernel %q (use -list)", kernel)
		}
		return l, nil
	}
	if path == "" || path == "-" {
		return vliwq.ReadLoop(os.Stdin)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return vliwq.ReadLoop(f)
}

func parseMachine(spec string) (vliwq.Machine, error) {
	kind, arg, ok := strings.Cut(spec, ":")
	if !ok {
		return vliwq.Machine{}, fmt.Errorf("bad machine spec %q (want single:<n> or clustered:<n>)", spec)
	}
	n, err := strconv.Atoi(arg)
	if err != nil || n < 1 {
		return vliwq.Machine{}, fmt.Errorf("bad machine size %q", arg)
	}
	switch kind {
	case "single":
		return vliwq.SingleCluster(n), nil
	case "clustered":
		return vliwq.Clustered(n), nil
	}
	return vliwq.Machine{}, fmt.Errorf("unknown machine kind %q", kind)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vliwsched:", err)
	os.Exit(1)
}
