// Command vliwsched compiles one innermost loop for a (possibly clustered)
// queue-register-file VLIW machine and prints the modulo schedule, the
// queue allocation and the headline metrics. The result is verified by
// cycle-accurate simulation against sequential execution unless -noverify
// is given.
//
// Usage:
//
//	vliwsched -kernel daxpy -machine clustered:4
//	vliwsched -machine single:6 -unroll loop.txt
//	vliwsched -dump-after unroll -unroll loop.txt   # stop early, print the artifact
//	vliwsched -dot loop.txt > ddg.dot
//
// The loop file format is documented in internal/ir (op/carried/mem/order
// directives); -kernel selects one of the built-in scientific kernels.
// -dump-after runs the staged pipeline (vliwq.Compiler.RunUntil) only
// through the named stage and prints that stage's artifact: the unrolled
// body, the post-copy-insertion dependence graph, or the raw schedule.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"vliwq"
	"vliwq/internal/copyins"
	"vliwq/internal/corpus"
	"vliwq/internal/frontend"
	"vliwq/internal/ir"
	"vliwq/internal/program"
	"vliwq/internal/sched"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("vliwsched", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		machineSpec = fs.String("machine", "single:6", "target machine: single:<fus> or clustered:<clusters>")
		kernel      = fs.String("kernel", "", "compile a built-in kernel instead of a file (see -list)")
		list        = fs.Bool("list", false, "list built-in kernels and exit")
		doUnroll    = fs.Bool("unroll", false, "apply automatic loop unrolling")
		factor      = fs.Int("factor", 0, "force a specific unroll factor (>= 2)")
		shape       = fs.String("shape", "tree", "copy fanout shape: tree or chain")
		noVerify    = fs.Bool("noverify", false, "skip simulator verification")
		dot         = fs.Bool("dot", false, "print the dependence graph in DOT format and exit")
		showKernel  = fs.Bool("schedule", true, "print the kernel schedule table")
		emit        = fs.Bool("emit", false, "emit the complete pipelined program (prologue/kernel/epilogue)")
		moves       = fs.Bool("moves", false, "enable the move-operation extension on clustered machines")
		commLat     = fs.Int("commlat", 0, "inter-cluster communication latency in cycles")
		effort      = fs.String("effort", "fast", "scheduler effort: fast, balanced, exhaustive (races partition strategies) or optimal (adds a branch-and-bound optimality certificate)")
		dumpAfter   = fs.String("dump-after", "", "stop after a pipeline stage and print its artifact: "+strings.Join(vliwq.StageNames(), ", "))
		fromTrace   = fs.String("from-trace", "", "schedule a whole RISC instruction trace (every recovered loop region) instead of one loop")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	fail := func(err error) int {
		fmt.Fprintln(stderr, "vliwsched:", err)
		return 1
	}

	if *fromTrace != "" {
		// Whole-program mode: lift every region and schedule the program
		// through internal/program. -effort selects the hard-region tier
		// when given explicitly; the default keeps program's certified
		// default (hard regions compile at effort optimal).
		hardEffort := ""
		fs.Visit(func(f *flag.Flag) {
			if f.Name == "effort" {
				hardEffort = *effort
			}
		})
		return runTrace(*fromTrace, *machineSpec, hardEffort, *noVerify, stdout, fail)
	}

	if *list {
		for _, k := range corpus.Kernels() {
			fmt.Fprintf(stdout, "%-12s %2d ops, trip %d\n", k.Name, len(k.Ops), k.TripCount())
		}
		return 0
	}

	loop, err := loadLoop(*kernel, fs.Arg(0), stdin)
	if err != nil {
		return fail(err)
	}
	if *dot {
		if err := ir.WriteDot(stdout, loop); err != nil {
			return fail(err)
		}
		return 0
	}

	cfg, err := vliwq.ParseMachine(*machineSpec)
	if err != nil {
		return fail(err)
	}
	cfg.AllowMoves = *moves
	cfg.CommLatency = *commLat
	eff, err := vliwq.ParseEffort(*effort)
	if err != nil {
		return fail(err)
	}

	opts := vliwq.Options{
		Machine:      cfg,
		Unroll:       *doUnroll,
		UnrollFactor: *factor,
		SkipVerify:   *noVerify,
	}
	opts.Sched.Effort = eff
	if *shape == "chain" {
		opts.CopyShape = copyins.Chain
	}

	// -dump-after drives the request-centric staged API: the canonical
	// Request for this invocation through Compiler.RunUntil — the same
	// path vliwd serves. The full-compile path below stays on the
	// loop-first shim instead: it already holds the parsed loop, and the
	// Request's text round trip would rename anonymous ops (FormatLoop
	// must name them to reference their dependences), changing the
	// printed kernel table for kernels like fir5. Both paths run the
	// identical staged engine.
	if *dumpAfter != "" {
		stage, err := vliwq.ParseStage(*dumpAfter)
		if err != nil {
			return fail(err)
		}
		compiler := vliwq.NewCompiler(vliwq.CompilerConfig{CacheEntries: -1})
		res, err := compiler.RunUntil(context.Background(), vliwq.NewRequest(loop, opts), stage)
		if err != nil {
			return fail(err)
		}
		return dumpStage(stdout, stderr, res, stage, &cfg)
	}

	res, err := vliwq.Compile(loop, opts)
	if err != nil {
		return fail(err)
	}
	fmt.Fprint(stdout, res.Report())
	if !*noVerify {
		fmt.Fprintln(stdout, "  verified: pipelined execution matches sequential reference")
	}
	if *showKernel {
		fmt.Fprintln(stdout, "\nkernel (cycle mod II, per cluster; op@issue-cycle):")
		fmt.Fprint(stdout, res.KernelSchedule())
	}
	fmt.Fprintln(stdout, "\nqueue allocation:")
	for _, f := range res.Alloc.Files {
		fmt.Fprintf(stdout, "  %-12v %d queues, depths %v\n", f.Loc, f.Queues, f.MaxOccupancy)
	}
	if *emit {
		fmt.Fprintln(stdout, "\npipelined program:")
		if err := sched.EmitPipelined(stdout, res.Sched); err != nil {
			return fail(err)
		}
	}
	return 0
}

// runTrace schedules every loop region of a RISC trace as one program
// (DESIGN.md §15) and prints the merged, verified program schedule.
func runTrace(path, machineSpec, hardEffort string, noVerify bool, stdout io.Writer, fail func(error) int) int {
	f, err := os.Open(path)
	if err != nil {
		return fail(err)
	}
	defer f.Close()
	p, err := frontend.Parse(f)
	if err != nil {
		return fail(err)
	}
	s, err := program.ScheduleProgram(context.Background(), p, program.Options{
		Machine:    machineSpec,
		HardEffort: hardEffort,
		SkipVerify: noVerify,
	})
	if err != nil {
		return fail(err)
	}
	if err := s.Verify(); err != nil {
		return fail(err)
	}
	fmt.Fprint(stdout, s.Render())
	if !noVerify {
		fmt.Fprintln(stdout, "\nverified: every region's pipelined execution matches sequential reference")
	}
	return 0
}

// dumpStage prints the artifact the staged run stopped at: the loop body
// after unrolling or copy insertion (in the text format, ready to feed
// back into the tool), the raw schedule, the queue allocation, or — after
// a full verify run — the standard report.
func dumpStage(stdout, stderr io.Writer, res *vliwq.Result, stage vliwq.Stage, cfg *vliwq.Machine) int {
	fmt.Fprintf(stdout, "# after %s on %s\n", stage, cfg.Spec())
	switch stage {
	case vliwq.StageUnroll:
		fmt.Fprintf(stdout, "# unrolled x%d (%d ops)\n", res.Unrolled, len(res.AfterUnroll.Ops))
		fmt.Fprint(stdout, vliwq.FormatLoop(res.AfterUnroll))
	case vliwq.StageCopies:
		fmt.Fprintf(stdout, "# dependence graph after copy insertion (%d ops)\n", len(res.AfterCopies.Ops))
		fmt.Fprint(stdout, vliwq.FormatLoop(res.AfterCopies))
	case vliwq.StageSchedule:
		s := res.Sched
		fmt.Fprintf(stdout, "# II=%d (ResMII=%d RecMII=%d) strategy=%s\n", s.II, s.ResMII, s.RecMII, res.Strategy)
		fmt.Fprint(stdout, res.KernelSchedule())
	case vliwq.StageAlloc:
		fmt.Fprintf(stdout, "# queues: private<=%d per cluster, ring<=%d per link\n", res.Queues, res.RingQueues)
		for _, f := range res.Alloc.Files {
			fmt.Fprintf(stdout, "%-12v %d queues, depths %v\n", f.Loc, f.Queues, f.MaxOccupancy)
		}
	case vliwq.StageVerify:
		fmt.Fprint(stdout, res.Report())
	default:
		fmt.Fprintf(stderr, "vliwsched: no artifact for stage %s\n", stage)
		return 1
	}
	return 0
}

func loadLoop(kernel, path string, stdin io.Reader) (*vliwq.Loop, error) {
	if kernel != "" {
		l := corpus.KernelByName(kernel)
		if l == nil {
			return nil, fmt.Errorf("unknown kernel %q (use -list)", kernel)
		}
		return l, nil
	}
	if path == "" || path == "-" {
		return vliwq.ReadLoop(stdin)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return vliwq.ReadLoop(f)
}
