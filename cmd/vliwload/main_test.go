package main

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"vliwq/internal/gateway"
	"vliwq/internal/service"
)

// TestRunAgainstGateway points the tool at a vliwgate fleet and checks the
// report adds the aggregated totals and the per-backend distribution.
func TestRunAgainstGateway(t *testing.T) {
	b1 := httptest.NewServer(service.New(service.Config{}).Handler())
	defer b1.Close()
	b2 := httptest.NewServer(service.New(service.Config{}).Handler())
	defer b2.Close()
	gw, err := gateway.New(gateway.Config{Backends: []string{b1.URL, b2.URL}})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(gw.Handler())
	defer ts.Close()

	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-addr", ts.URL, "-duration", "300ms", "-concurrency", "4", "-n", "16",
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code %d\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	out := stdout.String()
	for _, frag := range []string{
		"errors: 0 ",
		"gateway: 2 backends",
		"backend " + b1.URL,
		"backend " + b2.URL,
		"structural: hits=",
		"%)", // the distribution shares
	} {
		if !strings.Contains(out, frag) {
			t.Fatalf("gateway report missing %q:\n%s", frag, out)
		}
	}
}

// TestRunAgainstService drives a real in-process service and checks the
// report: the tool must complete requests, print throughput and latency
// percentiles, and exit 0.
func TestRunAgainstService(t *testing.T) {
	srv := service.New(service.Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-addr", ts.URL, "-duration", "300ms", "-concurrency", "4", "-n", "8",
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code %d\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	out := stdout.String()
	for _, frag := range []string{"vliwload:", "throughput:", "latency: p50=", "cache hits=", "structural: hits="} {
		if !strings.Contains(out, frag) {
			t.Fatalf("report missing %q:\n%s", frag, out)
		}
	}
	if st := srv.Stats(); st.CompileRequests == 0 || st.Cache.Hits == 0 {
		t.Fatalf("server saw %d requests, %d cache hits — load never cycled the corpus", st.CompileRequests, st.Cache.Hits)
	}
}

func TestRunBatchMode(t *testing.T) {
	srv := service.New(service.Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-addr", ts.URL, "-duration", "300ms", "-concurrency", "2", "-n", "8", "-batch", "4",
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code %d\nstderr: %s", code, stderr.String())
	}
	if srv.Stats().BatchRequests == 0 {
		t.Fatal("batch mode never hit /batch")
	}
}

func TestRunFlagValidation(t *testing.T) {
	tests := [][]string{
		{"-bogus"},
		{"-concurrency", "0"},
		{"-n", "-1"},
		{"-duration", "0s"},
		{"-machine", "mesh:9"},
	}
	for _, args := range tests {
		var stdout, stderr bytes.Buffer
		if code := run(args, &stdout, &stderr); code != 2 {
			t.Errorf("run(%v) exit code %d, want 2", args, code)
		}
	}
}

// TestRunUnreachableServer must fail fast and non-zero, not hang.
func TestRunUnreachableServer(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-addr", "http://127.0.0.1:1", "-duration", "200ms", "-concurrency", "2", "-n", "4",
	}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), "no successful requests") {
		t.Fatalf("stderr: %s", stderr.String())
	}
}

// TestRunShedIsNotFailure drives a server that sheds a third of its
// traffic with 429 and checks sheds land in their own counter: the report
// still says "errors: 0", the shed count is visible, and the exit status
// stays zero — admission control is not an outage.
func TestRunShedIsNotFailure(t *testing.T) {
	var calls, shed, deadlines atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("/compile", func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		if h := r.Header.Get(service.DeadlineHeader); h != "" {
			if _, err := time.ParseDuration(h); err != nil {
				t.Errorf("unparsable %s header %q", service.DeadlineHeader, h)
			}
			deadlines.Add(1)
		}
		if calls.Add(1)%3 == 0 {
			shed.Add(1)
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"machine":"clustered:4"}`)
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{}`)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-addr", ts.URL, "-duration", "200ms", "-concurrency", "2", "-n", "4",
		"-deadline", "2s",
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("shed traffic produced exit code %d\nstdout: %s\nstderr: %s",
			code, stdout.String(), stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "errors: 0 ") {
		t.Fatalf("sheds counted as errors:\n%s", out)
	}
	if !strings.Contains(out, fmt.Sprintf("shed=%d", shed.Load())) || shed.Load() == 0 {
		t.Fatalf("report missing shed=%d:\n%s", shed.Load(), out)
	}
	if deadlines.Load() == 0 {
		t.Fatalf("-deadline never reached the server as a %s header", service.DeadlineHeader)
	}
}

// TestRunBare503IsFailure: a 503 without Retry-After is a broken backend,
// not load shedding, and must keep failing the run.
func TestRunBare503IsFailure(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/compile", func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		w.WriteHeader(http.StatusServiceUnavailable)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-addr", ts.URL, "-duration", "200ms", "-concurrency", "2", "-n", "4",
	}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("bare 503s produced exit code %d, want 1\nstdout: %s", code, stdout.String())
	}
}

// TestRunBatchSurfacesEntryErrors guards against /batch's 200-with-errors
// shape hiding a broken pipeline: a server whose entries all fail must
// produce a non-zero exit and failure counts, not a green report.
func TestRunBatchSurfacesEntryErrors(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/batch", func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"results":[{"error":"boom"},{"error":"boom"}]}`)
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{}`)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-addr", ts.URL, "-duration", "200ms", "-concurrency", "2", "-n", "4", "-batch", "2",
	}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code %d, want 1\nstdout: %s", code, stdout.String())
	}
	if !strings.Contains(stdout.String(), "(0 loops compiled)") {
		t.Fatalf("report counts failed entries as compiled:\n%s", stdout.String())
	}
	if !strings.Contains(stdout.String(), "errors: ") || strings.Contains(stdout.String(), "errors: 0 ") {
		t.Fatalf("report missing a non-zero errors line:\n%s", stdout.String())
	}
	if !strings.Contains(stderr.String(), "requests failed") {
		t.Fatalf("stderr missing the failure summary:\n%s", stderr.String())
	}
}
