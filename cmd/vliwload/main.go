// Command vliwload load-tests a running vliwd: it replays corpus loops
// against /compile (or /batch) at a fixed concurrency for a fixed duration
// and reports throughput and latency percentiles, plus the server's own
// /stats counters.
//
// Usage:
//
//	vliwload -addr http://127.0.0.1:8391 -duration 5s -concurrency 8
//	vliwload -addr http://127.0.0.1:8391 -batch 16 -machine clustered:4
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"vliwq"
	"vliwq/internal/corpus"
	"vliwq/internal/service"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("vliwload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr        = fs.String("addr", "http://127.0.0.1:8391", "vliwd base URL")
		duration    = fs.Duration("duration", 5*time.Second, "how long to drive load")
		concurrency = fs.Int("concurrency", 8, "concurrent request workers")
		n           = fs.Int("n", 64, "number of distinct corpus loops to replay")
		seed        = fs.Int64("seed", corpus.DefaultSeed, "corpus seed")
		machineSpec = fs.String("machine", "clustered:4", "machine spec sent with every request")
		batch       = fs.Int("batch", 0, "requests per /batch call (0 drives /compile)")
		unrollReq   = fs.Bool("unroll", true, "request automatic unrolling")
		verify      = fs.Bool("verify", false, "request simulator verification (heavier)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *concurrency < 1 || *n < 1 || *duration <= 0 {
		fmt.Fprintln(stderr, "vliwload: -concurrency, -n and -duration must be positive")
		return 2
	}
	if _, err := vliwq.ParseMachine(*machineSpec); err != nil {
		fmt.Fprintln(stderr, "vliwload:", err)
		return 2
	}

	bodies, err := buildBodies(*n, *seed, *machineSpec, *unrollReq, !*verify, *batch)
	if err != nil {
		fmt.Fprintln(stderr, "vliwload:", err)
		return 1
	}

	base := strings.TrimSuffix(*addr, "/")
	path := base + "/compile"
	if *batch > 0 {
		path = base + "/batch"
	}
	client := &http.Client{
		Timeout: 30 * time.Second,
		Transport: &http.Transport{
			MaxIdleConns:        *concurrency * 2,
			MaxIdleConnsPerHost: *concurrency * 2,
		},
	}

	var (
		next     atomic.Int64
		failures atomic.Int64
		loopsOK  atomic.Int64
		wg       sync.WaitGroup
		mu       sync.Mutex
		lats     []time.Duration
	)
	start := time.Now()
	deadline := start.Add(*duration)
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var mine []time.Duration
			for time.Now().Before(deadline) {
				b := bodies[int(next.Add(1))%len(bodies)]
				t0 := time.Now()
				resp, err := client.Post(path, "application/json", bytes.NewReader(b.data))
				if err != nil {
					failures.Add(1)
					continue
				}
				if resp.StatusCode != http.StatusOK {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					failures.Add(1)
					continue
				}
				// /batch answers 200 even when individual entries fail, so
				// per-entry errors count as failed loops, not green calls.
				ok, failed := countLoops(resp.Body, b.loops, *batch > 0)
				resp.Body.Close()
				loopsOK.Add(int64(ok))
				failures.Add(int64(failed))
				mine = append(mine, time.Since(t0))
			}
			mu.Lock()
			lats = append(lats, mine...)
			mu.Unlock()
		}()
	}
	wg.Wait()
	// Divide by the measured wall time, not the nominal -duration: calls in
	// flight at the deadline still finish and count.
	elapsed := time.Since(start)

	if len(lats) == 0 {
		fmt.Fprintf(stderr, "vliwload: no successful requests against %s (%d failures)\n", path, failures.Load())
		return 1
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pick := func(q float64) time.Duration { return lats[int(q*float64(len(lats)-1))] }
	fmt.Fprintf(stdout, "vliwload: %d calls (%d loops compiled) in %s, %d failures\n",
		len(lats), loopsOK.Load(), elapsed.Round(time.Millisecond), failures.Load())
	fmt.Fprintf(stdout, "throughput: %.1f calls/s (%.1f loops/s)\n",
		float64(len(lats))/elapsed.Seconds(), float64(loopsOK.Load())/elapsed.Seconds())
	fmt.Fprintf(stdout, "latency: p50=%s p90=%s p99=%s max=%s\n",
		pick(0.50).Round(time.Microsecond), pick(0.90).Round(time.Microsecond),
		pick(0.99).Round(time.Microsecond), lats[len(lats)-1].Round(time.Microsecond))

	if st, err := fetchStats(client, base); err == nil {
		fmt.Fprintf(stdout, "server: %d compiles, cache hits=%d misses=%d entries=%d\n",
			st.Sched.Compiles, st.Cache.Hits, st.Cache.Misses, st.Cache.Entries)
	} else {
		fmt.Fprintln(stderr, "vliwload: stats:", err)
	}
	if failures.Load() > 0 {
		return 1
	}
	return 0
}

// countLoops drains one response body and splits the call's loops into
// compiled vs failed. /compile bodies are all-or-nothing; /batch bodies
// are inspected entry by entry, since the endpoint answers 200 even when
// every entry carries an error.
func countLoops(r io.Reader, loops int, isBatch bool) (ok, failed int) {
	if !isBatch {
		io.Copy(io.Discard, r)
		return loops, 0
	}
	var batch service.BatchResponse
	if err := json.NewDecoder(r).Decode(&batch); err != nil {
		return 0, loops
	}
	for _, e := range batch.Results {
		if e.Error != "" || e.Response == nil {
			failed++
		} else {
			ok++
		}
	}
	return ok, failed
}

// body is one pre-marshalled request carrying the number of loops a
// successful call compiles (a trailing /batch body may be partial).
type body struct {
	data  []byte
	loops int
}

// buildBodies renders the request set: n corpus loops formatted in the text
// format, marshalled once up front so the load loop measures the server,
// not the generator.
func buildBodies(n int, seed int64, machineSpec string, unroll, skipVerify bool, batch int) ([]body, error) {
	loops := corpus.Generate(corpus.Params{Seed: seed, N: n})
	reqs := make([]service.CompileRequest, len(loops))
	for i, l := range loops {
		reqs[i] = service.CompileRequest{
			Loop:       vliwq.FormatLoop(l),
			Machine:    machineSpec,
			Unroll:     unroll,
			SkipVerify: skipVerify,
		}
	}
	if batch <= 0 {
		bodies := make([]body, len(reqs))
		for i := range reqs {
			b, err := json.Marshal(reqs[i])
			if err != nil {
				return nil, err
			}
			bodies[i] = body{data: b, loops: 1}
		}
		return bodies, nil
	}
	var bodies []body
	for i := 0; i < len(reqs); i += batch {
		j := i + batch
		if j > len(reqs) {
			j = len(reqs)
		}
		b, err := json.Marshal(service.BatchRequest{Requests: reqs[i:j]})
		if err != nil {
			return nil, err
		}
		bodies = append(bodies, body{data: b, loops: j - i})
	}
	return bodies, nil
}

func fetchStats(client *http.Client, base string) (*service.StatsResponse, error) {
	resp, err := client.Get(base + "/stats")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var st service.StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}
