// Command vliwload load-tests a running vliwd — or a vliwgate fleet: it
// replays corpus loops against /compile (or /batch) at a fixed concurrency
// for a fixed duration and reports throughput, latency percentiles and an
// error breakdown, plus the server's own /stats counters. Pointed at a
// gateway it also prints the per-backend request distribution, which is
// how CI checks the hash ring actually shards.
//
// Any failed request — transport error, non-200 status, or a failed /batch
// entry — is counted, reported on a dedicated "errors:" line, and turns
// the exit status non-zero, so e2e pipelines cannot mistake a half-broken
// run for a green one. Load shed by the server (429, or 503 carrying
// Retry-After) is not a failure: an admission-controlled backend saying
// "not now" is the system working as designed, so sheds are counted on
// their own, the advertised Retry-After is honored before the worker
// resumes, and only hard failures turn the exit status non-zero.
//
// Usage:
//
//	vliwload -addr http://127.0.0.1:8391 -duration 5s -concurrency 8
//	vliwload -addr http://127.0.0.1:8391 -batch 16 -machine clustered:4
//	vliwload -addr http://127.0.0.1:8390   # a vliwgate: adds distribution
//	vliwload -addr http://127.0.0.1:8390 -deadline 250ms   # per-request budget header
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"vliwq"
	"vliwq/internal/corpus"
	"vliwq/internal/gateway"
	"vliwq/internal/service"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("vliwload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr        = fs.String("addr", "http://127.0.0.1:8391", "vliwd base URL")
		duration    = fs.Duration("duration", 5*time.Second, "how long to drive load")
		concurrency = fs.Int("concurrency", 8, "concurrent request workers")
		n           = fs.Int("n", 64, "number of distinct corpus loops to replay")
		seed        = fs.Int64("seed", corpus.DefaultSeed, "corpus seed")
		machineSpec = fs.String("machine", "clustered:4", "machine spec sent with every request")
		batch       = fs.Int("batch", 0, "requests per /batch call (0 drives /compile)")
		unrollReq   = fs.Bool("unroll", true, "request automatic unrolling")
		verify      = fs.Bool("verify", false, "request simulator verification (heavier)")
		effort      = fs.String("effort", "", "scheduler effort sent with every request (empty = server default)")
		reqBudget   = fs.Duration("deadline", 0, "per-request deadline sent in the "+service.DeadlineHeader+" header (0 = none)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *concurrency < 1 || *n < 1 || *duration <= 0 {
		fmt.Fprintln(stderr, "vliwload: -concurrency, -n and -duration must be positive")
		return 2
	}
	if *reqBudget < 0 {
		fmt.Fprintln(stderr, "vliwload: -deadline must be non-negative")
		return 2
	}
	if _, err := vliwq.ParseMachine(*machineSpec); err != nil {
		fmt.Fprintln(stderr, "vliwload:", err)
		return 2
	}
	if _, err := vliwq.ParseEffort(*effort); err != nil {
		fmt.Fprintln(stderr, "vliwload:", err)
		return 2
	}

	bodies, err := buildBodies(*n, *seed, *machineSpec, *effort, *unrollReq, !*verify, *batch)
	if err != nil {
		fmt.Fprintln(stderr, "vliwload:", err)
		return 1
	}

	base := strings.TrimSuffix(*addr, "/")
	path := base + "/compile"
	if *batch > 0 {
		path = base + "/batch"
	}
	client := &http.Client{
		Timeout: 30 * time.Second,
		Transport: &http.Transport{
			MaxIdleConns:        *concurrency * 2,
			MaxIdleConnsPerHost: *concurrency * 2,
		},
	}

	var (
		next      atomic.Int64
		transport atomic.Int64 // connection/timeout errors
		httpBad   atomic.Int64 // non-200 statuses other than shed answers
		entryBad  atomic.Int64 // failed /batch entries inside 200 answers
		shed      atomic.Int64 // 429 / Retry-After 503: admission control, not failure
		loopsOK   atomic.Int64
		wg        sync.WaitGroup
		mu        sync.Mutex
		lats      []time.Duration
	)
	failed := func() int64 { return transport.Load() + httpBad.Load() + entryBad.Load() }
	start := time.Now()
	deadline := start.Add(*duration)
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var mine []time.Duration
			for time.Now().Before(deadline) {
				b := bodies[int(next.Add(1))%len(bodies)]
				t0 := time.Now()
				resp, err := post(client, path, b.data, *reqBudget)
				if err != nil {
					transport.Add(1)
					continue
				}
				if wait, isShed := shedDelay(resp); isShed {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					shed.Add(1)
					if until := time.Until(deadline); wait > until {
						wait = until
					}
					if wait > 0 {
						time.Sleep(wait)
					}
					continue
				}
				if resp.StatusCode != http.StatusOK {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					httpBad.Add(1)
					continue
				}
				// /batch answers 200 even when individual entries fail, so
				// per-entry errors count as failed loops, not green calls.
				ok, bad := countLoops(resp.Body, b.loops, *batch > 0)
				resp.Body.Close()
				loopsOK.Add(int64(ok))
				entryBad.Add(int64(bad))
				mine = append(mine, time.Since(t0))
			}
			mu.Lock()
			lats = append(lats, mine...)
			mu.Unlock()
		}()
	}
	wg.Wait()
	// Divide by the measured wall time, not the nominal -duration: calls in
	// flight at the deadline still finish and count.
	elapsed := time.Since(start)

	if len(lats) == 0 {
		fmt.Fprintf(stderr, "vliwload: no successful requests against %s (%d failures, %d shed)\n",
			path, failed(), shed.Load())
		return 1
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pick := func(q float64) time.Duration { return lats[int(q*float64(len(lats)-1))] }
	fmt.Fprintf(stdout, "vliwload: %d calls (%d loops compiled) in %s, %d failures\n",
		len(lats), loopsOK.Load(), elapsed.Round(time.Millisecond), failed())
	fmt.Fprintf(stdout, "throughput: %.1f calls/s (%.1f loops/s)\n",
		float64(len(lats))/elapsed.Seconds(), float64(loopsOK.Load())/elapsed.Seconds())
	fmt.Fprintf(stdout, "latency: p50=%s p90=%s p99=%s max=%s\n",
		pick(0.50).Round(time.Microsecond), pick(0.90).Round(time.Microsecond),
		pick(0.99).Round(time.Microsecond), lats[len(lats)-1].Round(time.Microsecond))
	fmt.Fprintf(stdout, "errors: %d (transport=%d http=%d entries=%d) shed=%d\n",
		failed(), transport.Load(), httpBad.Load(), entryBad.Load(), shed.Load())

	reportStats(client, base, stdout, stderr)
	if failed() > 0 {
		fmt.Fprintf(stderr, "vliwload: %d requests failed\n", failed())
		return 1
	}
	return 0
}

// post issues one load request. With a positive budget it attaches the
// service.DeadlineHeader the daemon and gateway both honor, so the whole
// serving chain works against the client's deadline instead of its own
// defaults.
func post(client *http.Client, path string, data []byte, budget time.Duration) (*http.Response, error) {
	req, err := http.NewRequest(http.MethodPost, path, bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if budget > 0 {
		req.Header.Set(service.DeadlineHeader, budget.String())
	}
	return client.Do(req)
}

// shedDelay recognizes a load-shedding answer — 429, or 503 carrying a
// Retry-After header — and returns how long the server asked the client to
// back off. A bare 503 is a real failure (a dead or broken backend), not
// shedding, and stays in the http error bucket.
func shedDelay(resp *http.Response) (wait time.Duration, isShed bool) {
	retryAfter := resp.Header.Get("Retry-After")
	switch {
	case resp.StatusCode == http.StatusTooManyRequests:
	case resp.StatusCode == http.StatusServiceUnavailable && retryAfter != "":
	default:
		return 0, false
	}
	if secs, err := strconv.Atoi(retryAfter); err == nil && secs > 0 {
		wait = time.Duration(secs) * time.Second
	}
	return wait, true
}

// reportStats fetches /stats and prints the server's own counters,
// including the structural (isomorphism-class) cache line when that layer
// is on. A gateway answer (recognized by its backend list) additionally
// prints the fleet-wide coalescing counter, the per-backend request
// distribution, and each backend's cache counters.
func reportStats(client *http.Client, base string, stdout, stderr io.Writer) {
	data, err := fetchStats(client, base)
	if err != nil {
		fmt.Fprintln(stderr, "vliwload: stats:", err)
		return
	}
	var gst gateway.StatsResponse
	if json.Unmarshal(data, &gst) == nil && gst.BackendCount > 0 {
		fmt.Fprintf(stdout, "gateway: %d backends, %d compiles, cache hits=%d misses=%d entries=%d\n",
			gst.BackendCount, gst.TotalSched.Compiles,
			gst.TotalCache.Hits, gst.TotalCache.Misses, gst.TotalCache.Entries)
		if gst.TotalStructural.Enabled {
			fmt.Fprintf(stdout, "structural: hits=%d coalesced=%d renumbered=%d entries=%d, gateway coalesced=%d\n",
				gst.TotalStructural.Hits, gst.TotalStructural.Coalesced,
				gst.TotalStructural.Renumbered, gst.TotalStructural.Entries, gst.Coalesced)
		}
		if o := gst.TotalOptimal; o.Proved+o.Incumbent > 0 {
			fmt.Fprintf(stdout, "optimal: proved=%d incumbent=%d pruned_nodes=%d\n",
				o.Proved, o.Incumbent, o.PrunedNodes)
		}
		var total int64
		for _, b := range gst.Backends {
			total += b.Served
		}
		for _, b := range gst.Backends {
			share := 0.0
			if total > 0 {
				share = 100 * float64(b.Served) / float64(total)
			}
			health := "up"
			if !b.Healthy {
				health = "down"
			}
			fmt.Fprintf(stdout, "backend %s: %s, served=%d (%.1f%%) owned=%d failovers=%d hits=%d misses=%d\n",
				b.URL, health, b.Served, share, b.Owned, b.Failovers, b.Cache.Hits, b.Cache.Misses)
		}
		printMachines(stdout, gst.TotalSched.Machines)
		return
	}
	var st service.StatsResponse
	if err := json.Unmarshal(data, &st); err != nil {
		fmt.Fprintln(stderr, "vliwload: stats:", err)
		return
	}
	fmt.Fprintf(stdout, "server: %d compiles, cache hits=%d misses=%d entries=%d\n",
		st.Sched.Compiles, st.Cache.Hits, st.Cache.Misses, st.Cache.Entries)
	if st.Structural.Enabled {
		fmt.Fprintf(stdout, "structural: hits=%d coalesced=%d renumbered=%d entries=%d\n",
			st.Structural.Hits, st.Structural.Coalesced,
			st.Structural.Renumbered, st.Structural.Entries)
	}
	if o := st.Optimal; o.Proved+o.Incumbent > 0 {
		fmt.Fprintf(stdout, "optimal: proved=%d incumbent=%d pruned_nodes=%d\n",
			o.Proved, o.Incumbent, o.PrunedNodes)
	}
	printMachines(stdout, st.Sched.Machines)
}

// printMachines renders the per-machine-spec compile counts /stats now
// carries — specs in the "single:<n>"/"clustered:<n>" notation
// (machine.Config.Spec), sorted, instead of struct dumps.
func printMachines(stdout io.Writer, machines map[string]int64) {
	if len(machines) == 0 {
		return
	}
	specs := make([]string, 0, len(machines))
	for spec := range machines {
		specs = append(specs, spec)
	}
	sort.Strings(specs)
	fmt.Fprint(stdout, "machines:")
	for _, spec := range specs {
		fmt.Fprintf(stdout, " %s=%d", spec, machines[spec])
	}
	fmt.Fprintln(stdout)
}

// countLoops drains one response body and splits the call's loops into
// compiled vs failed. /compile bodies are all-or-nothing; /batch bodies
// are inspected entry by entry, since the endpoint answers 200 even when
// every entry carries an error.
func countLoops(r io.Reader, loops int, isBatch bool) (ok, failed int) {
	if !isBatch {
		io.Copy(io.Discard, r)
		return loops, 0
	}
	var batch service.BatchResponse
	if err := json.NewDecoder(r).Decode(&batch); err != nil {
		return 0, loops
	}
	for _, e := range batch.Results {
		if e.Error != "" || e.Response == nil {
			failed++
		} else {
			ok++
		}
	}
	return ok, failed
}

// body is one pre-marshalled request carrying the number of loops a
// successful call compiles (a trailing /batch body may be partial).
type body struct {
	data  []byte
	loops int
}

// buildBodies renders the request set: n corpus loops formatted in the text
// format, marshalled once up front so the load loop measures the server,
// not the generator.
func buildBodies(n int, seed int64, machineSpec, effort string, unroll, skipVerify bool, batch int) ([]body, error) {
	loops := corpus.Generate(corpus.Params{Seed: seed, N: n})
	reqs := make([]service.CompileRequest, len(loops))
	for i, l := range loops {
		reqs[i] = service.CompileRequest{
			Loop:       vliwq.FormatLoop(l),
			Machine:    machineSpec,
			Unroll:     unroll,
			SkipVerify: skipVerify,
			Effort:     effort,
		}
	}
	if batch <= 0 {
		bodies := make([]body, len(reqs))
		for i := range reqs {
			b, err := json.Marshal(reqs[i])
			if err != nil {
				return nil, err
			}
			bodies[i] = body{data: b, loops: 1}
		}
		return bodies, nil
	}
	var bodies []body
	for i := 0; i < len(reqs); i += batch {
		j := i + batch
		if j > len(reqs) {
			j = len(reqs)
		}
		b, err := json.Marshal(service.BatchRequest{Requests: reqs[i:j]})
		if err != nil {
			return nil, err
		}
		bodies = append(bodies, body{data: b, loops: j - i})
	}
	return bodies, nil
}

// fetchStats returns the raw /stats body; the caller decides whether it
// came from a single vliwd or a gateway.
func fetchStats(client *http.Client, base string) ([]byte, error) {
	resp, err := client.Get(base + "/stats")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, fmt.Errorf("/stats status %d", resp.StatusCode)
	}
	return io.ReadAll(resp.Body)
}
