package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

func golden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("output differs from %s:\n--- got ---\n%s--- want ---\n%s", path, got, want)
	}
}

func TestRunStatsGolden(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-n", "30", "-stats"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code %d, stderr: %s", code, stderr.String())
	}
	golden(t, "stats_n30", stdout.Bytes())
}

func TestRunDumpGolden(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-n", "30", "-dump", "3"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code %d, stderr: %s", code, stderr.String())
	}
	golden(t, "dump3_n30", stdout.Bytes())
}

const kernelTrace = "../../internal/frontend/testdata/kernel.trace"

// TestRunTraceSummaryGolden locks in the -from-trace region summary: four
// recovered regions with L2 classified hard on the default clustered:4.
func TestRunTraceSummaryGolden(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-from-trace", kernelTrace}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code %d, stderr: %s", code, stderr.String())
	}
	golden(t, "trace_summary", stdout.Bytes())
}

// TestRunTraceBatch: -batch emits a /batch request body whose per-region
// requests carry the classified efforts (trivial=fast, hard=optimal).
func TestRunTraceBatch(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-from-trace", kernelTrace, "-batch"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code %d, stderr: %s", code, stderr.String())
	}
	var body struct {
		Requests []struct {
			Loop    string `json:"loop"`
			Machine string `json:"machine"`
			Effort  string `json:"effort"`
		} `json:"requests"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &body); err != nil {
		t.Fatalf("batch output is not JSON: %v", err)
	}
	if len(body.Requests) < 3 {
		t.Fatalf("batch has %d requests, want >= 3", len(body.Requests))
	}
	optimal := 0
	for _, r := range body.Requests {
		if r.Machine != "clustered:4" || r.Loop == "" {
			t.Fatalf("malformed request: %+v", r)
		}
		if r.Effort == "optimal" {
			optimal++
		}
	}
	if optimal == 0 {
		t.Fatal("no hard region requested effort optimal")
	}
	golden(t, "trace_batch", stdout.Bytes())
}

// TestRunTraceDumpGolden: -dump prints one region's lifted loop.
func TestRunTraceDumpGolden(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-from-trace", kernelTrace, "-dump", "2"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code %d, stderr: %s", code, stderr.String())
	}
	golden(t, "trace_dump2", stdout.Bytes())
}

// TestRunPresetStatsGolden: the traced preset feeds the normal stats path.
func TestRunPresetStatsGolden(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-preset", "traced", "-stats"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code %d, stderr: %s", code, stderr.String())
	}
	golden(t, "stats_traced", stdout.Bytes())
}

func TestRunErrors(t *testing.T) {
	tests := []struct {
		name      string
		args      []string
		code      int
		stderrHas string
	}{
		{"dump out of range", []string{"-n", "5", "-dump", "5"}, 1, "out of range"},
		{"zero corpus", []string{"-n", "0", "-stats"}, 2, "-n must be a positive corpus size"},
		{"no mode prints usage", []string{"-n", "5"}, 2, "Usage"},
		{"unknown flag", []string{"-wat"}, 2, "flag provided but not defined"},
		{"unknown preset lists valid", []string{"-preset", "nope", "-stats"}, 2,
			`unknown preset "nope" (valid: standard, stressed, traced)`},
		{"missing trace file", []string{"-from-trace", "testdata/nope.trace"}, 1, "no such file"},
		{"trace region out of range", []string{"-from-trace", kernelTrace, "-dump", "9"}, 1, "out of range"},
		{"bad trace machine", []string{"-from-trace", kernelTrace, "-machine", "hex:9"}, 1, "machine"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if code := run(tt.args, &stdout, &stderr); code != tt.code {
				t.Fatalf("exit code %d, want %d (stderr: %s)", code, tt.code, stderr.String())
			}
			if !strings.Contains(stderr.String(), tt.stderrHas) {
				t.Fatalf("stderr %q does not contain %q", stderr.String(), tt.stderrHas)
			}
		})
	}
}
