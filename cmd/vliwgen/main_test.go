package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

func golden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("output differs from %s:\n--- got ---\n%s--- want ---\n%s", path, got, want)
	}
}

func TestRunStatsGolden(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-n", "30", "-stats"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code %d, stderr: %s", code, stderr.String())
	}
	golden(t, "stats_n30", stdout.Bytes())
}

func TestRunDumpGolden(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-n", "30", "-dump", "3"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code %d, stderr: %s", code, stderr.String())
	}
	golden(t, "dump3_n30", stdout.Bytes())
}

func TestRunErrors(t *testing.T) {
	tests := []struct {
		name      string
		args      []string
		code      int
		stderrHas string
	}{
		{"dump out of range", []string{"-n", "5", "-dump", "5"}, 1, "out of range"},
		{"zero corpus", []string{"-n", "0", "-stats"}, 2, "-n must be a positive corpus size"},
		{"no mode prints usage", []string{"-n", "5"}, 2, "Usage"},
		{"unknown flag", []string{"-wat"}, 2, "flag provided but not defined"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if code := run(tt.args, &stdout, &stderr); code != tt.code {
				t.Fatalf("exit code %d, want %d (stderr: %s)", code, tt.code, stderr.String())
			}
			if !strings.Contains(stderr.String(), tt.stderrHas) {
				t.Fatalf("stderr %q does not contain %q", stderr.String(), tt.stderrHas)
			}
		})
	}
}
