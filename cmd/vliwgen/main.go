// Command vliwgen inspects and exports the loop workloads: the synthetic
// corpus that stands in for the paper's 1258 Perfect Club loops
// (DESIGN.md §4), the named corpus presets, and RISC instruction traces
// lifted through internal/frontend (DESIGN.md §15).
//
// Usage:
//
//	vliwgen -stats                        # distribution summary of the corpus
//	vliwgen -dump 3                       # print loop #3 in the text format
//	vliwgen -n 50 -seed 9 -stats          # alternative corpus
//	vliwgen -preset traced -stats         # a named preset instead of -n/-seed
//	vliwgen -from-trace f.trace           # lift a trace, print its regions
//	vliwgen -from-trace f.trace -dump 2   # print region #2's lifted loop
//	vliwgen -from-trace f.trace -batch    # emit a /batch request body (JSON)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"vliwq"
	"vliwq/internal/corpus"
	"vliwq/internal/frontend"
	"vliwq/internal/ir"
	"vliwq/internal/machine"
	"vliwq/internal/program"
	"vliwq/internal/sched"
	"vliwq/internal/service"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("vliwgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		n           = fs.Int("n", corpus.PaperCorpusSize, "corpus size")
		seed        = fs.Int64("seed", corpus.DefaultSeed, "corpus seed")
		preset      = fs.String("preset", "", "use a named corpus preset instead of -n/-seed: "+presetList())
		stats       = fs.Bool("stats", false, "print corpus distribution statistics")
		dump        = fs.Int("dump", -1, "print loop (or trace region) #i in the text format")
		fromTrace   = fs.String("from-trace", "", "lift a RISC instruction trace file instead of generating a corpus")
		batch       = fs.Bool("batch", false, "with -from-trace: emit the program's compile requests as a /batch JSON body")
		machineSpec = fs.String("machine", program.DefaultMachine, "with -from-trace: target machine for region classification")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *fromTrace != "" {
		return runTrace(*fromTrace, *machineSpec, *batch, *dump, stdout, stderr)
	}

	var loops []*ir.Loop
	if *preset != "" {
		var err error
		loops, err = corpus.Preset(*preset)
		if err != nil {
			fmt.Fprintf(stderr, "vliwgen: %v\n", err)
			return 2
		}
	} else {
		if *n <= 0 {
			fmt.Fprintf(stderr, "vliwgen: -n must be a positive corpus size (got %d)\n", *n)
			return 2
		}
		loops = corpus.Generate(corpus.Params{Seed: *seed, N: *n})
	}

	switch {
	case *dump >= 0:
		if *dump >= len(loops) {
			fmt.Fprintf(stderr, "vliwgen: loop %d out of range (corpus has %d)\n", *dump, len(loops))
			return 1
		}
		if err := ir.Format(stdout, loops[*dump]); err != nil {
			fmt.Fprintln(stderr, "vliwgen:", err)
			return 1
		}
	case *stats:
		printStats(stdout, loops)
	default:
		fs.Usage()
		return 2
	}
	return 0
}

// runTrace serves the -from-trace modes: lift the trace, then either dump
// one region's loop, emit the whole program as a /batch request body, or
// print the recovered region summary.
func runTrace(path, machineSpec string, batch bool, dump int, stdout, stderr io.Writer) int {
	fail := func(err error) int {
		fmt.Fprintln(stderr, "vliwgen:", err)
		return 1
	}
	f, err := os.Open(path)
	if err != nil {
		return fail(err)
	}
	defer f.Close()
	p, err := frontend.Parse(f)
	if err != nil {
		return fail(err)
	}

	switch {
	case dump >= 0:
		if dump >= len(p.Regions) {
			return fail(fmt.Errorf("region %d out of range (trace has %d regions)", dump, len(p.Regions)))
		}
		if err := ir.Format(stdout, p.Regions[dump].Loop); err != nil {
			return fail(err)
		}
	case batch:
		reqs, err := program.Requests(p, program.Options{Machine: machineSpec})
		if err != nil {
			return fail(err)
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(service.BatchRequest{Requests: reqs}); err != nil {
			return fail(err)
		}
	default:
		m, err := vliwq.ParseMachine(machineSpec)
		if err != nil {
			return fail(err)
		}
		fmt.Fprintf(stdout, "program %s: %d regions, %d glue instructions (machine %s)\n",
			p.Name, len(p.Regions), len(p.Glue()), m.Spec())
		for i, r := range p.Regions {
			class := "trivial"
			if program.Hard(r.Loop, m, 0) {
				class = "hard"
			}
			fmt.Fprintf(stdout, "  region %d %-8s trip %-5d %2d ops, %2d deps (%d discharged), %s\n",
				i, r.Label, r.Trip, len(r.Loop.Ops), len(r.Deps), r.Discharged, class)
		}
	}
	return 0
}

func presetList() string {
	names := corpus.PresetNames()
	out := ""
	for i, n := range names {
		if i > 0 {
			out += ", "
		}
		out += n
	}
	return out
}

func printStats(w io.Writer, loops []*ir.Loop) {
	var sizes []int
	var ops, mem, alu, muldiv, fanned int
	recBound := 0
	cfg := machine.SingleCluster(18)
	for _, l := range loops {
		sizes = append(sizes, len(l.Ops))
		for _, op := range l.Ops {
			ops++
			switch op.Kind {
			case ir.KLoad, ir.KStore:
				mem++
			case ir.KAdd:
				alu++
			case ir.KMul, ir.KDiv:
				muldiv++
			}
		}
		if l.MaxFanout() > 1 {
			fanned++
		}
		res, err := sched.ResMII(l, cfg)
		if err == nil && sched.RecMII(l) > res {
			recBound++
		}
	}
	sort.Ints(sizes)
	pick := func(q float64) int { return sizes[int(q*float64(len(sizes)-1))] }
	fmt.Fprintf(w, "loops:            %d\n", len(loops))
	fmt.Fprintf(w, "ops total:        %d (mean %.1f per loop)\n", ops, float64(ops)/float64(len(loops)))
	fmt.Fprintf(w, "size p10/50/90:   %d / %d / %d (max %d)\n", pick(.1), pick(.5), pick(.9), sizes[len(sizes)-1])
	fmt.Fprintf(w, "op mix:           %.0f%% mem, %.0f%% alu, %.0f%% mul+div\n",
		100*float64(mem)/float64(ops), 100*float64(alu)/float64(ops), 100*float64(muldiv)/float64(ops))
	fmt.Fprintf(w, "multi-consumer:   %.0f%% of loops have a value with fanout > 1\n",
		100*float64(fanned)/float64(len(loops)))
	fmt.Fprintf(w, "recurrence-bound: %.0f%% of loops (RecMII > ResMII at 18 FUs)\n",
		100*float64(recBound)/float64(len(loops)))
}
