// Command vliwgen inspects and exports the synthetic loop corpus that
// stands in for the paper's 1258 Perfect Club loops (DESIGN.md §4).
//
// Usage:
//
//	vliwgen -stats                 # distribution summary of the corpus
//	vliwgen -dump 3                # print loop #3 in the text format
//	vliwgen -n 50 -seed 9 -stats   # alternative corpus
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"vliwq/internal/corpus"
	"vliwq/internal/ir"
	"vliwq/internal/machine"
	"vliwq/internal/sched"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("vliwgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		n     = fs.Int("n", corpus.PaperCorpusSize, "corpus size")
		seed  = fs.Int64("seed", corpus.DefaultSeed, "corpus seed")
		stats = fs.Bool("stats", false, "print corpus distribution statistics")
		dump  = fs.Int("dump", -1, "print loop #i in the text format")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *n <= 0 {
		fmt.Fprintf(stderr, "vliwgen: -n must be a positive corpus size (got %d)\n", *n)
		return 2
	}
	loops := corpus.Generate(corpus.Params{Seed: *seed, N: *n})

	switch {
	case *dump >= 0:
		if *dump >= len(loops) {
			fmt.Fprintf(stderr, "vliwgen: loop %d out of range (corpus has %d)\n", *dump, len(loops))
			return 1
		}
		if err := ir.Format(stdout, loops[*dump]); err != nil {
			fmt.Fprintln(stderr, "vliwgen:", err)
			return 1
		}
	case *stats:
		printStats(stdout, loops)
	default:
		fs.Usage()
		return 2
	}
	return 0
}

func printStats(w io.Writer, loops []*ir.Loop) {
	var sizes []int
	var ops, mem, alu, muldiv, fanned int
	recBound := 0
	cfg := machine.SingleCluster(18)
	for _, l := range loops {
		sizes = append(sizes, len(l.Ops))
		for _, op := range l.Ops {
			ops++
			switch op.Kind {
			case ir.KLoad, ir.KStore:
				mem++
			case ir.KAdd:
				alu++
			case ir.KMul, ir.KDiv:
				muldiv++
			}
		}
		if l.MaxFanout() > 1 {
			fanned++
		}
		res, err := sched.ResMII(l, cfg)
		if err == nil && sched.RecMII(l) > res {
			recBound++
		}
	}
	sort.Ints(sizes)
	pick := func(q float64) int { return sizes[int(q*float64(len(sizes)-1))] }
	fmt.Fprintf(w, "loops:            %d\n", len(loops))
	fmt.Fprintf(w, "ops total:        %d (mean %.1f per loop)\n", ops, float64(ops)/float64(len(loops)))
	fmt.Fprintf(w, "size p10/50/90:   %d / %d / %d (max %d)\n", pick(.1), pick(.5), pick(.9), sizes[len(sizes)-1])
	fmt.Fprintf(w, "op mix:           %.0f%% mem, %.0f%% alu, %.0f%% mul+div\n",
		100*float64(mem)/float64(ops), 100*float64(alu)/float64(ops), 100*float64(muldiv)/float64(ops))
	fmt.Fprintf(w, "multi-consumer:   %.0f%% of loops have a value with fanout > 1\n",
		100*float64(fanned)/float64(len(loops)))
	fmt.Fprintf(w, "recurrence-bound: %.0f%% of loops (RecMII > ResMII at 18 FUs)\n",
		100*float64(recBound)/float64(len(loops)))
}
