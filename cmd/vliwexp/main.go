// Command vliwexp regenerates the paper's evaluation: every figure and
// table plus the ablations documented in DESIGN.md §5. By default it runs
// the full 1258-loop corpus, which takes a few seconds; -n trades corpus
// size for speed.
//
// Usage:
//
//	vliwexp                  # everything, full corpus
//	vliwexp -fig fig6        # one experiment
//	vliwexp -n 200 -seed 7   # smaller corpus
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"vliwq"
	"vliwq/internal/corpus"
	"vliwq/internal/exp"
	"vliwq/internal/ir"
)

var figures = map[string]func(exp.Options) *exp.Table{
	"fig3":                exp.Fig3,
	"copycost":            exp.CopyCost,
	"fig4":                exp.Fig4,
	"unrollqueues":        exp.UnrollQueues,
	"fig6":                exp.Fig6,
	"clusterres":          exp.ClusterResources,
	"fig8":                exp.Fig8,
	"fig9":                exp.Fig9,
	"ablation-copyshape":  exp.AblationCopyShape,
	"ablation-moves":      exp.AblationMoveOps,
	"ablation-commlat":    exp.AblationCommLatency,
	"ablation-invariants": exp.AblationInvariants,
	"portfolio":           exp.Portfolio,
	"optimal":             exp.Optimal,
	"frontier":            exp.Frontier,
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("vliwexp", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		fig        = fs.String("fig", "all", "experiment to run: all (the paper's evaluation; excludes portfolio, optimal and frontier), or one of "+names())
		n          = fs.Int("n", corpus.PaperCorpusSize, "corpus size (number of synthetic loops)")
		seed       = fs.Int64("seed", corpus.DefaultSeed, "corpus seed")
		preset     = fs.String("preset", "", "use a named corpus preset instead of -n/-seed: "+strings.Join(corpus.PresetNames(), ", "))
		workers    = fs.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
		effort     = fs.String("effort", "fast", "scheduler effort for every experiment: fast, balanced, exhaustive or optimal")
		stageTimes = fs.Bool("stage-times", false, "after the experiments, print per-stage compile wall-clock totals")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *n <= 0 {
		fmt.Fprintf(stderr, "vliwexp: -n must be a positive corpus size (got %d)\n", *n)
		return 2
	}
	fn, ok := figures[*fig]
	if !ok && *fig != "all" {
		fmt.Fprintf(stderr, "vliwexp: unknown figure %q; available: %s\n", *fig, names())
		return 2
	}
	eff, err := vliwq.ParseEffort(*effort)
	if err != nil {
		fmt.Fprintf(stderr, "vliwexp: %v\n", err)
		return 2
	}

	var loops []*ir.Loop
	if *preset != "" {
		loops, err = corpus.Preset(*preset)
		if err != nil {
			fmt.Fprintf(stderr, "vliwexp: %v\n", err)
			return 2
		}
	} else {
		loops = corpus.Generate(corpus.Params{Seed: *seed, N: *n})
	}
	opts := exp.Options{
		Loops:   loops,
		Workers: *workers,
		Effort:  eff,
		// One explicit pipeline for the whole run, so -stage-times can
		// read the per-stage clocks afterwards (RunAll would otherwise
		// install a private one).
		Pipeline: exp.NewPipeline(),
	}
	// Only the portfolio and optimal sweeps consume the stressed preset;
	// other figures must not pay its generation. -n bounds it so smoke runs
	// stay small; at full size the exp package's memoized corpus.Stressed()
	// is used.
	if *fig == "portfolio" || *fig == "optimal" {
		if sp := corpus.StressedParams(); *n < sp.N {
			sp.N = *n
			opts.StressedLoops = corpus.Generate(sp)
		}
	}
	if *preset != "" {
		fmt.Fprintf(stdout, "corpus: %d loops (preset %s)\n\n", len(loops), *preset)
	} else {
		fmt.Fprintf(stdout, "corpus: %d loops (seed %d)\n\n", *n, *seed)
	}
	if *fig == "all" {
		exp.RunAll(stdout, opts)
	} else {
		fn(opts).Fprint(stdout)
	}
	if *stageTimes {
		printStageTimes(stdout, opts.Pipeline)
	}
	return 0
}

// printStageTimes renders the pipeline's per-stage compile clocks in stage
// order — where a sweep's distinct compilations actually spent their time
// (cache hits cost nothing and are excluded by construction).
func printStageTimes(stdout io.Writer, p *exp.Pipeline) {
	nanos := p.StageNanos()
	fmt.Fprint(stdout, "stage times (distinct compilations):")
	for _, name := range []string{"unroll", "copies", "schedule", "alloc"} {
		if d, ok := nanos[name]; ok {
			fmt.Fprintf(stdout, " %s=%s", name, time.Duration(d).Round(time.Millisecond))
		}
	}
	fmt.Fprintln(stdout)
}

func names() string {
	out := make([]string, 0, len(figures))
	for k := range figures {
		out = append(out, k)
	}
	sort.Strings(out)
	return strings.Join(out, ", ")
}
