// Command vliwexp regenerates the paper's evaluation: every figure and
// table plus the ablations documented in DESIGN.md §5. By default it runs
// the full 1258-loop corpus, which takes a few seconds; -n trades corpus
// size for speed.
//
// Usage:
//
//	vliwexp                  # everything, full corpus
//	vliwexp -fig fig6        # one experiment
//	vliwexp -n 200 -seed 7   # smaller corpus
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"vliwq/internal/corpus"
	"vliwq/internal/exp"
)

var figures = map[string]func(exp.Options) *exp.Table{
	"fig3":                exp.Fig3,
	"copycost":            exp.CopyCost,
	"fig4":                exp.Fig4,
	"unrollqueues":        exp.UnrollQueues,
	"fig6":                exp.Fig6,
	"clusterres":          exp.ClusterResources,
	"fig8":                exp.Fig8,
	"fig9":                exp.Fig9,
	"ablation-copyshape":  exp.AblationCopyShape,
	"ablation-moves":      exp.AblationMoveOps,
	"ablation-commlat":    exp.AblationCommLatency,
	"ablation-invariants": exp.AblationInvariants,
}

func main() {
	var (
		fig     = flag.String("fig", "all", "experiment to run: all, or one of "+names())
		n       = flag.Int("n", corpus.PaperCorpusSize, "corpus size (number of synthetic loops)")
		seed    = flag.Int64("seed", corpus.DefaultSeed, "corpus seed")
		workers = flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
	)
	flag.Parse()

	opts := exp.Options{
		Loops:   corpus.Generate(corpus.Params{Seed: *seed, N: *n}),
		Workers: *workers,
	}
	fmt.Printf("corpus: %d loops (seed %d)\n\n", *n, *seed)
	if *fig == "all" {
		exp.RunAll(os.Stdout, opts)
		return
	}
	fn, ok := figures[*fig]
	if !ok {
		fmt.Fprintf(os.Stderr, "vliwexp: unknown figure %q; available: %s\n", *fig, names())
		os.Exit(1)
	}
	fn(opts).Fprint(os.Stdout)
}

func names() string {
	var out []string
	for k := range figures {
		out = append(out, k)
	}
	// Stable order for help text.
	for i := 0; i < len(out); i++ {
		for j := i + 1; j < len(out); j++ {
			if out[j] < out[i] {
				out[i], out[j] = out[j], out[i]
			}
		}
	}
	return strings.Join(out, ", ")
}
